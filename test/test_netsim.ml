(* Link, NIC, IFQ, Host, Router and topology wiring. *)

let udp_pkt ?(size = 1000) ~id ~src ~dst () =
  Netsim.Packet.make ~id ~flow:9 ~src ~dst ~created:Sim.Time.zero
    (Proto.Payload.Udp { seq = id; payload_len = size })

let test_link_delay () =
  let s = Sim.Scheduler.create () in
  let link = Netsim.Link.create s ~delay:(Sim.Time.ms 10) () in
  let arrived = ref None in
  Netsim.Link.connect link (fun _ -> arrived := Some (Sim.Scheduler.now s));
  Netsim.Link.transmit link (udp_pkt ~id:0 ~src:0 ~dst:1 ());
  Sim.Scheduler.run s;
  (match !arrived with
  | Some t -> Alcotest.(check (float 1e-9)) "propagation" 10. (Sim.Time.to_ms t)
  | None -> Alcotest.fail "packet never arrived");
  Alcotest.(check int) "delivered" 1 (Netsim.Link.delivered link);
  Alcotest.(check int) "in flight drained" 0 (Netsim.Link.in_flight link)

let test_link_loss () =
  let s = Sim.Scheduler.create () in
  let link =
    Netsim.Link.create s ~delay:(Sim.Time.ms 1) ~loss_rate:0.5
      ~rng:(Sim.Rng.of_seed 4) ()
  in
  let count = ref 0 in
  Netsim.Link.connect link (fun _ -> incr count);
  for i = 0 to 999 do
    Netsim.Link.transmit link (udp_pkt ~id:i ~src:0 ~dst:1 ())
  done;
  Sim.Scheduler.run s;
  Alcotest.(check int) "conservation" 1000 (!count + Netsim.Link.lost link);
  Alcotest.(check bool) "roughly half lost" true
    (Netsim.Link.lost link > 400 && Netsim.Link.lost link < 600)

let test_link_unconnected () =
  let s = Sim.Scheduler.create () in
  let link = Netsim.Link.create s ~delay:(Sim.Time.ms 1) () in
  Alcotest.check_raises "transmit unconnected"
    (Invalid_argument "Link.transmit: link not connected") (fun () ->
      Netsim.Link.transmit link (udp_pkt ~id:0 ~src:0 ~dst:1 ()))

let test_nic_serialization () =
  let s = Sim.Scheduler.create () in
  let q = Netsim.Queue_disc.droptail ~capacity_packets:10 () in
  (* 1 Mbit/s: a 1028-byte datagram takes 8.224 ms on the wire. *)
  let nic = Netsim.Nic.create s ~rate:(Sim.Units.mbps 1.) ~queue:q in
  let link = Netsim.Link.create s ~delay:Sim.Time.zero () in
  let arrivals = ref [] in
  Netsim.Link.connect link (fun _ -> arrivals := Sim.Scheduler.now s :: !arrivals);
  Netsim.Nic.attach nic link;
  ignore (Netsim.Queue_disc.enqueue q ~now:Sim.Time.zero (udp_pkt ~id:0 ~src:0 ~dst:1 ()));
  ignore (Netsim.Queue_disc.enqueue q ~now:Sim.Time.zero (udp_pkt ~id:1 ~src:0 ~dst:1 ()));
  Netsim.Nic.kick nic;
  Sim.Scheduler.run s;
  (match List.rev !arrivals with
  | [ t1; t2 ] ->
      Alcotest.(check (float 1e-6)) "first serialization" 8.224
        (Sim.Time.to_ms t1);
      Alcotest.(check (float 1e-6)) "back-to-back" 16.448 (Sim.Time.to_ms t2)
  | _ -> Alcotest.fail "expected two arrivals");
  Alcotest.(check int) "tx packets" 2 (Netsim.Nic.tx_packets nic);
  Alcotest.(check int) "tx bytes" 2056 (Netsim.Nic.tx_bytes nic);
  Alcotest.(check bool) "idle after drain" false (Netsim.Nic.busy nic)

let test_ifq_stall_and_space () =
  let s = Sim.Scheduler.create () in
  let ifq = Netsim.Ifq.create s ~capacity:2 () in
  let stall_hits = ref 0 and space_hits = ref 0 in
  Netsim.Ifq.on_stall ifq (fun () -> incr stall_hits);
  Netsim.Ifq.on_space ifq (fun () -> incr space_hits);
  Alcotest.(check bool) "enq 1" true
    (Netsim.Ifq.try_enqueue ifq (udp_pkt ~id:0 ~src:0 ~dst:1 ()));
  Alcotest.(check bool) "enq 2" true
    (Netsim.Ifq.try_enqueue ifq (udp_pkt ~id:1 ~src:0 ~dst:1 ()));
  Alcotest.(check bool) "enq 3 stalls" false
    (Netsim.Ifq.try_enqueue ifq (udp_pkt ~id:2 ~src:0 ~dst:1 ()));
  Alcotest.(check int) "stall hook" 1 !stall_hits;
  Alcotest.(check int) "stall counter" 1 (Netsim.Ifq.stalls ifq);
  Alcotest.(check int) "occupancy" 2 (Netsim.Ifq.occupancy ifq);
  Alcotest.(check int) "headroom" 0 (Netsim.Ifq.headroom ifq);
  (* Simulate the NIC pulling one packet. *)
  ignore (Netsim.Queue_disc.dequeue (Netsim.Ifq.queue ifq) ~now:Sim.Time.zero);
  Netsim.Ifq.note_dequeue ifq;
  Alcotest.(check int) "space hook after full->notfull" 1 !space_hits;
  ignore (Netsim.Queue_disc.dequeue (Netsim.Ifq.queue ifq) ~now:Sim.Time.zero);
  Netsim.Ifq.note_dequeue ifq;
  Alcotest.(check int) "no second space hook" 1 !space_hits

let test_host_demux () =
  let s = Sim.Scheduler.create () in
  let host =
    Netsim.Host.create s ~id:5 ~nic_rate:(Sim.Units.mbps 100.) ~ifq_capacity:10 ()
  in
  let got_flow = ref [] and got_default = ref 0 in
  Netsim.Host.register_flow host ~flow:9 (fun pkt ->
      got_flow := pkt.Netsim.Packet.id :: !got_flow);
  Netsim.Host.set_default_handler host (fun _ -> incr got_default);
  Netsim.Host.deliver host (udp_pkt ~id:1 ~src:0 ~dst:5 ());
  let other =
    Netsim.Packet.make ~id:2 ~flow:777 ~src:0 ~dst:5 ~created:Sim.Time.zero
      (Proto.Payload.Udp { seq = 0; payload_len = 10 })
  in
  Netsim.Host.deliver host other;
  Alcotest.(check (list int)) "flow handler" [ 1 ] !got_flow;
  Alcotest.(check int) "default handler" 1 !got_default;
  Alcotest.(check int) "rx packets" 2 (Netsim.Host.rx_packets host);
  Netsim.Host.unregister_flow host ~flow:9;
  Netsim.Host.deliver host (udp_pkt ~id:3 ~src:0 ~dst:5 ());
  Alcotest.(check int) "after unregister -> default" 2 !got_default

let test_duplex_end_to_end () =
  let s = Sim.Scheduler.create () in
  let d =
    Netsim.Topology.Duplex.create s ~rate:(Sim.Units.mbps 100.)
      ~one_way_delay:(Sim.Time.ms 5) ~ifq_capacity:10 ()
  in
  let arrived = ref None in
  Netsim.Host.register_flow d.Netsim.Topology.Duplex.b ~flow:9 (fun _ ->
      arrived := Some (Sim.Scheduler.now s));
  (match Netsim.Host.send d.Netsim.Topology.Duplex.a (udp_pkt ~id:0 ~src:0 ~dst:1 ()) with
  | `Sent -> ()
  | `Stalled -> Alcotest.fail "unexpected stall");
  Sim.Scheduler.run s;
  match !arrived with
  | Some t ->
      (* 5 ms propagation + 82.24 µs serialization at 100 Mbit/s. *)
      Alcotest.(check (float 1e-3)) "arrival time" 5.082 (Sim.Time.to_ms t)
  | None -> Alcotest.fail "no delivery"

let test_router_routing_and_drops () =
  let s = Sim.Scheduler.create () in
  let r = Netsim.Router.create s ~id:1000 in
  let q = Netsim.Queue_disc.droptail ~capacity_packets:2 () in
  let link = Netsim.Link.create s ~delay:Sim.Time.zero () in
  let received = ref 0 in
  Netsim.Link.connect link (fun _ -> incr received);
  let port = Netsim.Router.add_port r ~queue:q ~rate:(Sim.Units.mbps 1.) ~link in
  Netsim.Router.route r ~dst:7 port;
  (* Three quick deliveries: capacity 2 -> the third drops (the NIC has
     no time to drain at 1 Mbit/s within the same instant)... the first
     is immediately pulled by the NIC, so 1 in service + 2 queued. *)
  for i = 0 to 3 do
    Netsim.Router.deliver r (udp_pkt ~id:i ~src:0 ~dst:7 ())
  done;
  Netsim.Router.deliver r (udp_pkt ~id:99 ~src:0 ~dst:12345 ());
  Sim.Scheduler.run s;
  Alcotest.(check int) "no-route counted" 1 (Netsim.Router.no_route r);
  Alcotest.(check int) "forwarded + dropped = offered" 4
    (Netsim.Router.forwarded r + Netsim.Router.dropped r);
  Alcotest.(check bool) "something dropped" true (Netsim.Router.dropped r >= 1);
  Alcotest.(check int) "delivered matches forwarded" (Netsim.Router.forwarded r)
    !received

let test_dumbbell_cross_traffic () =
  let s = Sim.Scheduler.create () in
  let net =
    Netsim.Topology.Dumbbell.create s ~pairs:2
      ~access_rate:(Sim.Units.mbps 100.)
      ~access_delay:(Sim.Time.ms 1)
      ~bottleneck_rate:(Sim.Units.mbps 10.)
      ~bottleneck_delay:(Sim.Time.ms 5) ~buffer_packets:20 ~ifq_capacity:50 ()
  in
  let got = Array.make 2 0 in
  Array.iteri
    (fun i host ->
      Netsim.Host.register_flow host ~flow:9 (fun _ -> got.(i) <- got.(i) + 1))
    net.Netsim.Topology.Dumbbell.right;
  (* Each left host sends one datagram to its partner. *)
  Array.iteri
    (fun i host ->
      let dst = Netsim.Topology.Dumbbell.right_id i in
      ignore (Netsim.Host.send host (udp_pkt ~id:i ~src:(Netsim.Host.id host) ~dst ())))
    net.Netsim.Topology.Dumbbell.left;
  Sim.Scheduler.run s;
  Alcotest.(check (list int)) "pairwise delivery" [ 1; 1 ]
    (Array.to_list got)

let test_flow_monitor () =
  let s = Sim.Scheduler.create () in
  let m = Netsim.Flow_monitor.create s ~name:"m" () in
  let inner = ref 0 in
  let handler = Netsim.Flow_monitor.wrap m (fun _ -> incr inner) in
  ignore (Sim.Scheduler.at s (Sim.Time.ms 10) (fun () ->
      handler (udp_pkt ~id:0 ~src:0 ~dst:1 ())));
  ignore (Sim.Scheduler.at s (Sim.Time.ms 20) (fun () ->
      handler (udp_pkt ~id:1 ~src:0 ~dst:1 ())));
  Sim.Scheduler.run s;
  Alcotest.(check int) "wrapped handler called" 2 !inner;
  Alcotest.(check int) "packets" 2 (Netsim.Flow_monitor.packets m);
  Alcotest.(check int) "bytes" 2056 (Netsim.Flow_monitor.bytes m);
  (* 2056 bytes over the 10ms first-to-last window = 1.6448 Mbit/s. *)
  Alcotest.(check (float 1e-3)) "throughput" 1.6448
    (Netsim.Flow_monitor.throughput_mbps m)

let string_contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i =
    i + n <= h && (String.sub haystack i n = needle || go (i + 1))
  in
  go 0

let test_link_tap_and_tracer () =
  let s = Sim.Scheduler.create () in
  let link = Netsim.Link.create s ~delay:(Sim.Time.ms 1) () in
  Netsim.Link.connect link (fun _ -> ());
  let tracer = Netsim.Tracer.create ~capacity:4 () in
  Netsim.Tracer.tap tracer ~label:"a->b" link;
  let seen = ref 0 in
  Netsim.Link.add_tap link (fun _ _ -> incr seen);
  for i = 0 to 9 do
    Netsim.Link.transmit link (udp_pkt ~id:i ~src:0 ~dst:1 ())
  done;
  Sim.Scheduler.run s;
  Alcotest.(check int) "tap saw everything" 10 !seen;
  Alcotest.(check int) "total captured" 10 (Netsim.Tracer.captured tracer);
  let lines = Netsim.Tracer.lines tracer in
  Alcotest.(check int) "ring keeps last 4" 4 (List.length lines);
  (* Oldest surviving line is packet #6 (datagram seq 6). *)
  (match lines with
  | first :: _ ->
      Alcotest.(check bool) "ring evicts oldest" true
        (string_contains first "UDP(#6");
      Alcotest.(check bool) "label present" true
        (string_contains first "a->b")
  | [] -> Alcotest.fail "no lines");
  Alcotest.(check bool) "to_string renders" true
    (String.length (Netsim.Tracer.to_string tracer) > 0)

let test_drop_filter () =
  let s = Sim.Scheduler.create () in
  let link = Netsim.Link.create s ~delay:(Sim.Time.ms 1) () in
  let got = ref [] in
  Netsim.Link.connect link (fun pkt -> got := pkt.Netsim.Packet.id :: !got);
  Netsim.Link.set_drop_filter link (fun pkt -> pkt.Netsim.Packet.id mod 2 = 0);
  for i = 0 to 9 do
    Netsim.Link.transmit link (udp_pkt ~id:i ~src:0 ~dst:1 ())
  done;
  Sim.Scheduler.run s;
  Alcotest.(check (list int)) "odd ids survive" [ 1; 3; 5; 7; 9 ]
    (List.sort compare !got);
  Alcotest.(check int) "drops counted" 5 (Netsim.Link.lost link)

let test_link_loss_rate_validation () =
  let s = Sim.Scheduler.create () in
  let invalid rate =
    try
      ignore (Netsim.Link.create s ~delay:(Sim.Time.ms 1) ~loss_rate:rate ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "loss_rate > 1 rejected" true (invalid 1.2);
  Alcotest.(check bool) "negative loss_rate rejected" true (invalid (-0.1));
  Alcotest.(check bool) "NaN rejected" true (invalid Float.nan);
  (* The boundaries are legal: 0 is lossless, 1 is a full blackout. *)
  let blackout =
    Netsim.Link.create s ~delay:(Sim.Time.ms 1) ~loss_rate:1. ()
  in
  Netsim.Link.connect blackout (fun _ -> Alcotest.fail "delivered at p=1");
  for i = 0 to 9 do
    Netsim.Link.transmit blackout (udp_pkt ~id:i ~src:0 ~dst:1 ())
  done;
  Sim.Scheduler.run s;
  Alcotest.(check int) "everything lost" 10 (Netsim.Link.lost blackout)

let test_nic_rate_validation () =
  let s = Sim.Scheduler.create () in
  let invalid rate =
    try
      let q = Netsim.Queue_disc.droptail ~capacity_packets:4 () in
      ignore (Netsim.Nic.create s ~rate ~queue:q);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "zero rate rejected" true (invalid 0.);
  Alcotest.(check bool) "negative rate rejected" true
    (invalid (Sim.Units.mbps (-10.)))

(* Two lossy links on one scheduler, neither given an explicit RNG: each
   must get its own derived stream (not a shared fixed seed), and the
   whole arrangement must reproduce exactly from the scheduler seed. *)
let loss_pattern_pair ~seed =
  let s = Sim.Scheduler.create ~seed () in
  let mk () =
    let link =
      Netsim.Link.create s ~delay:(Sim.Time.ms 1) ~loss_rate:0.5 ()
    in
    Netsim.Link.connect link (fun _ -> ());
    link
  in
  let l1 = mk () and l2 = mk () in
  let pattern link =
    List.init 64 (fun i ->
        let before = Netsim.Link.lost link in
        Netsim.Link.transmit link (udp_pkt ~id:i ~src:0 ~dst:1 ());
        Netsim.Link.lost link > before)
  in
  let p1 = pattern l1 and p2 = pattern l2 in
  Sim.Scheduler.run s;
  (p1, p2)

let test_per_link_derived_seeds () =
  let p1, p2 = loss_pattern_pair ~seed:9 in
  Alcotest.(check bool) "sibling links draw from different streams" false
    (p1 = p2);
  let q1, q2 = loss_pattern_pair ~seed:9 in
  Alcotest.(check bool) "reproducible from the scheduler seed" true
    (p1 = q1 && p2 = q2);
  let r1, _ = loss_pattern_pair ~seed:10 in
  Alcotest.(check bool) "different scheduler seed, different pattern" false
    (p1 = r1)

let qcheck_tracer_ring =
  QCheck.Test.make ~name:"tracer ring keeps exactly min(total,capacity)"
    ~count:100
    QCheck.(pair (int_range 1 50) (int_range 0 200))
    (fun (capacity, events) ->
      let t = Netsim.Tracer.create ~capacity () in
      for i = 0 to events - 1 do
        Netsim.Tracer.record t ~now:(Sim.Time.us i) (string_of_int i)
      done;
      let lines = Netsim.Tracer.lines t in
      List.length lines = Stdlib.min events capacity
      && Netsim.Tracer.captured t = events
      &&
      (* Surviving lines are the most recent, in order. *)
      match List.rev lines with
      | [] -> events = 0
      | last :: _ -> string_contains last (string_of_int (events - 1)))

let suite =
  [
    Alcotest.test_case "link tap + tracer" `Quick test_link_tap_and_tracer;
    Alcotest.test_case "drop filter" `Quick test_drop_filter;
    QCheck_alcotest.to_alcotest qcheck_tracer_ring;
    Alcotest.test_case "link delay" `Quick test_link_delay;
    Alcotest.test_case "link loss" `Quick test_link_loss;
    Alcotest.test_case "link loss-rate validation" `Quick
      test_link_loss_rate_validation;
    Alcotest.test_case "nic rate validation" `Quick test_nic_rate_validation;
    Alcotest.test_case "per-link derived seeds" `Quick
      test_per_link_derived_seeds;
    Alcotest.test_case "link unconnected" `Quick test_link_unconnected;
    Alcotest.test_case "nic serialization" `Quick test_nic_serialization;
    Alcotest.test_case "ifq stall/space hooks" `Quick test_ifq_stall_and_space;
    Alcotest.test_case "host demux" `Quick test_host_demux;
    Alcotest.test_case "duplex end-to-end" `Quick test_duplex_end_to_end;
    Alcotest.test_case "router routing and drops" `Quick
      test_router_routing_and_drops;
    Alcotest.test_case "dumbbell pairwise" `Quick test_dumbbell_cross_traffic;
    Alcotest.test_case "flow monitor" `Quick test_flow_monitor;
  ]
