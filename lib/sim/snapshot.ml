(* Versioned, checksummed binary snapshot container.

   A snapshot is a flat sequence of named, typed sections — int64 and
   float scalars, int64 and float arrays, raw byte strings — framed by a
   magic/version header and an MD5 trailer over everything before it.
   Readers address sections by name, so producers can add sections
   without breaking older state, and a version bump is only needed when
   the meaning of an existing section changes.

   Durability protocol: [save] writes the whole image to [path ^ ".tmp"],
   rotates any existing [path] to [path ^ ".prev"], then renames the tmp
   file into place — so [path] is always either the old complete image or
   the new complete image, never a torn write. [load] verifies the magic,
   version, framing and digest, and on any corruption (truncation, bit
   rot, a crash between the two renames) falls back to the [".prev"]
   image, which was a verified-complete snapshot when it was live.

   All integers are little-endian int64 on the wire; floats travel as
   their IEEE bit patterns, so a round trip is exact. *)

let magic = "RSSSNAP\001"
let version = 1

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* Section kind tags on the wire. *)
let k_i64 = 0
let k_f64 = 1
let k_i64_array = 2
let k_f64_array = 3
let k_bytes = 4

type writer = { buf : Buffer.t }

let writer () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Buffer.add_int64_le buf (Int64.of_int version);
  { buf }

let add_name w name =
  let n = String.length name in
  if n = 0 || n > 255 then
    invalid_arg "Snapshot: section names must be 1..255 bytes";
  Buffer.add_uint8 w.buf n;
  Buffer.add_string w.buf name

let put_i64 w name v =
  add_name w name;
  Buffer.add_uint8 w.buf k_i64;
  Buffer.add_int64_le w.buf v

let put_int w name v = put_i64 w name (Int64.of_int v)

let put_float w name v =
  add_name w name;
  Buffer.add_uint8 w.buf k_f64;
  Buffer.add_int64_le w.buf (Int64.bits_of_float v)

let put_int_array w name a =
  add_name w name;
  Buffer.add_uint8 w.buf k_i64_array;
  let n = Array.length a in
  Buffer.add_int64_le w.buf (Int64.of_int n);
  for i = 0 to n - 1 do
    Buffer.add_int64_le w.buf (Int64.of_int (Array.unsafe_get a i))
  done

let put_float_array w name a =
  add_name w name;
  Buffer.add_uint8 w.buf k_f64_array;
  let n = Array.length a in
  Buffer.add_int64_le w.buf (Int64.of_int n);
  for i = 0 to n - 1 do
    Buffer.add_int64_le w.buf (Int64.bits_of_float (Array.unsafe_get a i))
  done

let put_bytes w name s =
  add_name w name;
  Buffer.add_uint8 w.buf k_bytes;
  Buffer.add_int64_le w.buf (Int64.of_int (String.length s));
  Buffer.add_string w.buf s

let to_string w =
  let body = Buffer.contents w.buf in
  body ^ Digest.string body

let save w ~path =
  let image = to_string w in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try output_string oc image
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc;
  if Sys.file_exists path then Sys.rename path (path ^ ".prev");
  Sys.rename tmp path

(* --- reading ------------------------------------------------------------ *)

type section = { kind : int; off : int; len : int (* elements or bytes *) }

type reader = { data : bytes; sections : (string, section) Hashtbl.t }

let parse data =
  let total = Bytes.length data in
  let digest_len = 16 in
  if total < String.length magic + 8 + digest_len then
    corrupt "truncated snapshot (%d bytes)" total;
  if Bytes.sub_string data 0 (String.length magic) <> magic then
    corrupt "bad magic";
  let body_len = total - digest_len in
  let stored = Bytes.sub_string data body_len digest_len in
  if Digest.subbytes data 0 body_len <> stored then
    corrupt "checksum mismatch";
  let v = Int64.to_int (Bytes.get_int64_le data (String.length magic)) in
  if v <> version then corrupt "unsupported snapshot version %d" v;
  let sections = Hashtbl.create 32 in
  let pos = ref (String.length magic + 8) in
  let need n what =
    if !pos + n > body_len then corrupt "truncated %s at offset %d" what !pos
  in
  while !pos < body_len do
    need 1 "section name length";
    let nlen = Bytes.get_uint8 data !pos in
    incr pos;
    need nlen "section name";
    let name = Bytes.sub_string data !pos nlen in
    pos := !pos + nlen;
    need 1 "section kind";
    let kind = Bytes.get_uint8 data !pos in
    incr pos;
    let sec =
      if kind = k_i64 || kind = k_f64 then begin
        need 8 "scalar payload";
        let s = { kind; off = !pos; len = 1 } in
        pos := !pos + 8;
        s
      end
      else if kind = k_i64_array || kind = k_f64_array || kind = k_bytes
      then begin
        need 8 "section length";
        let len = Int64.to_int (Bytes.get_int64_le data !pos) in
        pos := !pos + 8;
        if len < 0 then corrupt "negative section length in %S" name;
        let payload = if kind = k_bytes then len else 8 * len in
        need payload "section payload";
        let s = { kind; off = !pos; len } in
        pos := !pos + payload;
        s
      end
      else corrupt "unknown section kind %d in %S" kind name
    in
    Hashtbl.replace sections name sec
  done;
  { data; sections }

let load_file path =
  let ic =
    try open_in_bin path with Sys_error m -> corrupt "cannot open: %s" m
  in
  let data =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> In_channel.input_all ic)
  in
  parse (Bytes.unsafe_of_string data)

let load ~path =
  try load_file path
  with Corrupt _ as primary_failure ->
    let prev = path ^ ".prev" in
    if Sys.file_exists prev then load_file prev else raise primary_failure

let of_string s = parse (Bytes.of_string s)

let find r name ~kind ~what =
  match Hashtbl.find_opt r.sections name with
  | None -> corrupt "missing section %S" name
  | Some s when s.kind <> kind -> corrupt "section %S is not %s" name what
  | Some s -> s

let mem r name = Hashtbl.mem r.sections name

let get_i64 r name =
  let s = find r name ~kind:k_i64 ~what:"an int scalar" in
  Bytes.get_int64_le r.data s.off

let get_int r name = Int64.to_int (get_i64 r name)

let get_float r name =
  let s = find r name ~kind:k_f64 ~what:"a float scalar" in
  Int64.float_of_bits (Bytes.get_int64_le r.data s.off)

let get_int_array r name =
  let s = find r name ~kind:k_i64_array ~what:"an int array" in
  Array.init s.len (fun i ->
      Int64.to_int (Bytes.get_int64_le r.data (s.off + (8 * i))))

let get_float_array r name =
  let s = find r name ~kind:k_f64_array ~what:"a float array" in
  Array.init s.len (fun i ->
      Int64.float_of_bits (Bytes.get_int64_le r.data (s.off + (8 * i))))

let get_bytes r name =
  let s = find r name ~kind:k_bytes ~what:"a byte string" in
  Bytes.sub_string r.data s.off s.len
