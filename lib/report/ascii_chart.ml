type series = { label : string; points : (float * float) array }

let glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@' |]

let of_series ~label s =
  let times = Sim.Stats.Series.times s and values = Sim.Stats.Series.values s in
  {
    label;
    points =
      Array.init (Array.length times) (fun i ->
          (Sim.Time.to_sec times.(i), values.(i)));
  }

let line_chart ?(width = 72) ?(height = 20) ?(x_label = "") ?(y_label = "")
    ?(title = "") series_list =
  let non_empty = List.filter (fun s -> Array.length s.points > 0) series_list in
  if non_empty = [] then "(no data to chart)\n"
  else begin
    let fold f init =
      List.fold_left
        (fun acc s -> Array.fold_left f acc s.points)
        init non_empty
    in
    let x_min = fold (fun acc (x, _) -> Float.min acc x) infinity in
    let x_max = fold (fun acc (x, _) -> Float.max acc x) neg_infinity in
    let y_min = Float.min 0. (fold (fun acc (_, y) -> Float.min acc y) infinity) in
    let y_max = fold (fun acc (_, y) -> Float.max acc y) neg_infinity in
    let y_max = if y_max <= y_min then y_min +. 1. else y_max in
    let x_max = if x_max <= x_min then x_min +. 1. else x_max in
    let canvas = Array.make_matrix height width ' ' in
    let plot glyph (x, y) =
      let cx =
        int_of_float
          (Float.round ((x -. x_min) /. (x_max -. x_min) *. float_of_int (width - 1)))
      in
      let cy =
        int_of_float
          (Float.round ((y -. y_min) /. (y_max -. y_min) *. float_of_int (height - 1)))
      in
      let row = height - 1 - cy in
      if row >= 0 && row < height && cx >= 0 && cx < width then
        canvas.(row).(cx) <- glyph
    in
    List.iteri
      (fun i s ->
        let glyph = glyphs.(i mod Array.length glyphs) in
        Array.iter (plot glyph) s.points)
      non_empty;
    let buf = Buffer.create ((width + 12) * (height + 6)) in
    if title <> "" then Buffer.add_string buf (title ^ "\n");
    let legend =
      String.concat "   "
        (List.mapi
           (fun i s ->
             Printf.sprintf "%c %s" glyphs.(i mod Array.length glyphs) s.label)
           non_empty)
    in
    Buffer.add_string buf (legend ^ "\n");
    let y_axis_note =
      Printf.sprintf "%s [%.4g .. %.4g]" y_label y_min y_max
    in
    Buffer.add_string buf (y_axis_note ^ "\n");
    Array.iter
      (fun row ->
        Buffer.add_string buf "  |";
        Buffer.add_string buf (String.init width (fun i -> row.(i)));
        Buffer.add_char buf '\n')
      canvas;
    Buffer.add_string buf ("  +" ^ String.make width '-' ^ "\n");
    Buffer.add_string buf
      (Printf.sprintf "   %s [%.4g .. %.4g]\n" x_label x_min x_max);
    Buffer.contents buf
  end
