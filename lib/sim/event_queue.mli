(** Pending-event set for the discrete-event engine.

    A growable structure-of-arrays 4-ary min-heap ordered by (time,
    birth, insertion sequence), so events scheduled for the same
    instant fire in FIFO order — a property the TCP model relies on
    (e.g. an ACK arriving before a timer set at the same instant it was
    armed for). The [birth] key — the clock value at which the event
    was scheduled — is nondecreasing for events added by a lone
    scheduler, where it changes nothing; it exists so a partition
    barrier can splice in an event born earlier on another scheduler
    and have it rank among same-due local events exactly where a single
    global heap would have put it.

    The hot path is allocation-free: timestamps are unboxed native ints
    held in a flat array, and handles are packed integers rather than
    heap records. Cancellation is O(1) lazy — the entry is flagged and
    skipped when it surfaces — and the queue compacts itself (dropping
    flagged entries in one O(n) pass) whenever cancelled entries
    outnumber live ones, so a cancel-heavy workload cannot keep dead
    weight resident. *)

type t

type handle = private int
(** Token returned by {!add}, used to cancel the event. Handles are
    packed (slot, generation) integers: immediate values, no per-event
    allocation. A handle is only meaningful to the queue that issued
    it. *)

val null : handle
(** An inert handle: {!cancel} on it is a no-op and {!is_cancelled} is
    [true]. Useful to initialise a cell that will hold a real handle. *)

val create : ?initial_capacity:int -> unit -> t

val add : t -> ?birth:Time.t -> time:Time.t -> (unit -> unit) -> handle
(** [add q ~time f] schedules [f] to fire at [time]. [birth] (default
    [Time.zero]) breaks same-[time] ties before insertion order; pass
    the scheduling clock when merging events from several clocks.
    Callers that always use the same [birth] get pure FIFO ties. *)

val add_born : t -> birth:Time.t -> time:Time.t -> (unit -> unit) -> handle
(** {!add} with [birth] required — the allocation-free spelling (an
    omitted-or-supplied optional [Time.t] boxes a [Some] per call).
    The scheduler's per-event hot path uses this. *)

val cancel : t -> handle -> unit
(** [cancel q h] prevents the event from firing. Idempotent; cancelling
    an already-fired (or already-cancelled-and-collected) event is a
    no-op — slot generations make stale handles inert. *)

val is_cancelled : t -> handle -> bool
(** [is_cancelled q h] is [true] when [h] no longer designates a
    pending event that will fire: it was cancelled or has already
    fired. *)

val pop : t -> (Time.t * (unit -> unit)) option
(** [pop q] removes and returns the earliest live event, or [None] if
    the queue holds no live events. Cancelled entries are discarded
    iteratively on the way — a mass cancellation cannot overflow the
    stack. *)

val next_time : t -> Time.t option
(** Time of the earliest live event without removing it. *)

val next_time_ns : t -> int
(** Raw nanosecond timestamp of the earliest live event, or [-1] when
    none remains. The allocation-free twin of {!next_time} — the
    scheduler's run loop lives on this plus {!pop_action_exn}, so
    dispatching an event allocates no words at all. Cancelled roots are
    collected on the way, like {!next_time}. *)

val pop_action_exn : t -> (unit -> unit)
(** Remove the earliest live event and return its action without the
    option/tuple boxing of {!pop}. Raises [Invalid_argument] when the
    queue holds no live event — pair with {!next_time_ns}. *)

val live_count : t -> int
(** Number of scheduled, not-yet-cancelled events. O(1): the counter is
    maintained incrementally across add/cancel/pop. *)

val is_empty : t -> bool
(** [is_empty q] is [live_count q = 0]. O(1). *)
