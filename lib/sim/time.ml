type t = int64

let zero = 0L
let ns n = Int64.of_int n
let us n = Int64.mul (Int64.of_int n) 1_000L
let ms n = Int64.mul (Int64.of_int n) 1_000_000L
let sec n = Int64.mul (Int64.of_int n) 1_000_000_000L

let of_sec s = Int64.of_float (Float.round (s *. 1e9))
let to_sec t = Int64.to_float t /. 1e9
let of_ns_int64 t = t
let to_ns_int64 t = t
let to_ms t = Int64.to_float t /. 1e6

let add = Int64.add
let sub = Int64.sub
let scale t k = Int64.of_float (Float.round (Int64.to_float t *. k))

let div a b =
  assert (b <> 0L);
  Int64.to_float a /. Int64.to_float b

let mul_int t n = Int64.mul t (Int64.of_int n)

let compare = Int64.compare
let equal = Int64.equal
let ( < ) a b = Int64.compare a b < 0
let ( <= ) a b = Int64.compare a b <= 0
let ( > ) a b = Int64.compare a b > 0
let ( >= ) a b = Int64.compare a b >= 0
let min a b = if a <= b then a else b
let max a b = if a >= b then a else b

let is_negative t = t < 0L
let is_positive t = t > 0L
let infinity = Int64.max_int

let pp fmt t =
  let f = Int64.to_float t in
  if Int64.equal t Int64.max_int then Format.fprintf fmt "inf"
  else if Stdlib.( < ) (Float.abs f) 1e3 then Format.fprintf fmt "%Ldns" t
  else if Stdlib.( < ) (Float.abs f) 1e6 then
    Format.fprintf fmt "%.3gus" (f /. 1e3)
  else if Stdlib.( < ) (Float.abs f) 1e9 then
    Format.fprintf fmt "%.4gms" (f /. 1e6)
  else Format.fprintf fmt "%.6gs" (f /. 1e9)

let to_string t = Format.asprintf "%a" pp t
