(** Online statistics used by monitors and the benchmark harness. *)

(** Streaming moments (Welford), min/max and count. *)
module Summary : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0. when empty. *)

  val variance : t -> float
  (** Unbiased sample variance; 0. for fewer than two samples. *)

  val stddev : t -> float
  val min : t -> float
  (** [infinity] when empty. *)

  val max : t -> float
  (** [neg_infinity] when empty. *)

  val total : t -> float
  val merge : t -> t -> t
  (** Combine two summaries as if all samples were added to one. *)

  val pp : Format.formatter -> t -> unit
end

(** Fixed-range, fixed-width-bin histogram with under/overflow bins. *)
module Histogram : sig
  type t

  val create : lo:float -> hi:float -> bins:int -> t
  val add : t -> float -> unit
  val count : t -> int
  val underflow : t -> int
  val overflow : t -> int
  val bin_count : t -> int -> int
  val quantile : t -> float -> float
  (** [quantile h q] for q in [0,1]; linear interpolation within the bin.
      Under/overflowed samples clamp to the range edges. Raises
      [Invalid_argument] on an empty histogram. *)

  val pp : Format.formatter -> t -> unit
end

(** A gauge integrated over simulated time, for time-averaged queue
    occupancy, window size, etc. *)
module Time_weighted : sig
  type t

  val create : now:Time.t -> init:float -> t
  val set : t -> now:Time.t -> float -> unit
  (** Record that the gauge changed to the given value at [now]. Times
      must be non-decreasing. *)

  val value : t -> float
  (** Current gauge value. *)

  val mean : t -> now:Time.t -> float
  (** Time-average from creation to [now]. Equal to [value] if no time
      has elapsed. *)

  val max : t -> float
end

(** An append-only (time, value) series, with helpers used by plots. *)
module Series : sig
  type t

  val create : ?name:string -> unit -> t
  val name : t -> string
  val add : t -> Time.t -> float -> unit
  val length : t -> int
  val times : t -> Time.t array
  val values : t -> float array
  val last_value : t -> float option

  val sample : t -> at:Time.t -> float
  (** Step-function sample: value of the latest point at or before [at];
      0. before the first point. *)

  val to_csv_rows : t -> (float * float) list
  (** (seconds, value) pairs in insertion order. *)
end
