(* qcheck invariants for Tcp.Sack_scoreboard: the SACKed byte count
   never exceeds the bytes in flight above the cumulative ACK point,
   and duplicate SACK blocks are never double-counted. *)

open QCheck2

(* A SACK trace: each ACK advances (or repeats) the cumulative point
   and reports up to four blocks. *)
let gen_event =
  Gen.(
    pair (int_range 0 200)
      (list_size (int_range 1 4)
         (pair (int_range 0 300) (int_range 1 30))))

let gen_trace = Gen.(list_size (int_range 1 25) gen_event)
let print_trace = Print.(list (pair int (list (pair int int))))

let replay sb trace =
  List.iter
    (fun (una, blocks) ->
      let blocks = List.map (fun (lo, len) -> (lo, lo + len)) blocks in
      Tcp.Sack_scoreboard.record sb ~blocks ~una)
    trace

let sacked_bounded_by_flight =
  Test.make ~name:"SACKed bytes never exceed bytes in flight" ~count:500
    ~print:print_trace gen_trace (fun trace ->
      let sb = Tcp.Sack_scoreboard.create () in
      replay sb trace;
      let una = List.fold_left (fun acc (u, _) -> max acc u) 0 trace in
      let hi =
        List.fold_left
          (fun acc (_, blocks) ->
            List.fold_left (fun acc (lo, len) -> max acc (lo + len)) acc blocks)
          una trace
      in
      Tcp.Sack_scoreboard.sacked_bytes sb <= hi - una)

let no_double_count =
  Test.make ~name:"re-recording duplicate blocks adds no bytes" ~count:500
    ~print:print_trace gen_trace (fun trace ->
      let sb = Tcp.Sack_scoreboard.create () in
      replay sb trace;
      let before = Tcp.Sack_scoreboard.sacked_bytes sb in
      replay sb trace;
      Tcp.Sack_scoreboard.sacked_bytes sb = before)

let advance_una_never_grows =
  Test.make ~name:"advance_una never grows the scoreboard" ~count:500
    ~print:Print.(pair print_trace int)
    Gen.(pair gen_trace (int_range 0 400))
    (fun (trace, una) ->
      let sb = Tcp.Sack_scoreboard.create () in
      replay sb trace;
      let before = Tcp.Sack_scoreboard.sacked_bytes sb in
      Tcp.Sack_scoreboard.advance_una sb una;
      Tcp.Sack_scoreboard.sacked_bytes sb <= before)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ sacked_bounded_by_flight; no_double_count; advance_una_never_grows ]
