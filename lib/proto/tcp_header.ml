type flag = Syn | Fin | Rst | Ece | Cwr

type t = {
  src_port : int;
  dst_port : int;
  seq : Seqno.t;
  ack : Seqno.t;
  is_ack : bool;
  flags : flag list;
  wnd : int;
  payload_len : int;
  sack_blocks : (Seqno.t * Seqno.t) list;
  ts_val : Sim.Time.t;
  ts_ecr : Sim.Time.t;
}

let header_bytes = 40
let wire_size t = t.payload_len + header_bytes

let has_flag t f = List.mem f t.flags

let data_end t =
  let virtual_len =
    t.payload_len + (if has_flag t Syn then 1 else 0)
    + if has_flag t Fin then 1 else 0
  in
  Seqno.add t.seq virtual_len

let pp fmt t =
  let flag_str = function
    | Syn -> "S"
    | Fin -> "F"
    | Rst -> "R"
    | Ece -> "E"
    | Cwr -> "W"
  in
  Format.fprintf fmt "seq=%a%s len=%d%s%s" Seqno.pp t.seq
    (if t.is_ack then Format.asprintf " ack=%a" Seqno.pp t.ack else "")
    t.payload_len
    (match t.flags with
    | [] -> ""
    | fs -> " [" ^ String.concat "" (List.map flag_str fs) ^ "]")
    (match t.sack_blocks with
    | [] -> ""
    | bs ->
        " sack:"
        ^ String.concat ","
            (List.map
               (fun (a, b) -> Format.asprintf "%a-%a" Seqno.pp a Seqno.pp b)
               bs))
