(* qcheck invariants for Control.Pid with anti-windup active: for
   arbitrary bounded error sequences and arbitrary positive gains the
   clamped output never leaves [out_min, out_max], and an all-zero
   error sequence commands zero delta at every step. *)

open QCheck2

(* kp > 0, ti > 0 (finite integral action), td >= 0, and clamp bounds
   spanning zero so the zero-error fixed point is admissible. *)
let gen_gains =
  Gen.(
    triple (float_range 0.01 5.) (float_range 0.01 10.) (float_range 0. 1.))

let gen_clamps = Gen.(pair (float_range (-5.) (-0.01)) (float_range 0.01 5.))
let gen_errors = Gen.(list_size (int_range 1 100) (float_range (-50.) 50.))

let print_case =
  Print.(
    pair
      (pair (triple float float float) (pair float float))
      (list float))

let make_controller (kp, ti, td) (out_min, out_max) =
  Control.Pid.create
    (Control.Pid.config ~out_min ~out_max (Control.Pid.pid ~kp ~ti ~td))

let output_within_clamps =
  Test.make ~name:"anti-windup output stays within clamp bounds" ~count:500
    ~print:print_case
    Gen.(pair (pair gen_gains gen_clamps) gen_errors)
    (fun ((gains, clamps), errors) ->
      let out_min, out_max = clamps in
      let c = make_controller gains clamps in
      List.for_all
        (fun error ->
          let o = Control.Pid.step c ~dt:0.05 ~error in
          out_min <= o && o <= out_max)
        errors)

let zero_error_zero_delta =
  Test.make ~name:"zero error sequence yields zero delta" ~count:300
    ~print:Print.(pair (pair (triple float float float) (pair float float)) int)
    Gen.(pair (pair gen_gains gen_clamps) (int_range 1 200))
    (fun ((gains, clamps), steps) ->
      let c = make_controller gains clamps in
      let ok = ref true in
      for _ = 1 to steps do
        if Control.Pid.step c ~dt:0.05 ~error:0. <> 0. then ok := false
      done;
      !ok)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ output_within_clamps; zero_error_zero_delta ]
