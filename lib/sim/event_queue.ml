(* Structure-of-arrays 4-ary min-heap.

   Heap entries live in five parallel arrays (time, birth, seq, action,
   slot),
   so the hot add/pop path touches flat int arrays instead of chasing a
   pointer per entry, and inserting an event allocates nothing: the
   timestamp is an immediate int and the handle is a packed int.

   Handles are (generation << slot_bits) | slot. The slot table maps a
   stable small integer to the entry's liveness, surviving the entry's
   movement inside the heap; the generation is bumped whenever a slot is
   recycled, so a stale handle (event already fired or collected) can
   never cancel an unrelated later event. *)

let slot_bits = 21
let slot_mask = (1 lsl slot_bits) - 1
let max_slots = 1 lsl slot_bits

type handle = int

let null = -1
let nop () = ()

type t = {
  (* heap entries, structure-of-arrays; indices [0, size) are the heap *)
  mutable times : int array;
  mutable births : int array;
  mutable seqs : int array;
  mutable actions : (unit -> unit) array;
  mutable slots : int array;
  mutable size : int; (* entries in the heap, including cancelled ones *)
  mutable live : int; (* entries not cancelled — O(1) is_empty/live_count *)
  mutable next_seq : int;
  (* slot table, indexed by handle slot *)
  mutable gens : int array;
  mutable dead : Bytes.t; (* '\001' = cancelled, awaiting collection *)
  mutable free : int array; (* stack of free slot ids *)
  mutable free_top : int;
}

let create ?(initial_capacity = 64) () =
  let cap = Stdlib.max 1 initial_capacity in
  {
    times = Array.make cap 0;
    births = Array.make cap 0;
    seqs = Array.make cap 0;
    actions = Array.make cap nop;
    slots = Array.make cap (-1);
    size = 0;
    live = 0;
    next_seq = 0;
    gens = Array.make cap 0;
    dead = Bytes.make cap '\000';
    free = Array.init cap (fun i -> cap - 1 - i);
    free_top = cap;
  }

let grow_heap t =
  let old = Array.length t.times in
  let cap = 2 * old in
  let times = Array.make cap 0 in
  Array.blit t.times 0 times 0 old;
  t.times <- times;
  let births = Array.make cap 0 in
  Array.blit t.births 0 births 0 old;
  t.births <- births;
  let seqs = Array.make cap 0 in
  Array.blit t.seqs 0 seqs 0 old;
  t.seqs <- seqs;
  let actions = Array.make cap nop in
  Array.blit t.actions 0 actions 0 old;
  t.actions <- actions;
  let slots = Array.make cap (-1) in
  Array.blit t.slots 0 slots 0 old;
  t.slots <- slots

let grow_slots t =
  let old = Array.length t.gens in
  if old >= max_slots then
    failwith
      (Printf.sprintf
         "Event_queue: handle space exhausted with %d live events (max \
          2^21 = %d pending). A single heap this loaded usually means an \
          unsharded packet-level workload — split the scenario across \
          partitions (\"domains\" > 1) or move dense per-flow timers to \
          Timer_wheel."
         t.live max_slots);
  let cap = Stdlib.min max_slots (2 * old) in
  let gens = Array.make cap 0 in
  Array.blit t.gens 0 gens 0 old;
  t.gens <- gens;
  let dead = Bytes.make cap '\000' in
  Bytes.blit t.dead 0 dead 0 old;
  t.dead <- dead;
  let free = Array.make cap 0 in
  Array.blit t.free 0 free 0 t.free_top;
  for i = 0 to cap - old - 1 do
    free.(t.free_top + i) <- cap - 1 - i
  done;
  t.free <- free;
  t.free_top <- t.free_top + (cap - old)

let alloc_slot t =
  if t.free_top = 0 then grow_slots t;
  t.free_top <- t.free_top - 1;
  let s = t.free.(t.free_top) in
  Bytes.set t.dead s '\000';
  s

(* Recycle a slot once its entry leaves the heap; bumping the generation
   invalidates every handle still pointing at it. *)
let free_slot t s =
  t.gens.(s) <- t.gens.(s) + 1;
  t.free.(t.free_top) <- s;
  t.free_top <- t.free_top + 1

(* (time, birth, seq) lexicographic order: earlier time first, then by
   when the event was scheduled, then FIFO. For a lone queue the clock
   never regresses, so birth is nondecreasing in seq and the order
   degenerates to the classic (time, seq) FIFO. The birth key only
   matters when a partition barrier splices in events born on another
   scheduler (see {!Partition}): it ranks them among same-due locals
   exactly where a single global heap would have. *)

(* The sift loops use unsafe accesses: every index is maintained below
   [size], which never exceeds the shared length of the five arrays. *)

(* Hole-based insertion: shift larger parents down, then write the new
   entry once, instead of repeated four-array swaps. *)
let sift_up t i time birth seq action slot =
  let times = t.times
  and births = t.births
  and seqs = t.seqs
  and actions = t.actions
  and slots = t.slots in
  let i = ref i in
  let moving = ref true in
  while !moving && !i > 0 do
    let p = (!i - 1) / 4 in
    let pt = Array.unsafe_get times p in
    let pb = Array.unsafe_get births p in
    if
      pt > time
      || (pt = time
         && (pb > birth || (pb = birth && Array.unsafe_get seqs p > seq)))
    then begin
      Array.unsafe_set times !i pt;
      Array.unsafe_set births !i pb;
      Array.unsafe_set seqs !i (Array.unsafe_get seqs p);
      Array.unsafe_set actions !i (Array.unsafe_get actions p);
      Array.unsafe_set slots !i (Array.unsafe_get slots p);
      i := p
    end
    else moving := false
  done;
  Array.unsafe_set times !i time;
  Array.unsafe_set births !i birth;
  Array.unsafe_set seqs !i seq;
  Array.unsafe_set actions !i action;
  Array.unsafe_set slots !i slot

(* Sift the entry (time, birth, seq, action, slot) down from index [i]
   in a heap of [n] entries. *)
let sift_down t i n time birth seq action slot =
  let times = t.times
  and births = t.births
  and seqs = t.seqs
  and actions = t.actions
  and slots = t.slots in
  let i = ref i in
  let moving = ref true in
  while !moving do
    let c1 = (4 * !i) + 1 in
    if c1 >= n then moving := false
    else begin
      let m = ref c1 in
      let mt = ref (Array.unsafe_get times c1) in
      let mb = ref (Array.unsafe_get births c1) in
      let ms = ref (Array.unsafe_get seqs c1) in
      let last = Stdlib.min (c1 + 3) (n - 1) in
      for c = c1 + 1 to last do
        let ct = Array.unsafe_get times c in
        let cb = Array.unsafe_get births c in
        if
          ct < !mt
          || (ct = !mt
             && (cb < !mb || (cb = !mb && Array.unsafe_get seqs c < !ms)))
        then begin
          m := c;
          mt := ct;
          mb := cb;
          ms := Array.unsafe_get seqs c
        end
      done;
      if
        !mt < time
        || (!mt = time && (!mb < birth || (!mb = birth && !ms < seq)))
      then begin
        Array.unsafe_set times !i !mt;
        Array.unsafe_set births !i !mb;
        Array.unsafe_set seqs !i !ms;
        Array.unsafe_set actions !i (Array.unsafe_get actions !m);
        Array.unsafe_set slots !i (Array.unsafe_get slots !m);
        i := !m
      end
      else moving := false
    end
  done;
  Array.unsafe_set times !i time;
  Array.unsafe_set births !i birth;
  Array.unsafe_set seqs !i seq;
  Array.unsafe_set actions !i action;
  Array.unsafe_set slots !i slot

(* Required [birth] keeps the hot path allocation-free: an optional
   argument would box a [Some] per event. *)
let add_born t ~birth ~time action =
  assert (not (Time.is_negative time));
  if t.size = Array.length t.times then grow_heap t;
  let slot = alloc_slot t in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let i = t.size in
  t.size <- i + 1;
  t.live <- t.live + 1;
  sift_up t i (Time.to_ns_int time) (Time.to_ns_int birth) seq action slot;
  (t.gens.(slot) lsl slot_bits) lor slot

let add t ?(birth = Time.zero) ~time action = add_born t ~birth ~time action

(* Drop the root entry and recycle its slot. *)
let drop_root t =
  free_slot t t.slots.(0);
  let n = t.size - 1 in
  t.size <- n;
  if n > 0 then begin
    let time = t.times.(n)
    and birth = t.births.(n)
    and seq = t.seqs.(n)
    and action = t.actions.(n)
    and slot = t.slots.(n) in
    t.actions.(n) <- nop;
    t.slots.(n) <- -1;
    sift_down t 0 n time birth seq action slot
  end
  else begin
    t.actions.(0) <- nop;
    t.slots.(0) <- -1
  end

(* Rebuild the heap keeping only live entries (Floyd heapify). Pop order
   is fully determined by the (time, birth, seq) keys, so dropping
   cancelled entries and re-layering the heap cannot perturb event
   ordering. *)
let compact t =
  let n = t.size in
  let j = ref 0 in
  for i = 0 to n - 1 do
    let slot = t.slots.(i) in
    if Bytes.get t.dead slot = '\000' then begin
      t.times.(!j) <- t.times.(i);
      t.births.(!j) <- t.births.(i);
      t.seqs.(!j) <- t.seqs.(i);
      t.actions.(!j) <- t.actions.(i);
      t.slots.(!j) <- slot;
      incr j
    end
    else free_slot t slot
  done;
  for i = !j to n - 1 do
    t.actions.(i) <- nop;
    t.slots.(i) <- -1
  done;
  t.size <- !j;
  for i = ((!j - 2) / 4) downto 0 do
    let time = t.times.(i)
    and birth = t.births.(i)
    and seq = t.seqs.(i)
    and action = t.actions.(i)
    and slot = t.slots.(i) in
    sift_down t i !j time birth seq action slot
  done

(* Compact once cancelled entries outnumber live ones; the size floor
   keeps tiny queues from thrashing. *)
let maybe_compact t =
  if t.size >= 64 && 2 * (t.size - t.live) > t.size then compact t

let cancel t h =
  if h >= 0 then begin
    let slot = h land slot_mask in
    let gen = h lsr slot_bits in
    if
      slot < Array.length t.gens
      && t.gens.(slot) = gen
      && Bytes.get t.dead slot = '\000'
    then begin
      Bytes.set t.dead slot '\001';
      t.live <- t.live - 1;
      maybe_compact t
    end
  end

let is_cancelled t h =
  h < 0
  ||
  let slot = h land slot_mask in
  let gen = h lsr slot_bits in
  slot >= Array.length t.gens
  || t.gens.(slot) <> gen
  || Bytes.get t.dead slot <> '\000'

(* Collect any run of cancelled roots iteratively — a mass cancellation
   must not translate into unbounded recursion. Returns [true] when a
   live root remains at index 0. *)
let skim t =
  let scanning = ref true in
  let found = ref false in
  while !scanning do
    if t.size = 0 then scanning := false
    else if Bytes.get t.dead t.slots.(0) <> '\000' then drop_root t
    else begin
      found := true;
      scanning := false
    end
  done;
  !found

let pop t =
  if skim t then begin
    let time = t.times.(0) and action = t.actions.(0) in
    drop_root t;
    t.live <- t.live - 1;
    Some (Time.of_ns_int time, action)
  end
  else None

let next_time t = if skim t then Some (Time.of_ns_int t.times.(0)) else None

let next_time_ns t = if skim t then t.times.(0) else -1

let pop_action_exn t =
  if not (skim t) then
    invalid_arg "Event_queue.pop_action_exn: no live event";
  let action = t.actions.(0) in
  drop_root t;
  t.live <- t.live - 1;
  action

let live_count t = t.live
let is_empty t = t.live = 0
