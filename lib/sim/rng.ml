type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* SplitMix64 output mix (Steele, Lea & Flood 2014). *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let of_seed seed = { state = mix64 (Int64.of_int seed) }
let state t = t.state
let set_state t s = t.state <- s

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }

(* Seed of an independent task stream, derived from a root seed and a
   stream index.  Mixing the root before adding [stream + 1] gammas
   reproduces the SplitMix64 stream-jump construction: distinct
   (root, stream) pairs land on uncorrelated points of the generator's
   2^64 cycle, so experiment cells sharing a root seed never share a
   random stream.  The top bit is cleared to keep the seed a
   non-negative OCaml int, printable and CLI-round-trippable. *)
let derive_seed ~root ~stream =
  let z =
    Int64.add (mix64 (Int64.of_int root))
      (Int64.mul golden_gamma (Int64.of_int (stream + 1)))
  in
  Int64.to_int (Int64.shift_right_logical (mix64 z) 1)

let float t =
  (* 53 high bits → uniform double in [0, 1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so Int64.to_int cannot land on the native sign bit.
     Rejection-free: modulo bias is negligible for simulation bounds. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let uniform t ~lo ~hi =
  assert (lo <= hi);
  lo +. ((hi -. lo) *. float t)

let exponential t ~mean =
  assert (mean > 0.);
  let u = 1. -. float t in
  -.mean *. Float.log u

let pareto t ~shape ~scale =
  assert (shape > 0. && scale > 0.);
  let u = 1. -. float t in
  scale /. Float.pow u (1. /. shape)

let normal t ~mu ~sigma =
  let u1 = 1. -. float t in
  let u2 = float t in
  let r = Float.sqrt (-2. *. Float.log u1) in
  mu +. (sigma *. r *. Float.cos (2. *. Float.pi *. u2))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
