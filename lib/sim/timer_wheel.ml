(* Hierarchical (hashed) timing wheel, Varghese & Lauck style, laid out
   like the event heap: structure-of-arrays over unboxed ints, packed
   integer handles, zero minor words per arm/cancel/re-arm.

   Four levels of 256 slots over a configurable power-of-two tick. A
   timer due D ticks from the epoch lives at the highest base-256 digit
   where D differs from the current tick [cur] — the Linux placement
   rule. Each slot is an intrusive doubly-linked list appended at the
   tail, so a slot holds its timers in arm order; cascading re-inserts a
   slot's list in list order, which keeps every slot arm-ordered by
   induction. Timers that share a due tick therefore fire in FIFO arm
   order, exactly like the event heap's (time, sequence) order — the
   property the model-based test checks against the heap as oracle.

   [next_due_ns] reports the next *attention* point: the exact due time
   when the earliest work is a level-0 slot, or the cascade boundary of
   the earliest occupied higher-level slot. Advancing to an attention
   point either fires timers or cascades a slot closer to level 0, so a
   driver that repeatedly advances to [next_due_ns] fires every timer at
   exactly its (tick-quantized) due time. *)

let levels = 4
let slot_bits = 8
let slots_per_level = 1 lsl slot_bits (* 256 *)
let slot_mask = slots_per_level - 1
let span_bits = levels * slot_bits (* ticks addressable: 2^32 *)

(* One extra slot past the four levels parks timers whose due tick lies
   beyond the wheel's 2^32-tick span (a backoff-inflated RTO can land
   past the ~78 h horizon). The overflow list is FIFO like any slot and
   is re-scanned whenever a top-level cascade re-homes level 3 — the
   only instants at which a parked timer can have come into range. *)
let overflow_idx = levels * slots_per_level

(* Handle layout: (generation lsl idx_bits) lor node_index. 22 bits of
   node index = 4M concurrent timers; generations make stale handles
   inert, as in Event_queue. *)
let idx_bits = 22
let idx_mask = (1 lsl idx_bits) - 1
let max_nodes = 1 lsl idx_bits

type handle = int

let null = -1

type t = {
  tick_bits : int;
  mutable cur : int; (* current tick; timers due <= cur have fired *)
  (* per-(level,slot) list heads/tails, indexed level*256+slot; -1 = empty *)
  head : int array;
  tail : int array;
  (* node SoA; [next] threads the free list of unused nodes *)
  mutable due : int array; (* due tick *)
  mutable next : int array;
  mutable prev : int array;
  mutable loc : int array; (* level*256+slot while armed; -1 when free *)
  mutable gen : int array;
  mutable nkind : int array;
  mutable nflow : int array;
  mutable free_head : int;
  mutable count : int;
  mutable ovf : int; (* of [count], how many are parked in overflow *)
  mutable cache_ok : bool;
  mutable cached_ns : int; (* valid when cache_ok *)
  on_fire : kind:int -> flow:int -> unit;
}

let create ?(tick_ns = 65536) ?(initial_capacity = 256) ~on_fire () =
  if tick_ns <= 0 || tick_ns land (tick_ns - 1) <> 0 then
    invalid_arg "Timer_wheel.create: tick_ns must be a positive power of two";
  let tick_bits =
    let rec bits n acc = if n = 1 then acc else bits (n lsr 1) (acc + 1) in
    bits tick_ns 0
  in
  let cap = Stdlib.max 16 initial_capacity in
  let t =
    {
      tick_bits;
      cur = 0;
      head = Array.make ((levels * slots_per_level) + 1) (-1);
      tail = Array.make ((levels * slots_per_level) + 1) (-1);
      due = Array.make cap 0;
      next = Array.make cap (-1);
      prev = Array.make cap (-1);
      loc = Array.make cap (-1);
      gen = Array.make cap 0;
      nkind = Array.make cap 0;
      nflow = Array.make cap 0;
      free_head = 0;
      count = 0;
      ovf = 0;
      cache_ok = false;
      cached_ns = -1;
      on_fire;
    }
  in
  for i = 0 to cap - 1 do
    t.next.(i) <- (if i = cap - 1 then -1 else i + 1)
  done;
  t

let pending t = t.count
let tick_ns t = 1 lsl t.tick_bits
let horizon_ns t = ((t.cur + (1 lsl span_bits)) lsl t.tick_bits) - 1
let now_tick t = t.cur

let grow t =
  let cap = Array.length t.due in
  if cap >= max_nodes then
    invalid_arg "Timer_wheel: too many concurrent timers";
  let cap' = Stdlib.min max_nodes (2 * cap) in
  let extend a fill =
    let a' = Array.make cap' fill in
    Array.blit a 0 a' 0 cap;
    a'
  in
  t.due <- extend t.due 0;
  t.next <- extend t.next (-1);
  t.prev <- extend t.prev (-1);
  t.loc <- extend t.loc (-1);
  t.gen <- extend t.gen 0;
  t.nkind <- extend t.nkind 0;
  t.nflow <- extend t.nflow 0;
  for i = cap to cap' - 1 do
    t.next.(i) <- (if i = cap' - 1 then -1 else i + 1)
  done;
  t.free_head <- cap

(* Highest base-256 digit where [due_tick] differs from [cur] decides
   the level; the digit itself is the slot. Returned packed as the
   slot-array index [level*256+slot] — a tuple here would put one
   minor-heap allocation on every arm. *)
let place t due_tick =
  let x = due_tick lxor t.cur in
  if x lsr slot_bits = 0 then due_tick land slot_mask
  else if x lsr (2 * slot_bits) = 0 then
    (1 lsl slot_bits) lor ((due_tick lsr slot_bits) land slot_mask)
  else if x lsr (3 * slot_bits) = 0 then
    (2 lsl slot_bits) lor ((due_tick lsr (2 * slot_bits)) land slot_mask)
  else (3 lsl slot_bits) lor ((due_tick lsr (3 * slot_bits)) land slot_mask)

let append_slot t ~idx n =
  let tl = Array.unsafe_get t.tail idx in
  t.loc.(n) <- idx;
  t.prev.(n) <- tl;
  t.next.(n) <- -1;
  if tl < 0 then Array.unsafe_set t.head idx n
  else Array.unsafe_set t.next tl n;
  Array.unsafe_set t.tail idx n

let unlink t n =
  let idx = t.loc.(n) in
  let p = t.prev.(n) in
  let nx = t.next.(n) in
  if p < 0 then Array.unsafe_set t.head idx nx else Array.unsafe_set t.next p nx;
  if nx < 0 then Array.unsafe_set t.tail idx p
  else Array.unsafe_set t.prev nx p;
  t.loc.(n) <- -1

let release t n =
  t.gen.(n) <- (t.gen.(n) + 1) land ((1 lsl (62 - idx_bits)) - 1);
  t.next.(n) <- t.free_head;
  t.loc.(n) <- -1;
  t.free_head <- n

(* Attention contribution of a node at [level]: its exact due for level
   0, else the tick where the wheel will cascade its slot (low digits
   zeroed) — always > cur because the slot digit exceeds cur's. For
   [level = levels] (the overflow slot) this degenerates to the start of
   the node's 2^32-tick era, which is where the top-level cascade that
   can re-home it happens — also always > cur, because an overflow node
   lives in a strictly later era than [cur]. *)
let attention_ns t ~level due_tick =
  let shift = level * slot_bits in
  ((due_tick lsr shift) lsl shift) lsl t.tick_bits

let arm t ~due_ns ~kind ~flow =
  if due_ns < 0 then invalid_arg "Timer_wheel.arm: negative due time";
  (* Round up so a timer never fires before its requested time. *)
  let due_tick = (due_ns + (1 lsl t.tick_bits) - 1) asr t.tick_bits in
  let due_tick = if due_tick < t.cur then t.cur else due_tick in
  if t.free_head < 0 then grow t;
  let n = t.free_head in
  t.free_head <- t.next.(n);
  t.due.(n) <- due_tick;
  t.nkind.(n) <- kind;
  t.nflow.(n) <- flow;
  (* Beyond the 2^32-tick span the base-256 digits are meaningless for
     placement; park the node in the overflow list instead of failing. *)
  let idx =
    if (due_tick lxor t.cur) lsr span_bits <> 0 then overflow_idx
    else place t due_tick
  in
  append_slot t ~idx n;
  if idx = overflow_idx then t.ovf <- t.ovf + 1;
  t.count <- t.count + 1;
  (if t.cache_ok then
     let a = attention_ns t ~level:(idx lsr slot_bits) due_tick in
     if t.cached_ns < 0 || a < t.cached_ns then t.cached_ns <- a);
  (t.gen.(n) lsl idx_bits) lor n

let is_pending t h =
  h >= 0
  &&
  let n = h land idx_mask in
  n < Array.length t.due && t.gen.(n) = h lsr idx_bits && t.loc.(n) >= 0

let cancel t h =
  if is_pending t h then begin
    let n = h land idx_mask in
    (if t.cache_ok then
       let level = t.loc.(n) lsr slot_bits in
       if attention_ns t ~level t.due.(n) = t.cached_ns then
         t.cache_ok <- false);
    if t.loc.(n) = overflow_idx then t.ovf <- t.ovf - 1;
    unlink t n;
    release t n;
    t.count <- t.count - 1
  end

(* First occupied slot index >= [from] at [level], or -1. *)
let scan_level t ~level ~from =
  let base = level lsl slot_bits in
  let s = ref from and found = ref (-1) in
  while !found < 0 && !s < slots_per_level do
    if Array.unsafe_get t.head (base lor !s) >= 0 then found := !s;
    incr s
  done;
  !found

let recompute_cache t =
  if t.count = 0 then begin
    t.cache_ok <- true;
    t.cached_ns <- -1
  end
  else begin
    let attention = ref (-1) in
    (* Level 0 holds exact dues within the current block. *)
    let s0 = scan_level t ~level:0 ~from:(t.cur land slot_mask) in
    if s0 >= 0 then
      attention := ((t.cur land lnot slot_mask) lor s0) lsl t.tick_bits
    else begin
      (* Earliest higher-level slot past the current digit; its cascade
         boundary is the attention point. The slot at the current digit
         is empty by the placement invariant. *)
      let level = ref 1 in
      while !attention < 0 && !level < levels do
        let k = !level in
        let digit = (t.cur lsr (k * slot_bits)) land slot_mask in
        let s = scan_level t ~level:k ~from:(digit + 1) in
        (if s >= 0 then
           let shift = (k + 1) * slot_bits in
           let base = (t.cur lsr shift) lsl shift in
           attention := (base lor (s lsl (k * slot_bits))) lsl t.tick_bits);
        incr level
      done
    end;
    (* Overflow nodes contribute their era start: the top-level cascade
       there is what can re-home them, so the wheel must be advanced at
       least that far. Any in-range timer's attention is earlier (it
       lies inside the current era), so this min only matters when the
       wheel holds nothing but parked timers. *)
    let n = ref t.head.(overflow_idx) in
    while !n >= 0 do
      let a = attention_ns t ~level:levels t.due.(!n) in
      if !attention < 0 || a < !attention then attention := a;
      n := t.next.(!n)
    done;
    t.cache_ok <- true;
    t.cached_ns <- !attention
  end

let next_due_ns t =
  if not t.cache_ok then recompute_cache t;
  t.cached_ns

(* Detach the list at (level,slot) and re-place each node (in order, so
   slot FIFO order survives the cascade). Nodes always land at a lower
   level because their slot digit now matches [cur]'s. *)
let cascade t ~level ~slot =
  let idx = (level lsl slot_bits) lor slot in
  let n = ref t.head.(idx) in
  t.head.(idx) <- -1;
  t.tail.(idx) <- -1;
  while !n >= 0 do
    let node = !n in
    n := t.next.(node);
    append_slot t ~idx:(place t t.due.(node)) node
  done

(* Walk the overflow list in FIFO order, re-homing every node whose due
   tick has come within the wheel's span; still-out-of-range nodes are
   re-appended, so relative order inside the overflow list survives.
   Called on every top-level cascade — entering a new era is a special
   case of a level-3 digit change, so no parked timer can be missed. *)
let refill_overflow t =
  let n = ref t.head.(overflow_idx) in
  t.head.(overflow_idx) <- -1;
  t.tail.(overflow_idx) <- -1;
  t.ovf <- 0;
  while !n >= 0 do
    let node = !n in
    n := t.next.(node);
    let due = t.due.(node) in
    let idx =
      if (due lxor t.cur) lsr span_bits <> 0 then overflow_idx
      else place t due
    in
    if idx = overflow_idx then t.ovf <- t.ovf + 1;
    append_slot t ~idx node
  done

(* Start of the lowest 2^32-tick era holding a parked timer — the first
   tick at which any overflow node can be re-homed. [max_int] when the
   overflow list is empty. *)
let overflow_era_start t =
  let best = ref max_int in
  let n = ref t.head.(overflow_idx) in
  while !n >= 0 do
    let era = (t.due.(!n) lsr span_bits) lsl span_bits in
    if era < !best then best := era;
    n := t.next.(!n)
  done;
  !best

(* Fire every node in level-0 slot [slot] (all due exactly at [cur]).
   The list is detached first so a handler re-arming at the current tick
   appends to an empty slot and is picked up by the outer advance loop
   rather than extending the list being walked. *)
let fire_slot t ~slot =
  let idx = slot in
  let n = ref t.head.(idx) in
  t.head.(idx) <- -1;
  t.tail.(idx) <- -1;
  while !n >= 0 do
    let node = !n in
    n := t.next.(node);
    let kind = t.nkind.(node) and flow = t.nflow.(node) in
    release t node;
    t.count <- t.count - 1;
    t.on_fire ~kind ~flow
  done

(* Level-major slot order, FIFO within a slot. Re-arming the visited
   timers in visit order into a wheel at the same [cur] reproduces every
   slot list exactly: a due tick maps to one (level,slot) for a fixed
   [cur], and within a slot FIFO arm order is preserved — so iteration
   order is a faithful serialization order for snapshots. *)
let iter_pending t ~f =
  for idx = 0 to overflow_idx do
    let n = ref (Array.unsafe_get t.head idx) in
    while !n >= 0 do
      let node = !n in
      n := t.next.(node);
      f
        ~due_ns:(t.due.(node) lsl t.tick_bits)
        ~kind:t.nkind.(node) ~flow:t.nflow.(node)
    done
  done

let drain t =
  for idx = 0 to overflow_idx do
    let n = ref t.head.(idx) in
    t.head.(idx) <- -1;
    t.tail.(idx) <- -1;
    while !n >= 0 do
      let node = !n in
      n := t.next.(node);
      release t node
    done
  done;
  t.count <- 0;
  t.ovf <- 0;
  t.cache_ok <- false

let advance t ~now_ns =
  if now_ns < 0 then invalid_arg "Timer_wheel.advance: negative time";
  let target = now_ns asr t.tick_bits in
  let continue = ref (target > t.cur || t.count > 0) in
  while !continue do
    let block_base = t.cur land lnot slot_mask in
    let s0 = scan_level t ~level:0 ~from:(t.cur land slot_mask) in
    if s0 >= 0 && block_base lor s0 <= target then begin
      t.cur <- block_base lor s0;
      fire_slot t ~slot:s0
    end
    else if t.count = t.ovf then begin
      (* Levels 0–3 are empty, so nothing can fire or cascade before a
         parked timer's era begins: jump over the idle blocks in one
         step instead of walking them 256 ticks at a time. Overflow
         nodes live in strictly later eras than [cur], so the jump
         always moves forward and never passes a due time. *)
      let era = overflow_era_start t in
      if era > target then begin
        if target > t.cur then t.cur <- target;
        continue := false
      end
      else begin
        t.cur <- era;
        refill_overflow t
      end
    end
    else begin
      let next_block = block_base + slots_per_level in
      if next_block > target then begin
        if target > t.cur then t.cur <- target;
        continue := false
      end
      else begin
        let old = t.cur in
        t.cur <- next_block;
        (* Entering a new block at level k re-homes that level's slot
           for the new position; top level first so nodes cascade all
           the way down in one pass. *)
        if old lsr (3 * slot_bits) <> t.cur lsr (3 * slot_bits) then begin
          cascade t ~level:3
            ~slot:((t.cur lsr (3 * slot_bits)) land slot_mask);
          if t.head.(overflow_idx) >= 0 then refill_overflow t
        end;
        if old lsr (2 * slot_bits) <> t.cur lsr (2 * slot_bits) then
          cascade t ~level:2
            ~slot:((t.cur lsr (2 * slot_bits)) land slot_mask);
        cascade t ~level:1 ~slot:((t.cur lsr slot_bits) land slot_mask)
      end
    end
  done;
  t.cache_ok <- false
