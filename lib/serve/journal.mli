(** Write-ahead job journal: one compact JSON record per line.

    Every state transition of the job service is appended (and flushed)
    here before it takes effect, so a daemon killed at any instant —
    SIGKILL included — can {!replay} the journal on restart and
    reconstruct its queue: submitted minus finished minus quarantined
    is still pending, and a finished job is never re-run. *)

type event =
  | Submitted of { job : string; spec : Report.Json.t }
      (** a job entered the queue; [spec] is its full scenario JSON, so
          replay needs nothing but the journal *)
  | Started of { job : string; attempt : int }  (** attempts count from 1 *)
  | Checkpointed of { job : string; snapshot : string; at_ns : int }
      (** drained at a checkpoint boundary: resumable from [snapshot] *)
  | Finished of { job : string; outcome : string }
      (** artifacts are on disk at [outcome] *)
  | Failed of {
      job : string;
      attempt : int;
      error : string;
      retry_in_s : float;  (** backoff before the next attempt *)
    }
  | Quarantined of { job : string; artifact : string; error : string }
      (** given up: the replayable failure artifact is at [artifact] *)

type t

val open_append : path:string -> t
(** Open (creating if absent) for appending. *)

val append : t -> event -> unit
(** Write one record line and flush — the WAL barrier. *)

val close : t -> unit

val replay : path:string -> event list
(** Records in append order. A missing file is an empty journal; a torn
    tail (crash mid-append) silently ends the replay at the last intact
    line — every pass stops at the same place, so later appends are
    still readable. *)

val event_to_json : event -> Report.Json.t
val event_of_json : Report.Json.t -> (event, string) result
