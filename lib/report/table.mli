(** Aligned plain-text tables for the experiment harness output. *)

type align = Left | Right

val render :
  ?aligns:align list ->
  headers:string list ->
  rows:string list list ->
  unit ->
  string
(** Column widths auto-fit; numeric columns usually read best with
    [Right] (the default for every column is [Left]). Rows shorter than
    the header are padded with empty cells. *)

val cell_f : ?decimals:int -> float -> string
(** Fixed-point float cell (default 2 decimals). *)

val cell_i : int -> string
