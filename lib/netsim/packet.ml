type t = {
  id : int;
  flow : int;
  src : int;
  dst : int;
  created : Sim.Time.t;
  payload : Proto.Payload.t;
  mutable ecn_ce : bool;
}

let make ~id ~flow ~src ~dst ~created payload =
  { id; flow; src; dst; created; payload; ecn_ce = false }

let size t = Proto.Payload.wire_size t.payload

let pp fmt t =
  Format.fprintf fmt "#%d flow=%d %d->%d %a" t.id t.flow t.src t.dst
    Proto.Payload.pp t.payload

module Id_source = struct
  type source = { mutable next_id : int }

  let create () = { next_id = 0 }

  let next s =
    let id = s.next_id in
    s.next_id <- id + 1;
    id
end
