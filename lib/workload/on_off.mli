(** On-off (bursty) UDP source: exponentially distributed burst and
    silence durations, CBR emission while on. Models the interactive /
    bursty cross traffic sharing the host NIC in the paper's §2
    motivation. *)

type t

val start :
  host:Netsim.Host.t ->
  dst:int ->
  flow:int ->
  ids:Netsim.Packet.Id_source.source ->
  rng:Sim.Rng.t ->
  peak_rate:Sim.Units.rate ->
  mean_on:Sim.Time.t ->
  mean_off:Sim.Time.t ->
  ?packet_bytes:int ->
  unit ->
  t

val stop : t -> unit
val packets_sent : t -> int
val mean_rate : t -> Sim.Units.rate
(** Long-run average offered rate implied by the parameters. *)
