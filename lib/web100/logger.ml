type t = {
  sched : Sim.Scheduler.t;
  group : Group.t;
  vars : string list;
  table : (string, Sim.Stats.Series.t) Hashtbl.t;
  ticks : Sim.Time.t list ref; (* reversed *)
  handle : Sim.Scheduler.handle ref;
}

let start sched ~period ~vars group =
  let table = Hashtbl.create (List.length vars) in
  List.iter
    (fun v ->
      (* Hashtbl.add would shadow the first binding: the later series
         gets sampled twice and every CSV column after [v] misaligns. *)
      if Hashtbl.mem table v then
        invalid_arg (Printf.sprintf "Web100.Logger.start: duplicate var %S" v);
      Hashtbl.add table v (Sim.Stats.Series.create ~name:v ()))
    vars;
  let ticks = ref [] in
  let sample () =
    let now = Sim.Scheduler.now sched in
    ticks := now :: !ticks;
    List.iter
      (fun v ->
        let value = Option.value ~default:0. (Group.read group v) in
        Sim.Stats.Series.add (Hashtbl.find table v) now value)
      vars
  in
  let handle = Sim.Scheduler.every sched period sample in
  { sched; group; vars; table; ticks; handle }

let stop t = Sim.Scheduler.cancel t.sched !(t.handle)

let series t name =
  match Hashtbl.find_opt t.table name with
  | Some s -> s
  | None -> raise Not_found

let to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "time_s";
  List.iter
    (fun v ->
      Buffer.add_char buf ',';
      Buffer.add_string buf v)
    t.vars;
  Buffer.add_char buf '\n';
  let times = List.rev !(t.ticks) in
  (* One values snapshot per var, hoisted out of the tick loop:
     Series.values copies the whole backing array, so calling it per
     cell made this O(ticks^2 * vars). *)
  let columns =
    List.map (fun v -> Sim.Stats.Series.values (Hashtbl.find t.table v)) t.vars
  in
  List.iteri
    (fun i tick ->
      Buffer.add_string buf (Printf.sprintf "%.6f" (Sim.Time.to_sec tick));
      List.iter
        (fun values ->
          Buffer.add_string buf (Printf.sprintf ",%.6g" values.(i)))
        columns;
      Buffer.add_char buf '\n')
    times;
  Buffer.contents buf
