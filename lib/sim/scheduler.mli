(** Discrete-event simulation loop.

    A scheduler owns the simulated clock and the pending-event set. All
    model components share one scheduler and advance time only by firing
    events; there is no wall-clock coupling, so runs are deterministic
    given a fixed RNG seed. *)

type t

type handle = Event_queue.handle

val create : ?seed:int -> unit -> t
(** [create ~seed ()] makes a scheduler whose clock reads {!Time.zero}
    and whose RNG is seeded with [seed] (default 1). *)

val now : t -> Time.t
(** Current simulated time. *)

val rng : t -> Rng.t
(** The simulation-wide random stream. Components needing independent
    streams should {!Rng.split} it at setup time. *)

val seed : t -> int
(** The seed this scheduler was created with. *)

val derive_rng : t -> Rng.t
(** A fresh stream derived from {!seed} via {!Rng.derive_seed}, numbered
    by creation order. Unlike {!Rng.split} on the shared {!rng}, this
    consumes nothing from the simulation-wide stream, so adding a
    component that derives its own stream does not perturb the random
    decisions of unrelated components. Deterministic for a fixed seed
    and construction order. *)

val restore_clock : t -> Time.t -> unit
(** Set the clock directly — the snapshot-restore and partition-barrier
    hook. Normal runs advance the clock exclusively by firing events;
    this is for a restored run resuming from its checkpoint time, or a
    partition whose peers have all reached a barrier. Raises
    [Invalid_argument] if an event (heap or wheel) earlier than the new
    time is still pending — jumping over it would fire it in the past. *)

val at : ?birth:Time.t -> t -> Time.t -> (unit -> unit) -> handle
(** [at t time f] schedules [f] for absolute [time]. Raises
    [Invalid_argument] if [time] is in the past. [birth] (default
    [now t]) is the same-[time] tiebreak recorded with the event; only
    the partition barrier passes it, to splice a cross-partition
    delivery in at the rank its legacy single-heap scheduling time
    would have given it. *)

val after : t -> Time.t -> (unit -> unit) -> handle
(** [after t delay f] schedules [f] at [now t + delay]. A non-positive
    delay is clamped to "immediately" (still dispatched through the event
    loop, preserving run-to-completion semantics). *)

val every : t -> ?start:Time.t -> Time.t -> (unit -> unit) -> handle ref
(** [every t ~start period f] fires [f] at [start] (default: one period
    from now) and then every [period]. Cancel via the returned ref, which
    always holds the handle of the next pending occurrence. One closure
    is allocated per timer, not per tick. *)

val cancel : t -> handle -> unit

val run : ?until:Time.t -> t -> unit
(** [run ?until t] fires events in time order. With [until], stops once
    the next event lies strictly beyond it and sets the clock to [until];
    without it, runs until no live event remains. *)

val step : t -> bool
(** [step t] fires exactly the next event. Returns [false] when no live
    event remains. *)

val next_ns : t -> int
(** Absolute time (ns) of the next pending event, merging the heap and
    the attached wheel exactly as {!step} would dispatch them; [-1] when
    nothing is pending. This is the per-partition bound the conservative
    {!Partition} synchronizer computes its safe horizon from. *)

val pending : t -> int
(** Live events still scheduled (O(1)). *)

val attach_wheel : t -> Timer_wheel.t -> unit
(** Put a {!Timer_wheel} under the run loop: {!step}/{!run} interleave
    its (tick-quantized) firings with heap events in time order, heap
    first on ties — so a scheduler with an idle wheel behaves exactly
    like one without. Wheels serve the dense per-flow timer regime
    (RTO, pacing, per-round clocks); the heap remains the home for
    sparse or non-quantized events. Several wheels may be attached
    (each sharded [many_flows] engine owns one); attention ties among
    wheels resolve in attach order, which is model-construction order
    and therefore deterministic. *)

val wheel : t -> Timer_wheel.t option
(** The first wheel installed by {!attach_wheel}, if any. *)

val set_tracer : t -> Trace.t option -> unit
(** Install (or remove) an event tracer. With a tracer installed, each
    dispatched event emits a [sched.dispatch] record — a category that
    is off in {!Trace.Code.default_mask}, so the dispatch firehose costs
    one masked emit unless explicitly enabled. With [None] (the
    default) the run loop pays one pattern match and allocates
    nothing. *)

val tracer : t -> Trace.t option
(** The tracer installed by {!set_tracer}, if any — components hanging
    off this scheduler fetch it here at wiring time. *)
