(* Flow-level (per-RTT-round) engine for very large flow counts.

   Packet-level simulation carries a per-packet event cost that caps
   practical scale around thousands of flows; this engine drops to the
   abstraction the mean-field literature analyses (Reynier: N AIMD
   windows coupled through one fluid RED queue) so a million concurrent
   flows fit in a {!Tcp.Flow_table} and advance through a
   {!Sim.Timer_wheel} with O(1) allocation-free timer churn:

   - Per-flow state is a Flow_table row: cwnd/ssthresh driven through
     the {!Tcp.Cong_avoid} policy hooks by index, a budget column for
     finite transfer sizes, a per-row xorshift stream for loss draws
     and the row's round-timer handle. No per-flow closure exists
     anywhere: all rounds dispatch through the engine's single
     [on_fire] callback.

   - The bottleneck is a fluid integrator: between events the backlog
     changes at (Σcwnd/RTT − C), clamped to [0, buffer]; RTT is the
     base RTT plus q/C. Loss is Bernoulli per round with per-packet
     probability taken from the shared RED curve
     ({!Netsim.Queue_disc.red_drop_probability}) over a line-rate EWMA
     of the queue, or from the tail-drop overflow fraction when RED is
     off — so a round of W bytes survives with (1−p)^(W/mss).

   - Each flow's round timer re-arms every RTT: slow start doubles the
     window per round until ssthresh, congestion avoidance applies the
     policy's per-ACK on_ack hook once per packet of the round, and a
     lost round applies on_loss and drops to avoidance.

   Everything is deterministic for a fixed seed: arrivals and sizes
   come from one dedicated stream, loss draws from per-row streams
   derived from the engine seed, and the wheel fires FIFO within a
   tick. *)

module Ft = Tcp.Flow_table
module Wheel = Sim.Timer_wheel

type params = {
  flows : int;
  arrival_rate : float option;
      (* flows/s; None = all present at start *)
  arrival_pareto_shape : float option;
      (* heavy-tailed inter-arrival gaps; None = exponential *)
  mean_size : int option; (* bytes per flow; None = persistent *)
  size_pareto_shape : float;
  mss : int;
  init_cwnd_segments : int;
  capacity_bytes_per_sec : float;
  base_rtt : Sim.Time.t;
  buffer_packets : int;
  red : Netsim.Queue_disc.red_params option;
}

let kind_round = 0
let kind_arrival = 1

type t = {
  sched : Sim.Scheduler.t;
  wheel : Wheel.t;
  table : Ft.t;
  cc : Tcp.Cong_avoid.t;
  p : params;
  seed : int;
  rng : Sim.Rng.t; (* arrivals + sizes only *)
  mutable q_bytes : float;
  mutable avg_pkts : float; (* RED's EWMA of the queue, packets *)
  mutable last_update_ns : int;
  mutable sum_cwnd : float; (* bytes across active flows *)
  mutable active : int;
  mutable created : int;
  mutable completed : int;
  mutable delivered : float; (* goodput bytes across all flows *)
  mutable loss_events : int;
  mutable stopped : bool;
}

let mssf t = float_of_int t.p.mss
let buffer_bytes t = float_of_int t.p.buffer_packets *. mssf t

(* Serialization time of one mss packet — RED's idle-decay clock. *)
let pkt_time t = mssf t /. t.p.capacity_bytes_per_sec

let rtt_s t =
  Sim.Time.to_sec t.p.base_rtt +. (t.q_bytes /. t.p.capacity_bytes_per_sec)

(* Fluid integration of the backlog since the last event, then the
   line-rate EWMA the RED curve reads. One multiply-adds per event, no
   allocation. *)
let update_queue t ~now_ns =
  let dt = float_of_int (now_ns - t.last_update_ns) *. 1e-9 in
  if dt > 0. then begin
    let inflow = t.sum_cwnd /. rtt_s t in
    let q = t.q_bytes +. ((inflow -. t.p.capacity_bytes_per_sec) *. dt) in
    let q = if q < 0. then 0. else q in
    let cap = buffer_bytes t in
    t.q_bytes <- (if q > cap then cap else q);
    (match t.p.red with
    | None -> ()
    | Some rp ->
        (* Apply the per-packet weight once per line-rate arrival
           elapsed: avg ← q + (avg−q)·(1−w)^(dt/pkt_time). *)
        let m = dt /. pkt_time t in
        let keep = (1. -. rp.Netsim.Queue_disc.weight) ** m in
        let q_pkts = t.q_bytes /. mssf t in
        t.avg_pkts <- q_pkts +. ((t.avg_pkts -. q_pkts) *. keep));
    t.last_update_ns <- now_ns
  end

(* Per-packet drop/mark probability the flows currently face. Tail
   drop in fluid form: once the buffer is full the queue sheds exactly
   the excess arrival rate. It compounds with RED's early drops — in
   overload RED alone may not shed enough (its curve tops out against
   a clamped average), and without the overflow term delivered bytes
   would exceed the link capacity. *)
let drop_probability t =
  let overflow =
    if t.q_bytes >= buffer_bytes t -. (0.5 *. mssf t) then
      let inflow = t.sum_cwnd /. rtt_s t in
      if inflow <= t.p.capacity_bytes_per_sec then 0.
      else (inflow -. t.p.capacity_bytes_per_sec) /. inflow
    else 0.
  in
  match t.p.red with
  | None -> overflow
  | Some rp ->
      let early = Netsim.Queue_disc.red_drop_probability rp ~avg:t.avg_pkts in
      1. -. ((1. -. early) *. (1. -. overflow))

let phase_slow_start = 1
let phase_cong_avoid = 2

let arm_round t row =
  let now_ns = Sim.Time.to_ns_int (Sim.Scheduler.now t.sched) in
  let due_ns = now_ns + int_of_float (rtt_s t *. 1e9) in
  Ft.set_timer t.table row (Wheel.arm t.wheel ~due_ns ~kind:kind_round ~flow:row :> int)

let retire t row =
  t.sum_cwnd <- t.sum_cwnd -. Ft.cwnd t.table row;
  t.active <- t.active - 1;
  t.completed <- t.completed + 1;
  Ft.free t.table row

let launch t =
  let row = Ft.alloc t.table in
  let idx = t.created in
  t.created <- idx + 1;
  t.active <- t.active + 1;
  let cwnd = float_of_int (t.p.init_cwnd_segments * t.p.mss) in
  Ft.set_cwnd t.table row cwnd;
  Ft.set_ssthresh t.table row infinity;
  Ft.set_phase t.table row phase_slow_start;
  (* Loss draws come from the row's own stream so one flow's history
     never perturbs another's. Stream ids sit far above the 0x5F10+i
     and 0xFA1/0xFA2 ranges Core.Spec reserves. *)
  Ft.seed_rng t.table row
    (Sim.Rng.derive_seed ~root:t.seed ~stream:(0x6D0000 + idx));
  (let size =
     match t.p.mean_size with
     | None -> -1
     | Some mean ->
         let shape = t.p.size_pareto_shape in
         let scale = float_of_int mean *. (shape -. 1.) /. shape in
         Stdlib.max 1 (int_of_float (Sim.Rng.pareto t.rng ~shape ~scale))
   in
   Ft.set_budget t.table row size);
  t.sum_cwnd <- t.sum_cwnd +. cwnd;
  arm_round t row

let schedule_arrival t =
  if t.created < t.p.flows && not t.stopped then
    match t.p.arrival_rate with
    | None -> ()
    | Some rate ->
        let mean = 1. /. rate in
        let gap =
          match t.p.arrival_pareto_shape with
          | None -> Sim.Rng.exponential t.rng ~mean
          | Some shape ->
              let scale = mean *. (shape -. 1.) /. shape in
              Sim.Rng.pareto t.rng ~shape ~scale
        in
        let now_ns = Sim.Time.to_ns_int (Sim.Scheduler.now t.sched) in
        ignore
          (Wheel.arm t.wheel
             ~due_ns:(now_ns + int_of_float (gap *. 1e9))
             ~kind:kind_arrival ~flow:0)

(* One RTT round of flow [row]: Bernoulli loss over the W/mss packets
   of the round, then the policy's growth or decrease, delivered-byte
   accounting, and re-arm — all through table columns, no closure. *)
let round t row =
  let now = Sim.Scheduler.now t.sched in
  let w = Ft.cwnd t.table row in
  let p = drop_probability t in
  let pkts = w /. mssf t in
  let p_round = 1. -. ((1. -. p) ** pkts) in
  let lost = p_round > 0. && Ft.rng_float t.table row < p_round in
  if lost then begin
    t.loss_events <- t.loss_events + 1;
    Ft.ca_on_loss t.table row t.cc ~flight:(int_of_float w) ~mss:t.p.mss ~now;
    Ft.set_phase t.table row phase_cong_avoid
  end
  else if Ft.phase t.table row = phase_slow_start then begin
    (* Every byte of the round acked: the window doubles. *)
    let next = w *. 2. in
    let ss = Ft.ssthresh t.table row in
    if next >= ss then begin
      Ft.set_cwnd t.table row ss;
      Ft.set_phase t.table row phase_cong_avoid
    end
    else Ft.set_cwnd t.table row next
  end
  else begin
    (* The policy hooks are per-ACK (Reno adds mss²/cwnd per segment
       acked), so a loss-free round applies one hook call per packet of
       the window — matching a packet-level sender's growth of ~1
       mss/RTT in avoidance. The work per real-time unit is bounded by
       the line rate in packets, not by the flow count. *)
    let srtt = Some (Sim.Time.of_sec (rtt_s t)) in
    let min_rtt = Some t.p.base_rtt in
    let acks = Stdlib.max 1 (int_of_float pkts) in
    for _ = 1 to acks do
      Ft.ca_on_ack t.table row t.cc ~newly_acked:t.p.mss ~mss:t.p.mss ~srtt
        ~min_rtt ~now
    done
  end;
  (* Goodput: the surviving fraction of the round's bytes. *)
  let got = w *. (1. -. p) in
  t.delivered <- t.delivered +. got;
  let done_ =
    let b = Ft.budget t.table row in
    b >= 0
    &&
    let b' = b - int_of_float got in
    Ft.set_budget t.table row (Stdlib.max 0 b');
    b' <= 0
  in
  if done_ then retire t row
  else begin
    t.sum_cwnd <- t.sum_cwnd +. (Ft.cwnd t.table row -. w);
    arm_round t row
  end

let on_fire t ~kind ~flow =
  update_queue t ~now_ns:(Sim.Time.to_ns_int (Sim.Scheduler.now t.sched));
  if kind = kind_arrival then begin
    if t.created < t.p.flows && not t.stopped then begin
      launch t;
      schedule_arrival t
    end
  end
  else if Ft.is_live t.table flow then round t flow

let default_params =
  {
    flows = 1000;
    arrival_rate = None;
    arrival_pareto_shape = None;
    mean_size = None;
    size_pareto_shape = 1.2;
    mss = 1500;
    init_cwnd_segments = 2;
    capacity_bytes_per_sec = 100e6 /. 8.;
    base_rtt = Sim.Time.ms 60;
    buffer_packets = 250;
    red = None;
  }

let start ~sched ~rng ~seed ?(cong_avoid = Tcp.Cong_avoid.reno ()) params =
  if params.flows <= 0 then
    invalid_arg "Many_flows.start: need a positive flow count";
  if params.capacity_bytes_per_sec <= 0. then
    invalid_arg "Many_flows.start: need a positive capacity";
  if params.mss <= 0 then invalid_arg "Many_flows.start: need a positive mss";
  if params.init_cwnd_segments <= 0 then
    invalid_arg "Many_flows.start: need a positive initial window";
  if params.buffer_packets < 1 then
    invalid_arg "Many_flows.start: need at least one buffer packet";
  if not (Sim.Time.is_positive params.base_rtt) then
    invalid_arg "Many_flows.start: need a positive base RTT";
  (match params.arrival_rate with
  | Some r when r <= 0. ->
      invalid_arg "Many_flows.start: arrival_rate must be positive"
  | _ -> ());
  (match params.arrival_pareto_shape with
  | Some s when s <= 1. ->
      invalid_arg
        "Many_flows.start: arrival_pareto_shape must exceed 1 (shape <= 1 \
         has an infinite mean inter-arrival gap)"
  | _ -> ());
  (match params.mean_size with
  | Some m when m <= 0 ->
      invalid_arg "Many_flows.start: mean_size must be positive"
  | _ -> ());
  if params.mean_size <> None && params.size_pareto_shape <= 1. then
    invalid_arg
      "Many_flows.start: size_pareto_shape must exceed 1 (shape <= 1 has an \
       infinite mean flow size)";
  let rec t =
    lazy
      {
        sched;
        wheel =
          Wheel.create
            ~initial_capacity:(Stdlib.min 65536 (Stdlib.max 16 params.flows))
            ~on_fire:(fun ~kind ~flow -> on_fire (Lazy.force t) ~kind ~flow)
            ();
        table = Ft.create ~initial_capacity:(Stdlib.max 16 params.flows) ();
        cc = cong_avoid;
        p = params;
        seed;
        rng;
        q_bytes = 0.;
        avg_pkts = 0.;
        last_update_ns = Sim.Time.to_ns_int (Sim.Scheduler.now sched);
        sum_cwnd = 0.;
        active = 0;
        created = 0;
        completed = 0;
        delivered = 0.;
        loss_events = 0;
        stopped = false;
      }
  in
  let t = Lazy.force t in
  Sim.Scheduler.attach_wheel sched t.wheel;
  (match params.arrival_rate with
  | None -> for _ = 1 to params.flows do launch t done
  | Some _ -> schedule_arrival t);
  t

let stop t = t.stopped <- true

(* --- snapshot ----------------------------------------------------------- *)

(* The engine's whole dynamic state: fluid-queue scalars, counters, the
   arrivals stream position, every flow-table column and every pending
   wheel timer. Deliberately *not* integrated to the snapshot time —
   [update_queue] advances the fluid backlog from [last_update_ns] using
   the RTT at that instant, so integrating here (as [poll] would) splits
   one integration interval in two and diverges from an unbroken run.
   Raw state + the saved [last_update_ns] replays identically. *)

let save ?(prefix = "mf.") t w =
  let p name = prefix ^ name in
  Sim.Snapshot.put_float w (p "q_bytes") t.q_bytes;
  Sim.Snapshot.put_float w (p "avg_pkts") t.avg_pkts;
  Sim.Snapshot.put_float w (p "sum_cwnd") t.sum_cwnd;
  Sim.Snapshot.put_float w (p "delivered") t.delivered;
  Sim.Snapshot.put_int w (p "last_update_ns") t.last_update_ns;
  Sim.Snapshot.put_int w (p "active") t.active;
  Sim.Snapshot.put_int w (p "created") t.created;
  Sim.Snapshot.put_int w (p "completed") t.completed;
  Sim.Snapshot.put_int w (p "loss_events") t.loss_events;
  Sim.Snapshot.put_int w (p "stopped") (if t.stopped then 1 else 0);
  Sim.Snapshot.put_i64 w (p "rng_state") (Sim.Rng.state t.rng);
  let n = Wheel.pending t.wheel in
  let due = Array.make n 0
  and kinds = Array.make n 0
  and flows = Array.make n 0 in
  let i = ref 0 in
  Wheel.iter_pending t.wheel ~f:(fun ~due_ns ~kind ~flow ->
      due.(!i) <- due_ns;
      kinds.(!i) <- kind;
      flows.(!i) <- flow;
      incr i);
  Sim.Snapshot.put_int w (p "wheel_tick") (Wheel.now_tick t.wheel);
  Sim.Snapshot.put_int_array w (p "wheel_due_ns") due;
  Sim.Snapshot.put_int_array w (p "wheel_kind") kinds;
  Sim.Snapshot.put_int_array w (p "wheel_flow") flows;
  Ft.save t.table ~prefix:(p "ft.") w

(* Restore into a freshly-[start]ed engine built from the same params
   and seed. The wheel is drained, advanced (empty, so nothing fires)
   to the saved tick, and re-armed in serialization order — which
   rebuilds every slot's FIFO list, and therefore the firing order,
   exactly. Round timers write their fresh handle back into the row;
   handle values never influence simulation output (the engine stores
   but never cancels them). *)
let restore ?(prefix = "mf.") t r =
  let p name = prefix ^ name in
  t.q_bytes <- Sim.Snapshot.get_float r (p "q_bytes");
  t.avg_pkts <- Sim.Snapshot.get_float r (p "avg_pkts");
  t.sum_cwnd <- Sim.Snapshot.get_float r (p "sum_cwnd");
  t.delivered <- Sim.Snapshot.get_float r (p "delivered");
  t.last_update_ns <- Sim.Snapshot.get_int r (p "last_update_ns");
  t.active <- Sim.Snapshot.get_int r (p "active");
  t.created <- Sim.Snapshot.get_int r (p "created");
  t.completed <- Sim.Snapshot.get_int r (p "completed");
  t.loss_events <- Sim.Snapshot.get_int r (p "loss_events");
  t.stopped <- Sim.Snapshot.get_int r (p "stopped") <> 0;
  Sim.Rng.set_state t.rng (Sim.Snapshot.get_i64 r (p "rng_state"));
  Ft.restore t.table ~prefix:(p "ft.") r;
  Wheel.drain t.wheel;
  let tick = Sim.Snapshot.get_int r (p "wheel_tick") in
  Wheel.advance t.wheel ~now_ns:(tick * Wheel.tick_ns t.wheel);
  let due = Sim.Snapshot.get_int_array r (p "wheel_due_ns") in
  let kinds = Sim.Snapshot.get_int_array r (p "wheel_kind") in
  let flows = Sim.Snapshot.get_int_array r (p "wheel_flow") in
  if Array.length kinds <> Array.length due || Array.length flows <> Array.length due
  then raise (Sim.Snapshot.Corrupt "Many_flows: ragged wheel sections");
  Array.iteri
    (fun i due_ns ->
      let h =
        (Wheel.arm t.wheel ~due_ns ~kind:kinds.(i) ~flow:flows.(i) :> int)
      in
      if kinds.(i) = kind_round then Ft.set_timer t.table flows.(i) h)
    due

(* --- observation -------------------------------------------------------- *)

let poll t =
  update_queue t ~now_ns:(Sim.Time.to_ns_int (Sim.Scheduler.now t.sched))

let queue_packets t =
  poll t;
  t.q_bytes /. mssf t

let avg_queue_packets t =
  poll t;
  match t.p.red with Some _ -> t.avg_pkts | None -> t.q_bytes /. mssf t

let sum_cwnd_bytes t = t.sum_cwnd

let mean_cwnd_segments t =
  if t.active = 0 then 0.
  else t.sum_cwnd /. mssf t /. float_of_int t.active

let active t = t.active
let created t = t.created
let completed t = t.completed
let delivered_bytes t = t.delivered
let loss_events t = t.loss_events
let table t = t.table
let wheel t = t.wheel

let goodput_mbps t ~duration =
  let s = Sim.Time.to_sec duration in
  if s <= 0. then 0. else t.delivered *. 8. /. s /. 1e6
