(** Host interface queue — the "soft component" at the heart of the
    paper.

    A bounded drop-tail queue between the transport layer and the NIC
    (Linux's qdisc, bounded by [txqueuelen]). A refused enqueue is a
    {e send-stall}: the local event Linux TCP misreads as network
    congestion. The IFQ exposes its occupancy as the process variable
    the Restricted Slow-Start PID controller reads, plus time-weighted
    occupancy statistics for the evaluation. *)

type t

val create :
  Sim.Scheduler.t ->
  capacity:int ->
  ?red_ecn:Queue_disc.red_params * Sim.Units.rate ->
  unit ->
  t
(** [capacity] in packets; must be positive. With [red_ecn (params,
    link_rate)] the queue runs RED in ECN-marking mode instead of plain
    drop-tail — the qdisc configuration experiment E12 compares against
    the paper's controller. *)

val queue : t -> Queue_disc.t
(** The underlying discipline (for wiring into a {!Nic}). *)

val try_enqueue : t -> Packet.t -> bool
(** [try_enqueue t pkt] is [true] on success. On failure the stall
    counter increments and stall hooks fire. *)

val occupancy : t -> int
(** Packets currently queued. *)

val capacity : t -> int

val headroom : t -> int
(** [capacity - occupancy]. *)

val stalls : t -> int
(** Total refused enqueues. *)

val on_stall : t -> (unit -> unit) -> unit
(** Register a hook run on each refused enqueue (after the counter
    updates). Multiple hooks run in registration order. *)

val on_space : t -> (unit -> unit) -> unit
(** Register a hook run when the queue transitions from full to
    not-full — the moment a stalled sender can retry. *)

val note_dequeue : t -> unit
(** Must be wired as the NIC's dequeue hook; updates occupancy tracking
    and fires {!on_space} hooks on a full→not-full transition. *)

val set_tracer : t -> ?src:int -> Trace.t option -> unit
(** Install (or remove) an event tracer: accepted enqueues emit
    [ifq.enqueue] (occupancy after, flow) and refused ones [ifq.stall]
    (total stalls, flow), with [src] (default 0) identifying this
    queue. With [None] tracing costs one pattern match and allocates
    nothing. *)

val mean_occupancy : t -> float
(** Time-weighted average occupancy (packets) since creation. *)

val peak_occupancy : t -> float
