let test_summary_basic () =
  let s = Sim.Stats.Summary.create () in
  List.iter (Sim.Stats.Summary.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check int) "count" 8 (Sim.Stats.Summary.count s);
  Alcotest.(check (float 1e-9)) "mean" 5. (Sim.Stats.Summary.mean s);
  Alcotest.(check (float 1e-9)) "min" 2. (Sim.Stats.Summary.min s);
  Alcotest.(check (float 1e-9)) "max" 9. (Sim.Stats.Summary.max s);
  Alcotest.(check (float 1e-9)) "total" 40. (Sim.Stats.Summary.total s);
  (* Population variance of this data is 4; sample variance 32/7. *)
  Alcotest.(check (float 1e-9)) "sample variance" (32. /. 7.)
    (Sim.Stats.Summary.variance s)

let test_summary_empty () =
  let s = Sim.Stats.Summary.create () in
  Alcotest.(check (float 0.)) "mean of empty" 0. (Sim.Stats.Summary.mean s);
  Alcotest.(check (float 0.)) "variance of empty" 0.
    (Sim.Stats.Summary.variance s)

let test_summary_merge () =
  let a = Sim.Stats.Summary.create () and b = Sim.Stats.Summary.create () in
  let whole = Sim.Stats.Summary.create () in
  let data1 = [ 1.; 2.; 3. ] and data2 = [ 10.; 20.; 30.; 40. ] in
  List.iter (Sim.Stats.Summary.add a) data1;
  List.iter (Sim.Stats.Summary.add b) data2;
  List.iter (Sim.Stats.Summary.add whole) (data1 @ data2);
  let merged = Sim.Stats.Summary.merge a b in
  Alcotest.(check int) "count" (Sim.Stats.Summary.count whole)
    (Sim.Stats.Summary.count merged);
  Alcotest.(check (float 1e-9)) "mean" (Sim.Stats.Summary.mean whole)
    (Sim.Stats.Summary.mean merged);
  Alcotest.(check (float 1e-6)) "variance" (Sim.Stats.Summary.variance whole)
    (Sim.Stats.Summary.variance merged)

let qcheck_welford_vs_naive =
  QCheck.Test.make ~name:"Welford matches naive two-pass" ~count:200
    QCheck.(list_of_size (Gen.int_range 2 100) (float_bound_exclusive 1000.))
    (fun xs ->
      let s = Sim.Stats.Summary.create () in
      List.iter (Sim.Stats.Summary.add s) xs;
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0. xs /. n in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs
        /. (n -. 1.)
      in
      Float.abs (Sim.Stats.Summary.mean s -. mean) < 1e-6 *. (1. +. mean)
      && Float.abs (Sim.Stats.Summary.variance s -. var) < 1e-6 *. (1. +. var))

let test_histogram () =
  let h = Sim.Stats.Histogram.create ~lo:0. ~hi:10. ~bins:10 in
  for i = 0 to 99 do
    Sim.Stats.Histogram.add h (float_of_int i /. 10.)
  done;
  Alcotest.(check int) "count" 100 (Sim.Stats.Histogram.count h);
  Alcotest.(check int) "bin 0 has 10" 10 (Sim.Stats.Histogram.bin_count h 0);
  Alcotest.(check int) "no overflow" 0 (Sim.Stats.Histogram.overflow h);
  Sim.Stats.Histogram.add h (-1.);
  Sim.Stats.Histogram.add h 11.;
  Alcotest.(check int) "underflow" 1 (Sim.Stats.Histogram.underflow h);
  Alcotest.(check int) "overflow" 1 (Sim.Stats.Histogram.overflow h);
  let median = Sim.Stats.Histogram.quantile h 0.5 in
  Alcotest.(check bool) "median near 5" true (Float.abs (median -. 5.) < 0.6)

let test_summary_pp_empty () =
  let s = Sim.Stats.Summary.create () in
  let out = Format.asprintf "%a" Sim.Stats.Summary.pp s in
  (* An empty summary must not leak inf/-inf sentinels into reports. *)
  Alcotest.(check string) "empty pp" "n=0 mean=- sd=- min=- max=-" out;
  Alcotest.(check bool) "no inf in output" false
    (String.length out >= 3
    &&
    let has sub =
      let n = String.length out and m = String.length sub in
      let rec go i = i + m <= n && (String.sub out i m = sub || go (i + 1)) in
      go 0
    in
    has "inf")

let qcheck_summary_merge_vs_single_stream =
  (* merge a b must behave as if every sample had been added to one
     stream: same count/mean/min/max/total, variance within fp noise. *)
  QCheck.Test.make ~name:"Summary.merge equals single-stream add" ~count:300
    QCheck.(
      pair
        (list_of_size (Gen.int_range 0 60) (float_range (-1000.) 1000.))
        (list_of_size (Gen.int_range 0 60) (float_range (-1000.) 1000.)))
    (fun (xs, ys) ->
      let a = Sim.Stats.Summary.create ()
      and b = Sim.Stats.Summary.create ()
      and whole = Sim.Stats.Summary.create () in
      List.iter (Sim.Stats.Summary.add a) xs;
      List.iter (Sim.Stats.Summary.add b) ys;
      List.iter (Sim.Stats.Summary.add whole) (xs @ ys);
      let m = Sim.Stats.Summary.merge a b in
      let close u v = Float.abs (u -. v) <= 1e-6 *. (1. +. Float.abs v) in
      Sim.Stats.Summary.count m = Sim.Stats.Summary.count whole
      && close (Sim.Stats.Summary.mean m) (Sim.Stats.Summary.mean whole)
      && close (Sim.Stats.Summary.total m) (Sim.Stats.Summary.total whole)
      && close (Sim.Stats.Summary.variance m)
           (Sim.Stats.Summary.variance whole)
      && (Sim.Stats.Summary.count m = 0
         || close (Sim.Stats.Summary.min m) (Sim.Stats.Summary.min whole)
            && close (Sim.Stats.Summary.max m) (Sim.Stats.Summary.max whole)))

let test_quantile_edges () =
  let h = Sim.Stats.Histogram.create ~lo:0. ~hi:10. ~bins:10 in
  (* All mass in bin 7 ([7,8)). *)
  for _ = 1 to 50 do
    Sim.Stats.Histogram.add h 7.5
  done;
  Alcotest.(check (float 1e-9)) "q=0 lands on first populated bin edge" 7.
    (Sim.Stats.Histogram.quantile h 0.);
  Alcotest.(check (float 1e-9)) "q=1 reaches bin top" 8.
    (Sim.Stats.Histogram.quantile h 1.);
  (* Underflow mass pulls q=0 to the range floor. *)
  Sim.Stats.Histogram.add h (-3.);
  Alcotest.(check (float 1e-9)) "q=0 with underflow clamps to lo" 0.
    (Sim.Stats.Histogram.quantile h 0.)

let test_quantile_all_overflow () =
  let h = Sim.Stats.Histogram.create ~lo:0. ~hi:10. ~bins:4 in
  for _ = 1 to 5 do
    Sim.Stats.Histogram.add h 99.
  done;
  (* Every sample overflowed: all quantiles clamp to the range ceiling
     instead of reading garbage off the empty bins. *)
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "q=%.2f all-overflow" q)
        10.
        (Sim.Stats.Histogram.quantile h q))
    [ 0.; 0.25; 0.5; 1. ]

let test_quantile_all_underflow () =
  let h = Sim.Stats.Histogram.create ~lo:0. ~hi:10. ~bins:4 in
  for _ = 1 to 5 do
    Sim.Stats.Histogram.add h (-1.)
  done;
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "q=%.2f all-underflow" q)
        0.
        (Sim.Stats.Histogram.quantile h q))
    [ 0.; 0.5; 1. ]

(* Oracle: the sorted sample of rank ceil(q*n) — the same crossing
   point the histogram's cumulative walk uses — lives in the bin the
   interpolated answer comes from, so they can differ by at most one
   bin width. (No under/overflow here: the generator stays in range.) *)
let qcheck_quantile_vs_sorted_oracle =
  let lo = 0. and hi = 100. and bins = 20 in
  let bin_width = (hi -. lo) /. float_of_int bins in
  QCheck.Test.make ~name:"Histogram.quantile within one bin of sorted oracle"
    ~count:300
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 200) (float_range 0. 99.99))
        (float_range 0. 1.))
    (fun (xs, q) ->
      let h = Sim.Stats.Histogram.create ~lo ~hi ~bins in
      List.iter (Sim.Stats.Histogram.add h) xs;
      let sorted = List.sort compare xs in
      let n = List.length sorted in
      let rank =
        Stdlib.max 1
          (Stdlib.min n (int_of_float (ceil (q *. float_of_int n))))
      in
      let oracle = List.nth sorted (rank - 1) in
      let got = Sim.Stats.Histogram.quantile h q in
      Float.abs (got -. oracle) <= bin_width +. 1e-9)

let qcheck_quantile_monotone =
  QCheck.Test.make ~name:"Histogram.quantile is monotone in q" ~count:300
    QCheck.(
      triple
        (list_of_size (Gen.int_range 1 100) (float_range (-10.) 110.))
        (float_range 0. 1.) (float_range 0. 1.))
    (fun (xs, q1, q2) ->
      let h = Sim.Stats.Histogram.create ~lo:0. ~hi:100. ~bins:16 in
      List.iter (Sim.Stats.Histogram.add h) xs;
      let lo_q = Stdlib.min q1 q2 and hi_q = Stdlib.max q1 q2 in
      Sim.Stats.Histogram.quantile h lo_q
      <= Sim.Stats.Histogram.quantile h hi_q +. 1e-9)

let test_histogram_validation () =
  Alcotest.check_raises "hi <= lo"
    (Invalid_argument "Histogram.create: hi must exceed lo") (fun () ->
      ignore (Sim.Stats.Histogram.create ~lo:1. ~hi:1. ~bins:4));
  let h = Sim.Stats.Histogram.create ~lo:0. ~hi:1. ~bins:4 in
  Alcotest.check_raises "empty quantile"
    (Invalid_argument "Histogram.quantile: empty histogram") (fun () ->
      ignore (Sim.Stats.Histogram.quantile h 0.5))

let test_time_weighted () =
  let g = Sim.Stats.Time_weighted.create ~now:Sim.Time.zero ~init:0. in
  Sim.Stats.Time_weighted.set g ~now:(Sim.Time.sec 1) 10.;
  Sim.Stats.Time_weighted.set g ~now:(Sim.Time.sec 3) 0.;
  (* 1s at 0, 2s at 10, 1s at 0 → mean over 4s = 20/4 = 5. *)
  Alcotest.(check (float 1e-9)) "time-weighted mean" 5.
    (Sim.Stats.Time_weighted.mean g ~now:(Sim.Time.sec 4));
  Alcotest.(check (float 1e-9)) "peak" 10. (Sim.Stats.Time_weighted.max g);
  Alcotest.(check (float 1e-9)) "current value" 0.
    (Sim.Stats.Time_weighted.value g)

let test_time_weighted_zero_elapsed () =
  let g = Sim.Stats.Time_weighted.create ~now:Sim.Time.zero ~init:7. in
  Alcotest.(check (float 1e-9)) "mean with no elapsed time" 7.
    (Sim.Stats.Time_weighted.mean g ~now:Sim.Time.zero)

let test_series () =
  let s = Sim.Stats.Series.create ~name:"x" () in
  Alcotest.(check bool) "empty last" true (Sim.Stats.Series.last_value s = None);
  for i = 1 to 40 do
    Sim.Stats.Series.add s (Sim.Time.ms (i * 10)) (float_of_int i)
  done;
  Alcotest.(check int) "length" 40 (Sim.Stats.Series.length s);
  Alcotest.(check bool) "last" true
    (Sim.Stats.Series.last_value s = Some 40.);
  Alcotest.(check (float 1e-9)) "sample before first" 0.
    (Sim.Stats.Series.sample s ~at:(Sim.Time.ms 5));
  Alcotest.(check (float 1e-9)) "sample exact" 3.
    (Sim.Stats.Series.sample s ~at:(Sim.Time.ms 30));
  Alcotest.(check (float 1e-9)) "sample between" 3.
    (Sim.Stats.Series.sample s ~at:(Sim.Time.ms 39));
  Alcotest.(check (float 1e-9)) "sample after last" 40.
    (Sim.Stats.Series.sample s ~at:(Sim.Time.sec 100));
  Alcotest.(check int) "csv rows" 40 (List.length (Sim.Stats.Series.to_csv_rows s))

let suite =
  [
    Alcotest.test_case "summary basics" `Quick test_summary_basic;
    Alcotest.test_case "summary empty" `Quick test_summary_empty;
    Alcotest.test_case "summary merge" `Quick test_summary_merge;
    Alcotest.test_case "summary pp empty" `Quick test_summary_pp_empty;
    QCheck_alcotest.to_alcotest qcheck_welford_vs_naive;
    QCheck_alcotest.to_alcotest qcheck_summary_merge_vs_single_stream;
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "histogram validation" `Quick test_histogram_validation;
    Alcotest.test_case "quantile edges" `Quick test_quantile_edges;
    Alcotest.test_case "quantile all-overflow" `Quick
      test_quantile_all_overflow;
    Alcotest.test_case "quantile all-underflow" `Quick
      test_quantile_all_underflow;
    QCheck_alcotest.to_alcotest qcheck_quantile_vs_sorted_oracle;
    QCheck_alcotest.to_alcotest qcheck_quantile_monotone;
    Alcotest.test_case "time-weighted gauge" `Quick test_time_weighted;
    Alcotest.test_case "time-weighted zero elapsed" `Quick
      test_time_weighted_zero_elapsed;
    Alcotest.test_case "series" `Quick test_series;
  ]
