(** tcpdump-style text capture of packets crossing links.

    A tracer keeps the most recent [capacity] formatted lines in a ring
    buffer, so long simulations can leave one attached without unbounded
    memory growth. *)

type t

val create : ?capacity:int -> unit -> t
(** Default capacity: 10_000 lines. *)

val tap : t -> label:string -> Link.t -> unit
(** Attach to a link; every transmitted packet becomes one line
    "<time_s> <label> <src>-><dst> flow=<f> <payload>". *)

val record : t -> now:Sim.Time.t -> string -> unit
(** Append a custom line (timestamped like packet lines). *)

val lines : t -> string list
(** Captured lines, oldest first (at most [capacity]). *)

val captured : t -> int
(** Total lines ever captured (including evicted ones). *)

val to_string : t -> string
