type t = {
  snd : Tcp.Sender.t;
  rcv : Tcp.Receiver.t;
  sched : Sim.Scheduler.t;
  chunk_bytes : int;
  interval : Sim.Time.t;
  limit : int option;
  mutable issued : int;
  mutable running : bool;
}

let rec schedule_next t =
  ignore
    (Sim.Scheduler.after t.sched t.interval (fun () ->
         let expired =
           match t.limit with Some n -> t.issued >= n | None -> false
         in
         if t.running && not expired then begin
           Tcp.Sender.supply t.snd t.chunk_bytes;
           t.issued <- t.issued + 1;
           schedule_next t
         end))

let start ~src ~dst ~flow ~ids ?rx_ids ~chunk_bytes ~interval ?chunks ?config
    ?slow_start ?cong_avoid ?(name = "chunked") () =
  assert (chunk_bytes > 0 && Sim.Time.is_positive interval);
  let sched = Netsim.Host.scheduler src in
  let rx_ids = match rx_ids with Some r -> r | None -> ids in
  let rcv = Tcp.Receiver.create ~host:dst ~flow ~ids:rx_ids ?config () in
  let snd =
    Tcp.Sender.create ~host:src ~dst:(Netsim.Host.id dst) ~flow ~ids ?config
      ?slow_start ?cong_avoid ~name ()
  in
  Tcp.Sender.start snd ~bytes:chunk_bytes ();
  let t =
    {
      snd;
      rcv;
      sched;
      chunk_bytes;
      interval;
      limit = chunks;
      issued = 1;
      running = true;
    }
  in
  schedule_next t;
  t

let sender t = t.snd
let receiver t = t.rcv
let chunks_issued t = t.issued
let bytes_issued t = t.issued * t.chunk_bytes
let stop t = t.running <- false
