(** RFC 6298 retransmission-timer estimation.

    SRTT/RTTVAR smoothing with the standard alpha=1/8, beta=1/4 and
    [RTO = SRTT + 4·RTTVAR], clamped to configurable bounds. Timestamps
    make every ACK a valid sample (Karn's rule handled by the caller
    simply by always echoing the segment that triggered the ACK). *)

type t

val create : ?min_rto:Sim.Time.t -> ?max_rto:Sim.Time.t -> unit -> t
(** Defaults: min 200 ms (Linux), max 60 s. Before the first sample the
    RTO is 1 s (RFC 6298 §2.1) clamped to the bounds. *)

val sample : t -> Sim.Time.t -> unit
(** Feed one RTT measurement. Non-positive samples are clamped to 1 µs. *)

val srtt : t -> Sim.Time.t option
(** Smoothed RTT; [None] before the first sample. *)

val rttvar : t -> Sim.Time.t option
val min_rtt : t -> Sim.Time.t option
(** Smallest sample seen — the propagation-delay estimate HyStart and
    Vegas-style logic need. *)

val rto : t -> Sim.Time.t
(** Current retransmission timeout including backoff. *)

val backoff : t -> unit
(** Double the RTO (exponential backoff), up to the max. *)

val reset_backoff : t -> unit
(** Clear backoff after an ACK of new data. *)

val backoff_factor : t -> int
(** Current multiplier on the computed RTO: 1 when not backed off,
    doubling per {!backoff} up to 64. The effective {!rto} additionally
    clamps at [max_rto]. *)

val samples : t -> int
