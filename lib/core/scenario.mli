(** Experiment environments.

    The canonical one is the paper's testbed: a 100 Mbit/s path between
    Argonne and LBNL with a 60 ms round-trip time, Linux hosts with a
    100-packet interface queue (the 2.4-era [txqueuelen] default). *)

type t = {
  sched : Sim.Scheduler.t;
  path : Netsim.Topology.Duplex.t;
  ids : Netsim.Packet.Id_source.source;
  rate : Sim.Units.rate;
  rtt : Sim.Time.t;
  ifq_capacity : int;
}

val anl_lbnl :
  ?seed:int ->
  ?rate:Sim.Units.rate ->
  ?one_way_delay:Sim.Time.t ->
  ?ifq_capacity:int ->
  ?loss_rate:float ->
  ?ifq_red_ecn:Netsim.Queue_disc.red_params ->
  unit ->
  t
(** Defaults: 100 Mbit/s, 30 ms each way, IFQ 100 packets, no loss,
    seed 1. *)

val bdp_packets : t -> float
(** Path bandwidth-delay product in 1500-byte packets. *)

val sender_host : t -> Netsim.Host.t
val receiver_host : t -> Netsim.Host.t
val sender_ifq : t -> Netsim.Ifq.t

val forward_link : t -> Netsim.Link.t
(** The data-path (sender → receiver) pipe — where the chaos harness
    installs forward fault models. *)

val reverse_link : t -> Netsim.Link.t
(** The ACK-path (receiver → sender) pipe. *)
