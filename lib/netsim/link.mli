(** Unidirectional propagation pipe.

    A link models only propagation delay (and optional random corruption
    loss); serialization happens upstream in the {!Nic}. Packets in
    flight are independent events, so the link never reorders. *)

type t

val create :
  Sim.Scheduler.t ->
  delay:Sim.Time.t ->
  ?loss_rate:float ->
  ?rng:Sim.Rng.t ->
  unit ->
  t
(** [loss_rate] is a per-packet independent corruption probability
    (default 0). When positive an [rng] should be supplied for
    reproducibility; otherwise a fixed-seed stream is used. *)

val connect : t -> (Packet.t -> unit) -> unit
(** Set the receiving endpoint. Must be called before any transmit. *)

val transmit : t -> Packet.t -> unit
(** Begin propagation of [pkt]; it is delivered [delay] later unless
    corrupted. *)

val add_tap : t -> (Sim.Time.t -> Packet.t -> unit) -> unit
(** Observe every packet entering the link (before any loss decision),
    with the transmit timestamp. Taps run in registration order and
    must not mutate the packet. *)

val set_drop_filter : t -> (Packet.t -> bool) -> unit
(** Deterministic loss injection: packets for which the filter returns
    [true] are dropped (counted in {!lost}). Applied before the random
    [loss_rate]. Intended for tests that need to kill one specific
    segment. *)

val delay : t -> Sim.Time.t
val delivered : t -> int
val lost : t -> int
(** Packets corrupted in flight so far. *)

val in_flight : t -> int
