(** Versioned, checksummed binary snapshot container.

    A snapshot is a flat set of named, typed sections — int/float
    scalars, int/float arrays, raw byte strings — under a magic/version
    header and an MD5 digest trailer. Producers write sections by name;
    consumers read them back by name, so independent subsystems
    (scheduler, timer wheel, flow table, workload engines) can share one
    image without coordinating a layout.

    Integers travel as little-endian int64, floats as their IEEE bit
    patterns: every round trip is bit-exact, which is what makes a
    resumed run byte-identical to an unbroken one.

    Durability: {!save} writes the complete image to [path ^ ".tmp"],
    rotates the previous image to [path ^ ".prev"], then renames into
    place — [path] is never a torn write. {!load} verifies framing and
    digest and falls back to [".prev"] on any corruption, so a crash at
    any instant leaves at least one verified-complete snapshot. *)

exception Corrupt of string
(** Raised by the reading functions on truncation, checksum mismatch,
    version skew, or a missing/mistyped section. *)

(** {1 Writing} *)

type writer

val writer : unit -> writer

val put_int : writer -> string -> int -> unit
val put_i64 : writer -> string -> int64 -> unit
val put_float : writer -> string -> float -> unit
val put_int_array : writer -> string -> int array -> unit
val put_float_array : writer -> string -> float array -> unit
val put_bytes : writer -> string -> string -> unit
(** Writing the same name twice keeps the last value. Names are 1..255
    bytes. *)

val save : writer -> path:string -> unit
(** Atomic write-rename with [".prev"] rotation (see module doc). *)

val to_string : writer -> string
(** The complete image (header, sections, digest) as a string — for
    tests and in-memory round trips. *)

(** {1 Reading} *)

type reader

val load : path:string -> reader
(** Load and verify [path]; on corruption fall back to [path ^ ".prev"]
    if present, else raise {!Corrupt}. *)

val of_string : string -> reader
(** Parse an image produced by {!to_string}. Raises {!Corrupt}. *)

val mem : reader -> string -> bool

val get_int : reader -> string -> int
val get_i64 : reader -> string -> int64
val get_float : reader -> string -> float
val get_int_array : reader -> string -> int array
val get_float_array : reader -> string -> float array
val get_bytes : reader -> string -> string
(** All raise {!Corrupt} if the section is absent or of another kind. *)
