(** Run-wide event tracer and metrics registry.

    The tracer is a bounded ring of int-packed records — a web100-style
    instrumentation plane extended to every soft component the paper's
    controller touches (scheduler, links, interface queues, NICs, TCP
    senders). It is built for the simulation hot path:

    - the ring is preallocated at {!create}; {!emit} writes four
      unboxed ints and allocates nothing;
    - every record carries a category bit; {!emit} drops records whose
      category is masked out, so a component can emit unconditionally
      and pay one array load + logical AND when its category is off;
    - components hold a [Trace.t option]; with [None] the hot path pays
      a single pattern match and zero allocation.

    Determinism: the tracer only observes — it draws no randomness and
    schedules no events — so a traced run performs exactly the same
    model transitions as an untraced one, and two traced runs of the
    same scenario produce byte-identical rings regardless of worker
    count (each run owns a private ring; merging is the caller's,
    deterministic, job).

    This module is deliberately dependency-free (timestamps are raw
    nanosecond ints) so that [sim], [netsim], [tcp] and [report] can
    all link against it without cycles. *)

(* --- event vocabulary -------------------------------------------------- *)

module Code : sig
  (** Category bits, one per subsystem. *)

  val cat_sched : int
  val cat_link : int
  val cat_ifq : int
  val cat_nic : int
  val cat_tcp : int

  val all_categories : int
  (** Every category bit set. *)

  val default_mask : int
  (** Everything except {!cat_sched} — per-dispatch scheduler records
      are high-volume and usually noise; enable them explicitly. *)

  val category_name : int -> string
  (** Name of a category bit ("sched", "link", ...); "?" if unknown. *)

  val category_of_name : string -> int option

  (** Event codes. Each code belongs to exactly one category. *)

  val sched_dispatch : int  (** arg1 = live events after pop *)

  val link_tx : int  (** arg1 = flow, arg2 = bytes *)

  val link_drop : int  (** arg1 = flow, arg2 = bytes *)

  val link_deliver : int  (** arg1 = flow, arg2 = bytes *)

  val ifq_enqueue : int  (** arg1 = occupancy after, arg2 = flow *)

  val ifq_stall : int  (** arg1 = total stalls, arg2 = flow *)

  val nic_tx : int  (** arg1 = flow, arg2 = bytes *)

  val tcp_send_stall : int  (** arg1 = total stalls, arg2 = IFQ occupancy *)

  val tcp_cwnd : int  (** arg1 = cwnd bytes, arg2 = ssthresh bytes *)

  val tcp_retransmit : int  (** arg1 = offset, arg2 = bytes *)

  val tcp_fast_retransmit : int  (** arg1 = snd_una, arg2 = recover point *)

  val tcp_rto : int  (** arg1 = backoff multiplier, arg2 = flight bytes *)

  val count : int
  (** Codes are [0 .. count-1]. *)

  val name : int -> string
  (** Stable export name ("link.tx", "tcp.cwnd", ...). Raises
      [Invalid_argument] on an out-of-range code. *)

  val category : int -> int
  (** The category bit a code belongs to. *)

  val is_counter : int -> bool
  (** Counter-valued codes ([tcp_cwnd]) export as Chrome ["C"] (counter)
      events; the rest as instants. *)
end

(* --- the ring ----------------------------------------------------------- *)

type t

val create : ?capacity:int -> ?mask:int -> unit -> t
(** [create ~capacity ~mask ()] preallocates a ring of [capacity]
    records (default 65536; must be positive) accepting the categories
    in [mask] (default {!Code.default_mask}). *)

val emit : t -> time_ns:int -> code:int -> src:int -> arg1:int -> arg2:int -> unit
(** Append one record, overwriting the oldest once the ring is full
    (the overwritten count is reported by {!dropped}). Records whose
    category is masked out are discarded for free. Never allocates.
    [src] identifies the emitting instance (flow id, host id, link
    index) and must fit 54 bits. *)

val mask : t -> int
val set_mask : t -> int -> unit
val capacity : t -> int

val length : t -> int
(** Records currently retained (≤ capacity). *)

val total : t -> int
(** Records accepted since creation (masked-out emits excluded). *)

val dropped : t -> int
(** Records overwritten by ring wrap-around: [total - length]. *)

val clear : t -> unit
(** Empty the ring and reset {!total}/{!dropped}. *)

val iter :
  t -> (time_ns:int -> code:int -> src:int -> arg1:int -> arg2:int -> unit) -> unit
(** Visit retained records oldest-first (emission order, which is also
    time order for a single-scheduler run). *)

(* --- metrics registry --------------------------------------------------- *)

module Registry : sig
  (** One namespace over every gauge and counter a run exposes:
      web100 per-connection variables ([conn/<label>/<Var>]), link
      counters ([link/<dir>/<what>]) and host soft-component gauges
      ([host/<id>/<what>]) all register here, giving samplers and
      exporters a single, ordered, duplicate-free catalog. *)

  type probe = unit -> float
  (** Probes must be pure reads: called at sampling time, they must not
      mutate model state or draw randomness. *)

  type registry

  val create : unit -> registry

  val register : registry -> name:string -> probe -> unit
  (** Raises [Invalid_argument] on a duplicate name — two metrics
      sharing a name would silently misalign every exported column
      after them (the bug class this registry exists to prevent). *)

  val names : registry -> string list
  (** In registration order — the export column order. *)

  val size : registry -> int

  val read : registry -> string -> float option
  (** Sample one probe by name. *)

  val sample : registry -> float array
  (** Sample every probe, in registration order. *)
end
