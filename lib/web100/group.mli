(** A per-connection instrument group: named counters and gauges, in the
    spirit of a web100 connection's variable file. Variables are created
    on first access, so instrumented code never needs a registration
    step. *)

type t

module Counter : sig
  type c

  val incr : ?by:int -> c -> unit
  val value : c -> int
end

module Gauge : sig
  type g

  val set : g -> float -> unit
  val value : g -> float
end

val create : ?conn_name:string -> unit -> t
val conn_name : t -> string

val counter : t -> string -> Counter.c
(** Find-or-create. The same name always yields the same counter. *)

val gauge : t -> string -> Gauge.g

val read : t -> string -> float option
(** Current value of a variable by name (counters as floats). *)

val snapshot : t -> (string * float) list
(** All variables, sorted by name. *)

val pp : Format.formatter -> t -> unit
