type t =
  | Tcp of Tcp_header.t
  | Udp of { seq : int; payload_len : int }

let udp_header_bytes = 28

let wire_size = function
  | Tcp h -> Tcp_header.wire_size h
  | Udp { payload_len; _ } -> payload_len + udp_header_bytes

let pp fmt = function
  | Tcp h -> Format.fprintf fmt "TCP(%a)" Tcp_header.pp h
  | Udp { seq; payload_len } -> Format.fprintf fmt "UDP(#%d,%dB)" seq payload_len
