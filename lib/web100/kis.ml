let pkts_out = "PktsOut"
let data_bytes_out = "DataBytesOut"
let pkts_retrans = "PktsRetrans"
let bytes_retrans = "BytesRetrans"
let congestion_signals = "CongestionSignals"
let send_stall = "SendStall"
let timeouts = "Timeouts"
let dup_acks_in = "DupAcksIn"
let fast_retran = "FastRetran"
let acks_in = "AcksIn"
let cur_cwnd = "CurCwnd"
let cur_ssthresh = "CurSsthresh"
let smoothed_rtt = "SmoothedRTT"
let cur_rto = "CurRTO"
let min_rtt = "MinRTT"
let max_rwin_rcvd = "MaxRwinRcvd"
let slow_start = "SlowStart"
let cong_avoid = "CongAvoid"
let cur_ifq = "CurIFQ"

let all =
  [
    pkts_out;
    data_bytes_out;
    pkts_retrans;
    bytes_retrans;
    congestion_signals;
    send_stall;
    timeouts;
    dup_acks_in;
    fast_retran;
    acks_in;
    cur_cwnd;
    cur_ssthresh;
    smoothed_rtt;
    cur_rto;
    min_rtt;
    max_rwin_rcvd;
    slow_start;
    cong_avoid;
    cur_ifq;
  ]
