(** Long-lived bulk transfers — the workload of the paper's experiment
    (a GridFTP-style memory-to-memory stream). Thin sugar over
    {!Tcp.Connection} that tracks completion time. *)

type t

val start :
  src:Netsim.Host.t ->
  dst:Netsim.Host.t ->
  flow:int ->
  ids:Netsim.Packet.Id_source.source ->
  ?rx_ids:Netsim.Packet.Id_source.source ->
  ?config:Tcp.Config.t ->
  ?slow_start:Tcp.Slow_start.t ->
  ?cong_avoid:Tcp.Cong_avoid.t ->
  ?bytes:int ->
  ?name:string ->
  unit ->
  t
(** [rx_ids] (default [ids]): id source for the receiver's ACKs — pass
    the destination partition's source on a partitioned run. *)

val connection : t -> Tcp.Connection.t
val sender : t -> Tcp.Sender.t
val receiver : t -> Tcp.Receiver.t

val completion_time : t -> Sim.Time.t option
(** When the receiver saw the last requested byte ([bytes] given). *)

val goodput_mbps : t -> at:Sim.Time.t -> float
