(* Benchmark-regression gate.

   Compares a freshly emitted results/BENCH_core.json against the
   committed bench/baseline.json and exits non-zero when the simulation
   core got slower (ops/sec down, wall-clock or allocation up) by more
   than the tolerance. CI runs this after the micro section; locally:

     dune exec bench/main.exe -- micro --jobs 1
     dune exec bench/gate.exe                        # check
     dune exec bench/gate.exe -- --update            # re-baseline

   Throughput and wall-clock comparisons are machine-relative, so the
   tolerance is generous by default (15%) and can be widened for noisy
   runners via --tolerance or BENCH_GATE_TOLERANCE. Allocation counts
   are deterministic and gated tightly regardless. *)

let default_baseline = "bench/baseline.json"
let default_current = "results/BENCH_core.json"

let read_json path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e ->
      Printf.eprintf "bench-gate: cannot read %s: %s\n" path e;
      exit 2
  | text -> (
      match Report.Json.of_string text with
      | Ok json -> json
      | Error e ->
          Printf.eprintf "bench-gate: %s: %s\n" path e;
          exit 2)

let metrics_of json =
  match Report.Json.(Option.bind (member "metrics" json) list_value) with
  | Some l ->
      List.filter_map
        (fun m ->
          match Report.Json.(Option.bind (member "name" m) string_value) with
          | Some name -> Some (name, m)
          | None -> None)
        l
  | None ->
      Printf.eprintf "bench-gate: no \"metrics\" array\n";
      exit 2

let field k m = Report.Json.(Option.bind (member k m) number)

type verdict = { name : string; what : string; delta : string; ok : bool }

(* Throughput must not drop, wall-clock must not rise, by more than the
   relative tolerance. *)
let judge_relative ~tol ~worse_if_lower name what ~baseline ~current =
  let delta =
    Printf.sprintf "%+.1f%%" (100. *. ((current -. baseline) /. baseline))
  in
  let ok =
    if worse_if_lower then current >= baseline *. (1. -. tol)
    else current <= baseline *. (1. +. tol)
  in
  { name; what; delta; ok }

(* Allocation counts are deterministic and may legitimately be zero, so
   they get an absolute slack (in words/event) on top of the relative
   tolerance — a baseline of 0 still catches any real regression. *)
let judge_alloc ~tol name what ~baseline ~current =
  let delta = Printf.sprintf "%+.2f w/ev" (current -. baseline) in
  let ok = current <= baseline +. Float.max 0.5 (baseline *. tol) in
  { name; what; delta; ok }

let compare_metrics ~tol ~alloc_tol baseline current =
  List.filter_map
    (fun (name, base_m) ->
      match List.assoc_opt name current with
      | None ->
          Printf.eprintf "bench-gate: warning: %s missing from current run\n"
            name;
          None
      | Some cur_m ->
          let relative what worse_if_lower =
            match (field what base_m, field what cur_m) with
            | Some b, Some c when b > 0. ->
                Some
                  (judge_relative ~tol ~worse_if_lower name what ~baseline:b
                     ~current:c)
            | _ -> None
          in
          let alloc what =
            match (field what base_m, field what cur_m) with
            | Some b, Some c when b >= 0. ->
                Some (judge_alloc ~tol:alloc_tol name what ~baseline:b ~current:c)
            | _ -> None
          in
          Some
            (List.filter_map Fun.id
               [
                 relative "ops_per_sec" true;
                 relative "wall_s" false;
                 alloc "minor_words_per_event";
               ]))
    baseline
  |> List.concat

let () =
  let baseline_path = ref default_baseline in
  let current_path = ref default_current in
  let tolerance =
    ref
      (match Sys.getenv_opt "BENCH_GATE_TOLERANCE" with
      | Some v -> ( match float_of_string_opt v with Some f -> f | None -> 0.15)
      | None -> 0.15)
  in
  let update = ref false in
  let rec parse = function
    | [] -> ()
    | "--baseline" :: v :: rest ->
        baseline_path := v;
        parse rest
    | "--current" :: v :: rest ->
        current_path := v;
        parse rest
    | "--tolerance" :: v :: rest ->
        (match float_of_string_opt v with
        | Some f when f >= 0. -> tolerance := f
        | Some _ | None ->
            prerr_endline "--tolerance expects a non-negative float";
            exit 2);
        parse rest
    | "--update" :: rest ->
        update := true;
        parse rest
    | arg :: _ ->
        Printf.eprintf
          "usage: gate [--baseline PATH] [--current PATH] [--tolerance F] \
           [--update]\nunknown argument %S\n"
          arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !update then begin
    let text = In_channel.with_open_text !current_path In_channel.input_all in
    Out_channel.with_open_text !baseline_path (fun oc ->
        Out_channel.output_string oc text);
    Printf.printf "bench-gate: baseline %s updated from %s\n" !baseline_path
      !current_path;
    exit 0
  end;
  let baseline = metrics_of (read_json !baseline_path) in
  let current = metrics_of (read_json !current_path) in
  (* Allocation counts are deterministic: hold them to a tight bound
     independent of the machine-speed tolerance. *)
  let verdicts =
    compare_metrics ~tol:!tolerance ~alloc_tol:0.05 baseline current
  in
  if verdicts = [] then begin
    Printf.eprintf "bench-gate: nothing to compare\n";
    exit 2
  end;
  let failures = List.filter (fun v -> not v.ok) verdicts in
  List.iter
    (fun v ->
      Printf.printf "%-6s %-18s %-22s %s\n"
        (if v.ok then "ok" else "FAIL")
        v.name v.what v.delta)
    verdicts;
  if failures <> [] then begin
    Printf.printf
      "bench-gate: %d metric(s) regressed beyond %.0f%% tolerance\n"
      (List.length failures) (100. *. !tolerance);
    exit 1
  end
  else
    Printf.printf "bench-gate: all %d metrics within %.0f%% of baseline\n"
      (List.length verdicts) (100. *. !tolerance)
