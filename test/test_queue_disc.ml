let mk_pkt ?(size = 1460) id =
  Netsim.Packet.make ~id ~flow:0 ~src:0 ~dst:1 ~created:Sim.Time.zero
    (Proto.Payload.Tcp
       {
         Proto.Tcp_header.src_port = 0;
         dst_port = 0;
         seq = Proto.Seqno.zero;
         ack = Proto.Seqno.zero;
         is_ack = false;
         flags = [];
         wnd = 0;
         payload_len = size;
         sack_blocks = [];
         ts_val = Sim.Time.zero;
         ts_ecr = Sim.Time.zero;
       })

let test_droptail_capacity () =
  let q = Netsim.Queue_disc.droptail ~capacity_packets:3 () in
  let now = Sim.Time.zero in
  for i = 0 to 2 do
    match Netsim.Queue_disc.enqueue q ~now (mk_pkt i) with
    | Ok () -> ()
    | Error _ -> Alcotest.failf "packet %d refused below capacity" i
  done;
  Alcotest.(check bool) "full" true (Netsim.Queue_disc.is_full q);
  (match Netsim.Queue_disc.enqueue q ~now (mk_pkt 3) with
  | Error Netsim.Queue_disc.Full -> ()
  | Error _ | Ok () -> Alcotest.fail "expected tail drop");
  Alcotest.(check int) "drops" 1 (Netsim.Queue_disc.drops q);
  Alcotest.(check int) "enqueued" 3 (Netsim.Queue_disc.enqueued q);
  Alcotest.(check int) "length" 3 (Netsim.Queue_disc.length q)

let test_droptail_fifo () =
  let q = Netsim.Queue_disc.droptail ~capacity_packets:10 () in
  let now = Sim.Time.zero in
  List.iter
    (fun i -> ignore (Netsim.Queue_disc.enqueue q ~now (mk_pkt i)))
    [ 1; 2; 3 ];
  let ids =
    List.filter_map
      (fun _ ->
        Option.map (fun p -> p.Netsim.Packet.id) (Netsim.Queue_disc.dequeue q ~now))
      [ (); (); (); () ]
  in
  Alcotest.(check (list int)) "FIFO order" [ 1; 2; 3 ] ids

let test_byte_accounting () =
  let q = Netsim.Queue_disc.droptail ~capacity_packets:10 () in
  let now = Sim.Time.zero in
  ignore (Netsim.Queue_disc.enqueue q ~now (mk_pkt ~size:1460 1));
  ignore (Netsim.Queue_disc.enqueue q ~now (mk_pkt ~size:460 2));
  Alcotest.(check int) "bytes queued" (1500 + 500)
    (Netsim.Queue_disc.byte_length q);
  ignore (Netsim.Queue_disc.dequeue q ~now);
  Alcotest.(check int) "bytes after dequeue" 500
    (Netsim.Queue_disc.byte_length q)

let test_byte_capacity () =
  let q =
    Netsim.Queue_disc.droptail ~capacity_bytes:3000 ~capacity_packets:100 ()
  in
  let now = Sim.Time.zero in
  ignore (Netsim.Queue_disc.enqueue q ~now (mk_pkt 1));
  ignore (Netsim.Queue_disc.enqueue q ~now (mk_pkt 2));
  (match Netsim.Queue_disc.enqueue q ~now (mk_pkt 3) with
  | Error Netsim.Queue_disc.Full -> ()
  | Error _ | Ok () -> Alcotest.fail "expected byte-bound drop");
  Alcotest.(check int) "one drop" 1 (Netsim.Queue_disc.drops q)

let test_drop_hook () =
  let q = Netsim.Queue_disc.droptail ~capacity_packets:1 () in
  let now = Sim.Time.zero in
  let dropped = ref [] in
  Netsim.Queue_disc.set_drop_hook q (fun pkt reason ->
      dropped := (pkt.Netsim.Packet.id, reason) :: !dropped);
  ignore (Netsim.Queue_disc.enqueue q ~now (mk_pkt 1));
  ignore (Netsim.Queue_disc.enqueue q ~now (mk_pkt 2));
  match !dropped with
  | [ (2, Netsim.Queue_disc.Full) ] -> ()
  | _ -> Alcotest.fail "drop hook did not fire correctly"

let test_invalid_capacity () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Queue_disc.droptail: capacity must be positive")
    (fun () -> ignore (Netsim.Queue_disc.droptail ~capacity_packets:0 ()))

let test_red_below_min_th () =
  let q =
    Netsim.Queue_disc.red ~capacity_packets:100
      ~link_rate:(Sim.Units.mbps 100.) Netsim.Queue_disc.default_red
  in
  (* With an empty queue, the average stays below min_th: no early drops. *)
  let accepted = ref 0 in
  for i = 0 to 199 do
    let now = Sim.Time.of_sec (float_of_int i *. 0.01) in
    (match Netsim.Queue_disc.enqueue q ~now (mk_pkt i) with
    | Ok () -> incr accepted
    | Error _ -> ());
    ignore (Netsim.Queue_disc.dequeue q ~now)
  done;
  Alcotest.(check int) "no early drops at low load" 200 !accepted

let test_red_drops_under_sustained_load () =
  let q =
    Netsim.Queue_disc.red ~capacity_packets:50
      ~link_rate:(Sim.Units.mbps 100.) Netsim.Queue_disc.default_red
  in
  (* Fill without draining: the average climbs through min_th and RED
     must start shedding before the hard limit. *)
  let drops = ref 0 in
  for i = 0 to 999 do
    let now = Sim.Time.of_sec (float_of_int i *. 0.001) in
    match Netsim.Queue_disc.enqueue q ~now (mk_pkt i) with
    | Ok () -> ()
    | Error _ -> incr drops
  done;
  Alcotest.(check bool) "RED dropped some" true (!drops > 0);
  Alcotest.(check bool) "queue never exceeded capacity" true
    (Netsim.Queue_disc.length q <= 50)

let test_red_ecn_marks_instead_of_dropping () =
  let q =
    Netsim.Queue_disc.red ~ecn:true ~capacity_packets:50
      ~link_rate:(Sim.Units.mbps 100.) Netsim.Queue_disc.default_red
  in
  (* Hold the instantaneous queue around 10 packets (between min_th 5
     and max_th 15) long enough for the EWMA to settle there: RED's
     early decisions then mark instead of dropping. *)
  let marked_on_dequeue = ref 0 in
  for i = 0 to 9 do
    ignore (Netsim.Queue_disc.enqueue q ~now:Sim.Time.zero (mk_pkt i))
  done;
  let dropped = ref 0 in
  for i = 10 to 5009 do
    let now = Sim.Time.of_sec (float_of_int i *. 1e-4) in
    (match Netsim.Queue_disc.enqueue q ~now (mk_pkt i) with
    | Ok () -> ()
    | Error _ -> incr dropped);
    match Netsim.Queue_disc.dequeue q ~now with
    | Some pkt -> if pkt.Netsim.Packet.ecn_ce then incr marked_on_dequeue
    | None -> ()
  done;
  Alcotest.(check bool) "marks happened" true
    (Netsim.Queue_disc.ecn_marks q > 0);
  Alcotest.(check bool) "CE bits seen on dequeued packets" true
    (!marked_on_dequeue > 0);
  Alcotest.(check int) "early decisions never dropped in ECN mode" 0
    !dropped

let test_droptail_never_marks () =
  let q = Netsim.Queue_disc.droptail ~capacity_packets:2 () in
  ignore (Netsim.Queue_disc.enqueue q ~now:Sim.Time.zero (mk_pkt 0));
  Alcotest.(check int) "no marks" 0 (Netsim.Queue_disc.ecn_marks q)

let suite =
  [
    Alcotest.test_case "RED+ECN marks instead of dropping" `Quick
      test_red_ecn_marks_instead_of_dropping;
    Alcotest.test_case "droptail never marks" `Quick test_droptail_never_marks;
    Alcotest.test_case "droptail capacity" `Quick test_droptail_capacity;
    Alcotest.test_case "droptail FIFO" `Quick test_droptail_fifo;
    Alcotest.test_case "byte accounting" `Quick test_byte_accounting;
    Alcotest.test_case "byte capacity bound" `Quick test_byte_capacity;
    Alcotest.test_case "drop hook" `Quick test_drop_hook;
    Alcotest.test_case "invalid capacity" `Quick test_invalid_capacity;
    Alcotest.test_case "RED: light load passes" `Quick test_red_below_min_th;
    Alcotest.test_case "RED: sheds under sustained load" `Quick
      test_red_drops_under_sustained_load;
  ]
