type critical_point = { kc : float; tc : float }

let pp_critical fmt { kc; tc } = Format.fprintf fmt "Kc=%.4g Tc=%.4g" kc tc

let zn_p { kc; _ } = Pid.p_only (0.5 *. kc)
let zn_pi { kc; tc } = Pid.pi ~kp:(0.45 *. kc) ~ti:(tc /. 1.2)

let zn_pid { kc; tc } =
  Pid.pid ~kp:(0.6 *. kc) ~ti:(0.5 *. tc) ~td:(0.125 *. tc)

let paper_pid { kc; tc } =
  Pid.pid ~kp:(0.33 *. kc) ~ti:(0.5 *. tc) ~td:(0.33 *. tc)

let tyreus_luyben { kc; tc } =
  Pid.pid ~kp:(0.454 *. kc) ~ti:(2.2 *. tc) ~td:(tc /. 6.3)

let pessen { kc; tc } =
  Pid.pid ~kp:(0.7 *. kc) ~ti:(0.4 *. tc) ~td:(0.15 *. tc)
