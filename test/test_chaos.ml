(* Chaos harness: fixed-seed invariant suites for both slow-start
   variants, JSON round-trip, failure artifacts with byte-identical
   replay, and sweep determinism under the domain pool. *)

let mss = 1460

let ge_burst_profile =
  {
    Netsim.Fault_model.passthrough with
    Netsim.Fault_model.ge =
      Some
        {
          Netsim.Fault_model.p_gb = 0.01;
          p_bg = 0.3;
          loss_good = 0.0005;
          loss_bad = 0.15;
        };
  }

(* An outage lasting 2 × max_rto, opening mid slow-start: the sender
   must ride through at least two consecutive backed-off timeouts and
   still finish. *)
let two_rto_outage_profile max_rto =
  let start = Sim.Time.ms 200 in
  {
    Netsim.Fault_model.passthrough with
    Netsim.Fault_model.schedule =
      [
        Netsim.Fault_model.Outage
          { start; stop = Sim.Time.add start (Sim.Time.mul_int max_rto 2) };
      ];
  }

let fixed_case ~name ~variant ~profile =
  Core.Chaos.make_case ~name ~seed:1234 ~variant ~duration:(Sim.Time.sec 30)
    ~bytes:(Some (400 * mss)) ~forward:profile ()

let check_passes case =
  let o = Core.Chaos.run_case case in
  Alcotest.(check (list string))
    (Core.Chaos.case_name case ^ " passes all invariants")
    [] o.Core.Chaos.violations;
  Alcotest.(check bool) "completed" true o.Core.Chaos.completed

let test_ge_burst_loss_both_variants () =
  check_passes
    (fixed_case ~name:"ge-standard" ~variant:"standard"
       ~profile:ge_burst_profile);
  check_passes
    (fixed_case ~name:"ge-restricted" ~variant:"restricted"
       ~profile:ge_burst_profile)

let test_two_rto_outage_both_variants () =
  let profile =
    two_rto_outage_profile (Core.Chaos.case_max_rto Core.Chaos.default_case)
  in
  let case = fixed_case ~name:"outage-standard" ~variant:"standard" ~profile in
  let o = Core.Chaos.run_case case in
  Alcotest.(check (list string)) "standard passes" [] o.Core.Chaos.violations;
  Alcotest.(check bool) "outage actually forced timeouts" true
    (o.Core.Chaos.timeouts >= 2);
  check_passes
    (fixed_case ~name:"outage-restricted" ~variant:"restricted" ~profile)

let test_case_json_roundtrip () =
  List.iter
    (fun index ->
      let case = Core.Chaos.random_case ~root:7 ~index in
      let text = Report.Json.to_string (Core.Chaos.case_to_json case) in
      match Report.Json.of_string text with
      | Error e -> Alcotest.fail ("reparse failed: " ^ e)
      | Ok json -> (
          match Core.Chaos.case_of_json json with
          | Error e -> Alcotest.fail ("decode failed: " ^ e)
          | Ok back ->
              Alcotest.(check bool)
                (Printf.sprintf "case %d round-trips exactly" index)
                true (back = case)))
    (List.init 10 Fun.id)

let test_case_json_errors () =
  let reject text expect_fragment =
    match Report.Json.of_string text with
    | Error _ -> ()
    | Ok json -> (
        match Core.Chaos.case_of_json json with
        | Ok _ -> Alcotest.fail ("decoded invalid case: " ^ text)
        | Error e ->
            Alcotest.(check bool)
              (Printf.sprintf "error %S names the field (%s)" e
                 expect_fragment)
              true
              (let n = String.length expect_fragment in
               let h = String.length e in
               let rec go i =
                 i + n <= h
                 && (String.sub e i n = expect_fragment || go (i + 1))
               in
               go 0))
  in
  reject "{}" "spec";
  reject {|{"spec":{"seed":12}}|} "seed";
  reject {|{"spec":{"topology":{"kind":"mesh"}}}|} "topology"

let quick_sweep_cases =
  (* Random cases shrunk to a 6-second horizon so the determinism and
     failure-capture tests stay fast; completion is not required. *)
  List.map
    (Core.Chaos.adjust ~duration:(Sim.Time.sec 6) ~check_completion:false)
    (Core.Chaos.random_cases ~root:42 4)

let traces outcomes = List.map (fun o -> o.Core.Chaos.trace) outcomes

let test_sweep_identical_across_jobs () =
  let sequential = Core.Chaos.run_sweep quick_sweep_cases in
  let parallel =
    Engine.Pool.with_pool ~jobs:4 (fun pool ->
        Core.Chaos.run_sweep ~pool quick_sweep_cases)
  in
  Alcotest.(check (list string))
    "traces byte-identical at --jobs 4" (traces sequential) (traces parallel);
  Alcotest.(check (list (list string)))
    "violations identical"
    (List.map (fun o -> o.Core.Chaos.violations) sequential)
    (List.map (fun o -> o.Core.Chaos.violations) parallel)

let test_sweep_captures_poisoned_cell () =
  (* An unknown slow-start variant raises inside run_case; the sweep
     must drain, convert the raise into a violation on that cell, and
     leave every surviving cell identical to the sequential run. *)
  let poisoned =
    List.mapi
      (fun i c ->
        if i = 1 then Core.Chaos.adjust ~variant:"no-such-policy" c else c)
      quick_sweep_cases
  in
  let sequential = Core.Chaos.run_sweep poisoned in
  let parallel =
    Engine.Pool.with_pool ~jobs:4 (fun pool ->
        Core.Chaos.run_sweep ~pool poisoned)
  in
  let bad = List.nth sequential 1 in
  Alcotest.(check bool) "poisoned cell failed" false (Core.Chaos.passed bad);
  (match bad.Core.Chaos.violations with
  | [ v ] ->
      Alcotest.(check bool) "violation is the captured exception" true
        (String.length v > 10 && String.sub v 0 10 = "exception:")
  | other ->
      Alcotest.fail
        (Printf.sprintf "expected one exception violation, got %d"
           (List.length other)));
  Alcotest.(check (list string)) "surviving rows unchanged vs --jobs 1"
    (traces sequential) (traces parallel)

let test_failure_artifact_replay () =
  (* Force a failure (impossible deadline), write the artifact, reload
     it, and check the replay is byte-identical. *)
  let case =
    Core.Chaos.adjust ~duration:(Sim.Time.ms 500)
      (fixed_case ~name:"doomed case #1" ~variant:"standard"
         ~profile:ge_burst_profile)
  in
  let o = Core.Chaos.run_case case in
  Alcotest.(check bool) "case fails as constructed" false
    (Core.Chaos.passed o);
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "rss_chaos_test" in
  (match Core.Chaos.write_failures ~dir [ o ] with
  | [ path ] -> (
      Alcotest.(check bool) "artifact name sanitized" true
        (Filename.basename path = "doomed_case__1.json");
      match Core.Chaos.replay path with
      | Error e -> Alcotest.fail ("replay failed: " ^ e)
      | Ok (fresh, identical) ->
          Alcotest.(check bool) "replay byte-identical" true identical;
          Alcotest.(check (list string)) "violations reproduced"
            o.Core.Chaos.violations fresh.Core.Chaos.violations;
          Sys.remove path)
  | other ->
      Alcotest.fail
        (Printf.sprintf "expected one artifact, got %d" (List.length other)));
  (* A passing outcome writes nothing. *)
  Alcotest.(check (list string)) "no artifact for passing outcomes" []
    (Core.Chaos.write_failures ~dir
       [ { o with Core.Chaos.violations = [] } ])

let suite =
  [
    Alcotest.test_case "Gilbert-Elliott burst loss, both variants" `Quick
      test_ge_burst_loss_both_variants;
    Alcotest.test_case "2xRTO outage, both variants" `Quick
      test_two_rto_outage_both_variants;
    Alcotest.test_case "case JSON round-trip" `Quick test_case_json_roundtrip;
    Alcotest.test_case "case JSON error reporting" `Quick
      test_case_json_errors;
    Alcotest.test_case "sweep identical across jobs" `Quick
      test_sweep_identical_across_jobs;
    Alcotest.test_case "poisoned cell captured, batch drains" `Quick
      test_sweep_captures_poisoned_cell;
    Alcotest.test_case "failure artifact replay" `Quick
      test_failure_artifact_replay;
  ]
