(* The conservative-lookahead partition synchronizer (Sim.Partition):
   channel validation, epoch/horizon semantics, break quiescence, and
   the determinism contract — a partitioned model must replay a
   single-scheduler oracle's trajectory exactly, at any worker count. *)

module Time = Sim.Time
module Scheduler = Sim.Scheduler
module Partition = Sim.Partition

let ms = Time.ms
let seed_of i = 1000 + i

let test_create_validation () =
  Alcotest.check_raises "parts < 1"
    (Invalid_argument "Partition.create: need at least 1 partition")
    (fun () -> ignore (Partition.create ~parts:0 ~seed_of));
  let p = Partition.create ~parts:2 ~seed_of in
  Alcotest.(check int) "count" 2 (Partition.count p);
  Alcotest.(check int) "no channels: max_int lookahead" max_int
    (Partition.min_lookahead_ns p)

let test_channel_validation () =
  let p = Partition.create ~parts:2 ~seed_of in
  let handler _ () = () in
  let expect_invalid what f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" what
  in
  expect_invalid "equal endpoints" (fun () ->
      ignore (Partition.channel p ~src:0 ~dst:0 ~lookahead:(ms 1) ~handler));
  expect_invalid "src out of range" (fun () ->
      ignore (Partition.channel p ~src:2 ~dst:0 ~lookahead:(ms 1) ~handler));
  expect_invalid "zero lookahead" (fun () ->
      ignore
        (Partition.channel p ~src:0 ~dst:1 ~lookahead:Time.zero ~handler));
  ignore (Partition.channel p ~src:0 ~dst:1 ~lookahead:(ms 1) ~handler);
  Alcotest.(check int) "min lookahead tracks the channel"
    (Time.to_ns_int (ms 1))
    (Partition.min_lookahead_ns p)

(* Ping-pong across the cut: a token bounces between two nodes with a
   fixed one-way latency, each arrival schedules the return. The oracle
   is the same model on one scheduler. *)
let pingpong_oracle ~latency ~until =
  let sched = Scheduler.create ~seed:42 () in
  let log = ref [] in
  let rec arrive side at hop =
    log := (Time.to_ns_int at, side, hop) :: !log;
    ignore
      (Scheduler.at sched (Time.add at latency) (fun () ->
           arrive (1 - side) (Time.add at latency) (hop + 1)))
  in
  ignore (Scheduler.at sched latency (fun () -> arrive 1 latency 1));
  Scheduler.run ~until sched;
  List.rev !log

let pingpong_partitioned ~latency ~until ~workers =
  let p = Partition.create ~parts:2 ~seed_of in
  (* One log per partition: epochs run concurrently, so cross-partition
     appends to a shared list would race. Merged afterwards by hop. *)
  let logs = [| ref []; ref [] |] in
  let chans = Array.make 2 None in
  let send ~src ~due hop =
    match chans.(src) with
    | Some ch -> Partition.Channel.send ch ~due hop
    | None -> assert false
  in
  let arrive dst due hop =
    logs.(dst) := (Time.to_ns_int due, dst, hop) :: !(logs.(dst));
    send ~src:dst ~due:(Time.add due latency) (hop + 1)
  in
  chans.(0) <-
    Some
      (Partition.channel p ~src:0 ~dst:1 ~lookahead:latency
         ~handler:(fun due hop -> arrive 1 due hop));
  chans.(1) <-
    Some
      (Partition.channel p ~src:1 ~dst:0 ~lookahead:latency
         ~handler:(fun due hop -> arrive 0 due hop));
  (* Kick from partition 0 at t=0 through its own channel, so the first
     arrival lands on node 1 at [latency] — matching the oracle. *)
  ignore
    (Scheduler.at (Partition.scheduler p 0) Time.zero (fun () ->
         send ~src:0 ~due:latency 1));
  Partition.run p ~until ~workers ();
  List.sort compare (List.rev_append !(logs.(0)) !(logs.(1)))

let triple = Alcotest.(list (triple int int int))

let test_pingpong_oracle () =
  let latency = ms 3 and until = Time.ms 100 in
  let oracle =
    List.sort compare (pingpong_oracle ~latency ~until)
  in
  Alcotest.check triple "partitioned = single-scheduler oracle" oracle
    (pingpong_partitioned ~latency ~until ~workers:1)

let test_worker_invariance () =
  let latency = ms 2 and until = Time.ms 50 in
  let one = pingpong_partitioned ~latency ~until ~workers:1 in
  let two = pingpong_partitioned ~latency ~until ~workers:2 in
  let eight = pingpong_partitioned ~latency ~until ~workers:8 in
  Alcotest.check triple "workers 1 = 2" one two;
  Alcotest.check triple "workers 1 = 8 (clamped)" one eight

let test_until_inclusive () =
  let p = Partition.create ~parts:2 ~seed_of in
  ignore
    (Partition.channel p ~src:0 ~dst:1 ~lookahead:(ms 1)
       ~handler:(fun _ () -> ()));
  let fired = ref 0 in
  ignore (Scheduler.at (Partition.scheduler p 0) (ms 10) (fun () -> incr fired));
  ignore (Scheduler.at (Partition.scheduler p 1) (ms 10) (fun () -> incr fired));
  Partition.run p ~until:(ms 10) ();
  Alcotest.(check int) "boundary events fire" 2 !fired;
  Alcotest.(check int) "clock 0 at until" (Time.to_ns_int (ms 10))
    (Time.to_ns_int (Scheduler.now (Partition.scheduler p 0)));
  Alcotest.(check int) "clock 1 at until" (Time.to_ns_int (ms 10))
    (Time.to_ns_int (Scheduler.now (Partition.scheduler p 1)))

(* Breaks: the model is globally quiesced — every event strictly below
   the break has fired on both partitions, clocks sit exactly at the
   break, and work injected by on_break runs afterwards. *)
let test_breaks_quiesce () =
  let p = Partition.create ~parts:2 ~seed_of in
  ignore
    (Partition.channel p ~src:0 ~dst:1 ~lookahead:(ms 1)
       ~handler:(fun _ () -> ()));
  let fired = ref [] in
  let note tag = fired := tag :: !fired in
  ignore (Scheduler.at (Partition.scheduler p 0) (ms 5) (fun () -> note "p0@5"));
  ignore
    (Scheduler.at (Partition.scheduler p 1) (ms 15) (fun () -> note "p1@15"));
  let breaks = [ ms 10 ] in
  let saw_break = ref false in
  let on_break at =
    saw_break := true;
    Alcotest.(check int) "break at 10ms" (Time.to_ns_int (ms 10))
      (Time.to_ns_int at);
    Alcotest.(check (list string)) "only pre-break events fired" [ "p0@5" ]
      (List.rev !fired);
    Alcotest.(check int) "clock 0 = break" (Time.to_ns_int (ms 10))
      (Time.to_ns_int (Scheduler.now (Partition.scheduler p 0)));
    Alcotest.(check int) "clock 1 = break" (Time.to_ns_int (ms 10))
      (Time.to_ns_int (Scheduler.now (Partition.scheduler p 1)));
    (* Injecting work exactly at the break is legal (the clock equals
       the break time), and it runs before later model events. *)
    ignore (Scheduler.at (Partition.scheduler p 1) (ms 10) (fun () -> note "inj@10"))
  in
  Partition.run p ~until:(ms 20) ~breaks ~on_break ();
  Alcotest.(check bool) "break observed" true !saw_break;
  Alcotest.(check (list string)) "full order" [ "p0@5"; "inj@10"; "p1@15" ]
    (List.rev !fired)

(* A worker exception must surface on the coordinator, not kill the
   process (Partition.run re-raises after the barrier). *)
let test_worker_exception_propagates () =
  let p = Partition.create ~parts:2 ~seed_of in
  ignore
    (Partition.channel p ~src:0 ~dst:1 ~lookahead:(ms 1)
       ~handler:(fun _ () -> ()));
  ignore
    (Scheduler.at (Partition.scheduler p 1) (ms 5) (fun () ->
         failwith "boom"));
  let raised =
    match Partition.run p ~until:(ms 10) ~workers:2 () with
    | () -> false
    | exception Failure m -> m = "boom"
  in
  Alcotest.(check bool) "Failure re-raised on coordinator" true raised

let suite =
  [
    Alcotest.test_case "create validation" `Quick test_create_validation;
    Alcotest.test_case "channel validation" `Quick test_channel_validation;
    Alcotest.test_case "ping-pong matches oracle" `Quick test_pingpong_oracle;
    Alcotest.test_case "worker-count invariance" `Quick test_worker_invariance;
    Alcotest.test_case "run ~until is inclusive" `Quick test_until_inclusive;
    Alcotest.test_case "breaks quiesce globally" `Quick test_breaks_quiesce;
    Alcotest.test_case "worker exception propagates" `Quick
      test_worker_exception_propagates;
  ]
