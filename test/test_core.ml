(* Scenario construction, Run harness and experiment drivers (short
   horizons to stay fast — the full horizons run in bench/). *)

let test_scenario_defaults () =
  let s = Core.Scenario.anl_lbnl () in
  Alcotest.(check (float 1e-6)) "BDP = 500 pkts" 500.
    (Core.Scenario.bdp_packets s);
  Alcotest.(check int) "sender id" 0
    (Netsim.Host.id (Core.Scenario.sender_host s));
  Alcotest.(check int) "receiver id" 1
    (Netsim.Host.id (Core.Scenario.receiver_host s));
  Alcotest.(check int) "ifq capacity" 100
    (Netsim.Ifq.capacity (Core.Scenario.sender_ifq s))

let short_spec slow_start =
  {
    Core.Run.default_spec with
    duration = Sim.Time.sec 3;
    slow_start;
    sample_period = Sim.Time.ms 100;
  }

let test_run_bulk_standard () =
  let r = Core.Run.bulk (short_spec "standard") in
  Alcotest.(check string) "label defaults to policy" "standard"
    r.Core.Run.label;
  Alcotest.(check bool) "goodput positive" true (r.Core.Run.goodput_mbps > 1.);
  Alcotest.(check bool) "utilization consistent" true
    (Float.abs (r.Core.Run.utilization -. (r.Core.Run.goodput_mbps /. 100.))
     < 1e-9);
  Alcotest.(check bool) "series populated" true
    (Sim.Stats.Series.length r.Core.Run.cwnd_series > 20)

let test_run_bulk_restricted_beats_standard () =
  let std = Core.Run.bulk (short_spec "standard") in
  let rss = Core.Run.bulk (short_spec "restricted") in
  Alcotest.(check bool) "RSS ahead after 3s" true
    (rss.Core.Run.goodput_mbps > std.Core.Run.goodput_mbps);
  Alcotest.(check int) "RSS stall-free" 0 rss.Core.Run.send_stalls

let test_run_completion () =
  let spec = { (short_spec "standard") with Core.Run.bytes = Some 100_000 } in
  let r = Core.Run.bulk spec in
  match r.Core.Run.completion with
  | Some t -> Alcotest.(check bool) "completed quickly" true
                (Sim.Time.to_sec t < 1.)
  | None -> Alcotest.fail "transfer did not complete"

let test_run_determinism () =
  let a = Core.Run.bulk (short_spec "standard") in
  let b = Core.Run.bulk (short_spec "standard") in
  Alcotest.(check (float 0.)) "identical goodput" a.Core.Run.goodput_mbps
    b.Core.Run.goodput_mbps;
  Alcotest.(check int) "identical stalls" a.Core.Run.send_stalls
    b.Core.Run.send_stalls

let test_run_rejects_bogus_policy () =
  Alcotest.(check bool) "invalid_arg on bogus policy" true
    (try
       ignore (Core.Run.bulk (short_spec "bogus"));
       false
     with Invalid_argument _ -> true)

let test_fig1_short () =
  let r = Core.Experiments.Fig1.run ~duration:(Sim.Time.sec 3) () in
  let std = r.Core.Experiments.Fig1.standard in
  let rss = r.Core.Experiments.Fig1.restricted in
  Alcotest.(check bool) "standard stalls" true (std.Core.Run.send_stalls >= 1);
  Alcotest.(check int) "RSS clean" 0 rss.Core.Run.send_stalls;
  (* The stalls series is a cumulative counter: non-decreasing. *)
  let v = Sim.Stats.Series.values std.Core.Run.stalls_series in
  let monotone = ref true in
  Array.iteri (fun i x -> if i > 0 && x < v.(i - 1) then monotone := false) v;
  Alcotest.(check bool) "cumulative monotone" true !monotone

let test_table1_short () =
  let rows = Core.Experiments.Table1.run ~durations:[ 3. ] () in
  match rows with
  | [ row ] ->
      Alcotest.(check bool) "improvement positive" true
        (row.Core.Experiments.Table1.improvement_pct > 0.)
  | _ -> Alcotest.fail "expected one row"

let test_variants_short () =
  let rows = Core.Experiments.Variants.run ~duration:(Sim.Time.sec 3) () in
  Alcotest.(check (list string)) "order and labels"
    [ "standard"; "abc"; "limited"; "hystart"; "restricted" ]
    (List.map (fun r -> r.Core.Run.label) rows)

let test_ifq_sweep_short () =
  let rows =
    Core.Experiments.Ifq_sweep.run ~sizes:[ 50; 200 ]
      ~duration:(Sim.Time.sec 3) ()
  in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  List.iter
    (fun (r : Core.Experiments.Ifq_sweep.row) ->
      Alcotest.(check bool) "RSS >= std on paper path" true
        (r.Core.Experiments.Ifq_sweep.restricted.Core.Run.goodput_mbps
         >= 0.8
            *. r.Core.Experiments.Ifq_sweep.standard.Core.Run.goodput_mbps))
    rows

let test_fairness_short () =
  let r = Core.Experiments.Fairness.run ~duration:(Sim.Time.sec 5) () in
  Alcotest.(check bool) "Jain in (0,1]" true
    (r.Core.Experiments.Fairness.jain_index > 0.
    && r.Core.Experiments.Fairness.jain_index <= 1.);
  Alcotest.(check bool) "both flows progress" true
    (r.Core.Experiments.Fairness.reno_mbps > 0.
    && r.Core.Experiments.Fairness.restricted_mbps > 0.)

let test_latency_experiment_short () =
  let rows = Core.Experiments.Latency.run ~duration:(Sim.Time.sec 5) () in
  Alcotest.(check int) "four rows" 4 (List.length rows);
  (match rows with
  | std :: rss09 :: _ ->
      (* RSS's standing queue must show up as added one-way delay. *)
      Alcotest.(check bool) "rss delay above standard" true
        (rss09.Core.Experiments.Latency.mean_delay_ms
        > std.Core.Experiments.Latency.mean_delay_ms +. 5.);
      Alcotest.(check bool) "delays above propagation floor" true
        (std.Core.Experiments.Latency.mean_delay_ms >= 30.)
  | _ -> Alcotest.fail "unexpected row shape");
  (* Lower set points give monotonically lower delay. *)
  let delays =
    List.map (fun r -> r.Core.Experiments.Latency.mean_delay_ms) (List.tl rows)
  in
  Alcotest.(check bool) "set point orders delay" true
    (List.sort (fun a b -> compare b a) delays = delays)

let test_calibrate_plant_responds () =
  let plant = Core.Calibrate.sim_plant () () in
  (* Tiny window: IFQ stays empty. *)
  let y_small = plant ~dt:0.5 ~u:4. in
  Alcotest.(check (float 1.)) "empty at small window" 0. y_small;
  (* Large window: the queue must fill (BDP 500 + slack). *)
  let y = ref 0. in
  for _ = 1 to 6 do
    y := plant ~dt:0.5 ~u:700.
  done;
  Alcotest.(check bool) "queue builds at big window" true (!y > 50.)

let test_tuned_config () =
  let cfg =
    Core.Calibrate.tuned_config { Control.Tuning.kc = 1.; tc = 0.12 }
  in
  Alcotest.(check (float 1e-9)) "paper rule Kp" 0.33
    cfg.Tcp.Slow_start.gains.Control.Pid.kp;
  Alcotest.(check (float 1e-9)) "paper rule Ti" 0.06
    cfg.Tcp.Slow_start.gains.Control.Pid.ti;
  Alcotest.(check (float 1e-9)) "setpoint fraction" 0.9
    cfg.Tcp.Slow_start.setpoint_fraction

let suite =
  [
    Alcotest.test_case "scenario defaults" `Quick test_scenario_defaults;
    Alcotest.test_case "run bulk standard" `Quick test_run_bulk_standard;
    Alcotest.test_case "run: RSS beats standard" `Quick
      test_run_bulk_restricted_beats_standard;
    Alcotest.test_case "run completion" `Quick test_run_completion;
    Alcotest.test_case "run determinism" `Quick test_run_determinism;
    Alcotest.test_case "bogus policy rejected" `Quick
      test_run_rejects_bogus_policy;
    Alcotest.test_case "fig1 (short)" `Quick test_fig1_short;
    Alcotest.test_case "table1 (short)" `Quick test_table1_short;
    Alcotest.test_case "variants (short)" `Quick test_variants_short;
    Alcotest.test_case "ifq sweep (short)" `Quick test_ifq_sweep_short;
    Alcotest.test_case "fairness (short)" `Slow test_fairness_short;
    Alcotest.test_case "latency experiment (short)" `Quick
      test_latency_experiment_short;
    Alcotest.test_case "calibration plant responds" `Slow
      test_calibrate_plant_responds;
    Alcotest.test_case "tuned config" `Quick test_tuned_config;
  ]
