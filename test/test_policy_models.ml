(* Oracle tests: the congestion-avoidance arithmetic checked against the
   closed-form steady-state models from the literature.

   The harness drives the *real* Cong_avoid closures through a
   deterministic ACK stream with one loss event every k = 1/p packets
   (each ACK acknowledges one MSS, i.e. one packet), then compares the
   steady-state mean window against the model:

   - Relentless CC (arXiv 1102.3270): a loss costs exactly the lost
     segment, so +1 segment/RTT additive increase balances p·W
     one-segment decrements per RTT at p·W = 1 — W* = 1/p segments,
     throughput MSS/(p·RTT).
   - Reno: the 1/sqrt(p) rule. With halving every 1/p packets the
     sawtooth mean is sqrt(3/(2p)) segments (Mathis et al.). *)

let mss = Tcp.Config.default.Tcp.Config.mss
let mss_f = float_of_int mss

(* Mean window (in segments) over the post-warmup portion of [acks]
   ACKed packets with a loss event every [loss_every]-th packet. *)
let steady_mean_window ~(cc : Tcp.Cong_avoid.t) ~loss_every ~acks ~warmup =
  let cwnd = ref (10. *. mss_f) in
  let sum = ref 0. in
  let n = ref 0 in
  for i = 1 to acks do
    cwnd :=
      cc.Tcp.Cong_avoid.on_ack ~newly_acked:mss ~cwnd:!cwnd ~mss ~srtt:None
        ~min_rtt:None ~now:Sim.Time.zero;
    if i mod loss_every = 0 then begin
      let _ssthresh, next =
        cc.Tcp.Cong_avoid.on_loss ~cwnd:!cwnd ~flight:(int_of_float !cwnd)
          ~mss ~now:Sim.Time.zero
      in
      cwnd := next
    end;
    if i > warmup then begin
      sum := !sum +. (!cwnd /. mss_f);
      incr n
    end
  done;
  !sum /. float_of_int !n

let check_model ~what ~tolerance ~model measured =
  let rel = Float.abs (measured -. model) /. model in
  Alcotest.(check bool)
    (Printf.sprintf "%s: measured %.2f vs model %.2f seg (rel err %.3f, tol %.2f)"
       what measured model rel tolerance)
    true (rel <= tolerance)

(* W* = 1/p within 10% across a decade of loss rates. *)
let test_relentless_window () =
  List.iter
    (fun loss_every ->
      let p = 1. /. float_of_int loss_every in
      (* Reno-rate additive increase needs ~W*^2/2 ACKs to climb to the
         fixed point, so the warmup is quadratic in 1/p. *)
      let warmup = (100 * loss_every) + (loss_every * loss_every) in
      let measured =
        steady_mean_window ~cc:(Tcp.Cong_avoid.relentless ())
          ~loss_every ~acks:(warmup + (100 * loss_every)) ~warmup
      in
      check_model
        ~what:(Printf.sprintf "relentless W* at p=%g" p)
        ~tolerance:0.10 ~model:(1. /. p) measured)
    [ 50; 100; 200 ]

(* Throughput form of the same fixed point: W*·MSS/RTT = MSS/(p·RTT). *)
let test_relentless_throughput () =
  let p = 0.01 in
  let rtt = 0.12 in
  let measured_w =
    steady_mean_window ~cc:(Tcp.Cong_avoid.relentless ()) ~loss_every:100
      ~acks:30_000 ~warmup:20_000
  in
  let measured_bps = measured_w *. mss_f *. 8. /. rtt in
  let model_bps = mss_f *. 8. /. (p *. rtt) in
  check_model ~what:"relentless throughput at p=0.01, rtt=120ms"
    ~tolerance:0.10
    ~model:(model_bps /. 1e6)
    (measured_bps /. 1e6)

(* Reno sanity baseline: mean W = sqrt(3/(2p)) within 15%. *)
let test_reno_inverse_sqrt_p () =
  List.iter
    (fun loss_every ->
      let p = 1. /. float_of_int loss_every in
      let measured =
        steady_mean_window ~cc:(Tcp.Cong_avoid.reno ()) ~loss_every
          ~acks:(400 * loss_every) ~warmup:(200 * loss_every)
      in
      check_model
        ~what:(Printf.sprintf "reno mean W at p=%g" p)
        ~tolerance:0.15
        ~model:(Float.sqrt (1.5 /. p))
        measured)
    [ 100; 300; 1000 ]

(* End-to-end cross-check in the full simulator: on a randomly lossy
   WAN the models put Relentless (W* = 1/p) far above Reno
   (sqrt(1.5/p)); at p = 2% the predicted ratio is ~5.7. Recovery
   dynamics, delayed ACKs and slow-start keep the simulator off the
   idealized numbers, so only the ordering and a conservative ratio are
   asserted. *)
let test_relentless_beats_reno_on_lossy_path () =
  let goodput policy =
    let spec =
      {
        Core.Spec.default with
        Core.Spec.name = "oracle-lossy__" ^ policy;
        duration = Sim.Time.sec 15;
        record_series = false;
        topology =
          Core.Spec.Duplex
            {
              Core.Spec.default_duplex with
              Core.Spec.one_way_delay = Sim.Time.ms 60;
              loss_rate = 0.02;
            };
        flows =
          [ { Core.Spec.default_flow with Core.Spec.policy = Some policy } ];
      }
    in
    (Core.Spec.run spec).Core.Spec.path.Core.Spec.aggregate_goodput_mbps
  in
  let relentless = goodput "relentless" in
  let standard = goodput "standard" in
  Alcotest.(check bool)
    (Printf.sprintf
       "relentless (%.2f Mbit/s) at least 2x reno (%.2f Mbit/s) at p=0.02"
       relentless standard)
    true
    (relentless >= 2. *. standard)

let suite =
  [
    Alcotest.test_case "relentless window matches 1/p" `Quick
      test_relentless_window;
    Alcotest.test_case "relentless throughput matches MSS/(p RTT)" `Quick
      test_relentless_throughput;
    Alcotest.test_case "reno follows the 1/sqrt(p) rule" `Quick
      test_reno_inverse_sqrt_p;
    Alcotest.test_case "relentless beats reno on a lossy path" `Quick
      test_relentless_beats_reno_on_lossy_path;
  ]
