(* Declarative scenario pipeline: spec value -> built network -> outcome.

   Compilation is ordered so that a spec reproducing one of the legacy
   hand-wired assemblies (Run.bulk, experiments E5/E8/E11, the chaos
   harness) performs the same scheduler/RNG operations in the same
   sequence, keeping results byte-identical through the refactor:
   scheduler -> topology -> fault models (forward, then reverse) ->
   flows in list order -> instrumentation timers -> run. *)

module Json = Report.Json
module Fm = Netsim.Fault_model

type cong_avoid = Reno | Cubic | Vegas

type duplex = {
  rate : Sim.Units.rate;
  one_way_delay : Sim.Time.t;
  ifq_capacity : int;
  loss_rate : float;
  ifq_red_ecn : Netsim.Queue_disc.red_params option;
}

type dumbbell = {
  pairs : int;
  access_rate : Sim.Units.rate;
  access_delay : Sim.Time.t;
  bottleneck_rate : Sim.Units.rate;
  bottleneck_delay : Sim.Time.t;
  buffer_packets : int;
  host_ifq_capacity : int;
  red : Netsim.Queue_disc.red_params option;
}

type multi_dumbbell = {
  segments : int;
  m_pairs : int;
  m_access_rate : Sim.Units.rate;
  m_access_delay : Sim.Time.t;
  m_bottleneck_rate : Sim.Units.rate;
  m_bottleneck_delay : Sim.Time.t;
  core_rate : Sim.Units.rate;
  core_delay : Sim.Time.t;
  m_buffer_packets : int;
  m_host_ifq_capacity : int;
  m_red : Netsim.Queue_disc.red_params option;
  cross_pairs : int;
}

type topology =
  | Duplex of duplex
  | Dumbbell of dumbbell
  | Multi_dumbbell of multi_dumbbell

type workload =
  | Bulk of { bytes : int option }
  | Chunked of {
      chunk_bytes : int;
      interval : Sim.Time.t;
      chunks : int option;
    }
  | Cbr of {
      rate : Sim.Units.rate;
      packet_bytes : int;
      stop_at : Sim.Time.t option;
    }
  | On_off of {
      peak_rate : Sim.Units.rate;
      mean_on : Sim.Time.t;
      mean_off : Sim.Time.t;
      packet_bytes : int;
    }
  | Short_flows of {
      arrival_rate : float;
      mean_size : int;
      pareto_shape : float;
      stop_at : Sim.Time.t option;
    }
  | Many_flows of {
      flows : int;
      arrival_rate : float option;
      arrival_pareto_shape : float option;
      mean_size : int option;
      size_pareto_shape : float;
    }

type flow = {
  label : string option;
  pair : int;
  start_at : Sim.Time.t;
  policy : string option;
  slow_start : string;
  restricted : Tcp.Slow_start.restricted_config option;
  shared_rss : bool;
  cong_avoid : cong_avoid;
  local_congestion : Tcp.Local_congestion.policy;
  delayed_ack : Sim.Time.t option;
  use_sack : bool;
  pacing : bool;
  slow_start_restart : bool;
  max_rto : Sim.Time.t option;
  workload : workload;
}

type faults = { forward : Fm.profile; reverse : Fm.profile }

type t = {
  name : string;
  seed : int;
  duration : Sim.Time.t;
  sample_period : Sim.Time.t;
  record_series : bool;
  record_trace : bool;
  trace_capacity : int;
  domains : int;
  topology : topology;
  flows : flow list;
  faults : faults;
}

let default_duplex =
  {
    rate = Sim.Units.mbps 100.;
    one_way_delay = Sim.Time.ms 30;
    ifq_capacity = 100;
    loss_rate = 0.;
    ifq_red_ecn = None;
  }

let default_flow =
  {
    label = None;
    pair = 0;
    start_at = Sim.Time.zero;
    policy = None;
    slow_start = "standard";
    restricted = None;
    shared_rss = false;
    cong_avoid = Reno;
    local_congestion = Tcp.Local_congestion.Halve;
    delayed_ack = Tcp.Config.default.Tcp.Config.delayed_ack;
    use_sack = true;
    pacing = false;
    slow_start_restart = Tcp.Config.default.Tcp.Config.slow_start_restart;
    max_rto = None;
    workload = Bulk { bytes = None };
  }

let default =
  {
    name = "scenario";
    seed = 1;
    duration = Sim.Time.sec 25;
    sample_period = Sim.Time.ms 250;
    record_series = true;
    record_trace = false;
    trace_capacity = 65536;
    domains = 1;
    topology = Duplex default_duplex;
    flows = [ default_flow ];
    faults = { forward = Fm.passthrough; reverse = Fm.passthrough };
  }

let workload_kinds =
  [ "bulk"; "chunked"; "cbr"; "on_off"; "short_flows"; "many_flows" ]

(* --- results ----------------------------------------------------------- *)

type flow_result = {
  label : string;
  goodput_mbps : float;
  utilization : float;
  send_stalls : int;
  congestion_signals : int;
  retransmits : int;
  timeouts : int;
  final_cwnd_segments : float;
  mean_ifq : float;
  peak_ifq : float;
  ce_marks : int;
  completion : Sim.Time.t option;
  time_to_90pct_util : float option;
  stalls_series : Sim.Stats.Series.t;
  cwnd_series : Sim.Stats.Series.t;
  ifq_series : Sim.Stats.Series.t;
  throughput_series : Sim.Stats.Series.t;
  srtt_series : Sim.Stats.Series.t;
}

type path_stats = {
  aggregate_goodput_mbps : float;
  jain_index : float;
  queue_mean : float;
  queue_peak : float;
  router_drops : int;
}

type metrics = {
  metric_names : string list;
  samples : (float * float array) list;
}

type outcome = {
  results : flow_result list;
  path : path_stats;
  trace : Trace.t option;
  metrics : metrics option;
  resume_from : string option;
      (* snapshot this run resumed from; never serialized, so resumed
         and unbroken runs emit byte-identical artifacts *)
}

(* --- validation -------------------------------------------------------- *)

let err fmt = Printf.ksprintf invalid_arg fmt

let check_positive_rate what r =
  if not (r > 0.) then
    err "Spec.build: %s %g must be positive" what (Sim.Units.rate_to_mbps r)

let check_delay what d =
  if Sim.Time.is_negative d then
    err "Spec.build: %s %gms must be non-negative" what (Sim.Time.to_ms d)

let pairs_of = function
  | Duplex _ -> 1
  | Dumbbell d -> d.pairs
  | Multi_dumbbell m -> (m.segments * m.m_pairs) + m.cross_pairs

let validate_flow ~pairs i f =
  if f.pair < 0 || f.pair >= pairs then
    err "Spec.build: flow %d: pair %d outside 0..%d" i f.pair (pairs - 1);
  if Sim.Time.is_negative f.start_at then
    err "Spec.build: flow %d: start time %gs must be non-negative" i
      (Sim.Time.to_sec f.start_at);
  (match Tcp.Slow_start.by_name ?restricted_config:f.restricted f.slow_start with
  | Ok _ -> ()
  | Error e -> err "Spec.build: flow %d: %s" i e);
  (match f.policy with
  | None -> ()
  | Some p -> (
      if f.shared_rss then
        err "Spec.build: flow %d: policy and shared_rss are mutually exclusive"
          i;
      match Tcp.Policy.by_name ?restricted_config:f.restricted p with
      | Ok _ -> ()
      | Error e -> err "Spec.build: flow %d: %s" i e));
  match f.workload with
  | Bulk { bytes = Some b } when b <= 0 ->
      err "Spec.build: flow %d: bytes %d must be positive" i b
  | Bulk _ -> ()
  | Chunked { chunk_bytes; interval; chunks } ->
      if chunk_bytes <= 0 then
        err "Spec.build: flow %d: chunk_bytes %d must be positive" i
          chunk_bytes;
      if Sim.Time.(interval <= Sim.Time.zero) then
        err "Spec.build: flow %d: chunk interval must be positive" i;
      (match chunks with
      | Some c when c <= 0 ->
          err "Spec.build: flow %d: chunks %d must be positive" i c
      | _ -> ())
  | Cbr { rate; packet_bytes; _ } ->
      check_positive_rate (Printf.sprintf "flow %d: cbr rate" i) rate;
      if packet_bytes <= 0 then
        err "Spec.build: flow %d: packet_bytes %d must be positive" i
          packet_bytes
  | On_off { peak_rate; mean_on; mean_off; packet_bytes } ->
      check_positive_rate (Printf.sprintf "flow %d: peak rate" i) peak_rate;
      if Sim.Time.(mean_on <= Sim.Time.zero)
         || Sim.Time.(mean_off <= Sim.Time.zero)
      then err "Spec.build: flow %d: on/off means must be positive" i;
      if packet_bytes <= 0 then
        err "Spec.build: flow %d: packet_bytes %d must be positive" i
          packet_bytes
  | Short_flows { arrival_rate; mean_size; pareto_shape; _ } ->
      if not (arrival_rate > 0.) then
        err "Spec.build: flow %d: arrival rate %g must be positive" i
          arrival_rate;
      if mean_size <= 0 then
        err "Spec.build: flow %d: mean size %d must be positive" i mean_size;
      if not (pareto_shape > 1.) then
        err "Spec.build: flow %d: pareto shape %g must exceed 1" i
          pareto_shape
  | Many_flows
      { flows; arrival_rate; arrival_pareto_shape; mean_size;
        size_pareto_shape } ->
      if flows <= 0 then
        err "Spec.build: flow %d: flows %d must be positive" i flows;
      (match arrival_rate with
      | Some r when not (r > 0.) ->
          err "Spec.build: flow %d: arrival rate %g must be positive" i r
      | _ -> ());
      (match arrival_pareto_shape with
      | Some s when not (s > 1.) ->
          err "Spec.build: flow %d: arrival pareto shape %g must exceed 1" i s
      | _ -> ());
      (match mean_size with
      | Some m when m <= 0 ->
          err "Spec.build: flow %d: mean size %d must be positive" i m
      | _ -> ());
      if mean_size <> None && not (size_pareto_shape > 1.) then
        err "Spec.build: flow %d: size pareto shape %g must exceed 1" i
          size_pareto_shape

let validate (t : t) =
  if t.flows = [] then err "Spec.build: at least one flow is required";
  if Sim.Time.(t.duration <= Sim.Time.zero) then
    err "Spec.build: duration %gs must be positive"
      (Sim.Time.to_sec t.duration);
  if Sim.Time.(t.sample_period <= Sim.Time.zero) then
    err "Spec.build: sample_period %gs must be positive"
      (Sim.Time.to_sec t.sample_period);
  (match t.topology with
  | Duplex d ->
      check_positive_rate "rate" d.rate;
      check_delay "one_way_delay" d.one_way_delay;
      if d.ifq_capacity < 1 then
        err "Spec.build: ifq_capacity %d must be >= 1" d.ifq_capacity;
      if not (d.loss_rate >= 0. && d.loss_rate <= 1.) then
        err "Spec.build: loss_rate %g must be within [0, 1]" d.loss_rate
  | Dumbbell d ->
      if d.pairs < 1 then err "Spec.build: pairs %d must be >= 1" d.pairs;
      check_positive_rate "access rate" d.access_rate;
      check_positive_rate "bottleneck rate" d.bottleneck_rate;
      check_delay "access_delay" d.access_delay;
      check_delay "bottleneck_delay" d.bottleneck_delay;
      if d.buffer_packets < 1 then
        err "Spec.build: buffer_packets %d must be >= 1" d.buffer_packets;
      if d.host_ifq_capacity < 1 then
        err "Spec.build: ifq_capacity %d must be >= 1" d.host_ifq_capacity
  | Multi_dumbbell m ->
      if m.segments < 1 then
        err "Spec.build: segments %d must be >= 1" m.segments;
      if m.m_pairs < 1 || m.m_pairs > 100 then
        err "Spec.build: pairs %d must be within 1..100" m.m_pairs;
      if m.cross_pairs < 0 || m.cross_pairs > m.segments - 1 then
        err "Spec.build: cross_pairs %d must be within 0..segments-1"
          m.cross_pairs;
      check_positive_rate "access rate" m.m_access_rate;
      check_positive_rate "bottleneck rate" m.m_bottleneck_rate;
      check_positive_rate "core rate" m.core_rate;
      check_delay "access_delay" m.m_access_delay;
      check_delay "bottleneck_delay" m.m_bottleneck_delay;
      check_delay "core_delay" m.core_delay;
      if m.m_buffer_packets < 1 then
        err "Spec.build: buffer_packets %d must be >= 1" m.m_buffer_packets;
      if m.m_host_ifq_capacity < 1 then
        err "Spec.build: ifq_capacity %d must be >= 1" m.m_host_ifq_capacity);
  if t.domains < 1 then err "Spec.build: domains %d must be >= 1" t.domains;
  (* Partitioned runs keep every piece of shared mutable state off the
     table: no global trace ring, no fault models straddling the cut,
     and no wheel-owning or receiver-spawning workloads. Everything
     else — and everything at [domains = 1] — is unrestricted. *)
  if t.domains > 1 then begin
    (match t.topology with
    | Duplex d ->
        if not (Sim.Time.is_positive d.one_way_delay) then
          err
            "Spec.build: domains > 1 needs one_way_delay > 0 (the \
             cross-partition lookahead)"
    | Dumbbell _ ->
        err
          "Spec.build: a dumbbell has no partition cut; use duplex or \
           dumbbell_of_dumbbells for domains > 1"
    | Multi_dumbbell m ->
        if m.segments < 2 then
          err
            "Spec.build: domains > 1 needs >= 2 segments (one partition \
             per segment)";
        if not (Sim.Time.is_positive m.core_delay) then
          err
            "Spec.build: domains > 1 needs core_delay > 0 (the \
             cross-partition lookahead)");
    if t.record_trace then
      err
        "Spec.build: record_trace is not supported with domains > 1 (the \
         event ring is one global order)";
    if
      t.faults.forward <> Fm.passthrough || t.faults.reverse <> Fm.passthrough
    then err "Spec.build: fault profiles are not supported with domains > 1";
    List.iteri
      (fun i f ->
        match f.workload with
        | Short_flows _ ->
            err
              "Spec.build: flow %d: short_flows is not supported with \
               domains > 1"
              i
        | Many_flows _ | Bulk _ | Chunked _ | Cbr _ | On_off _ -> ())
      t.flows
  end;
  List.iteri (validate_flow ~pairs:(pairs_of t.topology)) t.flows;
  (* One many_flows flow per spec: the sharded engine array, its
     aggregate collection and the checkpoint image all assume a single
     logical flow population. (Each shard owns its own timer wheel;
     schedulers carry any number of wheels.) *)
  let many =
    List.filter
      (fun f -> match f.workload with Many_flows _ -> true | _ -> false)
      t.flows
  in
  if List.length many > 1 then
    err "Spec.build: at most one many_flows flow per spec";
  (* The per-segment sub-populations are a function of the topology
     alone (so any domain count replays the identical shard layout);
     every shard needs at least one flow. *)
  (match (many, t.topology) with
  | [ { workload = Many_flows { flows; _ }; _ } ], Multi_dumbbell m
    when flows < m.segments ->
      err
        "Spec.build: many_flows needs flows >= segments (%d < %d): the \
         population is sharded into one sub-population per segment"
        flows m.segments
  | _ -> ())

(* --- compilation -------------------------------------------------------- *)

type net =
  | Net_duplex of Scenario.t
  | Net_duplex_split of Netsim.Topology.Duplex.t
      (* the duplex path rebuilt across two partition schedulers *)
  | Net_dumbbell of Netsim.Topology.Dumbbell.t
  | Net_multi of Netsim.Topology.Multi_dumbbell.t

type driver =
  | Bulk_driver of Workload.Bulk.t
  | Chunked_driver of Workload.Chunked.t
  | Cbr_driver of Workload.Cbr.t * int
  | On_off_driver of Workload.On_off.t * int
  | Short_driver of Workload.Short_flows.t
  | Many_driver of Workload.Many_flows.t array
      (* one engine per shard: per-segment sub-populations on a
         multi_dumbbell (shard k lives on partition k's scheduler when
         domains > 1), a single shard elsewhere. The shard layout is a
         function of the topology alone, never of [domains]. *)

type built_flow = {
  fspec : flow;
  index : int;
  flabel : string;
  src : Netsim.Host.t;
  dst : Netsim.Host.t;
  fsrc_part : int;  (* partition owning src (0 on single-domain runs) *)
  fdst_part : int;  (* partition owning dst *)
  mutable driver : driver option;
}

(* The partitioned engine state a [domains > 1] build carries: the
   synchronizer, the worker count to run it with, and the delayed flow
   starts — which become coordinator breaks rather than heap timers, so
   a flow's first packet is injected with every partition clock sitting
   exactly at its start time. *)
type partitioned = {
  psync : Sim.Partition.t;
  pworkers : int;
  mutable pstarts : (Sim.Time.t * built_flow) list; (* flow order *)
}

type built = {
  bspec : t;
  bsched : Sim.Scheduler.t;
  net : net;
  pids : Netsim.Packet.Id_source.source array;
      (* packet-id source per partition; [|ids|] on single-domain runs.
         Ids only label packets (no behavioral consumer), so disjoint
         per-partition counters keep allocation data-race-free without
         perturbing anything observable. *)
  fwd_fault : Fm.t option;
  rev_fault : Fm.t option;
  bflows : built_flow list;
  shared : (int, Tcp.Shared_rss.t) Hashtbl.t;
  line_mbps : float;
  btrace : Trace.t option;
  parts : partitioned option;
}

let sched b = b.bsched
let trace b = b.btrace

let pair_hosts net pair =
  match net with
  | Net_duplex s -> (Scenario.sender_host s, Scenario.receiver_host s)
  | Net_duplex_split d ->
      (d.Netsim.Topology.Duplex.a, d.Netsim.Topology.Duplex.b)
  | Net_dumbbell d ->
      ( d.Netsim.Topology.Dumbbell.left.(pair),
        d.Netsim.Topology.Dumbbell.right.(pair) )
  | Net_multi md ->
      (* Pairs 0..segments*pairs-1 stay inside their segment (segment
         s, local pair i at pair = s*pairs + i); the cross_pairs after
         them run left host 0 of segment c to right host 0 of segment
         c+1 across the core. *)
      let segs = md.Netsim.Topology.Multi_dumbbell.segments in
      let per = Array.length segs.(0).Netsim.Topology.Multi_dumbbell.left in
      let base = Array.length segs * per in
      if pair < base then
        ( segs.(pair / per).Netsim.Topology.Multi_dumbbell.left.(pair mod per),
          segs.(pair / per).Netsim.Topology.Multi_dumbbell.right.(pair mod per)
        )
      else
        let c = pair - base in
        ( segs.(c).Netsim.Topology.Multi_dumbbell.left.(0),
          segs.(c + 1).Netsim.Topology.Multi_dumbbell.right.(0) )

(* Partition indices of a pair's (src, dst) hosts under the fixed
   topology-determined cut. (0, 0) on single-domain runs. *)
let pair_parts spec pair =
  if spec.domains <= 1 then (0, 0)
  else
    match spec.topology with
    | Duplex _ -> (0, 1)
    | Dumbbell _ -> (0, 0) (* unreachable: rejected by validate *)
    | Multi_dumbbell m ->
        let base = m.segments * m.m_pairs in
        if pair < base then (pair / m.m_pairs, pair / m.m_pairs)
        else
          let c = pair - base in
          (c, c + 1)

let src_host b ~pair = fst (pair_hosts b.net pair)
let dst_host b ~pair = snd (pair_hosts b.net pair)

let forward_link b =
  match b.net with
  | Net_duplex s -> Scenario.forward_link s
  | Net_duplex_split d -> d.Netsim.Topology.Duplex.a_to_b
  | Net_dumbbell d -> d.Netsim.Topology.Dumbbell.bottleneck_lr
  | Net_multi md ->
      md.Netsim.Topology.Multi_dumbbell.segments.(0)
        .Netsim.Topology.Multi_dumbbell.bottleneck_lr

let reverse_link b =
  match b.net with
  | Net_duplex s -> Scenario.reverse_link s
  | Net_duplex_split d -> d.Netsim.Topology.Duplex.b_to_a
  | Net_dumbbell d -> d.Netsim.Topology.Dumbbell.bottleneck_rl
  | Net_multi md ->
      md.Netsim.Topology.Multi_dumbbell.segments.(0)
        .Netsim.Topology.Multi_dumbbell.bottleneck_rl

let fault_models b = (b.fwd_fault, b.rev_fault)

let tcp_senders b =
  List.filter_map
    (fun bf ->
      match bf.driver with
      | Some (Bulk_driver t) -> Some (Workload.Bulk.sender t)
      | Some (Chunked_driver t) -> Some (Workload.Chunked.sender t)
      | _ -> None)
    b.bflows

let many_flows_engines b =
  List.concat_map
    (fun bf ->
      match bf.driver with
      | Some (Many_driver shards) -> Array.to_list shards
      | _ -> [])
    b.bflows

let config_of_flow ?pace_gains (f : flow) =
  let pace_ss_gain, pace_ca_gain =
    match pace_gains with
    | Some gains -> gains
    | None ->
        ( Tcp.Config.default.Tcp.Config.pace_ss_gain,
          Tcp.Config.default.Tcp.Config.pace_ca_gain )
  in
  {
    Tcp.Config.default with
    Tcp.Config.local_congestion = f.local_congestion;
    pace_ss_gain;
    pace_ca_gain;
    delayed_ack = f.delayed_ack;
    use_sack = f.use_sack;
    pacing = f.pacing;
    slow_start_restart = f.slow_start_restart;
    max_rto =
      (match f.max_rto with
      | Some rto -> rto
      | None -> Tcp.Config.default.Tcp.Config.max_rto);
  }

let resolve_cong_avoid = function
  | Reno -> Tcp.Cong_avoid.reno ()
  | Cubic -> Tcp.Cong_avoid.cubic ()
  | Vegas -> Tcp.Cong_avoid.vegas ()

let resolve_policy (f : flow) =
  match Tcp.Slow_start.by_name ?restricted_config:f.restricted f.slow_start with
  | Ok ss -> ss
  | Error e -> invalid_arg e

(* One shared controller per sending host, created when the first
   shared flow on that host starts (so its sampling clock begins before
   any member connection exists, matching the legacy E11 assembly). *)
let controller_for b bf =
  let key = Netsim.Host.id bf.src in
  match Hashtbl.find_opt b.shared key with
  | Some c -> c
  | None ->
      (* The controller samples the sending host's IFQ, so it lives on
         that host's scheduler — the build scheduler on single-domain
         runs, the owning partition's otherwise. *)
      let c =
        Tcp.Shared_rss.create
          (Netsim.Host.scheduler bf.src)
          ~ifq:(Netsim.Host.ifq bf.src)
          ?config:bf.fspec.restricted ()
      in
      Hashtbl.add b.shared key c;
      c

let policy_for b bf =
  if bf.fspec.shared_rss then Tcp.Shared_rss.policy (controller_for b bf)
  else resolve_policy bf.fspec

(* (slow_start, cong_avoid, pacing hints) for one connection. A [policy]
   name resolves through the registry as a fresh bundle; without one the
   legacy slow_start/cong_avoid fields are resolved exactly as before,
   keeping pre-policy specs byte-identical. *)
let bundle_for b bf =
  match bf.fspec.policy with
  | Some name -> (
      match
        Tcp.Policy.by_name ?restricted_config:bf.fspec.restricted name
      with
      | Ok p ->
          (p.Tcp.Policy.slow_start, p.Tcp.Policy.cong_avoid,
           p.Tcp.Policy.pace_gains)
      | Error e -> invalid_arg e)
  | None -> (policy_for b bf, resolve_cong_avoid bf.fspec.cong_avoid, None)

(* Derived RNG stream for stochastic workloads (on_off, short_flows);
   offset keeps flow streams clear of the chaos fault streams 0xFA1/2
   and the small indices sweeps use for their cells. *)
let flow_rng b index =
  Sim.Rng.of_seed
    (Sim.Rng.derive_seed ~root:b.bspec.seed ~stream:(0x5F10 + index))

let start_flow b bf =
  let f = bf.fspec in
  let flow_id = bf.index + 1 in
  let ids = b.pids.(bf.fsrc_part) in
  let rx_ids = b.pids.(bf.fdst_part) in
  let driver =
    match f.workload with
    | Bulk { bytes } ->
        let ss, cc, pace_gains = bundle_for b bf in
        Bulk_driver
          (Workload.Bulk.start ~src:bf.src ~dst:bf.dst ~flow:flow_id
             ~ids ~rx_ids ~config:(config_of_flow ?pace_gains f)
             ~slow_start:ss ~cong_avoid:cc ?bytes ~name:bf.flabel ())
    | Chunked { chunk_bytes; interval; chunks } ->
        let ss, cc, pace_gains = bundle_for b bf in
        Chunked_driver
          (Workload.Chunked.start ~src:bf.src ~dst:bf.dst ~flow:flow_id
             ~ids ~rx_ids ~chunk_bytes ~interval ?chunks
             ~config:(config_of_flow ?pace_gains f)
             ~slow_start:ss ~cong_avoid:cc ~name:bf.flabel ())
    | Cbr { rate; packet_bytes; stop_at } ->
        Cbr_driver
          ( Workload.Cbr.start ~host:bf.src ~dst:(Netsim.Host.id bf.dst)
              ~flow:flow_id ~ids ~rate ~packet_bytes ?stop_at (),
            packet_bytes )
    | On_off { peak_rate; mean_on; mean_off; packet_bytes } ->
        On_off_driver
          ( Workload.On_off.start ~host:bf.src ~dst:(Netsim.Host.id bf.dst)
              ~flow:flow_id ~ids ~rng:(flow_rng b bf.index) ~peak_rate
              ~mean_on ~mean_off ~packet_bytes (),
            packet_bytes )
    | Short_flows { arrival_rate; mean_size; pareto_shape; stop_at } ->
        (* Each mouse gets a fresh slow-start instance; the bundle's
           congestion avoidance stays at the driver's internal default
           (mice rarely leave slow-start). *)
        let _, _, pace_gains = bundle_for b bf in
        Short_driver
          (Workload.Short_flows.start ~src:bf.src ~dst:bf.dst ~ids
             ~rng:(flow_rng b bf.index) ~arrival_rate ~mean_size ~pareto_shape
             ~first_flow:(10_000 + (1_000 * bf.index))
             ~config:(config_of_flow ?pace_gains f)
             ~slow_start:(fun () ->
               let ss, _, _ = bundle_for b bf in
               ss)
             ?stop_at ())
    | Many_flows
        { flows; arrival_rate; arrival_pareto_shape; mean_size;
          size_pareto_shape } ->
        (* The fluid engine models the bottleneck itself, derived from
           the spec topology: a duplex path's egress IFQ, or a
           dumbbell's bottleneck buffer. The slow-start phase is the
           classic doubling round, so only the bundle's congestion
           avoidance applies. *)
        let capacity_bytes_per_sec, base_rtt, buffer_packets, red =
          match b.bspec.topology with
          | Duplex d ->
              ( d.rate /. 8.,
                Sim.Time.mul_int d.one_way_delay 2,
                d.ifq_capacity,
                d.ifq_red_ecn )
          | Dumbbell d ->
              ( d.bottleneck_rate /. 8.,
                Sim.Time.mul_int
                  (Sim.Time.add
                     (Sim.Time.mul_int d.access_delay 2)
                     d.bottleneck_delay)
                  2,
                d.buffer_packets,
                d.red )
          | Multi_dumbbell m ->
              (* Each shard abstracts its own segment's bottleneck. *)
              ( m.m_bottleneck_rate /. 8.,
                Sim.Time.mul_int
                  (Sim.Time.add
                     (Sim.Time.mul_int m.m_access_delay 2)
                     m.m_bottleneck_delay)
                  2,
                m.m_buffer_packets,
                m.m_red )
        in
        (* One sub-population per segment on a multi_dumbbell, a single
           shard elsewhere — a topology-only decision, so every domain
           count builds the identical shard layout. Flows and arrival
           rate split evenly (thinned Poisson arrivals stay Poisson);
           the remainder lands on the low shards. *)
        let shards =
          match b.bspec.topology with
          | Multi_dumbbell m -> m.segments
          | Duplex _ | Dumbbell _ -> 1
        in
        let sched_of k =
          match b.parts with
          | Some p -> Sim.Partition.scheduler p.psync k
          | None -> b.bsched
        in
        Many_driver
          (Array.init shards (fun k ->
               (* Shard 0 keeps the legacy seed and arrivals stream, so
                  single-shard topologies replay PR 7 runs byte-for-
                  byte. Sibling shards derive their engine seed (rooting
                  the per-row loss streams) and arrivals stream from
                  dedicated ranges clear of every reserved stream id
                  (0x5F10+i flows, 0xFA1/2 faults, 0x9A40+i partitions,
                  0x6D0000+idx per-row losses). *)
               let seed, rng =
                 if k = 0 then (b.bspec.seed, flow_rng b bf.index)
                 else
                   ( Sim.Rng.derive_seed ~root:b.bspec.seed
                       ~stream:(0x6E0000 + (bf.index * 0x100) + k),
                     Sim.Rng.of_seed
                       (Sim.Rng.derive_seed ~root:b.bspec.seed
                          ~stream:(0x6F0000 + (bf.index * 0x100) + k)) )
               in
               let _, cc, _ = bundle_for b bf in
               Workload.Many_flows.start ~sched:(sched_of k) ~rng ~seed
                 ~cong_avoid:cc
                 {
                   Workload.Many_flows.default_params with
                   Workload.Many_flows.flows =
                     (flows / shards)
                     + (if k < flows mod shards then 1 else 0);
                   arrival_rate =
                     Option.map
                       (fun r -> r /. float_of_int shards)
                       arrival_rate;
                   arrival_pareto_shape;
                   mean_size;
                   size_pareto_shape;
                   capacity_bytes_per_sec;
                   base_rtt;
                   buffer_packets;
                   red;
                 }))
  in
  bf.driver <- Some driver;
  (* Single-connection TCP drivers get the run tracer; Short_flows mice
     churn through internal senders and stay untraced (their aggregate
     behaviour shows up in the link/IFQ records). *)
  match b.btrace with
  | None -> ()
  | Some tr -> (
      match driver with
      | Bulk_driver t -> Tcp.Sender.set_tracer (Workload.Bulk.sender t) (Some tr)
      | Chunked_driver t ->
          Tcp.Sender.set_tracer (Workload.Chunked.sender t) (Some tr)
      | Cbr_driver _ | On_off_driver _ | Short_driver _ | Many_driver _ -> ())

let default_label spec i (f : flow) =
  let base =
    match f.policy with Some p -> p | None -> f.slow_start
  in
  match f.label with
  | Some l -> l
  | None ->
      if List.length spec.flows <= 1 then base
      else Printf.sprintf "%s-%d" base i

let build spec =
  validate spec;
  (* The partition structure is a function of the topology alone —
     [domains] only caps how many worker domains execute it, so any
     [domains > 1] run of the same spec replays the identical partition
     build (and therefore the identical trajectory). *)
  let nparts =
    if spec.domains <= 1 then 1
    else
      match spec.topology with
      | Duplex _ -> 2
      | Dumbbell _ -> 1 (* unreachable: rejected by validate *)
      | Multi_dumbbell m -> m.segments
  in
  (* Partition 0 always carries the spec seed, so every stream derived
     from it (the duplex loss stream, derived workload streams) lands on
     the values the single-scheduler build draws; sibling partitions get
     independent derived seeds that nothing in the allowed spec shapes
     consumes. *)
  let psync =
    if nparts = 1 then None
    else
      Some
        (Sim.Partition.create ~parts:nparts ~seed_of:(fun i ->
             if i = 0 then spec.seed
             else Sim.Rng.derive_seed ~root:spec.seed ~stream:(0x9A40 + i)))
  in
  let net, cut =
    match (spec.topology, psync) with
    | Duplex d, None ->
        ( Net_duplex
            (Scenario.anl_lbnl ~seed:spec.seed ~rate:d.rate
               ~one_way_delay:d.one_way_delay ~ifq_capacity:d.ifq_capacity
               ~loss_rate:d.loss_rate ?ifq_red_ecn:d.ifq_red_ecn ()),
          Netsim.Topology.Cut.single )
    | Duplex d, Some p ->
        let path, cut =
          Netsim.Topology.Duplex.create_split
            (Sim.Partition.scheduler p 0)
            (Sim.Partition.scheduler p 1)
            ~rate:d.rate ~one_way_delay:d.one_way_delay
            ~ifq_capacity:d.ifq_capacity ~loss_rate:d.loss_rate
            ?ifq_red_ecn:d.ifq_red_ecn ()
        in
        (Net_duplex_split path, cut)
    | Dumbbell d, _ ->
        let sched = Sim.Scheduler.create ~seed:spec.seed () in
        ( Net_dumbbell
            (Netsim.Topology.Dumbbell.create sched ~pairs:d.pairs
               ~access_rate:d.access_rate ~access_delay:d.access_delay
               ~bottleneck_rate:d.bottleneck_rate
               ~bottleneck_delay:d.bottleneck_delay
               ~buffer_packets:d.buffer_packets
               ~ifq_capacity:d.host_ifq_capacity ?red:d.red ()),
          Netsim.Topology.Cut.single )
    | Multi_dumbbell m, _ ->
        let sched_of =
          match psync with
          | Some p -> Sim.Partition.scheduler p
          | None ->
              let sched = Sim.Scheduler.create ~seed:spec.seed () in
              fun _ -> sched
        in
        let md =
          Netsim.Topology.Multi_dumbbell.create ~sched_of
            ~segments:m.segments ~pairs:m.m_pairs
            ~access_rate:m.m_access_rate ~access_delay:m.m_access_delay
            ~bottleneck_rate:m.m_bottleneck_rate
            ~bottleneck_delay:m.m_bottleneck_delay ~core_rate:m.core_rate
            ~core_delay:m.core_delay ~buffer_packets:m.m_buffer_packets
            ~ifq_capacity:m.m_host_ifq_capacity ?red:m.m_red
            ~cross_pairs:m.cross_pairs ()
        in
        ( Net_multi md,
          match psync with
          | Some _ -> md.Netsim.Topology.Multi_dumbbell.cut
          | None -> Netsim.Topology.Cut.single )
  in
  let bsched =
    match psync with
    | Some p -> Sim.Partition.scheduler p 0
    | None -> (
        match net with
        | Net_duplex s -> s.Scenario.sched
        | Net_duplex_split _ ->
            err
              "Spec.build: a split duplex path was assembled without a \
               partition synchronizer — split topologies exist only under \
               domains > 1"
        | Net_dumbbell d ->
            Netsim.Host.scheduler d.Netsim.Topology.Dumbbell.left.(0)
        | Net_multi md ->
            Netsim.Host.scheduler
              md.Netsim.Topology.Multi_dumbbell.segments.(0)
                .Netsim.Topology.Multi_dumbbell.left.(0))
  in
  let pids =
    match net with
    | Net_duplex s -> [| s.Scenario.ids |]
    | Net_duplex_split _ | Net_dumbbell _ | Net_multi _ ->
        Array.init nparts (fun _ -> Netsim.Packet.Id_source.create ())
  in
  (* Rewire each boundary link of the cut as a channel endpoint: the
     transmit side hands finished packets to the channel (due = now +
     propagation delay, the channel's lookahead), and the destination
     partition replays delivery — sink dispatch, delivered counter — at
     [due] on its own scheduler. *)
  (match psync with
  | None -> ()
  | Some p ->
      List.iter
        (fun (bd : Netsim.Topology.Cut.boundary) ->
          let link = bd.Netsim.Topology.Cut.link in
          let ch =
            Sim.Partition.channel p ~src:bd.Netsim.Topology.Cut.src
              ~dst:bd.Netsim.Topology.Cut.dst
              ~lookahead:(Netsim.Topology.Cut.lookahead bd)
              ~handler:(fun _due pkt -> Netsim.Link.remote_deliver link pkt)
          in
          Netsim.Link.set_remote link (fun ~due pkt ->
              Sim.Partition.Channel.send ch ~due pkt))
        cut.Netsim.Topology.Cut.boundaries);
  (* A passthrough profile gets no model: an installed passthrough hook
     is behaviourally identical to none (no RNG draws, zero extra
     delay), so skipping keeps unfaulted specs byte-identical to the
     legacy assemblies while sparing the hook dispatch. *)
  let make_fault ~stream profile link =
    if profile = Fm.passthrough then None
    else begin
      let m =
        Fm.create
          ~rng:
            (Sim.Rng.of_seed
               (Sim.Rng.derive_seed ~root:spec.seed ~stream))
          profile
      in
      Fm.install m link;
      Some m
    end
  in
  let line_mbps =
    match spec.topology with
    | Duplex d -> Sim.Units.rate_to_mbps d.rate
    | Dumbbell d -> Sim.Units.rate_to_mbps d.bottleneck_rate
    | Multi_dumbbell m -> Sim.Units.rate_to_mbps m.m_bottleneck_rate
  in
  let btrace =
    if spec.record_trace then
      Some (Trace.create ~capacity:spec.trace_capacity ())
    else None
  in
  let parts =
    Option.map
      (fun p -> { psync = p; pworkers = spec.domains; pstarts = [] })
      psync
  in
  let b0 =
    {
      bspec = spec;
      bsched;
      net;
      pids;
      fwd_fault = None;
      rev_fault = None;
      bflows = [];
      shared = Hashtbl.create 4;
      line_mbps;
      btrace;
      parts;
    }
  in
  (* Streams 0xFA1/0xFA2: the chaos harness's historical fault streams,
     preserved so serialized chaos artifacts replay byte-identically. *)
  let fwd_fault = make_fault ~stream:0xFA1 spec.faults.forward (forward_link b0) in
  let rev_fault = make_fault ~stream:0xFA2 spec.faults.reverse (reverse_link b0) in
  let bflows =
    List.mapi
      (fun i f ->
        let src, dst = pair_hosts net f.pair in
        let fsrc_part, fdst_part = pair_parts spec f.pair in
        {
          fspec = f;
          index = i;
          flabel = default_label spec i f;
          src;
          dst;
          fsrc_part;
          fdst_part;
          driver = None;
        })
      spec.flows
  in
  let b = { b0 with fwd_fault; rev_fault; bflows } in
  (* Trace source ids: 1/2 for the forward/reverse pipe, host ids for
     IFQ and NIC records, flow ids for sender records. Installing the
     tracer draws no randomness and schedules nothing, so a traced run
     performs exactly the model transitions of an untraced one. *)
  (match btrace with
  | None -> ()
  | Some _ ->
      Sim.Scheduler.set_tracer bsched btrace;
      Netsim.Link.set_tracer (forward_link b) ~src:1 btrace;
      Netsim.Link.set_tracer (reverse_link b) ~src:2 btrace;
      for pair = 0 to pairs_of spec.topology - 1 do
        let src, dst = pair_hosts net pair in
        List.iter
          (fun host ->
            let id = Netsim.Host.id host in
            Netsim.Ifq.set_tracer (Netsim.Host.ifq host) ~src:id btrace;
            Netsim.Nic.set_tracer (Netsim.Host.nic host) ~src:id btrace)
          [ src; dst ]
      done);
  List.iter
    (fun bf ->
      if Sim.Time.compare bf.fspec.start_at Sim.Time.zero = 0 then
        start_flow b bf
      else
        match b.parts with
        | None ->
            ignore
              (Sim.Scheduler.at b.bsched bf.fspec.start_at (fun () ->
                   start_flow b bf))
        | Some p ->
            (* Delayed starts become coordinator breaks: the flow is
               injected with every partition quiesced at its start time
               rather than from one partition's heap. *)
            p.pstarts <- p.pstarts @ [ (bf.fspec.start_at, bf) ])
    bflows;
  b

(* --- execution ---------------------------------------------------------- *)

let mss_f = float_of_int Tcp.Config.default.Tcp.Config.mss

type instrument = {
  ibf : built_flow;
  stalls_s : Sim.Stats.Series.t;
  cwnd_s : Sim.Stats.Series.t;
  ifq_s : Sim.Stats.Series.t;
  throughput_s : Sim.Stats.Series.t;
  srtt_s : Sim.Stats.Series.t;
  mutable last_bytes : int;
}

let empty_instrument bf =
  {
    ibf = bf;
    stalls_s = Sim.Stats.Series.create ~name:"send_stalls" ();
    cwnd_s = Sim.Stats.Series.create ~name:"cwnd_segments" ();
    ifq_s = Sim.Stats.Series.create ~name:"ifq_packets" ();
    throughput_s = Sim.Stats.Series.create ~name:"throughput_mbps" ();
    srtt_s = Sim.Stats.Series.create ~name:"srtt_ms" ();
    last_bytes = 0;
  }

let sender_receiver bf =
  match bf.driver with
  | Some (Bulk_driver t) ->
      Some (Workload.Bulk.sender t, Workload.Bulk.receiver t)
  | Some (Chunked_driver t) ->
      Some (Workload.Chunked.sender t, Workload.Chunked.receiver t)
  | _ -> None

(* Aggregates over a sharded many-flows engine array: sums for counters
   and delivered bytes, an active-weighted mean for the window, and the
   arithmetic mean across shards for the per-segment fluid queues (each
   shard models its own segment's bottleneck, so "the" queue reading is
   the typical segment's). A single shard degenerates to the engine's
   own values exactly. *)
let mf_sum f shards = Array.fold_left (fun acc e -> acc +. f e) 0. shards

let mf_mean f shards =
  if Array.length shards = 0 then 0.
  else mf_sum f shards /. float_of_int (Array.length shards)

let mf_mean_cwnd shards =
  let active =
    Array.fold_left (fun a e -> a + Workload.Many_flows.active e) 0 shards
  in
  if active = 0 then 0.
  else
    Array.fold_left
      (fun acc e ->
        acc
        +. Workload.Many_flows.mean_cwnd_segments e
           *. float_of_int (Workload.Many_flows.active e))
      0. shards
    /. float_of_int active

(* [now] is the sampling instant: the build scheduler's clock on
   single-domain runs, the (identical) barrier time on partitioned ones
   — where reading one partition's clock for a flow living on another
   would be ill-defined mid-epoch. *)
let sample_instrument b ~now inst =
  match inst.ibf.driver with
  | Some (Many_driver shards) ->
      (* Aggregate gauges of the fluid engine: mean window, fluid
         backlog, and goodput over the sample window. *)
      Sim.Stats.Series.add inst.cwnd_s now (mf_mean_cwnd shards);
      Sim.Stats.Series.add inst.ifq_s now
        (mf_mean Workload.Many_flows.queue_packets shards);
      let bytes =
        int_of_float (mf_sum Workload.Many_flows.delivered_bytes shards)
      in
      let window_mbps =
        float_of_int (8 * (bytes - inst.last_bytes))
        /. Sim.Time.to_sec b.bspec.sample_period /. 1e6
      in
      inst.last_bytes <- bytes;
      Sim.Stats.Series.add inst.throughput_s now window_mbps
  | _ -> (
      match sender_receiver inst.ibf with
      | None -> ()
      | Some (sender, receiver) ->
      Sim.Stats.Series.add inst.stalls_s now
        (float_of_int (Tcp.Sender.send_stalls sender));
      Sim.Stats.Series.add inst.cwnd_s now (Tcp.Sender.cwnd sender /. mss_f);
      Sim.Stats.Series.add inst.ifq_s now
        (float_of_int (Netsim.Ifq.occupancy (Netsim.Host.ifq inst.ibf.src)));
      let bytes = Tcp.Receiver.bytes_received receiver in
      let window_mbps =
        float_of_int (8 * (bytes - inst.last_bytes))
        /. Sim.Time.to_sec b.bspec.sample_period /. 1e6
      in
      inst.last_bytes <- bytes;
      Sim.Stats.Series.add inst.throughput_s now window_mbps;
      (match Tcp.Sender.srtt sender with
          | Some s -> Sim.Stats.Series.add inst.srtt_s now (Sim.Time.to_ms s)
          | None -> ()))

let is_tcp_workload = function
  | Bulk _ | Chunked _ -> true
  | Cbr _ | On_off _ | Short_flows _ | Many_flows _ -> false

(* Flows whose series and goodput report TCP dynamics: the
   single-connection drivers plus the aggregate many-flows engine. The
   latter stays out of {!is_tcp_workload} so the unified registry only
   registers web100 variables for connections that actually carry a
   kernel instrument set. *)
let tcp_series_workload = function
  | Bulk _ | Chunked _ | Many_flows _ -> true
  | Cbr _ | On_off _ | Short_flows _ -> false

let time_to_90pct line_mbps throughput_s =
  let times = Sim.Stats.Series.times throughput_s in
  let values = Sim.Stats.Series.values throughput_s in
  let rec search i =
    if i >= Array.length values then None
    else if values.(i) >= 0.9 *. line_mbps then Some (Sim.Time.to_sec times.(i))
    else search (i + 1)
  in
  search 0

let collect_flow b inst =
  let bf = inst.ibf in
  let duration = b.bspec.duration in
  let ifq = Netsim.Host.ifq bf.src in
  let zero =
    {
      label = bf.flabel;
      goodput_mbps = 0.;
      utilization = 0.;
      send_stalls = 0;
      congestion_signals = 0;
      retransmits = 0;
      timeouts = 0;
      final_cwnd_segments = 0.;
      mean_ifq = Netsim.Ifq.mean_occupancy ifq;
      peak_ifq = Netsim.Ifq.peak_occupancy ifq;
      ce_marks = 0;
      completion = None;
      time_to_90pct_util = None;
      stalls_series = inst.stalls_s;
      cwnd_series = inst.cwnd_s;
      ifq_series = inst.ifq_s;
      throughput_series = inst.throughput_s;
      srtt_series = inst.srtt_s;
    }
  in
  let udp_goodput packets packet_bytes =
    float_of_int (8 * packets * packet_bytes) /. Sim.Time.to_sec duration /. 1e6
  in
  match bf.driver with
  | None -> zero
  | Some (Bulk_driver _ | Chunked_driver _) ->
      let sender, receiver, completion =
        match bf.driver with
        | Some (Bulk_driver t) ->
            ( Workload.Bulk.sender t,
              Workload.Bulk.receiver t,
              Workload.Bulk.completion_time t )
        | Some (Chunked_driver t) ->
            (Workload.Chunked.sender t, Workload.Chunked.receiver t, None)
        | d ->
            err
              "Spec: flow %S: collecting TCP results from a %s driver — \
               the driver no longer matches its declared workload"
              bf.flabel
              (match d with
              | None -> "missing"
              | Some (Cbr_driver _) -> "cbr"
              | Some (On_off_driver _) -> "on_off"
              | Some (Short_driver _) -> "short_flows"
              | Some (Many_driver _) -> "many_flows"
              | Some (Bulk_driver _ | Chunked_driver _) -> "tcp")
      in
      let goodput = Tcp.Receiver.goodput_mbps receiver ~at:duration in
      {
        zero with
        goodput_mbps = goodput;
        utilization = goodput /. b.line_mbps;
        send_stalls = Tcp.Sender.send_stalls sender;
        congestion_signals = Tcp.Sender.congestion_signals sender;
        retransmits = Tcp.Sender.retransmits sender;
        timeouts = Tcp.Sender.timeouts sender;
        final_cwnd_segments = Tcp.Sender.cwnd sender /. mss_f;
        ce_marks = Tcp.Receiver.ce_marks_seen receiver;
        completion;
        time_to_90pct_util = time_to_90pct b.line_mbps inst.throughput_s;
      }
  | Some (Cbr_driver (t, packet_bytes)) ->
      let goodput = udp_goodput (Workload.Cbr.packets_sent t) packet_bytes in
      {
        zero with
        goodput_mbps = goodput;
        utilization = goodput /. b.line_mbps;
        send_stalls = Workload.Cbr.packets_stalled t;
      }
  | Some (On_off_driver (t, packet_bytes)) ->
      let goodput =
        udp_goodput (Workload.On_off.packets_sent t) packet_bytes
      in
      { zero with goodput_mbps = goodput; utilization = goodput /. b.line_mbps }
  | Some (Short_driver t) ->
      let bytes =
        List.fold_left
          (fun acc (c : Workload.Short_flows.completed) -> acc + c.size)
          0
          (Workload.Short_flows.completions t)
      in
      let goodput =
        float_of_int (8 * bytes) /. Sim.Time.to_sec duration /. 1e6
      in
      { zero with goodput_mbps = goodput; utilization = goodput /. b.line_mbps }
  | Some (Many_driver shards) ->
      let goodput =
        mf_sum (fun e -> Workload.Many_flows.goodput_mbps e ~duration) shards
      in
      {
        zero with
        goodput_mbps = goodput;
        (* Aggregate goodput over aggregate capacity: the shards sum
           over one bottleneck per segment. *)
        utilization =
          goodput /. (b.line_mbps *. float_of_int (Array.length shards));
        congestion_signals =
          Array.fold_left
            (fun a e -> a + Workload.Many_flows.loss_events e)
            0 shards;
        final_cwnd_segments = mf_mean_cwnd shards;
        (* The engines' fluid backlog, not the host IFQ (which the
           abstract flows never traverse); the mean across the
           per-segment shards. *)
        mean_ifq = mf_mean Workload.Many_flows.avg_queue_packets shards;
        peak_ifq = mf_mean Workload.Many_flows.queue_packets shards;
      }

(* One namespace over everything the run can report, in a fixed order:
   web100 per-connection variables (conn/<label>/<Var>, flow order),
   then pipe counters (link/<dir>/<what>), then per-host soft-component
   gauges (host/<id>/<what>, pair order). Registration rejects
   duplicates, so two flows sharing a label fail loudly instead of
   silently misaligning every exported column after them. *)
let build_registry b =
  let reg = Trace.Registry.create () in
  List.iter
    (fun bf ->
      if is_tcp_workload bf.fspec.workload then
        List.iter
          (fun var ->
            (* The sender may not exist yet (start_at timer pending);
               probes resolve it at sampling time and read 0 until. *)
            Trace.Registry.register reg
              ~name:(Printf.sprintf "conn/%s/%s" bf.flabel var)
              (fun () ->
                match sender_receiver bf with
                | Some (sender, _) ->
                    Option.value ~default:0.
                      (Web100.Group.read (Tcp.Sender.stats sender) var)
                | None -> 0.))
          Web100.Kis.all)
    b.bflows;
  let link_metrics dir link =
    List.iter
      (fun (what, probe) ->
        Trace.Registry.register reg
          ~name:(Printf.sprintf "link/%s/%s" dir what)
          probe)
      [
        ("delivered", fun () -> float_of_int (Netsim.Link.delivered link));
        ("lost", fun () -> float_of_int (Netsim.Link.lost link));
        ("duplicated", fun () -> float_of_int (Netsim.Link.duplicated link));
        ("in_flight", fun () -> float_of_int (Netsim.Link.in_flight link));
      ]
  in
  link_metrics "forward" (forward_link b);
  link_metrics "reverse" (reverse_link b);
  (* Cross-segment pairs reuse hosts that already appeared under their
     own segment pair, so register each host once (first occurrence). *)
  let seen_hosts = Hashtbl.create 16 in
  for pair = 0 to pairs_of b.bspec.topology - 1 do
    let src, dst = pair_hosts b.net pair in
    List.iter
      (fun host ->
        let id = Netsim.Host.id host in
        if not (Hashtbl.mem seen_hosts id) then begin
        Hashtbl.add seen_hosts id ();
        let ifq = Netsim.Host.ifq host in
        let nic = Netsim.Host.nic host in
        List.iter
          (fun (what, probe) ->
            Trace.Registry.register reg
              ~name:(Printf.sprintf "host/%d/%s" id what)
              probe)
          [
            ("ifq_occupancy", fun () -> float_of_int (Netsim.Ifq.occupancy ifq));
            ("ifq_stalls", fun () -> float_of_int (Netsim.Ifq.stalls ifq));
            ("nic_tx_packets", fun () -> float_of_int (Netsim.Nic.tx_packets nic));
            ("nic_tx_bytes", fun () -> float_of_int (Netsim.Nic.tx_bytes nic));
          ]
        end)
      [ src; dst ]
  done;
  reg

let jain = function
  | [] -> 1.
  | xs ->
      let n = float_of_int (List.length xs) in
      let s = List.fold_left ( +. ) 0. xs in
      let s2 = List.fold_left (fun acc x -> acc +. (x *. x)) 0. xs in
      if s2 <= 0. then 1. else s *. s /. (n *. s2)

(* --- checkpoint / resume ------------------------------------------------ *)

type checkpoint = {
  snapshot_path : string;
  interval : Sim.Time.t; (* simulated time between snapshots *)
  should_stop : unit -> bool; (* polled after each snapshot *)
}

exception Drained of { at : Sim.Time.t; snapshot : string }

(* Snapshotability is a property of what lives in the event heap: heap
   events are closures and cannot serialize, so a checkpointable run
   must keep the heap empty of model state — everything dynamic lives
   in the many-flows engine (SoA flow table + timer wheel + fluid
   scalars), and the only heap entries are the re-registerable series
   samplers. That rules out per-packet senders, delayed flow starts,
   fault schedules and the trace ring. *)
let snapshot_support_error t =
  if t.domains > 1 then
    Some "partitioned runs (domains > 1) spread state over several heaps"
  else if t.record_trace then
    Some "record_trace is on (the event ring is not serializable)"
  else if
    t.faults.forward <> Fm.passthrough || t.faults.reverse <> Fm.passthrough
  then Some "fault profiles schedule unserializable heap events"
  else
    match t.flows with
    | [ { workload = Many_flows _; start_at; _ } ]
      when Sim.Time.compare start_at Sim.Time.zero = 0 ->
        None
    | _ ->
        Some
          "only specs whose single flow is a many_flows workload starting \
           at t=0 keep all run state out of the event heap"

let snapshot_supported t = snapshot_support_error t = None

let check_snapshot_supported t =
  match snapshot_support_error t with
  | None -> ()
  | Some why -> err "Spec: %S cannot checkpoint/resume: %s" t.name why

(* The single many_flows flow's shard array. Shard 0 keeps the legacy
   ["mf."] snapshot prefix (pre-sharding images restore unchanged);
   siblings get ["mf.<k>."]. *)
let the_engines b =
  let shards =
    List.filter_map
      (fun bf ->
        match bf.driver with Some (Many_driver a) -> Some a | _ -> None)
      b.bflows
  in
  match shards with
  | [ a ] when Array.length a > 0 -> a
  | _ -> err "Spec: checkpoint requires exactly one started many_flows flow"

let shard_prefix k = if k = 0 then "mf." else Printf.sprintf "mf.%d." k

let save_series w name s =
  Sim.Snapshot.put_int_array w (name ^ ".t")
    (Array.map Sim.Time.to_ns_int (Sim.Stats.Series.times s));
  Sim.Snapshot.put_float_array w (name ^ ".v") (Sim.Stats.Series.values s)

let restore_series r name s =
  let ts = Sim.Snapshot.get_int_array r (name ^ ".t") in
  let vs = Sim.Snapshot.get_float_array r (name ^ ".v") in
  if Array.length ts <> Array.length vs then
    raise (Sim.Snapshot.Corrupt ("Spec: ragged series " ^ name));
  Array.iteri
    (fun i t -> Sim.Stats.Series.add s (Sim.Time.of_ns_int t) vs.(i))
    ts

let instrument_sections i inst =
  let p name = Printf.sprintf "inst.%d.%s" i name in
  [
    (p "stalls", inst.stalls_s);
    (p "cwnd", inst.cwnd_s);
    (p "ifq", inst.ifq_s);
    (p "throughput", inst.throughput_s);
    (p "srtt", inst.srtt_s);
  ]

(* The snapshot embeds the canonical spec JSON so a resume against the
   wrong spec fails loudly instead of continuing a different scenario,
   and copies raw engine state without integrating the fluid queue to
   the snapshot time — polling here would split one integration
   interval in two and diverge from an unbroken run. *)
let save_checkpoint ~identity b instruments ~path =
  let w = Sim.Snapshot.writer () in
  Sim.Snapshot.put_bytes w "spec.identity" identity;
  Sim.Snapshot.put_int w "spec.clock_ns"
    (Sim.Time.to_ns_int (Sim.Scheduler.now b.bsched));
  Sim.Snapshot.put_i64 w "spec.sched_rng"
    (Sim.Rng.state (Sim.Scheduler.rng b.bsched));
  Array.iteri
    (fun k eng -> Workload.Many_flows.save ~prefix:(shard_prefix k) eng w)
    (the_engines b);
  List.iteri
    (fun i inst ->
      Sim.Snapshot.put_int w
        (Printf.sprintf "inst.%d.last_bytes" i)
        inst.last_bytes;
      List.iter
        (fun (name, s) -> save_series w name s)
        (instrument_sections i inst))
    instruments;
  Sim.Snapshot.save w ~path

(* Restore into a freshly-built spec, before samplers are registered.
   Build-time state (initial wheel arms, RNG draws, free-list order) is
   fully overwritten, so the restored image — not construction history —
   determines every subsequent transition. *)
let restore_checkpoint ~identity b instruments ~path =
  check_snapshot_supported b.bspec;
  let r = Sim.Snapshot.load ~path in
  let stored = Sim.Snapshot.get_bytes r "spec.identity" in
  if stored <> identity then
    err "Spec: snapshot %s was taken from a different spec" path;
  Sim.Rng.set_state
    (Sim.Scheduler.rng b.bsched)
    (Sim.Snapshot.get_i64 r "spec.sched_rng");
  (* Engine before clock: the restore drains the fresh build's wheel
     arms (which sit earlier than the snapshot time) and re-arms from
     the snapshot, so [restore_clock]'s no-earlier-pending-event guard
     sees only post-snapshot timers. *)
  Array.iteri
    (fun k eng -> Workload.Many_flows.restore ~prefix:(shard_prefix k) eng r)
    (the_engines b);
  Sim.Scheduler.restore_clock b.bsched
    (Sim.Time.of_ns_int (Sim.Snapshot.get_int r "spec.clock_ns"));
  List.iteri
    (fun i inst ->
      inst.last_bytes <-
        Sim.Snapshot.get_int r (Printf.sprintf "inst.%d.last_bytes" i);
      List.iter
        (fun (name, s) -> restore_series r name s)
        (instrument_sections i inst))
    instruments

(* Partitioned execution. Nothing instrumentation-related lives in any
   partition's heap: delayed flow starts and series samples are
   coordinator breaks, executed with every partition quiesced exactly at
   the break time — all events below it fired, all cross-partition
   messages drained, every clock equal. At a shared instant, starts fire
   before samples, mirroring the single-domain heap order (start timers
   enter the heap at build time, before the samplers are registered). *)
let run_partitioned b p instruments =
  let dur_ns = Sim.Time.to_ns_int b.bspec.duration in
  let per_ns = Sim.Time.to_ns_int b.bspec.sample_period in
  let sampling =
    b.bspec.record_series
    && List.exists
         (fun inst -> tcp_series_workload inst.ibf.fspec.workload)
         instruments
  in
  let sample_grid =
    if not sampling then []
    else begin
      let acc = ref [] in
      let k = ref 1 in
      while !k * per_ns <= dur_ns do
        acc := Sim.Time.of_ns_int (!k * per_ns) :: !acc;
        incr k
      done;
      List.rev !acc
    end
  in
  let breaks = List.map fst p.pstarts @ sample_grid in
  let on_break now =
    List.iter
      (fun (at, bf) -> if Sim.Time.compare at now = 0 then start_flow b bf)
      p.pstarts;
    if sampling && Sim.Time.to_ns_int now mod per_ns = 0 then
      List.iter
        (fun inst ->
          if tcp_series_workload inst.ibf.fspec.workload then
            sample_instrument b ~now inst)
        instruments
  in
  Sim.Partition.run p.psync ~until:b.bspec.duration ~workers:p.pworkers
    ~breaks ~on_break ()

let execute_core ?checkpoint ~resume ~identity b =
  (match b.parts with
  | Some _ when checkpoint <> None || resume <> None ->
      err "Spec: checkpoint/resume is not supported with domains > 1"
  | _ -> ());
  (match checkpoint with
  | Some ck when Sim.Time.(ck.interval <= Sim.Time.zero) ->
      err "Spec: checkpoint interval must be positive"
  | Some _ -> check_snapshot_supported b.bspec
  | None -> ());
  let instruments = List.map empty_instrument b.bflows in
  let resumed =
    match resume with
    | None -> None
    | Some path ->
        restore_checkpoint ~identity b instruments ~path;
        Some path
  in
  let registry, metrics_acc =
    match b.parts with
    | Some p ->
        run_partitioned b p instruments;
        (None, ref [])
    | None ->
        if b.bspec.record_series then
          List.iter
            (fun inst ->
              if tcp_series_workload inst.ibf.fspec.workload then begin
                (* On resume the sampler restarts at the first multiple of
                   the period strictly after the restored clock: occurrences
                   at or before the checkpoint already fired (and sit in the
                   restored series), and [run ~until] is boundary-inclusive. *)
                let start =
                  match resumed with
                  | None -> None
                  | Some _ ->
                      let now_ns =
                        Sim.Time.to_ns_int (Sim.Scheduler.now b.bsched)
                      in
                      let per = Sim.Time.to_ns_int b.bspec.sample_period in
                      Some (Sim.Time.of_ns_int (((now_ns / per) + 1) * per))
                in
                ignore
                  (Sim.Scheduler.every b.bsched ?start b.bspec.sample_period
                     (fun () ->
                       sample_instrument b
                         ~now:(Sim.Scheduler.now b.bsched)
                         inst))
              end)
            instruments;
        (* The metrics sampler is registered after the legacy per-flow
           instruments so that runs without [record_trace] perform the exact
           event-queue operation sequence they always did. Probes only read
           state, so the extra timer never perturbs the model. *)
        let registry = Option.map (fun _ -> build_registry b) b.btrace in
        let metrics_acc = ref [] in
        (match registry with
        | None -> ()
        | Some reg ->
            ignore
              (Sim.Scheduler.every b.bsched b.bspec.sample_period (fun () ->
                   let now = Sim.Time.to_sec (Sim.Scheduler.now b.bsched) in
                   metrics_acc :=
                     (now, Trace.Registry.sample reg) :: !metrics_acc)));
        (match checkpoint with
        | None -> Sim.Scheduler.run ~until:b.bspec.duration b.bsched
        | Some ck ->
            (* Run in interval-sized slices. [run ~until:t1; run ~until:t2]
               is equivalent to [run ~until:t2], so slicing (and therefore
               where checkpoints land) never changes the simulation — only
               what survives a kill. No snapshot at the final boundary: the
               run is complete, its outputs are the artifact. *)
            let duration = b.bspec.duration in
            let rec slice t0 =
              let next = Sim.Time.min duration (Sim.Time.add t0 ck.interval) in
              Sim.Scheduler.run ~until:next b.bsched;
              if Sim.Time.(next < duration) then begin
                save_checkpoint ~identity b instruments ~path:ck.snapshot_path;
                if ck.should_stop () then
                  raise (Drained { at = next; snapshot = ck.snapshot_path })
                else slice next
              end
            in
            slice (Sim.Scheduler.now b.bsched));
        (registry, metrics_acc)
  in
  let results = List.map (collect_flow b) instruments in
  let tcp_goodputs =
    List.filter_map
      (fun (bf, r) ->
        if tcp_series_workload bf.fspec.workload then Some r.goodput_mbps
        else None)
      (List.combine b.bflows results)
  in
  let pair0_ifq =
    match b.bflows with
    | bf :: _ -> Netsim.Host.ifq bf.src
    | [] -> Netsim.Host.ifq (fst (pair_hosts b.net 0))
  in
  let router_drops =
    match b.net with
    | Net_duplex _ | Net_duplex_split _ -> 0
    | Net_dumbbell d ->
        Netsim.Router.dropped d.Netsim.Topology.Dumbbell.router_l
        + Netsim.Router.dropped d.Netsim.Topology.Dumbbell.router_r
    | Net_multi md ->
        Array.fold_left
          (fun acc (s : Netsim.Topology.Multi_dumbbell.segment) ->
            acc
            + Netsim.Router.dropped s.Netsim.Topology.Multi_dumbbell.router_l
            + Netsim.Router.dropped s.Netsim.Topology.Multi_dumbbell.router_r)
          0 md.Netsim.Topology.Multi_dumbbell.segments
  in
  {
    results;
    path =
      {
        aggregate_goodput_mbps = List.fold_left ( +. ) 0. tcp_goodputs;
        jain_index = jain tcp_goodputs;
        queue_mean = Netsim.Ifq.mean_occupancy pair0_ifq;
        queue_peak = Netsim.Ifq.peak_occupancy pair0_ifq;
        router_drops;
      };
    trace = b.btrace;
    metrics =
      Option.map
        (fun reg ->
          {
            metric_names = Trace.Registry.names reg;
            samples = List.rev !metrics_acc;
          })
        registry;
    resume_from = resumed;
  }

(* --- JSON --------------------------------------------------------------- *)

let time_to_json t = Json.Number (float_of_int (Sim.Time.to_ns_int t))
let opt_to_json f = function None -> Json.Null | Some v -> f v

let jitter_to_json (j : Fm.jitter) =
  Json.Obj
    [
      ("prob", Json.Number j.Fm.prob);
      ("max_extra_ns", time_to_json j.Fm.max_extra);
    ]

let ge_to_json (g : Fm.ge) =
  Json.Obj
    [
      ("p_gb", Json.Number g.Fm.p_gb);
      ("p_bg", Json.Number g.Fm.p_bg);
      ("loss_good", Json.Number g.Fm.loss_good);
      ("loss_bad", Json.Number g.Fm.loss_bad);
    ]

let event_to_json = function
  | Fm.Outage { start; stop } ->
      Json.Obj
        [
          ("kind", Json.String "outage");
          ("start_ns", time_to_json start);
          ("stop_ns", time_to_json stop);
        ]
  | Fm.Delay_step { at; extra } ->
      Json.Obj
        [
          ("kind", Json.String "delay_step");
          ("at_ns", time_to_json at);
          ("extra_ns", time_to_json extra);
        ]

let profile_to_json (p : Fm.profile) =
  Json.Obj
    [
      ("ge", opt_to_json ge_to_json p.Fm.ge);
      ("reorder", opt_to_json jitter_to_json p.Fm.reorder);
      ("duplicate", opt_to_json jitter_to_json p.Fm.duplicate);
      ("schedule", Json.List (List.map event_to_json p.Fm.schedule));
    ]

let red_to_json (r : Netsim.Queue_disc.red_params) =
  Json.Obj
    [
      ("min_th", Json.Number r.Netsim.Queue_disc.min_th);
      ("max_th", Json.Number r.Netsim.Queue_disc.max_th);
      ("max_p", Json.Number r.Netsim.Queue_disc.max_p);
      ("weight", Json.Number r.Netsim.Queue_disc.weight);
    ]

let rate_to_json r = Json.Number (Sim.Units.rate_to_mbps r)
let int_to_json i = Json.Number (float_of_int i)

let topology_to_json = function
  | Duplex d ->
      Json.Obj
        [
          ("kind", Json.String "duplex");
          ("rate_mbps", rate_to_json d.rate);
          ("one_way_delay_ns", time_to_json d.one_way_delay);
          ("ifq_capacity", int_to_json d.ifq_capacity);
          ("loss_rate", Json.Number d.loss_rate);
          ("ifq_red_ecn", opt_to_json red_to_json d.ifq_red_ecn);
        ]
  | Dumbbell d ->
      Json.Obj
        [
          ("kind", Json.String "dumbbell");
          ("pairs", int_to_json d.pairs);
          ("access_rate_mbps", rate_to_json d.access_rate);
          ("access_delay_ns", time_to_json d.access_delay);
          ("bottleneck_rate_mbps", rate_to_json d.bottleneck_rate);
          ("bottleneck_delay_ns", time_to_json d.bottleneck_delay);
          ("buffer_packets", int_to_json d.buffer_packets);
          ("ifq_capacity", int_to_json d.host_ifq_capacity);
          ("red", opt_to_json red_to_json d.red);
        ]
  | Multi_dumbbell m ->
      Json.Obj
        [
          ("kind", Json.String "dumbbell_of_dumbbells");
          ("segments", int_to_json m.segments);
          ("pairs", int_to_json m.m_pairs);
          ("access_rate_mbps", rate_to_json m.m_access_rate);
          ("access_delay_ns", time_to_json m.m_access_delay);
          ("bottleneck_rate_mbps", rate_to_json m.m_bottleneck_rate);
          ("bottleneck_delay_ns", time_to_json m.m_bottleneck_delay);
          ("core_rate_mbps", rate_to_json m.core_rate);
          ("core_delay_ns", time_to_json m.core_delay);
          ("buffer_packets", int_to_json m.m_buffer_packets);
          ("ifq_capacity", int_to_json m.m_host_ifq_capacity);
          ("red", opt_to_json red_to_json m.m_red);
          ("cross_pairs", int_to_json m.cross_pairs);
        ]

let workload_to_json = function
  | Bulk { bytes } ->
      Json.Obj
        [ ("kind", Json.String "bulk"); ("bytes", opt_to_json int_to_json bytes) ]
  | Chunked { chunk_bytes; interval; chunks } ->
      Json.Obj
        [
          ("kind", Json.String "chunked");
          ("chunk_bytes", int_to_json chunk_bytes);
          ("interval_ns", time_to_json interval);
          ("chunks", opt_to_json int_to_json chunks);
        ]
  | Cbr { rate; packet_bytes; stop_at } ->
      Json.Obj
        [
          ("kind", Json.String "cbr");
          ("rate_mbps", rate_to_json rate);
          ("packet_bytes", int_to_json packet_bytes);
          ("stop_at_ns", opt_to_json time_to_json stop_at);
        ]
  | On_off { peak_rate; mean_on; mean_off; packet_bytes } ->
      Json.Obj
        [
          ("kind", Json.String "on_off");
          ("peak_rate_mbps", rate_to_json peak_rate);
          ("mean_on_ns", time_to_json mean_on);
          ("mean_off_ns", time_to_json mean_off);
          ("packet_bytes", int_to_json packet_bytes);
        ]
  | Short_flows { arrival_rate; mean_size; pareto_shape; stop_at } ->
      Json.Obj
        [
          ("kind", Json.String "short_flows");
          ("arrival_rate", Json.Number arrival_rate);
          ("mean_size", int_to_json mean_size);
          ("pareto_shape", Json.Number pareto_shape);
          ("stop_at_ns", opt_to_json time_to_json stop_at);
        ]
  | Many_flows
      { flows; arrival_rate; arrival_pareto_shape; mean_size;
        size_pareto_shape } ->
      Json.Obj
        [
          ("kind", Json.String "many_flows");
          ("flows", int_to_json flows);
          ("arrival_rate", opt_to_json (fun r -> Json.Number r) arrival_rate);
          ( "arrival_pareto_shape",
            opt_to_json (fun s -> Json.Number s) arrival_pareto_shape );
          ("mean_size", opt_to_json int_to_json mean_size);
          ("size_pareto_shape", Json.Number size_pareto_shape);
        ]

let restricted_to_json (c : Tcp.Slow_start.restricted_config) =
  Json.Obj
    [
      ("kp", Json.Number c.Tcp.Slow_start.gains.Control.Pid.kp);
      ("ti", Json.Number c.Tcp.Slow_start.gains.Control.Pid.ti);
      ("td", Json.Number c.Tcp.Slow_start.gains.Control.Pid.td);
      ("setpoint_fraction", Json.Number c.Tcp.Slow_start.setpoint_fraction);
      ("max_step_segments", Json.Number c.Tcp.Slow_start.max_step_segments);
      ( "sample_min_interval_ns",
        time_to_json c.Tcp.Slow_start.sample_min_interval );
    ]

let cong_avoid_to_string = function
  | Reno -> "reno"
  | Cubic -> "cubic"
  | Vegas -> "vegas"

let flow_to_json (f : flow) =
  Json.Obj
    [
      ("label", opt_to_json (fun l -> Json.String l) f.label);
      ("pair", int_to_json f.pair);
      ("start_at_ns", time_to_json f.start_at);
      ("policy", opt_to_json (fun p -> Json.String p) f.policy);
      ("slow_start", Json.String f.slow_start);
      ("restricted", opt_to_json restricted_to_json f.restricted);
      ("shared_rss", Json.Bool f.shared_rss);
      ("cong_avoid", Json.String (cong_avoid_to_string f.cong_avoid));
      ( "local_congestion",
        Json.String (Tcp.Local_congestion.to_string f.local_congestion) );
      ("delayed_ack_ns", opt_to_json time_to_json f.delayed_ack);
      ("use_sack", Json.Bool f.use_sack);
      ("pacing", Json.Bool f.pacing);
      ("slow_start_restart", Json.Bool f.slow_start_restart);
      ("max_rto_ns", opt_to_json time_to_json f.max_rto);
      ("workload", workload_to_json f.workload);
    ]

let to_json t =
  Json.Obj
    [
      ("name", Json.String t.name);
      (* Seeds from [Rng.derive_seed] are 62-bit; a JSON double only
         holds 53, so the seed travels as a decimal string. *)
      ("seed", Json.String (string_of_int t.seed));
      ("duration_ns", time_to_json t.duration);
      ("sample_period_ns", time_to_json t.sample_period);
      ("record_series", Json.Bool t.record_series);
      ("record_trace", Json.Bool t.record_trace);
      ("trace_capacity", int_to_json t.trace_capacity);
      ("domains", int_to_json t.domains);
      ("topology", topology_to_json t.topology);
      ("flows", Json.List (List.map flow_to_json t.flows));
      ( "faults",
        Json.Obj
          [
            ("forward", profile_to_json t.faults.forward);
            ("reverse", profile_to_json t.faults.reverse);
          ] );
    ]

(* The spec identity a snapshot embeds: the canonical JSON rendering,
   so a resume against a different scenario — or the same scenario with
   one knob changed — fails loudly. Defined here (after [to_json]); the
   checkpoint machinery above takes it as a parameter. *)
let spec_identity t = Json.to_string (to_json t)

let execute ?checkpoint ?resume_from b =
  execute_core ?checkpoint ~resume:resume_from
    ~identity:(spec_identity b.bspec) b

let run ?checkpoint ?resume_from spec =
  execute ?checkpoint ?resume_from (build spec)

let run_batch ?pool specs =
  match pool with
  | None -> List.map (fun s -> run s) specs
  | Some pool ->
      Engine.Pool.map pool ~label:(fun s -> s.name) ~f:(fun s -> run s) specs

(* Per-cell verdicts: a poisoned cell costs one [Error] row, never the
   batch. Sequential runs capture the same way so the CLI's failure
   table is identical at any --jobs. *)
let run_batch_collect ?pool specs =
  match pool with
  | None ->
      List.map
        (fun s ->
          try Ok (run s)
          with e ->
            Error
              {
                Engine.Pool.flabel = s.name;
                fexn = e;
                fbacktrace = Printexc.get_backtrace ();
              })
        specs
  | Some pool ->
      Engine.Pool.map_collect pool
        ~label:(fun s -> s.name)
        ~f:(fun s -> run s)
        specs

(* Parsing. Present fields must be well-typed (errors name the field);
   missing fields fall back to the defaults; unknown keys are ignored. *)

let ( let* ) = Result.bind

let field key j =
  match Json.member key j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" key)

let num key j =
  let* v = field key j in
  match Json.number v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "field %S is not a number" key)

let str key j =
  let* v = field key j in
  match Json.string_value v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "field %S is not a string" key)

let num_default d key j =
  match Json.member key j with None -> Ok d | Some _ -> num key j

let int_default d key j =
  Result.map int_of_float (num_default (float_of_int d) key j)

let str_default d key j =
  match Json.member key j with None -> Ok d | Some _ -> str key j

let bool_default d key j =
  match Json.member key j with
  | None -> Ok d
  | Some (Json.Bool b) -> Ok b
  | Some _ -> Error (Printf.sprintf "field %S is not a bool" key)

(* A duration: [<key>_ns] (integer nanoseconds) or [<key>_s] (float
   seconds); [d] when neither key is present. *)
let time_default d key j =
  match Json.member (key ^ "_ns") j with
  | Some v -> (
      match Json.number v with
      | Some f -> Ok (Sim.Time.of_ns_int (int_of_float f))
      | None -> Error (Printf.sprintf "field \"%s_ns\" is not a number" key))
  | None -> (
      match Json.member (key ^ "_s") j with
      | None -> Ok d
      | Some v -> (
          match Json.number v with
          | Some f -> Ok (Sim.Time.of_sec f)
          | None ->
              Error (Printf.sprintf "field \"%s_s\" is not a number" key)))

let time key j =
  let* t = time_default Sim.Time.zero key j in
  match (Json.member (key ^ "_ns") j, Json.member (key ^ "_s") j) with
  | None, None ->
      Error (Printf.sprintf "missing field %S" (key ^ "_ns"))
  | _ -> Ok t

let opt_time_default d key j =
  match (Json.member (key ^ "_ns") j, Json.member (key ^ "_s") j) with
  | None, None -> Ok d
  | Some Json.Null, _ -> Ok None
  | _ -> Result.map Option.some (time key j)

let opt_field key parse j =
  match Json.member key j with
  | None | Some Json.Null -> Ok None
  | Some v -> Result.map Option.some (parse v)

let all parse items =
  List.fold_left
    (fun acc item ->
      let* acc = acc in
      let* v = parse item in
      Ok (v :: acc))
    (Ok []) items
  |> Result.map List.rev

let jitter_of_json j =
  let* prob = num "prob" j in
  let* max_extra = time "max_extra" j in
  Ok { Fm.prob; max_extra }

let ge_of_json j =
  let* p_gb = num "p_gb" j in
  let* p_bg = num "p_bg" j in
  let* loss_good = num "loss_good" j in
  let* loss_bad = num "loss_bad" j in
  Ok { Fm.p_gb; p_bg; loss_good; loss_bad }

let event_of_json j =
  let* kind = str "kind" j in
  match kind with
  | "outage" ->
      let* start = time "start" j in
      let* stop = time "stop" j in
      Ok (Fm.Outage { start; stop })
  | "delay_step" ->
      let* at = time "at" j in
      let* extra = time "extra" j in
      Ok (Fm.Delay_step { at; extra })
  | other -> Error (Printf.sprintf "unknown schedule event kind %S" other)

let profile_of_json j =
  let* ge = opt_field "ge" ge_of_json j in
  let* reorder = opt_field "reorder" jitter_of_json j in
  let* duplicate = opt_field "duplicate" jitter_of_json j in
  let* schedule =
    match Json.member "schedule" j with
    | None -> Ok []
    | Some v -> (
        match Json.list_value v with
        | None -> Error "field \"schedule\" is not a list"
        | Some items -> all event_of_json items)
  in
  Ok { Fm.ge; reorder; duplicate; schedule }

let red_of_json j =
  let* min_th = num "min_th" j in
  let* max_th = num "max_th" j in
  let* max_p = num "max_p" j in
  let* weight = num "weight" j in
  Ok { Netsim.Queue_disc.min_th; max_th; max_p; weight }

let topology_of_json j =
  let* kind = str_default "duplex" "kind" j in
  match kind with
  | "duplex" ->
      let* rate_mbps =
        num_default (Sim.Units.rate_to_mbps default_duplex.rate) "rate_mbps" j
      in
      let* one_way_delay =
        time_default default_duplex.one_way_delay "one_way_delay" j
      in
      let* ifq_capacity =
        int_default default_duplex.ifq_capacity "ifq_capacity" j
      in
      let* loss_rate = num_default default_duplex.loss_rate "loss_rate" j in
      let* ifq_red_ecn = opt_field "ifq_red_ecn" red_of_json j in
      Ok
        (Duplex
           {
             rate = Sim.Units.mbps rate_mbps;
             one_way_delay;
             ifq_capacity;
             loss_rate;
             ifq_red_ecn;
           })
  | "dumbbell" ->
      let* pairs = int_default 2 "pairs" j in
      let* access_rate_mbps = num_default 100. "access_rate_mbps" j in
      let* access_delay = time_default (Sim.Time.ms 1) "access_delay" j in
      let* bottleneck_rate_mbps = num_default 100. "bottleneck_rate_mbps" j in
      let* bottleneck_delay =
        time_default (Sim.Time.ms 28) "bottleneck_delay" j
      in
      let* buffer_packets = int_default 250 "buffer_packets" j in
      let* host_ifq_capacity = int_default 100 "ifq_capacity" j in
      let* red = opt_field "red" red_of_json j in
      Ok
        (Dumbbell
           {
             pairs;
             access_rate = Sim.Units.mbps access_rate_mbps;
             access_delay;
             bottleneck_rate = Sim.Units.mbps bottleneck_rate_mbps;
             bottleneck_delay;
             buffer_packets;
             host_ifq_capacity;
             red;
           })
  | "dumbbell_of_dumbbells" ->
      let* segments = int_default 2 "segments" j in
      let* pairs = int_default 2 "pairs" j in
      let* access_rate_mbps = num_default 100. "access_rate_mbps" j in
      let* access_delay = time_default (Sim.Time.ms 1) "access_delay" j in
      let* bottleneck_rate_mbps = num_default 100. "bottleneck_rate_mbps" j in
      let* bottleneck_delay =
        time_default (Sim.Time.ms 10) "bottleneck_delay" j
      in
      let* core_rate_mbps = num_default 400. "core_rate_mbps" j in
      let* core_delay = time_default (Sim.Time.ms 5) "core_delay" j in
      let* buffer_packets = int_default 250 "buffer_packets" j in
      let* host_ifq_capacity = int_default 100 "ifq_capacity" j in
      let* red = opt_field "red" red_of_json j in
      let* cross_pairs = int_default 0 "cross_pairs" j in
      Ok
        (Multi_dumbbell
           {
             segments;
             m_pairs = pairs;
             m_access_rate = Sim.Units.mbps access_rate_mbps;
             m_access_delay = access_delay;
             m_bottleneck_rate = Sim.Units.mbps bottleneck_rate_mbps;
             m_bottleneck_delay = bottleneck_delay;
             core_rate = Sim.Units.mbps core_rate_mbps;
             core_delay;
             m_buffer_packets = buffer_packets;
             m_host_ifq_capacity = host_ifq_capacity;
             m_red = red;
             cross_pairs;
           })
  | other -> Error (Printf.sprintf "unknown topology kind %S" other)

let workload_of_json j =
  let* kind = str_default "bulk" "kind" j in
  match kind with
  | "bulk" ->
      let* bytes =
        opt_field "bytes" (fun v ->
            match Json.number v with
            | Some f -> Ok (int_of_float f)
            | None -> Error "field \"bytes\" is not a number")
          j
      in
      Ok (Bulk { bytes })
  | "chunked" ->
      let* chunk_bytes = num "chunk_bytes" j in
      let* interval = time "interval" j in
      let* chunks =
        opt_field "chunks" (fun v ->
            match Json.number v with
            | Some f -> Ok (int_of_float f)
            | None -> Error "field \"chunks\" is not a number")
          j
      in
      Ok (Chunked { chunk_bytes = int_of_float chunk_bytes; interval; chunks })
  | "cbr" ->
      let* rate_mbps = num "rate_mbps" j in
      let* packet_bytes = int_default 1000 "packet_bytes" j in
      let* stop_at = opt_time_default None "stop_at" j in
      Ok (Cbr { rate = Sim.Units.mbps rate_mbps; packet_bytes; stop_at })
  | "on_off" ->
      let* peak_rate_mbps = num "peak_rate_mbps" j in
      let* mean_on = time "mean_on" j in
      let* mean_off = time "mean_off" j in
      let* packet_bytes = int_default 1000 "packet_bytes" j in
      Ok
        (On_off
           {
             peak_rate = Sim.Units.mbps peak_rate_mbps;
             mean_on;
             mean_off;
             packet_bytes;
           })
  | "short_flows" ->
      let* arrival_rate = num "arrival_rate" j in
      let* mean_size = int_default 30_720 "mean_size" j in
      let* pareto_shape = num_default 1.2 "pareto_shape" j in
      let* stop_at = opt_time_default None "stop_at" j in
      Ok (Short_flows { arrival_rate; mean_size; pareto_shape; stop_at })
  | "many_flows" ->
      let opt_num key =
        opt_field key
          (fun v ->
            match Json.number v with
            | Some f -> Ok f
            | None -> Error (Printf.sprintf "field %S is not a number" key))
          j
      in
      let* flows = int_default 1000 "flows" j in
      let* arrival_rate = opt_num "arrival_rate" in
      let* arrival_pareto_shape = opt_num "arrival_pareto_shape" in
      let* mean_size = Result.map (Option.map int_of_float) (opt_num "mean_size") in
      let* size_pareto_shape = num_default 1.2 "size_pareto_shape" j in
      Ok
        (Many_flows
           { flows; arrival_rate; arrival_pareto_shape; mean_size;
             size_pareto_shape })
  | other -> Error (Printf.sprintf "unknown workload kind %S" other)

let restricted_of_json j =
  let* kp = num "kp" j in
  let* ti = num "ti" j in
  let* td = num "td" j in
  let* setpoint_fraction = num "setpoint_fraction" j in
  let* max_step_segments = num "max_step_segments" j in
  let* sample_min_interval = time "sample_min_interval" j in
  Ok
    {
      Tcp.Slow_start.gains = { Control.Pid.kp; ti; td };
      setpoint_fraction;
      max_step_segments;
      sample_min_interval;
    }

let cong_avoid_of_string = function
  | "reno" -> Ok Reno
  | "cubic" -> Ok Cubic
  | "vegas" -> Ok Vegas
  | other ->
      Error (Printf.sprintf "unknown cong_avoid %S (reno|cubic|vegas)" other)

let flow_of_json j =
  let d = default_flow in
  let* label =
    opt_field "label" (fun v ->
        match Json.string_value v with
        | Some s -> Ok s
        | None -> Error "field \"label\" is not a string")
      j
  in
  let* pair = int_default d.pair "pair" j in
  let* start_at = time_default d.start_at "start_at" j in
  let* policy =
    opt_field "policy" (fun v ->
        match Json.string_value v with
        | Some s -> Ok s
        | None -> Error "field \"policy\" is not a string")
      j
  in
  let* slow_start = str_default d.slow_start "slow_start" j in
  let* restricted = opt_field "restricted" restricted_of_json j in
  let* shared_rss = bool_default d.shared_rss "shared_rss" j in
  let* cong_avoid =
    let* s = str_default (cong_avoid_to_string d.cong_avoid) "cong_avoid" j in
    cong_avoid_of_string s
  in
  let* local_congestion =
    let* s =
      str_default
        (Tcp.Local_congestion.to_string d.local_congestion)
        "local_congestion" j
    in
    Tcp.Local_congestion.of_string s
  in
  let* delayed_ack = opt_time_default d.delayed_ack "delayed_ack" j in
  let* use_sack = bool_default d.use_sack "use_sack" j in
  let* pacing = bool_default d.pacing "pacing" j in
  let* slow_start_restart =
    bool_default d.slow_start_restart "slow_start_restart" j
  in
  let* max_rto = opt_time_default d.max_rto "max_rto" j in
  let* workload =
    match Json.member "workload" j with
    | None -> Ok d.workload
    | Some w -> workload_of_json w
  in
  Ok
    {
      label;
      pair;
      start_at;
      policy;
      slow_start;
      restricted;
      shared_rss;
      cong_avoid;
      local_congestion;
      delayed_ack;
      use_sack;
      pacing;
      slow_start_restart;
      max_rto;
      workload;
    }

let of_json j =
  let d = default in
  let* name = str_default d.name "name" j in
  let* seed =
    match Json.member "seed" j with
    | None -> Ok d.seed
    | Some (Json.String s) -> (
        match int_of_string_opt s with
        | Some n -> Ok n
        | None ->
            Error (Printf.sprintf "field \"seed\" is not an integer: %S" s))
    | Some _ ->
        Error
          "field \"seed\" must be a decimal string (62-bit seeds do not \
           survive JSON doubles)"
  in
  let* duration = time_default d.duration "duration" j in
  let* sample_period = time_default d.sample_period "sample_period" j in
  let* record_series = bool_default d.record_series "record_series" j in
  let* record_trace = bool_default d.record_trace "record_trace" j in
  let* trace_capacity = int_default d.trace_capacity "trace_capacity" j in
  let* domains = int_default d.domains "domains" j in
  let* topology =
    match Json.member "topology" j with
    | None -> Ok d.topology
    | Some t -> topology_of_json t
  in
  let* flows =
    match Json.member "flows" j with
    | None -> Ok d.flows
    | Some v -> (
        match Json.list_value v with
        | None -> Error "field \"flows\" is not a list"
        | Some items -> all flow_of_json items)
  in
  let* faults =
    match Json.member "faults" j with
    | None -> Ok d.faults
    | Some fj ->
        let* forward =
          match Json.member "forward" fj with
          | None -> Ok Fm.passthrough
          | Some p -> profile_of_json p
        in
        let* reverse =
          match Json.member "reverse" fj with
          | None -> Ok Fm.passthrough
          | Some p -> profile_of_json p
        in
        Ok { forward; reverse }
  in
  Ok
    { name; seed; duration; sample_period; record_series; record_trace;
      trace_capacity; domains; topology; flows; faults }

(* --- result serialization ---------------------------------------------- *)

let flow_result_to_json r =
  Json.Obj
    [
      ("label", Json.String r.label);
      ("goodput_mbps", Json.Number r.goodput_mbps);
      ("utilization", Json.Number r.utilization);
      ("send_stalls", int_to_json r.send_stalls);
      ("congestion_signals", int_to_json r.congestion_signals);
      ("retransmits", int_to_json r.retransmits);
      ("timeouts", int_to_json r.timeouts);
      ("final_cwnd_segments", Json.Number r.final_cwnd_segments);
      ("mean_ifq", Json.Number r.mean_ifq);
      ("peak_ifq", Json.Number r.peak_ifq);
      ("ce_marks", int_to_json r.ce_marks);
      ( "completion_s",
        opt_to_json (fun c -> Json.Number (Sim.Time.to_sec c)) r.completion );
      ( "time_to_90pct_util_s",
        opt_to_json (fun s -> Json.Number s) r.time_to_90pct_util );
    ]

let outcome_to_json o =
  Json.Obj
    [
      ("flows", Json.List (List.map flow_result_to_json o.results));
      ( "path",
        Json.Obj
          [
            ("aggregate_goodput_mbps", Json.Number o.path.aggregate_goodput_mbps);
            ("jain_index", Json.Number o.path.jain_index);
            ("queue_mean", Json.Number o.path.queue_mean);
            ("queue_peak", Json.Number o.path.queue_peak);
            ("router_drops", int_to_json o.path.router_drops);
          ] );
    ]

(* --- template ----------------------------------------------------------- *)

let template () =
  {|{
  "_doc": "rss_sim scenario spec. Unknown keys (like these _doc entries) are ignored; missing keys take the defaults shown by `rss_sim spec`. Durations accept either <key>_ns integers or <key>_s float seconds.",
  "name": "example",
  "_doc_seed": "decimal string, not a number: 62-bit seeds do not survive JSON doubles",
  "seed": "1",
  "duration_s": 10,
  "sample_period_s": 0.25,
  "record_series": true,
  "_doc_record_trace": "true attaches the run-wide event tracer (ring of trace_capacity records) and the unified metrics registry; read them back with `rss_sim trace`",
  "record_trace": false,
  "trace_capacity": 65536,
  "_doc_domains": "partition the simulation across N OCaml domains (conservative-lookahead parallel DES); needs a cut-capable topology (duplex or dumbbell_of_dumbbells) and identical artifacts are guaranteed at any value; 1 = the classic single-scheduler engine",
  "domains": 1,
  "_doc_topology": "kind duplex (paper's sender-limited path: rate_mbps, one_way_delay_*, ifq_capacity, loss_rate, ifq_red_ecn), dumbbell (pairs, access_rate_mbps, access_delay_*, bottleneck_rate_mbps, bottleneck_delay_*, buffer_packets, ifq_capacity, red) or dumbbell_of_dumbbells (segments chained through core_rate_mbps/core_delay_* duplex links, plus the dumbbell knobs per segment and cross_pairs flows spanning adjacent segments)",
  "topology": {
    "kind": "dumbbell",
    "pairs": 2,
    "access_rate_mbps": 100,
    "access_delay_s": 0.001,
    "bottleneck_rate_mbps": 100,
    "bottleneck_delay_s": 0.028,
    "buffer_packets": 250,
    "ifq_capacity": 100
  },
  "_doc_flows": "one entry per flow; pair selects the host pair; slow_start is any `rss_sim list` slow-start; policy (optional) instead selects a full Tcp.Policy bundle (slow-start + congestion avoidance + pacing hints) by registry name; shared_rss=true steers the flow from a host-wide restricted controller; workload.kind is bulk|chunked|cbr|on_off|short_flows|many_flows (many_flows: N abstract AIMD flows through a fluid bottleneck — flows, arrival_rate flows/s or null for all-at-zero, arrival_pareto_shape or null for Poisson, mean_size bytes or null for persistent, size_pareto_shape)",
  "flows": [
    {
      "label": "restricted",
      "pair": 0,
      "slow_start": "restricted",
      "workload": { "kind": "bulk", "bytes": null }
    },
    {
      "label": "standard",
      "pair": 1,
      "start_at_s": 1.0,
      "slow_start": "standard",
      "workload": { "kind": "bulk", "bytes": null }
    }
  ],
  "_doc_faults": "Netsim.Fault_model profiles for the data (forward) and ACK (reverse) directions: ge {p_gb,p_bg,loss_good,loss_bad}, reorder/duplicate {prob,max_extra_*}, schedule [{kind:outage,start_*,stop_*} | {kind:delay_step,at_*,extra_*}]",
  "faults": {
    "forward": {
      "ge": null,
      "reorder": null,
      "duplicate": null,
      "schedule": [ { "kind": "outage", "start_s": 4.0, "stop_s": 4.5 } ]
    },
    "reverse": { "ge": null, "reorder": null, "duplicate": null, "schedule": [] }
  }
}
|}
