(** Packet queueing disciplines for router ports and host interface
    queues: drop-tail (bounded by packets and optionally bytes) and RED
    (random early detection, gentle variant). *)

type drop_reason =
  | Full          (** tail drop: packet bound or byte bound exceeded *)
  | Red_early     (** probabilistic early drop *)
  | Red_forced    (** average queue above max threshold *)

type red_params = {
  min_th : float;   (** packets *)
  max_th : float;   (** packets *)
  max_p : float;    (** drop probability at [max_th] *)
  weight : float;   (** EWMA weight for the average queue size *)
}

val default_red : red_params

val red_drop_probability : red_params -> avg:float -> float
(** The steady-state RED curve: drop/mark probability at average queue
    [avg] (packets) — 0 below [min_th], linear to [max_p] at [max_th],
    gentle to 1 at [2·max_th]. The packet-level discipline, the fluid
    many-flows engine and the mean-field oracle all evaluate this same
    function. *)

type t

val droptail : ?capacity_bytes:int -> capacity_packets:int -> unit -> t
(** Classic FIFO with tail drop. [capacity_packets] must be positive. *)

val red :
  ?ecn:bool ->
  capacity_packets:int ->
  link_rate:Sim.Units.rate ->
  red_params ->
  t
(** RED over a FIFO bounded by [capacity_packets]. [link_rate] sizes the
    idle-time correction of the average queue estimate. With [ecn]
    (default false), probabilistic early "drops" mark the packet's CE
    bit and enqueue it instead (RFC 3168); forced drops (average above
    2·max_th) and tail drops still discard. *)

val ecn_marks : t -> int
(** Packets CE-marked so far (always 0 for drop-tail / non-ECN RED). *)

val enqueue : t -> now:Sim.Time.t -> Packet.t -> (unit, drop_reason) result
val dequeue : t -> now:Sim.Time.t -> Packet.t option

val length : t -> int
(** Packets currently queued. *)

val byte_length : t -> int
val capacity_packets : t -> int
val is_full : t -> bool

val drops : t -> int
(** Total packets refused since creation. *)

val enqueued : t -> int
(** Total packets accepted since creation. *)

val set_drop_hook : t -> (Packet.t -> drop_reason -> unit) -> unit
(** Invoked on every refused packet, after counters update. *)
