(* Model-based suite for the hierarchical timing wheel: replay a random
   interleaving of arm / cancel / re-arm / advance against the event
   heap (the structure the wheel replaces for dense timers) and require
   the exact same fire order. Both sides see tick-quantized due times,
   so the equivalence is exact: due order first, arm (FIFO) order
   within a tick — the heap's (time, seq) contract.

   Deltas are drawn across the level-0 block span (256 ticks) and well
   past it so cascades, block crossings and multi-level placement all
   run; negative deltas exercise the past-due clamp. *)

let tick = 16 (* ns; small so short op lists still cross blocks *)

type op =
  | Arm of int (* signed delta ns from current time *)
  | Cancel of int (* index into previously returned handles *)
  | Rearm of int * int (* handle index, new delta *)
  | Advance of int (* delta ns forward *)
  | Advance_next (* advance exactly to the wheel's attention point *)

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (6, map (fun d -> Arm (d - 64)) (int_bound 20_000));
        (2, map (fun i -> Cancel i) (int_bound 1000));
        (2, map2 (fun i d -> Rearm (i, d - 64)) (int_bound 1000) (int_bound 20_000));
        (3, map (fun d -> Advance d) (int_bound 8_000));
        (2, return Advance_next);
      ])

let print_op = function
  | Arm d -> Printf.sprintf "Arm %+d" d
  | Cancel i -> Printf.sprintf "Cancel %d" i
  | Rearm (i, d) -> Printf.sprintf "Rearm (%d, %+d)" i d
  | Advance d -> Printf.sprintf "Advance %d" d
  | Advance_next -> "Advance_next"

let ops_arb =
  QCheck.make
    ~print:(fun l -> String.concat "; " (List.map print_op l))
    QCheck.Gen.(list_size (int_bound 300) op_gen)

(* Quantize as the wheel does: round the due time up to the tick, then
   clamp to the current position (a past due time fires at the next
   advance). *)
let quantize ~cur_tick due_ns =
  let t = (Stdlib.max 0 due_ns + tick - 1) / tick in
  Stdlib.max t cur_tick

let replay ops =
  let wheel_fired = ref [] in
  let w =
    Sim.Timer_wheel.create ~tick_ns:tick ~initial_capacity:4
      ~on_fire:(fun ~kind:_ ~flow -> wheel_fired := flow :: !wheel_fired)
      ()
  in
  let heap_fired = ref [] in
  let oracle = Sim.Event_queue.create ~initial_capacity:4 () in
  let handles = ref [] (* (wheel handle, oracle handle) newest first *) in
  let n_handles = ref 0 in
  let nth i =
    (* stable index: 0 = first handle ever returned *)
    List.nth !handles (!n_handles - 1 - i)
  in
  let now = ref 0 in
  let next_id = ref 0 in
  let ok = ref true in
  let check b = if not b then ok := false in
  let arm delta =
    let id = !next_id in
    incr next_id;
    let due_ns = Stdlib.max 0 (!now + delta) in
    let cur_tick = Sim.Timer_wheel.now_tick w in
    let wh = Sim.Timer_wheel.arm w ~due_ns ~kind:0 ~flow:id in
    let oh =
      Sim.Event_queue.add oracle
        ~time:(Sim.Time.of_ns_int (quantize ~cur_tick due_ns * tick))
        (fun () -> heap_fired := id :: !heap_fired)
    in
    handles := (wh, oh) :: !handles;
    incr n_handles
  in
  let advance_to now_ns =
    now := Stdlib.max !now now_ns;
    Sim.Timer_wheel.advance w ~now_ns:!now;
    let target_ns = !now / tick * tick in
    let rec drain () =
      let t = Sim.Event_queue.next_time_ns oracle in
      if t >= 0 && t <= target_ns then begin
        (Sim.Event_queue.pop_action_exn oracle) ();
        drain ()
      end
    in
    drain ();
    check (List.rev !wheel_fired = List.rev !heap_fired);
    check (Sim.Timer_wheel.pending w = Sim.Event_queue.live_count oracle)
  in
  List.iter
    (fun op ->
      if !ok then
        match op with
        | Arm delta -> arm delta
        | Cancel _ when !n_handles = 0 -> ()
        | Cancel i ->
            let wh, oh = nth (i mod !n_handles) in
            Sim.Timer_wheel.cancel w wh;
            Sim.Event_queue.cancel oracle oh
        | Rearm (_, delta) when !n_handles = 0 -> arm delta
        | Rearm (i, delta) ->
            let wh, oh = nth (i mod !n_handles) in
            Sim.Timer_wheel.cancel w wh;
            Sim.Event_queue.cancel oracle oh;
            arm delta
        | Advance delta -> advance_to (!now + delta)
        | Advance_next -> (
            match Sim.Timer_wheel.next_due_ns w with
            | -1 -> check (Sim.Timer_wheel.pending w = 0)
            | ns ->
                (* Attention points are never in the past and advancing
                   through them must preserve the heap's fire order. *)
                check (ns >= Sim.Timer_wheel.now_tick w * tick);
                advance_to ns))
    ops;
  (* Drain everything left by walking the attention points (advance
     cost is per block, so a single far jump would crawl through
     millions of empty blocks): the full sequences must agree. *)
  let rec drain_all fuel =
    if fuel = 0 then check false
    else if !ok then
      match Sim.Timer_wheel.next_due_ns w with
      | -1 -> ()
      | ns ->
          advance_to ns;
          drain_all (fuel - 1)
  in
  drain_all 100_000;
  check (Sim.Timer_wheel.pending w = 0);
  !ok

let qcheck_oracle =
  QCheck.Test.make
    ~name:"wheel matches the event heap under arm/cancel/re-arm/advance"
    ~count:300 ops_arb replay

let qcheck_oracle_dense =
  (* Tight deltas: everything lands in one level-0 block, maximising
     same-tick FIFO collisions. *)
  let gen =
    QCheck.Gen.(
      list_size (int_bound 400)
        (frequency
           [
             (8, map (fun d -> Arm (d - 8)) (int_bound 64));
             (3, map (fun i -> Cancel i) (int_bound 1000));
             (3, map (fun d -> Advance d) (int_bound 48));
             (2, return Advance_next);
           ]))
  in
  QCheck.Test.make ~name:"wheel matches the heap under same-tick collisions"
    ~count:300
    (QCheck.make ~print:(fun l -> String.concat "; " (List.map print_op l)) gen)
    replay

(* --- unit tests --------------------------------------------------------- *)

let test_exact_due_firing () =
  let fired = ref [] in
  let at_ns = ref 0 in
  let w =
    Sim.Timer_wheel.create
      ~on_fire:(fun ~kind:_ ~flow -> fired := (flow, !at_ns) :: !fired)
      ()
  in
  let tick = Sim.Timer_wheel.tick_ns w in
  (* Across level-0, level-1 and level-2 distances. *)
  let dues = [ (0, 3 * tick); (1, 300 * tick); (2, 70_000 * tick) ] in
  List.iter
    (fun (id, due_ns) ->
      ignore (Sim.Timer_wheel.arm w ~due_ns ~kind:0 ~flow:id))
    dues;
  (* Walking the attention points must fire each timer at exactly its
     quantized due tick, never early. *)
  let rec walk () =
    match Sim.Timer_wheel.next_due_ns w with
    | -1 -> ()
    | ns ->
        at_ns := ns;
        Sim.Timer_wheel.advance w ~now_ns:ns;
        walk ()
  in
  walk ();
  List.iter
    (fun (id, at) ->
      Alcotest.(check int)
        (Printf.sprintf "flow %d fires at its due tick" id)
        (List.assoc id dues) at)
    !fired;
  Alcotest.(check (list int))
    "due order" [ 0; 1; 2 ]
    (List.rev_map fst !fired);
  Alcotest.(check int) "drained" 0 (Sim.Timer_wheel.pending w)

let test_cancel_and_handles () =
  let fired = ref 0 in
  let w = Sim.Timer_wheel.create ~on_fire:(fun ~kind:_ ~flow:_ -> incr fired) () in
  let tick = Sim.Timer_wheel.tick_ns w in
  let h1 = Sim.Timer_wheel.arm w ~due_ns:(2 * tick) ~kind:0 ~flow:1 in
  let h2 = Sim.Timer_wheel.arm w ~due_ns:(2 * tick) ~kind:0 ~flow:2 in
  Alcotest.(check bool) "h1 pending" true (Sim.Timer_wheel.is_pending w h1);
  Sim.Timer_wheel.cancel w h1;
  Alcotest.(check bool) "h1 gone" false (Sim.Timer_wheel.is_pending w h1);
  Sim.Timer_wheel.cancel w h1 (* idempotent *);
  Sim.Timer_wheel.cancel w Sim.Timer_wheel.null (* inert *);
  Alcotest.(check int) "one left" 1 (Sim.Timer_wheel.pending w);
  Sim.Timer_wheel.advance w ~now_ns:(3 * tick);
  Alcotest.(check int) "only h2 fired" 1 !fired;
  Alcotest.(check bool) "h2 spent" false (Sim.Timer_wheel.is_pending w h2);
  (* A recycled node must not resurrect the old handle. *)
  let h3 = Sim.Timer_wheel.arm w ~due_ns:(10 * tick) ~kind:0 ~flow:3 in
  Alcotest.(check bool) "stale h2 inert" false (Sim.Timer_wheel.is_pending w h2);
  Sim.Timer_wheel.cancel w h2;
  Alcotest.(check bool) "h3 unaffected" true (Sim.Timer_wheel.is_pending w h3)

(* Regression: arming past the ~78 h horizon used to raise
   [Invalid_argument] — a backoff-inflated RTO would hard-fail the run.
   Beyond-horizon timers now park in an overflow list and are re-homed
   by the top-level cascade, firing at their exact quantized due time. *)
let test_overflow_parking () =
  let fired = ref [] in
  let at_ns = ref 0 in
  let w =
    Sim.Timer_wheel.create
      ~on_fire:(fun ~kind:_ ~flow -> fired := (flow, !at_ns) :: !fired)
      ()
  in
  let tick = Sim.Timer_wheel.tick_ns w in
  let horizon = Sim.Timer_wheel.horizon_ns w in
  (* One era ahead, two eras ahead (multi-rotation), and a near timer
     that must stay unaffected and fire first. *)
  let d_near = 5 * tick in
  let d_one = horizon + (7 * tick) in
  let d_two = horizon + 1 + (horizon + 1) + (3 * tick) in
  ignore (Sim.Timer_wheel.arm w ~due_ns:d_one ~kind:0 ~flow:1;);
  ignore (Sim.Timer_wheel.arm w ~due_ns:d_two ~kind:0 ~flow:2);
  ignore (Sim.Timer_wheel.arm w ~due_ns:d_near ~kind:0 ~flow:0);
  Alcotest.(check int) "all pending" 3 (Sim.Timer_wheel.pending w);
  (* iter_pending must see parked timers with their true due time. *)
  let seen = ref [] in
  Sim.Timer_wheel.iter_pending w ~f:(fun ~due_ns ~kind:_ ~flow ->
      seen := (flow, due_ns) :: !seen);
  Alcotest.(check bool)
    "iter_pending reports the parked timer" true
    (List.mem_assoc 1 !seen && List.assoc 1 !seen >= horizon);
  let rec walk () =
    match Sim.Timer_wheel.next_due_ns w with
    | -1 -> ()
    | ns ->
        at_ns := ns;
        Sim.Timer_wheel.advance w ~now_ns:ns;
        walk ()
  in
  walk ();
  let quantize ns = (ns + tick - 1) / tick * tick in
  Alcotest.(check (list (pair int int)))
    "each timer fires at its quantized due, in due order"
    [ (0, quantize d_near); (1, quantize d_one); (2, quantize d_two) ]
    (List.rev !fired);
  Alcotest.(check int) "drained" 0 (Sim.Timer_wheel.pending w)

let test_overflow_cancel () =
  let fired = ref 0 in
  let w = Sim.Timer_wheel.create ~on_fire:(fun ~kind:_ ~flow:_ -> incr fired) () in
  let tick = Sim.Timer_wheel.tick_ns w in
  let horizon = Sim.Timer_wheel.horizon_ns w in
  let h = Sim.Timer_wheel.arm w ~due_ns:(horizon + (9 * tick)) ~kind:0 ~flow:0 in
  Alcotest.(check bool) "parked timer is pending" true
    (Sim.Timer_wheel.is_pending w h);
  Alcotest.(check bool) "attention points at the parked timer's era" true
    (Sim.Timer_wheel.next_due_ns w > 0);
  Sim.Timer_wheel.cancel w h;
  Alcotest.(check bool) "cancelled" false (Sim.Timer_wheel.is_pending w h);
  Alcotest.(check int) "idle attention" (-1) (Sim.Timer_wheel.next_due_ns w);
  Sim.Timer_wheel.advance w ~now_ns:(2 * horizon);
  Alcotest.(check int) "nothing fires" 0 !fired

let test_alloc_free_churn () =
  (* The engine contract: steady-state arm/cancel churn allocates no
     minor words. Warm the wheel up past its growth phase first. *)
  let w =
    Sim.Timer_wheel.create ~initial_capacity:256
      ~on_fire:(fun ~kind:_ ~flow:_ -> ())
      ()
  in
  let tick = Sim.Timer_wheel.tick_ns w in
  for i = 0 to 99 do
    Sim.Timer_wheel.cancel w
      (Sim.Timer_wheel.arm w ~due_ns:((i + 1) * tick) ~kind:0 ~flow:i)
  done;
  let before = Gc.minor_words () in
  for i = 0 to 9_999 do
    Sim.Timer_wheel.cancel w
      (Sim.Timer_wheel.arm w ~due_ns:(((i land 1023) + 1) * tick) ~kind:0 ~flow:i)
  done;
  let words = Gc.minor_words () -. before in
  Alcotest.(check bool)
    (Printf.sprintf "0 minor words across 10k arm/cancel (got %.0f)" words)
    true (words = 0.)

(* --- iteration / drain (the snapshot path) ---------------------------- *)

let test_iter_pending_and_drain () =
  let w =
    Sim.Timer_wheel.create ~initial_capacity:4
      ~on_fire:(fun ~kind:_ ~flow:_ -> ())
      ()
  in
  let tick = Sim.Timer_wheel.tick_ns w in
  let armed =
    List.init 50 (fun i ->
        let due_ns = ((i * 37 mod 600) + 1) * tick in
        let h = Sim.Timer_wheel.arm w ~due_ns ~kind:(i mod 3) ~flow:i in
        (h, i))
  in
  let seen = ref 0 in
  Sim.Timer_wheel.iter_pending w ~f:(fun ~due_ns:_ ~kind:_ ~flow:_ ->
      incr seen);
  Alcotest.(check int) "iter visits every armed timer" 50 !seen;
  Sim.Timer_wheel.drain w;
  Alcotest.(check int) "drain empties the wheel" 0
    (Sim.Timer_wheel.pending w);
  List.iter
    (fun (h, i) ->
      Alcotest.(check bool)
        (Printf.sprintf "handle %d stale after drain" i)
        false
        (Sim.Timer_wheel.is_pending w h))
    armed;
  seen := 0;
  Sim.Timer_wheel.iter_pending w ~f:(fun ~due_ns:_ ~kind:_ ~flow:_ ->
      incr seen);
  Alcotest.(check int) "nothing to visit after drain" 0 !seen

(* Rebuilding a wheel by re-arming iter_pending's visit order must
   reproduce the original's entire future firing sequence — the
   correctness contract of snapshot save/restore. *)
let rebuild_prop =
  QCheck.Test.make ~count:100
    ~name:"iter_pending order rebuilds the exact firing sequence"
    QCheck.(
      make
        ~print:(fun l -> String.concat ";" (List.map string_of_int l))
        Gen.(list_size (int_range 1 120) (int_range 0 800)))
    (fun due_ticks ->
      let fires w =
        let log = ref [] in
        let w =
          match w with
          | `Fresh advance_to ->
              let w =
                Sim.Timer_wheel.create ~initial_capacity:4
                  ~on_fire:(fun ~kind ~flow -> log := (kind, flow) :: !log)
                  ()
              in
              Sim.Timer_wheel.advance w
                ~now_ns:(advance_to * Sim.Timer_wheel.tick_ns w);
              w
        in
        (w, log)
      in
      (* original: arm everything at position 3, advance partway *)
      let w1, log1 = fires (`Fresh 3) in
      let tick = Sim.Timer_wheel.tick_ns w1 in
      List.iteri
        (fun i d ->
          ignore
            (Sim.Timer_wheel.arm w1 ~due_ns:((3 + 1 + d) * tick) ~kind:(i mod 5)
               ~flow:i))
        due_ticks;
      let mid = (3 + 200) * tick in
      Sim.Timer_wheel.advance w1 ~now_ns:mid;
      let prefix = List.rev !log1 in
      (* snapshot the survivors in visit order *)
      let saved = ref [] in
      Sim.Timer_wheel.iter_pending w1 ~f:(fun ~due_ns ~kind ~flow ->
          saved := (due_ns, kind, flow) :: !saved);
      let saved = List.rev !saved in
      (* rebuild: fresh wheel advanced to the same position, re-arm *)
      let w2, log2 = fires (`Fresh (mid / tick)) in
      List.iter
        (fun (due_ns, kind, flow) ->
          ignore (Sim.Timer_wheel.arm w2 ~due_ns ~kind ~flow))
        saved;
      (* both run to the horizon of interest *)
      let horizon = (3 + 1100) * tick in
      log1 := [];
      Sim.Timer_wheel.advance w1 ~now_ns:horizon;
      Sim.Timer_wheel.advance w2 ~now_ns:horizon;
      ignore prefix;
      List.rev !log1 = List.rev !log2)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_oracle;
    QCheck_alcotest.to_alcotest qcheck_oracle_dense;
    Alcotest.test_case "iter_pending visits all; drain stales handles"
      `Quick test_iter_pending_and_drain;
    QCheck_alcotest.to_alcotest rebuild_prop;
    Alcotest.test_case "attention walk fires at exact due ticks" `Quick
      test_exact_due_firing;
    Alcotest.test_case "cancel is O(1), idempotent, generation-safe" `Quick
      test_cancel_and_handles;
    Alcotest.test_case "beyond-horizon timers park and fire (overflow)" `Quick
      test_overflow_parking;
    Alcotest.test_case "overflow timers cancel cleanly" `Quick
      test_overflow_cancel;
    Alcotest.test_case "steady-state arm/cancel allocates nothing" `Quick
      test_alloc_free_churn;
  ]
