(** Transport payload of a simulator packet. *)

type t =
  | Tcp of Tcp_header.t
  | Udp of { seq : int; payload_len : int }
      (** unreliable datagram, used by cross-traffic generators *)

val wire_size : t -> int
(** Total transport bytes (payload plus header overhead). *)

val pp : Format.formatter -> t -> unit
