(** Discrete-time PID controller in standard (ISA) form:

    {v u = Kp * ( e  +  (1/Ti) ∫e dt  +  Td de/dt ) v}

    exactly the transfer function of the paper (§3). Practical
    refinements that do not change the ideal behaviour: clamped output
    with integral anti-windup (conditional integration), and a
    first-order filter on the derivative term to tame measurement
    noise. Time is plain seconds — the controller is host-agnostic. *)

type gains = {
  kp : float;  (** proportional gain *)
  ti : float;  (** integral time, seconds; [infinity] disables I *)
  td : float;  (** derivative time, seconds; [0.] disables D *)
}

val p_only : float -> gains
val pi : kp:float -> ti:float -> gains
val pid : kp:float -> ti:float -> td:float -> gains
val pp_gains : Format.formatter -> gains -> unit

type config = {
  gains : gains;
  out_min : float;          (** lower output clamp *)
  out_max : float;          (** upper output clamp *)
  derivative_filter : float;
      (** time constant (s) of the first-order filter applied to the
          derivative term; [0.] = unfiltered *)
}

val config :
  ?out_min:float ->
  ?out_max:float ->
  ?derivative_filter:float ->
  gains ->
  config
(** Defaults: unbounded output, no derivative filtering. *)

type t

val create : config -> t

val step : t -> dt:float -> error:float -> float
(** [step t ~dt ~error] advances the controller by [dt] seconds with the
    current set-point error and returns the clamped output. [dt] must be
    positive; the first step uses no derivative (no previous error). *)

val output : t -> float
(** Last computed output (0. before the first step). *)

val integral : t -> float
(** Current integral accumulator, in error·seconds. *)

val reset : t -> unit
(** Clear integral, derivative memory and output. *)

val set_gains : t -> gains -> unit
(** Retune in place (bumpless: state is kept). *)
