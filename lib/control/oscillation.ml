type verdict =
  | Damped
  | Sustained of { period : float; amplitude : float }
  | Diverging
  | Inconclusive

(* Cycle extraction by upward zero crossings of the de-meaned signal:
   robust to sample noise that trips naive local-maximum detection. *)
let cycles ~dt samples =
  let n = Array.length samples in
  if n < 4 then []
  else begin
    let mean = Array.fold_left ( +. ) 0. samples /. float_of_int n in
    let crossings = ref [] in
    for i = 1 to n - 1 do
      if samples.(i - 1) -. mean < 0. && samples.(i) -. mean >= 0. then
        crossings := i :: !crossings
    done;
    let crossings = Array.of_list (List.rev !crossings) in
    let m = Array.length crossings in
    if m < 2 then []
    else
      List.init (m - 1) (fun k ->
          let i0 = crossings.(k) and i1 = crossings.(k + 1) in
          let hi = ref neg_infinity and lo = ref infinity in
          for i = i0 to i1 - 1 do
            if samples.(i) > !hi then hi := samples.(i);
            if samples.(i) < !lo then lo := samples.(i)
          done;
          let period = float_of_int (i1 - i0) *. dt in
          let amplitude = (!hi -. !lo) /. 2. in
          (period, amplitude))
  end

let analyze ?(settle_fraction = 0.3) ?(min_amplitude = 0.) ~dt samples =
  assert (dt > 0.);
  let n = Array.length samples in
  let skip = int_of_float (settle_fraction *. float_of_int n) in
  let tail = Array.sub samples skip (n - skip) in
  let significant =
    List.filter (fun (_, amp) -> amp >= min_amplitude) (cycles ~dt tail)
  in
  match significant with
  | [] -> Damped
  | [ _ ] | [ _; _ ] ->
      (* Fewer than 3 significant cycles: too short a window to judge. *)
      Inconclusive
  | cs ->
      let amps = List.map snd cs in
      let scale =
        List.fold_left Float.max 0. (List.map Float.abs amps) +. 1e-12
      in
      (* Ratios of successive cycle amplitudes. *)
      let rec ratios = function
        | a :: (b :: _ as rest) ->
            ((b +. (1e-9 *. scale)) /. (a +. (1e-9 *. scale))) :: ratios rest
        | [ _ ] | [] -> []
      in
      let rs = ratios amps in
      let geo =
        Float.exp
          (List.fold_left (fun acc r -> acc +. Float.log r) 0. rs
          /. float_of_int (List.length rs))
      in
      let mean_amp =
        List.fold_left ( +. ) 0. amps /. float_of_int (List.length amps)
      in
      let mean_period =
        List.fold_left ( +. ) 0. (List.map fst cs)
        /. float_of_int (List.length cs)
      in
      if geo < 0.85 then Damped
      else if geo > 1.15 then Diverging
      else Sustained { period = mean_period; amplitude = mean_amp }

let pp_verdict fmt = function
  | Damped -> Format.fprintf fmt "damped"
  | Sustained { period; amplitude } ->
      Format.fprintf fmt "sustained (T=%.4g, A=%.4g)" period amplitude
  | Diverging -> Format.fprintf fmt "diverging"
  | Inconclusive -> Format.fprintf fmt "inconclusive"
