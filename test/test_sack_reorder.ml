(* SACK scoreboard and receiver reorder buffer. *)

module Sb = Tcp.Sack_scoreboard
module Rb = Tcp.Reorder_buffer

let test_scoreboard_record () =
  let sb = Sb.create () in
  Sb.record sb ~blocks:[ (3000, 4460) ] ~una:1460;
  Alcotest.(check int) "sacked bytes" 1460 (Sb.sacked_bytes sb);
  Alcotest.(check bool) "is_sacked inside" true
    (Sb.is_sacked sb ~lo:3000 ~hi:4460);
  Alcotest.(check bool) "not sacked below" false
    (Sb.is_sacked sb ~lo:1460 ~hi:2920)

let test_scoreboard_next_hole () =
  let sb = Sb.create () in
  Sb.record sb ~blocks:[ (2920, 4380); (5840, 7300) ] ~una:1460;
  (match Sb.next_hole sb ~una:1460 ~mss:1460 with
  | Some (lo, hi) ->
      Alcotest.(check (pair int int)) "first hole" (1460, 2920) (lo, hi)
  | None -> Alcotest.fail "expected a hole");
  (* Holes are clipped to MSS. *)
  let sb2 = Sb.create () in
  Sb.record sb2 ~blocks:[ (10_000, 11_000) ] ~una:0;
  match Sb.next_hole sb2 ~una:0 ~mss:1460 with
  | Some (lo, hi) -> Alcotest.(check (pair int int)) "clipped" (0, 1460) (lo, hi)
  | None -> Alcotest.fail "expected a hole"

let test_scoreboard_no_hole_above_sack () =
  let sb = Sb.create () in
  Sb.record sb ~blocks:[ (0, 1460) ] ~una:0;
  Sb.advance_una sb 1460;
  Alcotest.(check bool) "no hole when nothing above" true
    (Sb.next_hole sb ~una:1460 ~mss:1460 = None)

let test_scoreboard_advance_una () =
  let sb = Sb.create () in
  Sb.record sb ~blocks:[ (2920, 5840) ] ~una:0;
  Sb.advance_una sb 4380;
  Alcotest.(check int) "trimmed below una" 1460 (Sb.sacked_bytes sb)

let test_scoreboard_reset () =
  let sb = Sb.create () in
  Sb.record sb ~blocks:[ (2920, 5840) ] ~una:0;
  Sb.reset sb;
  Alcotest.(check int) "cleared" 0 (Sb.sacked_bytes sb)

let test_scoreboard_holes_count () =
  let sb = Sb.create () in
  Sb.record sb ~blocks:[ (2920, 4380); (5840, 7300); (8760, 10220) ] ~una:1460;
  Alcotest.(check int) "three holes" 3 (Sb.holes sb)

let test_scoreboard_ignores_below_una () =
  let sb = Sb.create () in
  Sb.record sb ~blocks:[ (0, 1460) ] ~una:1460;
  Alcotest.(check int) "stale block discarded" 0 (Sb.sacked_bytes sb)

let test_reorder_in_order () =
  let rb = Rb.create () in
  Rb.insert rb ~expected:0 ~lo:0 ~hi:1460;
  Alcotest.(check int) "deliverable" 1460 (Rb.deliverable_up_to rb ~from:0);
  Alcotest.(check int) "no ooo" 0 (Rb.segments_out_of_order rb)

let test_reorder_gap_fill () =
  let rb = Rb.create () in
  Rb.insert rb ~expected:0 ~lo:1460 ~hi:2920;
  Alcotest.(check int) "blocked by hole" 0 (Rb.deliverable_up_to rb ~from:0);
  Alcotest.(check int) "one ooo" 1 (Rb.segments_out_of_order rb);
  Rb.insert rb ~expected:0 ~lo:0 ~hi:1460;
  Alcotest.(check int) "hole filled" 2920 (Rb.deliverable_up_to rb ~from:0)

let test_reorder_sack_blocks () =
  let rb = Rb.create () in
  Rb.insert rb ~expected:0 ~lo:2920 ~hi:4380;
  Rb.insert rb ~expected:0 ~lo:5840 ~hi:7300;
  let blocks = Rb.sack_blocks rb ~above:0 ~max_blocks:4 in
  Alcotest.(check (list (pair int int)))
    "two blocks"
    [ (2920, 4380); (5840, 7300) ]
    blocks;
  let only_one = Rb.sack_blocks rb ~above:0 ~max_blocks:1 in
  Alcotest.(check int) "max_blocks respected" 1 (List.length only_one);
  let above = Rb.sack_blocks rb ~above:3000 ~max_blocks:4 in
  Alcotest.(check (list (pair int int)))
    "clamped above"
    [ (3000, 4380); (5840, 7300) ]
    above

let test_reorder_consume () =
  let rb = Rb.create () in
  Rb.insert rb ~expected:0 ~lo:0 ~hi:2920;
  Rb.consume_below rb 1460;
  Alcotest.(check int) "buffered shrinks" 1460 (Rb.buffered_bytes rb)

(* Property: any arrival order delivers the same contiguous prefix. *)
let qcheck_reorder_any_order =
  QCheck.Test.make ~name:"reorder buffer order-insensitive" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 30) (int_bound 29))
    (fun segment_indexes ->
      let mss = 100 in
      let rb = Rb.create () in
      List.iter
        (fun i -> Rb.insert rb ~expected:0 ~lo:(i * mss) ~hi:((i + 1) * mss))
        segment_indexes;
      let distinct = List.sort_uniq compare segment_indexes in
      let rec prefix_len k = function
        | x :: rest when x = k -> prefix_len (k + 1) rest
        | _ -> k
      in
      let expected = prefix_len 0 distinct * mss in
      Rb.deliverable_up_to rb ~from:0 = expected)

let suite =
  [
    Alcotest.test_case "scoreboard record" `Quick test_scoreboard_record;
    Alcotest.test_case "scoreboard next hole" `Quick test_scoreboard_next_hole;
    Alcotest.test_case "no hole above SACK" `Quick
      test_scoreboard_no_hole_above_sack;
    Alcotest.test_case "advance una" `Quick test_scoreboard_advance_una;
    Alcotest.test_case "reset" `Quick test_scoreboard_reset;
    Alcotest.test_case "holes count" `Quick test_scoreboard_holes_count;
    Alcotest.test_case "stale blocks ignored" `Quick
      test_scoreboard_ignores_below_una;
    Alcotest.test_case "reorder in-order" `Quick test_reorder_in_order;
    Alcotest.test_case "reorder gap fill" `Quick test_reorder_gap_fill;
    Alcotest.test_case "reorder SACK blocks" `Quick test_reorder_sack_blocks;
    Alcotest.test_case "reorder consume" `Quick test_reorder_consume;
    QCheck_alcotest.to_alcotest qcheck_reorder_any_order;
  ]
