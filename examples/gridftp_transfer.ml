(* The paper's motivating workload: a large memory-to-memory transfer
   (think GridFTP between Argonne and LBNL) instrumented with a
   web100-style variable logger. Produces gridftp_web100.csv with the
   per-250ms variable samples — the kind of trace behind Figure 1.

     dune exec examples/gridftp_transfer.exe *)

let transfer_bytes = 250 * 1000 * 1000 (* 250 MB *)

let run_leg ~slow_start_name =
  let scenario = Core.Scenario.anl_lbnl () in
  let sched = scenario.Core.Scenario.sched in
  let slow_start =
    match Tcp.Slow_start.by_name slow_start_name with
    | Ok ss -> ss
    | Error e -> failwith e
  in
  let transfer =
    Workload.Bulk.start
      ~src:(Core.Scenario.sender_host scenario)
      ~dst:(Core.Scenario.receiver_host scenario)
      ~flow:1 ~ids:scenario.Core.Scenario.ids ~slow_start
      ~bytes:transfer_bytes ~name:slow_start_name ()
  in
  (* Poll the connection's web100 variables like a userland monitor. *)
  let logger =
    Web100.Logger.start sched ~period:(Sim.Time.ms 250)
      ~vars:
        [
          Web100.Kis.pkts_out; Web100.Kis.data_bytes_out;
          Web100.Kis.send_stall; Web100.Kis.congestion_signals;
          Web100.Kis.cur_cwnd; Web100.Kis.smoothed_rtt; Web100.Kis.cur_ifq;
        ]
      (Tcp.Sender.stats (Workload.Bulk.sender transfer))
  in
  Sim.Scheduler.run ~until:(Sim.Time.sec 60) sched;
  Web100.Logger.stop logger;
  (transfer, logger)

let () =
  Printf.printf "Transferring %d MB over the ANL->LBNL path...\n\n"
    (transfer_bytes / 1_000_000);
  List.iter
    (fun name ->
      let transfer, logger = run_leg ~slow_start_name:name in
      (match Workload.Bulk.completion_time transfer with
      | Some t ->
          Printf.printf "%-11s finished in %6.2f s (%6.2f Mbit/s), %d \
                         send-stalls\n"
            name (Sim.Time.to_sec t)
            (float_of_int (8 * transfer_bytes) /. Sim.Time.to_sec t /. 1e6)
            (Tcp.Sender.send_stalls (Workload.Bulk.sender transfer))
      | None ->
          Printf.printf "%-11s did not finish within 60 s (%d stalls)\n" name
            (Tcp.Sender.send_stalls (Workload.Bulk.sender transfer)));
      let path = Printf.sprintf "results/gridftp_web100_%s.csv" name in
      Report.Csv.write_string ~path (Web100.Logger.to_csv logger);
      Printf.printf "  web100 samples -> %s\n" path)
    [ "standard"; "restricted" ]
