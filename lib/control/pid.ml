type gains = { kp : float; ti : float; td : float }

let p_only kp = { kp; ti = infinity; td = 0. }
let pi ~kp ~ti = { kp; ti; td = 0. }
let pid ~kp ~ti ~td = { kp; ti; td }

let pp_gains fmt g =
  Format.fprintf fmt "Kp=%.4g Ti=%.4g Td=%.4g" g.kp g.ti g.td

type config = {
  gains : gains;
  out_min : float;
  out_max : float;
  derivative_filter : float;
}

let config ?(out_min = neg_infinity) ?(out_max = infinity)
    ?(derivative_filter = 0.) gains =
  if out_min > out_max then invalid_arg "Pid.config: out_min > out_max";
  if derivative_filter < 0. then
    invalid_arg "Pid.config: negative derivative filter";
  { gains; out_min; out_max; derivative_filter }

type t = {
  cfg : config;
  mutable g : gains;
  mutable integ : float;       (* accumulated error·dt *)
  mutable prev_error : float option;
  mutable deriv_filtered : float;
  mutable last_output : float;
}

let create cfg =
  {
    cfg;
    g = cfg.gains;
    integ = 0.;
    prev_error = None;
    deriv_filtered = 0.;
    last_output = 0.;
  }

let clamp lo hi x = Float.max lo (Float.min hi x)

let step t ~dt ~error =
  if dt <= 0. then invalid_arg "Pid.step: dt must be positive";
  let { kp; ti; td } = t.g in
  (* Derivative of the error, filtered. *)
  let raw_deriv =
    match t.prev_error with
    | None -> 0.
    | Some prev -> (error -. prev) /. dt
  in
  let deriv =
    let tau = t.cfg.derivative_filter in
    if tau <= 0. then raw_deriv
    else begin
      let alpha = dt /. (tau +. dt) in
      t.deriv_filtered <- t.deriv_filtered +. (alpha *. (raw_deriv -. t.deriv_filtered));
      t.deriv_filtered
    end
  in
  let candidate_integral = t.integ +. (error *. dt) in
  let i_term g_integ = if ti = infinity then 0. else g_integ /. ti in
  let unclamped =
    kp *. (error +. i_term candidate_integral +. (td *. deriv))
  in
  let clamped = clamp t.cfg.out_min t.cfg.out_max unclamped in
  (* Conditional integration (anti-windup): only commit the new integral
     if the output is not saturated, or if integrating would drive it
     back toward the admissible range. *)
  let saturated_high = unclamped > t.cfg.out_max and
      saturated_low = unclamped < t.cfg.out_min in
  if
    (not (saturated_high || saturated_low))
    || (saturated_high && error < 0.)
    || (saturated_low && error > 0.)
  then t.integ <- candidate_integral;
  t.prev_error <- Some error;
  t.last_output <- clamped;
  clamped

let output t = t.last_output
let integral t = t.integ

let reset t =
  t.integ <- 0.;
  t.prev_error <- None;
  t.deriv_filtered <- 0.;
  t.last_output <- 0.

let set_gains t g = t.g <- g
