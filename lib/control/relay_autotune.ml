type result = {
  critical : Tuning.critical_point;
  cycles_observed : int;
}

let tune ~plant ~setpoint ~relay_amplitude ~dt ~horizon ?(hysteresis = 0.) ()
    =
  if relay_amplitude <= 0. then Error "relay amplitude must be positive"
  else begin
    let step = plant () in
    let n = int_of_float (Float.ceil (horizon /. dt)) in
    let samples = Array.make n 0. in
    let y = ref 0. in
    let relay = ref relay_amplitude in
    for i = 0 to n - 1 do
      let error = setpoint -. !y in
      (* Relay with hysteresis: switch only when the error leaves the
         dead band on the opposite side. *)
      if error > hysteresis then relay := relay_amplitude
      else if error < -.hysteresis then relay := -.relay_amplitude;
      y := step ~dt ~u:!relay;
      samples.(i) <- !y
    done;
    match
      Oscillation.analyze ~settle_fraction:0.4
        ~min_amplitude:(0.02 *. Float.abs setpoint)
        ~dt samples
    with
    | Oscillation.Sustained { period; amplitude } ->
        if amplitude <= 0. then Error "limit cycle has zero amplitude"
        else begin
          let ku = 4. *. relay_amplitude /. (Float.pi *. amplitude) in
          let observed =
            int_of_float (0.6 *. horizon /. Float.max period dt)
          in
          Ok
            {
              critical = { Tuning.kc = ku; tc = period };
              cycles_observed = observed;
            }
        end
    | Oscillation.Damped -> Error "no limit cycle: response damped"
    | Oscillation.Diverging -> Error "relay loop diverged"
    | Oscillation.Inconclusive ->
        Error "fewer than three limit cycles observed"
  end
