(* Tcp.Policy registry units plus differential tests: the standard and
   restricted controllers, re-expressed as registry policies, must
   replay byte-identical runs against the legacy slow_start/cong_avoid
   spec fields on the experiment shapes (E5 bottleneck, E8 friendliness,
   E11 parallel streams). *)

module Spec = Core.Spec

let sec = Sim.Time.sec
let ms = Sim.Time.ms

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* --- registry units ---------------------------------------------------- *)

let builtin_names =
  [
    "standard"; "restricted"; "restricted-adaptive"; "hystart-cubic";
    "ssthreshless"; "relentless"; "fast"; "small-rtt";
  ]

let test_registry_names () =
  let names = Tcp.Policy.names () in
  List.iter
    (fun n ->
      Alcotest.(check bool) (Printf.sprintf "%s registered" n) true
        (List.mem n names))
    builtin_names;
  Alcotest.(check bool) "at least five policies" true (List.length names >= 5);
  List.iter
    (fun (n, doc) ->
      Alcotest.(check bool) (n ^ " has a doc line") true
        (String.length doc > 0))
    (Tcp.Policy.docs ())

let test_by_name_fresh_instances () =
  List.iter
    (fun n ->
      match (Tcp.Policy.by_name n, Tcp.Policy.by_name n) with
      | Ok a, Ok b ->
          Alcotest.(check string) "name matches" n a.Tcp.Policy.name;
          (* Controllers carry per-connection state: two lookups must
             never share policy records. *)
          Alcotest.(check bool) "fresh slow-start" false
            (a.Tcp.Policy.slow_start == b.Tcp.Policy.slow_start);
          Alcotest.(check bool) "fresh cong-avoid" false
            (a.Tcp.Policy.cong_avoid == b.Tcp.Policy.cong_avoid)
      | _ -> Alcotest.failf "by_name %S failed" n)
    builtin_names

let test_by_name_unknown () =
  match Tcp.Policy.by_name "bogus" with
  | Ok _ -> Alcotest.fail "bogus accepted"
  | Error e ->
      Alcotest.(check bool) "error names the policy" true
        (String.length e > 0
        && contains e "bogus"
        && contains e "standard")

let test_restricted_config_threads () =
  (* A custom PID tuning must reach the restricted policy's controller:
     with max_step_segments = 0 the window can never move. *)
  let config =
    {
      Tcp.Slow_start.default_restricted_config with
      Tcp.Slow_start.max_step_segments = 0.;
    }
  in
  let p =
    match Tcp.Policy.by_name ~restricted_config:config "restricted" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let mss = 1460 in
  let now = ref Sim.Time.zero in
  let cwnd = ref (2. *. float_of_int mss) in
  let snd_nxt = ref (2 * mss) in
  let view : Tcp.Slow_start.view =
    {
      Tcp.Slow_start.now = (fun () -> !now);
      mss;
      cwnd = (fun () -> !cwnd);
      ssthresh = (fun () -> infinity);
      flight = (fun () -> !snd_nxt);
      snd_una = (fun () -> 0);
      snd_nxt = (fun () -> !snd_nxt);
      srtt = (fun () -> None);
      min_rtt = (fun () -> None);
      ifq_occupancy = (fun () -> 0);
      ifq_capacity = (fun () -> 100);
    }
  in
  for i = 1 to 50 do
    now := ms (2 * i);
    let d =
      p.Tcp.Policy.slow_start.Tcp.Slow_start.on_ack view ~newly_acked:mss
        ~rtt_sample:None
    in
    Alcotest.(check (float 0.)) "zero-step tuning freezes the window" 0.
      d.Tcp.Slow_start.cwnd_delta
  done

let test_register_and_duplicate () =
  Tcp.Policy.register ~name:"zoo-test" ~doc:"registry extension probe"
    (fun _ ->
      {
        Tcp.Policy.name = "zoo-test";
        doc = "registry extension probe";
        slow_start = Tcp.Slow_start.standard ();
        cong_avoid = Tcp.Cong_avoid.reno ();
        pace_gains = None;
      });
  Alcotest.(check bool) "appended" true
    (List.mem "zoo-test" (Tcp.Policy.names ()));
  (match Tcp.Policy.by_name "zoo-test" with
  | Ok p -> Alcotest.(check string) "resolves" "zoo-test" p.Tcp.Policy.name
  | Error e -> Alcotest.fail e);
  match
    Tcp.Policy.register ~name:"zoo-test" ~doc:"dup" (fun _ ->
        match Tcp.Policy.by_name "standard" with
        | Ok p -> p
        | Error e -> invalid_arg e)
  with
  | () -> Alcotest.fail "duplicate registration accepted"
  | exception Invalid_argument _ -> ()

let test_small_rtt_scaling () =
  (* The registered bundle resolves, and its avoidance rule scales the
     additive increase linearly with srtt below the 25 ms reference
     while matching Reno at and above it. *)
  (match Tcp.Policy.by_name "small-rtt" with
  | Ok p ->
      Alcotest.(check string) "bundle resolves" "small-rtt"
        p.Tcp.Policy.cong_avoid.Tcp.Cong_avoid.name
  | Error e -> Alcotest.fail e);
  let mss = 1460 in
  let m = float_of_int mss in
  let cwnd = 20. *. m in
  let cc = Tcp.Cong_avoid.small_rtt () in
  let step srtt =
    cc.Tcp.Cong_avoid.on_ack ~newly_acked:mss ~cwnd ~mss ~srtt:(Some srtt)
      ~min_rtt:(Some srtt) ~now:Sim.Time.zero
    -. cwnd
  in
  let reno_step = m *. m /. cwnd in
  Alcotest.(check (float 1e-9)) "at the reference RTT: Reno" reno_step
    (step (ms 25));
  Alcotest.(check (float 1e-9)) "above the reference RTT: Reno" reno_step
    (step (ms 100));
  Alcotest.(check (float 1e-9)) "at srtt = ref/5 the step is a fifth"
    (reno_step /. 5.) (step (ms 5));
  Alcotest.(check (float 1e-9))
    "no estimate yet: falls back to Reno" reno_step
    (cc.Tcp.Cong_avoid.on_ack ~newly_acked:mss ~cwnd ~mss ~srtt:None
       ~min_rtt:None ~now:Sim.Time.zero
    -. cwnd)

(* --- spec integration -------------------------------------------------- *)

let test_spec_rejects_unknown_policy () =
  let spec =
    {
      Spec.default with
      Spec.flows =
        [ { Spec.default_flow with Spec.policy = Some "no-such-policy" } ];
    }
  in
  match Spec.build spec with
  | _ -> Alcotest.fail "unknown policy accepted"
  | exception Invalid_argument _ -> ()

let test_spec_rejects_policy_with_shared_rss () =
  let spec =
    {
      Spec.default with
      Spec.flows =
        [
          {
            Spec.default_flow with
            Spec.policy = Some "standard";
            shared_rss = true;
          };
        ];
    }
  in
  match Spec.build spec with
  | _ -> Alcotest.fail "policy + shared_rss accepted"
  | exception Invalid_argument _ -> ()

let test_flow_policy_json_round_trip () =
  let spec =
    {
      Spec.default with
      Spec.name = "policy-json";
      Spec.flows =
        [
          { Spec.default_flow with Spec.policy = Some "relentless" };
          Spec.default_flow;
        ];
    }
  in
  let text = Report.Json.to_string (Spec.to_json spec) in
  match Report.Json.of_string text with
  | Error e -> Alcotest.failf "re-parse failed: %s" e
  | Ok json -> (
      match Spec.of_json json with
      | Error e -> Alcotest.failf "of_json failed: %s" e
      | Ok spec' ->
          Alcotest.(check bool) "round-trips" true (spec = spec');
          Alcotest.(check bool) "policy carried" true
            ((List.hd spec'.Spec.flows).Spec.policy = Some "relentless"))

(* --- differential replay: policy path vs legacy fields ----------------- *)

(* Byte-level fingerprint of an outcome: every scalar counter plus the
   full cwnd time series, rendered through the round-trip CSV float
   format. Equal fingerprints mean the refactor replayed the exact
   window trajectory. *)
let fingerprint (o : Spec.outcome) =
  let series s =
    Sim.Stats.Series.values s |> Array.to_list
    |> List.map Report.Csv.cell |> String.concat ";"
  in
  List.map
    (fun (r : Spec.flow_result) ->
      Printf.sprintf "%s|%s|%s|%d|%d|%d|%d|%s|cwnd:%s|tput:%s" r.Spec.label
        (Report.Csv.cell r.Spec.goodput_mbps)
        (Report.Csv.cell r.Spec.final_cwnd_segments)
        r.Spec.send_stalls r.Spec.congestion_signals r.Spec.retransmits
        r.Spec.timeouts
        (Report.Csv.cell r.Spec.mean_ifq)
        (series r.Spec.cwnd_series)
        (series r.Spec.throughput_series))
    o.Spec.results

let check_differential ~what ~legacy ~policy =
  let lhs = fingerprint (Spec.run legacy) in
  let rhs = fingerprint (Spec.run policy) in
  Alcotest.(check (list string)) what lhs rhs;
  (* Guard against an accidentally empty comparison. *)
  Alcotest.(check bool) (what ^ ": flows present") true (lhs <> [])

(* E5's bottleneck shape: 1-pair dumbbell, fast access links into a
   100 Mbit/s, 28 ms bottleneck with a quarter-BDP buffer. *)
let e5_topology =
  let rate = Sim.Units.mbps 100. in
  let bdp =
    Sim.Units.bdp_packets rate ~rtt:(ms 60) ~packet_bytes:1500
  in
  Spec.Dumbbell
    {
      Spec.pairs = 1;
      access_rate = Sim.Units.gbps 1.;
      access_delay = ms 1;
      bottleneck_rate = rate;
      bottleneck_delay = ms 28;
      buffer_packets = Stdlib.max 10 (int_of_float (bdp /. 4.));
      host_ifq_capacity = 1000;
      red = None;
    }

(* E8's friendliness shape: two pairs through a shared 100 Mbit/s
   bottleneck. *)
let e8_topology =
  Spec.Dumbbell
    {
      Spec.pairs = 2;
      access_rate = Sim.Units.mbps 100.;
      access_delay = ms 1;
      bottleneck_rate = Sim.Units.mbps 100.;
      bottleneck_delay = ms 28;
      buffer_packets = 250;
      host_ifq_capacity = 100;
      red = None;
    }

let diff_spec ~name ~seed ~duration topology flows =
  {
    Spec.default with
    Spec.name;
    seed;
    duration;
    record_series = true;
    topology;
    flows;
  }

let legacy_flow ?(pair = 0) ?start_at name =
  {
    Spec.default_flow with
    Spec.pair;
    start_at =
      (match start_at with Some t -> t | None -> Sim.Time.zero);
    slow_start = name;
  }

let policy_flow ?(pair = 0) ?start_at name =
  {
    Spec.default_flow with
    Spec.pair;
    start_at =
      (match start_at with Some t -> t | None -> Sim.Time.zero);
    policy = Some name;
  }

let test_differential_e5 () =
  List.iter
    (fun name ->
      check_differential
        ~what:(Printf.sprintf "E5 bottleneck, %s" name)
        ~legacy:
          (diff_spec ~name:"e5-legacy" ~seed:7 ~duration:(sec 3) e5_topology
             [ legacy_flow name ])
        ~policy:
          (diff_spec ~name:"e5-policy" ~seed:7 ~duration:(sec 3) e5_topology
             [ policy_flow name ]))
    [ "standard"; "restricted" ]

let test_differential_e8 () =
  (* E8's mixed pairing: standard on pair 0, restricted joining on
     pair 1 — both flows must replay exactly. *)
  check_differential ~what:"E8 friendliness pair"
    ~legacy:
      (diff_spec ~name:"e8-legacy" ~seed:23 ~duration:(sec 3) e8_topology
         [
           legacy_flow "standard";
           legacy_flow ~pair:1 ~start_at:(sec 1) "restricted";
         ])
    ~policy:
      (diff_spec ~name:"e8-policy" ~seed:23 ~duration:(sec 3) e8_topology
         [
           policy_flow "standard";
           policy_flow ~pair:1 ~start_at:(sec 1) "restricted";
         ])

let test_differential_e11 () =
  (* E11's parallel-stream shape: three restricted flows sharing the
     paper duplex. *)
  let flows mk = List.init 3 (fun _ -> mk "restricted") in
  check_differential ~what:"E11 parallel streams"
    ~legacy:
      (diff_spec ~name:"e11-legacy" ~seed:4 ~duration:(sec 3)
         (Spec.Duplex Spec.default_duplex)
         (flows (fun n -> legacy_flow n)))
    ~policy:
      (diff_spec ~name:"e11-policy" ~seed:4 ~duration:(sec 3)
         (Spec.Duplex Spec.default_duplex)
         (flows (fun n -> policy_flow n)))

(* Every registered policy must drive a clean paper-path run to a sane
   outcome: bytes flow and the window respects the 2-segment floor. *)
let test_all_policies_run () =
  List.iter
    (fun name ->
      let spec =
        diff_spec
          ~name:("zoo-smoke__" ^ name)
          ~seed:1 ~duration:(sec 2)
          (Spec.Duplex Spec.default_duplex)
          [ policy_flow name ]
      in
      let o = Spec.run { spec with Spec.record_series = false } in
      let r = List.hd o.Spec.results in
      Alcotest.(check bool) (name ^ " moves data") true
        (r.Spec.goodput_mbps > 0.1);
      Alcotest.(check bool) (name ^ " respects the window floor") true
        (r.Spec.final_cwnd_segments >= 2.))
    (Tcp.Policy.names ())

let suite =
  [
    Alcotest.test_case "registry names and docs" `Quick test_registry_names;
    Alcotest.test_case "by_name returns fresh instances" `Quick
      test_by_name_fresh_instances;
    Alcotest.test_case "by_name rejects unknown" `Quick test_by_name_unknown;
    Alcotest.test_case "restricted_config reaches the controller" `Quick
      test_restricted_config_threads;
    Alcotest.test_case "register appends, rejects duplicates" `Quick
      test_register_and_duplicate;
    Alcotest.test_case "small-rtt scales the additive increase" `Quick
      test_small_rtt_scaling;
    Alcotest.test_case "spec rejects unknown policy" `Quick
      test_spec_rejects_unknown_policy;
    Alcotest.test_case "spec rejects policy + shared_rss" `Quick
      test_spec_rejects_policy_with_shared_rss;
    Alcotest.test_case "flow policy JSON round-trip" `Quick
      test_flow_policy_json_round_trip;
    Alcotest.test_case "differential replay: E5 bottleneck" `Quick
      test_differential_e5;
    Alcotest.test_case "differential replay: E8 friendliness" `Quick
      test_differential_e8;
    Alcotest.test_case "differential replay: E11 parallel streams" `Quick
      test_differential_e11;
    Alcotest.test_case "every policy completes a paper-path run" `Quick
      test_all_policies_run;
  ]
