(* PID, plants, oscillation detection, ZN and relay autotuning. *)

let close ?(eps = 1e-6) name expected actual =
  Alcotest.(check (float eps)) name expected actual

let test_p_only_proportional () =
  let pid = Control.Pid.create (Control.Pid.config (Control.Pid.p_only 2.)) in
  close "P output" 6. (Control.Pid.step pid ~dt:0.1 ~error:3.);
  close "P output follows error" (-4.) (Control.Pid.step pid ~dt:0.1 ~error:(-2.));
  close "output accessor" (-4.) (Control.Pid.output pid)

let test_integral_accumulates () =
  let pid =
    Control.Pid.create
      (Control.Pid.config (Control.Pid.pi ~kp:1. ~ti:1.))
  in
  (* Constant error 1: after n steps of dt, I-term = n·dt. *)
  let out1 = Control.Pid.step pid ~dt:0.5 ~error:1. in
  close "first step: P=1, I=0.5" 1.5 out1;
  let out2 = Control.Pid.step pid ~dt:0.5 ~error:1. in
  close "second step: P=1, I=1.0" 2. out2;
  close "integral accessor" 1. (Control.Pid.integral pid)

let test_derivative_kicks () =
  let pid =
    Control.Pid.create
      (Control.Pid.config (Control.Pid.pid ~kp:1. ~ti:infinity ~td:1.))
  in
  ignore (Control.Pid.step pid ~dt:1. ~error:0.);
  (* Error jumps 0 -> 2 over dt=1: derivative = 2, output = 2 + 1·2. *)
  close "derivative term" 4. (Control.Pid.step pid ~dt:1. ~error:2.)

let test_output_clamp_and_antiwindup () =
  let pid =
    Control.Pid.create
      (Control.Pid.config ~out_min:(-1.) ~out_max:1.
         (Control.Pid.pi ~kp:1. ~ti:0.1))
  in
  for _ = 1 to 100 do
    let o = Control.Pid.step pid ~dt:0.1 ~error:10. in
    if o > 1. || o < -1. then Alcotest.failf "clamp violated: %f" o
  done;
  (* Anti-windup: the integral must not have grown unboundedly; on error
     reversal the output should leave saturation quickly. *)
  let recovered = ref false in
  for _ = 1 to 5 do
    if Control.Pid.step pid ~dt:0.1 ~error:(-10.) < 1. then recovered := true
  done;
  Alcotest.(check bool) "desaturates promptly" true !recovered

let test_reset () =
  let pid =
    Control.Pid.create (Control.Pid.config (Control.Pid.pi ~kp:1. ~ti:1.))
  in
  ignore (Control.Pid.step pid ~dt:1. ~error:5.);
  Control.Pid.reset pid;
  close "integral cleared" 0. (Control.Pid.integral pid);
  close "output cleared" 0. (Control.Pid.output pid)

let test_invalid_config () =
  Alcotest.check_raises "out_min > out_max"
    (Invalid_argument "Pid.config: out_min > out_max") (fun () ->
      ignore
        (Control.Pid.config ~out_min:1. ~out_max:0. (Control.Pid.p_only 1.)));
  let pid = Control.Pid.create (Control.Pid.config (Control.Pid.p_only 1.)) in
  Alcotest.check_raises "non-positive dt"
    (Invalid_argument "Pid.step: dt must be positive") (fun () ->
      ignore (Control.Pid.step pid ~dt:0. ~error:1.))

(* --- plants ----------------------------------------------------------- *)

let test_first_order_step_response () =
  let p = Control.Plant.first_order ~gain:2. ~tau:1. in
  (* Step input u=1: y(t) = 2(1 - e^{-t}). *)
  let y = ref 0. in
  for _ = 1 to 100 do
    y := Control.Plant.step p ~dt:0.01 ~u:1.
  done;
  close ~eps:0.02 "y(1) = 2(1-1/e)" (2. *. (1. -. Float.exp (-1.))) !y;
  for _ = 1 to 900 do
    y := Control.Plant.step p ~dt:0.01 ~u:1.
  done;
  close ~eps:0.01 "settles at static gain" 2. !y

let test_integrator () =
  let p = Control.Plant.integrator ~gain:3. in
  ignore (Control.Plant.step p ~dt:0.5 ~u:2.);
  close "integrates u·dt·gain" 3. (Control.Plant.output p);
  Control.Plant.reset p;
  close "reset" 0. (Control.Plant.output p)

let test_dead_time () =
  let p =
    Control.Plant.first_order_dead_time ~gain:1. ~tau:0.05 ~dead_time:0.5
      ~dt_hint:0.1
  in
  (* Until the dead time elapses the output barely moves. *)
  let y_early = ref 0. in
  for _ = 1 to 4 do
    y_early := Control.Plant.step p ~dt:0.1 ~u:1.
  done;
  Alcotest.(check bool) "silent during dead time" true (!y_early < 0.05);
  let y_late = ref 0. in
  for _ = 1 to 20 do
    y_late := Control.Plant.step p ~dt:0.1 ~u:1.
  done;
  Alcotest.(check bool) "responds after dead time" true (!y_late > 0.9)

let test_second_order_overshoot () =
  let p = Control.Plant.second_order ~gain:1. ~omega:10. ~zeta:0.2 in
  let peak = ref 0. in
  for _ = 1 to 2000 do
    let y = Control.Plant.step p ~dt:0.001 ~u:1. in
    if y > !peak then peak := y
  done;
  (* ζ=0.2 → overshoot ≈ 52.7 %. *)
  Alcotest.(check bool) "underdamped overshoot" true
    (!peak > 1.3 && !peak < 1.7)

(* --- oscillation detection -------------------------------------------- *)

let sine ~amp ~period ~decay n dt =
  Array.init n (fun i ->
      let t = float_of_int i *. dt in
      amp *. Float.exp (decay *. t) *. Float.sin (2. *. Float.pi *. t /. period))

let test_detect_sustained () =
  let samples = sine ~amp:5. ~period:1. ~decay:0. 2000 0.01 in
  match Control.Oscillation.analyze ~dt:0.01 samples with
  | Control.Oscillation.Sustained { period; amplitude } ->
      close ~eps:0.05 "period" 1. period;
      Alcotest.(check bool) "amplitude" true (Float.abs (amplitude -. 5.) < 0.5)
  | v ->
      Alcotest.failf "expected sustained, got %a" Control.Oscillation.pp_verdict
        v |> ignore

let test_detect_damped () =
  let samples = sine ~amp:5. ~period:1. ~decay:(-0.5) 2000 0.01 in
  match Control.Oscillation.analyze ~dt:0.01 samples with
  | Control.Oscillation.Damped -> ()
  | v ->
      Alcotest.failf "expected damped, got %a" Control.Oscillation.pp_verdict v
      |> ignore

let test_detect_diverging () =
  let samples = sine ~amp:0.5 ~period:1. ~decay:0.4 2000 0.01 in
  match Control.Oscillation.analyze ~dt:0.01 samples with
  | Control.Oscillation.Diverging -> ()
  | v ->
      Alcotest.failf "expected diverging, got %a" Control.Oscillation.pp_verdict
        v |> ignore

let test_min_amplitude_filters_noise () =
  let samples =
    Array.init 2000 (fun i -> if i mod 2 = 0 then 0.1 else -0.1)
  in
  match Control.Oscillation.analyze ~min_amplitude:1. ~dt:0.01 samples with
  | Control.Oscillation.Damped -> ()
  | v ->
      Alcotest.failf "noise should read damped, got %a"
        Control.Oscillation.pp_verdict v |> ignore

let test_flat_signal () =
  let samples = Array.make 100 3. in
  match Control.Oscillation.analyze ~dt:0.01 samples with
  | Control.Oscillation.Damped -> ()
  | v ->
      Alcotest.failf "flat should be damped, got %a"
        Control.Oscillation.pp_verdict v |> ignore

(* --- tuning rules ------------------------------------------------------ *)

let test_tuning_rules () =
  let c = { Control.Tuning.kc = 10.; tc = 2. } in
  let paper = Control.Tuning.paper_pid c in
  close "paper Kp" 3.3 paper.Control.Pid.kp;
  close "paper Ti" 1. paper.Control.Pid.ti;
  close "paper Td" 0.66 paper.Control.Pid.td;
  let zn = Control.Tuning.zn_pid c in
  close "zn Kp" 6. zn.Control.Pid.kp;
  close "zn Ti" 1. zn.Control.Pid.ti;
  close "zn Td" 0.25 zn.Control.Pid.td;
  let p = Control.Tuning.zn_p c in
  close "zn-P Kp" 5. p.Control.Pid.kp;
  Alcotest.(check bool) "zn-P disables I" true (p.Control.Pid.ti = infinity)

(* --- Ziegler–Nichols on a known plant ---------------------------------- *)

(* FOPDT: P-control goes unstable at a finite gain, the textbook ZN
   subject. gain 1, tau 1, dead time 0.4: Kc ≈ 4.1, Tc ≈ 1.5 or so. *)
let fopdt () =
  let p =
    Control.Plant.first_order_dead_time ~gain:1. ~tau:1. ~dead_time:0.4
      ~dt_hint:0.02
  in
  fun ~dt ~u -> Control.Plant.step p ~dt ~u

let test_zn_finds_critical_point () =
  match
    Control.Ziegler_nichols.ultimate_gain ~plant:fopdt ~setpoint:1. ~dt:0.02
      ~horizon:40. ()
  with
  | Error e -> Alcotest.failf "ZN failed: %s" e
  | Ok r ->
      let { Control.Tuning.kc; tc } = r.Control.Ziegler_nichols.critical in
      Alcotest.(check bool) "Kc in plausible range" true (kc > 2. && kc < 8.);
      Alcotest.(check bool) "Tc in plausible range" true (tc > 0.8 && tc < 2.5);
      Alcotest.(check bool) "probes recorded" true
        (List.length r.Control.Ziegler_nichols.runs > 3)

let test_zn_tuned_loop_is_stable () =
  match
    Control.Ziegler_nichols.ultimate_gain ~plant:fopdt ~setpoint:1. ~dt:0.02
      ~horizon:40. ()
  with
  | Error e -> Alcotest.failf "ZN failed: %s" e
  | Ok r ->
      let gains = Control.Tuning.zn_pid r.Control.Ziegler_nichols.critical in
      let pid = Control.Pid.create (Control.Pid.config gains) in
      let plant = fopdt () in
      let y = ref 0. in
      let worst_late_error = ref 0. in
      for i = 1 to 3000 do
        let u = Control.Pid.step pid ~dt:0.02 ~error:(1. -. !y) in
        y := plant ~dt:0.02 ~u;
        if i > 2500 then
          worst_late_error := Float.max !worst_late_error (Float.abs (1. -. !y))
      done;
      Alcotest.(check bool) "settles near set point" true
        (!worst_late_error < 0.2)

let test_zn_no_instability_error () =
  (* A first-order plant under P control only destabilizes through the
     sampling period itself (around kp ≈ 2·tau/dt = 40 here); capping
     the sweep below that must yield a clean "no instability" error. *)
  let plant () =
    let p = Control.Plant.first_order ~gain:1. ~tau:1. in
    fun ~dt ~u -> Control.Plant.step p ~dt ~u
  in
  match
    Control.Ziegler_nichols.ultimate_gain ~plant ~setpoint:1. ~dt:0.05
      ~horizon:20. ~kp_max:20. ()
  with
  | Error _ -> ()
  | Ok r ->
      Alcotest.failf "expected failure, got Kc=%f"
        r.Control.Ziegler_nichols.critical.Control.Tuning.kc

let test_relay_autotune () =
  (* The relay must be able to overshoot the set point: with static gain
     1 and amplitude 1, a set point of 0.5 leaves room on both sides. *)
  match
    Control.Relay_autotune.tune ~plant:fopdt ~setpoint:0.5 ~relay_amplitude:1.
      ~dt:0.02 ~horizon:60. ()
  with
  | Error e -> Alcotest.failf "relay failed: %s" e
  | Ok r ->
      let { Control.Tuning.kc; tc } = r.Control.Relay_autotune.critical in
      (* The describing function approximates the true critical point. *)
      Alcotest.(check bool) "Ku plausible" true (kc > 1.5 && kc < 10.);
      Alcotest.(check bool) "Tu plausible" true (tc > 0.5 && tc < 3.)

let suite =
  [
    Alcotest.test_case "P proportionality" `Quick test_p_only_proportional;
    Alcotest.test_case "I accumulates" `Quick test_integral_accumulates;
    Alcotest.test_case "D kicks on change" `Quick test_derivative_kicks;
    Alcotest.test_case "clamp + anti-windup" `Quick
      test_output_clamp_and_antiwindup;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "invalid config" `Quick test_invalid_config;
    Alcotest.test_case "first-order step response" `Quick
      test_first_order_step_response;
    Alcotest.test_case "integrator" `Quick test_integrator;
    Alcotest.test_case "dead time" `Quick test_dead_time;
    Alcotest.test_case "second-order overshoot" `Quick
      test_second_order_overshoot;
    Alcotest.test_case "detect sustained" `Quick test_detect_sustained;
    Alcotest.test_case "detect damped" `Quick test_detect_damped;
    Alcotest.test_case "detect diverging" `Quick test_detect_diverging;
    Alcotest.test_case "min_amplitude filters noise" `Quick
      test_min_amplitude_filters_noise;
    Alcotest.test_case "flat signal" `Quick test_flat_signal;
    Alcotest.test_case "tuning rules" `Quick test_tuning_rules;
    Alcotest.test_case "ZN finds critical point" `Slow
      test_zn_finds_critical_point;
    Alcotest.test_case "ZN-tuned loop stable" `Slow test_zn_tuned_loop_is_stable;
    Alcotest.test_case "ZN reports no instability" `Quick
      test_zn_no_instability_error;
    Alcotest.test_case "relay autotune" `Slow test_relay_autotune;
  ]
