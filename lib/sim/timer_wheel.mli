(** Hierarchical timing wheel for the per-flow timer regime.

    Four levels of 256 slots over a power-of-two tick (default 65.536
    µs): arm, cancel and re-arm are O(1) and allocate zero minor words —
    the structure is flat int arrays with intrusive slot lists and
    packed integer handles, like {!Event_queue}. The heap remains the
    right home for sparse, far-future or non-quantized events; the
    wheel serves dense per-flow RTO/pacing/round timers, where a
    million concurrent timers churn without any per-timer heap object
    or closure.

    Due times are quantized: a timer requested for [due_ns] fires at
    [due_ns] rounded {e up} to the next tick boundary. Timers sharing a
    quantized due tick fire in arm order (FIFO), matching the event
    heap's (time, sequence) order — the model-based test suite checks
    this equivalence under random arm/cancel/advance interleavings.

    Timers carry two small integer payloads ([kind], [flow]) and fire
    through the single [on_fire] callback given at creation: dispatch
    allocates nothing and holds no per-timer closure. *)

type t

type handle = private int
(** Packed (generation, node) token. Stale handles — fired or cancelled
    — are inert. Only meaningful to the wheel that issued it. *)

val null : handle
(** Inert handle: {!cancel} ignores it, {!is_pending} is [false]. *)

val create :
  ?tick_ns:int ->
  ?initial_capacity:int ->
  on_fire:(kind:int -> flow:int -> unit) ->
  unit ->
  t
(** [tick_ns] must be a positive power of two (default 65536 ≈ 65.5 µs,
    giving a 2^32-tick ≈ 78-hour horizon). [on_fire] receives every
    expiring timer's payload. *)

val arm : t -> due_ns:int -> kind:int -> flow:int -> handle
(** Schedule a firing at [due_ns] rounded up to the tick. A due time at
    or before the wheel's current position fires on the next
    {!advance}. A due time beyond the wheel horizon (≈78 h ahead, e.g. a
    backoff-inflated RTO) is parked in an overflow list and re-homed
    onto the wheel by the top-level cascade once it comes within range —
    it still fires at its (quantized) due time, though FIFO order
    against in-range timers sharing the same due tick is not guaranteed
    across the overflow boundary. Raises [Invalid_argument] only on a
    negative due time. *)

val cancel : t -> handle -> unit
(** O(1), idempotent, allocation-free. *)

val is_pending : t -> handle -> bool

val next_due_ns : t -> int
(** Next {e attention} time, or [-1] when no timer is pending: either
    the exact (quantized) due time of the earliest timer, or an earlier
    cascade boundary where the wheel must re-home a slot. Advancing to
    attention points repeatedly fires every timer at exactly its due
    tick; an advance to a pure cascade point fires nothing. Cached;
    recomputed lazily after fires and min-cancellations. *)

val advance : t -> now_ns:int -> unit
(** Move the wheel to [now_ns], firing (in due order, FIFO within a
    tick) every timer whose quantized due time is [<= now_ns]. Time
    never moves backwards; an [advance] into the past is a no-op. *)

val pending : t -> int
(** Armed, not-yet-fired timers. O(1). *)

val iter_pending :
  t -> f:(due_ns:int -> kind:int -> flow:int -> unit) -> unit
(** Visit every armed timer without disturbing it: level-major slot
    order, FIFO (arm order) within a slot. [due_ns] is the quantized due
    time ([due_tick × tick_ns]). Because a due tick maps to exactly one
    slot for a fixed wheel position, re-{!arm}ing the visited timers in
    visit order into a wheel advanced to the same position rebuilds
    every slot list — and therefore every future firing order —
    exactly; this is the snapshot serialization order. Do not arm or
    cancel from [f]. *)

val drain : t -> unit
(** Remove every armed timer without firing it. All outstanding handles
    become stale. Used by snapshot restore before re-arming. *)

val tick_ns : t -> int
val horizon_ns : t -> int
(** Last representable due time from the current position. *)

val now_tick : t -> int
(** Current position in ticks (testing hook). *)
