type handle = Event_queue.handle

type t = {
  mutable clock : Time.t;
  events : Event_queue.t;
  random : Rng.t;
  seed : int;
  mutable derived_streams : int;
  mutable tracer : Trace.t option;
  mutable wheels : Timer_wheel.t array;
}

let create ?(seed = 1) () =
  {
    clock = Time.zero;
    events = Event_queue.create ();
    random = Rng.of_seed seed;
    seed;
    derived_streams = 0;
    tracer = None;
    wheels = [||];
  }

(* Attach order is model-construction order, hence deterministic; it is
   the tie-break when several wheels share an attention time (sharded
   many_flows engines each own a wheel but never interact, so the order
   among them is observationally irrelevant — it only has to be fixed). *)
let attach_wheel t w = t.wheels <- Array.append t.wheels [| w |]
let wheel t = if Array.length t.wheels = 0 then None else Some t.wheels.(0)

let set_tracer t tr = t.tracer <- tr
let tracer t = t.tracer

let now t = t.clock
let rng t = t.random
let seed t = t.seed

(* Streams are numbered in creation order, which is deterministic for a
   given model construction, so a component that asks for its own stream
   gets the same one on every run with the same seed — without consuming
   any draws from the shared {!rng} stream. *)
let derive_rng t =
  let stream = t.derived_streams in
  t.derived_streams <- stream + 1;
  Rng.of_seed (Rng.derive_seed ~root:t.seed ~stream)

let at ?birth t time action =
  if Time.(time < t.clock) then
    invalid_arg
      (Format.asprintf "Scheduler.at: %a is before now (%a)" Time.pp time
         Time.pp t.clock);
  let birth = match birth with Some b -> b | None -> t.clock in
  Event_queue.add_born t.events ~birth ~time action

let after t delay action =
  let delay = Time.max delay Time.zero in
  Event_queue.add_born t.events ~birth:t.clock
    ~time:(Time.add t.clock delay) action

(* One [tick] closure per periodic timer, re-armed for its whole
   lifetime: a periodic sampler allocates nothing per occurrence. *)
let every t ?start period action =
  assert (Time.is_positive period);
  let first =
    match start with Some s -> s | None -> Time.add t.clock period
  in
  let cell = ref Event_queue.null in
  let next = ref first in
  let rec tick () =
    action ();
    next := Time.add !next period;
    cell := Event_queue.add_born t.events ~birth:t.clock ~time:!next tick
  in
  cell := Event_queue.add_born t.events ~birth:t.clock ~time:first tick;
  cell

let cancel t h = Event_queue.cancel t.events h

(* Earliest attention time across the attached wheels, clamped so the
   clock never regresses (wheels quantize to tick boundaries, which may
   fall before a mid-tick clock). -1 when none are attached or all are
   idle. Ties pick the first-attached wheel (see [attach_wheel]). *)
let wheel_arg t =
  let best = ref (-1) and best_i = ref (-1) in
  let clock_ns = Time.to_ns_int t.clock in
  for i = 0 to Array.length t.wheels - 1 do
    let ns = Timer_wheel.next_due_ns t.wheels.(i) in
    if ns >= 0 then begin
      let ns = Stdlib.max ns clock_ns in
      if !best < 0 || ns < !best then begin
        best := ns;
        best_i := i
      end
    end
  done;
  !best_i

let wheel_ns t =
  let i = wheel_arg t in
  if i < 0 then -1
  else
    Stdlib.max
      (Timer_wheel.next_due_ns t.wheels.(i))
      (Time.to_ns_int t.clock)

(* Clock-jump hook shared by snapshot restore (resume from the
   checkpoint time before any event is scheduled) and the partition
   barrier (all events below the barrier are already fired). Jumping
   over a pending event would make it fire in the past and corrupt
   causality silently, so that precondition is enforced here. *)
let restore_clock t time =
  let ns = Time.to_ns_int time in
  let check what pending_ns =
    if pending_ns >= 0 && pending_ns < ns then
      invalid_arg
        (Printf.sprintf
           "Scheduler.restore_clock: pending %s event at %d ns is earlier \
            than the new clock %d ns"
           what pending_ns ns)
  in
  check "heap" (Event_queue.next_time_ns t.events);
  check "wheel" (wheel_ns t);
  t.clock <- time

(* The run loop uses the queue's unboxed accessors: dispatching an
   event moves the clock and fires the action without allocating. The
   heap wins ties against the wheels, so attaching an idle wheel leaves
   heap-only runs byte-identical. *)
let step t =
  let ns = Event_queue.next_time_ns t.events in
  let wi = wheel_arg t in
  let wns =
    if wi < 0 then -1
    else
      Stdlib.max
        (Timer_wheel.next_due_ns t.wheels.(wi))
        (Time.to_ns_int t.clock)
  in
  if ns >= 0 && (wns < 0 || ns <= wns) then begin
    let action = Event_queue.pop_action_exn t.events in
    t.clock <- Time.of_ns_int ns;
    (match t.tracer with
    | None -> ()
    | Some tr ->
        Trace.emit tr ~time_ns:ns ~code:Trace.Code.sched_dispatch ~src:0
          ~arg1:(Event_queue.live_count t.events) ~arg2:0);
    action ();
    true
  end
  else if wns >= 0 then begin
    t.clock <- Time.of_ns_int wns;
    Timer_wheel.advance t.wheels.(wi) ~now_ns:wns;
    true
  end
  else false

let next_ns t =
  let ns = Event_queue.next_time_ns t.events in
  let wns = wheel_ns t in
  if ns >= 0 && (wns < 0 || ns <= wns) then ns else wns

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some horizon ->
      let horizon_ns = Time.to_ns_int horizon in
      let continue = ref true in
      while !continue do
        let ns = next_ns t in
        if ns >= 0 && ns <= horizon_ns then ignore (step t)
        else continue := false
      done;
      if Time.(t.clock < horizon) then t.clock <- horizon

let pending t =
  Array.fold_left
    (fun acc w -> acc + Timer_wheel.pending w)
    (Event_queue.live_count t.events)
    t.wheels
