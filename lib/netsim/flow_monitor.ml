type t = {
  sched : Sim.Scheduler.t;
  monitor_name : string;
  mutable packet_count : int;
  mutable byte_count : int;
  mutable first : Sim.Time.t option;
  mutable last : Sim.Time.t option;
  gaps : Sim.Stats.Summary.t;
}

let create sched ?(name = "flow") () =
  {
    sched;
    monitor_name = name;
    packet_count = 0;
    byte_count = 0;
    first = None;
    last = None;
    gaps = Sim.Stats.Summary.create ();
  }

let observe t pkt =
  let now = Sim.Scheduler.now t.sched in
  t.packet_count <- t.packet_count + 1;
  t.byte_count <- t.byte_count + Packet.size pkt;
  (match t.first with None -> t.first <- Some now | Some _ -> ());
  (match t.last with
  | Some prev -> Sim.Stats.Summary.add t.gaps (Sim.Time.to_sec (Sim.Time.sub now prev))
  | None -> ());
  t.last <- Some now

let wrap t handler pkt =
  observe t pkt;
  handler pkt

let name t = t.monitor_name
let packets t = t.packet_count
let bytes t = t.byte_count
let first_arrival t = t.first
let last_arrival t = t.last

let throughput_mbps t =
  match (t.first, t.last) with
  | Some a, Some b when Sim.Time.(b > a) ->
      Sim.Units.throughput_mbps ~bytes:t.byte_count
        ~elapsed:(Sim.Time.sub b a)
  | _ -> 0.

let interarrival t = t.gaps
