type t = {
  capacity : int;
  buffer : string array;
  mutable next : int;
  mutable total : int;
}

let create ?(capacity = 10_000) () =
  assert (capacity > 0);
  { capacity; buffer = Array.make capacity ""; next = 0; total = 0 }

let push t line =
  t.buffer.(t.next) <- line;
  t.next <- (t.next + 1) mod t.capacity;
  t.total <- t.total + 1

let record t ~now line =
  push t (Printf.sprintf "%.6f %s" (Sim.Time.to_sec now) line)

let tap t ~label link =
  Link.add_tap link (fun now pkt ->
      record t ~now
        (Format.asprintf "%s %d->%d flow=%d %a" label pkt.Packet.src
           pkt.Packet.dst pkt.Packet.flow Proto.Payload.pp pkt.Packet.payload))

let lines t =
  if t.total <= t.capacity then
    Array.to_list (Array.sub t.buffer 0 t.total)
  else
    let first = t.next in
    List.init t.capacity (fun i -> t.buffer.((first + i) mod t.capacity))

let captured t = t.total
let to_string t = String.concat "\n" (lines t) ^ "\n"
