(** Reference process models, used to unit-test the controller and the
    tuners against systems with known analytic behaviour. All models are
    discrete-time integrators of their defining ODE (forward Euler with
    sub-stepping for stiffness safety). *)

type t

val first_order : gain:float -> tau:float -> t
(** dy/dt = (gain·u − y)/tau. Static gain [gain], time constant [tau]. *)

val first_order_dead_time : gain:float -> tau:float -> dead_time:float ->
  dt_hint:float -> t
(** FOPDT: first-order response delayed by [dead_time] seconds. The
    input history is sampled every [dt_hint] seconds, so drive it with a
    constant step size close to that hint. *)

val integrator : gain:float -> t
(** dy/dt = gain·u — the queue-like plant: occupancy integrates the
    difference between arrival and drain rates. *)

val second_order : gain:float -> omega:float -> zeta:float -> t
(** d²y/dt² + 2ζω dy/dt + ω²y = ω²·gain·u. Underdamped for ζ<1. *)

val step : t -> dt:float -> u:float -> float
(** Advance the model by [dt] with input [u]; returns the new output. *)

val output : t -> float
val reset : t -> unit
