(* The job service: journal WAL semantics (torn tails included), crash
   recovery that never re-runs a finished job, retry with backoff for
   transient failures, immediate quarantine for deterministic poison,
   and drain/resume outcomes byte-identical to unbroken runs at any
   worker count. *)

module J = Serve.Journal
module Sup = Serve.Supervisor

let tmp_counter = ref 0

let tmp_dir name =
  incr tmp_counter;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rss_serve_test_%d_%d_%s" (Unix.getpid ()) !tmp_counter
         name)
  in
  Serve.Artifacts.ensure_dir dir;
  dir

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let mf_spec ?(name = "serve-mf") ?(seed = 31) ?(duration = 3.) () =
  {
    Core.Spec.default with
    name;
    seed;
    duration = Sim.Time.of_sec duration;
    sample_period = Sim.Time.ms 250;
    topology =
      Core.Spec.Duplex
        {
          Core.Spec.default_duplex with
          rate = Sim.Units.mbps 50.;
          one_way_delay = Sim.Time.ms 20;
          ifq_capacity = 120;
        };
    flows =
      [
        {
          Core.Spec.default_flow with
          label = Some "crowd";
          workload =
            Core.Spec.Many_flows
              {
                flows = 300;
                arrival_rate = Some 250.;
                arrival_pareto_shape = None;
                mean_size = Some 120_000;
                size_pareto_shape = 1.3;
              };
        };
      ];
  }

let base_config ~state_dir ~spool =
  {
    Sup.default_config with
    Sup.spool;
    state_dir;
    once = true;
    backoff_base = 0.001;
    backoff_max = 0.01;
    poll_interval = 0.01;
    checkpoint_every = Sim.Time.of_sec 1.;
  }

(* --- journal ----------------------------------------------------------- *)

let sample_events =
  [
    J.Submitted
      { job = "a"; spec = Report.Json.Obj [ ("name", Report.Json.String "a") ] };
    J.Started { job = "a"; attempt = 1 };
    J.Checkpointed { job = "a"; snapshot = "/x/a.snap"; at_ns = 1_000_000_000 };
    J.Failed
      { job = "a"; attempt = 1; error = "Failure(\"boom\")"; retry_in_s = 0.05 };
    J.Finished { job = "a"; outcome = "/x/a.json" };
    J.Quarantined { job = "b"; artifact = "/x/b.json"; error = "invalid" };
  ]

let test_journal_round_trip () =
  let dir = tmp_dir "journal" in
  let path = Filename.concat dir "j.jsonl" in
  let j = J.open_append ~path in
  List.iter (J.append j) sample_events;
  J.close j;
  Alcotest.(check int) "replayed all records"
    (List.length sample_events)
    (List.length (J.replay ~path));
  List.iter2
    (fun a b ->
      Alcotest.(check string) "event round-trips"
        (Report.Json.to_string_compact (J.event_to_json a))
        (Report.Json.to_string_compact (J.event_to_json b)))
    sample_events (J.replay ~path)

let test_journal_torn_tail () =
  let dir = tmp_dir "torn" in
  let path = Filename.concat dir "j.jsonl" in
  let j = J.open_append ~path in
  List.iter (J.append j) sample_events;
  J.close j;
  (* simulate a crash mid-append: a half-written record, no newline *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc "{\"ev\":\"finis";
  close_out oc;
  Alcotest.(check int) "torn tail dropped, prefix intact"
    (List.length sample_events)
    (List.length (J.replay ~path));
  (* appends after the torn bytes are ignored by every later replay —
     the damaged line swallows them deterministically *)
  let j = J.open_append ~path in
  J.append j (J.Started { job = "c"; attempt = 1 });
  J.close j;
  Alcotest.(check int) "replay is stable after the tear"
    (List.length sample_events)
    (List.length (J.replay ~path))

let test_journal_missing_file () =
  Alcotest.(check int) "missing journal is empty" 0
    (List.length (J.replay ~path:"/nonexistent/journal.jsonl"))

(* --- supervisor -------------------------------------------------------- *)

let test_completes_and_writes_artifacts () =
  let state_dir = tmp_dir "complete_state" in
  let spool = tmp_dir "complete_spool" in
  let spec = mf_spec () in
  let stats = Sup.run ~specs:[ spec ] (base_config ~state_dir ~spool) in
  Alcotest.(check int) "one job completed" 1 stats.Sup.completed;
  Alcotest.(check int) "nothing quarantined" 0 stats.Sup.quarantined;
  let outcome_path =
    Filename.concat (Filename.concat state_dir "outcomes")
      "serve-mf_outcome.json"
  in
  Alcotest.(check bool) "outcome artifact exists" true
    (Sys.file_exists outcome_path);
  Alcotest.(check string) "artifact matches a by-hand run, byte for byte"
    (Report.Json.to_string (Core.Spec.outcome_to_json (Core.Spec.run spec)))
    (read_file outcome_path)

let test_transient_failure_retried () =
  let state_dir = tmp_dir "retry_state" in
  let spool = tmp_dir "retry_spool" in
  let attempts = Atomic.make 0 in
  let runner ~job_id:_ ~checkpoint ~resume_from spec =
    if Atomic.fetch_and_add attempts 1 = 0 then
      failwith "transient: simulated infra flake"
    else Core.Spec.run ?checkpoint ?resume_from spec
  in
  let stats =
    Sup.run ~runner ~specs:[ mf_spec () ] (base_config ~state_dir ~spool)
  in
  Alcotest.(check int) "completed after retry" 1 stats.Sup.completed;
  Alcotest.(check int) "one retry recorded" 1 stats.Sup.retries;
  Alcotest.(check int) "not quarantined" 0 stats.Sup.quarantined;
  let events = J.replay ~path:(Filename.concat state_dir "journal.jsonl") in
  Alcotest.(check bool) "journal has the Failed record with backoff" true
    (List.exists
       (function
         | J.Failed { attempt = 1; retry_in_s; _ } -> retry_in_s > 0.
         | _ -> false)
       events)

let test_deterministic_failure_quarantined () =
  let state_dir = tmp_dir "poison_state" in
  let spool = tmp_dir "poison_spool" in
  let runner ~job_id ~checkpoint ~resume_from spec =
    if job_id = "poisoned" then failwith "deterministic bug"
    else Core.Spec.run ?checkpoint ?resume_from spec
  in
  let config =
    { (base_config ~state_dir ~spool) with Sup.max_attempts = 2 }
  in
  let stats =
    Sup.run ~runner
      ~specs:[ mf_spec ~name:"poisoned" (); mf_spec ~name:"healthy" () ]
      config
  in
  (* the poisoned job must not abort the queue *)
  Alcotest.(check int) "healthy job still completed" 1 stats.Sup.completed;
  Alcotest.(check int) "poisoned job quarantined" 1 stats.Sup.quarantined;
  Alcotest.(check int) "exhausted max_attempts - 1 retries" 1
    stats.Sup.retries;
  let artifact =
    Filename.concat (Filename.concat state_dir "quarantine") "poisoned.json"
  in
  Alcotest.(check bool) "replayable artifact written" true
    (Sys.file_exists artifact);
  match Sup.quarantine_spec ~path:artifact with
  | Error e -> Alcotest.failf "artifact does not re-parse: %s" e
  | Ok spec ->
      Alcotest.(check string) "artifact embeds the original spec"
        "poisoned" spec.Core.Spec.name

let test_invalid_spec_quarantined_immediately () =
  let state_dir = tmp_dir "invalid_state" in
  let spool = tmp_dir "invalid_spool" in
  let bad =
    {
      (mf_spec ~name:"bad" ()) with
      Core.Spec.flows =
        [ { Core.Spec.default_flow with Core.Spec.slow_start = "bogus" } ];
    }
  in
  let stats =
    Sup.run
      ~specs:[ bad; mf_spec ~name:"healthy" () ]
      (base_config ~state_dir ~spool)
  in
  Alcotest.(check int) "healthy job completed" 1 stats.Sup.completed;
  Alcotest.(check int) "invalid spec quarantined" 1 stats.Sup.quarantined;
  Alcotest.(check int) "no retries for deterministic poison" 0
    stats.Sup.retries

let test_watchdog_drain_resume_byte_identical () =
  let spec = mf_spec ~name:"drainy" ~seed:32 () in
  let reference =
    Report.Json.to_string (Core.Spec.outcome_to_json (Core.Spec.run spec))
  in
  let run_with_jobs jobs =
    let state_dir = tmp_dir (Printf.sprintf "drain_state_j%d" jobs) in
    let spool = tmp_dir (Printf.sprintf "drain_spool_j%d" jobs) in
    let config =
      {
        (base_config ~state_dir ~spool) with
        Sup.jobs;
        deadline = Some 0.;  (* drain at every checkpoint *)
      }
    in
    let stats = Sup.run ~specs:[ spec ] config in
    Alcotest.(check int) "completed" 1 stats.Sup.completed;
    Alcotest.(check bool) "was drained at least once" true
      (stats.Sup.drains >= 1);
    Alcotest.(check int) "completion counted as resumed" 1 stats.Sup.resumed;
    read_file
      (Filename.concat
         (Filename.concat state_dir "outcomes")
         "drainy_outcome.json")
  in
  Alcotest.(check string) "jobs=1 drained outcome == unbroken" reference
    (run_with_jobs 1);
  Alcotest.(check string) "jobs=4 drained outcome == unbroken" reference
    (run_with_jobs 4)

let test_crash_recovery_resumes_from_snapshot () =
  (* Reconstruct a SIGKILLed daemon's state directory by hand: journal
     says submitted+started (no finish), and a checkpoint image sits in
     snapshots/ — exactly what a kill -9 mid-run leaves behind. *)
  let state_dir = tmp_dir "crash_state" in
  let spool = tmp_dir "crash_spool" in
  let spec = mf_spec ~name:"victim" ~seed:33 () in
  let snap = Sup.snapshot_path state_dir "victim" in
  Serve.Artifacts.ensure_dir (Filename.dirname snap);
  (match
     Core.Spec.run
       ~checkpoint:
         {
           Core.Spec.snapshot_path = snap;
           interval = Sim.Time.of_sec 1.;
           should_stop = (fun () -> true);
         }
       spec
   with
  | _ -> Alcotest.fail "expected Drained"
  | exception Core.Spec.Drained _ -> ());
  let j = J.open_append ~path:(Filename.concat state_dir "journal.jsonl") in
  J.append j (J.Submitted { job = "victim"; spec = Core.Spec.to_json spec });
  J.append j (J.Started { job = "victim"; attempt = 1 });
  J.close j;
  let stats = Sup.run (base_config ~state_dir ~spool) in
  Alcotest.(check int) "recovered job completed" 1 stats.Sup.completed;
  Alcotest.(check int) "completed from the snapshot" 1 stats.Sup.resumed;
  Alcotest.(check string) "recovered outcome == unbroken run"
    (Report.Json.to_string (Core.Spec.outcome_to_json (Core.Spec.run spec)))
    (read_file
       (Filename.concat
          (Filename.concat state_dir "outcomes")
          "victim_outcome.json"))

let test_finished_jobs_never_rerun () =
  let state_dir = tmp_dir "norerun_state" in
  let spool = tmp_dir "norerun_spool" in
  let spec = mf_spec ~name:"done-once" () in
  (* the spool still offers the job file... *)
  let oc = open_out (Filename.concat spool "done-once.json") in
  output_string oc (Report.Json.to_string (Core.Spec.to_json spec));
  close_out oc;
  (* ...but the journal says it already finished *)
  let j = J.open_append ~path:(Filename.concat state_dir "journal.jsonl") in
  J.append j
    (J.Submitted { job = "done-once"; spec = Core.Spec.to_json spec });
  J.append j (J.Started { job = "done-once"; attempt = 1 });
  J.append j (J.Finished { job = "done-once"; outcome = "/old/outcome.json" });
  J.close j;
  let ran = Atomic.make 0 in
  let runner ~job_id:_ ~checkpoint ~resume_from spec =
    Atomic.incr ran;
    Core.Spec.run ?checkpoint ?resume_from spec
  in
  let stats = Sup.run ~runner (base_config ~state_dir ~spool) in
  Alcotest.(check int) "nothing ran" 0 (Atomic.get ran);
  Alcotest.(check int) "nothing completed" 0 stats.Sup.completed

let test_graceful_stop_drains_to_snapshot () =
  (* A pre-set stop flag: the job must stop at its FIRST checkpoint,
     journal the drain, and leave a resumable snapshot. *)
  let state_dir = tmp_dir "stop_state" in
  let spool = tmp_dir "stop_spool" in
  let stop = Atomic.make false in
  let runner ~job_id ~checkpoint ~resume_from spec =
    (* set stop while the job runs — deterministic: before it starts *)
    Atomic.set stop true;
    Sup.default_runner ~job_id ~checkpoint ~resume_from spec
  in
  let config = { (base_config ~state_dir ~spool) with Sup.once = false } in
  let stats = Sup.run ~stop ~runner ~specs:[ mf_spec ~name:"stoppy" () ] config in
  Alcotest.(check int) "drained, not completed" 0 stats.Sup.completed;
  Alcotest.(check int) "one drain" 1 stats.Sup.drains;
  Alcotest.(check bool) "snapshot left for the restart" true
    (Sys.file_exists (Sup.snapshot_path state_dir "stoppy"));
  (* restart without the stop flag: completes from the snapshot *)
  let stats2 = Sup.run (base_config ~state_dir ~spool) in
  Alcotest.(check int) "restart completed" 1 stats2.Sup.completed;
  Alcotest.(check int) "restart resumed from snapshot" 1 stats2.Sup.resumed

let suite =
  [
    Alcotest.test_case "journal round trip" `Quick test_journal_round_trip;
    Alcotest.test_case "journal tolerates a torn tail" `Quick
      test_journal_torn_tail;
    Alcotest.test_case "missing journal is empty" `Quick
      test_journal_missing_file;
    Alcotest.test_case "job completes; artifacts match a by-hand run"
      `Quick test_completes_and_writes_artifacts;
    Alcotest.test_case "transient failure retried with backoff" `Quick
      test_transient_failure_retried;
    Alcotest.test_case "deterministic failure quarantined, queue survives"
      `Quick test_deterministic_failure_quarantined;
    Alcotest.test_case "invalid spec quarantined immediately" `Quick
      test_invalid_spec_quarantined_immediately;
    Alcotest.test_case "watchdog drain+resume byte-identical (jobs 1, 4)"
      `Quick test_watchdog_drain_resume_byte_identical;
    Alcotest.test_case "crash recovery resumes from snapshot" `Quick
      test_crash_recovery_resumes_from_snapshot;
    Alcotest.test_case "finished jobs never re-run" `Quick
      test_finished_jobs_never_rerun;
    Alcotest.test_case "graceful stop drains to a snapshot" `Quick
      test_graceful_stop_drains_to_snapshot;
  ]
