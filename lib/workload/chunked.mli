(** Disk-paced bulk source: the application hands the socket a chunk of
    data every interval (GridFTP reading from storage, a tape stager, a
    periodic dump). Between chunks the connection drains and goes idle,
    so with [slow_start_restart] each chunk replays slow-start — the
    workload that makes a single transfer accumulate several send-stalls
    (Figure 1's staircase). *)

type t

val start :
  src:Netsim.Host.t ->
  dst:Netsim.Host.t ->
  flow:int ->
  ids:Netsim.Packet.Id_source.source ->
  ?rx_ids:Netsim.Packet.Id_source.source ->
  chunk_bytes:int ->
  interval:Sim.Time.t ->
  ?chunks:int ->
  ?config:Tcp.Config.t ->
  ?slow_start:Tcp.Slow_start.t ->
  ?cong_avoid:Tcp.Cong_avoid.t ->
  ?name:string ->
  unit ->
  t
(** The first chunk is written immediately, subsequent ones every
    [interval]. [chunks] bounds the count (default: unbounded).
    [rx_ids] (default [ids]): id source for the receiver's ACKs — pass
    the destination partition's source on a partitioned run. *)

val sender : t -> Tcp.Sender.t
val receiver : t -> Tcp.Receiver.t
val chunks_issued : t -> int
val bytes_issued : t -> int
val stop : t -> unit
