module I = Tcp.Interval_set

let intervals_t = Alcotest.(list (pair int int))

let test_add_merge () =
  let s = I.create () in
  I.add s ~lo:10 ~hi:20;
  I.add s ~lo:30 ~hi:40;
  Alcotest.check intervals_t "disjoint" [ (10, 20); (30, 40) ] (I.intervals s);
  I.add s ~lo:15 ~hi:35;
  Alcotest.check intervals_t "merged" [ (10, 40) ] (I.intervals s);
  Alcotest.(check int) "total" 30 (I.total s)

let test_touching_coalesce () =
  let s = I.create () in
  I.add s ~lo:0 ~hi:10;
  I.add s ~lo:10 ~hi:20;
  Alcotest.check intervals_t "touching merge" [ (0, 20) ] (I.intervals s)

let test_empty_insert () =
  let s = I.create () in
  I.add s ~lo:5 ~hi:5;
  I.add s ~lo:7 ~hi:3;
  Alcotest.(check bool) "still empty" true (I.is_empty s)

let test_mem_contains () =
  let s = I.create () in
  I.add s ~lo:10 ~hi:20;
  Alcotest.(check bool) "mem inside" true (I.mem s 15);
  Alcotest.(check bool) "mem lo edge" true (I.mem s 10);
  Alcotest.(check bool) "mem hi edge excluded" false (I.mem s 20);
  Alcotest.(check bool) "contains_range inside" true
    (I.contains_range s ~lo:12 ~hi:18);
  Alcotest.(check bool) "contains_range overflow" false
    (I.contains_range s ~lo:12 ~hi:25);
  Alcotest.(check bool) "empty range trivially contained" true
    (I.contains_range s ~lo:100 ~hi:100)

let test_remove_below () =
  let s = I.create () in
  I.add s ~lo:10 ~hi:20;
  I.add s ~lo:30 ~hi:40;
  I.remove_below s 15;
  Alcotest.check intervals_t "trimmed" [ (15, 20); (30, 40) ] (I.intervals s);
  I.remove_below s 25;
  Alcotest.check intervals_t "dropped" [ (30, 40) ] (I.intervals s)

let test_extend_contiguous () =
  let s = I.create () in
  I.add s ~lo:0 ~hi:10;
  I.add s ~lo:20 ~hi:30;
  Alcotest.(check int) "through first" 10 (I.extend_contiguous s 0);
  Alcotest.(check int) "from mid" 10 (I.extend_contiguous s 5);
  Alcotest.(check int) "at gap" 15 (I.extend_contiguous s 15)

let test_next_gap () =
  let s = I.create () in
  I.add s ~lo:10 ~hi:20;
  I.add s ~lo:30 ~hi:40;
  Alcotest.(check (option (pair int int))) "gap before first" (Some (0, 10))
    (I.next_gap s ~from:0);
  Alcotest.(check (option (pair int int))) "gap between" (Some (20, 30))
    (I.next_gap s ~from:15);
  Alcotest.(check (option (pair int int))) "no gap above" None
    (I.next_gap s ~from:35);
  Alcotest.(check (option (pair int int))) "empty set" None
    (I.next_gap (I.create ()) ~from:0)

let test_first_count () =
  let s = I.create () in
  Alcotest.(check (option (pair int int))) "first of empty" None (I.first s);
  I.add s ~lo:5 ~hi:6;
  I.add s ~lo:1 ~hi:2;
  Alcotest.(check (option (pair int int))) "first" (Some (1, 2)) (I.first s);
  Alcotest.(check int) "count" 2 (I.count s)

(* Model-based checking against a plain int set. *)
module Int_set = Set.Make (Int)

let qcheck_vs_model =
  let gen =
    QCheck.(
      list_of_size (Gen.int_range 0 40) (pair (int_bound 200) (int_bound 30)))
  in
  QCheck.Test.make ~name:"interval set matches model set" ~count:300 gen
    (fun ops ->
      let s = I.create () in
      let model = ref Int_set.empty in
      List.iter
        (fun (lo, len) ->
          I.add s ~lo ~hi:(lo + len);
          for x = lo to lo + len - 1 do
            model := Int_set.add x !model
          done)
        ops;
      let total_ok = I.total s = Int_set.cardinal !model in
      let mem_ok =
        List.for_all (fun x -> I.mem s x = Int_set.mem x !model)
          (List.init 240 Fun.id)
      in
      let sorted_disjoint =
        let rec check = function
          | (a1, b1) :: ((a2, _) :: _ as rest) ->
              a1 < b1 && b1 < a2 && check rest
          | [ (a, b) ] -> a < b
          | [] -> true
        in
        check (I.intervals s)
      in
      total_ok && mem_ok && sorted_disjoint)

let qcheck_remove_below_model =
  QCheck.Test.make ~name:"remove_below matches model" ~count:200
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 20) (pair (int_bound 100) (int_bound 20)))
        (int_bound 120))
    (fun (ops, bound) ->
      let s = I.create () in
      let model = ref Int_set.empty in
      List.iter
        (fun (lo, len) ->
          I.add s ~lo ~hi:(lo + len);
          for x = lo to lo + len - 1 do
            model := Int_set.add x !model
          done)
        ops;
      I.remove_below s bound;
      model := Int_set.filter (fun x -> x >= bound) !model;
      I.total s = Int_set.cardinal !model)

let suite =
  [
    Alcotest.test_case "add and merge" `Quick test_add_merge;
    Alcotest.test_case "touching coalesce" `Quick test_touching_coalesce;
    Alcotest.test_case "empty insert" `Quick test_empty_insert;
    Alcotest.test_case "mem / contains_range" `Quick test_mem_contains;
    Alcotest.test_case "remove_below" `Quick test_remove_below;
    Alcotest.test_case "extend_contiguous" `Quick test_extend_contiguous;
    Alcotest.test_case "next_gap" `Quick test_next_gap;
    Alcotest.test_case "first/count" `Quick test_first_count;
    QCheck_alcotest.to_alcotest qcheck_vs_model;
    QCheck_alcotest.to_alcotest qcheck_remove_below_model;
  ]
