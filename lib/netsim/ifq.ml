type t = {
  sched : Sim.Scheduler.t;
  disc : Queue_disc.t;
  cap : int;
  gauge : Sim.Stats.Time_weighted.t;
  mutable stall_count : int;
  mutable stall_hooks : (unit -> unit) list;
  mutable space_hooks : (unit -> unit) list;
  mutable tracer : Trace.t option;
  mutable trace_src : int;
}

let create sched ~capacity ?red_ecn () =
  let disc =
    match red_ecn with
    | None -> Queue_disc.droptail ~capacity_packets:capacity ()
    | Some (params, link_rate) ->
        Queue_disc.red ~ecn:true ~capacity_packets:capacity ~link_rate params
  in
  {
    sched;
    disc;
    cap = capacity;
    gauge =
      Sim.Stats.Time_weighted.create ~now:(Sim.Scheduler.now sched) ~init:0.;
    stall_count = 0;
    stall_hooks = [];
    space_hooks = [];
    tracer = None;
    trace_src = 0;
  }

let set_tracer t ?(src = 0) tracer =
  t.tracer <- tracer;
  t.trace_src <- src

let queue t = t.disc
let occupancy t = Queue_disc.length t.disc
let capacity t = t.cap
let headroom t = t.cap - occupancy t
let stalls t = t.stall_count

let record t =
  Sim.Stats.Time_weighted.set t.gauge ~now:(Sim.Scheduler.now t.sched)
    (float_of_int (occupancy t))

let trace t ~code ~arg1 ~arg2 =
  match t.tracer with
  | None -> ()
  | Some tr ->
      Trace.emit tr
        ~time_ns:(Sim.Time.to_ns_int (Sim.Scheduler.now t.sched))
        ~code ~src:t.trace_src ~arg1 ~arg2

let try_enqueue t pkt =
  match Queue_disc.enqueue t.disc ~now:(Sim.Scheduler.now t.sched) pkt with
  | Ok () ->
      record t;
      trace t ~code:Trace.Code.ifq_enqueue ~arg1:(occupancy t)
        ~arg2:pkt.Packet.flow;
      true
  | Error _ ->
      t.stall_count <- t.stall_count + 1;
      trace t ~code:Trace.Code.ifq_stall ~arg1:t.stall_count
        ~arg2:pkt.Packet.flow;
      List.iter (fun hook -> hook ()) (List.rev t.stall_hooks);
      false

let on_stall t hook = t.stall_hooks <- hook :: t.stall_hooks
let on_space t hook = t.space_hooks <- hook :: t.space_hooks

let note_dequeue t =
  let was_full = occupancy t + 1 >= t.cap in
  record t;
  if was_full then List.iter (fun hook -> hook ()) (List.rev t.space_hooks)

let mean_occupancy t =
  Sim.Stats.Time_weighted.mean t.gauge ~now:(Sim.Scheduler.now t.sched)

let peak_occupancy t = Sim.Stats.Time_weighted.max t.gauge
