let test_run_order () =
  let s = Sim.Scheduler.create () in
  let log = ref [] in
  ignore (Sim.Scheduler.at s (Sim.Time.ms 5) (fun () -> log := 5 :: !log));
  ignore (Sim.Scheduler.at s (Sim.Time.ms 1) (fun () -> log := 1 :: !log));
  ignore (Sim.Scheduler.at s (Sim.Time.ms 3) (fun () -> log := 3 :: !log));
  Sim.Scheduler.run s;
  Alcotest.(check (list int)) "events in order" [ 1; 3; 5 ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock at last event" 5.
    (Sim.Time.to_ms (Sim.Scheduler.now s))

let test_until () =
  let s = Sim.Scheduler.create () in
  let fired = ref 0 in
  ignore (Sim.Scheduler.at s (Sim.Time.ms 1) (fun () -> incr fired));
  ignore (Sim.Scheduler.at s (Sim.Time.ms 10) (fun () -> incr fired));
  Sim.Scheduler.run ~until:(Sim.Time.ms 5) s;
  Alcotest.(check int) "only early event" 1 !fired;
  Alcotest.(check (float 1e-9)) "clock advanced to horizon" 5.
    (Sim.Time.to_ms (Sim.Scheduler.now s));
  Sim.Scheduler.run s;
  Alcotest.(check int) "remaining event fires later" 2 !fired

let test_nested_scheduling () =
  let s = Sim.Scheduler.create () in
  let log = ref [] in
  ignore
    (Sim.Scheduler.at s (Sim.Time.ms 1) (fun () ->
         log := "outer" :: !log;
         ignore
           (Sim.Scheduler.after s (Sim.Time.ms 1) (fun () ->
                log := "inner" :: !log))));
  Sim.Scheduler.run s;
  Alcotest.(check (list string)) "nested event fires" [ "outer"; "inner" ]
    (List.rev !log);
  Alcotest.(check (float 1e-9)) "final clock" 2.
    (Sim.Time.to_ms (Sim.Scheduler.now s))

let test_past_rejected () =
  let s = Sim.Scheduler.create () in
  ignore (Sim.Scheduler.at s (Sim.Time.ms 2) (fun () -> ()));
  Sim.Scheduler.run s;
  Alcotest.check_raises "at in the past"
    (Invalid_argument "Scheduler.at: 1ms is before now (2ms)") (fun () ->
      ignore (Sim.Scheduler.at s (Sim.Time.ms 1) (fun () -> ())))

let test_negative_delay_clamped () =
  let s = Sim.Scheduler.create () in
  let fired = ref false in
  ignore (Sim.Scheduler.after s (Sim.Time.ms (-5)) (fun () -> fired := true));
  Sim.Scheduler.run s;
  Alcotest.(check bool) "fires immediately" true !fired

let test_every () =
  let s = Sim.Scheduler.create () in
  let count = ref 0 in
  let handle = Sim.Scheduler.every s (Sim.Time.ms 10) (fun () -> incr count) in
  Sim.Scheduler.run ~until:(Sim.Time.ms 55) s;
  Alcotest.(check int) "5 periods in 55ms" 5 !count;
  Sim.Scheduler.cancel s !handle;
  Sim.Scheduler.run ~until:(Sim.Time.ms 200) s;
  Alcotest.(check int) "cancelled periodic stops" 5 !count

let test_cancel_pending () =
  let s = Sim.Scheduler.create () in
  let fired = ref false in
  let h = Sim.Scheduler.at s (Sim.Time.ms 1) (fun () -> fired := true) in
  Sim.Scheduler.cancel s h;
  Sim.Scheduler.run s;
  Alcotest.(check bool) "cancelled stays silent" false !fired

let test_step () =
  let s = Sim.Scheduler.create () in
  ignore (Sim.Scheduler.at s (Sim.Time.ms 1) (fun () -> ()));
  ignore (Sim.Scheduler.at s (Sim.Time.ms 2) (fun () -> ()));
  Alcotest.(check bool) "step 1" true (Sim.Scheduler.step s);
  Alcotest.(check bool) "step 2" true (Sim.Scheduler.step s);
  Alcotest.(check bool) "step empty" false (Sim.Scheduler.step s);
  Alcotest.(check int) "nothing pending" 0 (Sim.Scheduler.pending s)

let test_determinism () =
  let run () =
    let s = Sim.Scheduler.create ~seed:99 () in
    let acc = ref [] in
    for i = 1 to 20 do
      ignore
        (Sim.Scheduler.at s
           (Sim.Time.us (Sim.Rng.int (Sim.Scheduler.rng s) 1000))
           (fun () -> acc := i :: !acc))
    done;
    Sim.Scheduler.run s;
    !acc
  in
  Alcotest.(check (list int)) "same seed, same order" (run ()) (run ())

(* restore_clock teleports the clock for snapshot-restore and partition
   barriers — but never backwards past work: an earlier pending event
   (heap or wheel) would then fire "in the past", so it must raise. *)
let test_restore_clock_guard () =
  let s = Sim.Scheduler.create ~seed:1 () in
  ignore (Sim.Scheduler.at s (Sim.Time.ms 5) (fun () -> ()));
  (match Sim.Scheduler.restore_clock s (Sim.Time.ms 10) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "pending event at 5ms: jump to 10ms must raise");
  (* Jumping exactly onto the earliest pending event is allowed (the
     partition-barrier case: events at the break are still pending). *)
  Sim.Scheduler.restore_clock s (Sim.Time.ms 5);
  Alcotest.(check int) "clock moved"
    (Sim.Time.to_ns_int (Sim.Time.ms 5))
    (Sim.Time.to_ns_int (Sim.Scheduler.now s));
  let fired = ref false in
  ignore (Sim.Scheduler.at s (Sim.Time.ms 7) (fun () -> fired := true));
  Sim.Scheduler.run s;
  Alcotest.(check bool) "events after the jump still fire" true !fired

let test_restore_clock_empty () =
  let s = Sim.Scheduler.create ~seed:1 () in
  Sim.Scheduler.restore_clock s (Sim.Time.sec 9);
  Alcotest.(check int) "free jump on an idle scheduler"
    (Sim.Time.to_ns_int (Sim.Time.sec 9))
    (Sim.Time.to_ns_int (Sim.Scheduler.now s))

let suite =
  [
    Alcotest.test_case "run order" `Quick test_run_order;
    Alcotest.test_case "restore_clock guards pending events" `Quick
      test_restore_clock_guard;
    Alcotest.test_case "restore_clock on idle scheduler" `Quick
      test_restore_clock_empty;
    Alcotest.test_case "run ~until" `Quick test_until;
    Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
    Alcotest.test_case "past events rejected" `Quick test_past_rejected;
    Alcotest.test_case "negative delay clamped" `Quick
      test_negative_delay_clamped;
    Alcotest.test_case "periodic events" `Quick test_every;
    Alcotest.test_case "cancel pending" `Quick test_cancel_pending;
    Alcotest.test_case "manual stepping" `Quick test_step;
    Alcotest.test_case "determinism" `Quick test_determinism;
  ]
