type t = {
  sched : Sim.Scheduler.t;
  path : Netsim.Topology.Duplex.t;
  ids : Netsim.Packet.Id_source.source;
  rate : Sim.Units.rate;
  rtt : Sim.Time.t;
  ifq_capacity : int;
}

let anl_lbnl ?(seed = 1) ?(rate = Sim.Units.mbps 100.)
    ?(one_way_delay = Sim.Time.ms 30) ?(ifq_capacity = 100)
    ?(loss_rate = 0.) ?ifq_red_ecn () =
  let sched = Sim.Scheduler.create ~seed () in
  let path =
    Netsim.Topology.Duplex.create sched ~rate ~one_way_delay ~ifq_capacity
      ~loss_rate ?ifq_red_ecn ()
  in
  {
    sched;
    path;
    ids = Netsim.Packet.Id_source.create ();
    rate;
    rtt = Sim.Time.mul_int one_way_delay 2;
    ifq_capacity;
  }

let bdp_packets t =
  Sim.Units.bdp_packets t.rate ~rtt:t.rtt ~packet_bytes:1500

let sender_host t = t.path.Netsim.Topology.Duplex.a
let receiver_host t = t.path.Netsim.Topology.Duplex.b
let sender_ifq t = Netsim.Host.ifq t.path.Netsim.Topology.Duplex.a
let forward_link t = t.path.Netsim.Topology.Duplex.a_to_b
let reverse_link t = t.path.Netsim.Topology.Duplex.b_to_a
