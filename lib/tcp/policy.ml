(* A congestion-control policy is the complete window-update rule of a
   connection: the slow-start phase (entry growth + voluntary exit), the
   congestion-avoidance phase (per-ACK growth, loss and RTO reactions)
   and pacing hints. Bundling the two existing policy records keeps the
   sender's hot path unchanged — it still dispatches through the same
   Slow_start.t / Cong_avoid.t closures — while giving sweeps and CLIs
   one name for one behaviour. *)

type t = {
  name : string;
  doc : string;
  slow_start : Slow_start.t;
  cong_avoid : Cong_avoid.t;
  pace_gains : (float * float) option;
}

type entry = {
  ename : string;
  edoc : string;
  make : Slow_start.restricted_config option -> t;
}

let builtin =
  let bundle ?pace_gains ~name ~doc ss cc =
    {
      ename = name;
      edoc = doc;
      make =
        (fun rc ->
          { name; doc; slow_start = ss rc; cong_avoid = cc (); pace_gains });
    }
  in
  [
    bundle ~name:"standard"
      ~doc:"RFC 5681 slow-start + Reno AIMD (the classic baseline)"
      (fun _ -> Slow_start.standard ())
      Cong_avoid.reno;
    bundle ~name:"restricted"
      ~doc:"the paper's PID-restricted slow-start + Reno"
      (fun rc -> Slow_start.restricted ?config:rc ())
      Cong_avoid.reno;
    bundle ~name:"restricted-adaptive"
      ~doc:"gain-scheduled restricted slow-start (Ti/Td track RTT) + Reno"
      (fun rc -> Slow_start.restricted_adaptive ?config:rc ())
      Cong_avoid.reno;
    bundle ~name:"hystart-cubic"
      ~doc:"HyStart exit detection + CUBIC avoidance (the Linux default)"
      (fun _ -> Slow_start.hystart ())
      Cong_avoid.cubic;
    bundle ~name:"ssthreshless"
      ~doc:
        "SSthreshless Start (arXiv 1401.7146): path-measured slow-start \
         exit onto the BDP estimate + Reno"
      (fun _ -> Slow_start.ssthreshless ())
      Cong_avoid.reno;
    bundle ~name:"relentless"
      ~doc:
        "Relentless CC (arXiv 1102.3270): loss costs only the lost \
         segments, W* = 1/p"
      (fun _ -> Slow_start.standard ())
      Cong_avoid.relentless;
    (* FAST regulates queueing delay, so when pacing is on it should
       release the window smoothly at the ACK rate rather than with the
       loss-probing 1.2 headroom. *)
    bundle ~name:"fast" ~pace_gains:(2.0, 1.0)
      ~doc:
        "FAST-style delay-based avoidance: w <- (1-g)w + \
         g(baseRTT/avgRTT*w + alpha)"
      (fun _ -> Slow_start.standard ())
      Cong_avoid.fast;
    bundle ~name:"small-rtt"
      ~doc:
        "small-RTT cwnd scaling (arXiv 1904.07598): additive increase \
         scaled by srtt/25ms below the reference RTT"
      (fun _ -> Slow_start.standard ())
      (fun () -> Cong_avoid.small_rtt ());
  ]

let registry = ref builtin

let register ~name ~doc make =
  if List.exists (fun e -> e.ename = name) !registry then
    invalid_arg (Printf.sprintf "Policy.register: %S already registered" name);
  registry := !registry @ [ { ename = name; edoc = doc; make } ]

let names () = List.map (fun e -> e.ename) !registry
let docs () = List.map (fun e -> (e.ename, e.edoc)) !registry

let by_name ?restricted_config name =
  match List.find_opt (fun e -> e.ename = name) !registry with
  | Some e -> Ok (e.make restricted_config)
  | None ->
      Error
        (Printf.sprintf "unknown congestion-control policy %S (have: %s)" name
           (String.concat ", " (names ())))
