type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Writer *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

(* JSON has no nan/inf literals — "%.17g" would emit invalid documents
   for non-finite values, so those encode as null. *)
let number_to_string f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_string t =
  let buf = Buffer.create 1024 in
  let indent n = Buffer.add_string buf (String.make (2 * n) ' ') in
  let rec emit depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Number f -> Buffer.add_string buf (number_to_string f)
    | String s ->
        Buffer.add_char buf '"';
        escape buf s;
        Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_string buf ",\n";
            indent (depth + 1);
            emit (depth + 1) item)
          items;
        Buffer.add_char buf '\n';
        indent depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ",\n";
            indent (depth + 1);
            Buffer.add_char buf '"';
            escape buf k;
            Buffer.add_string buf "\": ";
            emit (depth + 1) v)
          fields;
        Buffer.add_char buf '\n';
        indent depth;
        Buffer.add_char buf '}'
  in
  emit 0 t;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* One value per line is the journal's framing: no newlines anywhere
   inside the rendering (escape already encodes them in strings). *)
let to_string_compact t =
  let buf = Buffer.create 256 in
  let rec emit = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Number f -> Buffer.add_string buf (number_to_string f)
    | String s ->
        Buffer.add_char buf '"';
        escape buf s;
        Buffer.add_char buf '"'
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            emit item)
          items;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            escape buf k;
            Buffer.add_string buf "\":";
            emit v)
          fields;
        Buffer.add_char buf '}'
  in
  emit t;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser: plain recursive descent over the string. *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string"
      else
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> (
            if !pos >= n then fail "unterminated escape"
            else
              let e = s.[!pos] in
              advance ();
              match e with
              | '"' | '\\' | '/' ->
                  Buffer.add_char buf e;
                  loop ()
              | 'n' ->
                  Buffer.add_char buf '\n';
                  loop ()
              | 't' ->
                  Buffer.add_char buf '\t';
                  loop ()
              | 'r' ->
                  Buffer.add_char buf '\r';
                  loop ()
              | 'b' ->
                  Buffer.add_char buf '\b';
                  loop ()
              | 'f' ->
                  Buffer.add_char buf '\012';
                  loop ()
              | 'u' ->
                  if !pos + 4 > n then fail "bad \\u escape";
                  let code = int_of_string ("0x" ^ String.sub s !pos 4) in
                  pos := !pos + 4;
                  (* BMP only; enough for our artefacts *)
                  if code < 0x80 then Buffer.add_char buf (Char.chr code)
                  else if code < 0x800 then begin
                    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                  end
                  else begin
                    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                    Buffer.add_char buf
                      (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                  end;
                  loop ()
              | _ -> fail "bad escape")
        | c ->
            Buffer.add_char buf c;
            loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some f -> f
    | None -> fail (Printf.sprintf "bad number %S" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ]"
          in
          List (items [])
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected , or }"
          in
          Obj (fields [])
    | Some _ -> Number (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "JSON parse error at offset %d: %s" at msg)
  | exception Failure msg -> Error ("JSON parse error: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let number = function Number f -> Some f | _ -> None
let string_value = function String s -> Some s | _ -> None
let list_value = function List l -> Some l | _ -> None
