(** Supervised job service behind [rss_sim serve].

    Accepts Spec-JSON jobs from a spool directory (one [<id>.json] file
    per job) or injected directly, runs them on a domain pool, and
    survives being killed at any instant: every transition is
    journalled ({!Journal}) before it takes effect, checkpoints go to
    per-job snapshot files, and a restarted daemon reconstructs its
    queue from journal + snapshot files + spool scan — completed jobs
    are never re-run, in-flight snapshot-supported jobs resume from
    their last checkpoint, and the resumed artifacts are byte-identical
    to an unbroken run.

    Failure policy: [Invalid_argument] (a malformed or rejected spec)
    is deterministic poison and quarantines immediately; a corrupt
    resume image restarts the job from scratch (deterministic, so
    correct); anything else is treated as transient and retried with
    bounded exponential backoff — [backoff_base * 2^(attempt-1)],
    capped at [backoff_max] — until [max_attempts], then quarantined as
    a replayable artifact embedding the full spec. A quarantined or
    poisoned job never aborts the queue. *)

type config = {
  spool : string;  (** scanned for [*.json] job files *)
  state_dir : string;
      (** journal, snapshots/, outcomes/, quarantine/ live here *)
  jobs : int;  (** worker domains; 1 = sequential *)
  checkpoint_every : Sim.Time.t;  (** simulated time between snapshots *)
  max_attempts : int;
  backoff_base : float;  (** seconds; attempt n waits base * 2^(n-1) *)
  backoff_max : float;  (** backoff ceiling, seconds *)
  deadline : float option;
      (** wall seconds a job may run before the watchdog drains it to
          its snapshot and requeues it (snapshot-supported jobs only) *)
  poll_interval : float;  (** spool scan period, seconds *)
  once : bool;  (** drain the current queue, then return *)
  log : string -> unit;  (** progress lines; [ignore] to silence *)
}

val default_config : config
(** spool [results/serve/spool], state [results/serve/state], 1 job,
    1 s checkpoints, 3 attempts, 50 ms–2 s backoff, no deadline,
    200 ms polling, daemon mode, silent. *)

type stats = {
  completed : int;
  quarantined : int;
  retries : int;
  drains : int;  (** checkpoint-drained slices (stop or deadline) *)
  resumed : int;  (** completions that started from a snapshot *)
}

type runner =
  job_id:string ->
  checkpoint:Core.Spec.checkpoint option ->
  resume_from:string option ->
  Core.Spec.t ->
  Core.Spec.outcome
(** How one attempt executes; the default is {!Core.Spec.run}. Tests
    inject runners that fail on chosen attempts. Runs on a pool worker
    domain, so an injected runner must be thread-safe. *)

val default_runner : runner
(** [Core.Spec.run] — for injected runners that wrap the real thing. *)

val run :
  ?stop:bool Atomic.t ->
  ?runner:runner ->
  ?specs:Core.Spec.t list ->
  config ->
  stats
(** Run the service until [stop] is set (checked by in-flight jobs at
    checkpoint boundaries — the graceful drain) or, with [config.once],
    until the queue is empty. [specs] are submitted directly before the
    first spool scan (the stdin path; the job id is the sanitized spec
    name). Raises [Invalid_argument] on a nonsensical config. *)

val snapshot_path : string -> string -> string
(** [snapshot_path state_dir job_id] — where that job checkpoints. *)

val quarantine_spec : path:string -> (Core.Spec.t, string) result
(** Re-parse the spec embedded in a quarantine artifact, for replay. *)
