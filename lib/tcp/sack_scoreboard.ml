type t = { sacked : Interval_set.t; mutable una : int }

let create () = { sacked = Interval_set.create (); una = 0 }

let record t ~blocks ~una =
  t.una <- Stdlib.max t.una una;
  List.iter
    (fun (lo, hi) ->
      let lo = Stdlib.max lo t.una in
      Interval_set.add t.sacked ~lo ~hi)
    blocks;
  Interval_set.remove_below t.sacked t.una

let advance_una t una =
  t.una <- Stdlib.max t.una una;
  Interval_set.remove_below t.sacked t.una

let sacked_bytes t = Interval_set.total t.sacked

let is_sacked t ~lo ~hi = Interval_set.contains_range t.sacked ~lo ~hi

let next_hole t ~una ~mss =
  match Interval_set.next_gap t.sacked ~from:una with
  | None -> None
  | Some (lo, hi) -> Some (lo, Stdlib.min hi (lo + mss))

let reset t = Interval_set.remove_below t.sacked max_int

let holes t =
  match Interval_set.intervals t.sacked with
  | [] -> 0
  | _ :: _ as ranges ->
      (* A hole precedes each interval unless flush against una/previous. *)
      let _, n =
        List.fold_left
          (fun (cursor, n) (lo, hi) ->
            (hi, if lo > cursor then n + 1 else n))
          (t.una, 0) ranges
      in
      n
