type cong_avoid_choice = Reno | Cubic | Vegas

type spec = {
  seed : int;
  rate : Sim.Units.rate;
  one_way_delay : Sim.Time.t;
  ifq_capacity : int;
  duration : Sim.Time.t;
  bytes : int option;
  slow_start : string;
  restricted : Tcp.Slow_start.restricted_config option;
  local_congestion : Tcp.Local_congestion.policy;
  delayed_ack : Sim.Time.t option;
  use_sack : bool;
  cong_avoid : cong_avoid_choice;
  pacing : bool;
  ifq_red_ecn : Netsim.Queue_disc.red_params option;
  sample_period : Sim.Time.t;
  loss_rate : float;
}

let default_spec =
  {
    seed = 1;
    rate = Sim.Units.mbps 100.;
    one_way_delay = Sim.Time.ms 30;
    ifq_capacity = 100;
    duration = Sim.Time.sec 25;
    bytes = None;
    slow_start = "standard";
    restricted = None;
    local_congestion = Tcp.Local_congestion.Halve;
    delayed_ack = Tcp.Config.default.Tcp.Config.delayed_ack;
    use_sack = true;
    cong_avoid = Reno;
    pacing = false;
    ifq_red_ecn = None;
    sample_period = Sim.Time.ms 250;
    loss_rate = 0.;
  }

type result = {
  label : string;
  goodput_mbps : float;
  utilization : float;
  send_stalls : int;
  congestion_signals : int;
  retransmits : int;
  timeouts : int;
  final_cwnd_segments : float;
  mean_ifq : float;
  peak_ifq : float;
  ce_marks : int;
  completion : Sim.Time.t option;
  time_to_90pct_util : float option;
  stalls_series : Sim.Stats.Series.t;
  cwnd_series : Sim.Stats.Series.t;
  ifq_series : Sim.Stats.Series.t;
  throughput_series : Sim.Stats.Series.t;
  srtt_series : Sim.Stats.Series.t;
}

let spec_label ?label spec =
  Printf.sprintf "%s (rate=%g Mb/s, rtt=%g ms, ifq=%d, seed=%d, dur=%gs)"
    (match label with Some l -> l | None -> spec.slow_start)
    (Sim.Units.rate_to_mbps spec.rate)
    (2. *. Sim.Time.to_ms spec.one_way_delay)
    spec.ifq_capacity spec.seed
    (Sim.Time.to_sec spec.duration)

let bulk ?label spec =
  let label = match label with Some l -> l | None -> spec.slow_start in
  let scenario =
    Scenario.anl_lbnl ~seed:spec.seed ~rate:spec.rate
      ~one_way_delay:spec.one_way_delay ~ifq_capacity:spec.ifq_capacity
      ~loss_rate:spec.loss_rate ?ifq_red_ecn:spec.ifq_red_ecn ()
  in
  let sched = scenario.Scenario.sched in
  let slow_start =
    match
      Tcp.Slow_start.by_name ?restricted_config:spec.restricted
        spec.slow_start
    with
    | Ok ss -> ss
    | Error e -> invalid_arg e
  in
  let cong_avoid =
    match spec.cong_avoid with
    | Reno -> Tcp.Cong_avoid.reno ()
    | Cubic -> Tcp.Cong_avoid.cubic ()
    | Vegas -> Tcp.Cong_avoid.vegas ()
  in
  let config =
    {
      Tcp.Config.default with
      local_congestion = spec.local_congestion;
      delayed_ack = spec.delayed_ack;
      use_sack = spec.use_sack;
      pacing = spec.pacing;
    }
  in
  let transfer =
    Workload.Bulk.start
      ~src:(Scenario.sender_host scenario)
      ~dst:(Scenario.receiver_host scenario)
      ~flow:1 ~ids:scenario.Scenario.ids ~config ~slow_start ~cong_avoid
      ?bytes:spec.bytes ~name:label ()
  in
  let sender = Workload.Bulk.sender transfer in
  let receiver = Workload.Bulk.receiver transfer in
  let ifq = Scenario.sender_ifq scenario in
  let mss = float_of_int Tcp.Config.default.Tcp.Config.mss in
  let stalls_series = Sim.Stats.Series.create ~name:"send_stalls" () in
  let cwnd_series = Sim.Stats.Series.create ~name:"cwnd_segments" () in
  let ifq_series = Sim.Stats.Series.create ~name:"ifq_packets" () in
  let throughput_series = Sim.Stats.Series.create ~name:"throughput_mbps" () in
  let srtt_series = Sim.Stats.Series.create ~name:"srtt_ms" () in
  let last_bytes = ref 0 in
  let sample () =
    let now = Sim.Scheduler.now sched in
    Sim.Stats.Series.add stalls_series now
      (float_of_int (Tcp.Sender.send_stalls sender));
    Sim.Stats.Series.add cwnd_series now (Tcp.Sender.cwnd sender /. mss);
    Sim.Stats.Series.add ifq_series now
      (float_of_int (Netsim.Ifq.occupancy ifq));
    let bytes = Tcp.Receiver.bytes_received receiver in
    let window_mbps =
      float_of_int (8 * (bytes - !last_bytes))
      /. Sim.Time.to_sec spec.sample_period /. 1e6
    in
    last_bytes := bytes;
    Sim.Stats.Series.add throughput_series now window_mbps;
    match Tcp.Sender.srtt sender with
    | Some s -> Sim.Stats.Series.add srtt_series now (Sim.Time.to_ms s)
    | None -> ()
  in
  ignore (Sim.Scheduler.every sched spec.sample_period sample);
  Sim.Scheduler.run ~until:spec.duration sched;
  let line_mbps = Sim.Units.rate_to_mbps spec.rate in
  let time_to_90pct_util =
    let times = Sim.Stats.Series.times throughput_series in
    let values = Sim.Stats.Series.values throughput_series in
    let rec search i =
      if i >= Array.length values then None
      else if values.(i) >= 0.9 *. line_mbps then
        Some (Sim.Time.to_sec times.(i))
      else search (i + 1)
    in
    search 0
  in
  let goodput = Tcp.Receiver.goodput_mbps receiver ~at:spec.duration in
  {
    label;
    goodput_mbps = goodput;
    utilization = goodput /. line_mbps;
    send_stalls = Tcp.Sender.send_stalls sender;
    congestion_signals = Tcp.Sender.congestion_signals sender;
    retransmits = Tcp.Sender.retransmits sender;
    timeouts = Tcp.Sender.timeouts sender;
    final_cwnd_segments = Tcp.Sender.cwnd sender /. mss;
    mean_ifq = Netsim.Ifq.mean_occupancy ifq;
    peak_ifq = Netsim.Ifq.peak_occupancy ifq;
    ce_marks = Tcp.Receiver.ce_marks_seen receiver;
    completion = Workload.Bulk.completion_time transfer;
    time_to_90pct_util;
    stalls_series;
    cwnd_series;
    ifq_series;
    throughput_series;
    srtt_series;
  }

let bulk_batch ?pool specs =
  let f (label, spec) = bulk ?label spec in
  match pool with
  | None -> List.map f specs
  | Some pool ->
      Engine.Pool.map pool
        ~label:(fun (label, spec) -> spec_label ?label spec)
        ~f specs
