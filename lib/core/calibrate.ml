let sim_plant ?(seed = 7) ?(rate = Sim.Units.mbps 100.)
    ?(one_way_delay = Sim.Time.ms 30) ?(ifq_capacity = 100) () =
  fun () ->
  let scenario =
    Scenario.anl_lbnl ~seed ~rate ~one_way_delay ~ifq_capacity ()
  in
  let sched = scenario.Scenario.sched in
  let target = ref 2. in
  let conn =
    Tcp.Connection.establish
      ~src:(Scenario.sender_host scenario)
      ~dst:(Scenario.receiver_host scenario)
      ~flow:1 ~ids:scenario.Scenario.ids
      ~config:
        {
          Tcp.Config.default with
          (* The probe must not be perturbed by the reactions under
             study: stalls are absorbed, not punished. *)
          local_congestion = Tcp.Local_congestion.Ignore;
        }
      ~slow_start:(Tcp.Slow_start.commanded ~target_segments:target)
      ~name:"zn-probe" ()
  in
  ignore conn;
  let ifq = Scenario.sender_ifq scenario in
  fun ~dt ~u ->
    target := Float.max 2. u;
    let horizon = Sim.Time.add (Sim.Scheduler.now sched) (Sim.Time.of_sec dt) in
    Sim.Scheduler.run ~until:horizon sched;
    float_of_int (Netsim.Ifq.occupancy ifq)

let ultimate_gain ?(rate = Sim.Units.mbps 100.)
    ?(one_way_delay = Sim.Time.ms 30) ?(ifq_capacity = 100)
    ?(setpoint_fraction = 0.9) () =
  let plant = sim_plant ~rate ~one_way_delay ~ifq_capacity () in
  Control.Ziegler_nichols.ultimate_gain ~plant
    ~setpoint:(setpoint_fraction *. float_of_int ifq_capacity)
    ~dt:0.005 ~horizon:12. ~kp_init:0.05 ~kp_max:1e4 ~refine_steps:8 ()

let tuned_config ?(setpoint_fraction = 0.9) critical =
  {
    Tcp.Slow_start.gains = Control.Tuning.paper_pid critical;
    setpoint_fraction;
    max_step_segments =
      Tcp.Slow_start.default_restricted_config
        .Tcp.Slow_start.max_step_segments;
    sample_min_interval =
      Tcp.Slow_start.default_restricted_config
        .Tcp.Slow_start.sample_min_interval;
  }
