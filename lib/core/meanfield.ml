(* Mean-field oracle: fixed point and linearized stability of N Reno
   flows against one RED queue, plus the sweep that checks the
   many-flows engine against the predictions.

   Units inside this module are packets and seconds. The fixed point
   couples two monotone curves in the standing queue q:

     supply: RED's drop probability  p_red(q)         (increasing)
     demand: Reno's loss balance     2/(w(q)(w(q)+2)) (decreasing)

   where w(q) = C·(R0 + q/C)/N is the per-flow window that fills the
   link. Their crossing is the operating point; bisection finds it
   because the difference is strictly increasing.

   Stability comes from the Hollot-Misra-Towsley-Gong linearization of
   the same fluid model: window dynamics and queue integrator in
   cascade, RED's EWMA as a first-order low-pass, and one RTT of dead
   time. All factors are first-order, so magnitude and phase are
   closed-form and the phase crossover is found by bisection — no
   complex arithmetic, no frequency grid. *)

type path = {
  capacity : float;
  base_rtt : Sim.Time.t;
  mss : int;
  buffer_packets : int;
  red : Netsim.Queue_disc.red_params;
}

let paper_path =
  {
    capacity = 100e6 /. 8.;
    base_rtt = Sim.Time.ms 60;
    mss = 1500;
    buffer_packets = 250;
    red =
      {
        Netsim.Queue_disc.min_th = 50.;
        max_th = 150.;
        max_p = 0.1;
        weight = 0.002;
      };
  }

type equilibrium = {
  w_star : float;
  p_star : float;
  q_star : float;
  rtt_star : float;
}

(* Packets per second through the bottleneck. *)
let cap_pkts p = p.capacity /. float_of_int p.mss

let rtt_at p q = Sim.Time.to_sec p.base_rtt +. (q /. cap_pkts p)

(* Full-utilization window per flow at standing queue q. *)
let w_at p ~n q = cap_pkts p *. rtt_at p q /. float_of_int n

(* Reno's loss-balance demand: in congestion avoidance a flow gains one
   packet per loss-free round and loses w/2 on a lost round; a round is
   lost with probability ~ p·w, so balance gives p = 2/(w(w+2)). *)
let demand p ~n q =
  let w = Stdlib.max 1e-9 (w_at p ~n q) in
  2. /. (w *. (w +. 2.))

let equilibrium p ~flows:n =
  let f q = Netsim.Queue_disc.red_drop_probability p.red ~avg:q -. demand p ~n q in
  let hi =
    Stdlib.min (float_of_int p.buffer_packets) (2. *. p.red.Netsim.Queue_disc.max_th)
  in
  let q_star =
    if f hi <= 0. then hi (* overload: pinned at the forced-drop edge *)
    else begin
      let lo = ref 0. and hi = ref hi in
      for _ = 1 to 60 do
        let mid = 0.5 *. (!lo +. !hi) in
        if f mid < 0. then lo := mid else hi := mid
      done;
      0.5 *. (!lo +. !hi)
    end
  in
  {
    w_star = w_at p ~n q_star;
    p_star = Netsim.Queue_disc.red_drop_probability p.red ~avg:q_star;
    q_star;
    rtt_star = rtt_at p q_star;
  }

type verdict = Stable | Oscillatory

(* Linearized open loop at the operating point, as gain constants and
   first-order poles (rad/s):

     TCP window:  (R C²/2N²) / (s + 2N/(R²C))
     queue:       (N/R)      / (s + 1/R)
     RED filter:  K          / (s + K),  K = weight · C  (per-packet
                  EWMA applied at line rate)
     RED slope:   dp/davg at q*  (linear or gentle segment)
     dead time:   e^{-sR}

   with C in packets/s and R the equilibrium RTT. *)
let loop p ~flows:n =
  let e = equilibrium p ~flows:n in
  let c = cap_pkts p in
  let r = e.rtt_star in
  let nf = float_of_int n in
  let red = p.red in
  let slope =
    if e.q_star <= red.Netsim.Queue_disc.max_th then
      red.Netsim.Queue_disc.max_p
      /. (red.Netsim.Queue_disc.max_th -. red.Netsim.Queue_disc.min_th)
    else (1. -. red.Netsim.Queue_disc.max_p) /. red.Netsim.Queue_disc.max_th
  in
  let k_red = red.Netsim.Queue_disc.weight *. c in
  let a_tcp = 2. *. nf /. (r *. r *. c) in
  let g_tcp = r *. c *. c /. (2. *. nf *. nf) in
  let a_q = 1. /. r in
  let g_q = nf /. r in
  let magnitude w =
    slope
    *. (k_red /. Float.hypot w k_red)
    *. (g_tcp /. Float.hypot w a_tcp)
    *. (g_q /. Float.hypot w a_q)
  in
  let phase w =
    -.(atan (w /. k_red) +. atan (w /. a_tcp) +. atan (w /. a_q) +. (w *. r))
  in
  (magnitude, phase)

let gain_margin p ~flows =
  let magnitude, phase = loop p ~flows in
  (* The dead-time term drives the phase to -inf, so a crossover always
     exists; bracket it, then bisect. *)
  let hi = ref 1. in
  while phase !hi > -.Float.pi do
    hi := !hi *. 2.
  done;
  let lo = ref 0. in
  for _ = 1 to 60 do
    let mid = 0.5 *. (!lo +. !hi) in
    if phase mid > -.Float.pi then lo := mid else hi := mid
  done;
  let w_pc = 0.5 *. (!lo +. !hi) in
  1. /. magnitude w_pc

let predict p ~flows = if gain_margin p ~flows < 1. then Oscillatory else Stable

let critical_flows p =
  (* margin(N) is monotone increasing: gain scales as C²/2N while the
     window pole moves right with N, both shrinking the loop. *)
  let hi = ref 1 in
  while predict p ~flows:!hi = Oscillatory && !hi < 1 lsl 30 do
    hi := !hi * 2
  done;
  let lo = ref (Stdlib.max 1 (!hi / 2)) and hi = ref !hi in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    if predict p ~flows:mid = Oscillatory then lo := mid else hi := mid
  done;
  !hi

(* --- empirical side ----------------------------------------------------- *)

let spec_for ?(duration = Sim.Time.sec 30) p ~flows ~seed =
  let sample =
    Sim.Time.max (Sim.Time.ms 1) (Sim.Time.scale p.base_rtt 0.25)
  in
  {
    Spec.default with
    Spec.name = Printf.sprintf "meanfield-n%d" flows;
    seed;
    duration;
    sample_period = sample;
    record_series = true;
    topology =
      Spec.Duplex
        {
          Spec.rate = p.capacity *. 8.;
          one_way_delay = Sim.Time.scale p.base_rtt 0.5;
          ifq_capacity = p.buffer_packets;
          loss_rate = 0.;
          ifq_red_ecn = Some p.red;
        };
    flows =
      [
        {
          Spec.default_flow with
          Spec.label = Some (Printf.sprintf "many-%d" flows);
          workload =
            Spec.Many_flows
              {
                flows;
                arrival_rate = None;
                arrival_pareto_shape = None;
                mean_size = None;
                size_pareto_shape = 1.2;
              };
        };
      ];
  }

let oscillation_threshold = 0.1

(* Mean and relative swing of the queue over the second half of the
   run (the first half is start-up transient: synchronized slow-start
   overshoot and drain). *)
let classify series ~duration =
  let times = Sim.Stats.Series.times series in
  let values = Sim.Stats.Series.values series in
  let half = Sim.Time.scale duration 0.5 in
  let acc = Sim.Stats.Summary.create () in
  Array.iteri
    (fun i t ->
      if Sim.Time.(t >= half) then Sim.Stats.Summary.add acc values.(i))
    times;
  if Sim.Stats.Summary.count acc = 0 then (0., 0., Stable)
  else begin
    let mean = Sim.Stats.Summary.mean acc in
    let rel =
      Sim.Stats.Summary.stddev acc /. Stdlib.max 1. (Float.abs mean)
    in
    (mean, rel, if rel > oscillation_threshold then Oscillatory else Stable)
  end

type sweep_point = {
  sp_flows : int;
  sp_margin : float;
  sp_predicted : verdict;
  sp_queue_mean : float;
  sp_amplitude : float;
  sp_measured : verdict;
  sp_in_band : bool;
}

type sweep = {
  points : sweep_point list;
  critical : int;
  agreed : int;
  out_of_band : int;
}

let default_flows critical =
  List.sort_uniq compare
    (List.filter_map
       (fun shift ->
         let n =
           if shift < 0 then critical lsr -shift else critical lsl shift
         in
         if n >= 1 then Some n else None)
       [ -3; -2; -1; 0; 1; 2; 3 ])

let sweep ?pool ?(duration = Sim.Time.sec 30) ?flows p ~seed =
  let critical = critical_flows p in
  let flows = match flows with Some f -> f | None -> default_flows critical in
  let specs = List.map (fun n -> spec_for ~duration p ~flows:n ~seed) flows in
  let outcomes = Spec.run_batch ?pool specs in
  let points =
    List.map2
      (fun n (o : Spec.outcome) ->
        let series =
          match o.Spec.results with
          | r :: _ -> r.Spec.ifq_series
          | [] -> Sim.Stats.Series.create ()
        in
        let mean, amp, measured = classify series ~duration in
        (* The engine's independent per-flow loss draws desynchronize
           the windows and damp the limit cycle near its onset — a
           stabilization the deterministic fluid model cannot see — so
           the measured boundary sits below the linearized prediction.
           The documented tolerance: verdicts must agree outside
           0.25x..2x of the predicted boundary. *)
        let in_band = 4 * n > critical && n < 2 * critical in
        {
          sp_flows = n;
          sp_margin = gain_margin p ~flows:n;
          sp_predicted = predict p ~flows:n;
          sp_queue_mean = mean;
          sp_amplitude = amp;
          sp_measured = measured;
          sp_in_band = in_band;
        })
      flows outcomes
  in
  let out = List.filter (fun sp -> not sp.sp_in_band) points in
  {
    points;
    critical;
    agreed =
      List.length (List.filter (fun sp -> sp.sp_predicted = sp.sp_measured) out);
    out_of_band = List.length out;
  }
