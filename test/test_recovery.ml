(* Surgical loss-recovery tests: kill exactly chosen segments with the
   link's deterministic drop filter and check the recovery machinery. *)

let mss = 1460

(* Drop the [n]th data segment (0-based, SYN excluded) exactly once. *)
let drop_nth_data n =
  let count = ref (-1) in
  fun (pkt : Netsim.Packet.t) ->
    match pkt.Netsim.Packet.payload with
    | Proto.Payload.Tcp h
      when h.Proto.Tcp_header.payload_len > 0
           && not (Proto.Tcp_header.has_flag h Proto.Tcp_header.Syn) ->
        incr count;
        !count = n
    | Proto.Payload.Tcp _ | Proto.Payload.Udp _ -> false

let setup ?config ?slow_start ~filter ~bytes () =
  let sched = Sim.Scheduler.create ~seed:8 () in
  let path =
    Netsim.Topology.Duplex.create sched ~rate:(Sim.Units.mbps 100.)
      ~one_way_delay:(Sim.Time.ms 10) ~ifq_capacity:200 ()
  in
  Netsim.Link.set_drop_filter path.Netsim.Topology.Duplex.a_to_b filter;
  let ids = Netsim.Packet.Id_source.create () in
  let conn =
    Tcp.Connection.establish ~src:path.Netsim.Topology.Duplex.a
      ~dst:path.Netsim.Topology.Duplex.b ~flow:1 ~ids ?config ?slow_start
      ~bytes ()
  in
  (sched, conn)

let test_single_loss_fast_retransmit () =
  let sched, conn =
    setup ~filter:(drop_nth_data 20) ~bytes:(100 * mss) ()
  in
  Sim.Scheduler.run ~until:(Sim.Time.sec 10) sched;
  let sender = conn.Tcp.Connection.sender in
  Alcotest.(check int) "complete" (100 * mss) (Tcp.Sender.bytes_acked sender);
  Alcotest.(check int) "exactly one retransmission" 1
    (Tcp.Sender.retransmits sender);
  Alcotest.(check int) "no timeout (fast retransmit did it)" 0
    (Tcp.Sender.timeouts sender);
  let fast =
    Option.value ~default:0.
      (Web100.Group.read (Tcp.Sender.stats sender) Web100.Kis.fast_retran)
  in
  Alcotest.(check (float 0.)) "one fast-retransmit event" 1. fast

let test_single_loss_newreno () =
  let config = { Tcp.Config.default with use_sack = false } in
  let sched, conn =
    setup ~config ~filter:(drop_nth_data 20) ~bytes:(100 * mss) ()
  in
  Sim.Scheduler.run ~until:(Sim.Time.sec 10) sched;
  let sender = conn.Tcp.Connection.sender in
  Alcotest.(check int) "complete without SACK" (100 * mss)
    (Tcp.Sender.bytes_acked sender);
  Alcotest.(check int) "no timeout" 0 (Tcp.Sender.timeouts sender)

let test_burst_loss_sack_recovery () =
  (* Kill five consecutive segments: SACK recovery should retransmit
     exactly those five, still without a timeout. *)
  let count = ref (-1) in
  let filter (pkt : Netsim.Packet.t) =
    match pkt.Netsim.Packet.payload with
    | Proto.Payload.Tcp h when h.Proto.Tcp_header.payload_len > 0 ->
        incr count;
        !count >= 30 && !count < 35
    | Proto.Payload.Tcp _ | Proto.Payload.Udp _ -> false
  in
  let sched, conn = setup ~filter ~bytes:(200 * mss) () in
  Sim.Scheduler.run ~until:(Sim.Time.sec 10) sched;
  let sender = conn.Tcp.Connection.sender in
  Alcotest.(check int) "complete" (200 * mss) (Tcp.Sender.bytes_acked sender);
  Alcotest.(check int) "five retransmissions" 5
    (Tcp.Sender.retransmits sender);
  Alcotest.(check int) "no timeout with SACK" 0 (Tcp.Sender.timeouts sender)

let test_lost_retransmission_needs_rto () =
  (* Drop the 20th data segment AND its first retransmission (same
     sequence number): fast retransmit fails and only the RTO can save
     the connection. *)
  let seen_twenty_seq = ref None in
  let n = ref (-1) in
  let filter (pkt : Netsim.Packet.t) =
    match pkt.Netsim.Packet.payload with
    | Proto.Payload.Tcp h when h.Proto.Tcp_header.payload_len > 0 -> (
        incr n;
        if !n = 20 then begin
          seen_twenty_seq := Some h.Proto.Tcp_header.seq;
          true
        end
        else
          match !seen_twenty_seq with
          | Some seq when Proto.Seqno.equal seq h.Proto.Tcp_header.seq ->
              (* First retransmission of the same segment: drop it too,
                 then let further copies through. *)
              seen_twenty_seq := None;
              true
          | Some _ | None -> false)
    | Proto.Payload.Tcp _ | Proto.Payload.Udp _ -> false
  in
  let sched, conn = setup ~filter ~bytes:(100 * mss) () in
  Sim.Scheduler.run ~until:(Sim.Time.sec 30) sched;
  let sender = conn.Tcp.Connection.sender in
  Alcotest.(check int) "complete eventually" (100 * mss)
    (Tcp.Sender.bytes_acked sender);
  Alcotest.(check bool) "needed a timeout" true
    (Tcp.Sender.timeouts sender >= 1)

let test_sack_blocks_flow_back () =
  (* After a hole, the duplicate ACKs flowing back must carry SACK
     blocks describing the out-of-order data. *)
  let sched = Sim.Scheduler.create ~seed:8 () in
  let path =
    Netsim.Topology.Duplex.create sched ~rate:(Sim.Units.mbps 100.)
      ~one_way_delay:(Sim.Time.ms 10) ~ifq_capacity:200 ()
  in
  Netsim.Link.set_drop_filter path.Netsim.Topology.Duplex.a_to_b
    (drop_nth_data 10);
  let saw_sack = ref 0 in
  Netsim.Link.add_tap path.Netsim.Topology.Duplex.b_to_a (fun _ pkt ->
      match pkt.Netsim.Packet.payload with
      | Proto.Payload.Tcp h when h.Proto.Tcp_header.sack_blocks <> [] ->
          incr saw_sack
      | Proto.Payload.Tcp _ | Proto.Payload.Udp _ -> ());
  let ids = Netsim.Packet.Id_source.create () in
  let conn =
    Tcp.Connection.establish ~src:path.Netsim.Topology.Duplex.a
      ~dst:path.Netsim.Topology.Duplex.b ~flow:1 ~ids ~bytes:(50 * mss) ()
  in
  Sim.Scheduler.run ~until:(Sim.Time.sec 5) sched;
  Alcotest.(check bool) "SACK blocks observed on the wire" true
    (!saw_sack > 0);
  Alcotest.(check int) "one retransmission" 1
    (Tcp.Sender.retransmits conn.Tcp.Connection.sender)

let test_receiver_dup_and_ooo_counters () =
  let sched, conn =
    setup ~filter:(drop_nth_data 10) ~bytes:(50 * mss) ()
  in
  Sim.Scheduler.run ~until:(Sim.Time.sec 5) sched;
  let receiver = conn.Tcp.Connection.receiver in
  Alcotest.(check bool) "out-of-order arrivals recorded" true
    (Tcp.Receiver.out_of_order_segments receiver > 0);
  Alcotest.(check int) "no spurious duplicates" 0
    (Tcp.Receiver.duplicate_segments receiver)

let suite =
  [
    Alcotest.test_case "single loss -> fast retransmit" `Quick
      test_single_loss_fast_retransmit;
    Alcotest.test_case "single loss -> NewReno" `Quick
      test_single_loss_newreno;
    Alcotest.test_case "burst loss -> SACK recovery" `Quick
      test_burst_loss_sack_recovery;
    Alcotest.test_case "lost retransmission -> RTO" `Quick
      test_lost_retransmission_needs_rto;
    Alcotest.test_case "SACK recovery path" `Quick test_sack_blocks_flow_back;
    Alcotest.test_case "receiver OOO counters" `Quick
      test_receiver_dup_and_ooo_counters;
  ]
