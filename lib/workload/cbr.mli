(** Constant-bit-rate UDP source: background cross traffic that shares
    queues with the TCP flows under study but does not react to loss. *)

type t

val start :
  host:Netsim.Host.t ->
  dst:int ->
  flow:int ->
  ids:Netsim.Packet.Id_source.source ->
  rate:Sim.Units.rate ->
  ?packet_bytes:int ->
  ?stop_at:Sim.Time.t ->
  unit ->
  t
(** Emit [packet_bytes]-byte datagrams (default 1000) at [rate] until
    [stop_at] (default: forever). Emission is paced deterministically. *)

val stop : t -> unit
val packets_sent : t -> int
val packets_stalled : t -> int
(** Datagrams refused by the local IFQ (counted, not retried). *)
