(* RTO exponential backoff across multi-RTO outages, backoff reset on
   new data, and Karn's rule against stale duplicate ACKs. *)

let mss = 1460

let setup ?config ?fault ~bytes () =
  let sched = Sim.Scheduler.create ~seed:8 () in
  let path =
    Netsim.Topology.Duplex.create sched ~rate:(Sim.Units.mbps 100.)
      ~one_way_delay:(Sim.Time.ms 10) ~ifq_capacity:200 ()
  in
  (match fault with
  | None -> ()
  | Some profile ->
      let m =
        Netsim.Fault_model.create ~rng:(Sim.Rng.of_seed 21) profile
      in
      Netsim.Fault_model.install m path.Netsim.Topology.Duplex.a_to_b);
  let ids = Netsim.Packet.Id_source.create () in
  let conn =
    Tcp.Connection.establish ~src:path.Netsim.Topology.Duplex.a
      ~dst:path.Netsim.Topology.Duplex.b ~flow:1 ~ids ?config ~bytes ()
  in
  (sched, path, conn)

let blackout_profile =
  {
    Netsim.Fault_model.passthrough with
    Netsim.Fault_model.schedule =
      [
        Netsim.Fault_model.Outage
          { start = Sim.Time.sec 1; stop = Sim.Time.sec 7 };
      ];
  }

let test_backoff_doubles_and_clamps () =
  let max_rto = Sim.Time.ms 1600 in
  let config = { Tcp.Config.default with max_rto } in
  (* 20 MB: still streaming when the 6-second blackout hits at t=1s. *)
  let sched, _path, conn =
    setup ~config ~fault:blackout_profile ~bytes:(14_000 * mss) ()
  in
  let sender = conn.Tcp.Connection.sender in
  let probes = ref [] in
  for i = 1 to 58 do
    (* Every 100 ms through the blackout: backoff trajectory + RTO cap. *)
    ignore
      (Sim.Scheduler.at sched
         (Sim.Time.ms (1000 + (i * 100)))
         (fun () ->
           probes :=
             (Tcp.Sender.rto_backoff sender, Tcp.Sender.rto sender) :: !probes))
  done;
  Sim.Scheduler.run ~until:(Sim.Time.sec 20) sched;
  let probes = List.rev !probes in
  Alcotest.(check bool) "at least 3 consecutive timeouts" true
    (Tcp.Sender.timeouts sender >= 3);
  let in_blackout = List.filteri (fun i _ -> i < 58) probes in
  let rec non_decreasing = function
    | (a, _) :: ((b, _) :: _ as rest) -> a <= b && non_decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "backoff never shrinks during the blackout" true
    (non_decreasing in_blackout);
  let max_backoff =
    List.fold_left (fun acc (b, _) -> max acc b) 1 in_blackout
  in
  Alcotest.(check bool)
    (Printf.sprintf "backoff doubled repeatedly (reached %d)" max_backoff)
    true (max_backoff >= 8);
  List.iter
    (fun (_, rto) ->
      Alcotest.(check bool) "RTO clamped at max_rto" true
        Sim.Time.(rto <= max_rto))
    probes;
  (match List.rev in_blackout with
  | (_, rto_late) :: _ ->
      Alcotest.(check bool) "late-blackout RTO sits at the cap" true
        (Sim.Time.equal rto_late max_rto)
  | [] -> Alcotest.fail "no probes recorded");
  (* Recovery: the transfer finishes and the first new-data ACK resets
     the multiplier (Karn). *)
  Alcotest.(check int) "transfer completes after the blackout"
    (14_000 * mss)
    (Tcp.Sender.bytes_acked sender);
  Alcotest.(check int) "backoff reset by new data" 1
    (Tcp.Sender.rto_backoff sender)

let test_karn_stale_duplicate_does_not_poison_rtt () =
  (* Deliver data segment #30 twice, the copy 500 ms late. The stale
     copy provokes a duplicate ACK echoing a 500 ms-old timestamp; under
     Karn's rule that ACK (no una advance) must not feed the estimator,
     so SRTT stays at path scale. *)
  let sched, path, conn = setup ~bytes:(50 * mss) () in
  let count = ref (-1) in
  Netsim.Link.set_fault_hook path.Netsim.Topology.Duplex.a_to_b
    (fun _now pkt ->
      match pkt.Netsim.Packet.payload with
      | Proto.Payload.Tcp h when h.Proto.Tcp_header.payload_len > 0 ->
          incr count;
          if !count = 30 then [ Sim.Time.zero; Sim.Time.ms 500 ]
          else [ Sim.Time.zero ]
      | Proto.Payload.Tcp _ | Proto.Payload.Udp _ -> [ Sim.Time.zero ]);
  Sim.Scheduler.run ~until:(Sim.Time.sec 5) sched;
  let sender = conn.Tcp.Connection.sender in
  Alcotest.(check int) "complete" (50 * mss) (Tcp.Sender.bytes_acked sender);
  Alcotest.(check bool) "receiver saw the duplicate" true
    (Tcp.Receiver.duplicate_segments conn.Tcp.Connection.receiver >= 1);
  (match Tcp.Sender.srtt sender with
  | None -> Alcotest.fail "no RTT estimate"
  | Some srtt ->
      Alcotest.(check bool)
        (Printf.sprintf "SRTT %.1f ms stays at path scale"
           (Sim.Time.to_ms srtt))
        true
        Sim.Time.(srtt < Sim.Time.ms 100));
  Alcotest.(check bool) "RTO not inflated by the stale echo" true
    Sim.Time.(Tcp.Sender.rto sender < Sim.Time.ms 400)

let test_sender_restarts_after_early_blackout () =
  (* The outage opens 200 ms in, while the window is still growing out
     of slow-start, and lasts 5 s — many consecutive RTO firings with
     zero feedback. The connection must pick itself up afterwards and
     finish off the go-back-N + backoff machinery alone. *)
  let fault =
    {
      Netsim.Fault_model.passthrough with
      Netsim.Fault_model.schedule =
        [
          Netsim.Fault_model.Outage
            { start = Sim.Time.ms 200; stop = Sim.Time.ms 5200 };
        ];
    }
  in
  let sched, _path, conn = setup ~fault ~bytes:(2_000 * mss) () in
  Sim.Scheduler.run ~until:(Sim.Time.sec 20) sched;
  let sender = conn.Tcp.Connection.sender in
  Alcotest.(check int) "completes despite mid-transfer blackout"
    (2_000 * mss)
    (Tcp.Sender.bytes_acked sender);
  Alcotest.(check bool) "took multiple timeouts" true
    (Tcp.Sender.timeouts sender >= 3)

let suite =
  [
    Alcotest.test_case "backoff doubles and clamps across a blackout" `Quick
      test_backoff_doubles_and_clamps;
    Alcotest.test_case "Karn: stale duplicate ACK ignored" `Quick
      test_karn_stale_duplicate_does_not_poison_rtt;
    Alcotest.test_case "sender restarts after blackout" `Quick
      test_sender_restarts_after_early_blackout;
  ]
