(* The domain pool: canonical-order aggregation, bit-identical output
   for any worker count, per-task failure capture that neither hangs
   nor poisons the pool. *)

let work i =
  (* Deterministic per-task computation of varying cost, driven by the
     task's own derived RNG stream. *)
  let rng = Sim.Rng.of_seed (Sim.Rng.derive_seed ~root:42 ~stream:i) in
  let steps = 1_000 + (i * 317 mod 700) in
  let acc = ref 0. in
  for _ = 1 to steps do
    acc := !acc +. Sim.Rng.float rng
  done;
  Printf.sprintf "%d:%.12f" i !acc

let aggregate jobs =
  Engine.Pool.with_pool ~jobs (fun pool ->
      Engine.Pool.map pool
        ~label:(fun i -> Printf.sprintf "task-%d" i)
        ~f:work (List.init 16 Fun.id)
      |> String.concat "|")

let test_identical_across_worker_counts () =
  let one = aggregate 1 in
  Alcotest.(check string) "1 vs 2 domains" one (aggregate 2);
  Alcotest.(check string) "1 vs 4 domains" one (aggregate 4)

let test_canonical_order () =
  Engine.Pool.with_pool ~jobs:4 (fun pool ->
      let out =
        Engine.Pool.map pool ~label:string_of_int
          ~f:(fun i ->
            (* Earlier tasks spin longer, so with four workers the later
               tasks finish first; results must still come back in
               submission order. *)
            let spin = (16 - i) * 20_000 in
            let acc = ref 0 in
            for k = 1 to spin do
              acc := !acc + k
            done;
            ignore !acc;
            i)
          (List.init 16 Fun.id)
      in
      Alcotest.(check (list int)) "submission order" (List.init 16 Fun.id)
        out)

let test_failure_reported_with_label () =
  Engine.Pool.with_pool ~jobs:4 (fun pool ->
      (try
         ignore
           (Engine.Pool.map pool
              ~label:(fun i -> Printf.sprintf "cell-%d" i)
              ~f:(fun i -> if i = 5 then failwith "boom" else i)
              (List.init 8 Fun.id));
         Alcotest.fail "expected Task_failed"
       with Engine.Pool.Task_failed { label; exn; _ } ->
         Alcotest.(check string) "scenario label" "cell-5" label;
         Alcotest.(check bool) "original exception preserved" true
           (match exn with Failure m -> String.equal m "boom" | _ -> false));
      (* The failed batch completed and the pool is still usable. *)
      let again =
        Engine.Pool.map pool ~label:string_of_int
          ~f:(fun i -> i + 1)
          (List.init 8 Fun.id)
      in
      Alcotest.(check (list int)) "pool survives a failed batch"
        [ 1; 2; 3; 4; 5; 6; 7; 8 ] again)

let test_first_failure_in_canonical_order () =
  Engine.Pool.with_pool ~jobs:4 (fun pool ->
      try
        ignore
          (Engine.Pool.map pool
             ~label:(fun i -> Printf.sprintf "cell-%d" i)
             ~f:(fun i -> if i mod 3 = 2 then failwith "x" else i)
             (List.init 9 Fun.id));
        Alcotest.fail "expected Task_failed"
      with Engine.Pool.Task_failed { label; _ } ->
        Alcotest.(check string) "lowest failing index wins" "cell-2" label)

let test_sequential_degradation () =
  Engine.Pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check int) "jobs" 1 (Engine.Pool.jobs pool);
      Alcotest.(check (list int)) "empty batch" []
        (Engine.Pool.map pool ~label:string_of_int ~f:Fun.id []);
      try
        ignore
          (Engine.Pool.map pool
             ~label:(fun _ -> "solo")
             ~f:(fun () -> failwith "seq")
             [ () ]);
        Alcotest.fail "expected Task_failed"
      with Engine.Pool.Task_failed { label; _ } ->
        Alcotest.(check string) "sequential failure labelled" "solo" label)

let test_poisoned_cell_leaves_survivors_identical () =
  (* The chaos-sweep pattern: tasks wrap their own failures into result
     rows instead of raising, so one poisoned cell costs exactly its own
     row and the surviving rows match the sequential run byte for byte. *)
  let captured i =
    try if i = 5 then failwith "poisoned cell" else work i
    with Failure m -> Printf.sprintf "%d:FAILED(%s)" i m
  in
  let rows jobs =
    Engine.Pool.with_pool ~jobs (fun pool ->
        Engine.Pool.map pool
          ~label:(fun i -> Printf.sprintf "cell-%d" i)
          ~f:captured (List.init 12 Fun.id))
  in
  let sequential = rows 1 in
  Alcotest.(check string) "poisoned row carries its own error"
    "5:FAILED(poisoned cell)" (List.nth sequential 5);
  Alcotest.(check int) "batch drained" 12 (List.length sequential);
  Alcotest.(check (list string)) "survivors identical at --jobs 4"
    sequential (rows 4)

let test_create_rejects_zero_jobs () =
  Alcotest.(check bool) "invalid_arg on jobs=0" true
    (try
       ignore (Engine.Pool.create ~jobs:0 ());
       false
     with Invalid_argument _ -> true)

let test_map_collect_verdicts () =
  (* Every cell reports: Ok rows in order, each failing cell its own
     labeled Error, identical shape at any worker count. *)
  let shape jobs =
    Engine.Pool.with_pool ~jobs (fun pool ->
        Engine.Pool.map_collect pool
          ~label:(fun i -> Printf.sprintf "cell-%d" i)
          ~f:(fun i -> if i mod 4 = 1 then failwith "bad" else i * 10)
          (List.init 10 Fun.id))
    |> List.map (function
         | Ok v -> Printf.sprintf "ok:%d" v
         | Error { Engine.Pool.flabel; fexn; _ } ->
             Printf.sprintf "err:%s:%s" flabel
               (match fexn with Failure m -> m | _ -> "?"))
  in
  let expected =
    List.init 10 (fun i ->
        if i mod 4 = 1 then Printf.sprintf "err:cell-%d:bad" i
        else Printf.sprintf "ok:%d" (i * 10))
  in
  Alcotest.(check (list string)) "jobs=1 verdicts" expected (shape 1);
  Alcotest.(check (list string)) "jobs=4 verdicts" expected (shape 4)

let test_map_collect_all_ok_and_all_fail () =
  Engine.Pool.with_pool ~jobs:2 (fun pool ->
      Alcotest.(check int) "all-ok has no errors" 0
        (Engine.Pool.map_collect pool ~label:string_of_int ~f:Fun.id
           (List.init 6 Fun.id)
        |> List.filter Result.is_error |> List.length);
      Alcotest.(check int) "all-fail drains the batch" 6
        (Engine.Pool.map_collect pool ~label:string_of_int
           ~f:(fun _ -> failwith "all")
           (List.init 6 Fun.id)
        |> List.filter Result.is_error |> List.length);
      (* and the pool is still healthy afterwards *)
      Alcotest.(check (list int)) "pool survives" [ 0; 1; 2 ]
        (Engine.Pool.map pool ~label:string_of_int ~f:Fun.id [ 0; 1; 2 ]))

let suite =
  [
    Alcotest.test_case "identical output on 1/2/4 domains" `Quick
      test_identical_across_worker_counts;
    Alcotest.test_case "canonical result order" `Quick test_canonical_order;
    Alcotest.test_case "failure reported with scenario label" `Quick
      test_failure_reported_with_label;
    Alcotest.test_case "first failure in canonical order" `Quick
      test_first_failure_in_canonical_order;
    Alcotest.test_case "sequential degradation (jobs=1)" `Quick
      test_sequential_degradation;
    Alcotest.test_case "poisoned cell leaves survivors identical" `Quick
      test_poisoned_cell_leaves_survivors_identical;
    Alcotest.test_case "jobs=0 rejected" `Quick test_create_rejects_zero_jobs;
    Alcotest.test_case "map_collect per-cell verdicts" `Quick
      test_map_collect_verdicts;
    Alcotest.test_case "map_collect all-ok / all-fail" `Quick
      test_map_collect_all_ok_and_all_fail;
  ]
