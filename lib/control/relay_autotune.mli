(** Relay-feedback (Åström–Hägglund) autotuning.

    Instead of hunting for the stability boundary, excite the plant with
    a relay of amplitude [d] around the set point. The loop settles into
    a limit cycle whose period approximates Tc and whose amplitude [a]
    gives the ultimate gain via the describing function:
    Ku = 4d / (π·a). Safer than the ZN experiment (bounded excursions)
    and what one would actually deploy in a kernel. *)

type result = {
  critical : Tuning.critical_point;
  cycles_observed : int;
}

val tune :
  plant:(unit -> dt:float -> u:float -> float) ->
  setpoint:float ->
  relay_amplitude:float ->
  dt:float ->
  horizon:float ->
  ?hysteresis:float ->
  unit ->
  (result, string) Stdlib.result
(** [hysteresis] (default 0) is the dead band around the set point that
    suppresses chattering on noisy plants. Errors if fewer than three
    limit cycles are observed within [horizon]. *)
