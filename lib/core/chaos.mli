(** Chaos sweeps: randomized fault schedules driven through whole
    scenarios, with invariant checking and deterministic failure
    replay.

    Every case is pure data — a {!Spec.t} (whose fault profiles carry
    the impairments) plus the harness's invariant knobs — and running
    it is a pure function of that data. The harness samples a canonical
    trace while the simulation runs and checks structural invariants at
    the end (termination, post-outage progress, packet conservation,
    monotone counters, optional completion). A failing case serializes
    to JSON under [results/chaos_failures/] and {!replay} re-runs it
    from the artifact, byte-identical at any [--jobs] setting. *)

type case = {
  spec : Spec.t;
      (** the scenario; the harness drives its first TCP flow *)
  progress_rtos : int;
      (** progress deadline after the last outage, in units of the
          flow's max RTO *)
  check_completion : bool;
      (** require the flow's byte budget acked within the duration *)
}

val make_case :
  ?name:string ->
  ?seed:int ->
  ?variant:string ->
  ?rate:Sim.Units.rate ->
  ?one_way_delay:Sim.Time.t ->
  ?ifq_capacity:int ->
  ?duration:Sim.Time.t ->
  ?bytes:int option ->
  ?max_rto:Sim.Time.t ->
  ?progress_rtos:int ->
  ?check_completion:bool ->
  ?forward:Netsim.Fault_model.profile ->
  ?reverse:Netsim.Fault_model.profile ->
  unit ->
  case
(** A single-bulk-flow duplex case. Defaults are the paper's testbed
    path (100 Mbit/s, 60 ms RTT, IFQ 100), 20 s horizon, 400-segment
    transfer ([bytes]), 2 s RTO ceiling, 4-RTO progress window,
    completion checked, no faults. [variant] is the flow's slow-start
    policy ({!Tcp.Slow_start.by_name}). *)

val default_case : case
(** [make_case ()]. *)

val adjust :
  ?variant:string ->
  ?duration:Sim.Time.t ->
  ?check_completion:bool ->
  case ->
  case
(** Tweak the spec-embedded knobs of a single-flow case. *)

val case_name : case -> string
val case_max_rto : case -> Sim.Time.t
(** The first flow's RTO ceiling (TCP default when unset). *)

type outcome = {
  case : case;
  completed : bool;
  bytes_acked : int;
  timeouts : int;
  retransmits : int;
  violations : string list;  (** empty iff every invariant held *)
  trace : string;
      (** canonical CSV sampled every [spec.sample_period] — the
          byte-identical replay witness *)
}

val passed : outcome -> bool

val run_case : case -> outcome
(** {!Spec.build} the scenario, attach the trace sampler and progress
    invariant, {!Spec.execute}, and check invariants (packet
    conservation only on duplex topologies, where the measured hosts
    sit directly on the measured links). Deterministic in [case].
    Raises [Invalid_argument] on an unknown variant, an invalid fault
    profile, or a case whose spec has no TCP flow starting at t=0. *)

val run_sweep : ?pool:Engine.Pool.t -> case list -> outcome list
(** Run every case, capturing per-case exceptions as an
    ["exception: ..."] violation so one poisoned cell never loses the
    rest of the batch. Results are in input order; with [pool] the
    cases run in parallel with byte-identical outcomes. *)

(** {2 Random schedule generation} *)

val random_case : root:int -> index:int -> case
(** A random fault schedule under [Sim.Rng.derive_seed ~root
    ~stream:index]: Gilbert–Elliott burst loss (~70% of cases),
    reordering (~50%), duplication (~40%), 0–2 outage windows, 0–1
    delay steps, occasionally a lightly-impaired ACK path. Variants
    alternate standard/restricted by index parity. Deterministic in
    [(root, index)]. *)

val random_cases : root:int -> int -> case list
(** [random_cases ~root n] is indices [0 .. n-1]. *)

(** {2 Serialization and replay} *)

val case_to_json : case -> Report.Json.t
(** [{"spec": ..., "progress_rtos": ..., "check_completion": ...}] with
    the spec in {!Spec.to_json} form. *)

val case_of_json : Report.Json.t -> (case, string) result
(** Inverse of {!case_to_json}; errors name the offending field.
    [progress_rtos] and [check_completion] default when absent. *)

val outcome_to_json : outcome -> Report.Json.t

val write_failures : dir:string -> outcome list -> string list
(** Write one [<name>.json] artifact per failed outcome into [dir]
    (created if missing); returns the paths written. *)

type artifact = {
  artifact_case : case;
  artifact_violations : string list;
  artifact_trace : string;
}

val load_artifact : string -> (artifact, string) result

val replay : string -> (outcome * bool, string) result
(** Re-run the case stored in a failure artifact. The boolean is [true]
    when the fresh run's trace and violations match the artifact
    byte-for-byte — the determinism check [rss_sim chaos --replay]
    reports. *)
