(** End host: transport attach point + IFQ + NIC.

    Outbound: transports call {!send}, which places the packet in the
    {!Ifq} and kicks the NIC — or reports a send-stall. Inbound: the
    peer link delivers into {!deliver}, which demultiplexes on the
    packet's flow id. *)

type t

val create :
  Sim.Scheduler.t ->
  id:int ->
  nic_rate:Sim.Units.rate ->
  ifq_capacity:int ->
  ?ifq_red_ecn:Queue_disc.red_params ->
  unit ->
  t
(** With [ifq_red_ecn] the interface queue runs RED+ECN (marking) at the
    NIC's line rate instead of drop-tail. *)

val id : t -> int
val scheduler : t -> Sim.Scheduler.t
val ifq : t -> Ifq.t
val nic : t -> Nic.t

val attach_uplink : t -> Link.t -> unit
(** Connect the NIC's outgoing link toward the next hop. *)

val send : t -> Packet.t -> [ `Sent | `Stalled ]
(** Hand a packet to the interface queue. [`Stalled] means the IFQ was
    full; the packet was {e not} queued and the caller keeps ownership. *)

val register_flow : t -> flow:int -> (Packet.t -> unit) -> unit
(** Route inbound packets of [flow] to the handler. Replaces any
    previous registration for that flow. *)

val unregister_flow : t -> flow:int -> unit

val set_default_handler : t -> (Packet.t -> unit) -> unit
(** Handler for flows with no registration (default: drop silently). *)

val deliver : t -> Packet.t -> unit
(** Entry point for the inbound link. *)

val rx_packets : t -> int
val rx_bytes : t -> int
