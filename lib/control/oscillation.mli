(** Detection of sustained oscillation in a sampled signal — the
    instrument behind the Ziegler–Nichols ultimate-gain search. *)

type verdict =
  | Damped       (** oscillation decays: amplitude ratio well below 1 *)
  | Sustained of { period : float; amplitude : float }
  | Diverging    (** amplitude grows without bound *)
  | Inconclusive (** too few cycles observed *)

val analyze :
  ?settle_fraction:float ->
  ?min_amplitude:float ->
  dt:float ->
  float array ->
  verdict
(** [analyze ~dt samples] inspects the signal after discarding the first
    [settle_fraction] (default 0.3) of it, extracts cycles between
    upward mean-crossings, and classifies by the geometric mean of
    successive cycle-amplitude ratios: < 0.85 damped, > 1.15 diverging,
    otherwise sustained with [period] = mean crossing spacing and
    [amplitude] = mean half-swing. Cycles whose half-swing is below
    [min_amplitude] (default 0) are discarded first — without this
    floor, quantization noise (e.g. a queue bouncing between 0 and 1
    packets) reads as a sustained oscillation. Needs at least 3
    significant cycles to conclude. *)

val pp_verdict : Format.formatter -> verdict -> unit
