(* Chaos harness: randomized fault schedules driven through whole
   scenarios, with invariant checking and deterministic failure-replay
   artifacts.

   A case is pure data (seed, path parameters, fault profiles); running
   it is a pure function of that data, so an outcome — including its
   canonical trace — is byte-identical under any --jobs value and on
   replay from a serialized artifact. *)

module Json = Report.Json
module Fm = Netsim.Fault_model

type case = {
  name : string;
  seed : int;
  variant : string;
  rate : Sim.Units.rate;
  one_way_delay : Sim.Time.t;
  ifq_capacity : int;
  duration : Sim.Time.t;
  bytes : int option;
  max_rto : Sim.Time.t;
  progress_rtos : int;
  check_completion : bool;
  forward : Fm.profile;
  reverse : Fm.profile;
}

let default_case =
  {
    name = "chaos";
    seed = 1;
    variant = "standard";
    rate = Sim.Units.mbps 100.;
    one_way_delay = Sim.Time.ms 30;
    ifq_capacity = 100;
    duration = Sim.Time.sec 20;
    bytes = Some (400 * 1460);
    max_rto = Sim.Time.sec 2;
    progress_rtos = 4;
    check_completion = true;
    forward = Fm.passthrough;
    reverse = Fm.passthrough;
  }

type outcome = {
  case : case;
  completed : bool;
  bytes_acked : int;
  timeouts : int;
  retransmits : int;
  violations : string list;
  trace : string;
}

let passed o = o.violations = []

(* --- JSON serialization ---------------------------------------------- *)

let time_to_json t = Json.Number (float_of_int (Sim.Time.to_ns_int t))

let time_of_json j =
  Option.map (fun f -> Sim.Time.of_ns_int (int_of_float f)) (Json.number j)

let jitter_to_json (j : Fm.jitter) =
  Json.Obj
    [ ("prob", Json.Number j.Fm.prob);
      ("max_extra_ns", time_to_json j.Fm.max_extra) ]

let ge_to_json (g : Fm.ge) =
  Json.Obj
    [
      ("p_gb", Json.Number g.Fm.p_gb);
      ("p_bg", Json.Number g.Fm.p_bg);
      ("loss_good", Json.Number g.Fm.loss_good);
      ("loss_bad", Json.Number g.Fm.loss_bad);
    ]

let event_to_json = function
  | Fm.Outage { start; stop } ->
      Json.Obj
        [
          ("kind", Json.String "outage");
          ("start_ns", time_to_json start);
          ("stop_ns", time_to_json stop);
        ]
  | Fm.Delay_step { at; extra } ->
      Json.Obj
        [
          ("kind", Json.String "delay_step");
          ("at_ns", time_to_json at);
          ("extra_ns", time_to_json extra);
        ]

let opt_to_json f = function None -> Json.Null | Some v -> f v

let profile_to_json (p : Fm.profile) =
  Json.Obj
    [
      ("ge", opt_to_json ge_to_json p.Fm.ge);
      ("reorder", opt_to_json jitter_to_json p.Fm.reorder);
      ("duplicate", opt_to_json jitter_to_json p.Fm.duplicate);
      ("schedule", Json.List (List.map event_to_json p.Fm.schedule));
    ]

let case_to_json c =
  Json.Obj
    [
      ("name", Json.String c.name);
      (* Seeds from [Rng.derive_seed] are 62-bit; a JSON double only
         holds 53 bits, so the seed travels as a decimal string. *)
      ("seed", Json.String (string_of_int c.seed));
      ("variant", Json.String c.variant);
      ("rate_mbps", Json.Number (Sim.Units.rate_to_mbps c.rate));
      ("one_way_delay_ns", time_to_json c.one_way_delay);
      ("ifq_capacity", Json.Number (float_of_int c.ifq_capacity));
      ("duration_ns", time_to_json c.duration);
      ( "bytes",
        match c.bytes with
        | None -> Json.Null
        | Some b -> Json.Number (float_of_int b) );
      ("max_rto_ns", time_to_json c.max_rto);
      ("progress_rtos", Json.Number (float_of_int c.progress_rtos));
      ("check_completion", Json.Bool c.check_completion);
      ("forward", profile_to_json c.forward);
      ("reverse", profile_to_json c.reverse);
    ]

(* Parsing: every accessor threads an error message naming the field. *)

let ( let* ) r f = Result.bind r f

let field key j =
  match Json.member key j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" key)

let num key j =
  let* v = field key j in
  match Json.number v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "field %S is not a number" key)

let str key j =
  let* v = field key j in
  match Json.string_value v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "field %S is not a string" key)

let time key j =
  let* v = field key j in
  match time_of_json v with
  | Some t -> Ok t
  | None -> Error (Printf.sprintf "field %S is not a time" key)

let opt_field key parse j =
  match Json.member key j with
  | None | Some Json.Null -> Ok None
  | Some v -> Result.map Option.some (parse v)

let jitter_of_json j =
  let* prob = num "prob" j in
  let* max_extra = time "max_extra_ns" j in
  Ok { Fm.prob; max_extra }

let ge_of_json j =
  let* p_gb = num "p_gb" j in
  let* p_bg = num "p_bg" j in
  let* loss_good = num "loss_good" j in
  let* loss_bad = num "loss_bad" j in
  Ok { Fm.p_gb; p_bg; loss_good; loss_bad }

let event_of_json j =
  let* kind = str "kind" j in
  match kind with
  | "outage" ->
      let* start = time "start_ns" j in
      let* stop = time "stop_ns" j in
      Ok (Fm.Outage { start; stop })
  | "delay_step" ->
      let* at = time "at_ns" j in
      let* extra = time "extra_ns" j in
      Ok (Fm.Delay_step { at; extra })
  | other -> Error (Printf.sprintf "unknown schedule event kind %S" other)

let profile_of_json j =
  let* ge = opt_field "ge" ge_of_json j in
  let* reorder = opt_field "reorder" jitter_of_json j in
  let* duplicate = opt_field "duplicate" jitter_of_json j in
  let* schedule_json = field "schedule" j in
  let* events =
    match Json.list_value schedule_json with
    | None -> Error "field \"schedule\" is not a list"
    | Some items ->
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            let* ev = event_of_json item in
            Ok (ev :: acc))
          (Ok []) items
        |> Result.map List.rev
  in
  Ok { Fm.ge; reorder; duplicate; schedule = events }

let case_of_json j =
  let* name = str "name" j in
  let* seed =
    let* s = str "seed" j in
    match int_of_string_opt s with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "field \"seed\" is not an integer: %S" s)
  in
  let* variant = str "variant" j in
  let* rate_mbps = num "rate_mbps" j in
  let* one_way_delay = time "one_way_delay_ns" j in
  let* ifq_capacity = num "ifq_capacity" j in
  let* duration = time "duration_ns" j in
  let* bytes =
    match Json.member "bytes" j with
    | None | Some Json.Null -> Ok None
    | Some v -> (
        match Json.number v with
        | Some f -> Ok (Some (int_of_float f))
        | None -> Error "field \"bytes\" is not a number")
  in
  let* max_rto = time "max_rto_ns" j in
  let* progress_rtos = num "progress_rtos" j in
  let* check_completion =
    let* v = field "check_completion" j in
    match v with
    | Json.Bool b -> Ok b
    | _ -> Error "field \"check_completion\" is not a bool"
  in
  let* forward_json = field "forward" j in
  let* forward = profile_of_json forward_json in
  let* reverse_json = field "reverse" j in
  let* reverse = profile_of_json reverse_json in
  Ok
    {
      name;
      seed;
      variant;
      rate = Sim.Units.mbps rate_mbps;
      one_way_delay;
      ifq_capacity = int_of_float ifq_capacity;
      duration;
      bytes;
      max_rto;
      progress_rtos = int_of_float progress_rtos;
      check_completion;
      forward;
      reverse;
    }

(* --- running one case ------------------------------------------------- *)

let sample_period = Sim.Time.ms 250

(* Distinct derive_seed streams for the two fault models, far from the
   small stream indices sweeps use for their cells. *)
let forward_stream = 0xFA1
let reverse_stream = 0xFA2

let run_case case =
  let scenario =
    Scenario.anl_lbnl ~seed:case.seed ~rate:case.rate
      ~one_way_delay:case.one_way_delay ~ifq_capacity:case.ifq_capacity ()
  in
  let sched = scenario.Scenario.sched in
  let fwd =
    Fm.create
      ~rng:
        (Sim.Rng.of_seed
           (Sim.Rng.derive_seed ~root:case.seed ~stream:forward_stream))
      case.forward
  in
  let rev =
    Fm.create
      ~rng:
        (Sim.Rng.of_seed
           (Sim.Rng.derive_seed ~root:case.seed ~stream:reverse_stream))
      case.reverse
  in
  Fm.install fwd (Scenario.forward_link scenario);
  Fm.install rev (Scenario.reverse_link scenario);
  let slow_start =
    match Tcp.Slow_start.by_name case.variant with
    | Ok ss -> ss
    | Error e -> invalid_arg e
  in
  let config = { Tcp.Config.default with max_rto = case.max_rto } in
  let transfer =
    Workload.Bulk.start
      ~src:(Scenario.sender_host scenario)
      ~dst:(Scenario.receiver_host scenario)
      ~flow:1 ~ids:scenario.Scenario.ids ~config ~slow_start
      ?bytes:case.bytes ~name:case.name ()
  in
  let sender = Workload.Bulk.sender transfer in
  let mss = float_of_int Tcp.Config.default.Tcp.Config.mss in
  let violations = ref [] in
  let violate fmt =
    Printf.ksprintf (fun msg -> violations := msg :: !violations) fmt
  in
  let trace = Buffer.create 4096 in
  Buffer.add_string trace
    "t_ms,bytes_acked,cwnd_seg,flight,timeouts,retx,stalls,backoff\n";
  (* Monotonicity watchdogs for the web100-style counters. *)
  let watch = [| 0; 0; 0; 0; 0 |] in
  let watch_names =
    [| "bytes_acked"; "bytes_sent"; "timeouts"; "retransmits"; "send_stalls" |]
  in
  let sample () =
    let now = Sim.Scheduler.now sched in
    let cwnd = Tcp.Sender.cwnd sender in
    if not (Float.is_finite cwnd && cwnd > 0.) then
      violate "t=%.3fs: cwnd not a positive finite value (%g)"
        (Sim.Time.to_sec now) cwnd;
    let current =
      [|
        Tcp.Sender.bytes_acked sender;
        Tcp.Sender.bytes_sent sender;
        Tcp.Sender.timeouts sender;
        Tcp.Sender.retransmits sender;
        Tcp.Sender.send_stalls sender;
      |]
    in
    Array.iteri
      (fun i v ->
        if v < watch.(i) then
          violate "t=%.3fs: counter %s went backwards (%d -> %d)"
            (Sim.Time.to_sec now) watch_names.(i) watch.(i) v;
        watch.(i) <- v)
      current;
    Buffer.add_string trace
      (Printf.sprintf "%.1f,%d,%.3f,%d,%d,%d,%d,%d\n" (Sim.Time.to_ms now)
         current.(0)
         (cwnd /. mss)
         (Tcp.Sender.flight sender)
         current.(2) current.(3) current.(4)
         (Tcp.Sender.rto_backoff sender))
  in
  ignore (Sim.Scheduler.every sched sample_period sample);
  (* Progress invariant: within [progress_rtos · max_rto] of the last
     outage ending, the connection must have made forward progress (or
     already be complete) — a stalled-forever sender after a blackout is
     exactly the regression class this harness exists to catch. *)
  let last_outage_end =
    match (Fm.last_outage_end fwd, Fm.last_outage_end rev) with
    | None, None -> None
    | Some a, None -> Some a
    | None, Some b -> Some b
    | Some a, Some b -> Some (Sim.Time.max a b)
  in
  (match last_outage_end with
  | None -> ()
  | Some stop ->
      let window = Sim.Time.mul_int case.max_rto case.progress_rtos in
      let deadline = Sim.Time.add stop window in
      if Sim.Time.(deadline <= case.duration) then
        ignore
          (Sim.Scheduler.at sched stop (fun () ->
               let base = Tcp.Sender.bytes_acked sender in
               ignore
                 (Sim.Scheduler.at sched deadline (fun () ->
                      let now_acked = Tcp.Sender.bytes_acked sender in
                      let complete =
                        match case.bytes with
                        | Some b -> now_acked >= b
                        | None -> false
                      in
                      if (not complete) && now_acked <= base then
                        violate
                          "no progress within %d RTO (%.1fs) of outage \
                           ending at t=%.3fs (stuck at %d bytes)"
                          case.progress_rtos (Sim.Time.to_sec window)
                          (Sim.Time.to_sec stop) base)))));
  Sim.Scheduler.run ~until:case.duration sched;
  (* Packet conservation, per direction: every NIC transmit is exactly
     one of delivered / lost / still flying, net of fault duplicates. *)
  let conservation label nic link =
    let tx = Netsim.Nic.tx_packets nic in
    let accounted =
      Netsim.Link.delivered link + Netsim.Link.lost link
      + Netsim.Link.in_flight link
      - Netsim.Link.duplicated link
    in
    if tx <> accounted then
      violate
        "%s packet conservation broken: tx=%d but delivered=%d lost=%d \
         in_flight=%d duplicated=%d"
        label tx (Netsim.Link.delivered link) (Netsim.Link.lost link)
        (Netsim.Link.in_flight link)
        (Netsim.Link.duplicated link)
  in
  conservation "forward"
    (Netsim.Host.nic (Scenario.sender_host scenario))
    (Scenario.forward_link scenario);
  conservation "reverse"
    (Netsim.Host.nic (Scenario.receiver_host scenario))
    (Scenario.reverse_link scenario);
  let delivered_fwd = Netsim.Link.delivered (Scenario.forward_link scenario) in
  let rx = Netsim.Host.rx_packets (Scenario.receiver_host scenario) in
  if delivered_fwd <> rx then
    violate "delivery accounting broken: link delivered %d, host received %d"
      delivered_fwd rx;
  let bytes_acked = Tcp.Sender.bytes_acked sender in
  let completed =
    match case.bytes with Some b -> bytes_acked >= b | None -> false
  in
  if case.check_completion && not completed then
    violate "transfer incomplete at t=%.1fs: %d of %s bytes acked"
      (Sim.Time.to_sec case.duration)
      bytes_acked
      (match case.bytes with
      | Some b -> string_of_int b
      | None -> "unbounded");
  Buffer.add_string trace
    (Printf.sprintf
       "summary,%d,%d,%d,%d,%d,%d,%d,%d\n" bytes_acked
       (Tcp.Sender.timeouts sender)
       (Tcp.Sender.retransmits sender)
       (Tcp.Sender.send_stalls sender)
       (Fm.random_drops fwd) (Fm.outage_drops fwd) (Fm.duplicates fwd)
       (Fm.reordered fwd));
  {
    case;
    completed;
    bytes_acked;
    timeouts = Tcp.Sender.timeouts sender;
    retransmits = Tcp.Sender.retransmits sender;
    violations = List.rev !violations;
    trace = Buffer.contents trace;
  }

(* A raising case must not poison a sweep: capture the exception as a
   violation so the batch drains and every other cell still reports. *)
let run_case_captured case =
  try run_case case
  with e ->
    {
      case;
      completed = false;
      bytes_acked = 0;
      timeouts = 0;
      retransmits = 0;
      violations = [ Printf.sprintf "exception: %s" (Printexc.to_string e) ];
      trace = "";
    }

let run_sweep ?pool cases =
  match pool with
  | None -> List.map run_case_captured cases
  | Some pool ->
      Engine.Pool.map pool ~label:(fun c -> c.name) ~f:run_case_captured
        cases

(* --- random schedule generation --------------------------------------- *)

let variants = [| "standard"; "restricted" |]

let random_case ~root ~index =
  let seed = Sim.Rng.derive_seed ~root ~stream:index in
  let rng = Sim.Rng.of_seed seed in
  let owd = default_case.one_way_delay in
  let variant = variants.(index mod Array.length variants) in
  let maybe p f = if Sim.Rng.float rng < p then Some (f ()) else None in
  let ge =
    maybe 0.7 (fun () ->
        {
          Fm.p_gb = Sim.Rng.uniform rng ~lo:0.005 ~hi:0.05;
          p_bg = Sim.Rng.uniform rng ~lo:0.1 ~hi:0.5;
          loss_good = Sim.Rng.uniform rng ~lo:0. ~hi:0.005;
          loss_bad = Sim.Rng.uniform rng ~lo:0.05 ~hi:0.5;
        })
  in
  let reorder =
    maybe 0.5 (fun () ->
        {
          Fm.prob = Sim.Rng.uniform rng ~lo:0.005 ~hi:0.05;
          max_extra = Sim.Time.scale owd (Sim.Rng.uniform rng ~lo:0.5 ~hi:4.);
        })
  in
  let duplicate =
    maybe 0.4 (fun () ->
        {
          Fm.prob = Sim.Rng.uniform rng ~lo:0.002 ~hi:0.02;
          max_extra = Sim.Time.scale owd (Sim.Rng.uniform rng ~lo:0. ~hi:2.);
        })
  in
  let outages =
    List.init (Sim.Rng.int rng 3) (fun _ ->
        let start = Sim.Time.of_sec (Sim.Rng.uniform rng ~lo:1. ~hi:8.) in
        let len = Sim.Time.of_sec (Sim.Rng.uniform rng ~lo:0.2 ~hi:2.5) in
        Fm.Outage { start; stop = Sim.Time.add start len })
  in
  let steps =
    List.init (Sim.Rng.int rng 2) (fun _ ->
        Fm.Delay_step
          {
            at = Sim.Time.of_sec (Sim.Rng.uniform rng ~lo:1. ~hi:10.);
            extra =
              Sim.Time.scale owd (Sim.Rng.uniform rng ~lo:0. ~hi:2.);
          })
  in
  let forward =
    { Fm.ge; reorder; duplicate; schedule = outages @ steps }
  in
  (* Occasionally impair the ACK path too, more lightly. *)
  let reverse =
    if Sim.Rng.float rng < 0.3 then
      {
        Fm.passthrough with
        Fm.reorder =
          Some
            {
              Fm.prob = Sim.Rng.uniform rng ~lo:0.005 ~hi:0.03;
              max_extra =
                Sim.Time.scale owd (Sim.Rng.uniform rng ~lo:0.5 ~hi:2.);
            };
      }
    else Fm.passthrough
  in
  {
    default_case with
    name = Printf.sprintf "chaos-%d-%03d-%s" root index variant;
    seed;
    variant;
    forward;
    reverse;
  }

let random_cases ~root n = List.init n (fun i -> random_case ~root ~index:i)

(* --- failure artifacts ------------------------------------------------- *)

let outcome_to_json o =
  Json.Obj
    [
      ("case", case_to_json o.case);
      ("violations", Json.List (List.map (fun v -> Json.String v) o.violations));
      ("completed", Json.Bool o.completed);
      ("bytes_acked", Json.Number (float_of_int o.bytes_acked));
      ("trace", Json.String o.trace);
    ]

let rec ensure_dir dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then ensure_dir parent;
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ())
  end

(* Case names come from generators or artifacts; keep paths tame. *)
let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '_')
    name

let write_failure ~dir outcome =
  ensure_dir dir;
  let path = Filename.concat dir (sanitize outcome.case.name ^ ".json") in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Json.to_string (outcome_to_json outcome)));
  path

let write_failures ~dir outcomes =
  List.filter_map
    (fun o -> if passed o then None else Some (write_failure ~dir o))
    outcomes

type artifact = {
  artifact_case : case;
  artifact_violations : string list;
  artifact_trace : string;
}

let load_artifact path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | contents -> (
      match Json.of_string contents with
      | Error e -> Error e
      | Ok j ->
          let* case_json = field "case" j in
          let* artifact_case = case_of_json case_json in
          let* violations_json = field "violations" j in
          let* artifact_violations =
            match Json.list_value violations_json with
            | None -> Error "field \"violations\" is not a list"
            | Some items ->
                Ok (List.filter_map Json.string_value items)
          in
          let* artifact_trace = str "trace" j in
          Ok { artifact_case; artifact_violations; artifact_trace })

let replay path =
  let* artifact = load_artifact path in
  let outcome = run_case_captured artifact.artifact_case in
  let identical =
    String.equal outcome.trace artifact.artifact_trace
    && outcome.violations = artifact.artifact_violations
  in
  Ok (outcome, identical)
