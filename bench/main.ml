(* Experiment harness: regenerates every figure and table of the paper
   (Fig. 1 and the §4 throughput claim) plus the extended experiments
   indexed in DESIGN.md §5, then runs Bechamel microbenchmarks of the
   substrate. CSV artefacts land in results/.

   Usage: dune exec bench/main.exe -- [--jobs N] [section ...]
   Sections: fig1 table1 e2 e3 e4 e5 e6 e7 e8 micro (default: all).

   --jobs N runs the independent experiment cells of each section on an
   N-domain Engine.Pool (default: Domain.recommended_domain_count; 1
   disables parallelism). Results are aggregated in canonical order, so
   the tables and results/*.csv are byte-identical for every N. *)

let results_dir = "results"

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let pct x = Printf.sprintf "%.1f%%" x

let run_row (r : Core.Run.result) =
  [
    r.Core.Run.label;
    Report.Table.cell_f r.Core.Run.goodput_mbps;
    pct (100. *. r.Core.Run.utilization);
    Report.Table.cell_i r.Core.Run.send_stalls;
    Report.Table.cell_i r.Core.Run.congestion_signals;
    Report.Table.cell_i r.Core.Run.retransmits;
    Report.Table.cell_i r.Core.Run.timeouts;
    Report.Table.cell_f r.Core.Run.final_cwnd_segments;
    Report.Table.cell_f r.Core.Run.mean_ifq;
    (match r.Core.Run.time_to_90pct_util with
    | Some s -> Report.Table.cell_f s
    | None -> "never");
  ]

let run_headers =
  [
    "variant"; "goodput(Mb/s)"; "util"; "stalls"; "cong.sig"; "retx";
    "rto"; "cwnd(seg)"; "mean IFQ"; "t90(s)";
  ]

let print_runs rows =
  print_string
    (Report.Table.render
       ~aligns:
         [
           Report.Table.Left; Report.Table.Right; Report.Table.Right;
           Report.Table.Right; Report.Table.Right; Report.Table.Right;
           Report.Table.Right; Report.Table.Right; Report.Table.Right;
           Report.Table.Right;
         ]
       ~headers:run_headers ~rows ())

(* ------------------------------------------------------------------ *)

let fig1 pool =
  section "Figure 1 — cumulative send-stall signals, 0-25 s";
  let r = Core.Experiments.Fig1.run ?pool () in
  let std = r.Core.Experiments.Fig1.standard in
  let rss = r.Core.Experiments.Fig1.restricted in
  print_string
    (Report.Ascii_chart.line_chart ~title:"cumulative send-stall signals"
       ~x_label:"time (s)" ~y_label:"send-stalls"
       [
         Report.Ascii_chart.of_series ~label:"Standard TCP"
           std.Core.Run.stalls_series;
         Report.Ascii_chart.of_series ~label:"Proposed Scheme (RSS)"
           rss.Core.Run.stalls_series;
       ]);
  print_newline ();
  print_runs [ run_row std; run_row rss ];
  Printf.printf
    "\npaper: standard Linux TCP accumulates a handful of stalls early in\n\
     the transfer; the proposed scheme stays at zero.  measured: standard\n\
     %d stall(s) (first episode within the opening second), RSS %d.\n\
     A saturating flow stalls once per window-recovery cycle; the paper's\n\
     0..4 staircase appears verbatim for a disk-paced application — see\n\
     section e13.\n"
    std.Core.Run.send_stalls rss.Core.Run.send_stalls;
  Report.Csv.write_series
    ~path:(Filename.concat results_dir "fig1_standard_stalls.csv")
    ~name:"cum_send_stalls" std.Core.Run.stalls_series;
  Report.Csv.write_series
    ~path:(Filename.concat results_dir "fig1_restricted_stalls.csv")
    ~name:"cum_send_stalls" rss.Core.Run.stalls_series;
  Report.Csv.write_series
    ~path:(Filename.concat results_dir "fig1_standard_cwnd.csv")
    ~name:"cwnd_segments" std.Core.Run.cwnd_series;
  Report.Csv.write_series
    ~path:(Filename.concat results_dir "fig1_restricted_cwnd.csv")
    ~name:"cwnd_segments" rss.Core.Run.cwnd_series

let table1 pool =
  section "Table 1 — §4 throughput claim (paper: ~40% improvement)";
  let rows = Core.Experiments.Table1.run ?pool () in
  let cells =
    List.map
      (fun (row : Core.Experiments.Table1.row) ->
        [
          Report.Table.cell_f ~decimals:0
            row.Core.Experiments.Table1.duration_s;
          Report.Table.cell_f row.Core.Experiments.Table1.standard_mbps;
          Report.Table.cell_f row.Core.Experiments.Table1.restricted_mbps;
          pct row.Core.Experiments.Table1.improvement_pct;
          Report.Table.cell_i row.Core.Experiments.Table1.standard_stalls;
          Report.Table.cell_i row.Core.Experiments.Table1.restricted_stalls;
        ])
      rows
  in
  print_string
    (Report.Table.render
       ~aligns:(List.init 6 (fun _ -> Report.Table.Right))
       ~headers:
         [
           "duration(s)"; "standard(Mb/s)"; "RSS(Mb/s)"; "improvement";
           "std stalls"; "RSS stalls";
         ]
       ~rows:cells ());
  Report.Csv.write
    ~path:(Filename.concat results_dir "table1.csv")
    ~header:
      [ "duration_s"; "standard_mbps"; "restricted_mbps"; "improvement_pct" ]
    ~rows:
      (List.map
         (fun (r : Core.Experiments.Table1.row) ->
           [
             r.Core.Experiments.Table1.duration_s;
             r.Core.Experiments.Table1.standard_mbps;
             r.Core.Experiments.Table1.restricted_mbps;
             r.Core.Experiments.Table1.improvement_pct;
           ])
         rows)

let e2 pool =
  section "E2 — slow-start variant comparison (25 s, paper path)";
  let rows = Core.Experiments.Variants.run ?pool () in
  print_runs (List.map run_row rows)

let e3 pool =
  section "E3 — throughput vs interface-queue size (std vs RSS, 20 s)";
  let rows = Core.Experiments.Ifq_sweep.run ?pool () in
  let cells =
    List.map
      (fun (r : Core.Experiments.Ifq_sweep.row) ->
        let s = r.Core.Experiments.Ifq_sweep.standard in
        let x = r.Core.Experiments.Ifq_sweep.restricted in
        [
          Report.Table.cell_i r.Core.Experiments.Ifq_sweep.ifq_capacity;
          Report.Table.cell_f s.Core.Run.goodput_mbps;
          Report.Table.cell_i s.Core.Run.send_stalls;
          Report.Table.cell_f x.Core.Run.goodput_mbps;
          Report.Table.cell_i x.Core.Run.send_stalls;
          Report.Table.cell_f
            (100.
            *. (x.Core.Run.goodput_mbps -. s.Core.Run.goodput_mbps)
            /. Float.max 1e-9 s.Core.Run.goodput_mbps);
        ])
      rows
  in
  print_string
    (Report.Table.render
       ~aligns:(List.init 6 (fun _ -> Report.Table.Right))
       ~headers:
         [
           "IFQ(pkts)"; "std(Mb/s)"; "std stalls"; "RSS(Mb/s)";
           "RSS stalls"; "gain(%)";
         ]
       ~rows:cells ());
  print_string
    "note: growing the soft buffers (paper §2) narrows but never closes\n\
     the gap, while memory cost rises linearly.\n";
  Report.Csv.write
    ~path:(Filename.concat results_dir "e3_ifq_sweep.csv")
    ~header:[ "ifq"; "standard_mbps"; "restricted_mbps" ]
    ~rows:
      (List.map
         (fun (r : Core.Experiments.Ifq_sweep.row) ->
           [
             float_of_int r.Core.Experiments.Ifq_sweep.ifq_capacity;
             r.Core.Experiments.Ifq_sweep.standard.Core.Run.goodput_mbps;
             r.Core.Experiments.Ifq_sweep.restricted.Core.Run.goodput_mbps;
           ])
         rows)

let e4 pool =
  section "E4 — throughput vs round-trip time (std vs RSS, 20 s)";
  let rows = Core.Experiments.Rtt_sweep.run ?pool () in
  let cells =
    List.map
      (fun (r : Core.Experiments.Rtt_sweep.row) ->
        let s = r.Core.Experiments.Rtt_sweep.standard in
        let x = r.Core.Experiments.Rtt_sweep.restricted in
        [
          Report.Table.cell_i r.Core.Experiments.Rtt_sweep.rtt_ms;
          Report.Table.cell_f s.Core.Run.goodput_mbps;
          Report.Table.cell_f x.Core.Run.goodput_mbps;
          Report.Table.cell_f
            (x.Core.Run.goodput_mbps
            /. Float.max 1e-9 s.Core.Run.goodput_mbps);
        ])
      rows
  in
  print_string
    (Report.Table.render
       ~aligns:(List.init 4 (fun _ -> Report.Table.Right))
       ~headers:[ "RTT(ms)"; "std(Mb/s)"; "RSS(Mb/s)"; "ratio" ]
       ~rows:cells ());
  Report.Csv.write
    ~path:(Filename.concat results_dir "e4_rtt_sweep.csv")
    ~header:[ "rtt_ms"; "standard_mbps"; "restricted_mbps" ]
    ~rows:
      (List.map
         (fun (r : Core.Experiments.Rtt_sweep.row) ->
           [
             float_of_int r.Core.Experiments.Rtt_sweep.rtt_ms;
             r.Core.Experiments.Rtt_sweep.standard.Core.Run.goodput_mbps;
             r.Core.Experiments.Rtt_sweep.restricted.Core.Run.goodput_mbps;
           ])
         rows)

let e5 pool =
  section "E5 — slow-start overshoot loss at a network bottleneck (15 s)";
  let rows = Core.Experiments.Burst_loss.run ?pool () in
  let cells =
    List.map
      (fun (r : Core.Experiments.Burst_loss.row) ->
        [
          Report.Table.cell_f ~decimals:0
            r.Core.Experiments.Burst_loss.bottleneck_mbps;
          Report.Table.cell_i r.Core.Experiments.Burst_loss.buffer_packets;
          r.Core.Experiments.Burst_loss.slow_start;
          Report.Table.cell_i r.Core.Experiments.Burst_loss.router_drops;
          Report.Table.cell_i r.Core.Experiments.Burst_loss.retransmits;
          Report.Table.cell_f r.Core.Experiments.Burst_loss.goodput_mbps;
        ])
      rows
  in
  print_string
    (Report.Table.render
       ~aligns:
         [
           Report.Table.Right; Report.Table.Right; Report.Table.Left;
           Report.Table.Right; Report.Table.Right; Report.Table.Right;
         ]
       ~headers:
         [
           "bottleneck(Mb/s)"; "buffer(pkts)"; "slow-start"; "router drops";
           "retx"; "goodput(Mb/s)";
         ]
       ~rows:cells ());
  print_string
    "note: with a fast NIC the overshoot lands on the router, outside the\n\
     IFQ sensor — RSS controls host soft components, not network queues\n\
     (the paper's stated scope).\n"

let e6 pool =
  section "E6 — PID tuning ablation (ZN experiment on the live simulator)";
  let r = Core.Experiments.Pid_ablation.run ?pool () in
  (match r.Core.Experiments.Pid_ablation.measured with
  | Ok critical ->
      Format.printf "measured critical point: %a@."
        Control.Tuning.pp_critical critical
  | Error e -> Printf.printf "ZN measurement failed: %s\n" e);
  let cells =
    List.map
      (fun (row : Core.Experiments.Pid_ablation.row) ->
        let res = row.Core.Experiments.Pid_ablation.result in
        [
          row.Core.Experiments.Pid_ablation.label;
          Format.asprintf "%a" Control.Pid.pp_gains
            row.Core.Experiments.Pid_ablation.gains;
          Report.Table.cell_f res.Core.Run.goodput_mbps;
          Report.Table.cell_i res.Core.Run.send_stalls;
          Report.Table.cell_f res.Core.Run.mean_ifq;
          Report.Table.cell_f res.Core.Run.peak_ifq;
        ])
      r.Core.Experiments.Pid_ablation.rows
  in
  print_string
    (Report.Table.render
       ~aligns:
         [
           Report.Table.Left; Report.Table.Left; Report.Table.Right;
           Report.Table.Right; Report.Table.Right; Report.Table.Right;
         ]
       ~headers:
         [
           "tuning"; "gains"; "goodput(Mb/s)"; "stalls"; "mean IFQ";
           "peak IFQ";
         ]
       ~rows:cells ())

let e7 pool =
  section "E7 — local-congestion policy ablation (standard slow-start, 25 s)";
  let rows = Core.Experiments.Local_cong_ablation.run ?pool () in
  print_runs (List.map (fun (_, r) -> run_row r) rows)

let e8 pool =
  section "E8 — friendliness: RSS vs Reno on a shared bottleneck (40 s)";
  let r = Core.Experiments.Fairness.run ?pool () in
  Printf.printf
    "reno flow: %.2f Mb/s   rss flow: %.2f Mb/s   Jain index: %.4f\n\
     control (reno vs reno): Jain %.4f\n"
    r.Core.Experiments.Fairness.reno_mbps
    r.Core.Experiments.Fairness.restricted_mbps
    r.Core.Experiments.Fairness.jain_index
    r.Core.Experiments.Fairness.reno_vs_reno_jain

let e9 pool =
  section "E9 — gain scheduling: fixed vs RTT-adaptive RSS (20 s)";
  let rows = Core.Experiments.Adaptive_gains.run ?pool () in
  let cells =
    List.map
      (fun (r : Core.Experiments.Adaptive_gains.row) ->
        let s = r.Core.Experiments.Adaptive_gains.standard in
        let f = r.Core.Experiments.Adaptive_gains.restricted_fixed in
        let a = r.Core.Experiments.Adaptive_gains.restricted_adaptive in
        [
          Report.Table.cell_i r.Core.Experiments.Adaptive_gains.rtt_ms;
          Report.Table.cell_f s.Core.Run.goodput_mbps;
          Report.Table.cell_f f.Core.Run.goodput_mbps;
          Report.Table.cell_i f.Core.Run.send_stalls;
          Report.Table.cell_f a.Core.Run.goodput_mbps;
          Report.Table.cell_i a.Core.Run.send_stalls;
        ])
      rows
  in
  print_string
    (Report.Table.render
       ~aligns:(List.init 6 (fun _ -> Report.Table.Right))
       ~headers:
         [
           "RTT(ms)"; "std(Mb/s)"; "RSS-fixed(Mb/s)"; "stalls";
           "RSS-adaptive(Mb/s)"; "stalls";
         ]
       ~rows:cells ());
  print_string
    "note: fixed gains are tuned for the 60 ms path; the adaptive policy\n\
     rescales Ti/Td from the measured base RTT (Tc = 2*RTT rule).\n";
  Report.Csv.write
    ~path:(Filename.concat results_dir "e9_adaptive_gains.csv")
    ~header:
      [ "rtt_ms"; "standard_mbps"; "fixed_mbps"; "adaptive_mbps" ]
    ~rows:
      (List.map
         (fun (r : Core.Experiments.Adaptive_gains.row) ->
           [
             float_of_int r.Core.Experiments.Adaptive_gains.rtt_ms;
             r.Core.Experiments.Adaptive_gains.standard.Core.Run.goodput_mbps;
             r.Core.Experiments.Adaptive_gains.restricted_fixed
               .Core.Run.goodput_mbps;
             r.Core.Experiments.Adaptive_gains.restricted_adaptive
               .Core.Run.goodput_mbps;
           ])
         rows)

let e10 pool =
  section "E10 — does pacing alone prevent send-stalls? (25 s)";
  let rows = Core.Experiments.Pacing.run ?pool () in
  print_runs (List.map run_row rows);
  print_string
    "note: pacing spreads the slow-start bursts so the IFQ fills later\n\
     and more smoothly, but exponential growth still pushes the window\n\
     past BDP + IFQ; only the closed-loop controller stops short of it.\n"

let e11 pool =
  section "E11 — parallel GridFTP-style streams sharing one host (20 s)";
  let rows = Core.Experiments.Parallel_streams.run ?pool () in
  let cells =
    List.map
      (fun (r : Core.Experiments.Parallel_streams.row) ->
        [
          Report.Table.cell_i r.Core.Experiments.Parallel_streams.streams;
          r.Core.Experiments.Parallel_streams.slow_start;
          Report.Table.cell_f
            r.Core.Experiments.Parallel_streams.aggregate_mbps;
          Report.Table.cell_i
            r.Core.Experiments.Parallel_streams.total_stalls;
          Report.Table.cell_f ~decimals:4
            r.Core.Experiments.Parallel_streams.jain_index;
          Report.Table.cell_f r.Core.Experiments.Parallel_streams.mean_ifq;
        ])
      rows
  in
  print_string
    (Report.Table.render
       ~aligns:
         [
           Report.Table.Right; Report.Table.Left; Report.Table.Right;
           Report.Table.Right; Report.Table.Right; Report.Table.Right;
         ]
       ~headers:
         [
           "streams"; "slow-start"; "aggregate(Mb/s)"; "stalls"; "Jain";
           "mean IFQ";
         ]
       ~rows:cells ());
  print_string
    "note: at 1-2 streams per-connection RSS removes the stalls\n\
     outright, but at 4-8 its N independent controllers fight over the\n\
     one shared queue and stalls reappear (parallelism itself —\n\
     GridFTP's own workaround — masks the single-flow collapse). The\n\
     restricted-shared rows are this repo's extension: ONE host-wide\n\
     controller whose budget (and burst allowance) the members split —\n\
     stall-free at every stream count with near-perfect Jain fairness.\n"

let e12 pool =
  section "E12 — ECN marking on the local qdisc vs the RSS controller (25 s)";
  let rows = Core.Experiments.Local_ecn.run ?pool () in
  let cells =
    List.map
      (fun (r : Core.Experiments.Local_ecn.row) ->
        let res = r.Core.Experiments.Local_ecn.result in
        [
          r.Core.Experiments.Local_ecn.label;
          Report.Table.cell_f res.Core.Run.goodput_mbps;
          Report.Table.cell_i res.Core.Run.send_stalls;
          Report.Table.cell_i res.Core.Run.congestion_signals;
          Report.Table.cell_i r.Core.Experiments.Local_ecn.ce_marks;
          Report.Table.cell_f res.Core.Run.mean_ifq;
        ])
      rows
  in
  print_string
    (Report.Table.render
       ~aligns:
         [
           Report.Table.Left; Report.Table.Right; Report.Table.Right;
           Report.Table.Right; Report.Table.Right; Report.Table.Right;
         ]
       ~headers:
         [
           "sender/qdisc"; "goodput(Mb/s)"; "stalls"; "cong.sig";
           "CE marks"; "mean IFQ";
         ]
       ~rows:cells ());
  print_string
    "note: RED+ECN on the host qdisc (the road Linux later took) also\n\
     avoids hard stalls, but each mark takes a full RTT to echo back and\n\
     triggers a multiplicative halving, so the window saws below the\n\
     pipe; the controller regulates to the set point instead.\n"

let e13 pool =
  section
    "E13 — disk-paced application: the Figure-1 staircase mechanism (25 s)";
  let rows = Core.Experiments.Chunked_app.run ?pool () in
  print_string
    (Report.Ascii_chart.line_chart
       ~title:"cumulative send-stalls, 6MB chunk every 3s"
       ~x_label:"time (s)" ~y_label:"send-stalls"
       (List.map
          (fun (r : Core.Experiments.Chunked_app.row) ->
            Report.Ascii_chart.of_series
              ~label:r.Core.Experiments.Chunked_app.label
              r.Core.Experiments.Chunked_app.stalls_series)
          rows));
  let cells =
    List.map
      (fun (r : Core.Experiments.Chunked_app.row) ->
        [
          r.Core.Experiments.Chunked_app.label;
          Report.Table.cell_f r.Core.Experiments.Chunked_app.goodput_mbps;
          Report.Table.cell_i r.Core.Experiments.Chunked_app.send_stalls;
          Report.Table.cell_i
            r.Core.Experiments.Chunked_app.congestion_signals;
        ])
      rows
  in
  print_string
    (Report.Table.render
       ~aligns:
         [
           Report.Table.Left; Report.Table.Right; Report.Table.Right;
           Report.Table.Right;
         ]
       ~headers:[ "config"; "goodput(Mb/s)"; "stalls"; "cong.sig" ]
       ~rows:cells ());
  print_string
    "note: with RFC 2861 idle-restart disabled (a period-typical tuning\n\
     for bulk movers), each application burst dumps the old window into\n\
     the IFQ: one stall per chunk — the staircase of the paper's Fig. 1.\n";
  List.iter
    (fun (r : Core.Experiments.Chunked_app.row) ->
      Report.Csv.write_series
        ~path:
          (Filename.concat results_dir
             (Printf.sprintf "e13_%s_stalls.csv"
                (String.map
                   (fun c -> if c = '/' || c = '+' then '_' else c)
                   r.Core.Experiments.Chunked_app.label)))
        ~name:"cum_send_stalls" r.Core.Experiments.Chunked_app.stalls_series)
    rows

let e14 pool =
  section "E14 — the latency cost of a standing queue (20 s)";
  let rows = Core.Experiments.Latency.run ?pool () in
  let cells =
    List.map
      (fun (r : Core.Experiments.Latency.row) ->
        [
          r.Core.Experiments.Latency.label;
          Report.Table.cell_f r.Core.Experiments.Latency.goodput_mbps;
          Report.Table.cell_f r.Core.Experiments.Latency.mean_delay_ms;
          Report.Table.cell_f r.Core.Experiments.Latency.p99_delay_ms;
        ])
      rows
  in
  print_string
    (Report.Table.render
       ~aligns:
         [
           Report.Table.Left; Report.Table.Right; Report.Table.Right;
           Report.Table.Right;
         ]
       ~headers:
         [ "sender (set point)"; "goodput(Mb/s)"; "mean delay(ms)";
           "p99 delay(ms)" ]
       ~rows:cells ());
  print_string
    "note: the 90% set point keeps ~90 packets (~11 ms at 100 Mbit/s)\n\
     standing in the IFQ — a proto-bufferbloat tax. Halving the set\n\
     point returns ~5 ms for ~2 Mbit/s; at 0.2 the margin becomes too\n\
     thin for delayed-ACK burst noise and throughput starts to slip.\n"

(* ------------------------------------------------------------------ *)

(* Direct measurements of the simulation core: deterministic loops timed
   with the wall clock, allocation counted with [Gc.minor_words]. These
   are the numbers the CI bench-gate diffs against bench/baseline.json,
   so they avoid Bechamel's sampling noise in favour of one long run. *)

let time_and_alloc f =
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let events = f () in
  let t1 = Unix.gettimeofday () in
  let w1 = Gc.minor_words () in
  let n = float_of_int events in
  (((t1 -. t0) *. 1e9 /. n), ((w1 -. w0) /. n), (n /. (t1 -. t0)))

let core_metric_churn () =
  (* Steady-state add/pop churn at depth 1024. *)
  let q = Sim.Event_queue.create () in
  for i = 0 to 1023 do
    ignore
      (Sim.Event_queue.add q ~time:(Sim.Time.ns (i * 977 mod 7919)) (fun () -> ()))
  done;
  let n = 1_000_000 in
  time_and_alloc (fun () ->
      (* The scheduler's unboxed hot path: next_time_ns + pop_action_exn. *)
      for i = 0 to n - 1 do
        let ns = Sim.Event_queue.next_time_ns q in
        let (_ : unit -> unit) = Sim.Event_queue.pop_action_exn q in
        ignore
          (Sim.Event_queue.add q
             ~time:(Sim.Time.add (Sim.Time.of_ns_int ns)
                      (Sim.Time.ns (i * 977 mod 7919)))
             (fun () -> ()))
      done;
      n)

(* Steady-state arm/cancel churn — the many-flows engine's per-round
   timer pattern (every round re-arms; retiring flows cancel). Run
   against both structures from the same due-time sequence: the wheel
   must beat the heap and allocate nothing. *)
let churn_due i = (i * 977 mod 7919) + 1

let core_metric_wheel_churn () =
  let w =
    Sim.Timer_wheel.create ~initial_capacity:2048
      ~on_fire:(fun ~kind:_ ~flow:_ -> ())
      ()
  in
  let tick = Sim.Timer_wheel.tick_ns w in
  for i = 0 to 1023 do
    ignore (Sim.Timer_wheel.arm w ~due_ns:(churn_due i * tick) ~kind:0 ~flow:i)
  done;
  let n = 1_000_000 in
  time_and_alloc (fun () ->
      for i = 0 to n - 1 do
        Sim.Timer_wheel.cancel w
          (Sim.Timer_wheel.arm w ~due_ns:(churn_due i * tick) ~kind:0 ~flow:i)
      done;
      n)

let core_metric_heap_arm_cancel () =
  let q = Sim.Event_queue.create () in
  for i = 0 to 1023 do
    ignore (Sim.Event_queue.add q ~time:(Sim.Time.ns (churn_due i)) (fun () -> ()))
  done;
  let n = 1_000_000 in
  time_and_alloc (fun () ->
      for i = 0 to n - 1 do
        Sim.Event_queue.cancel q
          (Sim.Event_queue.add q
             ~time:(Sim.Time.ns (churn_due i))
             (fun () -> ()))
      done;
      n)

let core_metric_cancel_heavy () =
  (* Half the scheduled events are cancelled before draining — the
     lazy-cancellation + compaction path. *)
  let rounds = 500 and per = 1024 in
  time_and_alloc (fun () ->
      for _ = 1 to rounds do
        let q = Sim.Event_queue.create () in
        let hs =
          Array.init per (fun i ->
              Sim.Event_queue.add q
                ~time:(Sim.Time.ns (i * 977 mod 7919))
                (fun () -> ()))
        in
        Array.iteri
          (fun i h -> if i land 1 = 0 then Sim.Event_queue.cancel q h)
          hs;
        let rec drain () =
          match Sim.Event_queue.pop q with Some _ -> drain () | None -> ()
        in
        drain ()
      done;
      rounds * per)

let core_metric_periodic () =
  (* One periodic timer re-armed a million times. *)
  let s = Sim.Scheduler.create () in
  let count = ref 0 in
  ignore (Sim.Scheduler.every s (Sim.Time.us 10) (fun () -> incr count));
  let metrics =
    time_and_alloc (fun () ->
        Sim.Scheduler.run ~until:(Sim.Time.sec 10) s;
        !count)
  in
  metrics

let core_metric_trace_off () =
  (* The periodic loop with a tracer installed on the scheduler but the
     sched category masked out (the default): every dispatch pays the
     emit call, the mask test discards it. This is the "compiled in,
     disabled" configuration every untraced production run uses, so it
     is gated like the bare periodic loop — and allocation must stay
     at zero words/event. *)
  let s = Sim.Scheduler.create () in
  Sim.Scheduler.set_tracer s (Some (Trace.create ~capacity:1024 ()));
  let count = ref 0 in
  ignore (Sim.Scheduler.every s (Sim.Time.us 10) (fun () -> incr count));
  time_and_alloc (fun () ->
      Sim.Scheduler.run ~until:(Sim.Time.sec 10) s;
      !count)

let core_metric_trace_emit () =
  (* Retained emission into a wrapped ring: four int stores per record,
     zero allocation. *)
  let tr = Trace.create ~capacity:65536 () in
  let n = 1_000_000 in
  time_and_alloc (fun () ->
      for i = 0 to n - 1 do
        Trace.emit tr ~time_ns:i ~code:Trace.Code.link_tx ~src:1
          ~arg1:(i land 0xff) ~arg2:1500
      done;
      n)

(* The per-ACK window-update arithmetic, driven a million times through
   a congestion-avoidance record. [direct] constructs the closures
   straight from Cong_avoid; [registry] resolves the same controller
   through Tcp.Policy.by_name — the difference is the policy-zoo
   indirection (one extra record load per dispatch), which the gate
   keeps within noise of each other (<5% claimed in DESIGN.md §9). *)
let core_metric_policy_ack cc =
  let mss = Tcp.Config.default.Tcp.Config.mss in
  let n = 1_000_000 in
  time_and_alloc (fun () ->
      let cwnd = ref (100. *. float_of_int mss) in
      for _ = 1 to n do
        cwnd :=
          cc.Tcp.Cong_avoid.on_ack ~newly_acked:mss ~cwnd:!cwnd ~mss
            ~srtt:None ~min_rtt:None ~now:Sim.Time.zero;
        if !cwnd > 1e7 then cwnd := 100. *. float_of_int mss
      done;
      n)

let core_metric_policy_ack_direct () =
  core_metric_policy_ack (Tcp.Cong_avoid.reno ())

let core_metric_policy_ack_registry () =
  match Tcp.Policy.by_name "standard" with
  | Ok p -> core_metric_policy_ack p.Tcp.Policy.cong_avoid
  | Error e -> invalid_arg e

(* Best of three: a single ~50 ms wall-clock sample is at the mercy of
   transient machine load, which would make the regression gate flaky. *)
let core_metric_e2e f =
  let once () =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let a = once () in
  let b = once () in
  let c = once () in
  Float.min a (Float.min b c)

(* 100k concurrent AIMD flows through the flow-level engine for two
   sim-seconds: the SoA-table + timer-wheel hot loop end to end. *)
let core_metric_many_flows () =
  core_metric_e2e (fun () ->
      let sched = Sim.Scheduler.create ~seed:1 () in
      let t =
        Workload.Many_flows.start ~sched
          ~rng:(Sim.Scheduler.derive_rng sched)
          ~seed:1
          { Workload.Many_flows.default_params with flows = 100_000 }
      in
      Sim.Scheduler.run ~until:(Sim.Time.sec 2) sched;
      ignore (Workload.Many_flows.delivered_bytes t))

(* The checkpoint codec under the serve daemon: serialize a 1M-row flow
   table plus a fully loaded timer wheel into a Snapshot image and
   restore both into fresh structures, all in memory so the gate sees
   the codec cost, not the filesystem. Per-row allocation is gated: the
   columns must travel as whole-array section copies, not element by
   element — the checkpoint stall this bounds is what lets a live 1M-flow
   run snapshot on an interval without falling behind. *)
let core_metric_snapshot_roundtrip () =
  let n = 1_000_000 in
  let fill () =
    let t = Tcp.Flow_table.create ~initial_capacity:n () in
    for i = 0 to n - 1 do
      let r = Tcp.Flow_table.alloc t in
      Tcp.Flow_table.set_cwnd t r (float_of_int (1 + (i mod 97)));
      Tcp.Flow_table.set_una t r (i * 1448);
      Tcp.Flow_table.set_timer t r i;
      Tcp.Flow_table.seed_rng t r (i + 1)
    done;
    t
  in
  let table = fill () in
  let wheel =
    Sim.Timer_wheel.create ~initial_capacity:n
      ~on_fire:(fun ~kind:_ ~flow:_ -> ())
      ()
  in
  let tick = Sim.Timer_wheel.tick_ns wheel in
  for i = 0 to n - 1 do
    ignore (Sim.Timer_wheel.arm wheel ~due_ns:(churn_due i * tick) ~kind:0 ~flow:i)
  done;
  let save_wheel w wr =
    let pending = Sim.Timer_wheel.pending w in
    let due = Array.make pending 0 and flows = Array.make pending 0 in
    let i = ref 0 in
    Sim.Timer_wheel.iter_pending w ~f:(fun ~due_ns ~kind:_ ~flow ->
        due.(!i) <- due_ns;
        flows.(!i) <- flow;
        incr i);
    Sim.Snapshot.put_int_array wr "wheel.due_ns" due;
    Sim.Snapshot.put_int_array wr "wheel.flow" flows
  in
  let fresh_table = Tcp.Flow_table.create ~initial_capacity:n () in
  time_and_alloc (fun () ->
      let wr = Sim.Snapshot.writer () in
      Tcp.Flow_table.save table ~prefix:"ft." wr;
      save_wheel wheel wr;
      let image = Sim.Snapshot.to_string wr in
      let rd = Sim.Snapshot.of_string image in
      Tcp.Flow_table.restore fresh_table ~prefix:"ft." rd;
      let due = Sim.Snapshot.get_int_array rd "wheel.due_ns" in
      let flows = Sim.Snapshot.get_int_array rd "wheel.flow" in
      let w2 =
        Sim.Timer_wheel.create ~initial_capacity:n
          ~on_fire:(fun ~kind:_ ~flow:_ -> ())
          ()
      in
      Array.iteri
        (fun i due_ns ->
          ignore (Sim.Timer_wheel.arm w2 ~due_ns ~kind:0 ~flow:flows.(i)))
        due;
      assert (Sim.Timer_wheel.pending w2 = n);
      assert (Tcp.Flow_table.in_use fresh_table = n);
      n)

(* The partitioned-DES showcase: four loaded dumbbell segments chained
   through core duplex links, the topology [examples/
   dumbbell_of_dumbbells.json] ships. Series recording stays off so the
   wall clock measures the engines, not the samplers. *)
let pdes_spec ~domains =
  let bulk = Core.Spec.Bulk { bytes = None } in
  let flow ?(start_at = Sim.Time.zero) pair =
    {
      Core.Spec.default_flow with
      Core.Spec.label = Some (Printf.sprintf "p%d" pair);
      pair;
      start_at;
      workload = bulk;
    }
  in
  {
    Core.Spec.default with
    Core.Spec.name = "bench-pdes";
    seed = 42;
    duration = Sim.Time.sec 2;
    record_series = false;
    domains;
    topology =
      Core.Spec.Multi_dumbbell
        {
          Core.Spec.segments = 4;
          m_pairs = 2;
          m_access_rate = Sim.Units.mbps 1000.;
          m_access_delay = Sim.Time.ms 1;
          m_bottleneck_rate = Sim.Units.mbps 100.;
          m_bottleneck_delay = Sim.Time.ms 10;
          core_rate = Sim.Units.mbps 400.;
          core_delay = Sim.Time.ms 5;
          m_buffer_packets = 250;
          m_host_ifq_capacity = 100;
          m_red = None;
          cross_pairs = 3;
        };
    flows =
      List.concat_map
        (fun s ->
          [
            flow (2 * s);
            flow ~start_at:(Sim.Time.ms (500 * (s + 1))) ((2 * s) + 1);
          ])
        [ 0; 1; 2; 3 ]
      @ [ flow 8; flow 9; flow 10 ];
  }

let core_metric_pdes ~domains =
  core_metric_e2e (fun () -> ignore (Core.Spec.run (pdes_spec ~domains)))

(* Sharded many-flows on the same four-segment topology: one flow-level
   sub-population per segment — the workload the partition gate used to
   exclude. Gates the shard split + multi-wheel scheduler overhead at
   domains 1 and the synchronizer cost at domains 4. *)
let pdes_mf_spec ~domains =
  {
    (pdes_spec ~domains) with
    Core.Spec.name = "bench-pdes-mf";
    seed = 43;
    duration = Sim.Time.sec 4;
    flows =
      [
        {
          Core.Spec.default_flow with
          Core.Spec.workload =
            Core.Spec.Many_flows
              {
                flows = 100_000;
                arrival_rate = Some 50_000.;
                arrival_pareto_shape = None;
                mean_size = Some 60_000;
                size_pareto_shape = 1.3;
              };
        };
      ];
  }

let core_metric_pdes_mf ~domains =
  core_metric_e2e (fun () -> ignore (Core.Spec.run (pdes_mf_spec ~domains)))

let write_core_json path =
  let metric name (ns, words, ops) =
    Report.Json.Obj
      [
        ("name", Report.Json.String name);
        ("ns_per_event", Report.Json.Number ns);
        ("minor_words_per_event", Report.Json.Number words);
        ("ops_per_sec", Report.Json.Number ops);
      ]
  in
  let e2e name wall =
    Report.Json.Obj
      [
        ("name", Report.Json.String name);
        ("wall_s", Report.Json.Number wall);
      ]
  in
  let duration = Sim.Time.sec 2 in
  let pdes_wall_1 = core_metric_pdes ~domains:1 in
  let pdes_wall_4 = core_metric_pdes ~domains:4 in
  (* Near-linear scaling on a multicore box; honestly ~1x (sync overhead
     included) on a single-core runner. One-sided vs the committed
     baseline, so a baseline recorded on this machine only catches the
     ratio getting worse, never punishes a faster box. *)
  let pdes_scaling =
    Report.Json.Obj
      [
        ("name", Report.Json.String "pdes/dumbbell-scaling");
        ("ops_per_sec", Report.Json.Number (pdes_wall_1 /. pdes_wall_4));
      ]
  in
  let ((_, _, wheel_ops) as wheel_churn) = core_metric_wheel_churn () in
  let ((_, _, heap_ops) as heap_churn) = core_metric_heap_arm_cancel () in
  (* The ratio the wheel exists for: gated so the structure never
     quietly falls back to heap-class churn cost (the floor claimed in
     DESIGN.md is 2x; the baseline records the measured margin). *)
  let speedup =
    Report.Json.Obj
      [
        ("name", Report.Json.String "wheel/speedup-vs-heap");
        ("ops_per_sec", Report.Json.Number (wheel_ops /. heap_ops));
      ]
  in
  let json =
    Report.Json.Obj
      [
        ("schema", Report.Json.String "bench-core/1");
        ( "metrics",
          Report.Json.List
            [
              metric "eq/churn-1M" (core_metric_churn ());
              metric "eq/cancel-heavy" (core_metric_cancel_heavy ());
              metric "eq/arm-cancel-1M" heap_churn;
              metric "wheel/arm-cancel-1M" wheel_churn;
              speedup;
              metric "eq/periodic-1M" (core_metric_periodic ());
              metric "trace/emit-off-1M" (core_metric_trace_off ());
              metric "trace/emit-on-1M" (core_metric_trace_emit ());
              metric "policy/ack-direct-1M" (core_metric_policy_ack_direct ());
              metric "policy/ack-registry-1M"
                (core_metric_policy_ack_registry ());
              e2e "e2e/fig1-2s"
                (core_metric_e2e (fun () ->
                     ignore (Core.Experiments.Fig1.run ~duration ())));
              e2e "e2e/e2-2s"
                (core_metric_e2e (fun () ->
                     ignore (Core.Experiments.Variants.run ~duration ())));
              e2e "many_flows/churn" (core_metric_many_flows ());
              e2e "pdes/domains1" pdes_wall_1;
              e2e "pdes/domains4" pdes_wall_4;
              pdes_scaling;
              e2e "pdes/many-flows-domains1" (core_metric_pdes_mf ~domains:1);
              e2e "pdes/many-flows-domains4" (core_metric_pdes_mf ~domains:4);
              metric "snapshot/save-restore-1M"
                (core_metric_snapshot_roundtrip ());
            ] );
      ]
  in
  Report.Csv.write_string ~path (Report.Json.to_string json);
  json

let print_core_json json =
  match Report.Json.(member "metrics" json) with
  | Some (Report.Json.List metrics) ->
      let cells =
        List.map
          (fun m ->
            let get k =
              match Report.Json.(Option.bind (member k m) number) with
              | Some f -> f
              | None -> Float.nan
            in
            let name =
              match
                Report.Json.(Option.bind (member "name" m) string_value)
              with
              | Some s -> s
              | None -> "?"
            in
            let opt what fmt =
              if Float.is_nan (get what) then ""
              else Printf.sprintf fmt (get what)
            in
            if Float.is_nan (get "ops_per_sec") then
              [ name; Printf.sprintf "%.3f s wall" (get "wall_s"); ""; "" ]
            else if Float.is_nan (get "ns_per_event") then
              (* dimensionless ratio metrics (e.g. wheel vs heap) *)
              [ name; ""; ""; Printf.sprintf "%.2fx" (get "ops_per_sec") ]
            else
              [
                name;
                opt "ns_per_event" "%.1f ns/ev";
                opt "minor_words_per_event" "%.2f mw/ev";
                Printf.sprintf "%.2f Mops/s" (get "ops_per_sec" /. 1e6);
              ])
          metrics
      in
      print_string
        (Report.Table.render
           ~aligns:
             [
               Report.Table.Left; Report.Table.Right; Report.Table.Right;
               Report.Table.Right;
             ]
           ~headers:[ "core metric"; "time"; "alloc"; "throughput" ]
           ~rows:cells ())
  | Some _ | None -> ()

let microbenches _pool =
  section "Microbenchmarks (Bechamel, monotonic clock)";
  let open Bechamel in
  let test_event_queue =
    Test.make ~name:"sim/event-queue-1k"
      (Staged.stage @@ fun () ->
       let q = Sim.Event_queue.create () in
       for i = 0 to 999 do
         ignore
           (Sim.Event_queue.add q
              ~time:(Sim.Time.ns (i * 977 mod 7919))
              (fun () -> ()))
       done;
       let rec drain () =
         match Sim.Event_queue.pop q with Some _ -> drain () | None -> ()
       in
       drain ())
  in
  let test_eq_cancel =
    Test.make ~name:"sim/event-queue-cancel-1k"
      (Staged.stage @@ fun () ->
       let q = Sim.Event_queue.create () in
       let hs =
         Array.init 1024 (fun i ->
             Sim.Event_queue.add q
               ~time:(Sim.Time.ns (i * 977 mod 7919))
               (fun () -> ()))
       in
       Array.iteri
         (fun i h -> if i land 1 = 0 then Sim.Event_queue.cancel q h)
         hs;
       let rec drain () =
         match Sim.Event_queue.pop q with Some _ -> drain () | None -> ()
       in
       drain ())
  in
  let test_eq_periodic =
    Test.make ~name:"sim/periodic-timer-10k"
      (Staged.stage @@ fun () ->
       let s = Sim.Scheduler.create () in
       let count = ref 0 in
       ignore (Sim.Scheduler.every s (Sim.Time.us 10) (fun () -> incr count));
       Sim.Scheduler.run ~until:(Sim.Time.ms 100) s)
  in
  let test_pid =
    Test.make ~name:"control/pid-1k-steps"
      (Staged.stage @@ fun () ->
       let pid =
         Control.Pid.create
           (Control.Pid.config (Control.Pid.pid ~kp:0.3 ~ti:0.1 ~td:0.05))
       in
       for i = 0 to 999 do
         ignore
           (Control.Pid.step pid ~dt:0.001
              ~error:(Float.sin (float_of_int i /. 50.)))
       done)
  in
  let test_interval_set =
    Test.make ~name:"tcp/interval-set-512"
      (Staged.stage @@ fun () ->
       let s = Tcp.Interval_set.create () in
       for i = 0 to 511 do
         let lo = i * 3000 mod 65536 in
         Tcp.Interval_set.add s ~lo ~hi:(lo + 1460)
       done;
       ignore (Tcp.Interval_set.total s))
  in
  let mini_sim slow_start () =
    let spec =
      {
        Core.Run.default_spec with
        duration = Sim.Time.ms 1500;
        slow_start;
        sample_period = Sim.Time.ms 500;
      }
    in
    ignore (Core.Run.bulk spec)
  in
  (* One scenario bench per reproduced figure/table: fig1 and table1
     share the paper path (standard and RSS legs); e5's dumbbell is the
     third distinct scenario. *)
  let test_fig1_std =
    Test.make ~name:"scenario/fig1+table1-standard-1.5s"
      (Staged.stage (mini_sim "standard"))
  in
  let test_fig1_rss =
    Test.make ~name:"scenario/fig1+table1-restricted-1.5s"
      (Staged.stage (mini_sim "restricted"))
  in
  let test_dumbbell =
    Test.make ~name:"scenario/e5-dumbbell-1.5s"
      (Staged.stage @@ fun () ->
       ignore
         (Core.Experiments.Burst_loss.run ~rates_mbps:[ 100. ]
            ~duration:(Sim.Time.ms 1500) ()))
  in
  let test_e2 =
    Test.make ~name:"scenario/e2-variants-1.5s"
      (Staged.stage @@ fun () ->
       ignore (Core.Experiments.Variants.run ~duration:(Sim.Time.ms 1500) ()))
  in
  let grouped =
    Test.make_grouped ~name:"rss"
      [
        test_event_queue; test_eq_cancel; test_eq_periodic; test_pid;
        test_interval_set; test_fig1_std; test_fig1_rss; test_dumbbell;
        test_e2;
      ]
  in
  let cfg =
    Benchmark.cfg ~limit:64 ~quota:(Time.second 1.0) ~stabilize:false ()
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] grouped in
  let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        let est =
          match Analyze.OLS.estimates ols_result with
          | Some (e :: _) -> e
          | Some [] | None -> Float.nan
        in
        (name, est) :: acc)
      analyzed []
    |> List.sort compare
  in
  let cells =
    List.map
      (fun (name, ns) ->
        [
          name;
          (if Float.is_nan ns then "n/a"
           else if ns > 1e6 then Printf.sprintf "%.3f ms" (ns /. 1e6)
           else Printf.sprintf "%.0f ns" ns);
        ])
      rows
  in
  print_string
    (Report.Table.render
       ~aligns:[ Report.Table.Left; Report.Table.Right ]
       ~headers:[ "benchmark"; "time/run" ] ~rows:cells ());
  section "Simulation-core metrics (BENCH_core.json)";
  let json = write_core_json (Filename.concat results_dir "BENCH_core.json") in
  print_core_json json

(* ------------------------------------------------------------------ *)

let sections =
  [
    ("fig1", fig1); ("table1", table1); ("e2", e2); ("e3", e3);
    ("e4", e4); ("e5", e5); ("e6", e6); ("e7", e7); ("e8", e8);
    ("e9", e9); ("e10", e10); ("e11", e11); ("e12", e12); ("e13", e13);
    ("e14", e14); ("micro", microbenches);
  ]

let () =
  let jobs = ref (Engine.Pool.default_jobs ()) in
  let set_jobs v =
    match int_of_string_opt v with
    | Some n when n >= 1 -> jobs := n
    | Some _ | None ->
        Printf.eprintf "--jobs expects a positive integer, got %S\n" v;
        exit 2
  in
  let rec parse names = function
    | [] -> List.rev names
    | ("--jobs" | "-j") :: v :: rest ->
        set_jobs v;
        parse names rest
    | ("--jobs" | "-j") :: [] ->
        prerr_endline "--jobs expects a value";
        exit 2
    | arg :: rest when String.length arg > 7 && String.sub arg 0 7 = "--jobs="
      ->
        set_jobs (String.sub arg 7 (String.length arg - 7));
        parse names rest
    | arg :: rest -> parse (arg :: names) rest
  in
  let requested =
    match parse [] (List.tl (Array.to_list Sys.argv)) with
    | [] -> List.map fst sections
    | names -> names
  in
  List.iter
    (fun name ->
      if not (List.mem_assoc name sections) then begin
        Printf.eprintf "unknown section %S (known: %s)\n" name
          (String.concat ", " (List.map fst sections));
        exit 2
      end)
    requested;
  let t0 = Unix.gettimeofday () in
  let run_sections pool =
    List.iter (fun name -> (List.assoc name sections) pool) requested
  in
  if !jobs > 1 then
    Engine.Pool.with_pool ~jobs:!jobs (fun pool -> run_sections (Some pool))
  else run_sections None;
  Printf.printf "\nCSV artefacts written under %s/.\n" results_dir;
  Printf.printf "total wall-clock %.1f s with --jobs %d\n"
    (Unix.gettimeofday () -. t0)
    !jobs
