(** Receiver-side out-of-order store.

    The simulation carries no payload bytes, so "buffering" a segment
    means remembering which byte ranges have arrived. The receiver's
    cumulative ACK point advances through whatever this buffer makes
    contiguous. *)

type t

val create : unit -> t

val insert : t -> expected:int -> lo:int -> hi:int -> unit
(** Record arrival of bytes [lo, hi) (duplicates are harmless).
    [expected] is the receiver's current cumulative point, used only to
    classify the arrival as in-order or not. *)

val deliverable_up_to : t -> from:int -> int
(** Highest offset reachable from [from] through contiguous buffered
    bytes; equals [from] when byte [from] has not arrived. *)

val consume_below : t -> int -> unit
(** Release state below the new cumulative point. *)

val sack_blocks : t -> above:int -> max_blocks:int -> (int * int) list
(** Up to [max_blocks] buffered ranges strictly above [above], most
    recently useful first (ascending order is fine for the simulator's
    consumer). *)

val buffered_bytes : t -> int
val segments_out_of_order : t -> int
(** Running count of inserts that did not extend the contiguous head. *)
