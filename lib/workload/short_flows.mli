(** Poisson arrivals of short TCP transfers with Pareto-distributed
    sizes — the classic "web mice" workload. Each arrival opens a fresh
    connection from [src] to [dst] on its own flow id and records its
    completion time. *)

type t

type completed = {
  flow : int;
  size : int;              (** bytes requested *)
  started : Sim.Time.t;
  finished : Sim.Time.t;
}

val start :
  src:Netsim.Host.t ->
  dst:Netsim.Host.t ->
  ids:Netsim.Packet.Id_source.source ->
  rng:Sim.Rng.t ->
  arrival_rate:float ->
  ?mean_size:int ->
  ?pareto_shape:float ->
  ?first_flow:int ->
  ?config:Tcp.Config.t ->
  ?slow_start:(unit -> Tcp.Slow_start.t) ->
  ?stop_at:Sim.Time.t ->
  unit ->
  t
(** [arrival_rate] is flows per second; sizes are Pareto with the given
    [mean_size] (default 30 KiB) and [pareto_shape] (default 1.2, heavy
    tail). Flow ids count up from [first_flow] (default 10_000). *)

val stop : t -> unit
val launched : t -> int
val completions : t -> completed list
(** Finished transfers, oldest first. *)

val mean_completion_time : t -> float
(** Seconds; 0. if nothing completed. *)
