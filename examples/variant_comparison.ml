(* Compare every slow-start policy in the library on one chart: window
   trajectory and cumulative send-stalls over the first 20 seconds.

     dune exec examples/variant_comparison.exe *)

let () =
  let results =
    List.map
      (fun name ->
        let spec =
          {
            Core.Run.default_spec with
            duration = Sim.Time.sec 20;
            slow_start = name;
          }
        in
        Core.Run.bulk ~label:name spec)
      [ "standard"; "limited"; "hystart"; "restricted" ]
  in
  print_string
    (Report.Ascii_chart.line_chart ~title:"congestion window (segments)"
       ~x_label:"time (s)" ~y_label:"cwnd"
       (List.map
          (fun (r : Core.Run.result) ->
            Report.Ascii_chart.of_series ~label:r.Core.Run.label
              r.Core.Run.cwnd_series)
          results));
  print_newline ();
  print_string
    (Report.Table.render
       ~aligns:
         [
           Report.Table.Left; Report.Table.Right; Report.Table.Right;
           Report.Table.Right; Report.Table.Right;
         ]
       ~headers:[ "policy"; "goodput(Mb/s)"; "stalls"; "mean IFQ"; "t90(s)" ]
       ~rows:
         (List.map
            (fun (r : Core.Run.result) ->
              [
                r.Core.Run.label;
                Report.Table.cell_f r.Core.Run.goodput_mbps;
                Report.Table.cell_i r.Core.Run.send_stalls;
                Report.Table.cell_f r.Core.Run.mean_ifq;
                (match r.Core.Run.time_to_90pct_util with
                | Some s -> Report.Table.cell_f s
                | None -> "never");
              ])
            results)
       ());
  print_string
    "\nlimited = RFC 3742 Limited Slow-Start; hystart = Hybrid Slow Start;\n\
     restricted = this paper's PID controller on the interface queue.\n"
