(* The bounded ring tracer and the metrics registry: wrap-around
   drop-oldest retention with exact [total]/[dropped] accounting,
   category-mask filtering at the emit site, oldest-first iteration,
   and the registry's duplicate rejection / registration-order
   contract that the CSV exporters rely on. *)

let emit_n tr ?(code = Trace.Code.link_tx) ?(src = 1) n =
  for i = 1 to n do
    Trace.emit tr ~time_ns:(i * 1000) ~code ~src ~arg1:i ~arg2:(i * 2)
  done

let collect tr =
  let acc = ref [] in
  Trace.iter tr (fun ~time_ns ~code ~src ~arg1 ~arg2 ->
      acc := (time_ns, code, src, arg1, arg2) :: !acc);
  List.rev !acc

let test_basic () =
  let tr = Trace.create ~capacity:8 () in
  Alcotest.(check int) "capacity" 8 (Trace.capacity tr);
  Alcotest.(check int) "empty length" 0 (Trace.length tr);
  emit_n tr 3;
  Alcotest.(check int) "length" 3 (Trace.length tr);
  Alcotest.(check int) "total" 3 (Trace.total tr);
  Alcotest.(check int) "no drops yet" 0 (Trace.dropped tr);
  match collect tr with
  | [ (t0, c0, s0, a0, b0); _; (t2, _, _, _, _) ] ->
      Alcotest.(check int) "first time" 1000 t0;
      Alcotest.(check int) "first code" Trace.Code.link_tx c0;
      Alcotest.(check int) "first src" 1 s0;
      Alcotest.(check int) "first arg1" 1 a0;
      Alcotest.(check int) "first arg2" 2 b0;
      Alcotest.(check int) "last time" 3000 t2
  | l -> Alcotest.failf "expected 3 records, got %d" (List.length l)

let test_wrap_drop_oldest () =
  let tr = Trace.create ~capacity:4 () in
  emit_n tr 10;
  Alcotest.(check int) "length capped" 4 (Trace.length tr);
  Alcotest.(check int) "total counts all" 10 (Trace.total tr);
  Alcotest.(check int) "dropped = total - retained" 6 (Trace.dropped tr);
  (* Oldest-first iteration over the surviving suffix: 7,8,9,10. *)
  Alcotest.(check (list int)) "drop-oldest retention"
    [ 7000; 8000; 9000; 10000 ]
    (List.map (fun (t, _, _, _, _) -> t) (collect tr))

let test_mask_filtering () =
  let tr = Trace.create ~capacity:16 ~mask:Trace.Code.cat_tcp () in
  Trace.emit tr ~time_ns:1 ~code:Trace.Code.link_drop ~src:1 ~arg1:0 ~arg2:0;
  Trace.emit tr ~time_ns:2 ~code:Trace.Code.tcp_cwnd ~src:3 ~arg1:9 ~arg2:9;
  Trace.emit tr ~time_ns:3 ~code:Trace.Code.ifq_stall ~src:2 ~arg1:0 ~arg2:0;
  Alcotest.(check int) "only tcp retained" 1 (Trace.length tr);
  (* Masked-out events never existed: no total/dropped accounting. *)
  Alcotest.(check int) "total ignores masked" 1 (Trace.total tr);
  Trace.set_mask tr (Trace.Code.cat_tcp lor Trace.Code.cat_ifq);
  Trace.emit tr ~time_ns:4 ~code:Trace.Code.ifq_stall ~src:2 ~arg1:0 ~arg2:0;
  Alcotest.(check int) "widened mask admits ifq" 2 (Trace.length tr);
  Alcotest.(check int) "mask readback"
    (Trace.Code.cat_tcp lor Trace.Code.cat_ifq)
    (Trace.mask tr)

let test_default_mask_excludes_sched () =
  let tr = Trace.create ~capacity:4 () in
  Trace.emit tr ~time_ns:1 ~code:Trace.Code.sched_dispatch ~src:0 ~arg1:0
    ~arg2:0;
  Alcotest.(check int) "dispatch firehose off by default" 0 (Trace.length tr);
  Trace.set_mask tr Trace.Code.all_categories;
  Trace.emit tr ~time_ns:2 ~code:Trace.Code.sched_dispatch ~src:0 ~arg1:0
    ~arg2:0;
  Alcotest.(check int) "opt-in via all_categories" 1 (Trace.length tr)

let test_clear () =
  let tr = Trace.create ~capacity:4 () in
  emit_n tr 9;
  Trace.clear tr;
  Alcotest.(check int) "length reset" 0 (Trace.length tr);
  Alcotest.(check int) "total reset" 0 (Trace.total tr);
  emit_n tr 2;
  Alcotest.(check (list int)) "usable after clear" [ 1000; 2000 ]
    (List.map (fun (t, _, _, _, _) -> t) (collect tr))

let test_code_tables () =
  for code = 0 to Trace.Code.count - 1 do
    let name = Trace.Code.name code in
    Alcotest.(check bool)
      (Printf.sprintf "code %d has dotted name" code)
      true
      (String.contains name '.');
    let cat = Trace.Code.category code in
    Alcotest.(check bool)
      (Printf.sprintf "%s category is a single bit" name)
      true
      (cat > 0 && cat land (cat - 1) = 0);
    Alcotest.(check bool)
      (Printf.sprintf "%s category within all_categories" name)
      true
      (cat land Trace.Code.all_categories = cat)
  done;
  Alcotest.(check (option int))
    "category round-trip" (Some Trace.Code.cat_ifq)
    (Trace.Code.category_of_name
       (Trace.Code.category_name Trace.Code.cat_ifq));
  Alcotest.(check bool) "tcp.cwnd is the counter code" true
    (Trace.Code.is_counter Trace.Code.tcp_cwnd);
  Alcotest.(check bool) "instants are not counters" false
    (Trace.Code.is_counter Trace.Code.link_tx)

let test_registry () =
  let reg = Trace.Registry.create () in
  let x = ref 0. in
  Trace.Registry.register reg ~name:"conn/a/CurCwnd" (fun () -> !x);
  Trace.Registry.register reg ~name:"link/forward/delivered" (fun () -> 2.);
  Trace.Registry.register reg ~name:"host/0/ifq_occupancy" (fun () -> 3.);
  Alcotest.(check int) "size" 3 (Trace.Registry.size reg);
  Alcotest.(check (list string)) "registration order preserved"
    [ "conn/a/CurCwnd"; "link/forward/delivered"; "host/0/ifq_occupancy" ]
    (Trace.Registry.names reg);
  x := 1.5;
  Alcotest.(check (array (float 0.))) "sample reads live probes"
    [| 1.5; 2.; 3. |]
    (Trace.Registry.sample reg);
  Alcotest.(check (option (float 0.))) "read by name" (Some 2.)
    (Trace.Registry.read reg "link/forward/delivered");
  Alcotest.(check (option (float 0.))) "read unknown" None
    (Trace.Registry.read reg "nope");
  Alcotest.check_raises "duplicate name rejected"
    (Invalid_argument
       "Trace.Registry.register: duplicate metric \"conn/a/CurCwnd\"")
    (fun () ->
      Trace.Registry.register reg ~name:"conn/a/CurCwnd" (fun () -> 0.))

(* Emission is the hot path: with the ring compiled in but every
   category masked off, an emit must allocate nothing (the PR 2
   budget extends to instrumentation). *)
let test_emit_masked_no_alloc () =
  let tr = Trace.create ~capacity:64 ~mask:0 () in
  let before = Gc.minor_words () in
  for i = 1 to 10_000 do
    Trace.emit tr ~time_ns:i ~code:Trace.Code.link_tx ~src:1 ~arg1:i ~arg2:0
  done;
  let words = Gc.minor_words () -. before in
  Alcotest.(check bool)
    (Printf.sprintf "masked emit allocates (%.0f minor words)" words)
    true (words < 256.)

let test_emit_enabled_no_alloc () =
  let tr = Trace.create ~capacity:64 () in
  (* Warm up: first wrap settles the ring. *)
  emit_n tr 128;
  let before = Gc.minor_words () in
  for i = 1 to 10_000 do
    Trace.emit tr ~time_ns:i ~code:Trace.Code.link_tx ~src:1 ~arg1:i ~arg2:0
  done;
  let words = Gc.minor_words () -. before in
  Alcotest.(check bool)
    (Printf.sprintf "enabled emit allocates (%.0f minor words)" words)
    true (words < 256.)

let qcheck_ring_retention =
  QCheck.Test.make ~name:"ring retains exactly the newest min(n,cap) records"
    ~count:200
    QCheck.(pair (int_range 1 32) (int_range 0 200))
    (fun (cap, n) ->
      let tr = Trace.create ~capacity:cap () in
      emit_n tr n;
      let kept = List.map (fun (t, _, _, _, _) -> t) (collect tr) in
      let expect_len = min n cap in
      let expect =
        List.init expect_len (fun i -> (n - expect_len + i + 1) * 1000)
      in
      Trace.length tr = expect_len
      && Trace.total tr = n
      && Trace.dropped tr = n - expect_len
      && kept = expect)

let suite =
  [
    Alcotest.test_case "emit/iter basics" `Quick test_basic;
    Alcotest.test_case "wrap-around drops oldest" `Quick test_wrap_drop_oldest;
    Alcotest.test_case "category mask filtering" `Quick test_mask_filtering;
    Alcotest.test_case "default mask excludes sched" `Quick
      test_default_mask_excludes_sched;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "code tables" `Quick test_code_tables;
    Alcotest.test_case "registry" `Quick test_registry;
    Alcotest.test_case "masked emit allocation-free" `Quick
      test_emit_masked_no_alloc;
    Alcotest.test_case "enabled emit allocation-free" `Quick
      test_emit_enabled_no_alloc;
    QCheck_alcotest.to_alcotest qcheck_ring_retention;
  ]
