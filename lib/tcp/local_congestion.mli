(** Reaction to send-stalls (IFQ-full on transmit).

    Linux 2.4 — the kernel the paper modified — funnels a failed local
    enqueue into the same code path as a network congestion signal.
    The choice of reaction is the ablation axis of experiment E7. *)

type policy =
  | Halve
      (** treat as congestion: ssthresh = flight/2, cwnd = ssthresh,
          leave slow-start (the 2.4 behaviour the paper criticises) *)
  | Cwr
      (** milder congestion-window reduction: cwnd ×= 0.7, leave
          slow-start, ssthresh untouched (2.6-era local-congestion) *)
  | Ignore
      (** count the stall and retry when the queue drains — the
          hypothetical "fixed" kernel *)

val to_string : policy -> string
val of_string : string -> (policy, string) result
