(* Write-ahead job journal: one compact JSON record per line, appended
   and flushed before the action it describes takes effect (submission
   before enqueue, start before run, finish after artifacts are on
   disk).  A daemon killed at any instant — SIGKILL included — replays
   the journal on restart and reconstructs its queue: submitted minus
   finished minus quarantined is still pending, and finished jobs are
   never re-run.

   Torn tails are expected, not exceptional: a crash mid-append leaves
   a final line with no newline or half a record.  [replay] stops at
   the first unparsable line and returns everything before it; the
   next [append] writes after the torn bytes, and since every parser
   pass stops at the same place, a record damaged once is ignored
   forever rather than corrupting later reads. *)

module Json = Report.Json

type event =
  | Submitted of { job : string; spec : Json.t }
  | Started of { job : string; attempt : int }
  | Checkpointed of { job : string; snapshot : string; at_ns : int }
  | Finished of { job : string; outcome : string }
  | Failed of {
      job : string;
      attempt : int;
      error : string;
      retry_in_s : float;
    }
  | Quarantined of { job : string; artifact : string; error : string }

let event_to_json = function
  | Submitted { job; spec } ->
      Json.Obj [ ("ev", Json.String "submitted"); ("job", Json.String job);
                 ("spec", spec) ]
  | Started { job; attempt } ->
      Json.Obj [ ("ev", Json.String "started"); ("job", Json.String job);
                 ("attempt", Json.Number (float_of_int attempt)) ]
  | Checkpointed { job; snapshot; at_ns } ->
      Json.Obj [ ("ev", Json.String "checkpointed"); ("job", Json.String job);
                 ("snapshot", Json.String snapshot);
                 ("at_ns", Json.Number (float_of_int at_ns)) ]
  | Finished { job; outcome } ->
      Json.Obj [ ("ev", Json.String "finished"); ("job", Json.String job);
                 ("outcome", Json.String outcome) ]
  | Failed { job; attempt; error; retry_in_s } ->
      Json.Obj [ ("ev", Json.String "failed"); ("job", Json.String job);
                 ("attempt", Json.Number (float_of_int attempt));
                 ("error", Json.String error);
                 ("retry_in_s", Json.Number retry_in_s) ]
  | Quarantined { job; artifact; error } ->
      Json.Obj [ ("ev", Json.String "quarantined"); ("job", Json.String job);
                 ("artifact", Json.String artifact);
                 ("error", Json.String error) ]

let event_of_json json =
  let str key =
    match Json.member key json with
    | Some (Json.String s) -> Ok s
    | _ -> Error (Printf.sprintf "journal record: missing string %S" key)
  in
  let num key =
    match Json.member key json with
    | Some (Json.Number f) -> Ok f
    | _ -> Error (Printf.sprintf "journal record: missing number %S" key)
  in
  let ( let* ) = Result.bind in
  let* ev = str "ev" in
  let* job = str "job" in
  match ev with
  | "submitted" -> (
      match Json.member "spec" json with
      | Some spec -> Ok (Submitted { job; spec })
      | None -> Error "journal record: submitted without spec")
  | "started" ->
      let* attempt = num "attempt" in
      Ok (Started { job; attempt = int_of_float attempt })
  | "checkpointed" ->
      let* snapshot = str "snapshot" in
      let* at_ns = num "at_ns" in
      Ok (Checkpointed { job; snapshot; at_ns = int_of_float at_ns })
  | "finished" ->
      let* outcome = str "outcome" in
      Ok (Finished { job; outcome })
  | "failed" ->
      let* attempt = num "attempt" in
      let* error = str "error" in
      let* retry_in_s = num "retry_in_s" in
      Ok (Failed { job; attempt = int_of_float attempt; error; retry_in_s })
  | "quarantined" ->
      let* artifact = str "artifact" in
      let* error = str "error" in
      Ok (Quarantined { job; artifact; error })
  | other -> Error (Printf.sprintf "journal record: unknown event %S" other)

type t = { oc : out_channel }

let open_append ~path =
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path
  in
  { oc }

let append t event =
  output_string t.oc (Json.to_string_compact (event_to_json event));
  output_char t.oc '\n';
  flush t.oc

let close t = close_out_noerr t.oc

let replay ~path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec loop acc =
          match In_channel.input_line ic with
          | None -> List.rev acc
          | Some line -> (
              match Json.of_string line with
              | Error _ -> List.rev acc (* torn tail: stop here *)
              | Ok json -> (
                  match event_of_json json with
                  | Error _ -> List.rev acc
                  | Ok ev -> loop (ev :: acc)))
        in
        loop [])
  end
