type cong_avoid_choice = Spec.cong_avoid = Reno | Cubic | Vegas

type spec = {
  seed : int;
  rate : Sim.Units.rate;
  one_way_delay : Sim.Time.t;
  ifq_capacity : int;
  duration : Sim.Time.t;
  bytes : int option;
  slow_start : string;
  restricted : Tcp.Slow_start.restricted_config option;
  local_congestion : Tcp.Local_congestion.policy;
  delayed_ack : Sim.Time.t option;
  use_sack : bool;
  cong_avoid : cong_avoid_choice;
  pacing : bool;
  ifq_red_ecn : Netsim.Queue_disc.red_params option;
  sample_period : Sim.Time.t;
  loss_rate : float;
}

let default_spec =
  {
    seed = 1;
    rate = Sim.Units.mbps 100.;
    one_way_delay = Sim.Time.ms 30;
    ifq_capacity = 100;
    duration = Sim.Time.sec 25;
    bytes = None;
    slow_start = "standard";
    restricted = None;
    local_congestion = Tcp.Local_congestion.Halve;
    delayed_ack = Tcp.Config.default.Tcp.Config.delayed_ack;
    use_sack = true;
    cong_avoid = Reno;
    pacing = false;
    ifq_red_ecn = None;
    sample_period = Sim.Time.ms 250;
    loss_rate = 0.;
  }

type result = Spec.flow_result = {
  label : string;
  goodput_mbps : float;
  utilization : float;
  send_stalls : int;
  congestion_signals : int;
  retransmits : int;
  timeouts : int;
  final_cwnd_segments : float;
  mean_ifq : float;
  peak_ifq : float;
  ce_marks : int;
  completion : Sim.Time.t option;
  time_to_90pct_util : float option;
  stalls_series : Sim.Stats.Series.t;
  cwnd_series : Sim.Stats.Series.t;
  ifq_series : Sim.Stats.Series.t;
  throughput_series : Sim.Stats.Series.t;
  srtt_series : Sim.Stats.Series.t;
}

let spec_label ?label spec =
  Printf.sprintf "%s (rate=%g Mb/s, rtt=%g ms, ifq=%d, seed=%d, dur=%gs)"
    (match label with Some l -> l | None -> spec.slow_start)
    (Sim.Units.rate_to_mbps spec.rate)
    (2. *. Sim.Time.to_ms spec.one_way_delay)
    spec.ifq_capacity spec.seed
    (Sim.Time.to_sec spec.duration)

let to_spec ?label s =
  let label = match label with Some l -> l | None -> s.slow_start in
  {
    Spec.name = label;
    seed = s.seed;
    duration = s.duration;
    sample_period = s.sample_period;
    record_series = true;
    record_trace = false;
    trace_capacity = 65536;
    domains = 1;
    topology =
      Spec.Duplex
        {
          Spec.rate = s.rate;
          one_way_delay = s.one_way_delay;
          ifq_capacity = s.ifq_capacity;
          loss_rate = s.loss_rate;
          ifq_red_ecn = s.ifq_red_ecn;
        };
    flows =
      [
        {
          Spec.default_flow with
          Spec.label = Some label;
          slow_start = s.slow_start;
          restricted = s.restricted;
          cong_avoid = s.cong_avoid;
          local_congestion = s.local_congestion;
          delayed_ack = s.delayed_ack;
          use_sack = s.use_sack;
          pacing = s.pacing;
          workload = Spec.Bulk { bytes = s.bytes };
        };
      ];
    faults =
      {
        Spec.forward = Netsim.Fault_model.passthrough;
        reverse = Netsim.Fault_model.passthrough;
      };
  }

let bulk ?label spec =
  match (Spec.run (to_spec ?label spec)).Spec.results with
  | [ r ] -> r
  | _ -> assert false

let bulk_batch ?pool specs =
  let f (label, spec) = bulk ?label spec in
  match pool with
  | None -> List.map f specs
  | Some pool ->
      Engine.Pool.map pool
        ~label:(fun (label, spec) -> spec_label ?label spec)
        ~f specs

let bulk_batch_collect ?pool specs =
  let f (label, spec) = bulk ?label spec in
  let label (label, spec) = spec_label ?label spec in
  match pool with
  | None ->
      List.map
        (fun cell ->
          try Ok (f cell)
          with e ->
            Error
              {
                Engine.Pool.flabel = label cell;
                fexn = e;
                fbacktrace = Printexc.get_backtrace ();
              })
        specs
  | Some pool -> Engine.Pool.map_collect pool ~label ~f specs
