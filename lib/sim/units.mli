(** Bandwidths, byte counts and derived quantities.

    Rates are plain floats in bits per second; this module centralises
    the conversions and the serialization-delay arithmetic so the rest
    of the code never multiplies by 8 in place. *)

type rate = float
(** Bits per second. *)

val bps : float -> rate
val kbps : float -> rate
val mbps : float -> rate
val gbps : float -> rate

val rate_to_mbps : rate -> float

val tx_time : rate -> bytes:int -> Time.t
(** [tx_time r ~bytes] is the serialization delay of [bytes] at rate [r]. *)

val bytes_in : rate -> Time.t -> float
(** [bytes_in r t] is how many bytes rate [r] moves in duration [t]. *)

val bdp_bytes : rate -> rtt:Time.t -> float
(** Bandwidth-delay product in bytes. *)

val bdp_packets : rate -> rtt:Time.t -> packet_bytes:int -> float
(** BDP expressed in packets of the given size. *)

val throughput_mbps : bytes:int -> elapsed:Time.t -> float
(** Achieved goodput in Mbit/s; 0. for a non-positive duration. *)

val pp_rate : Format.formatter -> rate -> unit
(** Adaptive unit: bit/s, kbit/s, Mbit/s, Gbit/s. *)

val pp_bytes : Format.formatter -> int -> unit
(** Adaptive unit: B, KiB, MiB, GiB. *)
