(** Ziegler–Nichols calibration against the {e real} simulated plant.

    The plant the RSS controller sees: input = commanded sender window
    (segments), output = sender IFQ occupancy (packets), with the pipe's
    BDP as an offset and one RTT of transport delay. This module wraps a
    live simulation as a [Control]-compatible step function so the
    ultimate-gain experiment of the paper's §3 can be replayed
    programmatically (experiment E0 / bench e6). *)

val sim_plant :
  ?seed:int ->
  ?rate:Sim.Units.rate ->
  ?one_way_delay:Sim.Time.t ->
  ?ifq_capacity:int ->
  unit ->
  unit ->
  dt:float ->
  u:float ->
  float
(** [sim_plant () ()] builds a fresh scenario with a saturating sender
    whose window tracks the commanded input, and returns its step
    function: advance the simulation by [dt] seconds with window [u]
    (segments) and read back the IFQ occupancy (packets). *)

val ultimate_gain :
  ?rate:Sim.Units.rate ->
  ?one_way_delay:Sim.Time.t ->
  ?ifq_capacity:int ->
  ?setpoint_fraction:float ->
  unit ->
  (Control.Ziegler_nichols.result, string) result
(** Run the ZN sweep+bisection on the simulated plant (dt 5 ms, 12 s
    episodes). *)

val tuned_config :
  ?setpoint_fraction:float ->
  Control.Tuning.critical_point ->
  Tcp.Slow_start.restricted_config
(** Apply the paper's tuning rule to a measured critical point and
    package it as an RSS policy configuration. *)
