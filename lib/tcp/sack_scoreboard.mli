(** Sender-side SACK scoreboard (RFC 6675-style, over unwrapped byte
    offsets).

    Tracks which byte ranges above the cumulative ACK point the receiver
    has reported holding, computes the pipe deflation and the next hole
    to retransmit during recovery. *)

type t

val create : unit -> t

val record : t -> blocks:(int * int) list -> una:int -> unit
(** Merge the SACK blocks of one ACK (byte offsets, [lo, hi)). Ranges at
    or below [una] are discarded — the cumulative ACK supersedes them. *)

val advance_una : t -> int -> unit
(** Cumulative ACK moved: forget everything below it. *)

val sacked_bytes : t -> int
(** Bytes above the ACK point known to be held by the receiver. *)

val is_sacked : t -> lo:int -> hi:int -> bool

val next_hole : t -> una:int -> mss:int -> (int * int) option
(** First unsacked range at/above [una] with SACKed data above it,
    clipped to [mss] bytes — the retransmission RFC 6675 would pick.
    [None] when there is no such hole. *)

val reset : t -> unit
(** Drop all state (used on RTO, which invalidates the scoreboard). *)

val holes : t -> int
(** Number of distinct holes below the highest SACKed byte (diagnostic). *)
