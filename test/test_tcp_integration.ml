(* End-to-end transfers across the simulated path: delivery, recovery,
   stalls, timers. *)

let make_path ?(rate = Sim.Units.mbps 100.) ?(delay = Sim.Time.ms 5)
    ?(ifq = 100) ?(loss = 0.) ?(seed = 1) () =
  let sched = Sim.Scheduler.create ~seed () in
  let path =
    Netsim.Topology.Duplex.create sched ~rate ~one_way_delay:delay
      ~ifq_capacity:ifq ~loss_rate:loss ()
  in
  (sched, path, Netsim.Packet.Id_source.create ())

let transfer ?config ?slow_start ?cong_avoid ?(seed = 1) ?(loss = 0.)
    ?(ifq = 100) ?(delay = Sim.Time.ms 5) ~bytes ~horizon () =
  let sched, path, ids = make_path ~delay ~ifq ~loss ~seed () in
  let conn =
    Tcp.Connection.establish ~src:path.Netsim.Topology.Duplex.a
      ~dst:path.Netsim.Topology.Duplex.b ~flow:1 ~ids ?config ?slow_start
      ?cong_avoid ~bytes ()
  in
  Sim.Scheduler.run ~until:horizon sched;
  (sched, conn)

let test_small_transfer_completes () =
  let _, conn = transfer ~bytes:100_000 ~horizon:(Sim.Time.sec 5) () in
  Alcotest.(check int) "all bytes delivered" 100_000
    (Tcp.Receiver.bytes_received conn.Tcp.Connection.receiver);
  Alcotest.(check int) "sender saw all ACKed" 100_000
    (Tcp.Sender.bytes_acked conn.Tcp.Connection.sender);
  Alcotest.(check int) "no retransmits on clean path" 0
    (Tcp.Sender.retransmits conn.Tcp.Connection.sender)

let test_completion_callback () =
  let sched, path, ids = make_path () in
  let done_at = ref None in
  let conn =
    Tcp.Connection.establish ~src:path.Netsim.Topology.Duplex.a
      ~dst:path.Netsim.Topology.Duplex.b ~flow:1 ~ids ~bytes:50_000 ()
  in
  Tcp.Sender.on_complete conn.Tcp.Connection.sender (fun () ->
      done_at := Some (Sim.Scheduler.now sched));
  Sim.Scheduler.run ~until:(Sim.Time.sec 5) sched;
  Alcotest.(check bool) "completion fired" true (!done_at <> None)

let test_odd_size_transfer () =
  (* Not a multiple of MSS: exercises the final short segment. *)
  let _, conn = transfer ~bytes:10_007 ~horizon:(Sim.Time.sec 2) () in
  Alcotest.(check int) "exact byte count" 10_007
    (Tcp.Receiver.bytes_received conn.Tcp.Connection.receiver)

let test_tiny_transfer () =
  let _, conn = transfer ~bytes:1 ~horizon:(Sim.Time.sec 2) () in
  Alcotest.(check int) "single byte" 1
    (Tcp.Receiver.bytes_received conn.Tcp.Connection.receiver)

let test_loss_recovery_fast_retransmit () =
  (* 1 % random loss: fast retransmit + SACK keep the transfer alive. *)
  let _, conn =
    transfer ~loss:0.01 ~seed:5 ~bytes:2_000_000 ~horizon:(Sim.Time.sec 30) ()
  in
  Alcotest.(check int) "delivered despite loss" 2_000_000
    (Tcp.Receiver.bytes_received conn.Tcp.Connection.receiver);
  Alcotest.(check bool) "some retransmissions" true
    (Tcp.Sender.retransmits conn.Tcp.Connection.sender > 0)

let test_loss_recovery_newreno () =
  let config = { Tcp.Config.default with use_sack = false } in
  let _, conn =
    transfer ~config ~loss:0.01 ~seed:6 ~bytes:1_000_000
      ~horizon:(Sim.Time.sec 30) ()
  in
  Alcotest.(check int) "NewReno delivers too" 1_000_000
    (Tcp.Receiver.bytes_received conn.Tcp.Connection.receiver)

let test_heavy_loss_rto () =
  (* 20 % loss forces timeouts; a small transfer must still finish. *)
  let _, conn =
    transfer ~loss:0.2 ~seed:9 ~bytes:50_000 ~horizon:(Sim.Time.sec 60) ()
  in
  Alcotest.(check int) "survives heavy loss" 50_000
    (Tcp.Receiver.bytes_received conn.Tcp.Connection.receiver)

let test_rtt_measured () =
  let _, conn = transfer ~bytes:200_000 ~horizon:(Sim.Time.sec 5) () in
  match Tcp.Sender.srtt conn.Tcp.Connection.sender with
  | Some srtt ->
      let ms = Sim.Time.to_ms srtt in
      Alcotest.(check bool) "srtt near 10ms path RTT" true
        (ms >= 9. && ms < 50.)
  | None -> Alcotest.fail "no RTT sample"

let test_send_stall_on_tiny_ifq () =
  (* 60 ms RTT + 5-packet IFQ: slow-start overruns it quickly. *)
  let _, conn =
    transfer ~delay:(Sim.Time.ms 30) ~ifq:5 ~bytes:5_000_000
      ~horizon:(Sim.Time.sec 10) ()
  in
  Alcotest.(check bool) "stall observed" true
    (Tcp.Sender.send_stalls conn.Tcp.Connection.sender > 0);
  Alcotest.(check bool) "congestion signal recorded" true
    (Tcp.Sender.congestion_signals conn.Tcp.Connection.sender > 0)

let test_local_congestion_ignore_keeps_slow_start () =
  let config =
    { Tcp.Config.default with local_congestion = Tcp.Local_congestion.Ignore }
  in
  let _, conn =
    transfer ~config ~delay:(Sim.Time.ms 30) ~ifq:5 ~bytes:2_000_000
      ~horizon:(Sim.Time.sec 10) ()
  in
  Alcotest.(check bool) "stalls counted" true
    (Tcp.Sender.send_stalls conn.Tcp.Connection.sender > 0);
  Alcotest.(check int) "but no congestion signal" 0
    (Tcp.Sender.congestion_signals conn.Tcp.Connection.sender);
  Alcotest.(check int) "transfer still completes" 2_000_000
    (Tcp.Receiver.bytes_received conn.Tcp.Connection.receiver)

let test_delayed_ack_reduces_acks () =
  let _, conn_delack =
    transfer ~bytes:1_000_000 ~horizon:(Sim.Time.sec 5) ()
  in
  let config = { Tcp.Config.default with delayed_ack = None } in
  let _, conn_quick =
    transfer ~config ~bytes:1_000_000 ~horizon:(Sim.Time.sec 5) ()
  in
  let acks_delack =
    Tcp.Receiver.acks_sent conn_delack.Tcp.Connection.receiver
  in
  let acks_quick = Tcp.Receiver.acks_sent conn_quick.Tcp.Connection.receiver in
  Alcotest.(check bool) "delack sends fewer ACKs" true
    (float_of_int acks_delack < 0.7 *. float_of_int acks_quick)

let test_cwnd_invariant () =
  let sched, path, ids = make_path ~delay:(Sim.Time.ms 30) ~loss:0.02 () in
  let conn =
    Tcp.Connection.establish ~src:path.Netsim.Topology.Duplex.a
      ~dst:path.Netsim.Topology.Duplex.b ~flow:1 ~ids ~bytes:3_000_000 ()
  in
  let violations = ref 0 in
  ignore
    (Sim.Scheduler.every sched (Sim.Time.ms 10) (fun () ->
         let cwnd = Tcp.Sender.cwnd conn.Tcp.Connection.sender in
         if cwnd < 1460. then incr violations));
  Sim.Scheduler.run ~until:(Sim.Time.sec 20) sched;
  Alcotest.(check int) "cwnd never below 1 MSS" 0 !violations

let test_flight_conservation () =
  let sched, path, ids = make_path ~delay:(Sim.Time.ms 30) () in
  let conn =
    Tcp.Connection.establish ~src:path.Netsim.Topology.Duplex.a
      ~dst:path.Netsim.Topology.Duplex.b ~flow:1 ~ids ~bytes:5_000_000 ()
  in
  let bad = ref 0 in
  ignore
    (Sim.Scheduler.every sched (Sim.Time.ms 10) (fun () ->
         let flight = Tcp.Sender.flight conn.Tcp.Connection.sender in
         if flight < 0 then incr bad));
  Sim.Scheduler.run ~until:(Sim.Time.sec 10) sched;
  Alcotest.(check int) "flight never negative" 0 !bad

let test_two_flows_share_host () =
  let sched, path, ids = make_path ~delay:(Sim.Time.ms 10) () in
  let mk flow =
    Tcp.Connection.establish ~src:path.Netsim.Topology.Duplex.a
      ~dst:path.Netsim.Topology.Duplex.b ~flow ~ids ~bytes:500_000 ()
  in
  let c1 = mk 1 and c2 = mk 2 in
  Sim.Scheduler.run ~until:(Sim.Time.sec 10) sched;
  Alcotest.(check int) "flow 1 complete" 500_000
    (Tcp.Receiver.bytes_received c1.Tcp.Connection.receiver);
  Alcotest.(check int) "flow 2 complete" 500_000
    (Tcp.Receiver.bytes_received c2.Tcp.Connection.receiver)

let test_restricted_no_stall_on_paper_path () =
  let _, conn =
    transfer
      ~slow_start:(Tcp.Slow_start.restricted ())
      ~delay:(Sim.Time.ms 30) ~bytes:50_000_000 ~horizon:(Sim.Time.sec 10) ()
  in
  Alcotest.(check int) "no stalls under RSS" 0
    (Tcp.Sender.send_stalls conn.Tcp.Connection.sender);
  Alcotest.(check string) "still in controlled slow-start" "slow-start"
    (Tcp.Sender.phase_to_string (Tcp.Sender.phase conn.Tcp.Connection.sender))

let test_restricted_beats_standard () =
  let run slow_start =
    let _, conn =
      transfer ~slow_start ~delay:(Sim.Time.ms 30) ~bytes:1_000_000_000
        ~horizon:(Sim.Time.sec 15) ()
    in
    Tcp.Receiver.bytes_received conn.Tcp.Connection.receiver
  in
  let std = run (Tcp.Slow_start.standard ()) in
  let rss = run (Tcp.Slow_start.restricted ()) in
  Alcotest.(check bool) "RSS delivers more on the paper path" true
    (rss > std)

let test_slow_application_limits_rate () =
  (* Receive buffer 128 KiB, application reads at 10 Mbit/s: the sender
     must be throttled to roughly the application rate, with zero loss
     and zero stalls, purely through window advertisements. *)
  let config =
    {
      Tcp.Config.default with
      rcv_wnd = 128 * 1024;
      app_read_rate = Some (Sim.Units.mbps 10.);
    }
  in
  let _, conn =
    transfer ~config ~bytes:20_000_000 ~horizon:(Sim.Time.sec 10) ()
  in
  let received =
    Tcp.Receiver.bytes_received conn.Tcp.Connection.receiver
  in
  let mbps = float_of_int (8 * received) /. 10. /. 1e6 in
  Alcotest.(check bool) "throttled near app rate" true
    (mbps > 6. && mbps < 13.);
  Alcotest.(check int) "no retransmissions" 0
    (Tcp.Sender.retransmits conn.Tcp.Connection.sender);
  Alcotest.(check bool) "backlog bounded by buffer" true
    (Tcp.Receiver.backlog conn.Tcp.Connection.receiver <= 128 * 1024)

let test_zero_window_reopen () =
  (* A tiny buffer with a slow reader repeatedly closes and reopens the
     window; the transfer must still complete. *)
  let config =
    {
      Tcp.Config.default with
      rcv_wnd = 16 * 1024;
      app_read_rate = Some (Sim.Units.mbps 50.);
    }
  in
  let _, conn =
    transfer ~config ~bytes:2_000_000 ~horizon:(Sim.Time.sec 20) ()
  in
  Alcotest.(check int) "completes through window closures" 2_000_000
    (Tcp.Receiver.bytes_received conn.Tcp.Connection.receiver)

let test_rwnd_limited_sender_does_not_stall () =
  (* RSS under a receive-window limit: the controller must freeze (the
     sender is not cwnd-limited), not wind up. *)
  let config =
    {
      Tcp.Config.default with
      rcv_wnd = 256 * 1024;
      app_read_rate = Some (Sim.Units.mbps 20.);
    }
  in
  let _, conn =
    transfer ~config
      ~slow_start:(Tcp.Slow_start.restricted ())
      ~delay:(Sim.Time.ms 30) ~bytes:50_000_000 ~horizon:(Sim.Time.sec 10) ()
  in
  Alcotest.(check int) "no stalls" 0
    (Tcp.Sender.send_stalls conn.Tcp.Connection.sender);
  Alcotest.(check bool) "window stays bounded" true
    (Tcp.Sender.cwnd conn.Tcp.Connection.sender < 2_000_000.)

let test_sequence_wraparound () =
  (* Flow 429444's ISS sits ~94 KB below 2^32, so a 2 MB transfer (with
     1% loss for good measure) crosses the 32-bit sequence wrap early:
     every comparison, SACK block and cumulative ACK must survive it. *)
  let sched, path, ids = make_path ~loss:0.01 ~seed:4 () in
  let flow = 429444 in
  let conn =
    Tcp.Connection.establish ~src:path.Netsim.Topology.Duplex.a
      ~dst:path.Netsim.Topology.Duplex.b ~flow ~ids ~bytes:2_000_000 ()
  in
  Sim.Scheduler.run ~until:(Sim.Time.sec 30) sched;
  Alcotest.(check int) "delivered across the wrap" 2_000_000
    (Tcp.Receiver.bytes_received conn.Tcp.Connection.receiver);
  Alcotest.(check int) "sender agrees" 2_000_000
    (Tcp.Sender.bytes_acked conn.Tcp.Connection.sender)

let test_supply_extends_transfer () =
  let sched, path, ids = make_path () in
  let receiver =
    Tcp.Receiver.create ~host:path.Netsim.Topology.Duplex.b ~flow:1 ~ids ()
  in
  let sender =
    Tcp.Sender.create ~host:path.Netsim.Topology.Duplex.a ~dst:1 ~flow:1
      ~ids ()
  in
  Tcp.Sender.start sender ~bytes:100_000 ();
  Sim.Scheduler.run ~until:(Sim.Time.sec 2) sched;
  Alcotest.(check int) "first chunk delivered" 100_000
    (Tcp.Receiver.bytes_received receiver);
  Tcp.Sender.supply sender 50_000;
  Sim.Scheduler.run ~until:(Sim.Time.sec 4) sched;
  Alcotest.(check int) "supplied bytes delivered" 150_000
    (Tcp.Receiver.bytes_received receiver);
  Alcotest.(check bool) "supply on unlimited rejected" true
    (let s2 =
       Tcp.Sender.create ~host:path.Netsim.Topology.Duplex.a ~dst:1 ~flow:2
         ~ids ()
     in
     Tcp.Sender.start s2 ();
     try
       Tcp.Sender.supply s2 1;
       false
     with Invalid_argument _ -> true)

let test_idle_restart_resets_window () =
  let sched, path, ids = make_path ~delay:(Sim.Time.ms 30) () in
  let _receiver =
    Tcp.Receiver.create ~host:path.Netsim.Topology.Duplex.b ~flow:1 ~ids ()
  in
  let sender =
    Tcp.Sender.create ~host:path.Netsim.Topology.Duplex.a ~dst:1 ~flow:1
      ~ids ()
  in
  Tcp.Sender.start sender ~bytes:5_000_000 ();
  Sim.Scheduler.run ~until:(Sim.Time.sec 5) sched;
  let cwnd_after_bulk = Tcp.Sender.cwnd sender in
  Alcotest.(check bool) "window opened during bulk" true
    (cwnd_after_bulk > 10. *. 1460.);
  (* Long idle, then more data: the window must restart near IW. *)
  Sim.Scheduler.run ~until:(Sim.Time.sec 15) sched;
  Tcp.Sender.supply sender 10_000;
  Alcotest.(check bool) "restarted at initial window" true
    (Tcp.Sender.cwnd sender <= 3. *. 1460.);
  Alcotest.(check string) "back in slow-start" "slow-start"
    (Tcp.Sender.phase_to_string (Tcp.Sender.phase sender))

let test_chunked_staircase () =
  (* Restart disabled: each chunk's burst overruns the IFQ once. *)
  let sched, path, ids = make_path ~delay:(Sim.Time.ms 30) () in
  let config = { Tcp.Config.default with slow_start_restart = false } in
  let source =
    Workload.Chunked.start ~src:path.Netsim.Topology.Duplex.a
      ~dst:path.Netsim.Topology.Duplex.b ~flow:1 ~ids
      ~chunk_bytes:6_000_000 ~interval:(Sim.Time.sec 3) ~chunks:4 ~config ()
  in
  Sim.Scheduler.run ~until:(Sim.Time.sec 14) sched;
  let sender = Workload.Chunked.sender source in
  Alcotest.(check int) "four chunks issued" 4
    (Workload.Chunked.chunks_issued source);
  Alcotest.(check int) "all chunk bytes delivered" (4 * 6_000_000)
    (Tcp.Receiver.bytes_received (Workload.Chunked.receiver source));
  (* Chunk 1 stalls in slow-start; chunk 2's full-window burst stalls
     again. Later chunks only stall once congestion avoidance regrows
     the window past the IFQ size, so over 4 chunks we see at least 2 —
     already more than a continuous flow's single episode. *)
  Alcotest.(check bool) "repeated burst stalls" true
    (Tcp.Sender.send_stalls sender >= 2)

let test_ecn_end_to_end () =
  (* RED+ECN on the sender's interface queue: the slow-start burst gets
     marked, the receiver echoes ECE, the sender halves once per window
     and sets CWR — no stall, no loss, transfer completes. *)
  let sched = Sim.Scheduler.create ~seed:12 () in
  let path =
    Netsim.Topology.Duplex.create sched ~rate:(Sim.Units.mbps 100.)
      ~one_way_delay:(Sim.Time.ms 30) ~ifq_capacity:100
      ~ifq_red_ecn:
        {
          Netsim.Queue_disc.min_th = 30.;
          max_th = 90.;
          max_p = 0.1;
          weight = 0.02;
        }
      ()
  in
  let ids = Netsim.Packet.Id_source.create () in
  let conn =
    Tcp.Connection.establish ~src:path.Netsim.Topology.Duplex.a
      ~dst:path.Netsim.Topology.Duplex.b ~flow:1 ~ids ~bytes:30_000_000 ()
  in
  Sim.Scheduler.run ~until:(Sim.Time.sec 20) sched;
  let sender = conn.Tcp.Connection.sender in
  let receiver = conn.Tcp.Connection.receiver in
  Alcotest.(check int) "transfer complete" 30_000_000
    (Tcp.Receiver.bytes_received receiver);
  Alcotest.(check bool) "CE marks observed" true
    (Tcp.Receiver.ce_marks_seen receiver > 0);
  Alcotest.(check int) "no send-stalls with marking qdisc" 0
    (Tcp.Sender.send_stalls sender);
  Alcotest.(check int) "no retransmissions" 0 (Tcp.Sender.retransmits sender);
  Alcotest.(check bool) "ECE triggered congestion response" true
    (Tcp.Sender.congestion_signals sender >= 1);
  (* Once per window, not once per mark. *)
  Alcotest.(check bool) "response rate-limited" true
    (Tcp.Sender.congestion_signals sender
    <= Tcp.Receiver.ce_marks_seen receiver)

let test_pacing_completes_and_smooths () =
  let config = { Tcp.Config.default with pacing = true } in
  let _, conn =
    transfer ~config ~bytes:2_000_000 ~horizon:(Sim.Time.sec 10) ()
  in
  Alcotest.(check int) "paced transfer completes" 2_000_000
    (Tcp.Receiver.bytes_received conn.Tcp.Connection.receiver);
  (* Pacing keeps the sender's own queue nearly empty on a short path. *)
  let _, conn2 =
    transfer ~config ~delay:(Sim.Time.ms 30) ~bytes:20_000_000
      ~horizon:(Sim.Time.sec 5) ()
  in
  Alcotest.(check bool) "progress under pacing" true
    (Tcp.Receiver.bytes_received conn2.Tcp.Connection.receiver > 1_000_000)

let test_determinism () =
  let run () =
    let _, conn =
      transfer ~loss:0.01 ~seed:42 ~bytes:1_000_000
        ~horizon:(Sim.Time.sec 20) ()
    in
    ( Tcp.Receiver.bytes_received conn.Tcp.Connection.receiver,
      Tcp.Sender.retransmits conn.Tcp.Connection.sender,
      Tcp.Sender.timeouts conn.Tcp.Connection.sender )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "bit-identical reruns" true (a = b)

let test_web100_counters_consistent () =
  let _, conn =
    transfer ~loss:0.02 ~seed:3 ~bytes:1_000_000 ~horizon:(Sim.Time.sec 30) ()
  in
  let sender = conn.Tcp.Connection.sender in
  let stats = Tcp.Sender.stats sender in
  let v name = Option.value ~default:0. (Web100.Group.read stats name) in
  Alcotest.(check bool) "PktsOut > 0" true (v Web100.Kis.pkts_out > 0.);
  Alcotest.(check bool) "DataBytesOut >= transfer" true
    (v Web100.Kis.data_bytes_out >= 1_000_000.);
  Alcotest.(check (float 0.)) "PktsRetrans consistent"
    (float_of_int (Tcp.Sender.retransmits sender))
    (v Web100.Kis.pkts_retrans);
  Alcotest.(check bool) "AcksIn > 0" true (v Web100.Kis.acks_in > 0.)

let qcheck_transfer_any_loss =
  QCheck.Test.make ~name:"transfers complete under any moderate loss"
    ~count:15
    QCheck.(pair (int_range 1 1000) (int_range 0 8))
    (fun (seed, loss_pct) ->
      let loss = float_of_int loss_pct /. 100. in
      let _, conn =
        transfer ~loss ~seed ~bytes:200_000 ~horizon:(Sim.Time.sec 60) ()
      in
      Tcp.Receiver.bytes_received conn.Tcp.Connection.receiver = 200_000)

(* The full matrix: every slow-start policy, with/without SACK and
   pacing, random loss and a random (possibly tiny) IFQ — data must
   always arrive completely and exactly. *)
let qcheck_policy_matrix =
  let policies =
    [ "standard"; "abc"; "limited"; "hystart"; "restricted";
      "restricted-adaptive" ]
  in
  QCheck.Test.make ~name:"delivery invariant across policy matrix" ~count:25
    QCheck.(
      quad (int_range 1 500) (int_bound 5)
        (int_range 0 (List.length policies - 1))
        (pair bool (int_range 5 120)))
    (fun (seed, loss_pct, policy_idx, (use_sack, ifq)) ->
      let slow_start =
        match Tcp.Slow_start.by_name (List.nth policies policy_idx) with
        | Ok ss -> ss
        | Error e -> failwith e
      in
      let config =
        { Tcp.Config.default with use_sack; pacing = seed mod 2 = 0 }
      in
      let _, conn =
        transfer ~config ~slow_start ~seed
          ~loss:(float_of_int loss_pct /. 100.)
          ~ifq ~bytes:150_000 ~horizon:(Sim.Time.sec 60) ()
      in
      Tcp.Receiver.bytes_received conn.Tcp.Connection.receiver = 150_000)

let suite =
  [
    Alcotest.test_case "small transfer completes" `Quick
      test_small_transfer_completes;
    Alcotest.test_case "completion callback" `Quick test_completion_callback;
    Alcotest.test_case "odd-size transfer" `Quick test_odd_size_transfer;
    Alcotest.test_case "tiny transfer" `Quick test_tiny_transfer;
    Alcotest.test_case "fast-retransmit recovery (SACK)" `Quick
      test_loss_recovery_fast_retransmit;
    Alcotest.test_case "NewReno recovery" `Quick test_loss_recovery_newreno;
    Alcotest.test_case "heavy loss + RTO" `Slow test_heavy_loss_rto;
    Alcotest.test_case "RTT measured" `Quick test_rtt_measured;
    Alcotest.test_case "send-stall on tiny IFQ" `Quick
      test_send_stall_on_tiny_ifq;
    Alcotest.test_case "Ignore policy keeps slow-start" `Quick
      test_local_congestion_ignore_keeps_slow_start;
    Alcotest.test_case "delayed ACKs reduce ACK count" `Quick
      test_delayed_ack_reduces_acks;
    Alcotest.test_case "cwnd floor invariant" `Quick test_cwnd_invariant;
    Alcotest.test_case "flight conservation" `Quick test_flight_conservation;
    Alcotest.test_case "two flows share a host" `Quick test_two_flows_share_host;
    Alcotest.test_case "RSS: zero stalls on paper path" `Quick
      test_restricted_no_stall_on_paper_path;
    Alcotest.test_case "RSS outperforms standard" `Quick
      test_restricted_beats_standard;
    Alcotest.test_case "slow application limits rate" `Quick
      test_slow_application_limits_rate;
    Alcotest.test_case "zero-window reopen" `Quick test_zero_window_reopen;
    Alcotest.test_case "rwnd-limited RSS freezes" `Quick
      test_rwnd_limited_sender_does_not_stall;
    Alcotest.test_case "32-bit sequence wraparound" `Quick
      test_sequence_wraparound;
    Alcotest.test_case "supply extends transfer" `Quick
      test_supply_extends_transfer;
    Alcotest.test_case "idle restart resets window" `Quick
      test_idle_restart_resets_window;
    Alcotest.test_case "chunked staircase" `Quick test_chunked_staircase;
    Alcotest.test_case "ECN end-to-end" `Quick test_ecn_end_to_end;
    Alcotest.test_case "pacing" `Quick test_pacing_completes_and_smooths;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "web100 counters consistent" `Quick
      test_web100_counters_consistent;
    QCheck_alcotest.to_alcotest qcheck_transfer_any_loss;
    QCheck_alcotest.to_alcotest qcheck_policy_matrix;
  ]
