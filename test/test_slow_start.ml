(* Slow-start policy units, driven by a fabricated sender view. *)

let mss = 1460

let make_view ?(cwnd = ref (2. *. 1460.)) ?(ifq_occ = ref 0)
    ?(ifq_cap = 100) ?(now = ref Sim.Time.zero) ?(snd_una = ref 0)
    ?(snd_nxt = ref 0) ?(min_rtt = ref None) () : Tcp.Slow_start.view =
  {
    Tcp.Slow_start.now = (fun () -> !now);
    mss;
    cwnd = (fun () -> !cwnd);
    ssthresh = (fun () -> infinity);
    flight = (fun () -> !snd_nxt - !snd_una);
    snd_una = (fun () -> !snd_una);
    snd_nxt = (fun () -> !snd_nxt);
    srtt = (fun () -> !min_rtt);
    min_rtt = (fun () -> !min_rtt);
    ifq_occupancy = (fun () -> !ifq_occ);
    ifq_capacity = (fun () -> ifq_cap);
  }

let test_standard_increment () =
  let ss = Tcp.Slow_start.standard () in
  let view = make_view () in
  let d = ss.Tcp.Slow_start.on_ack view ~newly_acked:mss ~rtt_sample:None in
  Alcotest.(check (float 0.)) "one MSS per ACK" (float_of_int mss)
    d.Tcp.Slow_start.cwnd_delta;
  Alcotest.(check bool) "never exits voluntarily" false
    d.Tcp.Slow_start.exit_slow_start

let test_abc_byte_counting () =
  let ss = Tcp.Slow_start.abc () in
  let view = make_view () in
  (* A delayed ACK covering two segments grows the window by both. *)
  let d =
    ss.Tcp.Slow_start.on_ack view ~newly_acked:(2 * mss) ~rtt_sample:None
  in
  Alcotest.(check (float 0.)) "counts bytes" (float_of_int (2 * mss))
    d.Tcp.Slow_start.cwnd_delta;
  (* A stretch ACK covering ten segments is capped at L=2. *)
  let d2 =
    ss.Tcp.Slow_start.on_ack view ~newly_acked:(10 * mss) ~rtt_sample:None
  in
  Alcotest.(check (float 0.)) "L-limit" (float_of_int (2 * mss))
    d2.Tcp.Slow_start.cwnd_delta;
  (* Partial-segment ACKs count exactly. *)
  let d3 = ss.Tcp.Slow_start.on_ack view ~newly_acked:700 ~rtt_sample:None in
  Alcotest.(check (float 0.)) "partial bytes" 700. d3.Tcp.Slow_start.cwnd_delta

let test_limited_taper () =
  let ss = Tcp.Slow_start.limited ~max_ssthresh_segments:100 () in
  let cwnd = ref (50. *. float_of_int mss) in
  let view = make_view ~cwnd () in
  let d1 = ss.Tcp.Slow_start.on_ack view ~newly_acked:mss ~rtt_sample:None in
  Alcotest.(check (float 0.)) "below max_ssthresh: full MSS"
    (float_of_int mss) d1.Tcp.Slow_start.cwnd_delta;
  cwnd := 200. *. float_of_int mss;
  let d2 = ss.Tcp.Slow_start.on_ack view ~newly_acked:mss ~rtt_sample:None in
  (* K = ceil(200/50) = 4 → MSS/4. *)
  Alcotest.(check (float 1e-6)) "tapered" (float_of_int mss /. 4.)
    d2.Tcp.Slow_start.cwnd_delta;
  cwnd := 400. *. float_of_int mss;
  let d3 = ss.Tcp.Slow_start.on_ack view ~newly_acked:mss ~rtt_sample:None in
  Alcotest.(check (float 1e-6)) "more taper" (float_of_int mss /. 8.)
    d3.Tcp.Slow_start.cwnd_delta

let test_hystart_delay_exit () =
  let ss = Tcp.Slow_start.hystart ~min_samples:4 () in
  let now = ref Sim.Time.zero in
  let snd_una = ref 0 and snd_nxt = ref (8 * mss) in
  let min_rtt = ref (Some (Sim.Time.ms 60)) in
  let view = make_view ~now ~snd_una ~snd_nxt ~min_rtt () in
  (* Feed RTT samples far above base + eta (60/8 = 7.5ms): exits once it
     has enough samples in the round. *)
  let exited = ref false in
  for i = 1 to 6 do
    now := Sim.Time.ms (i * 10);
    snd_una := !snd_una + mss;
    let d =
      ss.Tcp.Slow_start.on_ack view ~newly_acked:mss
        ~rtt_sample:(Some (Sim.Time.ms 100))
    in
    if d.Tcp.Slow_start.exit_slow_start then exited := true
  done;
  Alcotest.(check bool) "delay-increase exit" true !exited

let test_hystart_no_exit_flat_rtt () =
  let ss = Tcp.Slow_start.hystart ~min_samples:4 () in
  let now = ref Sim.Time.zero in
  let snd_una = ref 0 and snd_nxt = ref (100 * mss) in
  let min_rtt = ref (Some (Sim.Time.ms 60)) in
  let view = make_view ~now ~snd_una ~snd_nxt ~min_rtt () in
  let exited = ref false in
  for i = 1 to 8 do
    (* ACKs 10 ms apart: too sparse for the train detector, and RTT
       stays at the base: no exit. *)
    now := Sim.Time.ms (i * 10);
    snd_una := !snd_una + mss;
    let d =
      ss.Tcp.Slow_start.on_ack view ~newly_acked:mss
        ~rtt_sample:(Some (Sim.Time.ms 60))
    in
    if d.Tcp.Slow_start.exit_slow_start then exited := true
  done;
  Alcotest.(check bool) "no exit at base RTT" false !exited

let test_hystart_ack_train_exit () =
  let ss = Tcp.Slow_start.hystart () in
  let now = ref Sim.Time.zero in
  let snd_una = ref 0 and snd_nxt = ref (1000 * mss) in
  let min_rtt = ref (Some (Sim.Time.ms 10)) in
  let view = make_view ~now ~snd_una ~snd_nxt ~min_rtt () in
  (* ACKs 1 ms apart (within the 2 ms train threshold); after 5 ms the
     train spans min_rtt/2. *)
  let exited = ref false in
  for i = 1 to 8 do
    now := Sim.Time.ms i;
    snd_una := !snd_una + mss;
    let d = ss.Tcp.Slow_start.on_ack view ~newly_acked:mss ~rtt_sample:None in
    if d.Tcp.Slow_start.exit_slow_start then exited := true
  done;
  Alcotest.(check bool) "ACK-train exit" true !exited

let test_ssthreshless_grows_without_queuing () =
  let ss = Tcp.Slow_start.ssthreshless () in
  let min_rtt = ref (Some (Sim.Time.ms 60)) in
  let view = make_view ~min_rtt () in
  (* RTT pinned at the base: exponential growth, no exit. *)
  for _ = 1 to 20 do
    let d =
      ss.Tcp.Slow_start.on_ack view ~newly_acked:mss
        ~rtt_sample:(Some (Sim.Time.ms 60))
    in
    Alcotest.(check (float 0.)) "one MSS per ACK" (float_of_int mss)
      d.Tcp.Slow_start.cwnd_delta;
    Alcotest.(check bool) "no exit at base RTT" false
      d.Tcp.Slow_start.exit_slow_start
  done

let test_ssthreshless_exits_on_sustained_queuing () =
  let ss = Tcp.Slow_start.ssthreshless ~min_samples:4 () in
  let cwnd = ref (100. *. float_of_int mss) in
  let min_rtt = ref (Some (Sim.Time.ms 60)) in
  let view = make_view ~cwnd ~min_rtt () in
  (* Three queued samples (RTT 100 ms >> 60·1.25 = 75 ms), one back at
     the base — the run restarts, no exit. *)
  for _ = 1 to 3 do
    let d =
      ss.Tcp.Slow_start.on_ack view ~newly_acked:mss
        ~rtt_sample:(Some (Sim.Time.ms 100))
    in
    Alcotest.(check bool) "below min_samples" false
      d.Tcp.Slow_start.exit_slow_start
  done;
  let d =
    ss.Tcp.Slow_start.on_ack view ~newly_acked:mss
      ~rtt_sample:(Some (Sim.Time.ms 60))
  in
  Alcotest.(check bool) "noise resets the run" false
    d.Tcp.Slow_start.exit_slow_start;
  (* Four consecutive queued samples: exit, trimmed to the BDP
     estimate cwnd·base/current = 100·0.6 = 60 segments. *)
  let exit_d = ref None in
  for _ = 1 to 4 do
    let d =
      ss.Tcp.Slow_start.on_ack view ~newly_acked:mss
        ~rtt_sample:(Some (Sim.Time.ms 100))
    in
    if d.Tcp.Slow_start.exit_slow_start then exit_d := Some d
  done;
  match !exit_d with
  | None -> Alcotest.fail "no exit after min_samples queued ACKs"
  | Some d ->
      Alcotest.(check (float 1.)) "trimmed to the BDP estimate"
        ((60. -. 100.) *. float_of_int mss)
        d.Tcp.Slow_start.cwnd_delta

let test_restricted_ramps_when_empty () =
  let ss = Tcp.Slow_start.restricted () in
  let now = ref Sim.Time.zero in
  let cwnd = ref (2. *. float_of_int mss) in
  let snd_nxt = ref (2 * mss) in
  (* flight tracks cwnd: the sender is cwnd-limited, so the window-
     validation guard stays out of the way. *)
  let view = make_view ~now ~cwnd ~snd_nxt () in
  (* Empty IFQ, error at max: the controller commands growth. *)
  let total = ref 0. in
  for i = 1 to 50 do
    now := Sim.Time.ms (2 * i);
    let d = ss.Tcp.Slow_start.on_ack view ~newly_acked:mss ~rtt_sample:None in
    total := !total +. d.Tcp.Slow_start.cwnd_delta;
    cwnd := !cwnd +. d.Tcp.Slow_start.cwnd_delta;
    snd_nxt := int_of_float !cwnd
  done;
  Alcotest.(check bool) "window grew" true (!total > 10. *. float_of_int mss)

let test_restricted_freezes_when_app_limited () =
  let ss = Tcp.Slow_start.restricted () in
  let now = ref Sim.Time.zero in
  let cwnd = ref (100. *. float_of_int mss) in
  (* flight = 0 while cwnd is 100 segments: app-limited. *)
  let view = make_view ~now ~cwnd () in
  for i = 1 to 20 do
    now := Sim.Time.ms (2 * i);
    let d = ss.Tcp.Slow_start.on_ack view ~newly_acked:mss ~rtt_sample:None in
    Alcotest.(check (float 0.)) "no window movement while app-limited" 0.
      d.Tcp.Slow_start.cwnd_delta
  done

let test_restricted_backs_off_above_setpoint () =
  let ss = Tcp.Slow_start.restricted () in
  let now = ref Sim.Time.zero in
  let cwnd = ref (500. *. float_of_int mss) in
  let ifq_occ = ref 100 in
  let snd_nxt = ref (500 * mss) in
  let view = make_view ~now ~cwnd ~ifq_occ ~snd_nxt () in
  (* Occupancy pinned at capacity (above the 90 % set point): after the
     controller state settles the window must be pushed down. *)
  let last = ref 0. in
  for i = 1 to 200 do
    now := Sim.Time.ms (2 * i);
    let d = ss.Tcp.Slow_start.on_ack view ~newly_acked:mss ~rtt_sample:None in
    last := d.Tcp.Slow_start.cwnd_delta;
    cwnd := Float.max (2. *. float_of_int mss) (!cwnd +. d.Tcp.Slow_start.cwnd_delta)
  done;
  Alcotest.(check bool) "negative pressure at overload" true (!last <= 0.)

let test_restricted_step_clamp () =
  let config =
    {
      Tcp.Slow_start.default_restricted_config with
      Tcp.Slow_start.max_step_segments = 4.;
    }
  in
  let ss = Tcp.Slow_start.restricted ~config () in
  let now = ref Sim.Time.zero in
  let cwnd = ref (2. *. float_of_int mss) in
  let snd_nxt = ref (2 * mss) in
  let view = make_view ~now ~cwnd ~snd_nxt () in
  for i = 1 to 100 do
    now := Sim.Time.ms (2 * i);
    let d = ss.Tcp.Slow_start.on_ack view ~newly_acked:mss ~rtt_sample:None in
    let step_segments = d.Tcp.Slow_start.cwnd_delta /. float_of_int mss in
    if Float.abs step_segments > 4. +. 1e-9 then
      Alcotest.failf "step %f exceeds clamp" step_segments
  done

let test_restricted_sampling_gate () =
  let ss = Tcp.Slow_start.restricted () in
  let now = ref (Sim.Time.ms 10) in
  let view = make_view ~now () in
  ignore (ss.Tcp.Slow_start.on_ack view ~newly_acked:mss ~rtt_sample:None);
  (* A second ACK within the sampling interval must not step the PID. *)
  let d = ss.Tcp.Slow_start.on_ack view ~newly_acked:mss ~rtt_sample:None in
  Alcotest.(check (float 0.)) "gated" 0. d.Tcp.Slow_start.cwnd_delta

let test_restricted_reset () =
  let ss = Tcp.Slow_start.restricted () in
  let now = ref (Sim.Time.ms 5) in
  let view = make_view ~now () in
  ignore (ss.Tcp.Slow_start.on_ack view ~newly_acked:mss ~rtt_sample:None);
  ss.Tcp.Slow_start.reset ();
  (* After reset the controller restarts from scratch: the first step
     equals a fresh policy's first step. *)
  let fresh = Tcp.Slow_start.restricted () in
  now := Sim.Time.ms 500;
  let d1 = ss.Tcp.Slow_start.on_ack view ~newly_acked:mss ~rtt_sample:None in
  let d2 = fresh.Tcp.Slow_start.on_ack view ~newly_acked:mss ~rtt_sample:None in
  Alcotest.(check (float 1e-6)) "same as fresh" d2.Tcp.Slow_start.cwnd_delta
    d1.Tcp.Slow_start.cwnd_delta

let test_adaptive_reschedules () =
  let ss = Tcp.Slow_start.restricted_adaptive () in
  Alcotest.(check string) "name" "restricted-adaptive" ss.Tcp.Slow_start.name;
  (* Long-RTT path: the adaptive policy must ramp much slower than the
     fixed one, whose Ti is tuned for 60 ms. *)
  let ramp policy rtt_ms =
    let now = ref Sim.Time.zero in
    let cwnd = ref (2. *. float_of_int mss) in
    let snd_nxt = ref (2 * mss) in
    let min_rtt = ref (Some (Sim.Time.ms rtt_ms)) in
    let view = make_view ~now ~cwnd ~snd_nxt ~min_rtt () in
    for i = 1 to 200 do
      now := Sim.Time.ms (2 * i);
      let d =
        policy.Tcp.Slow_start.on_ack view ~newly_acked:mss ~rtt_sample:None
      in
      cwnd := !cwnd +. d.Tcp.Slow_start.cwnd_delta;
      snd_nxt := int_of_float !cwnd
    done;
    !cwnd
  in
  let fixed = ramp (Tcp.Slow_start.restricted ()) 240 in
  let adaptive = ramp (Tcp.Slow_start.restricted_adaptive ()) 240 in
  Alcotest.(check bool) "adaptive ramps slower on a 240ms path" true
    (adaptive < 0.7 *. fixed);
  (* On the tuning path both behave the same. *)
  let fixed60 = ramp (Tcp.Slow_start.restricted ()) 60 in
  let adaptive60 = ramp (Tcp.Slow_start.restricted_adaptive ()) 60 in
  Alcotest.(check bool) "similar at 60ms" true
    (Float.abs (adaptive60 -. fixed60) < 0.25 *. fixed60)

let test_commanded () =
  let target = ref 10. in
  let ss = Tcp.Slow_start.commanded ~target_segments:target in
  let cwnd = ref (2. *. float_of_int mss) in
  let view = make_view ~cwnd () in
  let d = ss.Tcp.Slow_start.on_ack view ~newly_acked:mss ~rtt_sample:None in
  Alcotest.(check (float 1e-6)) "snaps to target"
    ((10. -. 2.) *. float_of_int mss)
    d.Tcp.Slow_start.cwnd_delta

let test_by_name () =
  List.iter
    (fun name ->
      match Tcp.Slow_start.by_name name with
      | Ok ss -> Alcotest.(check string) "name" name ss.Tcp.Slow_start.name
      | Error e -> Alcotest.fail e)
    [
      "standard"; "abc"; "limited"; "hystart"; "ssthreshless"; "restricted";
      "restricted-adaptive";
    ];
  match Tcp.Slow_start.by_name "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus accepted"

let suite =
  [
    Alcotest.test_case "standard increment" `Quick test_standard_increment;
    Alcotest.test_case "ABC byte counting (RFC 3465)" `Quick
      test_abc_byte_counting;
    Alcotest.test_case "limited taper (RFC 3742)" `Quick test_limited_taper;
    Alcotest.test_case "hystart delay exit" `Quick test_hystart_delay_exit;
    Alcotest.test_case "hystart stays at base RTT" `Quick
      test_hystart_no_exit_flat_rtt;
    Alcotest.test_case "hystart ACK-train exit" `Quick
      test_hystart_ack_train_exit;
    Alcotest.test_case "ssthreshless grows without queuing" `Quick
      test_ssthreshless_grows_without_queuing;
    Alcotest.test_case "ssthreshless exits on sustained queuing" `Quick
      test_ssthreshless_exits_on_sustained_queuing;
    Alcotest.test_case "restricted ramps on empty IFQ" `Quick
      test_restricted_ramps_when_empty;
    Alcotest.test_case "restricted freezes when app-limited" `Quick
      test_restricted_freezes_when_app_limited;
    Alcotest.test_case "restricted backs off over set point" `Quick
      test_restricted_backs_off_above_setpoint;
    Alcotest.test_case "restricted step clamp" `Quick test_restricted_step_clamp;
    Alcotest.test_case "restricted sampling gate" `Quick
      test_restricted_sampling_gate;
    Alcotest.test_case "restricted reset" `Quick test_restricted_reset;
    Alcotest.test_case "adaptive gain scheduling" `Quick
      test_adaptive_reschedules;
    Alcotest.test_case "commanded window" `Quick test_commanded;
    Alcotest.test_case "by_name" `Quick test_by_name;
  ]
