let check_int64 = Alcotest.testable (Fmt.of_to_string Int64.to_string) Int64.equal

let test_constructors () =
  Alcotest.check check_int64 "1 us = 1000 ns"
    (Sim.Time.to_ns_int64 (Sim.Time.us 1))
    1_000L;
  Alcotest.check check_int64 "1 ms"
    (Sim.Time.to_ns_int64 (Sim.Time.ms 1))
    1_000_000L;
  Alcotest.check check_int64 "1 s"
    (Sim.Time.to_ns_int64 (Sim.Time.sec 1))
    1_000_000_000L;
  Alcotest.check check_int64 "of_sec rounds"
    (Sim.Time.to_ns_int64 (Sim.Time.of_sec 1.5e-9))
    2L

let test_roundtrip () =
  Alcotest.(check (float 1e-12))
    "to_sec inverse" 0.125
    (Sim.Time.to_sec (Sim.Time.of_sec 0.125));
  Alcotest.(check (float 1e-9)) "to_ms" 2.5 (Sim.Time.to_ms (Sim.Time.us 2500))

let test_arith () =
  let a = Sim.Time.ms 3 and b = Sim.Time.ms 5 in
  Alcotest.check check_int64 "add"
    (Sim.Time.to_ns_int64 (Sim.Time.add a b))
    8_000_000L;
  Alcotest.check check_int64 "sub negative"
    (Sim.Time.to_ns_int64 (Sim.Time.sub a b))
    (-2_000_000L);
  Alcotest.(check bool) "is_negative" true
    (Sim.Time.is_negative (Sim.Time.sub a b));
  Alcotest.(check (float 1e-9)) "div" 0.6 (Sim.Time.div a b);
  Alcotest.check check_int64 "scale"
    (Sim.Time.to_ns_int64 (Sim.Time.scale b 0.4))
    2_000_000L;
  Alcotest.check check_int64 "mul_int"
    (Sim.Time.to_ns_int64 (Sim.Time.mul_int a 4))
    12_000_000L

let test_compare () =
  let a = Sim.Time.ms 3 and b = Sim.Time.ms 5 in
  Alcotest.(check bool) "lt" true Sim.Time.(a < b);
  Alcotest.(check bool) "le refl" true Sim.Time.(a <= a);
  Alcotest.(check bool) "gt" true Sim.Time.(b > a);
  Alcotest.(check bool) "min" true
    (Sim.Time.equal (Sim.Time.min a b) a);
  Alcotest.(check bool) "max" true
    (Sim.Time.equal (Sim.Time.max a b) b);
  Alcotest.(check bool) "infinity dominates" true
    Sim.Time.(Sim.Time.sec 1_000_000 < Sim.Time.infinity)

let test_pp () =
  Alcotest.(check string) "ns" "12ns" (Sim.Time.to_string (Sim.Time.ns 12));
  Alcotest.(check string) "inf" "inf" (Sim.Time.to_string Sim.Time.infinity)

let test_unboxed_int () =
  (* Timestamps are native ints: an exact int round-trip over both
     conversion pairs, and enough headroom for any realistic horizon. *)
  Alcotest.(check int) "of_ns_int/to_ns_int"
    123_456_789
    (Sim.Time.to_ns_int (Sim.Time.of_ns_int 123_456_789));
  Alcotest.check check_int64 "int64 interop agrees with int"
    (Sim.Time.to_ns_int64 (Sim.Time.of_ns_int64 123_456_789L))
    123_456_789L;
  (* A century of simulated nanoseconds still fits comfortably. *)
  let century = Sim.Time.mul_int (Sim.Time.sec 86_400) (365 * 100) in
  Alcotest.(check bool) "a century below infinity" true
    Sim.Time.(century < Sim.Time.infinity);
  Alcotest.(check bool) "a century is positive" true
    (Sim.Time.is_positive century)

let qcheck_add_sub =
  QCheck.Test.make ~name:"time add/sub roundtrip" ~count:500
    QCheck.(pair (int_bound 1_000_000_000) (int_bound 1_000_000_000))
    (fun (a, b) ->
      let ta = Sim.Time.ns a and tb = Sim.Time.ns b in
      Sim.Time.equal (Sim.Time.sub (Sim.Time.add ta tb) tb) ta)

let suite =
  [
    Alcotest.test_case "constructors" `Quick test_constructors;
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "comparisons" `Quick test_compare;
    Alcotest.test_case "pretty-printing" `Quick test_pp;
    Alcotest.test_case "unboxed int representation" `Quick test_unboxed_int;
    QCheck_alcotest.to_alcotest qcheck_add_sub;
  ]
