let rec mkdir_p dir =
  if dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ())
  end

(* Shortest of %.6g/%.12g/%.17g that parses back to the same float.
   Plain %.6g collapsed second-scale timestamps (1000.123456 and
   1000.123789 both printed as "1000.12"), merging distinct ticks on
   runs longer than ~1000 s. *)
let cell v =
  let s = Printf.sprintf "%.6g" v in
  if float_of_string s = v then s
  else
    let s = Printf.sprintf "%.12g" v in
    if float_of_string s = v then s else Printf.sprintf "%.17g" v

let write ~path ~header ~rows =
  mkdir_p (Filename.dirname path);
  let oc = open_out path in
  (try
     output_string oc (String.concat "," header);
     output_char oc '\n';
     List.iter
       (fun row ->
         output_string oc (String.concat "," (List.map cell row));
         output_char oc '\n')
       rows;
     close_out oc
   with e ->
     close_out_noerr oc;
     raise e)

let write_string ~path content =
  mkdir_p (Filename.dirname path);
  let oc = open_out path in
  (try
     output_string oc content;
     close_out oc
   with e ->
     close_out_noerr oc;
     raise e)

let write_series ~path ~name s =
  let rows =
    List.map (fun (t, v) -> [ t; v ]) (Sim.Stats.Series.to_csv_rows s)
  in
  write ~path ~header:[ "time_s"; name ] ~rows
