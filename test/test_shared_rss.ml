(* Host-wide shared RSS controller (the E15 extension). *)

let make_path () =
  let sched = Sim.Scheduler.create ~seed:6 () in
  let path =
    Netsim.Topology.Duplex.create sched ~rate:(Sim.Units.mbps 100.)
      ~one_way_delay:(Sim.Time.ms 30) ~ifq_capacity:100 ()
  in
  (sched, path, Netsim.Packet.Id_source.create ())

let run_streams ~n ~horizon =
  let sched, path, ids = make_path () in
  let controller =
    Tcp.Shared_rss.create sched
      ~ifq:(Netsim.Host.ifq path.Netsim.Topology.Duplex.a)
      ()
  in
  let conns =
    List.init n (fun i ->
        Tcp.Connection.establish ~src:path.Netsim.Topology.Duplex.a
          ~dst:path.Netsim.Topology.Duplex.b ~flow:(i + 1) ~ids
          ~slow_start:(Tcp.Shared_rss.policy controller)
          ())
  in
  Sim.Scheduler.run ~until:horizon sched;
  (controller, conns, path)

let test_single_member_matches_solo () =
  let controller, conns, path = run_streams ~n:1 ~horizon:(Sim.Time.sec 10) in
  let conn = List.hd conns in
  Alcotest.(check int) "one member" 1 (Tcp.Shared_rss.members controller);
  Alcotest.(check int) "no stalls" 0
    (Tcp.Sender.send_stalls conn.Tcp.Connection.sender);
  Alcotest.(check bool) "fills the pipe" true
    (Tcp.Receiver.goodput_mbps conn.Tcp.Connection.receiver
       ~at:(Sim.Time.sec 10)
    > 85.);
  (* The queue is regulated near the set point. *)
  let occ =
    Netsim.Ifq.mean_occupancy (Netsim.Host.ifq path.Netsim.Topology.Duplex.a)
  in
  Alcotest.(check bool) "queue near 90" true (occ > 60. && occ <= 95.);
  Alcotest.(check bool) "budget near pipe+setpoint" true
    (Tcp.Shared_rss.commanded_window_segments controller > 500.)

let test_four_members_no_contention () =
  let controller, conns, _ = run_streams ~n:4 ~horizon:(Sim.Time.sec 15) in
  Alcotest.(check int) "four members" 4 (Tcp.Shared_rss.members controller);
  let stalls =
    List.fold_left
      (fun acc (c : Tcp.Connection.t) ->
        acc + Tcp.Sender.send_stalls c.Tcp.Connection.sender)
      0 conns
  in
  Alcotest.(check int) "no stalls with shared controller" 0 stalls;
  let goodputs =
    List.map
      (fun (c : Tcp.Connection.t) ->
        Tcp.Receiver.goodput_mbps c.Tcp.Connection.receiver
          ~at:(Sim.Time.sec 15))
      conns
  in
  let total = List.fold_left ( +. ) 0. goodputs in
  Alcotest.(check bool) "aggregate fills the pipe" true (total > 85.);
  (* Even split: every flow within 25% of the mean. *)
  let mean = total /. 4. in
  List.iter
    (fun g ->
      if Float.abs (g -. mean) > 0.25 *. mean then
        Alcotest.failf "unfair split: %f vs mean %f" g mean)
    goodputs

let test_policy_name_and_reset () =
  let sched, path, _ = make_path () in
  let controller =
    Tcp.Shared_rss.create sched
      ~ifq:(Netsim.Host.ifq path.Netsim.Topology.Duplex.a)
      ()
  in
  let p = Tcp.Shared_rss.policy controller in
  Alcotest.(check string) "name" "restricted-shared" p.Tcp.Slow_start.name;
  p.Tcp.Slow_start.reset ();
  Alcotest.(check int) "members counted" 1
    (Tcp.Shared_rss.members controller)

let suite =
  [
    Alcotest.test_case "single member ~ solo RSS" `Quick
      test_single_member_matches_solo;
    Alcotest.test_case "four members, no contention" `Quick
      test_four_members_no_contention;
    Alcotest.test_case "policy name/reset" `Quick test_policy_name_and_reset;
  ]
