(** Controller tuning rules mapping the critical point (ultimate gain
    [kc], ultimate period [tc]) to PID gains. *)

type critical_point = { kc : float; tc : float }

val pp_critical : Format.formatter -> critical_point -> unit

val zn_p : critical_point -> Pid.gains
(** Classic Ziegler–Nichols P rule: Kp = 0.5·Kc. *)

val zn_pi : critical_point -> Pid.gains
(** Classic ZN PI: Kp = 0.45·Kc, Ti = Tc/1.2. *)

val zn_pid : critical_point -> Pid.gains
(** Classic ZN PID: Kp = 0.6·Kc, Ti = 0.5·Tc, Td = 0.125·Tc. *)

val paper_pid : critical_point -> Pid.gains
(** The rule used by Allcock et al. (§3):
    Kp = 0.33·Kc, Ti = 0.5·Tc, Td = 0.33·Tc — a softer proportional
    gain and stronger derivative action than classic ZN, appropriate for
    a plant where overshoot (queue overflow) is the failure mode. *)

val tyreus_luyben : critical_point -> Pid.gains
(** Conservative alternative: Kp = 0.454·Kc, Ti = 2.2·Tc, Td = Tc/6.3. *)

val pessen : critical_point -> Pid.gains
(** Pessen integral rule (fast set-point tracking):
    Kp = 0.7·Kc, Ti = 0.4·Tc, Td = 0.15·Tc. *)
