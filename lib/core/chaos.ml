(* Chaos harness: randomized fault schedules driven through whole
   scenarios, with invariant checking and deterministic failure-replay
   artifacts.

   A case is pure data — a {!Spec.t} plus the harness's own invariant
   knobs; running it is a pure function of that data, so an outcome —
   including its canonical trace — is byte-identical under any --jobs
   value and on replay from a serialized artifact. *)

module Json = Report.Json
module Fm = Netsim.Fault_model

type case = {
  spec : Spec.t;
  progress_rtos : int;
  check_completion : bool;
}

let make_case ?(name = "chaos") ?(seed = 1) ?(variant = "standard")
    ?(rate = Sim.Units.mbps 100.) ?(one_way_delay = Sim.Time.ms 30)
    ?(ifq_capacity = 100) ?(duration = Sim.Time.sec 20)
    ?(bytes = Some (400 * 1460)) ?(max_rto = Sim.Time.sec 2)
    ?(progress_rtos = 4) ?(check_completion = true) ?(forward = Fm.passthrough)
    ?(reverse = Fm.passthrough) () =
  {
    spec =
      {
        Spec.name;
        seed;
        duration;
        sample_period = Sim.Time.ms 250;
        record_series = false;
        record_trace = false;
        trace_capacity = 65536;
        domains = 1;
        topology =
          Spec.Duplex
            {
              Spec.rate;
              one_way_delay;
              ifq_capacity;
              loss_rate = 0.;
              ifq_red_ecn = None;
            };
        flows =
          [
            {
              Spec.default_flow with
              Spec.label = Some name;
              slow_start = variant;
              max_rto = Some max_rto;
              workload = Spec.Bulk { bytes };
            };
          ];
        faults = { Spec.forward; reverse };
      };
    progress_rtos;
    check_completion;
  }

let default_case = make_case ()

let first_flow c =
  match c.spec.Spec.flows with
  | f :: _ -> f
  | [] -> invalid_arg "Chaos: case spec has no flows"

let adjust ?variant ?duration ?check_completion c =
  let c =
    match variant with
    | None -> c
    | Some v ->
        let f = { (first_flow c) with Spec.slow_start = v } in
        { c with spec = { c.spec with Spec.flows = [ f ] } }
  in
  let c =
    match duration with
    | None -> c
    | Some d -> { c with spec = { c.spec with Spec.duration = d } }
  in
  match check_completion with
  | None -> c
  | Some b -> { c with check_completion = b }

let case_name c = c.spec.Spec.name

let case_max_rto c =
  match (first_flow c).Spec.max_rto with
  | Some rto -> rto
  | None -> Tcp.Config.default.Tcp.Config.max_rto

let case_bytes c =
  match (first_flow c).Spec.workload with
  | Spec.Bulk { bytes } -> bytes
  | _ -> None

type outcome = {
  case : case;
  completed : bool;
  bytes_acked : int;
  timeouts : int;
  retransmits : int;
  violations : string list;
  trace : string;
}

let passed o = o.violations = []

(* --- JSON serialization ---------------------------------------------- *)

let case_to_json c =
  Json.Obj
    [
      ("spec", Spec.to_json c.spec);
      ("progress_rtos", Json.Number (float_of_int c.progress_rtos));
      ("check_completion", Json.Bool c.check_completion);
    ]

let ( let* ) r f = Result.bind r f

let field key j =
  match Json.member key j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" key)

let str key j =
  let* v = field key j in
  match Json.string_value v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "field %S is not a string" key)

let case_of_json j =
  let* spec_json = field "spec" j in
  let* spec = Spec.of_json spec_json in
  let* progress_rtos =
    match Json.member "progress_rtos" j with
    | None -> Ok default_case.progress_rtos
    | Some v -> (
        match Json.number v with
        | Some f -> Ok (int_of_float f)
        | None -> Error "field \"progress_rtos\" is not a number")
  in
  let* check_completion =
    match Json.member "check_completion" j with
    | None -> Ok default_case.check_completion
    | Some (Json.Bool b) -> Ok b
    | Some _ -> Error "field \"check_completion\" is not a bool"
  in
  Ok { spec; progress_rtos; check_completion }

(* --- running one case ------------------------------------------------- *)

let run_case case =
  let spec = case.spec in
  let built = Spec.build spec in
  let sched = Spec.sched built in
  let sender =
    match Spec.tcp_senders built with
    | s :: _ -> s
    | [] -> invalid_arg "Chaos.run_case: case spec has no TCP flow at t=0"
  in
  let mss = float_of_int Tcp.Config.default.Tcp.Config.mss in
  let violations = ref [] in
  let violate fmt =
    Printf.ksprintf (fun msg -> violations := msg :: !violations) fmt
  in
  let trace = Buffer.create 4096 in
  Buffer.add_string trace
    "t_ms,bytes_acked,cwnd_seg,flight,timeouts,retx,stalls,backoff\n";
  (* Monotonicity watchdogs for the web100-style counters. *)
  let watch = [| 0; 0; 0; 0; 0 |] in
  let watch_names =
    [| "bytes_acked"; "bytes_sent"; "timeouts"; "retransmits"; "send_stalls" |]
  in
  let sample () =
    let now = Sim.Scheduler.now sched in
    let cwnd = Tcp.Sender.cwnd sender in
    if not (Float.is_finite cwnd && cwnd > 0.) then
      violate "t=%.3fs: cwnd not a positive finite value (%g)"
        (Sim.Time.to_sec now) cwnd;
    let current =
      [|
        Tcp.Sender.bytes_acked sender;
        Tcp.Sender.bytes_sent sender;
        Tcp.Sender.timeouts sender;
        Tcp.Sender.retransmits sender;
        Tcp.Sender.send_stalls sender;
      |]
    in
    Array.iteri
      (fun i v ->
        if v < watch.(i) then
          violate "t=%.3fs: counter %s went backwards (%d -> %d)"
            (Sim.Time.to_sec now) watch_names.(i) watch.(i) v;
        watch.(i) <- v)
      current;
    Buffer.add_string trace
      (Printf.sprintf "%.1f,%d,%.3f,%d,%d,%d,%d,%d\n" (Sim.Time.to_ms now)
         current.(0)
         (cwnd /. mss)
         (Tcp.Sender.flight sender)
         current.(2) current.(3) current.(4)
         (Tcp.Sender.rto_backoff sender))
  in
  ignore (Sim.Scheduler.every sched spec.Spec.sample_period sample);
  (* Progress invariant: within [progress_rtos · max_rto] of the last
     outage ending, the connection must have made forward progress (or
     already be complete) — a stalled-forever sender after a blackout is
     exactly the regression class this harness exists to catch. *)
  let fwd, rev = Spec.fault_models built in
  let bytes = case_bytes case in
  let max_rto = case_max_rto case in
  let last_outage_end =
    match
      ( Option.bind fwd Fm.last_outage_end,
        Option.bind rev Fm.last_outage_end )
    with
    | None, None -> None
    | Some a, None -> Some a
    | None, Some b -> Some b
    | Some a, Some b -> Some (Sim.Time.max a b)
  in
  (match last_outage_end with
  | None -> ()
  | Some stop ->
      let window = Sim.Time.mul_int max_rto case.progress_rtos in
      let deadline = Sim.Time.add stop window in
      if Sim.Time.(deadline <= spec.Spec.duration) then
        ignore
          (Sim.Scheduler.at sched stop (fun () ->
               let base = Tcp.Sender.bytes_acked sender in
               ignore
                 (Sim.Scheduler.at sched deadline (fun () ->
                      let now_acked = Tcp.Sender.bytes_acked sender in
                      let complete =
                        match bytes with
                        | Some b -> now_acked >= b
                        | None -> false
                      in
                      if (not complete) && now_acked <= base then
                        violate
                          "no progress within %d RTO (%.1fs) of outage \
                           ending at t=%.3fs (stuck at %d bytes)"
                          case.progress_rtos (Sim.Time.to_sec window)
                          (Sim.Time.to_sec stop) base)))));
  ignore (Spec.execute built);
  (* Packet conservation, per direction: every NIC transmit is exactly
     one of delivered / lost / still flying, net of fault duplicates.
     Only meaningful on a duplex path, where the measured hosts sit
     directly on the measured links (a dumbbell has routers between). *)
  (match spec.Spec.topology with
  | Spec.Dumbbell _ | Spec.Multi_dumbbell _ -> ()
  | Spec.Duplex _ ->
      let conservation label nic link =
        let tx = Netsim.Nic.tx_packets nic in
        let accounted =
          Netsim.Link.delivered link + Netsim.Link.lost link
          + Netsim.Link.in_flight link
          - Netsim.Link.duplicated link
        in
        if tx <> accounted then
          violate
            "%s packet conservation broken: tx=%d but delivered=%d lost=%d \
             in_flight=%d duplicated=%d"
            label tx (Netsim.Link.delivered link) (Netsim.Link.lost link)
            (Netsim.Link.in_flight link)
            (Netsim.Link.duplicated link)
      in
      conservation "forward"
        (Netsim.Host.nic (Spec.src_host built ~pair:0))
        (Spec.forward_link built);
      conservation "reverse"
        (Netsim.Host.nic (Spec.dst_host built ~pair:0))
        (Spec.reverse_link built);
      let delivered_fwd = Netsim.Link.delivered (Spec.forward_link built) in
      let rx = Netsim.Host.rx_packets (Spec.dst_host built ~pair:0) in
      if delivered_fwd <> rx then
        violate
          "delivery accounting broken: link delivered %d, host received %d"
          delivered_fwd rx);
  let bytes_acked = Tcp.Sender.bytes_acked sender in
  let completed =
    match bytes with Some b -> bytes_acked >= b | None -> false
  in
  if case.check_completion && not completed then
    violate "transfer incomplete at t=%.1fs: %d of %s bytes acked"
      (Sim.Time.to_sec spec.Spec.duration)
      bytes_acked
      (match bytes with Some b -> string_of_int b | None -> "unbounded");
  let fm_count f = match fwd with Some m -> f m | None -> 0 in
  Buffer.add_string trace
    (Printf.sprintf "summary,%d,%d,%d,%d,%d,%d,%d,%d\n" bytes_acked
       (Tcp.Sender.timeouts sender)
       (Tcp.Sender.retransmits sender)
       (Tcp.Sender.send_stalls sender)
       (fm_count Fm.random_drops) (fm_count Fm.outage_drops)
       (fm_count Fm.duplicates) (fm_count Fm.reordered));
  {
    case;
    completed;
    bytes_acked;
    timeouts = Tcp.Sender.timeouts sender;
    retransmits = Tcp.Sender.retransmits sender;
    violations = List.rev !violations;
    trace = Buffer.contents trace;
  }

(* A raising case must not poison a sweep: capture the exception as a
   violation so the batch drains and every other cell still reports. *)
let run_case_captured case =
  try run_case case
  with e ->
    {
      case;
      completed = false;
      bytes_acked = 0;
      timeouts = 0;
      retransmits = 0;
      violations = [ Printf.sprintf "exception: %s" (Printexc.to_string e) ];
      trace = "";
    }

let run_sweep ?pool cases =
  match pool with
  | None -> List.map run_case_captured cases
  | Some pool ->
      (* run_case_captured never raises, but collect anyway so an
         escape (OOM mid-capture, stack overflow) costs one cell and
         not the sweep. *)
      Engine.Pool.map_collect pool ~label:case_name ~f:run_case_captured
        cases
      |> List.map2
           (fun case -> function
             | Ok outcome -> outcome
             | Error { Engine.Pool.fexn; _ } ->
                 {
                   case;
                   completed = false;
                   bytes_acked = 0;
                   timeouts = 0;
                   retransmits = 0;
                   violations =
                     [
                       Printf.sprintf "exception: %s"
                         (Printexc.to_string fexn);
                     ];
                   trace = "";
                 })
           cases

(* --- random schedule generation --------------------------------------- *)

let variants = [| "standard"; "restricted" |]

let random_case ~root ~index =
  let seed = Sim.Rng.derive_seed ~root ~stream:index in
  let rng = Sim.Rng.of_seed seed in
  let owd = Sim.Time.ms 30 in
  let variant = variants.(index mod Array.length variants) in
  let maybe p f = if Sim.Rng.float rng < p then Some (f ()) else None in
  let ge =
    maybe 0.7 (fun () ->
        {
          Fm.p_gb = Sim.Rng.uniform rng ~lo:0.005 ~hi:0.05;
          p_bg = Sim.Rng.uniform rng ~lo:0.1 ~hi:0.5;
          loss_good = Sim.Rng.uniform rng ~lo:0. ~hi:0.005;
          loss_bad = Sim.Rng.uniform rng ~lo:0.05 ~hi:0.5;
        })
  in
  let reorder =
    maybe 0.5 (fun () ->
        {
          Fm.prob = Sim.Rng.uniform rng ~lo:0.005 ~hi:0.05;
          max_extra = Sim.Time.scale owd (Sim.Rng.uniform rng ~lo:0.5 ~hi:4.);
        })
  in
  let duplicate =
    maybe 0.4 (fun () ->
        {
          Fm.prob = Sim.Rng.uniform rng ~lo:0.002 ~hi:0.02;
          max_extra = Sim.Time.scale owd (Sim.Rng.uniform rng ~lo:0. ~hi:2.);
        })
  in
  let outages =
    List.init (Sim.Rng.int rng 3) (fun _ ->
        let start = Sim.Time.of_sec (Sim.Rng.uniform rng ~lo:1. ~hi:8.) in
        let len = Sim.Time.of_sec (Sim.Rng.uniform rng ~lo:0.2 ~hi:2.5) in
        Fm.Outage { start; stop = Sim.Time.add start len })
  in
  let steps =
    List.init (Sim.Rng.int rng 2) (fun _ ->
        Fm.Delay_step
          {
            at = Sim.Time.of_sec (Sim.Rng.uniform rng ~lo:1. ~hi:10.);
            extra = Sim.Time.scale owd (Sim.Rng.uniform rng ~lo:0. ~hi:2.);
          })
  in
  let forward = { Fm.ge; reorder; duplicate; schedule = outages @ steps } in
  (* Occasionally impair the ACK path too, more lightly. *)
  let reverse =
    if Sim.Rng.float rng < 0.3 then
      {
        Fm.passthrough with
        Fm.reorder =
          Some
            {
              Fm.prob = Sim.Rng.uniform rng ~lo:0.005 ~hi:0.03;
              max_extra =
                Sim.Time.scale owd (Sim.Rng.uniform rng ~lo:0.5 ~hi:2.);
            };
      }
    else Fm.passthrough
  in
  make_case
    ~name:(Printf.sprintf "chaos-%d-%03d-%s" root index variant)
    ~seed ~variant ~forward ~reverse ()

let random_cases ~root n = List.init n (fun i -> random_case ~root ~index:i)

(* --- failure artifacts ------------------------------------------------- *)

let outcome_to_json o =
  Json.Obj
    [
      ("case", case_to_json o.case);
      ("violations", Json.List (List.map (fun v -> Json.String v) o.violations));
      ("completed", Json.Bool o.completed);
      ("bytes_acked", Json.Number (float_of_int o.bytes_acked));
      ("trace", Json.String o.trace);
    ]

let rec ensure_dir dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then ensure_dir parent;
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ())
  end

(* Case names come from generators or artifacts; keep paths tame. *)
let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '_')
    name

let write_failure ~dir outcome =
  ensure_dir dir;
  let path = Filename.concat dir (sanitize (case_name outcome.case) ^ ".json") in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Json.to_string (outcome_to_json outcome)));
  path

let write_failures ~dir outcomes =
  List.filter_map
    (fun o -> if passed o then None else Some (write_failure ~dir o))
    outcomes

type artifact = {
  artifact_case : case;
  artifact_violations : string list;
  artifact_trace : string;
}

let load_artifact path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | contents -> (
      match Json.of_string contents with
      | Error e -> Error e
      | Ok j ->
          let* case_json = field "case" j in
          let* artifact_case = case_of_json case_json in
          let* violations_json = field "violations" j in
          let* artifact_violations =
            match Json.list_value violations_json with
            | None -> Error "field \"violations\" is not a list"
            | Some items -> Ok (List.filter_map Json.string_value items)
          in
          let* artifact_trace = str "trace" j in
          Ok { artifact_case; artifact_violations; artifact_trace })

let replay path =
  let* artifact = load_artifact path in
  let outcome = run_case_captured artifact.artifact_case in
  let identical =
    String.equal outcome.trace artifact.artifact_trace
    && outcome.violations = artifact.artifact_violations
  in
  Ok (outcome, identical)
