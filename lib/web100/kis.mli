(** Canonical names for the web100 Kernel Instrument Set variables this
    reproduction maintains, matching the draft-mathis-tcp-mib / web100
    spelling so logs line up with the paper's tooling. *)

val pkts_out : string            (* "PktsOut" *)
val data_bytes_out : string      (* "DataBytesOut" *)
val pkts_retrans : string        (* "PktsRetrans" *)
val bytes_retrans : string       (* "BytesRetrans" *)
val congestion_signals : string  (* "CongestionSignals" *)
val send_stall : string          (* "SendStall" *)
val timeouts : string            (* "Timeouts" *)
val dup_acks_in : string         (* "DupAcksIn" *)
val fast_retran : string         (* "FastRetran" *)
val acks_in : string             (* "AcksIn" *)
val cur_cwnd : string            (* "CurCwnd" (bytes) *)
val cur_ssthresh : string        (* "CurSsthresh" (bytes) *)
val smoothed_rtt : string        (* "SmoothedRTT" (ms) *)
val cur_rto : string             (* "CurRTO" (ms) *)
val min_rtt : string             (* "MinRTT" (ms) *)
val max_rwin_rcvd : string       (* "MaxRwinRcvd" *)
val slow_start : string          (* "SlowStart" — transitions into SS *)
val cong_avoid : string          (* "CongAvoid" — cwnd increases in CA *)
val cur_ifq : string             (* "CurIFQ" — extension: IFQ occupancy *)

val all : string list
(** Every name above, in a stable order (used by CSV headers). *)
