(* Flat structure-of-arrays per-flow state, PR-2 event-heap style: one
   table holds the numeric fast-path state of every flow as parallel
   unboxed arrays, and senders (or the flow-level many_flows engine)
   operate on a row index instead of a boxed per-flow record. Reading
   or writing a column is an array access — no pointer chase, no boxed
   float, no per-flow closure — so a million rows cost a handful of
   contiguous arrays (~16 words/flow) and scan at memory bandwidth.

   Rows are recycled through an intrusive free list threaded through
   the [una] column; [flags = -1] marks a free row, so a stale index is
   detectable. Column layout:

     floats  cwnd ssthresh              (bytes; IEEE-identical to the
                                         boxed fields they replace)
     ints    una nxt rwnd dupacks recover reaction_mark bytes_sent
             budget acct next_pace_ns last_send_ns rng timer flags

   [flags] packs the connection phase in bits 0-1 and the boolean
   latches above it; [timer] holds a Timer_wheel or Event_queue handle;
   [rng] is a per-flow xorshift state so flow-level engines can draw
   per-flow randomness without touching a shared stream. *)

(* flags layout *)
let phase_mask = 0b11
let stalled_bit = 1 lsl 2
let completed_bit = 1 lsl 3
let started_bit = 1 lsl 4
let cwr_bit = 1 lsl 5

type t = {
  mutable cap : int;
  mutable in_use : int;
  mutable free_head : int; (* threaded through [una]; -1 = none *)
  mutable cwnd : float array;
  mutable ssthresh : float array;
  mutable una : int array;
  mutable nxt : int array;
  mutable rwnd : int array;
  mutable dupacks : int array;
  mutable recover : int array;
  mutable reaction_mark : int array;
  mutable bytes_sent : int array;
  mutable budget : int array; (* remaining bytes; -1 = unbounded *)
  mutable acct : int array; (* delivered bytes (engine accounting) *)
  mutable next_pace_ns : int array;
  mutable last_send_ns : int array;
  mutable rng : int array; (* xorshift state, never 0 while in use *)
  mutable timer : int array; (* foreign timer handle; -1 = none *)
  mutable flags : int array; (* -1 = free row *)
}

let create ?(initial_capacity = 16) () =
  let cap = Stdlib.max 1 initial_capacity in
  let t =
    {
      cap;
      in_use = 0;
      free_head = 0;
      cwnd = Array.make cap 0.;
      ssthresh = Array.make cap 0.;
      una = Array.make cap 0;
      nxt = Array.make cap 0;
      rwnd = Array.make cap 0;
      dupacks = Array.make cap 0;
      recover = Array.make cap 0;
      reaction_mark = Array.make cap 0;
      bytes_sent = Array.make cap 0;
      budget = Array.make cap (-1);
      acct = Array.make cap 0;
      next_pace_ns = Array.make cap 0;
      last_send_ns = Array.make cap 0;
      rng = Array.make cap 1;
      timer = Array.make cap (-1);
      flags = Array.make cap (-1);
    }
  in
  for i = 0 to cap - 1 do
    t.una.(i) <- (if i = cap - 1 then -1 else i + 1)
  done;
  t

let capacity t = t.cap
let in_use t = t.in_use

let grow t =
  let cap' = 2 * t.cap in
  let extf a =
    let a' = Array.make cap' 0. in
    Array.blit a 0 a' 0 t.cap;
    a'
  in
  let exti fill a =
    let a' = Array.make cap' fill in
    Array.blit a 0 a' 0 t.cap;
    a'
  in
  t.cwnd <- extf t.cwnd;
  t.ssthresh <- extf t.ssthresh;
  t.una <- exti 0 t.una;
  t.nxt <- exti 0 t.nxt;
  t.rwnd <- exti 0 t.rwnd;
  t.dupacks <- exti 0 t.dupacks;
  t.recover <- exti 0 t.recover;
  t.reaction_mark <- exti 0 t.reaction_mark;
  t.bytes_sent <- exti 0 t.bytes_sent;
  t.budget <- exti (-1) t.budget;
  t.acct <- exti 0 t.acct;
  t.next_pace_ns <- exti 0 t.next_pace_ns;
  t.last_send_ns <- exti 0 t.last_send_ns;
  t.rng <- exti 1 t.rng;
  t.timer <- exti (-1) t.timer;
  t.flags <- exti (-1) t.flags;
  for i = t.cap to cap' - 1 do
    t.una.(i) <- (if i = cap' - 1 then -1 else i + 1)
  done;
  t.free_head <- t.cap;
  t.cap <- cap'

let alloc t =
  if t.free_head < 0 then grow t;
  let i = t.free_head in
  t.free_head <- t.una.(i);
  t.in_use <- t.in_use + 1;
  t.cwnd.(i) <- 0.;
  t.ssthresh.(i) <- infinity;
  t.una.(i) <- 0;
  t.nxt.(i) <- 0;
  t.rwnd.(i) <- 0;
  t.dupacks.(i) <- 0;
  t.recover.(i) <- 0;
  t.reaction_mark.(i) <- 0;
  t.bytes_sent.(i) <- 0;
  t.budget.(i) <- -1;
  t.acct.(i) <- 0;
  t.next_pace_ns.(i) <- 0;
  t.last_send_ns.(i) <- 0;
  t.rng.(i) <- 1;
  t.timer.(i) <- -1;
  t.flags.(i) <- 0;
  i

let is_live t i = i >= 0 && i < t.cap && t.flags.(i) >= 0

let free t i =
  if not (is_live t i) then invalid_arg "Flow_table.free: dead row";
  t.flags.(i) <- -1;
  t.una.(i) <- t.free_head;
  t.free_head <- i;
  t.in_use <- t.in_use - 1

(* --- column accessors -------------------------------------------------- *)

let cwnd t i = Array.unsafe_get t.cwnd i
let set_cwnd t i v = Array.unsafe_set t.cwnd i v
let ssthresh t i = Array.unsafe_get t.ssthresh i
let set_ssthresh t i v = Array.unsafe_set t.ssthresh i v
let una t i = Array.unsafe_get t.una i
let set_una t i v = Array.unsafe_set t.una i v
let nxt t i = Array.unsafe_get t.nxt i
let set_nxt t i v = Array.unsafe_set t.nxt i v
let rwnd t i = Array.unsafe_get t.rwnd i
let set_rwnd t i v = Array.unsafe_set t.rwnd i v
let dupacks t i = Array.unsafe_get t.dupacks i
let set_dupacks t i v = Array.unsafe_set t.dupacks i v
let recover t i = Array.unsafe_get t.recover i
let set_recover t i v = Array.unsafe_set t.recover i v
let reaction_mark t i = Array.unsafe_get t.reaction_mark i
let set_reaction_mark t i v = Array.unsafe_set t.reaction_mark i v
let bytes_sent t i = Array.unsafe_get t.bytes_sent i
let set_bytes_sent t i v = Array.unsafe_set t.bytes_sent i v
let budget t i = Array.unsafe_get t.budget i
let set_budget t i v = Array.unsafe_set t.budget i v
let acct t i = Array.unsafe_get t.acct i
let set_acct t i v = Array.unsafe_set t.acct i v
let next_pace_ns t i = Array.unsafe_get t.next_pace_ns i
let set_next_pace_ns t i v = Array.unsafe_set t.next_pace_ns i v
let last_send_ns t i = Array.unsafe_get t.last_send_ns i
let set_last_send_ns t i v = Array.unsafe_set t.last_send_ns i v
let timer t i = Array.unsafe_get t.timer i
let set_timer t i v = Array.unsafe_set t.timer i v

(* --- phase and boolean latches ----------------------------------------- *)

let phase t i = Array.unsafe_get t.flags i land phase_mask

let set_phase t i p =
  let f = Array.unsafe_get t.flags i in
  Array.unsafe_set t.flags i ((f land lnot phase_mask) lor (p land phase_mask))

let get_bit t i bit = Array.unsafe_get t.flags i land bit <> 0

let set_bit t i bit v =
  let f = Array.unsafe_get t.flags i in
  Array.unsafe_set t.flags i (if v then f lor bit else f land lnot bit)

let stalled t i = get_bit t i stalled_bit
let set_stalled t i v = set_bit t i stalled_bit v
let completed t i = get_bit t i completed_bit
let set_completed t i v = set_bit t i completed_bit v
let started t i = get_bit t i started_bit
let set_started t i v = set_bit t i started_bit v
let cwr_pending t i = get_bit t i cwr_bit
let set_cwr_pending t i v = set_bit t i cwr_bit v

(* --- per-flow randomness ----------------------------------------------- *)

let seed_rng t i seed =
  let s = seed land max_int in
  t.rng.(i) <- (if s = 0 then 0x2545F4914F6CDD1D land max_int else s)

(* 62-bit xorshift; positive, never sticks at 0 for a nonzero seed. *)
let rng_next t i =
  let x = Array.unsafe_get t.rng i in
  let x = x lxor (x lsl 13) land max_int in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) land max_int in
  Array.unsafe_set t.rng i x;
  x

let rng_float t i =
  float_of_int (rng_next t i land ((1 lsl 53) - 1)) *. 0x1p-53

(* --- snapshot ----------------------------------------------------------- *)

(* Full-table serialization: every column at full capacity plus the
   three scalars. Free rows travel too — the free list is threaded
   through [una] and marked by [flags = -1] — so a restored table hands
   out the same rows in the same order as the original, which is what
   keeps post-resume allocations (and the per-row RNG streams seeded
   into them) byte-identical to an unbroken run. *)

let save t ~prefix w =
  let p name = prefix ^ name in
  Sim.Snapshot.put_int w (p "cap") t.cap;
  Sim.Snapshot.put_int w (p "in_use") t.in_use;
  Sim.Snapshot.put_int w (p "free_head") t.free_head;
  Sim.Snapshot.put_float_array w (p "cwnd") t.cwnd;
  Sim.Snapshot.put_float_array w (p "ssthresh") t.ssthresh;
  Sim.Snapshot.put_int_array w (p "una") t.una;
  Sim.Snapshot.put_int_array w (p "nxt") t.nxt;
  Sim.Snapshot.put_int_array w (p "rwnd") t.rwnd;
  Sim.Snapshot.put_int_array w (p "dupacks") t.dupacks;
  Sim.Snapshot.put_int_array w (p "recover") t.recover;
  Sim.Snapshot.put_int_array w (p "reaction_mark") t.reaction_mark;
  Sim.Snapshot.put_int_array w (p "bytes_sent") t.bytes_sent;
  Sim.Snapshot.put_int_array w (p "budget") t.budget;
  Sim.Snapshot.put_int_array w (p "acct") t.acct;
  Sim.Snapshot.put_int_array w (p "next_pace_ns") t.next_pace_ns;
  Sim.Snapshot.put_int_array w (p "last_send_ns") t.last_send_ns;
  Sim.Snapshot.put_int_array w (p "rng") t.rng;
  Sim.Snapshot.put_int_array w (p "timer") t.timer;
  Sim.Snapshot.put_int_array w (p "flags") t.flags

let restore t ~prefix r =
  let p name = prefix ^ name in
  let cap = Sim.Snapshot.get_int r (p "cap") in
  if cap <= 0 then raise (Sim.Snapshot.Corrupt "Flow_table: bad capacity");
  let ints name =
    let a = Sim.Snapshot.get_int_array r (p name) in
    if Array.length a <> cap then
      raise (Sim.Snapshot.Corrupt ("Flow_table: short column " ^ name));
    a
  in
  let floats name =
    let a = Sim.Snapshot.get_float_array r (p name) in
    if Array.length a <> cap then
      raise (Sim.Snapshot.Corrupt ("Flow_table: short column " ^ name));
    a
  in
  t.cap <- cap;
  t.in_use <- Sim.Snapshot.get_int r (p "in_use");
  t.free_head <- Sim.Snapshot.get_int r (p "free_head");
  t.cwnd <- floats "cwnd";
  t.ssthresh <- floats "ssthresh";
  t.una <- ints "una";
  t.nxt <- ints "nxt";
  t.rwnd <- ints "rwnd";
  t.dupacks <- ints "dupacks";
  t.recover <- ints "recover";
  t.reaction_mark <- ints "reaction_mark";
  t.bytes_sent <- ints "bytes_sent";
  t.budget <- ints "budget";
  t.acct <- ints "acct";
  t.next_pace_ns <- ints "next_pace_ns";
  t.last_send_ns <- ints "last_send_ns";
  t.rng <- ints "rng";
  t.timer <- ints "timer";
  t.flags <- ints "flags"

(* --- congestion-control hooks by row ----------------------------------- *)

let ca_on_ack t i (cc : Cong_avoid.t) ~newly_acked ~mss ~srtt ~min_rtt ~now =
  set_cwnd t i
    (cc.Cong_avoid.on_ack ~newly_acked ~cwnd:(cwnd t i) ~mss ~srtt ~min_rtt
       ~now)

let ca_on_loss t i (cc : Cong_avoid.t) ~flight ~mss ~now =
  let ssthresh', cwnd' =
    cc.Cong_avoid.on_loss ~cwnd:(cwnd t i) ~flight ~mss ~now
  in
  set_ssthresh t i ssthresh';
  set_cwnd t i cwnd'

let ca_on_rto t i (cc : Cong_avoid.t) ~flight ~mss =
  let ssthresh', cwnd' = cc.Cong_avoid.on_rto ~cwnd:(cwnd t i) ~flight ~mss in
  set_ssthresh t i ssthresh';
  set_cwnd t i cwnd'
