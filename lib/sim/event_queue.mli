(** Pending-event set for the discrete-event engine.

    A growable binary min-heap ordered by (time, insertion sequence), so
    events scheduled for the same instant fire in FIFO order — a property
    the TCP model relies on (e.g. an ACK arriving before a timer set at
    the same instant it was armed for). Cancellation is O(1) lazy: the
    entry is flagged and skipped when it surfaces. *)

type t

type handle
(** Token returned by {!add}, used to cancel the event. *)

val create : ?initial_capacity:int -> unit -> t

val add : t -> time:Time.t -> (unit -> unit) -> handle
(** [add q ~time f] schedules [f] to fire at [time]. *)

val cancel : handle -> unit
(** [cancel h] prevents the event from firing. Idempotent; cancelling an
    already-fired event is a no-op. *)

val is_cancelled : handle -> bool

val pop : t -> (Time.t * (unit -> unit)) option
(** [pop q] removes and returns the earliest live event, or [None] if
    the queue holds no live events. Cancelled entries are discarded. *)

val next_time : t -> Time.t option
(** Time of the earliest live event without removing it. *)

val live_count : t -> int
(** Number of scheduled, not-yet-cancelled events. O(n); intended for
    tests and end-of-run sanity checks, not hot paths. *)

val is_empty : t -> bool
(** [is_empty q] is [live_count q = 0]. *)
