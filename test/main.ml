let () =
  Alcotest.run "restricted-slow-start"
    [
      ("sim.time", Test_time.suite);
      ("sim.event-queue", Test_event_queue.suite);
      ("sim.scheduler", Test_scheduler.suite);
      ("sim.rng", Test_rng.suite);
      ("sim.stats", Test_stats.suite);
      ("sim.units", Test_units.suite);
      ("proto.seqno", Test_seqno.suite);
      ("netsim.queue-disc", Test_queue_disc.suite);
      ("netsim.components", Test_netsim.suite);
      ("netsim.fault-model", Test_fault_model.suite);
      ("control", Test_control.suite);
      ("web100", Test_web100.suite);
      ("trace", Test_trace.suite);
      ("tcp.interval-set", Test_interval_set.suite);
      ("tcp.rtt-estimator", Test_rtt_estimator.suite);
      ("tcp.sack-reorder", Test_sack_reorder.suite);
      ("tcp.slow-start", Test_slow_start.suite);
      ("tcp.cong-avoid", Test_cong_avoid.suite);
      ("tcp.shared-rss", Test_shared_rss.suite);
      ("tcp.recovery", Test_recovery.suite);
      ("tcp.rto-backoff", Test_rto_backoff.suite);
      ("tcp.integration", Test_tcp_integration.suite);
      ("workload", Test_workload.suite);
      ("report", Test_report.suite);
      ("core", Test_core.suite);
      ("core.spec", Test_spec.suite);
      ("core.chaos", Test_chaos.suite);
      ("engine.pool", Test_engine.suite);
      ("engine.determinism", Test_determinism.suite);
      ("prop.event-queue", Test_prop_event_queue.suite);
      ("prop.interval-set", Test_prop_interval_set.suite);
      ("prop.sack-scoreboard", Test_prop_sack.suite);
      ("prop.pid", Test_prop_pid.suite);
    ]
