type t = {
  sched : Sim.Scheduler.t;
  line_rate : Sim.Units.rate;
  queue : Queue_disc.t;
  mutable link : Link.t option;
  mutable transmitting : bool;
  mutable tx_packet_count : int;
  mutable tx_byte_count : int;
  mutable dequeue_hook : (Packet.t -> unit) option;
  mutable tracer : Trace.t option;
  mutable trace_src : int;
}

let create sched ~rate ~queue =
  if not (rate > 0.) then
    invalid_arg (Printf.sprintf "Nic.create: rate %g must be positive" rate);
  {
    sched;
    line_rate = rate;
    queue;
    link = None;
    transmitting = false;
    tx_packet_count = 0;
    tx_byte_count = 0;
    dequeue_hook = None;
    tracer = None;
    trace_src = 0;
  }

let attach t link = t.link <- Some link

let set_tracer t ?(src = 0) tracer =
  t.tracer <- tracer;
  t.trace_src <- src

let rec start_next t =
  let link =
    match t.link with
    | Some l -> l
    | None -> invalid_arg "Nic: no link attached"
  in
  match Queue_disc.dequeue t.queue ~now:(Sim.Scheduler.now t.sched) with
  | None -> t.transmitting <- false
  | Some pkt ->
      t.transmitting <- true;
      (match t.dequeue_hook with Some hook -> hook pkt | None -> ());
      let tx = Sim.Units.tx_time t.line_rate ~bytes:(Packet.size pkt) in
      ignore
        (Sim.Scheduler.after t.sched tx (fun () ->
             t.tx_packet_count <- t.tx_packet_count + 1;
             t.tx_byte_count <- t.tx_byte_count + Packet.size pkt;
             (match t.tracer with
             | None -> ()
             | Some tr ->
                 Trace.emit tr
                   ~time_ns:(Sim.Time.to_ns_int (Sim.Scheduler.now t.sched))
                   ~code:Trace.Code.nic_tx ~src:t.trace_src
                   ~arg1:pkt.Packet.flow ~arg2:(Packet.size pkt));
             Link.transmit link pkt;
             start_next t))

let kick t = if not t.transmitting then start_next t

let rate t = t.line_rate
let busy t = t.transmitting
let tx_packets t = t.tx_packet_count
let tx_bytes t = t.tx_byte_count
let set_dequeue_hook t hook = t.dequeue_hook <- Some hook
