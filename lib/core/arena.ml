(* The head-to-head arena: every registered congestion-control policy
   crossed with a fixed set of Spec scenarios, scored into one league
   table. Each cell is an independent Spec.run — the pool fans the whole
   matrix out over domains and Pool.map's order preservation keeps every
   artifact byte-identical at any worker count. *)

module Json = Report.Json
module Fm = Netsim.Fault_model

type scenario = {
  sname : string;
  sdoc : string;
  chaos : bool;
  make : duration:Sim.Time.t -> seed:int -> policy:string -> Spec.t;
}

let flow_with ~policy ?(pair = 0) ?(start_at = Sim.Time.zero) () =
  {
    Spec.default_flow with
    Spec.policy = Some policy;
    pair;
    start_at;
  }

let base ~name ~duration ~seed topology flows faults =
  {
    Spec.default with
    Spec.name;
    seed;
    duration;
    record_series = false;
    topology;
    flows;
    faults;
  }

let no_faults = { Spec.forward = Fm.passthrough; reverse = Fm.passthrough }

(* The Gilbert–Elliott burst profile and the mid-run outage mirror the
   chaos harness's "bursty WAN" case family; the reverse-path reordering
   stresses the ACK clock. *)
let chaos_faults =
  {
    Spec.forward =
      {
        Fm.passthrough with
        Fm.ge =
          Some
            { Fm.p_gb = 0.01; p_bg = 0.25; loss_good = 0.0005; loss_bad = 0.2 };
        schedule =
          [ Fm.Outage { start = Sim.Time.sec 6; stop = Sim.Time.ms 6400 } ];
      };
    reverse =
      {
        Fm.passthrough with
        Fm.reorder = Some { Fm.prob = 0.02; max_extra = Sim.Time.ms 2 };
      };
  }

let scenarios =
  [
    {
      sname = "paper-path";
      sdoc = "the paper's 100 Mbit/s / 60 ms RTT duplex, one bulk flow";
      chaos = false;
      make =
        (fun ~duration ~seed ~policy ->
          base
            ~name:(Printf.sprintf "paper-path__%s" policy)
            ~duration ~seed
            (Spec.Duplex Spec.default_duplex)
            [ flow_with ~policy () ]
            no_faults);
    };
    {
      sname = "lossy-wan";
      sdoc = "120 ms RTT duplex with 0.5% random forward loss";
      chaos = false;
      make =
        (fun ~duration ~seed ~policy ->
          base
            ~name:(Printf.sprintf "lossy-wan__%s" policy)
            ~duration ~seed
            (Spec.Duplex
               {
                 Spec.default_duplex with
                 Spec.one_way_delay = Sim.Time.ms 60;
                 loss_rate = 0.005;
               })
            [ flow_with ~policy () ]
            no_faults);
    };
    {
      sname = "shared-bottleneck";
      sdoc = "dumbbell, two same-policy flows staggered 1 s (fairness)";
      chaos = false;
      make =
        (fun ~duration ~seed ~policy ->
          base
            ~name:(Printf.sprintf "shared-bottleneck__%s" policy)
            ~duration ~seed
            (Spec.Dumbbell
               {
                 Spec.pairs = 2;
                 access_rate = Sim.Units.mbps 100.;
                 access_delay = Sim.Time.ms 1;
                 bottleneck_rate = Sim.Units.mbps 100.;
                 bottleneck_delay = Sim.Time.ms 28;
                 buffer_packets = 250;
                 host_ifq_capacity = 100;
                 red = None;
               })
            [
              flow_with ~policy ();
              flow_with ~policy ~pair:1 ~start_at:(Sim.Time.sec 1) ();
            ]
            no_faults);
    };
    {
      sname = "red-ecn";
      sdoc =
        "paper duplex with RED+ECN marking at the sender IFQ (ECE/CWR \
         reaction path)";
      chaos = false;
      make =
        (fun ~duration ~seed ~policy ->
          base
            ~name:(Printf.sprintf "red-ecn__%s" policy)
            ~duration ~seed
            (Spec.Duplex
               {
                 Spec.default_duplex with
                 Spec.ifq_red_ecn = Some Netsim.Queue_disc.default_red;
               })
            [ flow_with ~policy () ]
            no_faults);
    };
    {
      sname = "parallel-streams";
      sdoc = "three same-policy streams sharing the paper duplex (E11 shape)";
      chaos = false;
      make =
        (fun ~duration ~seed ~policy ->
          base
            ~name:(Printf.sprintf "parallel-streams__%s" policy)
            ~duration ~seed
            (Spec.Duplex Spec.default_duplex)
            (List.init 3 (fun _ -> flow_with ~policy ()))
            no_faults);
    };
    {
      sname = "chaos-bursty";
      sdoc =
        "duplex under Gilbert-Elliott burst loss, a 400 ms outage and \
         ACK-path reordering";
      chaos = true;
      make =
        (fun ~duration ~seed ~policy ->
          base
            ~name:(Printf.sprintf "chaos-bursty__%s" policy)
            ~duration ~seed
            (Spec.Duplex Spec.default_duplex)
            [ flow_with ~policy () ]
            chaos_faults);
    };
  ]

let scenario_names = List.map (fun s -> s.sname) scenarios

type cell = {
  policy : string;
  scenario : string;
  goodput_mbps : float;
  utilization : float;
  jain_index : float;
  send_stalls : int;
  congestion_signals : int;
  retransmits : int;
  timeouts : int;
}

type table = {
  policies : string list;
  scenarios_run : string list;
  cells : cell list;  (* policy-major: all scenarios of policy 1, ... *)
}

type standing = {
  lpolicy : string;
  mean_utilization : float;
  mean_jain : float;
  total_stalls : int;
  total_retransmits : int;
  total_timeouts : int;
  score : float;
}

let find_scenarios = function
  | None -> scenarios
  | Some names ->
      List.map
        (fun n ->
          match List.find_opt (fun s -> s.sname = n) scenarios with
          | Some s -> s
          | None ->
              invalid_arg
                (Printf.sprintf "Arena.run: unknown scenario %S (have: %s)" n
                   (String.concat ", " scenario_names)))
        names

let cell_of_outcome ~policy ~scenario (o : Spec.outcome) =
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 o.Spec.results in
  let sum_f f = List.fold_left (fun acc r -> acc +. f r) 0. o.Spec.results in
  {
    policy;
    scenario;
    goodput_mbps = o.Spec.path.Spec.aggregate_goodput_mbps;
    utilization = sum_f (fun r -> r.Spec.utilization);
    jain_index = o.Spec.path.Spec.jain_index;
    send_stalls = sum (fun r -> r.Spec.send_stalls);
    congestion_signals = sum (fun r -> r.Spec.congestion_signals);
    retransmits = sum (fun r -> r.Spec.retransmits);
    timeouts = sum (fun r -> r.Spec.timeouts);
  }

let run_collect ?pool ?policies ?scenarios:scenario_filter
    ?(duration = Sim.Time.sec 15) ?(seed = 1) () =
  let policies =
    match policies with Some ps -> ps | None -> Tcp.Policy.names ()
  in
  let chosen = find_scenarios scenario_filter in
  let cells_in =
    List.concat_map
      (fun policy ->
        List.map
          (fun s -> (policy, s.sname, s.make ~duration ~seed ~policy))
          chosen)
      policies
  in
  let verdicts =
    Spec.run_batch_collect ?pool (List.map (fun (_, _, s) -> s) cells_in)
  in
  let cells, failures =
    List.fold_left2
      (fun (cells, failures) (policy, scenario, _) verdict ->
        match verdict with
        | Ok o -> (cell_of_outcome ~policy ~scenario o :: cells, failures)
        | Error f -> (cells, f :: failures))
      ([], []) cells_in verdicts
  in
  ( {
      policies;
      scenarios_run = List.map (fun s -> s.sname) chosen;
      cells = List.rev cells;
    },
    List.rev failures )

let run ?pool ?policies ?scenarios ?duration ?seed () =
  match run_collect ?pool ?policies ?scenarios ?duration ?seed () with
  | table, [] -> table
  | _, { Engine.Pool.flabel; fexn; fbacktrace } :: _ ->
      raise
        (Engine.Pool.Task_failed
           { label = flabel; exn = fexn; backtrace = fbacktrace })

let league t =
  let standings =
    List.map
      (fun policy ->
        let mine = List.filter (fun c -> c.policy = policy) t.cells in
        let n = float_of_int (List.length mine) in
        let mean f =
          if mine = [] then 0.
          else List.fold_left (fun acc c -> acc +. f c) 0. mine /. n
        in
        let total f = List.fold_left (fun acc c -> acc + f c) 0 mine in
        let mean_utilization = mean (fun c -> c.utilization) in
        let mean_jain = mean (fun c -> c.jain_index) in
        {
          lpolicy = policy;
          mean_utilization;
          mean_jain;
          total_stalls = total (fun c -> c.send_stalls);
          total_retransmits = total (fun c -> c.retransmits);
          total_timeouts = total (fun c -> c.timeouts);
          score = mean_utilization *. mean_jain;
        })
      t.policies
  in
  List.stable_sort
    (fun a b ->
      match Float.compare b.score a.score with
      | 0 -> String.compare a.lpolicy b.lpolicy
      | c -> c)
    standings

let csv_header =
  "policy,scenario,goodput_mbps,utilization,jain_index,send_stalls,\
   congestion_signals,retransmits,timeouts"

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf csv_header;
  Buffer.add_char buf '\n';
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%s,%s,%s,%d,%d,%d,%d\n" c.policy c.scenario
           (Report.Csv.cell c.goodput_mbps)
           (Report.Csv.cell c.utilization)
           (Report.Csv.cell c.jain_index)
           c.send_stalls c.congestion_signals c.retransmits c.timeouts))
    t.cells;
  Buffer.contents buf

let cell_to_json c =
  Json.Obj
    [
      ("policy", Json.String c.policy);
      ("scenario", Json.String c.scenario);
      ("goodput_mbps", Json.Number c.goodput_mbps);
      ("utilization", Json.Number c.utilization);
      ("jain_index", Json.Number c.jain_index);
      ("send_stalls", Json.Number (float_of_int c.send_stalls));
      ("congestion_signals", Json.Number (float_of_int c.congestion_signals));
      ("retransmits", Json.Number (float_of_int c.retransmits));
      ("timeouts", Json.Number (float_of_int c.timeouts));
    ]

let standing_to_json s =
  Json.Obj
    [
      ("policy", Json.String s.lpolicy);
      ("mean_utilization", Json.Number s.mean_utilization);
      ("mean_jain", Json.Number s.mean_jain);
      ("total_stalls", Json.Number (float_of_int s.total_stalls));
      ("total_retransmits", Json.Number (float_of_int s.total_retransmits));
      ("total_timeouts", Json.Number (float_of_int s.total_timeouts));
      ("score", Json.Number s.score);
    ]

let to_json t =
  Json.Obj
    [
      ("policies", Json.List (List.map (fun p -> Json.String p) t.policies));
      ( "scenarios",
        Json.List (List.map (fun s -> Json.String s) t.scenarios_run) );
      ("cells", Json.List (List.map cell_to_json t.cells));
      ("league", Json.List (List.map standing_to_json (league t)));
    ]

let render t =
  let cells_table =
    Report.Table.render
      ~aligns:
        [ Report.Table.Left; Left; Right; Right; Right; Right; Right; Right;
          Right ]
      ~headers:
        [ "policy"; "scenario"; "goodput"; "util"; "jain"; "stalls"; "cong";
          "retx"; "rto" ]
      ~rows:
        (List.map
           (fun c ->
             [
               c.policy;
               c.scenario;
               Report.Table.cell_f c.goodput_mbps;
               Report.Table.cell_f ~decimals:3 c.utilization;
               Report.Table.cell_f ~decimals:4 c.jain_index;
               Report.Table.cell_i c.send_stalls;
               Report.Table.cell_i c.congestion_signals;
               Report.Table.cell_i c.retransmits;
               Report.Table.cell_i c.timeouts;
             ])
           t.cells)
      ()
  in
  let league_table =
    Report.Table.render
      ~aligns:
        [ Report.Table.Right; Left; Right; Right; Right; Right; Right; Right ]
      ~headers:
        [ "#"; "policy"; "score"; "mean util"; "mean jain"; "stalls"; "retx";
          "rto" ]
      ~rows:
        (List.mapi
           (fun i s ->
             [
               string_of_int (i + 1);
               s.lpolicy;
               Report.Table.cell_f ~decimals:4 s.score;
               Report.Table.cell_f ~decimals:3 s.mean_utilization;
               Report.Table.cell_f ~decimals:4 s.mean_jain;
               Report.Table.cell_i s.total_stalls;
               Report.Table.cell_i s.total_retransmits;
               Report.Table.cell_i s.total_timeouts;
             ])
           (league t))
      ()
  in
  cells_table ^ "\nleague (score = mean utilization x mean Jain):\n"
  ^ league_table
