(** TCP segment header as carried inside simulator packets.

    Only fields the model consumes are represented. The timestamp option
    carries the simulated send time of the segment that an ACK echoes,
    which gives Karn-safe RTT samples. *)

type flag =
  | Syn
  | Fin
  | Rst
  | Ece  (** ECN-echo: receiver saw a CE mark (RFC 3168) *)
  | Cwr  (** sender reduced its window in response to ECE *)

type t = {
  src_port : int;
  dst_port : int;
  seq : Seqno.t;          (** first payload byte (or SYN/FIN seqno) *)
  ack : Seqno.t;          (** next byte expected; valid when [is_ack] *)
  is_ack : bool;
  flags : flag list;
  wnd : int;              (** advertised receive window, bytes *)
  payload_len : int;      (** bytes of data carried *)
  sack_blocks : (Seqno.t * Seqno.t) list;
      (** up to 4 blocks, each [start, stop) in receiver order *)
  ts_val : Sim.Time.t;    (** sender clock when this segment left *)
  ts_ecr : Sim.Time.t;    (** echoed peer timestamp (Time.zero if none) *)
}

val header_bytes : int
(** Wire overhead per segment (IP + TCP incl. typical options): 40. *)

val wire_size : t -> int
(** [payload_len + header_bytes]. *)

val data_end : t -> Seqno.t
(** Sequence number just past the payload (accounting SYN/FIN as one). *)

val has_flag : t -> flag -> bool
val pp : Format.formatter -> t -> unit
