let seq = Proto.Seqno.of_int

let test_basic_order () =
  Alcotest.(check bool) "lt" true (Proto.Seqno.lt (seq 1) (seq 2));
  Alcotest.(check bool) "leq eq" true (Proto.Seqno.leq (seq 2) (seq 2));
  Alcotest.(check bool) "gt" true (Proto.Seqno.gt (seq 3) (seq 2));
  Alcotest.(check bool) "geq" true (Proto.Seqno.geq (seq 3) (seq 3))

let test_wraparound () =
  let near_max = Proto.Seqno.of_int 0xFFFF_FFF0 in
  let wrapped = Proto.Seqno.add near_max 0x20 in
  Alcotest.(check int) "wraps to small" 0x10
    (Int32.to_int (Proto.Seqno.to_int32 wrapped));
  (* Modular order: the wrapped value is "after" near_max. *)
  Alcotest.(check bool) "wrapped gt" true (Proto.Seqno.gt wrapped near_max);
  Alcotest.(check int) "diff across wrap" 0x20
    (Proto.Seqno.diff wrapped near_max)

let test_diff_negative () =
  Alcotest.(check int) "backward diff" (-100)
    (Proto.Seqno.diff (seq 0) (seq 100))

let test_min_max_modular () =
  let a = Proto.Seqno.of_int 0xFFFF_FFFE in
  let b = Proto.Seqno.add a 10 in
  Alcotest.(check bool) "max picks later" true
    (Proto.Seqno.equal (Proto.Seqno.max a b) b);
  Alcotest.(check bool) "min picks earlier" true
    (Proto.Seqno.equal (Proto.Seqno.min a b) a)

let qcheck_add_diff =
  QCheck.Test.make ~name:"diff (add s n) s = n (|n| < 2^31)" ~count:500
    QCheck.(pair (int_bound 0xFFFFFFF) (int_range (-1_000_000) 1_000_000))
    (fun (base, n) ->
      let s = Proto.Seqno.of_int base in
      Proto.Seqno.diff (Proto.Seqno.add s n) s = n)

let qcheck_order_antisym =
  QCheck.Test.make ~name:"lt antisymmetric within half-window" ~count:500
    QCheck.(pair (int_bound 0xFFFFFFF) (int_range 1 1_000_000))
    (fun (base, n) ->
      let a = Proto.Seqno.of_int base in
      let b = Proto.Seqno.add a n in
      Proto.Seqno.lt a b && not (Proto.Seqno.lt b a))

let test_header_sizes () =
  let header =
    {
      Proto.Tcp_header.src_port = 1;
      dst_port = 1;
      seq = seq 0;
      ack = seq 0;
      is_ack = false;
      flags = [];
      wnd = 65535;
      payload_len = 1460;
      sack_blocks = [];
      ts_val = Sim.Time.zero;
      ts_ecr = Sim.Time.zero;
    }
  in
  Alcotest.(check int) "wire size" 1500 (Proto.Tcp_header.wire_size header);
  Alcotest.(check int) "payload wire size" 1500
    (Proto.Payload.wire_size (Proto.Payload.Tcp header));
  Alcotest.(check int) "udp wire size" 1028
    (Proto.Payload.wire_size (Proto.Payload.Udp { seq = 0; payload_len = 1000 }))

let test_data_end () =
  let base =
    {
      Proto.Tcp_header.src_port = 1;
      dst_port = 1;
      seq = seq 100;
      ack = seq 0;
      is_ack = false;
      flags = [];
      wnd = 0;
      payload_len = 50;
      sack_blocks = [];
      ts_val = Sim.Time.zero;
      ts_ecr = Sim.Time.zero;
    }
  in
  Alcotest.(check int) "data_end plain" 150
    (Int32.to_int (Proto.Seqno.to_int32 (Proto.Tcp_header.data_end base)));
  let syn = { base with Proto.Tcp_header.flags = [ Proto.Tcp_header.Syn ] } in
  Alcotest.(check int) "SYN occupies one" 151
    (Int32.to_int (Proto.Seqno.to_int32 (Proto.Tcp_header.data_end syn)))

let suite =
  [
    Alcotest.test_case "basic order" `Quick test_basic_order;
    Alcotest.test_case "wraparound" `Quick test_wraparound;
    Alcotest.test_case "negative diff" `Quick test_diff_negative;
    Alcotest.test_case "modular min/max" `Quick test_min_max_modular;
    QCheck_alcotest.to_alcotest qcheck_add_diff;
    QCheck_alcotest.to_alcotest qcheck_order_antisym;
    Alcotest.test_case "header sizes" `Quick test_header_sizes;
    Alcotest.test_case "data_end with flags" `Quick test_data_end;
  ]
