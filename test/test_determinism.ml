(* Golden replay: fig1 and e2 run once sequentially and once on a
   4-domain pool must emit identical CSV rows — the guard on the
   paper-reproduction numbers in EXPERIMENTS.md. Short horizons keep
   the suite fast; the full horizons run in bench/ and in CI's
   parallel-determinism job. *)

let duration = Sim.Time.sec 2

let series_csv s =
  let path = Filename.temp_file "rss_determinism" ".csv" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Report.Csv.write_series ~path ~name:"v" s;
      In_channel.with_open_text path In_channel.input_all)

let with_parallel f = Engine.Pool.with_pool ~jobs:4 (fun pool -> f (Some pool))

let fig1_artifacts pool =
  let r = Core.Experiments.Fig1.run ?pool ~duration () in
  let std = r.Core.Experiments.Fig1.standard in
  let rss = r.Core.Experiments.Fig1.restricted in
  List.map series_csv
    [
      std.Core.Run.stalls_series;
      std.Core.Run.cwnd_series;
      rss.Core.Run.stalls_series;
      rss.Core.Run.cwnd_series;
    ]

let test_fig1_replay () =
  Alcotest.(check (list string))
    "fig1 CSVs byte-identical, sequential vs 4 domains"
    (fig1_artifacts None)
    (with_parallel fig1_artifacts)

let e2_rows pool =
  let rows = Core.Experiments.Variants.run ?pool ~duration () in
  List.map
    (fun (r : Core.Run.result) ->
      Printf.sprintf "%s,%.9f,%d,%d,%d,%d,%.9f" r.Core.Run.label
        r.Core.Run.goodput_mbps r.Core.Run.send_stalls
        r.Core.Run.congestion_signals r.Core.Run.retransmits
        r.Core.Run.timeouts r.Core.Run.final_cwnd_segments)
    rows

let test_e2_replay () =
  Alcotest.(check (list string))
    "e2 rows identical, sequential vs 4 domains" (e2_rows None)
    (with_parallel e2_rows)

(* The policy-matrix golden: the full zoo on the paper path and the
   chaos profile at a fixed seed, rendered through Arena.to_csv's
   round-trip float format. The file is committed
   (test/golden_policy_matrix.csv); regenerate with
     rss_sim compare --matrix --scenarios paper-path,chaos-bursty \
       --duration 2 --seed 1 --out <dir>
   The explicit policy list keeps the golden stable even when other
   suites extend the registry. *)
let matrix_policies =
  [
    "standard"; "restricted"; "restricted-adaptive"; "hystart-cubic";
    "ssthreshless"; "relentless"; "fast";
  ]

let matrix_csv pool =
  Core.Arena.to_csv
    (Core.Arena.run ?pool ~policies:matrix_policies
       ~scenarios:[ "paper-path"; "chaos-bursty" ]
       ~duration ~seed:1 ())

let test_policy_matrix_golden () =
  let golden =
    In_channel.with_open_text "golden_policy_matrix.csv" In_channel.input_all
  in
  let sequential = matrix_csv None in
  Alcotest.(check string) "matrix matches the committed golden" golden
    sequential;
  Alcotest.(check string) "matrix identical on a 4-domain pool" sequential
    (with_parallel matrix_csv)

let suite =
  [
    Alcotest.test_case "fig1 golden replay" `Quick test_fig1_replay;
    Alcotest.test_case "e2 golden replay" `Quick test_e2_replay;
    Alcotest.test_case "policy matrix golden (jobs 1 vs 4)" `Quick
      test_policy_matrix_golden;
  ]
