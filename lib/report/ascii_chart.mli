(** Terminal line charts, enough to eyeball the reproduced figures
    without leaving the harness. Each series gets its own glyph; axes
    are annotated with data ranges. *)

type series = { label : string; points : (float * float) array }

val line_chart :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  ?title:string ->
  series list ->
  string
(** Default canvas 72×20. X and Y ranges span all series; points are
    nearest-cell rasterized; later series overwrite earlier ones where
    they collide. Empty input yields a note instead of a chart. *)

val of_series : label:string -> Sim.Stats.Series.t -> series
(** Adapt a simulation time series (seconds on the x axis). *)
