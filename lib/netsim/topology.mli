(** Canned topologies used by the experiments. *)

(** Two hosts joined by a symmetric duplex pipe. The sender's NIC is the
    path bottleneck, so queueing happens in the sender's IFQ — the
    configuration of the paper's ANL→LBNL testbed. *)
module Duplex : sig
  type t = {
    a : Host.t;
    b : Host.t;
    a_to_b : Link.t;
    b_to_a : Link.t;
  }

  val create :
    Sim.Scheduler.t ->
    rate:Sim.Units.rate ->
    one_way_delay:Sim.Time.t ->
    ifq_capacity:int ->
    ?loss_rate:float ->
    ?ifq_red_ecn:Queue_disc.red_params ->
    unit ->
    t
  (** Node ids: a = 0, b = 1. [loss_rate] applies to the a→b direction
      only (data path). [ifq_red_ecn] switches both hosts' interface
      queues to RED with ECN marking. *)
end

(** N left hosts — router L — bottleneck — router R — N right hosts.
    Left host [i] talks to right host [i]. Router queues bound the
    bottleneck; access links are fast relative to it. *)
module Dumbbell : sig
  type t = {
    left : Host.t array;
    right : Host.t array;
    router_l : Router.t;
    router_r : Router.t;
    bottleneck_queue_lr : Queue_disc.t;
    bottleneck_queue_rl : Queue_disc.t;
    bottleneck_lr : Link.t;  (** left→right bottleneck pipe *)
    bottleneck_rl : Link.t;  (** right→left bottleneck pipe *)
  }

  val create :
    Sim.Scheduler.t ->
    pairs:int ->
    access_rate:Sim.Units.rate ->
    access_delay:Sim.Time.t ->
    bottleneck_rate:Sim.Units.rate ->
    bottleneck_delay:Sim.Time.t ->
    buffer_packets:int ->
    ifq_capacity:int ->
    ?red:Queue_disc.red_params ->
    unit ->
    t
  (** Node ids: left hosts 0..pairs-1, right hosts 100..100+pairs-1,
      routers 1000/1001. With [?red], the bottleneck queues run RED
      instead of drop-tail. *)

  val right_id : int -> int
  (** Node id of right host [i]. *)
end
