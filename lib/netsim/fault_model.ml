(* Composable link-fault injection.

   Everything here is a pure function of (profile, rng seed, packet
   arrival order): the model consults its own derived RNG stream and
   the simulated clock, never wall time, so a fault schedule replayed
   with the same seed reproduces every drop, jitter and duplicate
   byte-identically. *)

type ge = {
  p_gb : float;
  p_bg : float;
  loss_good : float;
  loss_bad : float;
}

type jitter = { prob : float; max_extra : Sim.Time.t }

type event =
  | Outage of { start : Sim.Time.t; stop : Sim.Time.t }
  | Delay_step of { at : Sim.Time.t; extra : Sim.Time.t }

type profile = {
  ge : ge option;
  reorder : jitter option;
  duplicate : jitter option;
  schedule : event list;
}

let passthrough = { ge = None; reorder = None; duplicate = None; schedule = [] }

let validate_prob name p =
  if not (p >= 0. && p <= 1.) then
    invalid_arg
      (Printf.sprintf "Fault_model: %s probability %g outside [0, 1]" name p)

let validate profile =
  (match profile.ge with
  | None -> ()
  | Some g ->
      validate_prob "ge.p_gb" g.p_gb;
      validate_prob "ge.p_bg" g.p_bg;
      validate_prob "ge.loss_good" g.loss_good;
      validate_prob "ge.loss_bad" g.loss_bad);
  (match profile.reorder with
  | None -> ()
  | Some j -> validate_prob "reorder" j.prob);
  (match profile.duplicate with
  | None -> ()
  | Some j -> validate_prob "duplicate" j.prob);
  List.iter
    (function
      | Outage { start; stop } ->
          if Sim.Time.(stop < start) then
            invalid_arg "Fault_model: outage stops before it starts"
      | Delay_step { extra; _ } ->
          if Sim.Time.is_negative extra then
            invalid_arg "Fault_model: negative delay step")
    profile.schedule

type t = {
  rng : Sim.Rng.t;
  profile : profile;
  outages : (Sim.Time.t * Sim.Time.t) array; (* sorted by start *)
  steps : (Sim.Time.t * Sim.Time.t) array; (* (at, extra), sorted by at *)
  mutable ge_bad : bool;
  mutable step_cursor : int;
  mutable cur_extra : Sim.Time.t;
  mutable random_drops : int;
  mutable outage_drops : int;
  mutable duplicates : int;
  mutable reordered : int;
}

let create ~rng profile =
  validate profile;
  let outages =
    List.filter_map
      (function Outage { start; stop } -> Some (start, stop) | _ -> None)
      profile.schedule
    |> List.sort (fun (a, _) (b, _) -> Sim.Time.compare a b)
    |> Array.of_list
  in
  let steps =
    List.filter_map
      (function Delay_step { at; extra } -> Some (at, extra) | _ -> None)
      profile.schedule
    |> List.sort (fun (a, _) (b, _) -> Sim.Time.compare a b)
    |> Array.of_list
  in
  {
    rng;
    profile;
    outages;
    steps;
    ge_bad = false;
    step_cursor = 0;
    cur_extra = Sim.Time.zero;
    random_drops = 0;
    outage_drops = 0;
    duplicates = 0;
    reordered = 0;
  }

let in_outage t now =
  (* Windows are few (a schedule holds at most a handful); a linear scan
     keeps this robust against non-monotone probes from tests. *)
  let n = Array.length t.outages in
  let rec scan i =
    if i >= n then false
    else
      let start, stop = t.outages.(i) in
      if Sim.Time.(now >= start) && Sim.Time.(now < stop) then true
      else scan (i + 1)
  in
  scan 0

let advance_steps t now =
  while
    t.step_cursor < Array.length t.steps
    && Sim.Time.(fst t.steps.(t.step_cursor) <= now)
  do
    t.cur_extra <- snd t.steps.(t.step_cursor);
    t.step_cursor <- t.step_cursor + 1
  done

(* One RNG draw per enabled mechanism per packet, in a fixed order
   (loss, reorder, duplicate), so the stream position depends only on
   the packet sequence — a prerequisite for replay. *)
let decide t ~now _pkt =
  advance_steps t now;
  if in_outage t now then begin
    t.outage_drops <- t.outage_drops + 1;
    []
  end
  else
    let lost =
      match t.profile.ge with
      | None -> false
      | Some g ->
          let loss_p = if t.ge_bad then g.loss_bad else g.loss_good in
          let lost = loss_p > 0. && Sim.Rng.float t.rng < loss_p in
          let flip_p = if t.ge_bad then g.p_bg else g.p_gb in
          if flip_p > 0. && Sim.Rng.float t.rng < flip_p then
            t.ge_bad <- not t.ge_bad;
          lost
    in
    if lost then begin
      t.random_drops <- t.random_drops + 1;
      []
    end
    else begin
      let base = t.cur_extra in
      let first =
        match t.profile.reorder with
        | Some j when j.prob > 0. && Sim.Rng.float t.rng < j.prob ->
            t.reordered <- t.reordered + 1;
            Sim.Time.add base
              (Sim.Time.scale j.max_extra (Sim.Rng.float t.rng))
        | Some _ | None -> base
      in
      match t.profile.duplicate with
      | Some j when j.prob > 0. && Sim.Rng.float t.rng < j.prob ->
          t.duplicates <- t.duplicates + 1;
          let copy =
            Sim.Time.add base
              (Sim.Time.scale j.max_extra (Sim.Rng.float t.rng))
          in
          [ first; copy ]
      | Some _ | None -> [ first ]
    end

let install t link =
  Link.set_fault_hook link (fun now pkt -> decide t ~now pkt)

let profile t = t.profile
let random_drops t = t.random_drops
let outage_drops t = t.outage_drops
let duplicates t = t.duplicates
let reordered t = t.reordered
let in_bad_state t = t.ge_bad

let last_outage_end t =
  Array.fold_left
    (fun acc (_, stop) ->
      match acc with
      | None -> Some stop
      | Some best -> Some (Sim.Time.max best stop))
    None t.outages
