(* Packet-level tracing: watch the first round-trips of a connection
   tcpdump-style — handshake, the slow-start doubling pattern, delayed
   ACKs. Taps both directions of the paper path.

     dune exec examples/trace_demo.exe *)

let () =
  let scenario = Core.Scenario.anl_lbnl () in
  let sched = scenario.Core.Scenario.sched in
  let tracer = Netsim.Tracer.create ~capacity:48 () in
  Netsim.Tracer.tap tracer ~label:"anl>lbl"
    scenario.Core.Scenario.path.Netsim.Topology.Duplex.a_to_b;
  Netsim.Tracer.tap tracer ~label:"lbl>anl"
    scenario.Core.Scenario.path.Netsim.Topology.Duplex.b_to_a;
  let _conn =
    Tcp.Connection.establish
      ~src:(Core.Scenario.sender_host scenario)
      ~dst:(Core.Scenario.receiver_host scenario)
      ~flow:1 ~ids:scenario.Core.Scenario.ids ()
  in
  (* A quarter second: handshake plus the first few slow-start rounds. *)
  Sim.Scheduler.run ~until:(Sim.Time.ms 250) sched;
  print_endline "first moments of a transfer on the ANL->LBNL path";
  print_endline "(SYN handshake, then watch cwnd double each 60 ms round):";
  print_newline ();
  List.iter print_endline (Netsim.Tracer.lines tracer);
  Printf.printf "\n(%d packets captured in total; ring keeps the last %d)\n"
    (Netsim.Tracer.captured tracer)
    (List.length (Netsim.Tracer.lines tracer))
