type drop_reason = Full | Red_early | Red_forced

type red_params = {
  min_th : float;
  max_th : float;
  max_p : float;
  weight : float;
}

let default_red = { min_th = 5.; max_th = 15.; max_p = 0.1; weight = 0.002 }

type red_state = {
  params : red_params;
  link_rate : Sim.Units.rate;
  ecn : bool;
  mutable avg : float;
  mutable count : int;        (* packets since last early drop *)
  mutable idle_since : Sim.Time.t option;
  mutable marks : int;
  rng : Sim.Rng.t;
}

type discipline = Droptail | Red of red_state

type t = {
  discipline : discipline;
  capacity_packets : int;
  capacity_bytes : int option;
  items : Packet.t Queue.t;
  mutable bytes : int;
  mutable drop_count : int;
  mutable enqueue_count : int;
  mutable drop_hook : (Packet.t -> drop_reason -> unit) option;
}

let droptail ?capacity_bytes ~capacity_packets () =
  if capacity_packets <= 0 then
    invalid_arg "Queue_disc.droptail: capacity must be positive";
  {
    discipline = Droptail;
    capacity_packets;
    capacity_bytes;
    items = Queue.create ();
    bytes = 0;
    drop_count = 0;
    enqueue_count = 0;
    drop_hook = None;
  }

let red ?(ecn = false) ~capacity_packets ~link_rate params =
  if capacity_packets <= 0 then
    invalid_arg "Queue_disc.red: capacity must be positive";
  {
    discipline =
      Red
        {
          params;
          link_rate;
          ecn;
          avg = 0.;
          count = 0;
          idle_since = None;
          marks = 0;
          rng = Sim.Rng.of_seed 0x52ED;
        };
    capacity_packets;
    capacity_bytes = None;
    items = Queue.create ();
    bytes = 0;
    drop_count = 0;
    enqueue_count = 0;
    drop_hook = None;
  }

let length t = Queue.length t.items
let byte_length t = t.bytes
let capacity_packets t = t.capacity_packets

let is_full t =
  Queue.length t.items >= t.capacity_packets
  ||
  match t.capacity_bytes with
  | Some cap -> t.bytes >= cap
  | None -> false

let drops t = t.drop_count
let enqueued t = t.enqueue_count
let set_drop_hook t hook = t.drop_hook <- Some hook

let reject t pkt reason =
  t.drop_count <- t.drop_count + 1;
  (match t.drop_hook with Some hook -> hook pkt reason | None -> ());
  Error reason

let accept t pkt =
  Queue.add pkt t.items;
  t.bytes <- t.bytes + Packet.size pkt;
  t.enqueue_count <- t.enqueue_count + 1;
  Ok ()

(* The steady-state RED curve — Floyd & Jacobson's piecewise-linear
   drop probability with the gentle extension, without the per-burst
   count correction (which averages out over many arrivals). Shared by
   the packet-level discipline below, the fluid many-flows engine and
   the mean-field oracle, so all three see the same p(avg). *)
let red_drop_probability p ~avg =
  if avg < p.min_th then 0.
  else if avg >= 2. *. p.max_th then 1.
  else if avg < p.max_th then
    p.max_p *. (avg -. p.min_th) /. (p.max_th -. p.min_th)
  else p.max_p +. ((1. -. p.max_p) *. (avg -. p.max_th) /. p.max_th)

(* RED per Floyd & Jacobson 1993, with the "gentle" extension between
   max_th and 2*max_th. The average is updated on every arrival; after
   an idle period it decays as if the queue had drained at line rate. *)
let red_decide t s ~now =
  let q = float_of_int (Queue.length t.items) in
  (match s.idle_since with
  | Some since when Queue.is_empty t.items ->
      let idle = Sim.Time.to_sec (Sim.Time.sub now since) in
      let pkt_time = 1500. *. 8. /. s.link_rate in
      let m = idle /. pkt_time in
      s.avg <- s.avg *. ((1. -. s.params.weight) ** m);
      s.idle_since <- None
  | _ -> ());
  s.avg <- ((1. -. s.params.weight) *. s.avg) +. (s.params.weight *. q);
  if s.avg < s.params.min_th then begin
    s.count <- 0;
    `Accept
  end
  else if s.avg >= 2. *. s.params.max_th then `Drop Red_forced
  else begin
    let pb = red_drop_probability s.params ~avg:s.avg in
    s.count <- s.count + 1;
    let pa =
      let denom = 1. -. (float_of_int s.count *. pb) in
      if denom <= 0. then 1. else pb /. denom
    in
    if Sim.Rng.float s.rng < pa then begin
      s.count <- 0;
      `Drop Red_early
    end
    else `Accept
  end

let enqueue t ~now pkt =
  match t.discipline with
  | Droptail -> if is_full t then reject t pkt Full else accept t pkt
  | Red s -> (
      if is_full t then reject t pkt Full
      else
        match red_decide t s ~now with
        | `Accept -> accept t pkt
        | `Drop Red_early when s.ecn ->
            (* Marking mode: signal congestion without losing the
               packet (RFC 3168 §5). *)
            pkt.Packet.ecn_ce <- true;
            s.marks <- s.marks + 1;
            accept t pkt
        | `Drop reason -> reject t pkt reason)

let dequeue t ~now =
  match Queue.take_opt t.items with
  | None -> None
  | Some pkt ->
      t.bytes <- t.bytes - Packet.size pkt;
      (match t.discipline with
      | Red s when Queue.is_empty t.items -> s.idle_since <- Some now
      | Red _ | Droptail -> ());
      Some pkt

let ecn_marks t =
  match t.discipline with Red s -> s.marks | Droptail -> 0
