type t = {
  sched : Sim.Scheduler.t;
  prop_delay : Sim.Time.t;
  loss_rate : float;
  rng : Sim.Rng.t;
  mutable sink : (Packet.t -> unit) option;
  mutable taps : (Sim.Time.t -> Packet.t -> unit) array;
  mutable drop_filter : (Packet.t -> bool) option;
  mutable fault_hook : (Sim.Time.t -> Packet.t -> Sim.Time.t list) option;
  mutable delivered_count : int;
  mutable lost_count : int;
  mutable dup_count : int;
  mutable flying : int;
  mutable tracer : Trace.t option;
  mutable trace_src : int;
  (* Remote mode: the link crosses a partition boundary. Transmit-side
     decisions (taps, drop filter, corruption, fault hook) still run on
     the owning partition; the surviving copies are handed to [remote]
     with their absolute due time instead of being scheduled locally.
     Counter discipline is single-writer per side: the transmit side
     writes [lost_count]/[dup_count]/[remote_handed], the delivery side
     writes [delivered_count], and both are only read together at
     synchronization barriers. *)
  mutable remote : (due:Sim.Time.t -> Packet.t -> unit) option;
  mutable remote_handed : int;
}

let create sched ~delay ?(loss_rate = 0.) ?rng () =
  if not (loss_rate >= 0. && loss_rate <= 1.) then
    invalid_arg
      (Printf.sprintf "Link.create: loss_rate %g outside [0, 1]" loss_rate);
  (* Without an explicit rng each link gets its own stream derived from
     the scheduler-wide seed, so two lossy links never share loss
     decisions (they used to collapse onto one fixed-seed stream). *)
  let rng =
    match rng with Some r -> r | None -> Sim.Scheduler.derive_rng sched
  in
  {
    sched;
    prop_delay = delay;
    loss_rate;
    rng;
    sink = None;
    taps = [||];
    drop_filter = None;
    fault_hook = None;
    delivered_count = 0;
    lost_count = 0;
    dup_count = 0;
    flying = 0;
    tracer = None;
    trace_src = 0;
    remote = None;
    remote_handed = 0;
  }

let connect t sink = t.sink <- Some sink
let set_remote t push = t.remote <- Some push

let set_tracer t ?(src = 0) tracer =
  t.tracer <- tracer;
  t.trace_src <- src

let trace t ~code pkt =
  match t.tracer with
  | None -> ()
  | Some tr ->
      Trace.emit tr
        ~time_ns:(Sim.Time.to_ns_int (Sim.Scheduler.now t.sched))
        ~code ~src:t.trace_src ~arg1:pkt.Packet.flow ~arg2:(Packet.size pkt)

(* Registration order is observation order. Copy-on-add keeps the hot
   transmit path a flat array walk; taps are only added at setup time. *)
let add_tap t tap =
  let n = Array.length t.taps in
  let taps = Array.make (n + 1) tap in
  Array.blit t.taps 0 taps 0 n;
  t.taps <- taps
let set_drop_filter t f = t.drop_filter <- Some f
let set_fault_hook t h = t.fault_hook <- Some h

let deliver_after t sink pkt extra =
  let delay = Sim.Time.add t.prop_delay (Sim.Time.max extra Sim.Time.zero) in
  match t.remote with
  | Some push ->
      t.remote_handed <- t.remote_handed + 1;
      push ~due:(Sim.Time.add (Sim.Scheduler.now t.sched) delay) pkt
  | None ->
      t.flying <- t.flying + 1;
      ignore
        (Sim.Scheduler.after t.sched delay (fun () ->
             t.flying <- t.flying - 1;
             t.delivered_count <- t.delivered_count + 1;
             trace t ~code:Trace.Code.link_deliver pkt;
             sink pkt))

(* Destination-partition half of a remote link: the channel handler
   calls this at the packet's due time, mirroring exactly what the
   local delivery event does. *)
let remote_deliver t pkt =
  t.delivered_count <- t.delivered_count + 1;
  (match t.sink with
  | Some s -> s pkt
  | None -> invalid_arg "Link.remote_deliver: link not connected")

let transmit t pkt =
  let sink =
    match (t.sink, t.remote) with
    | Some s, _ -> s
    | None, Some _ -> ignore
    | None, None -> invalid_arg "Link.transmit: link not connected"
  in
  let now = Sim.Scheduler.now t.sched in
  for i = 0 to Array.length t.taps - 1 do
    t.taps.(i) now pkt
  done;
  trace t ~code:Trace.Code.link_tx pkt;
  let filtered =
    match t.drop_filter with Some f -> f pkt | None -> false
  in
  if filtered || (t.loss_rate > 0. && Sim.Rng.float t.rng < t.loss_rate)
  then begin
    t.lost_count <- t.lost_count + 1;
    trace t ~code:Trace.Code.link_drop pkt
  end
  else
    match t.fault_hook with
    | None -> deliver_after t sink pkt Sim.Time.zero
    | Some hook -> (
        match hook now pkt with
        | [] ->
            t.lost_count <- t.lost_count + 1;
            trace t ~code:Trace.Code.link_drop pkt
        | [ extra ] -> deliver_after t sink pkt extra
        | extras ->
            t.dup_count <- t.dup_count + List.length extras - 1;
            List.iter (deliver_after t sink pkt) extras)

let delay t = t.prop_delay
let delivered t = t.delivered_count
let lost t = t.lost_count
let duplicated t = t.dup_count

let in_flight t =
  match t.remote with
  | None -> t.flying
  | Some _ -> t.remote_handed - t.delivered_count
