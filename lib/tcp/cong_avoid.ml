type t = {
  name : string;
  on_ack :
    newly_acked:int -> cwnd:float -> mss:int -> srtt:Sim.Time.t option ->
    min_rtt:Sim.Time.t option -> now:Sim.Time.t -> float;
  on_loss : cwnd:float -> flight:int -> mss:int -> now:Sim.Time.t ->
    float * float;
  on_rto : cwnd:float -> flight:int -> mss:int -> float * float;
  reset : unit -> unit;
}

let floor_window ~mss w = Float.max (2. *. float_of_int mss) w

let reno () =
  let on_ack ~newly_acked:_ ~cwnd ~mss ~srtt:_ ~min_rtt:_ ~now:_ =
    let m = float_of_int mss in
    cwnd +. (m *. m /. cwnd)
  in
  let halve ~flight ~mss =
    floor_window ~mss (float_of_int flight /. 2.)
  in
  let on_loss ~cwnd:_ ~flight ~mss ~now:_ =
    let ssthresh = halve ~flight ~mss in
    (ssthresh, ssthresh)
  in
  let on_rto ~cwnd:_ ~flight ~mss =
    (halve ~flight ~mss, float_of_int mss)
  in
  { name = "reno"; on_ack; on_loss; on_rto; reset = (fun () -> ()) }

(* RFC 8312. Internal arithmetic in segments; time in seconds. *)
let cubic ?(c = 0.4) ?(beta = 0.7) () =
  let w_max = ref 0. in
  let epoch_start = ref None in
  let k = ref 0. in
  let w_est_base = ref 0. in
  let start_epoch ~now ~cwnd_seg =
    epoch_start := Some now;
    if !w_max < cwnd_seg then w_max := cwnd_seg;
    k := Float.cbrt (!w_max *. (1. -. beta) /. c);
    w_est_base := cwnd_seg
  in
  let on_ack ~newly_acked:_ ~cwnd ~mss ~srtt ~min_rtt:_ ~now =
    let m = float_of_int mss in
    let cwnd_seg = cwnd /. m in
    (match !epoch_start with
    | None -> start_epoch ~now ~cwnd_seg
    | Some _ -> ());
    let t_epoch =
      match !epoch_start with
      | Some t0 -> Sim.Time.to_sec (Sim.Time.sub now t0)
      | None -> 0.
    in
    let rtt = match srtt with Some s -> Sim.Time.to_sec s | None -> 0.1 in
    (* Target the cubic curve one RTT ahead. *)
    let t = t_epoch +. rtt in
    let w_cubic = (c *. ((t -. !k) ** 3.)) +. !w_max in
    (* TCP-friendly region: emulate Reno's average rate. *)
    let w_est =
      !w_est_base
      +. (3. *. (1. -. beta) /. (1. +. beta) *. (t_epoch /. Float.max rtt 1e-6))
    in
    let target = Float.max w_cubic w_est in
    let next =
      if target > cwnd_seg then
        (* Spread the increase over the ACKs of one window. *)
        cwnd_seg +. ((target -. cwnd_seg) /. Float.max cwnd_seg 1.)
      else cwnd_seg +. (0.01 /. Float.max cwnd_seg 1.)
    in
    next *. m
  in
  let on_loss ~cwnd ~flight:_ ~mss ~now =
    let m = float_of_int mss in
    let cwnd_seg = cwnd /. m in
    (* Fast convergence: release bandwidth when losses cluster. *)
    if cwnd_seg < !w_max then w_max := cwnd_seg *. (1. +. beta) /. 2.
    else w_max := cwnd_seg;
    let next = floor_window ~mss (cwnd *. beta) in
    epoch_start := Some now;
    k := Float.cbrt (!w_max *. (1. -. beta) /. c);
    w_est_base := next /. m;
    (next, next)
  in
  let on_rto ~cwnd:_ ~flight ~mss =
    let ssthresh = floor_window ~mss (float_of_int flight *. beta) in
    epoch_start := None;
    (ssthresh, float_of_int mss)
  in
  let reset () =
    w_max := 0.;
    epoch_start := None;
    k := 0.;
    w_est_base := 0.
  in
  { name = "cubic"; on_ack; on_loss; on_rto; reset }

(* Relentless congestion control (Mathis, arXiv 1102.3270): additive
   increase as Reno, but a loss event costs only the segments actually
   lost — here one MSS per fast-retransmit episode — instead of halving.
   ssthresh is pinned to the reduced window so recovery resumes exactly
   where the decrement left it. The analytical model: with per-segment
   loss probability p, +1 segment per RTT balances p·W segment
   decrements per RTT at p·W = 1, i.e. W* ≈ 1/p segments and throughput
   ≈ MSS/(p·RTT) — the oracle checked by test_policy_models. Timeouts
   still collapse the window (a lost retransmission means the decrement
   accounting is gone). *)
let relentless () =
  let base = reno () in
  let on_loss ~cwnd ~flight:_ ~mss ~now:_ =
    let next = floor_window ~mss (cwnd -. float_of_int mss) in
    (next, next)
  in
  {
    name = "relentless";
    on_ack = base.on_ack;
    on_loss;
    on_rto = base.on_rto;
    reset = (fun () -> ());
  }

(* Small-RTT cwnd scaling (Briscoe & De Schepper, arXiv 1904.07598):
   classic AIMD adds one segment per RTT, so a sub-millisecond-RTT flow
   accelerates its *rate* thousands of times faster than a WAN flow and
   starves it at a shared bottleneck. Below a reference RTT the additive
   increase is scaled by srtt/ref_rtt, making rate acceleration
   (segments/s per second) RTT-independent: +MSS·(srtt/ref) per RTT,
   i.e. +MSS²·(srtt/ref)/cwnd per ACK. At or above ref_rtt — and before
   an RTT estimate exists — this is exactly Reno; decrease rules are
   untouched, so the W ≈ 1.2/√p steady state shrinks proportionally for
   short-RTT flows instead of being RTT-blind. *)
let small_rtt ?(ref_rtt = Sim.Time.ms 25) () =
  let base = reno () in
  let on_ack ~newly_acked ~cwnd ~mss ~srtt ~min_rtt ~now =
    match srtt with
    | Some rtt when Sim.Time.(rtt < ref_rtt) ->
        let m = float_of_int mss in
        let scale = Sim.Time.to_sec rtt /. Sim.Time.to_sec ref_rtt in
        cwnd +. (scale *. m *. m /. cwnd)
    | _ -> base.on_ack ~newly_acked ~cwnd ~mss ~srtt ~min_rtt ~now
  in
  {
    name = "small-rtt";
    on_ack;
    on_loss = base.on_loss;
    on_rto = base.on_rto;
    reset = (fun () -> ());
  }

(* FAST-style delay-based control (Wei/Low FAST TCP): once per RTT the
   window moves toward the fixed point of
     w ← (1−γ)·w + γ·(base_rtt/avg_rtt · w + α)
   where avg_rtt is a γ-smoothed RTT average and α (segments) is the
   target per-flow backlog parked in the path's queues. At equilibrium
   w·(1 − base/avg) = α: exactly α segments queued. The per-update move
   is capped at window doubling, per the published algorithm. Loss
   reactions are Reno's. *)
let fast ?(alpha_seg = 16.) ?(gamma = 0.5) () =
  let base = reno () in
  let avg_rtt = ref None in
  let next_update = ref Sim.Time.zero in
  let on_ack ~newly_acked ~cwnd ~mss ~srtt ~min_rtt ~now =
    match (srtt, min_rtt) with
    | Some rtt, Some base_rtt when Sim.Time.is_positive base_rtt ->
        let rtt_s = Sim.Time.to_sec rtt in
        let avg =
          match !avg_rtt with
          | None -> rtt_s
          | Some a -> ((1. -. gamma) *. a) +. (gamma *. rtt_s)
        in
        avg_rtt := Some avg;
        if Sim.Time.(now < !next_update) then cwnd
        else begin
          next_update := Sim.Time.add now rtt;
          let m = float_of_int mss in
          let base_s = Sim.Time.to_sec base_rtt in
          let target =
            ((1. -. gamma) *. cwnd)
            +. (gamma *. ((base_s /. avg *. cwnd) +. (alpha_seg *. m)))
          in
          floor_window ~mss (Float.min (2. *. cwnd) target)
        end
    | _ -> base.on_ack ~newly_acked ~cwnd ~mss ~srtt ~min_rtt ~now
  in
  let reset () =
    avg_rtt := None;
    next_update := Sim.Time.zero
  in
  { name = "fast"; on_ack; on_loss = base.on_loss; on_rto = base.on_rto; reset }

(* Vegas: delay-based backlog estimation, adjusted once per RTT. *)
let vegas ?(alpha = 2.) ?(beta_seg = 4.) () =
  let base = reno () in
  let next_adjust = ref Sim.Time.zero in
  let on_ack ~newly_acked ~cwnd ~mss ~srtt ~min_rtt ~now =
    match (srtt, min_rtt) with
    | Some rtt, Some base_rtt when Sim.Time.is_positive base_rtt ->
        if Sim.Time.(now < !next_adjust) then cwnd
        else begin
          next_adjust := Sim.Time.add now rtt;
          let m = float_of_int mss in
          let rtt_s = Sim.Time.to_sec rtt in
          let base_s = Sim.Time.to_sec base_rtt in
          (* Segments parked in queues along the path. *)
          let backlog = cwnd /. m *. ((rtt_s -. base_s) /. rtt_s) in
          if backlog < alpha then cwnd +. m
          else if backlog > beta_seg then floor_window ~mss (cwnd -. m)
          else cwnd
        end
    | _ ->
        base.on_ack ~newly_acked ~cwnd ~mss ~srtt ~min_rtt ~now
  in
  {
    name = "vegas";
    on_ack;
    on_loss = base.on_loss;
    on_rto = base.on_rto;
    reset = (fun () -> next_adjust := Sim.Time.zero);
  }
