(* Tests for the flow-level many-flows engine and its Spec integration:
   bit-level determinism (same seed twice, and independence from the
   worker count), budgeted-flow retirement, and capacity conservation
   under overload. *)

module Mf = Workload.Many_flows

let run_engine ?(flows = 200) ?(duration = 5.) ?mean_size ?arrival_rate
    ?(red = None) ~seed () =
  let sched = Sim.Scheduler.create ~seed () in
  let t =
    Mf.start ~sched ~rng:(Sim.Scheduler.derive_rng sched) ~seed
      {
        Mf.default_params with
        flows;
        arrival_rate;
        mean_size;
        red;
        capacity_bytes_per_sec = 10e6 /. 8.;
        base_rtt = Sim.Time.ms 40;
        buffer_packets = 60;
      }
  in
  Sim.Scheduler.run ~until:(Sim.Time.of_sec duration) sched;
  t

let fingerprint t =
  ( Mf.delivered_bytes t,
    Mf.loss_events t,
    Mf.queue_packets t,
    Mf.sum_cwnd_bytes t,
    Mf.created t,
    Mf.completed t )

let test_engine_determinism () =
  let a = fingerprint (run_engine ~seed:7 ()) in
  let b = fingerprint (run_engine ~seed:7 ()) in
  Alcotest.(check bool) "same seed, identical counters" true (a = b);
  let c = fingerprint (run_engine ~seed:8 ()) in
  Alcotest.(check bool) "different seed diverges" true (a <> c)

let test_budgeted_flows_complete () =
  let t =
    run_engine ~flows:50 ~duration:30. ~mean_size:30_000 ~arrival_rate:25.
      ~seed:3 ()
  in
  Alcotest.(check int) "all flows created" 50 (Mf.created t);
  Alcotest.(check int) "all budgets drained" 50 (Mf.completed t);
  Alcotest.(check int) "none left running" 0 (Mf.active t);
  Alcotest.(check bool)
    "delivered at least the minimum sizes" true
    (Mf.delivered_bytes t >= 50. *. 1500.)

let test_goodput_bounded_by_capacity () =
  (* Heavy overload with RED: aggregate goodput must not exceed the
     fluid bottleneck's line rate. *)
  let red =
    Some
      { Netsim.Queue_disc.min_th = 15.; max_th = 45.; max_p = 0.1; weight = 0.002 }
  in
  let t = run_engine ~flows:5_000 ~duration:8. ~red ~seed:11 () in
  let g = Mf.goodput_mbps t ~duration:(Sim.Time.of_sec 8.) in
  Alcotest.(check bool)
    (Printf.sprintf "goodput %.1f <= 10 Mbit/s capacity" g)
    true
    (g <= 10.0 +. 1e-6);
  Alcotest.(check bool) "and the link is busy" true (g > 5.)

let mf_spec ~jobs:_ ~seed =
  {
    Core.Spec.default with
    name = "mf-jobs";
    seed;
    duration = Sim.Time.of_sec 6.;
    sample_period = Sim.Time.ms 250;
    topology =
      Core.Spec.Duplex
        {
          Core.Spec.default_duplex with
          rate = Sim.Units.mbps 20.;
          one_way_delay = Sim.Time.ms 20;
          ifq_capacity = 80;
        };
    flows =
      [
        {
          Core.Spec.default_flow with
          workload =
            Core.Spec.Many_flows
              {
                flows = 300;
                arrival_rate = Some 100.;
                arrival_pareto_shape = None;
                mean_size = Some 200_000;
                size_pareto_shape = 1.3;
              };
        };
      ];
  }

let outcome_fingerprint (o : Core.Spec.outcome) =
  let r = List.hd o.results in
  ( r.goodput_mbps,
    r.congestion_signals,
    r.final_cwnd_segments,
    r.mean_ifq,
    r.peak_ifq,
    Array.to_list (Sim.Stats.Series.values r.cwnd_series),
    Array.to_list (Sim.Stats.Series.values r.ifq_series),
    o.path.queue_mean )

let test_jobs_independent () =
  (* The same batch through 1 worker and through 2 domains must be
     byte-identical: per-flow seeds derive from the spec, not from
     execution interleaving. *)
  let specs = [ mf_spec ~jobs:1 ~seed:5; mf_spec ~jobs:1 ~seed:6 ] in
  let seq =
    Engine.Pool.with_pool ~jobs:1 (fun pool -> Core.Spec.run_batch ~pool specs)
  in
  let par =
    Engine.Pool.with_pool ~jobs:2 (fun pool -> Core.Spec.run_batch ~pool specs)
  in
  List.iter2
    (fun a b ->
      Alcotest.(check bool)
        "outcome independent of worker count" true
        (outcome_fingerprint a = outcome_fingerprint b))
    seq par;
  Alcotest.(check bool)
    "seeds still matter" true
    (outcome_fingerprint (List.nth seq 0) <> outcome_fingerprint (List.nth seq 1))

(* Parameter validation: every nonsensical value must be refused up
   front with a named Invalid_argument, not surface later as a NaN
   schedule or an infinite-mean sampler. *)
let test_param_validation () =
  let start params =
    let sched = Sim.Scheduler.create ~seed:1 () in
    ignore (Mf.start ~sched ~rng:(Sim.Scheduler.derive_rng sched) ~seed:1 params)
  in
  let rejects what msg params =
    Alcotest.check_raises what (Invalid_argument msg) (fun () -> start params)
  in
  rejects "zero flows" "Many_flows.start: need a positive flow count"
    { Mf.default_params with flows = 0 };
  rejects "negative capacity" "Many_flows.start: need a positive capacity"
    { Mf.default_params with capacity_bytes_per_sec = -1. };
  rejects "zero mss" "Many_flows.start: need a positive mss"
    { Mf.default_params with mss = 0 };
  rejects "zero initial window"
    "Many_flows.start: need a positive initial window"
    { Mf.default_params with init_cwnd_segments = 0 };
  rejects "zero buffer" "Many_flows.start: need at least one buffer packet"
    { Mf.default_params with buffer_packets = 0 };
  rejects "zero RTT" "Many_flows.start: need a positive base RTT"
    { Mf.default_params with base_rtt = Sim.Time.zero };
  rejects "zero arrival rate"
    "Many_flows.start: arrival_rate must be positive"
    { Mf.default_params with arrival_rate = Some 0. };
  rejects "negative arrival rate"
    "Many_flows.start: arrival_rate must be positive"
    { Mf.default_params with arrival_rate = Some (-3.) };
  rejects "arrival shape at 1"
    "Many_flows.start: arrival_pareto_shape must exceed 1 (shape <= 1 has \
     an infinite mean inter-arrival gap)"
    {
      Mf.default_params with
      arrival_rate = Some 10.;
      arrival_pareto_shape = Some 1.;
    };
  rejects "zero mean size" "Many_flows.start: mean_size must be positive"
    { Mf.default_params with mean_size = Some 0 };
  rejects "size shape below 1"
    "Many_flows.start: size_pareto_shape must exceed 1 (shape <= 1 has an \
     infinite mean flow size)"
    { Mf.default_params with mean_size = Some 50_000; size_pareto_shape = 0.9 };
  (* The size shape is ignored — and so not validated — for persistent
     flows, where no size is ever drawn. *)
  start { Mf.default_params with flows = 2; size_pareto_shape = 0.5 }

let test_spec_rejects_two_many_flows () =
  let f = (mf_spec ~jobs:1 ~seed:1).flows |> List.hd in
  let bad = { (mf_spec ~jobs:1 ~seed:1) with flows = [ f; f ] } in
  Alcotest.check_raises "two many_flows flows rejected"
    (Invalid_argument "Spec.build: at most one many_flows flow per spec")
    (fun () ->
      ignore (Core.Spec.build bad))

let suite =
  [
    Alcotest.test_case "engine is deterministic per seed" `Quick
      test_engine_determinism;
    Alcotest.test_case "budgeted flows retire" `Quick
      test_budgeted_flows_complete;
    Alcotest.test_case "goodput bounded by capacity under overload" `Quick
      test_goodput_bounded_by_capacity;
    Alcotest.test_case "outcome independent of --jobs" `Quick
      test_jobs_independent;
    Alcotest.test_case "parameter validation" `Quick test_param_validation;
    Alcotest.test_case "at most one many_flows per spec" `Quick
      test_spec_rejects_two_many_flows;
  ]
