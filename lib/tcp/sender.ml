type phase = Syn_sent | Slow_start_p | Cong_avoid_p | Fast_recovery

let phase_to_string = function
  | Syn_sent -> "syn-sent"
  | Slow_start_p -> "slow-start"
  | Cong_avoid_p -> "cong-avoid"
  | Fast_recovery -> "fast-recovery"

(* Phase codes in the Flow_table flags column. *)
let code_of_phase = function
  | Syn_sent -> 0
  | Slow_start_p -> 1
  | Cong_avoid_p -> 2
  | Fast_recovery -> 3

let phase_of_code = function
  | 0 -> Syn_sent
  | 1 -> Slow_start_p
  | 2 -> Cong_avoid_p
  | _ -> Fast_recovery

(* The numeric fast-path state (windows, offsets, counters, latches)
   lives in a {!Flow_table} row — flat SoA storage shared by every
   sender built over the same table — while this record keeps the
   boxed wiring: host, policies, estimators, callbacks. *)
type t = {
  host : Netsim.Host.t;
  sched : Sim.Scheduler.t;
  dst : int;
  flow : int;
  ids : Netsim.Packet.Id_source.source;
  cfg : Config.t;
  ss : Slow_start.t;
  cc : Cong_avoid.t;
  group : Web100.Group.t;
  rtt : Rtt_estimator.t;
  scoreboard : Sack_scoreboard.t;
  retx_done : Interval_set.t;
  iss : Proto.Seqno.t;
  table : Flow_table.t;
  row : int;
  mutable total : int option;
  mutable rto_handle : Sim.Scheduler.handle option;
  mutable rto_cb : unit -> unit; (* one closure per sender, not per arm *)
  mutable pace_cb : unit -> unit;
  mutable pending_retx : (int * int) option;
  mutable complete_cbs : (unit -> unit) list;
  mutable pace_timer : Sim.Scheduler.handle option;
  mutable tracer : Trace.t option;
  mutable last_traced_cwnd : float; (* dedupe tcp.cwnd records *)
}

(* Row accessors, named after the mutable fields they replaced.
   Unwrapped byte offsets: data byte 0 maps to seqno iss+1. *)
let una t = Flow_table.una t.table t.row
let set_una t v = Flow_table.set_una t.table t.row v
let nxt t = Flow_table.nxt t.table t.row
let set_nxt t v = Flow_table.set_nxt t.table t.row v
let cwnd_b t = Flow_table.cwnd t.table t.row
let set_cwnd_b t v = Flow_table.set_cwnd t.table t.row v
let ssthresh_b t = Flow_table.ssthresh t.table t.row
let set_ssthresh_b t v = Flow_table.set_ssthresh t.table t.row v
let rwnd t = Flow_table.rwnd t.table t.row
let set_rwnd t v = Flow_table.set_rwnd t.table t.row v
let ph t = phase_of_code (Flow_table.phase t.table t.row)
let set_ph t p = Flow_table.set_phase t.table t.row (code_of_phase p)
let dupacks t = Flow_table.dupacks t.table t.row
let set_dupacks t v = Flow_table.set_dupacks t.table t.row v
let recover t = Flow_table.recover t.table t.row
let set_recover t v = Flow_table.set_recover t.table t.row v
let reaction_mark t = Flow_table.reaction_mark t.table t.row
let set_reaction_mark t v = Flow_table.set_reaction_mark t.table t.row v
let bytes_sent_total t = Flow_table.bytes_sent t.table t.row

let add_bytes_sent t n =
  Flow_table.set_bytes_sent t.table t.row (bytes_sent_total t + n)

let stalled t = Flow_table.stalled t.table t.row
let set_stalled t v = Flow_table.set_stalled t.table t.row v
let completed t = Flow_table.completed t.table t.row
let set_completed t v = Flow_table.set_completed t.table t.row v
let started t = Flow_table.started t.table t.row
let set_started t v = Flow_table.set_started t.table t.row v
let cwr_pending t = Flow_table.cwr_pending t.table t.row
let set_cwr_pending t v = Flow_table.set_cwr_pending t.table t.row v

let next_pace_time t =
  Sim.Time.of_ns_int (Flow_table.next_pace_ns t.table t.row)

let set_next_pace_time t v =
  Flow_table.set_next_pace_ns t.table t.row (Sim.Time.to_ns_int v)

let last_data_send t =
  Sim.Time.of_ns_int (Flow_table.last_send_ns t.table t.row)

let set_last_data_send t v =
  Flow_table.set_last_send_ns t.table t.row (Sim.Time.to_ns_int v)

let mssf t = float_of_int t.cfg.Config.mss

let seq_of_offset t off = Proto.Seqno.add t.iss (1 + off)

(* Unwrap a 32-bit ack back to an absolute offset, anchored at una:
   valid because in-flight distances stay far below 2^31. *)
let offset_of_seq t seqno =
  una t + Proto.Seqno.diff seqno (seq_of_offset t (una t))

let flight_bytes t =
  let raw = nxt t - una t in
  if t.cfg.Config.use_sack then raw - Sack_scoreboard.sacked_bytes t.scoreboard
  else raw

(* --- web100 plumbing ------------------------------------------------- *)

let counter t name = Web100.Group.counter t.group name
let gauge t name = Web100.Group.gauge t.group name
let bump ?by t name = Web100.Group.Counter.incr ?by (counter t name)

(* --- trace plumbing --------------------------------------------------- *)

let set_tracer t tracer = t.tracer <- tracer

(* The flow id doubles as the trace source, so per-connection records
   demux the same way packets do. *)
let trace t ~code ~arg1 ~arg2 =
  match t.tracer with
  | None -> ()
  | Some tr ->
      Trace.emit tr
        ~time_ns:(Sim.Time.to_ns_int (Sim.Scheduler.now t.sched))
        ~code ~src:t.flow ~arg1 ~arg2

let trace_cwnd t =
  match t.tracer with
  | None -> ()
  | Some _ ->
      if cwnd_b t <> t.last_traced_cwnd then begin
        t.last_traced_cwnd <- cwnd_b t;
        let ssthresh =
          if ssthresh_b t >= float_of_int max_int then max_int
          else int_of_float (ssthresh_b t)
        in
        trace t ~code:Trace.Code.tcp_cwnd ~arg1:(int_of_float (cwnd_b t))
          ~arg2:ssthresh
      end

let update_gauges t =
  let set name v = Web100.Group.Gauge.set (gauge t name) v in
  set Web100.Kis.cur_cwnd (cwnd_b t);
  set Web100.Kis.cur_ssthresh
    (if ssthresh_b t = infinity then Float.max_float else ssthresh_b t);
  (match Rtt_estimator.srtt t.rtt with
  | Some s -> set Web100.Kis.smoothed_rtt (Sim.Time.to_ms s)
  | None -> ());
  (match Rtt_estimator.min_rtt t.rtt with
  | Some s -> set Web100.Kis.min_rtt (Sim.Time.to_ms s)
  | None -> ());
  set Web100.Kis.cur_rto (Sim.Time.to_ms (Rtt_estimator.rto t.rtt));
  set Web100.Kis.cur_ifq
    (float_of_int (Netsim.Ifq.occupancy (Netsim.Host.ifq t.host)));
  trace_cwnd t

(* --- segment construction -------------------------------------------- *)

let make_header t ~offset ~len ~flags =
  {
    Proto.Tcp_header.src_port = t.flow;
    dst_port = t.flow;
    seq = seq_of_offset t offset;
    ack = Proto.Seqno.zero;
    is_ack = false;
    flags;
    wnd = 0;
    payload_len = len;
    sack_blocks = [];
    ts_val = Sim.Scheduler.now t.sched;
    ts_ecr = Sim.Time.zero;
  }

let view t : Slow_start.view =
  let ifq = Netsim.Host.ifq t.host in
  {
    Slow_start.now = (fun () -> Sim.Scheduler.now t.sched);
    mss = t.cfg.Config.mss;
    cwnd = (fun () -> cwnd_b t);
    ssthresh = (fun () -> ssthresh_b t);
    flight = (fun () -> flight_bytes t);
    snd_una = (fun () -> una t);
    snd_nxt = (fun () -> nxt t);
    srtt = (fun () -> Rtt_estimator.srtt t.rtt);
    min_rtt = (fun () -> Rtt_estimator.min_rtt t.rtt);
    ifq_occupancy = (fun () -> Netsim.Ifq.occupancy ifq);
    ifq_capacity = (fun () -> Netsim.Ifq.capacity ifq);
  }

(* --- local congestion (send-stall) ----------------------------------- *)

let react_to_stall t =
  bump t Web100.Kis.send_stall;
  trace t ~code:Trace.Code.tcp_send_stall
    ~arg1:(Web100.Group.Counter.value (counter t Web100.Kis.send_stall))
    ~arg2:(Netsim.Ifq.occupancy (Netsim.Host.ifq t.host));
  if una t >= reaction_mark t then begin
    (* At most one window reduction per round trip, like the kernel. *)
    set_reaction_mark t (nxt t);
    let mss = t.cfg.Config.mss in
    let floor = 2. *. float_of_int mss in
    match t.cfg.Config.local_congestion with
    | Local_congestion.Halve ->
        bump t Web100.Kis.congestion_signals;
        set_ssthresh_b t
          (Float.max floor (float_of_int (flight_bytes t) /. 2.));
        set_cwnd_b t (ssthresh_b t);
        if ph t = Slow_start_p then set_ph t Cong_avoid_p
    | Local_congestion.Cwr ->
        bump t Web100.Kis.congestion_signals;
        set_cwnd_b t (Float.max floor (cwnd_b t *. 0.7));
        if ph t = Slow_start_p then set_ph t Cong_avoid_p
    | Local_congestion.Ignore -> ()
  end

(* --- transmission ----------------------------------------------------- *)

(* Send data bytes [lo, hi); true on success, false on send-stall. *)
let transmit_range t ~retx (lo, hi) =
  let len = hi - lo in
  assert (len > 0);
  let flags = if cwr_pending t then [ Proto.Tcp_header.Cwr ] else [] in
  let header = make_header t ~offset:lo ~len ~flags in
  let pkt =
    Netsim.Packet.make
      ~id:(Netsim.Packet.Id_source.next t.ids)
      ~flow:t.flow ~src:(Netsim.Host.id t.host) ~dst:t.dst
      ~created:(Sim.Scheduler.now t.sched)
      (Proto.Payload.Tcp header)
  in
  match Netsim.Host.send t.host pkt with
  | `Sent ->
      set_cwr_pending t false;
      set_last_data_send t (Sim.Scheduler.now t.sched);
      bump t Web100.Kis.pkts_out;
      bump ~by:len t Web100.Kis.data_bytes_out;
      add_bytes_sent t len;
      if retx then begin
        bump t Web100.Kis.pkts_retrans;
        bump ~by:len t Web100.Kis.bytes_retrans;
        trace t ~code:Trace.Code.tcp_retransmit ~arg1:lo ~arg2:len
      end;
      true
  | `Stalled ->
      set_stalled t true;
      react_to_stall t;
      false

let retransmit t (lo, hi) =
  if not (transmit_range t ~retx:true (lo, hi)) then
    t.pending_retx <- Some (lo, hi)

let cancel_rto t =
  match t.rto_handle with
  | Some h ->
      Sim.Scheduler.cancel t.sched h;
      t.rto_handle <- None
  | None -> ()

(* Re-arming reuses the sender's one preallocated callback: nothing on
   the RTO path allocates a per-arm closure. *)
let arm_rto t =
  cancel_rto t;
  let delay = Rtt_estimator.rto t.rtt in
  t.rto_handle <- Some (Sim.Scheduler.after t.sched delay t.rto_cb)

let rec on_rto t =
  t.rto_handle <- None;
  if ph t = Syn_sent then begin
    (* Lost SYN: back off and retry. *)
    bump t Web100.Kis.timeouts;
    Rtt_estimator.backoff t.rtt;
    send_syn t;
    arm_rto t
  end
  else if flight_bytes t > 0 || nxt t > una t then begin
    bump t Web100.Kis.timeouts;
    bump t Web100.Kis.congestion_signals;
    trace t ~code:Trace.Code.tcp_rto
      ~arg1:(Rtt_estimator.backoff_factor t.rtt)
      ~arg2:(flight_bytes t);
    Flow_table.ca_on_rto t.table t.row t.cc ~flight:(flight_bytes t)
      ~mss:t.cfg.Config.mss;
    (* Go-back-N: everything past the ACK point is presumed lost; the
       SACK scoreboard is invalidated (RFC 6675 §5.1). *)
    set_nxt t (una t);
    Sack_scoreboard.reset t.scoreboard;
    Interval_set.remove_below t.retx_done max_int;
    set_dupacks t 0;
    t.pending_retx <- None;
    t.ss.Slow_start.reset ();
    set_ph t Slow_start_p;
    Rtt_estimator.backoff t.rtt;
    arm_rto t;
    update_gauges t;
    try_send t
  end

and send_syn t =
  let header =
    {
      (make_header t ~offset:(-1) ~len:0 ~flags:[ Proto.Tcp_header.Syn ]) with
      Proto.Tcp_header.seq = t.iss;
    }
  in
  let pkt =
    Netsim.Packet.make
      ~id:(Netsim.Packet.Id_source.next t.ids)
      ~flow:t.flow ~src:(Netsim.Host.id t.host) ~dst:t.dst
      ~created:(Sim.Scheduler.now t.sched)
      (Proto.Payload.Tcp header)
  in
  (match Netsim.Host.send t.host pkt with
  | `Sent -> bump t Web100.Kis.pkts_out
  | `Stalled -> react_to_stall t)

(* During SACK recovery: fill holes first, then new data, respecting the
   deflated pipe. *)
and sack_recovery_send t =
  let mss = t.cfg.Config.mss in
  let continue = ref true in
  while
    !continue && (not (stalled t))
    && float_of_int (flight_bytes t + mss) <= cwnd_b t
  do
    match next_unfilled_hole t with
    | Some (lo, hi) ->
        Interval_set.add t.retx_done ~lo ~hi;
        if transmit_range t ~retx:true (lo, hi) then ()
        else begin
          t.pending_retx <- Some (lo, hi);
          continue := false
        end
    | None -> (
        (* New data during recovery must still respect the receiver's
           advertised window, not just the pipe rule. *)
        match new_data_range t with
        | Some ((lo, hi) as range)
          when float_of_int (flight_bytes t + (hi - lo))
               <= Float.min (cwnd_b t) (float_of_int (rwnd t)) ->
            if transmit_range t ~retx:false range then set_nxt t hi
            else continue := false
        | Some _ | None -> continue := false)
  done

and next_unfilled_hole t =
  let mss = t.cfg.Config.mss in
  let rec search from =
    match Sack_scoreboard.next_hole t.scoreboard ~una:from ~mss with
    | None -> None
    | Some (lo, hi) ->
        if Interval_set.contains_range t.retx_done ~lo ~hi then search hi
        else Some (lo, hi)
  in
  search (una t)

and new_data_range t =
  let mss = t.cfg.Config.mss in
  let remaining =
    match t.total with None -> mss | Some total -> total - nxt t
  in
  let len = Stdlib.min mss remaining in
  if len <= 0 then None else Some (nxt t, nxt t + len)

(* Pacing: minimum spacing between data segments so the window is
   released at gain·cwnd/srtt instead of in line-rate bursts. *)
and pace_interval t ~bytes =
  match Rtt_estimator.srtt t.rtt with
  | None -> Sim.Time.zero
  | Some srtt ->
      let gain =
        if ph t = Slow_start_p then t.cfg.Config.pace_ss_gain
        else t.cfg.Config.pace_ca_gain
      in
      let rate_bytes_per_sec =
        gain *. cwnd_b t /. Float.max 1e-6 (Sim.Time.to_sec srtt)
      in
      Sim.Time.of_sec (float_of_int bytes /. rate_bytes_per_sec)

and pace_gate t ~bytes =
  (* true = clear to send now; false = deferred to the pacing timer. *)
  if not t.cfg.Config.pacing then true
  else begin
    let now = Sim.Scheduler.now t.sched in
    if Sim.Time.(now >= next_pace_time t) then begin
      set_next_pace_time t
        (Sim.Time.add
           (Sim.Time.max now (next_pace_time t))
           (pace_interval t ~bytes));
      true
    end
    else begin
      (if Option.is_none t.pace_timer then
         let delay = Sim.Time.sub (next_pace_time t) now in
         t.pace_timer <- Some (Sim.Scheduler.after t.sched delay t.pace_cb));
      false
    end
  end

(* RFC 2861: a connection idle past its RTO has lost its ACK clock; the
   old window would be released as one huge burst. Linux restarts from
   the initial window in slow-start — replaying, on every application
   burst, exactly the pathology the paper studies. *)
and maybe_idle_restart t =
  if
    t.cfg.Config.slow_start_restart && ph t <> Syn_sent
    && flight_bytes t = 0
    && Sim.Time.(
         Sim.Time.sub (Sim.Scheduler.now t.sched) (last_data_send t)
         > Rtt_estimator.rto t.rtt)
  then begin
    let iw =
      float_of_int (t.cfg.Config.init_cwnd_segments * t.cfg.Config.mss)
    in
    if cwnd_b t > iw then begin
      set_cwnd_b t iw;
      t.ss.Slow_start.reset ();
      set_ph t Slow_start_p
    end
  end

and try_send t =
  if
    started t && (not (completed t)) && (not (stalled t)) && ph t <> Syn_sent
  then begin
    maybe_idle_restart t;
    (match t.pending_retx with
    | Some range ->
        t.pending_retx <- None;
        retransmit t range
    | None -> ());
    if (not (stalled t)) && ph t = Fast_recovery && t.cfg.Config.use_sack then
      sack_recovery_send t
    else begin
      let wnd = Float.min (cwnd_b t) (float_of_int (rwnd t)) in
      let continue = ref true in
      while !continue && not (stalled t) do
        match new_data_range t with
        | Some ((lo, hi) as range)
          when float_of_int (flight_bytes t + (hi - lo)) <= wnd ->
            if not (pace_gate t ~bytes:(hi - lo)) then continue := false
            else if transmit_range t ~retx:false range then set_nxt t hi
            else continue := false
        | Some _ | None -> continue := false
      done
    end;
    if flight_bytes t > 0 && Option.is_none t.rto_handle then arm_rto t;
    update_gauges t
  end

(* --- ACK processing --------------------------------------------------- *)

let check_complete t =
  match t.total with
  | Some total when (not (completed t)) && una t >= total ->
      set_completed t true;
      cancel_rto t;
      List.iter (fun cb -> cb ()) (List.rev t.complete_cbs)
  | Some _ | None -> ()

let enter_fast_recovery t =
  bump t Web100.Kis.fast_retran;
  bump t Web100.Kis.congestion_signals;
  trace t ~code:Trace.Code.tcp_fast_retransmit ~arg1:(una t) ~arg2:(nxt t);
  let mss = t.cfg.Config.mss in
  let ssthresh', cwnd' =
    t.cc.Cong_avoid.on_loss ~cwnd:(cwnd_b t) ~flight:(flight_bytes t) ~mss
      ~now:(Sim.Scheduler.now t.sched)
  in
  set_ssthresh_b t ssthresh';
  set_recover t (nxt t);
  Interval_set.remove_below t.retx_done max_int;
  set_ph t Fast_recovery;
  if t.cfg.Config.use_sack then begin
    set_cwnd_b t cwnd';
    let hole_hi = Stdlib.min (una t + mss) (nxt t) in
    Interval_set.add t.retx_done ~lo:(una t) ~hi:hole_hi;
    retransmit t (una t, hole_hi);
    if not (stalled t) then sack_recovery_send t
  end
  else begin
    (* NewReno: retransmit the presumed-lost head and inflate by the
       three duplicates (RFC 5681 §3.2). *)
    set_cwnd_b t (cwnd' +. (3. *. float_of_int mss));
    let hole_hi = Stdlib.min (una t + mss) (nxt t) in
    retransmit t (una t, hole_hi)
  end;
  arm_rto t

let on_dupack t header =
  bump t Web100.Kis.dup_acks_in;
  set_dupacks t (dupacks t + 1);
  (if t.cfg.Config.use_sack then
     let blocks =
       List.map
         (fun (a, b) -> (offset_of_seq t a, offset_of_seq t b))
         header.Proto.Tcp_header.sack_blocks
     in
     Sack_scoreboard.record t.scoreboard ~blocks ~una:(una t));
  match ph t with
  | Fast_recovery ->
      if t.cfg.Config.use_sack then sack_recovery_send t
      else begin
        (* Window inflation: each duplicate signals a departure. *)
        set_cwnd_b t (cwnd_b t +. mssf t);
        try_send t
      end
  | Slow_start_p | Cong_avoid_p ->
      if dupacks t >= t.cfg.Config.dupack_threshold && flight_bytes t > 0
      then enter_fast_recovery t
  | Syn_sent -> ()

let on_new_ack t ~newly ~rtt_sample header =
  let mss = t.cfg.Config.mss in
  let floor = 2. *. float_of_int mss in
  set_dupacks t 0;
  Rtt_estimator.reset_backoff t.rtt;
  if t.cfg.Config.use_sack then begin
    Sack_scoreboard.advance_una t.scoreboard (una t);
    let blocks =
      List.map
        (fun (a, b) -> (offset_of_seq t a, offset_of_seq t b))
        header.Proto.Tcp_header.sack_blocks
    in
    if blocks <> [] then
      Sack_scoreboard.record t.scoreboard ~blocks ~una:(una t)
  end;
  (match ph t with
  | Fast_recovery ->
      if una t >= recover t then begin
        (* Full acknowledgment: deflate and resume avoidance. *)
        set_cwnd_b t (Float.max floor (ssthresh_b t));
        set_ph t Cong_avoid_p;
        Interval_set.remove_below t.retx_done max_int
      end
      else if t.cfg.Config.use_sack then sack_recovery_send t
      else begin
        (* NewReno partial ACK: next hole is also lost. *)
        let hole_hi = Stdlib.min (una t + mss) (nxt t) in
        retransmit t (una t, hole_hi);
        set_cwnd_b t
          (Float.max floor
             (cwnd_b t -. float_of_int newly +. float_of_int mss));
        arm_rto t
      end
  | Slow_start_p ->
      bump t Web100.Kis.slow_start;
      let decision =
        t.ss.Slow_start.on_ack (view t) ~newly_acked:newly ~rtt_sample
      in
      set_cwnd_b t
        (Float.max floor (cwnd_b t +. decision.Slow_start.cwnd_delta));
      if decision.Slow_start.exit_slow_start then begin
        set_ssthresh_b t (cwnd_b t);
        set_ph t Cong_avoid_p
      end
      else if cwnd_b t >= ssthresh_b t then set_ph t Cong_avoid_p
  | Cong_avoid_p ->
      bump t Web100.Kis.cong_avoid;
      Flow_table.ca_on_ack t.table t.row t.cc ~newly_acked:newly ~mss
        ~srtt:(Rtt_estimator.srtt t.rtt)
        ~min_rtt:(Rtt_estimator.min_rtt t.rtt)
        ~now:(Sim.Scheduler.now t.sched)
  | Syn_sent -> ());
  if flight_bytes t > 0 then arm_rto t else cancel_rto t;
  check_complete t;
  try_send t

let handle_ack t header =
  bump t Web100.Kis.acks_in;
  let now = Sim.Scheduler.now t.sched in
  (* Karn's rule, timestamp form: only an ACK that advances snd_una (or
     the SYN-ACK) feeds the estimator. A duplicated or long-delayed old
     segment makes the receiver re-ACK echoing that segment's ancient
     ts_val; sampling it would inflate SRTT/RTO by the whole detour. *)
  let rtt_sample =
    let ecr = header.Proto.Tcp_header.ts_ecr in
    if Sim.Time.(ecr > Sim.Time.zero) then Some (Sim.Time.sub now ecr)
    else None
  in
  let take_sample () =
    match rtt_sample with
    | Some s -> Rtt_estimator.sample t.rtt s
    | None -> ()
  in
  let prev_rwnd = rwnd t in
  set_rwnd t (Stdlib.max 0 header.Proto.Tcp_header.wnd);
  Web100.Group.Gauge.set
    (gauge t Web100.Kis.max_rwin_rcvd)
    (Float.max
       (Web100.Group.Gauge.value (gauge t Web100.Kis.max_rwin_rcvd))
       (float_of_int (rwnd t)));
  (* ECN echo: same once-per-window multiplicative decrease as a loss,
     but nothing needs retransmitting (RFC 3168 §6.1.2). *)
  if
    Proto.Tcp_header.has_flag header Proto.Tcp_header.Ece
    && ph t <> Syn_sent && ph t <> Fast_recovery
    && una t >= reaction_mark t
  then begin
    set_reaction_mark t (nxt t);
    bump t Web100.Kis.congestion_signals;
    Flow_table.ca_on_loss t.table t.row t.cc ~flight:(flight_bytes t)
      ~mss:t.cfg.Config.mss ~now;
    if ph t = Slow_start_p then set_ph t Cong_avoid_p;
    set_cwr_pending t true
  end;
  if ph t = Syn_sent then begin
    if Proto.Tcp_header.has_flag header Proto.Tcp_header.Syn then begin
      (* SYN/ACK: connection established. *)
      take_sample ();
      cancel_rto t;
      Rtt_estimator.reset_backoff t.rtt;
      set_ph t Slow_start_p;
      set_cwnd_b t
        (float_of_int (t.cfg.Config.init_cwnd_segments * t.cfg.Config.mss));
      update_gauges t;
      try_send t
    end
  end
  else begin
    let ack_off = offset_of_seq t header.Proto.Tcp_header.ack in
    if ack_off > una t && ack_off <= una t + (1 lsl 30) then begin
      take_sample ();
      (* An ACK above snd_nxt is possible after go-back-N regressed
         snd_nxt: the receiver is acknowledging pre-timeout data. The
         data exists; resynchronize snd_nxt instead of dropping the
         ACK (which would deadlock the connection). *)
      if ack_off > nxt t then set_nxt t ack_off;
      let newly = ack_off - una t in
      set_una t ack_off;
      if una t >= reaction_mark t then set_reaction_mark t (una t);
      on_new_ack t ~newly ~rtt_sample header
    end
    else if
      ack_off = una t && nxt t > una t
      && header.Proto.Tcp_header.payload_len = 0
    then
      if rwnd t = prev_rwnd then on_dupack t header
      else
        (* Same ACK point but a changed window: a window update, not a
           duplicate (RFC 5681 §2). The reopened window may unblock us. *)
        try_send t
    else if rwnd t > prev_rwnd then try_send t
  end;
  update_gauges t

let handle_packet t pkt =
  match pkt.Netsim.Packet.payload with
  | Proto.Payload.Tcp header when header.Proto.Tcp_header.is_ack ->
      handle_ack t header
  | Proto.Payload.Tcp _ | Proto.Payload.Udp _ -> ()

(* --- construction ------------------------------------------------------ *)

let create ~host ~dst ~flow ~ids ?table ?(config = Config.default)
    ?(slow_start = Slow_start.standard ()) ?(cong_avoid = Cong_avoid.reno ())
    ?(name = "sender") () =
  let sched = Netsim.Host.scheduler host in
  let table =
    match table with
    | Some tbl -> tbl
    | None -> Flow_table.create ~initial_capacity:1 ()
  in
  let row = Flow_table.alloc table in
  let t =
    {
      host;
      sched;
      dst;
      flow;
      ids;
      cfg = config;
      ss = slow_start;
      cc = cong_avoid;
      group = Web100.Group.create ~conn_name:name ();
      rtt =
        Rtt_estimator.create ~min_rto:config.Config.min_rto
          ~max_rto:config.Config.max_rto ();
      scoreboard = Sack_scoreboard.create ();
      retx_done = Interval_set.create ();
      iss = Proto.Seqno.of_int (0x1000 + (flow * 0x2711));
      table;
      row;
      total = None;
      rto_handle = None;
      rto_cb = ignore;
      pace_cb = ignore;
      pending_retx = None;
      complete_cbs = [];
      pace_timer = None;
      tracer = None;
      last_traced_cwnd = nan;
    }
  in
  t.rto_cb <- (fun () -> on_rto t);
  t.pace_cb <-
    (fun () ->
      t.pace_timer <- None;
      try_send t);
  set_cwnd_b t
    (float_of_int (config.Config.init_cwnd_segments * config.Config.mss));
  set_ssthresh_b t config.Config.init_ssthresh;
  set_rwnd t config.Config.rcv_wnd;
  set_ph t Syn_sent;
  Netsim.Host.register_flow host ~flow (fun pkt -> handle_packet t pkt);
  Netsim.Ifq.on_space (Netsim.Host.ifq host) (fun () ->
      if stalled t then begin
        set_stalled t false;
        try_send t
      end);
  t

let start t ?bytes () =
  if started t then invalid_arg "Sender.start: already started";
  set_started t true;
  t.total <- bytes;
  send_syn t;
  arm_rto t;
  update_gauges t

let supply t n =
  if n <= 0 then invalid_arg "Sender.supply: need a positive byte count";
  match t.total with
  | None ->
      invalid_arg "Sender.supply: connection already sends unlimited data"
  | Some total ->
      t.total <- Some (total + n);
      set_completed t false;
      if started t then try_send t

let on_complete t cb = t.complete_cbs <- cb :: t.complete_cbs

(* --- accessors --------------------------------------------------------- *)

let phase t = ph t
let cwnd t = cwnd_b t
let ssthresh t = ssthresh_b t
let flight t = flight_bytes t
let bytes_acked t = una t
let bytes_sent t = bytes_sent_total t
let srtt t = Rtt_estimator.srtt t.rtt
let min_rtt t = Rtt_estimator.min_rtt t.rtt
let rto t = Rtt_estimator.rto t.rtt
let rto_backoff t = Rtt_estimator.backoff_factor t.rtt
let send_stalls t = Web100.Group.Counter.value (counter t Web100.Kis.send_stall)

let congestion_signals t =
  Web100.Group.Counter.value (counter t Web100.Kis.congestion_signals)

let timeouts t = Web100.Group.Counter.value (counter t Web100.Kis.timeouts)

let retransmits t =
  Web100.Group.Counter.value (counter t Web100.Kis.pkts_retrans)

let stats t = t.group
let slow_start_name t = t.ss.Slow_start.name
let flow_table t = t.table
let row t = t.row
