(* Supervised job service.

   Jobs are Spec-JSON files dropped in a spool directory (or injected
   directly by the CLI's stdin reader).  Each loop iteration scans the
   spool, journals new submissions, runs every due job as one
   [Engine.Pool.map_collect] batch, and sorts the verdicts:

     Ok outcome                 -> artifacts + journal Finished
     Error (Spec.Drained _)     -> journal Checkpointed, requeue to
                                   resume from the snapshot
     Error (Invalid_argument _) -> deterministic poison: quarantine
                                   immediately as a replayable artifact
     Error (Snapshot.Corrupt _) -> drop the resume image, restart the
                                   (deterministic) job from scratch
     Error anything else        -> transient until proven otherwise:
                                   retry with bounded exponential
                                   backoff, quarantine after
                                   [max_attempts]

   Retries re-run the identical spec — seeds live in the spec, so an
   attempt is a faithful reproduction, and a failure that happens
   every time is recognized as deterministic by exhausting attempts.

   Graceful drain: the [stop] atomic (set by the CLI's SIGTERM/SIGINT
   handlers) is polled by every running job's checkpoint hook, so
   in-flight snapshot-supported jobs stop at their next checkpoint
   boundary, journal Checkpointed, and the loop exits; a later start
   resumes them.  SIGKILL skips the journal entry but not the
   snapshot files — recovery trusts the files on disk, not the
   journal's say-so.  The per-job wall [deadline] drains the same way,
   slicing arbitrarily long jobs into resumable pieces. *)

module Json = Report.Json

type config = {
  spool : string;
  state_dir : string;
  jobs : int;
  checkpoint_every : Sim.Time.t;
  max_attempts : int;
  backoff_base : float;  (** seconds; attempt n waits base * 2^(n-1) *)
  backoff_max : float;  (** backoff ceiling, seconds *)
  deadline : float option;
      (** wall seconds a job may run before being drained to its
          snapshot and requeued *)
  poll_interval : float;  (** spool scan period, seconds *)
  once : bool;  (** drain the current queue and exit *)
  log : string -> unit;
}

let default_config =
  {
    spool = "results/serve/spool";
    state_dir = "results/serve/state";
    jobs = 1;
    checkpoint_every = Sim.Time.sec 1;
    max_attempts = 3;
    backoff_base = 0.05;
    backoff_max = 2.;
    deadline = None;
    poll_interval = 0.2;
    once = false;
    log = ignore;
  }

type stats = {
  completed : int;
  quarantined : int;
  retries : int;
  drains : int;
  resumed : int;  (** completions that started from a snapshot *)
}

type job = {
  id : string;
  spec : Core.Spec.t;
  spec_json : Json.t;
  mutable attempt : int;  (* attempts started so far *)
  mutable not_before : float;  (* wall clock; 0. = runnable now *)
  mutable resume : string option;
}

type runner =
  job_id:string ->
  checkpoint:Core.Spec.checkpoint option ->
  resume_from:string option ->
  Core.Spec.t ->
  Core.Spec.outcome

let default_runner ~job_id:_ ~checkpoint ~resume_from spec =
  Core.Spec.run ?checkpoint ?resume_from spec

let journal_path state_dir = Filename.concat state_dir "journal.jsonl"
let snapshot_dir state_dir = Filename.concat state_dir "snapshots"
let outcome_dir state_dir = Filename.concat state_dir "outcomes"
let quarantine_dir state_dir = Filename.concat state_dir "quarantine"

let snapshot_path state_dir id =
  Filename.concat (snapshot_dir state_dir) (id ^ ".snap")

let remove_if_exists path = if Sys.file_exists path then Sys.remove path

let quarantine_artifact ~dir ~job ~error ~backtrace ~attempts ~spec_json =
  Artifacts.ensure_dir dir;
  let path = Filename.concat dir (job ^ ".json") in
  let oc = open_out path in
  output_string oc
    (Json.to_string
       (Json.Obj
          [
            ("job", Json.String job);
            ("error", Json.String error);
            ("backtrace", Json.String backtrace);
            ("attempts", Json.Number (float_of_int attempts));
            ("spec", spec_json);
          ]));
  close_out oc;
  path

let quarantine_spec ~path =
  let contents =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error e -> e
  in
  match Json.of_string contents with
  | Error e -> Error e
  | Ok json -> (
      match Json.member "spec" json with
      | None -> Error "quarantine artifact: no \"spec\" member"
      | Some spec_json -> Core.Spec.of_json spec_json)

let run ?(stop = Atomic.make false) ?(runner = default_runner)
    ?(specs = []) config =
  if config.jobs < 1 then invalid_arg "Supervisor.run: jobs must be >= 1";
  if config.max_attempts < 1 then
    invalid_arg "Supervisor.run: max_attempts must be >= 1";
  Artifacts.ensure_dir config.spool;
  Artifacts.ensure_dir (snapshot_dir config.state_dir);
  Artifacts.ensure_dir (outcome_dir config.state_dir);
  let journal = Journal.open_append ~path:(journal_path config.state_dir) in
  let completed = Hashtbl.create 64 in
  let quarantined = Hashtbl.create 16 in
  let queue : job Queue.t = Queue.create () in
  let known id =
    Hashtbl.mem completed id || Hashtbl.mem quarantined id
    || Queue.fold (fun acc j -> acc || j.id = id) false queue
  in
  let n_completed = ref 0
  and n_quarantined = ref 0
  and n_retries = ref 0
  and n_drains = ref 0
  and n_resumed = ref 0 in
  let do_quarantine ~job ~error ~backtrace ~attempts ~spec_json =
    let artifact =
      quarantine_artifact
        ~dir:(quarantine_dir config.state_dir)
        ~job ~error ~backtrace ~attempts ~spec_json
    in
    Journal.append journal (Journal.Quarantined { job; artifact; error });
    Hashtbl.replace quarantined job ();
    incr n_quarantined;
    config.log (Printf.sprintf "job %s quarantined: %s (artifact %s)" job
                  error artifact)
  in
  let enqueue ?(journal_submission = true) ~id ~spec_json ~attempt ~resume ()
      =
    match Core.Spec.of_json spec_json with
    | Error e ->
        do_quarantine ~job:id ~error:("spec rejected: " ^ e) ~backtrace:""
          ~attempts:0 ~spec_json
    | Ok spec ->
        if journal_submission then
          Journal.append journal
            (Journal.Submitted { job = id; spec = spec_json });
        Queue.push
          { id; spec; spec_json; attempt; not_before = 0.; resume }
          queue
  in
  (* --- recovery: replay the journal, trust snapshot files on disk --- *)
  let replayed = Journal.replay ~path:(journal_path config.state_dir) in
  let submitted_order = ref [] in
  let submitted = Hashtbl.create 64 in
  let attempts = Hashtbl.create 64 in
  List.iter
    (function
      | Journal.Submitted { job; spec } ->
          if not (Hashtbl.mem submitted job) then begin
            Hashtbl.replace submitted job spec;
            submitted_order := job :: !submitted_order
          end
      | Journal.Finished { job; _ } -> Hashtbl.replace completed job ()
      | Journal.Quarantined { job; _ } -> Hashtbl.replace quarantined job ()
      | Journal.Failed { job; attempt; _ } ->
          Hashtbl.replace attempts job attempt
      | Journal.Started _ | Journal.Checkpointed _ -> ())
    replayed;
  List.iter
    (fun id ->
      if not (Hashtbl.mem completed id || Hashtbl.mem quarantined id) then begin
        let snap = snapshot_path config.state_dir id in
        let resume = if Sys.file_exists snap then Some snap else None in
        let attempt =
          match Hashtbl.find_opt attempts id with Some a -> a | None -> 0
        in
        config.log
          (Printf.sprintf "recovered pending job %s%s" id
             (match resume with
             | Some s -> " (resume from " ^ s ^ ")"
             | None -> ""));
        enqueue ~journal_submission:false ~id
          ~spec_json:(Hashtbl.find submitted id) ~attempt ~resume ()
      end)
    (List.rev !submitted_order);
  (* --- direct submissions (the CLI's stdin reader) --- *)
  List.iter
    (fun spec ->
      let id = Artifacts.sanitize spec.Core.Spec.name in
      if known id then
        config.log (Printf.sprintf "job %s already known; skipped" id)
      else
        enqueue ~id ~spec_json:(Core.Spec.to_json spec) ~attempt:0
          ~resume:None ())
    specs;
  let scan_spool () =
    match Sys.readdir config.spool with
    | exception Sys_error _ -> ()
    | entries ->
        Array.sort compare entries;
        Array.iter
          (fun entry ->
            if Filename.check_suffix entry ".json" then begin
              let id =
                Artifacts.sanitize (Filename.chop_suffix entry ".json")
              in
              if not (known id) then begin
                let path = Filename.concat config.spool entry in
                let contents =
                  let ic = open_in_bin path in
                  Fun.protect
                    ~finally:(fun () -> close_in_noerr ic)
                    (fun () ->
                      really_input_string ic (in_channel_length ic))
                in
                match Json.of_string contents with
                | Error e ->
                    do_quarantine ~job:id
                      ~error:("unparsable spool file: " ^ e) ~backtrace:""
                      ~attempts:0 ~spec_json:Json.Null
                | Ok spec_json ->
                    config.log (Printf.sprintf "job %s submitted" id);
                    enqueue ~id ~spec_json ~attempt:0 ~resume:None ()
              end
            end)
          entries
  in
  let pool =
    if config.jobs > 1 then Some (Engine.Pool.create ~jobs:config.jobs ())
    else None
  in
  let run_batch batch =
    let f job =
      let t0 = Unix.gettimeofday () in
      let checkpoint =
        if Core.Spec.snapshot_supported job.spec then
          Some
            {
              Core.Spec.snapshot_path =
                snapshot_path config.state_dir job.id;
              interval = config.checkpoint_every;
              should_stop =
                (fun () ->
                  Atomic.get stop
                  ||
                  match config.deadline with
                  | Some d -> Unix.gettimeofday () -. t0 > d
                  | None -> false);
            }
        else None
      in
      runner ~job_id:job.id ~checkpoint ~resume_from:job.resume job.spec
    in
    match pool with
    | Some pool ->
        Engine.Pool.map_collect pool ~label:(fun j -> j.id) ~f batch
    | None ->
        List.map
          (fun j ->
            try Ok (f j)
            with e ->
              Error
                {
                  Engine.Pool.flabel = j.id;
                  fexn = e;
                  fbacktrace = Printexc.get_backtrace ();
                })
          batch
  in
  let process job verdict =
    match verdict with
    | Ok (outcome : Core.Spec.outcome) ->
        let paths =
          Artifacts.write_outcome
            ~dir:(outcome_dir config.state_dir)
            job.spec outcome
        in
        Journal.append journal
          (Journal.Finished { job = job.id; outcome = List.hd paths });
        let snap = snapshot_path config.state_dir job.id in
        remove_if_exists snap;
        remove_if_exists (snap ^ ".prev");
        Hashtbl.replace completed job.id ();
        incr n_completed;
        if outcome.Core.Spec.resume_from <> None then incr n_resumed;
        config.log
          (Printf.sprintf "job %s finished%s -> %s" job.id
             (if outcome.Core.Spec.resume_from <> None then " (resumed)"
              else "")
             (List.hd paths))
    | Error { Engine.Pool.fexn = Core.Spec.Drained { at; snapshot }; _ } ->
        Journal.append journal
          (Journal.Checkpointed
             { job = job.id; snapshot; at_ns = Sim.Time.to_ns_int at });
        job.resume <- Some snapshot;
        (* a drained slice succeeded — it is not a consumed attempt *)
        job.attempt <- job.attempt - 1;
        incr n_drains;
        config.log
          (Printf.sprintf "job %s drained at t=%.3fs -> %s" job.id
             (Sim.Time.to_sec at) snapshot);
        Queue.push job queue
    | Error { Engine.Pool.fexn = Sim.Snapshot.Corrupt msg; _ } ->
        (* the resume image is unusable: the job is deterministic, so
           restarting from scratch is correct, just slower *)
        config.log
          (Printf.sprintf "job %s: corrupt snapshot (%s); restarting clean"
             job.id msg);
        job.resume <- None;
        (* not the spec's fault; with the image gone it cannot recur *)
        job.attempt <- job.attempt - 1;
        let snap = snapshot_path config.state_dir job.id in
        remove_if_exists snap;
        remove_if_exists (snap ^ ".prev");
        Queue.push job queue
    | Error { Engine.Pool.fexn = Invalid_argument msg; fbacktrace; _ } ->
        do_quarantine ~job:job.id ~error:("invalid: " ^ msg)
          ~backtrace:fbacktrace ~attempts:job.attempt
          ~spec_json:job.spec_json
    | Error { Engine.Pool.fexn; fbacktrace; _ } ->
        let error = Printexc.to_string fexn in
        if job.attempt >= config.max_attempts then
          do_quarantine ~job:job.id ~error ~backtrace:fbacktrace
            ~attempts:job.attempt ~spec_json:job.spec_json
        else begin
          let backoff =
            Float.min config.backoff_max
              (config.backoff_base
              *. Float.pow 2. (float_of_int (job.attempt - 1)))
          in
          Journal.append journal
            (Journal.Failed
               { job = job.id; attempt = job.attempt; error;
                 retry_in_s = backoff });
          job.not_before <- Unix.gettimeofday () +. backoff;
          incr n_retries;
          config.log
            (Printf.sprintf
               "job %s attempt %d failed (%s); retry in %.3fs" job.id
               job.attempt error backoff);
          Queue.push job queue
        end
  in
  let finally () =
    (match pool with Some pool -> Engine.Pool.shutdown pool | None -> ());
    Journal.close journal
  in
  Fun.protect ~finally (fun () ->
      let scanned_once = ref false in
      let rec loop () =
        if Atomic.get stop then ()
        else begin
          if (not config.once) || not !scanned_once then begin
            scan_spool ();
            scanned_once := true
          end;
          let now = Unix.gettimeofday () in
          let due, waiting =
            Queue.fold
              (fun (due, waiting) j ->
                if j.not_before <= now then (j :: due, waiting)
                else (due, j :: waiting))
              ([], []) queue
          in
          let due = List.rev due and waiting = List.rev waiting in
          Queue.clear queue;
          List.iter (fun j -> Queue.push j queue) waiting;
          match due with
          | [] ->
              if waiting <> [] then begin
                let next =
                  List.fold_left
                    (fun acc j -> Float.min acc j.not_before)
                    infinity waiting
                in
                Unix.sleepf
                  (Float.min config.poll_interval
                     (Float.max 0.001 (next -. now)));
                loop ()
              end
              else if config.once then ()
              else begin
                Unix.sleepf config.poll_interval;
                loop ()
              end
          | due ->
              List.iter
                (fun j ->
                  j.attempt <- j.attempt + 1;
                  Journal.append journal
                    (Journal.Started { job = j.id; attempt = j.attempt }))
                due;
              let verdicts = run_batch due in
              List.iter2 process due verdicts;
              loop ()
        end
      in
      loop ();
      {
        completed = !n_completed;
        quarantined = !n_quarantined;
        retries = !n_retries;
        drains = !n_drains;
        resumed = !n_resumed;
      })
