let to_csv tr =
  let buf = Buffer.create (4096 + (Trace.length tr * 48)) in
  Buffer.add_string buf "time_s,event,src,arg1,arg2\n";
  Trace.iter tr (fun ~time_ns ~code ~src ~arg1 ~arg2 ->
      Buffer.add_string buf
        (Printf.sprintf "%.9f,%s,%d,%d,%d\n"
           (float_of_int time_ns /. 1e9)
           (Trace.Code.name code) src arg1 arg2));
  Buffer.contents buf

(* ts is microseconds in the trace_event format; %.3f keeps exact
   nanosecond resolution without scientific notation. *)
let ts_us time_ns = Printf.sprintf "%.3f" (float_of_int time_ns /. 1e3)

let to_chrome ?(name = "rss_sim") tr =
  let buf = Buffer.create (4096 + (Trace.length tr * 96)) in
  Buffer.add_string buf "{\"traceEvents\":[";
  Buffer.add_string buf
    (Printf.sprintf
       "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":%S}}"
       name);
  Trace.iter tr (fun ~time_ns ~code ~src ~arg1 ~arg2 ->
      Buffer.add_char buf ',';
      let event = Trace.Code.name code in
      let cat = Trace.Code.category_name (Trace.Code.category code) in
      if Trace.Code.is_counter code then
        (* One counter track per flow; cwnd and ssthresh as series. *)
        Buffer.add_string buf
          (Printf.sprintf
             "{\"name\":\"%s/%d\",\"cat\":%S,\"ph\":\"C\",\"ts\":%s,\"pid\":1,\"tid\":0,\"args\":{\"cwnd\":%d,\"ssthresh\":%d}}"
             event src cat (ts_us time_ns) arg1 arg2)
      else
        Buffer.add_string buf
          (Printf.sprintf
             "{\"name\":%S,\"cat\":%S,\"ph\":\"i\",\"ts\":%s,\"pid\":1,\"tid\":%d,\"s\":\"t\",\"args\":{\"arg1\":%d,\"arg2\":%d}}"
             event cat (ts_us time_ns) src arg1 arg2));
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents buf
