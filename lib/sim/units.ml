type rate = float

let bps r = r
let kbps r = r *. 1e3
let mbps r = r *. 1e6
let gbps r = r *. 1e9
let rate_to_mbps r = r /. 1e6

let tx_time rate ~bytes =
  assert (rate > 0.);
  Time.of_sec (float_of_int (8 * bytes) /. rate)

let bytes_in rate t = rate *. Time.to_sec t /. 8.

let bdp_bytes rate ~rtt = bytes_in rate rtt

let bdp_packets rate ~rtt ~packet_bytes =
  bdp_bytes rate ~rtt /. float_of_int packet_bytes

let throughput_mbps ~bytes ~elapsed =
  let s = Time.to_sec elapsed in
  if s <= 0. then 0. else float_of_int (8 * bytes) /. s /. 1e6

let pp_rate fmt r =
  if Float.abs r < 1e3 then Format.fprintf fmt "%.0fbit/s" r
  else if Float.abs r < 1e6 then Format.fprintf fmt "%.3gkbit/s" (r /. 1e3)
  else if Float.abs r < 1e9 then Format.fprintf fmt "%.4gMbit/s" (r /. 1e6)
  else Format.fprintf fmt "%.4gGbit/s" (r /. 1e9)

let pp_bytes fmt b =
  let f = float_of_int b in
  if f < 1024. then Format.fprintf fmt "%dB" b
  else if f < 1024. *. 1024. then Format.fprintf fmt "%.4gKiB" (f /. 1024.)
  else if f < 1024. *. 1024. *. 1024. then
    Format.fprintf fmt "%.4gMiB" (f /. (1024. *. 1024.))
  else Format.fprintf fmt "%.4gGiB" (f /. (1024. *. 1024. *. 1024.))
