let rec mkdir_p dir =
  if dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ())
  end

let write ~path ~header ~rows =
  mkdir_p (Filename.dirname path);
  let oc = open_out path in
  (try
     output_string oc (String.concat "," header);
     output_char oc '\n';
     List.iter
       (fun row ->
         output_string oc
           (String.concat "," (List.map (Printf.sprintf "%.6g") row));
         output_char oc '\n')
       rows;
     close_out oc
   with e ->
     close_out_noerr oc;
     raise e)

let write_string ~path content =
  mkdir_p (Filename.dirname path);
  let oc = open_out path in
  (try
     output_string oc content;
     close_out oc
   with e ->
     close_out_noerr oc;
     raise e)

let write_series ~path ~name s =
  let rows =
    List.map (fun (t, v) -> [ t; v ]) (Sim.Stats.Series.to_csv_rows s)
  in
  write ~path ~header:[ "time_s"; name ] ~rows
