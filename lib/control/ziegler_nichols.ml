type closed_loop_run = { kp : float; verdict : Oscillation.verdict }

type result = {
  critical : Tuning.critical_point;
  runs : closed_loop_run list;
}

(* One closed-loop episode: P-only controller driving a fresh plant
   toward [setpoint]; returns the sampled plant output. *)
let episode ~plant ~setpoint ~dt ~horizon ~kp =
  let step = plant () in
  let n = int_of_float (Float.ceil (horizon /. dt)) in
  let samples = Array.make n 0. in
  let y = ref 0. in
  for i = 0 to n - 1 do
    let error = setpoint -. !y in
    let u = kp *. error in
    y := step ~dt ~u;
    samples.(i) <- !y
  done;
  samples

let probe ~plant ~setpoint ~dt ~horizon kp =
  let samples = episode ~plant ~setpoint ~dt ~horizon ~kp in
  (* Oscillations smaller than 10 % of the set point are measurement
     noise (e.g. packet-level queue granularity), not loop instability. *)
  Oscillation.analyze ~min_amplitude:(0.1 *. Float.abs setpoint) ~dt samples

let ultimate_gain ~plant ~setpoint ~dt ~horizon ?(kp_init = 0.01)
    ?(kp_max = 1e6) ?(refine_steps = 12) () =
  let runs = ref [] in
  let classify kp =
    let verdict = probe ~plant ~setpoint ~dt ~horizon kp in
    runs := { kp; verdict } :: !runs;
    verdict
  in
  (* Phase 1: geometric sweep until the loop stops being damped. *)
  let rec sweep kp last_damped =
    if kp > kp_max then Error "no instability found below kp_max"
    else
      match classify kp with
      | Oscillation.Damped | Oscillation.Inconclusive ->
          sweep (kp *. 2.) (Some kp)
      | Oscillation.Sustained _ | Oscillation.Diverging -> (
          match last_damped with
          | Some lo -> Ok (lo, kp)
          | None -> Ok (kp /. 2., kp))
  in
  match sweep kp_init None with
  | Error e -> Error e
  | Ok (lo0, hi0) ->
      (* Phase 2: bisect to the stability boundary. *)
      let lo = ref lo0 and hi = ref hi0 in
      for _ = 1 to refine_steps do
        let mid = Float.sqrt (!lo *. !hi) in
        match classify mid with
        | Oscillation.Damped | Oscillation.Inconclusive -> lo := mid
        | Oscillation.Sustained _ | Oscillation.Diverging -> hi := mid
      done;
      (* Measure the period at (or just above) the boundary. *)
      let kc = !hi in
      let tc =
        match classify kc with
        | Oscillation.Sustained { period; _ } -> Some period
        | Oscillation.Diverging | Oscillation.Damped
        | Oscillation.Inconclusive -> (
            (* Fall back to any sustained run near the boundary. *)
            let near =
              List.filter
                (fun r ->
                  match r.verdict with
                  | Oscillation.Sustained _ -> true
                  | _ -> false)
                !runs
            in
            match near with
            | { verdict = Oscillation.Sustained { period; _ }; _ } :: _ ->
                Some period
            | _ -> None)
      in
      (match tc with
      | None -> Error "oscillation period could not be measured"
      | Some tc ->
          Ok { critical = { Tuning.kc; tc }; runs = List.rev !runs })
