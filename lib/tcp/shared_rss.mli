(** Host-wide Restricted Slow-Start.

    E11 shows the per-connection design's blind spot: N independent
    controllers regulating the {e same} interface queue fight over the
    set point and the stalls return. Here one controller per host owns
    the queue: it steps on a fixed clock (not per ACK) and publishes a
    total window budget that its member connections split evenly. Each
    member's slow-start policy simply steers its own window toward its
    share.

    The controller window-validates globally: if the members together
    leave the commanded budget mostly unused (the host is application-
    or receiver-limited), stepping is skipped so the integral cannot
    wind up against an empty queue. *)

type t

val create :
  Sim.Scheduler.t ->
  ifq:Netsim.Ifq.t ->
  ?config:Slow_start.restricted_config ->
  unit ->
  t
(** One per sending host. Starts its sampling clock immediately
    ([config.sample_min_interval] period). *)

val policy : t -> Slow_start.t
(** A fresh slow-start policy bound to this controller, to pass to one
    {!Sender.create}. Each call registers one more member; the budget
    is split across all policies ever created (members are assumed
    long-lived, like the parallel streams they model). *)

val members : t -> int
val commanded_window_segments : t -> float
(** Current total budget (diagnostic). *)
