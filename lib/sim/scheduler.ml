type handle = Event_queue.handle

type t = {
  mutable clock : Time.t;
  events : Event_queue.t;
  random : Rng.t;
}

let create ?(seed = 1) () =
  {
    clock = Time.zero;
    events = Event_queue.create ();
    random = Rng.of_seed seed;
  }

let now t = t.clock
let rng t = t.random

let at t time action =
  if Time.(time < t.clock) then
    invalid_arg
      (Format.asprintf "Scheduler.at: %a is before now (%a)" Time.pp time
         Time.pp t.clock);
  Event_queue.add t.events ~time action

let after t delay action =
  let delay = Time.max delay Time.zero in
  Event_queue.add t.events ~time:(Time.add t.clock delay) action

let every t ?start period action =
  assert (Time.is_positive period);
  let first =
    match start with Some s -> s | None -> Time.add t.clock period
  in
  let cell = ref (Event_queue.add t.events ~time:first (fun () -> ())) in
  Event_queue.cancel !cell;
  let rec arm time =
    cell :=
      Event_queue.add t.events ~time (fun () ->
          action ();
          arm (Time.add time period))
  in
  arm first;
  cell

let cancel = Event_queue.cancel

let step t =
  match Event_queue.pop t.events with
  | None -> false
  | Some (time, action) ->
      t.clock <- time;
      action ();
      true

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some horizon ->
      let continue = ref true in
      while !continue do
        match Event_queue.next_time t.events with
        | Some time when Time.(time <= horizon) -> ignore (step t)
        | Some _ | None -> continue := false
      done;
      if Time.(t.clock < horizon) then t.clock <- horizon

let pending t = Event_queue.live_count t.events
