type t = { time : Sim.Time.t; values : (string * float) list (* sorted *) }

let take ~now group = { time = now; values = Group.snapshot group }
let at t = t.time
let value t name = List.assoc_opt name t.values

let delta ~older ~newer =
  if Sim.Time.(newer.time < older.time) then
    invalid_arg "Snapshot.delta: newer precedes older";
  let names =
    List.sort_uniq compare
      (List.map fst older.values @ List.map fst newer.values)
  in
  List.map
    (fun name ->
      let v snapshot = Option.value ~default:0. (value snapshot name) in
      (name, v newer -. v older))
    names

let rate ~older ~newer name =
  let elapsed = Sim.Time.to_sec (Sim.Time.sub newer.time older.time) in
  if elapsed <= 0. then invalid_arg "Snapshot.rate: no elapsed time";
  match List.assoc_opt name (delta ~older ~newer) with
  | Some d -> d /. elapsed
  | None -> 0.

let pp_delta fmt ~older ~newer =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (name, d) ->
      if d <> 0. then Format.fprintf fmt "%-20s %+.6g@," name d)
    (delta ~older ~newer);
  Format.fprintf fmt "@]"
