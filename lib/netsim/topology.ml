(* The topology-cut pass: which links cross partition boundaries when a
   topology is spread over domains. Each boundary link keeps its
   propagation delay as the channel lookahead, so the cut fully
   determines the conservative horizon the partitioned engine can run
   under. The partition structure is a property of the topology alone —
   never of how many worker domains execute it — which is what makes
   partitioned runs byte-identical at any [--domains] count. *)
module Cut = struct
  type boundary = { link : Link.t; src : int; dst : int }
  type t = { parts : int; boundaries : boundary list }

  let single = { parts = 1; boundaries = [] }
  let lookahead b = Link.delay b.link

  let min_lookahead t =
    List.fold_left
      (fun acc b -> Sim.Time.min acc (lookahead b))
      (Sim.Time.of_ns_int max_int)
      t.boundaries
end

module Duplex = struct
  type t = { a : Host.t; b : Host.t; a_to_b : Link.t; b_to_a : Link.t }

  (* [create] and [create_split] must mirror each other exactly:
     same component construction order, same RNG draws (the forward
     link's stream is split from host a's scheduler in both), so a
     2-partition build replays the single-scheduler build's random
     decisions verbatim. *)
  let build sched_a sched_b ~rate ~one_way_delay ~ifq_capacity ~loss_rate
      ?ifq_red_ecn () =
    let a =
      Host.create sched_a ~id:0 ~nic_rate:rate ~ifq_capacity ?ifq_red_ecn ()
    in
    let b =
      Host.create sched_b ~id:1 ~nic_rate:rate ~ifq_capacity ?ifq_red_ecn ()
    in
    let rng = Sim.Rng.split (Sim.Scheduler.rng sched_a) in
    let a_to_b = Link.create sched_a ~delay:one_way_delay ~loss_rate ~rng () in
    let b_to_a = Link.create sched_b ~delay:one_way_delay () in
    Link.connect a_to_b (Host.deliver b);
    Link.connect b_to_a (Host.deliver a);
    Host.attach_uplink a a_to_b;
    Host.attach_uplink b b_to_a;
    { a; b; a_to_b; b_to_a }

  let create sched ~rate ~one_way_delay ~ifq_capacity ?(loss_rate = 0.)
      ?ifq_red_ecn () =
    build sched sched ~rate ~one_way_delay ~ifq_capacity ~loss_rate
      ?ifq_red_ecn ()

  let create_split sched_a sched_b ~rate ~one_way_delay ~ifq_capacity
      ?(loss_rate = 0.) ?ifq_red_ecn () =
    let t =
      build sched_a sched_b ~rate ~one_way_delay ~ifq_capacity ~loss_rate
        ?ifq_red_ecn ()
    in
    let cut =
      {
        Cut.parts = 2;
        boundaries =
          [
            { Cut.link = t.a_to_b; src = 0; dst = 1 };
            { Cut.link = t.b_to_a; src = 1; dst = 0 };
          ];
      }
    in
    (t, cut)
end

module Dumbbell = struct
  type t = {
    left : Host.t array;
    right : Host.t array;
    router_l : Router.t;
    router_r : Router.t;
    bottleneck_queue_lr : Queue_disc.t;
    bottleneck_queue_rl : Queue_disc.t;
    bottleneck_lr : Link.t;
    bottleneck_rl : Link.t;
  }

  let right_id i = 100 + i

  let make_queue ?red ~buffer_packets ~rate () =
    match red with
    | Some params -> Queue_disc.red ~capacity_packets:buffer_packets
                       ~link_rate:rate params
    | None -> Queue_disc.droptail ~capacity_packets:buffer_packets ()

  let create sched ~pairs ~access_rate ~access_delay ~bottleneck_rate
      ~bottleneck_delay ~buffer_packets ~ifq_capacity ?red () =
    assert (pairs > 0);
    let left =
      Array.init pairs (fun i ->
          Host.create sched ~id:i ~nic_rate:access_rate ~ifq_capacity ())
    in
    let right =
      Array.init pairs (fun i ->
          Host.create sched ~id:(right_id i) ~nic_rate:access_rate
            ~ifq_capacity ())
    in
    let router_l = Router.create sched ~id:1000 in
    let router_r = Router.create sched ~id:1001 in
    (* Bottleneck pipe between the routers, both directions. *)
    let lr_link = Link.create sched ~delay:bottleneck_delay () in
    let rl_link = Link.create sched ~delay:bottleneck_delay () in
    Link.connect lr_link (Router.deliver router_r);
    Link.connect rl_link (Router.deliver router_l);
    let bottleneck_queue_lr =
      make_queue ?red ~buffer_packets ~rate:bottleneck_rate ()
    in
    let bottleneck_queue_rl =
      make_queue ?red ~buffer_packets ~rate:bottleneck_rate ()
    in
    let lr_port =
      Router.add_port router_l ~queue:bottleneck_queue_lr
        ~rate:bottleneck_rate ~link:lr_link
    in
    let rl_port =
      Router.add_port router_r ~queue:bottleneck_queue_rl
        ~rate:bottleneck_rate ~link:rl_link
    in
    (* Access wiring: host → router and router → host, per side. *)
    let wire_host host router to_host_port_rate =
      (* host uplink to router *)
      let up = Link.create sched ~delay:access_delay () in
      Link.connect up (Router.deliver router);
      Host.attach_uplink host up;
      (* router port back down to the host *)
      let down = Link.create sched ~delay:access_delay () in
      Link.connect down (Host.deliver host);
      let q = Queue_disc.droptail ~capacity_packets:buffer_packets () in
      let port = Router.add_port router ~queue:q ~rate:to_host_port_rate
          ~link:down in
      Router.route router ~dst:(Host.id host) port
    in
    Array.iter (fun h -> wire_host h router_l access_rate) left;
    Array.iter (fun h -> wire_host h router_r access_rate) right;
    (* Cross-bottleneck routes: anything for the far side goes over the
       bottleneck port. *)
    Array.iter
      (fun h -> Router.route router_l ~dst:(Host.id h) lr_port)
      right;
    Array.iter
      (fun h -> Router.route router_r ~dst:(Host.id h) rl_port)
      left;
    {
      left;
      right;
      router_l;
      router_r;
      bottleneck_queue_lr;
      bottleneck_queue_rl;
      bottleneck_lr = lr_link;
      bottleneck_rl = rl_link;
    }
end

(* K dumbbell segments chained left-to-right through duplex core links —
   the canonical partitionable topology: each segment is an island, the
   core links are the cut, and their propagation delay is the lookahead.
   Node ids are globally unique by segment block (10000·s + local id).
   Besides the per-segment sender/receiver pairs, [cross_pairs] wires
   the first left host of segment c to the first right host of segment
   c+1, routed across the core — traffic that actually exercises the
   partition boundary. *)
module Multi_dumbbell = struct
  type segment = {
    left : Host.t array;
    right : Host.t array;
    router_l : Router.t;
    router_r : Router.t;
    bottleneck_queue_lr : Queue_disc.t;
    bottleneck_queue_rl : Queue_disc.t;
    bottleneck_lr : Link.t;
    bottleneck_rl : Link.t;
  }

  type t = {
    segments : segment array;
    core_lr : Link.t array;  (* [s]: segment s's router_r -> s+1's router_l *)
    core_rl : Link.t array;  (* [s]: segment s+1's router_l -> s's router_r *)
    cut : Cut.t;
  }

  let block = 10_000
  let left_id s i = (block * s) + i
  let right_id s i = (block * s) + 100 + i
  let router_l_id s = (block * s) + 1000
  let router_r_id s = (block * s) + 1001
  let segment_of_id id = id / block

  let create ~sched_of ~segments ~pairs ~access_rate ~access_delay
      ~bottleneck_rate ~bottleneck_delay ~core_rate ~core_delay
      ~buffer_packets ~ifq_capacity ?red ?(cross_pairs = 0) () =
    if segments < 1 then invalid_arg "Multi_dumbbell.create: segments < 1";
    if pairs < 1 || pairs > 100 then
      invalid_arg "Multi_dumbbell.create: pairs outside 1..100";
    if cross_pairs < 0 || cross_pairs > max 0 (segments - 1) then
      invalid_arg "Multi_dumbbell.create: cross_pairs outside 0..segments-1";
    (* Per-segment dumbbells, each built wholly against its own
       partition's scheduler — the same wiring as {!Dumbbell.create}
       modulo the id block. The bottleneck ports are kept for the
       cross-segment routes below. Construction order is explicit
       (plain loops, never [Array.init] over effects): in the
       single-scheduler build all segments share one derived-stream
       counter, so the order is part of the determinism contract. *)
    let make_segment s =
      let sched = sched_of s in
      let left =
        Array.init pairs (fun i ->
            Host.create sched ~id:(left_id s i) ~nic_rate:access_rate
              ~ifq_capacity ())
      in
      let right =
        Array.init pairs (fun i ->
            Host.create sched ~id:(right_id s i) ~nic_rate:access_rate
              ~ifq_capacity ())
      in
      let router_l = Router.create sched ~id:(router_l_id s) in
      let router_r = Router.create sched ~id:(router_r_id s) in
      let lr_link = Link.create sched ~delay:bottleneck_delay () in
      let rl_link = Link.create sched ~delay:bottleneck_delay () in
      Link.connect lr_link (Router.deliver router_r);
      Link.connect rl_link (Router.deliver router_l);
      let bottleneck_queue_lr =
        Dumbbell.make_queue ?red ~buffer_packets ~rate:bottleneck_rate ()
      in
      let bottleneck_queue_rl =
        Dumbbell.make_queue ?red ~buffer_packets ~rate:bottleneck_rate ()
      in
      let lr_port =
        Router.add_port router_l ~queue:bottleneck_queue_lr
          ~rate:bottleneck_rate ~link:lr_link
      in
      let rl_port =
        Router.add_port router_r ~queue:bottleneck_queue_rl
          ~rate:bottleneck_rate ~link:rl_link
      in
      let wire_host host router =
        let up = Link.create sched ~delay:access_delay () in
        Link.connect up (Router.deliver router);
        Host.attach_uplink host up;
        let down = Link.create sched ~delay:access_delay () in
        Link.connect down (Host.deliver host);
        let q = Queue_disc.droptail ~capacity_packets:buffer_packets () in
        let port =
          Router.add_port router ~queue:q ~rate:access_rate ~link:down
        in
        Router.route router ~dst:(Host.id host) port
      in
      Array.iter (fun h -> wire_host h router_l) left;
      Array.iter (fun h -> wire_host h router_r) right;
      Array.iter
        (fun h -> Router.route router_l ~dst:(Host.id h) lr_port)
        right;
      Array.iter
        (fun h -> Router.route router_r ~dst:(Host.id h) rl_port)
        left;
      ( {
          left;
          right;
          router_l;
          router_r;
          bottleneck_queue_lr;
          bottleneck_queue_rl;
          bottleneck_lr = lr_link;
          bottleneck_rl = rl_link;
        },
        lr_port,
        rl_port )
    in
    let seg_slots = Array.make segments None in
    for s = 0 to segments - 1 do
      seg_slots.(s) <- Some (make_segment s)
    done;
    let seg_field f = Array.map (fun o -> f (Option.get o)) seg_slots in
    let segs = seg_field (fun (seg, _, _) -> seg) in
    let lr_ports = seg_field (fun (_, p, _) -> p) in
    let rl_ports = seg_field (fun (_, _, p) -> p) in
    (* Core chain: a duplex pipe between adjacent segments. Each
       direction is owned by the partition whose NIC feeds it; both are
       boundary links when partitioned. *)
    let ncore = max 0 (segments - 1) in
    let core_slots = Array.make ncore None in
    for s = 0 to ncore - 1 do
      let fwd = Link.create (sched_of s) ~delay:core_delay () in
      Link.connect fwd (Router.deliver segs.(s + 1).router_l);
      let fwd_q = Queue_disc.droptail ~capacity_packets:buffer_packets () in
      let fwd_port =
        Router.add_port segs.(s).router_r ~queue:fwd_q ~rate:core_rate
          ~link:fwd
      in
      let rev = Link.create (sched_of (s + 1)) ~delay:core_delay () in
      Link.connect rev (Router.deliver segs.(s).router_r);
      let rev_q = Queue_disc.droptail ~capacity_packets:buffer_packets () in
      let rev_port =
        Router.add_port segs.(s + 1).router_l ~queue:rev_q ~rate:core_rate
          ~link:rev
      in
      core_slots.(s) <- Some (fwd, rev, fwd_port, rev_port)
    done;
    let core_field f = Array.map (fun o -> f (Option.get o)) core_slots in
    let core_lr = core_field (fun (l, _, _, _) -> l) in
    let core_rl = core_field (fun (_, l, _, _) -> l) in
    let fwd_ports = core_field (fun (_, _, p, _) -> p) in
    let rev_ports = core_field (fun (_, _, _, p) -> p) in
    (* Cross-segment routes: pair c runs left.(0) of segment c to
       right.(0) of segment c+1. Data: L-router c -> bottleneck ->
       R-router c -> core -> L-router c+1 -> bottleneck -> host (the
       last two hops reuse segment c+1's local routes). ACKs retrace the
       reverse path. *)
    for c = 0 to cross_pairs - 1 do
      let data_dst = right_id (c + 1) 0 in
      let ack_dst = left_id c 0 in
      Router.route segs.(c).router_l ~dst:data_dst lr_ports.(c);
      Router.route segs.(c).router_r ~dst:data_dst fwd_ports.(c);
      Router.route segs.(c + 1).router_r ~dst:ack_dst rl_ports.(c + 1);
      Router.route segs.(c + 1).router_l ~dst:ack_dst rev_ports.(c)
    done;
    let boundaries =
      List.concat
        (List.init ncore (fun s ->
             [
               { Cut.link = core_lr.(s); src = s; dst = s + 1 };
               { Cut.link = core_rl.(s); src = s + 1; dst = s };
             ]))
    in
    { segments = segs; core_lr; core_rl; cut = { Cut.parts = segments; boundaries } }
end
