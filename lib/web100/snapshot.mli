(** Point-in-time copies of an instrument group and deltas between them
    — the web100 userland workflow (readvars, deltavars). *)

type t

val take : now:Sim.Time.t -> Group.t -> t
val at : t -> Sim.Time.t
val value : t -> string -> float option

val delta : older:t -> newer:t -> (string * float) list
(** Per-variable [newer - older], sorted by name. Variables missing on
    one side are treated as 0 there. Raises [Invalid_argument] if
    [newer] precedes [older]. *)

val rate : older:t -> newer:t -> string -> float
(** [delta / elapsed_seconds] for one variable; 0 if absent. Raises on
    zero or negative elapsed time. *)

val pp_delta : Format.formatter -> older:t -> newer:t -> unit
