type t = int32

let zero = 0l
let of_int n = Int32.of_int n
let to_int32 t = t
let add s n = Int32.add s (Int32.of_int n)

let diff a b = Int32.to_int (Int32.sub a b)

let lt a b = diff a b < 0
let leq a b = diff a b <= 0
let gt a b = diff a b > 0
let geq a b = diff a b >= 0
let equal = Int32.equal
let max a b = if geq a b then a else b
let min a b = if leq a b then a else b
let pp fmt t = Format.fprintf fmt "%lu" t
