(** First-class congestion-control policies: one name for one complete
    window-update rule.

    A policy bundles the connection's slow-start phase (per-ACK growth
    and voluntary exit, {!Slow_start.t}), its congestion-avoidance phase
    (per-ACK growth plus loss/RTO reactions, {!Cong_avoid.t}) and pacing
    hints. The sender is unchanged — it still dispatches through the two
    policy records — but sweeps, specs and CLIs can now name the whole
    behaviour at once, and the registry makes every policy instantly
    cross with every {!Core.Spec} scenario ([rss_sim compare --matrix]).

    Registered zoo (in registry order): ["standard"], ["restricted"],
    ["restricted-adaptive"], ["hystart-cubic"], ["ssthreshless"],
    ["relentless"], ["fast"]. *)

type t = {
  name : string;
  doc : string;  (** one-line description for CLIs *)
  slow_start : Slow_start.t;
  cong_avoid : Cong_avoid.t;
  pace_gains : (float * float) option;
      (** pacing hint [(slow_start_gain, cong_avoid_gain)] for
          {!Config.t}[.pace_ss_gain]/[.pace_ca_gain] when the connection
          paces; [None] = keep the sch_fq defaults (2.0, 1.2) *)
}

val by_name :
  ?restricted_config:Slow_start.restricted_config ->
  string ->
  (t, string) result
(** A fresh policy instance (controllers carry per-connection state —
    never share one instance between senders). [restricted_config]
    overrides the PID tuning of the restricted policies and is ignored
    by the others. *)

val names : unit -> string list
(** Every registered name, in registration order — the row order of the
    comparison matrix. *)

val docs : unit -> (string * string) list
(** [(name, one-line doc)] pairs, in registration order. *)

val register :
  name:string ->
  doc:string ->
  (Slow_start.restricted_config option -> t) ->
  unit
(** Add a policy to the registry (appended after the built-ins). The
    callback must return a fresh instance per call. Raises
    [Invalid_argument] on a duplicate name. *)
