(** Convenience: wire a sender on one host to a receiver on another and
    start the transfer. *)

type t = {
  sender : Sender.t;
  receiver : Receiver.t;
  flow : int;
}

val establish :
  src:Netsim.Host.t ->
  dst:Netsim.Host.t ->
  flow:int ->
  ids:Netsim.Packet.Id_source.source ->
  ?rx_ids:Netsim.Packet.Id_source.source ->
  ?config:Config.t ->
  ?slow_start:Slow_start.t ->
  ?cong_avoid:Cong_avoid.t ->
  ?bytes:int ->
  ?name:string ->
  unit ->
  t
(** Creates both endpoints, registers them for [flow], and starts the
    sender immediately ([bytes] omitted = unlimited transfer). [rx_ids]
    (default [ids]) labels the receiver's ACKs — pass the destination
    partition's id source when [src] and [dst] live on different
    partitions, so the two sides never race on one counter. *)

val goodput_mbps : t -> at:Sim.Time.t -> float
(** Receiver goodput from simulation start to [at]. *)

val completed : t -> bytes:int -> bool
(** Has the receiver seen [bytes] of in-order data? *)
