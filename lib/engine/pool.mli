(** Fixed-size domain pool for independent experiment cells.

    Tasks must be pure functions of their inputs: every scenario builds
    its own scheduler and RNG from an explicit seed (see
    {!Sim.Rng.derive_seed}), so nothing mutable is shared between
    tasks. Results come back in submission order regardless of worker
    count or scheduling, which makes aggregated experiment output
    bit-identical under any [--jobs] setting. *)

type t

exception
  Task_failed of { label : string; exn : exn; backtrace : string }
(** Raised by {!map} when a task raised. [label] identifies the
    offending scenario; the rest of the batch still completed and the
    pool remains usable. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains (the caller's
    domain participates while waiting in {!map}, keeping [jobs] domains
    busy). Default [jobs]: {!default_jobs}. With [jobs = 1] no domain is
    spawned and {!map} degrades to a sequential map. Raises
    [Invalid_argument] if [jobs < 1]. *)

val jobs : t -> int

type failure = { flabel : string; fexn : exn; fbacktrace : string }
(** One task's captured failure, labeled by its scenario. *)

val map_collect :
  t ->
  label:('a -> string) ->
  f:('a -> 'b) ->
  'a list ->
  ('b, failure) result list
(** [map_collect t ~label ~f xs] runs [f] on every element as pool
    tasks and returns every per-task verdict in the order of [xs] —
    one poisoned cell costs one [Error], never the batch. Not
    reentrant: do not call from inside a task. *)

val map : t -> label:('a -> string) -> f:('a -> 'b) -> 'a list -> 'b list
(** [map t ~label ~f xs] runs [f] on every element as pool tasks and
    returns the results in the order of [xs]. Not reentrant: do not
    call [map] from inside a task. If any task raised, re-raises the
    first failure (in canonical order) as {!Task_failed} after the
    whole batch has finished ([map_collect] with the first [Error]
    re-raised). *)

val shutdown : t -> unit
(** Signal the workers to exit and join them. Idempotent. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] on a fresh pool and shuts it down on exit,
    normal or exceptional. *)
