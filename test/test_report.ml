let test_table_render () =
  let out =
    Report.Table.render
      ~aligns:[ Report.Table.Left; Report.Table.Right ]
      ~headers:[ "name"; "value" ]
      ~rows:[ [ "alpha"; "1" ]; [ "b"; "22" ] ]
      ()
  in
  let lines = String.split_on_char '\n' (String.trim out) in
  Alcotest.(check int) "4 lines" 4 (List.length lines);
  Alcotest.(check string) "header" "name   value" (List.hd lines);
  Alcotest.(check bool) "right-aligned digits" true
    (String.length (List.nth lines 2) = String.length (List.nth lines 3))

let test_table_pads_short_rows () =
  let out =
    Report.Table.render ~headers:[ "a"; "b"; "c" ] ~rows:[ [ "x" ] ] ()
  in
  Alcotest.(check bool) "renders without exception" true
    (String.length out > 0)

let test_cells () =
  Alcotest.(check string) "float cell" "3.14" (Report.Table.cell_f 3.14159);
  Alcotest.(check string) "decimals" "3.1416"
    (Report.Table.cell_f ~decimals:4 3.14159);
  Alcotest.(check string) "int cell" "42" (Report.Table.cell_i 42)

let test_chart_renders () =
  let series =
    {
      Report.Ascii_chart.label = "x";
      points = Array.init 50 (fun i -> (float_of_int i, Float.sin (float_of_int i /. 5.)));
    }
  in
  let out = Report.Ascii_chart.line_chart ~width:40 ~height:10 [ series ] in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check bool) "has legend" true
    (List.exists (fun l -> String.length l > 0 && String.contains l 'x') lines);
  Alcotest.(check bool) "has axis" true
    (List.exists (fun l -> String.contains l '+') lines);
  Alcotest.(check bool) "plots glyphs" true (String.contains out '*')

let test_chart_empty () =
  Alcotest.(check string) "empty note" "(no data to chart)\n"
    (Report.Ascii_chart.line_chart [])

let test_chart_of_series () =
  let s = Sim.Stats.Series.create ~name:"y" () in
  Sim.Stats.Series.add s (Sim.Time.sec 1) 5.;
  Sim.Stats.Series.add s (Sim.Time.sec 2) 7.;
  let adapted = Report.Ascii_chart.of_series ~label:"y" s in
  Alcotest.(check int) "points" 2 (Array.length adapted.Report.Ascii_chart.points);
  let x, y = adapted.Report.Ascii_chart.points.(1) in
  Alcotest.(check (float 1e-9)) "x seconds" 2. x;
  Alcotest.(check (float 1e-9)) "y value" 7. y

let test_csv_write () =
  let dir = Filename.temp_file "rss" "" in
  Sys.remove dir;
  let path = Filename.concat dir "sub/test.csv" in
  Report.Csv.write ~path ~header:[ "a"; "b" ]
    ~rows:[ [ 1.; 2. ]; [ 3.5; 4.25 ] ];
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Alcotest.(check (list string)) "file contents"
    [ "a,b"; "1,2"; "3.5,4.25" ]
    (List.rev !lines)

let test_csv_series () =
  let dir = Filename.temp_file "rss" "" in
  Sys.remove dir;
  let path = Filename.concat dir "series.csv" in
  let s = Sim.Stats.Series.create ~name:"v" () in
  Sim.Stats.Series.add s (Sim.Time.ms 500) 1.5;
  Report.Csv.write_series ~path ~name:"v" s;
  let ic = open_in path in
  let header = input_line ic in
  let row = input_line ic in
  close_in ic;
  Alcotest.(check string) "header" "time_s,v" header;
  Alcotest.(check string) "row" "0.5,1.5" row

let test_csv_write_string () =
  let dir = Filename.temp_file "rss" "" in
  Sys.remove dir;
  let path = Filename.concat dir "log.csv" in
  Report.Csv.write_string ~path "a,b\n1,2\n";
  let ic = open_in path in
  let header = input_line ic in
  close_in ic;
  Alcotest.(check string) "verbatim contents" "a,b" header

let test_csv_precision_late_timestamps () =
  let dir = Filename.temp_file "rss" "" in
  Sys.remove dir;
  let path = Filename.concat dir "late.csv" in
  (* Past 1000 s, %.6g collapsed microsecond-resolution timestamps to
     "1000.12": consecutive samples became identical rows. Cells must
     round-trip exactly. *)
  let t1 = 1000.123456 and t2 = 1000.123789 in
  Report.Csv.write ~path ~header:[ "time_s"; "v" ]
    ~rows:[ [ t1; 1. ]; [ t2; 2. ]; [ 12345.6789012345; 3. ] ];
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  (match List.rev !lines with
  | [ _header; r1; r2; r3 ] ->
      let cell row = List.hd (String.split_on_char ',' row) in
      Alcotest.(check bool) "rows stay distinct" false (cell r1 = cell r2);
      Alcotest.(check (float 0.)) "t1 round-trips" t1
        (float_of_string (cell r1));
      Alcotest.(check (float 0.)) "t2 round-trips" t2
        (float_of_string (cell r2));
      Alcotest.(check (float 0.)) "long mantissa round-trips" 12345.6789012345
        (float_of_string (cell r3))
  | l -> Alcotest.failf "expected 4 lines, got %d" (List.length l));
  (* Short values keep their compact spelling. *)
  let path2 = Filename.concat dir "short.csv" in
  Report.Csv.write ~path:path2 ~header:[ "v" ] ~rows:[ [ 3.5 ]; [ 0.5 ] ];
  let ic = open_in path2 in
  ignore (input_line ic);
  let short = input_line ic in
  close_in ic;
  Alcotest.(check string) "3.5 stays 3.5" "3.5" short

let test_trace_export_csv () =
  let tr = Trace.create ~capacity:8 () in
  Trace.emit tr ~time_ns:1_500_000_000 ~code:Trace.Code.link_tx ~src:1
    ~arg1:7 ~arg2:1500;
  Trace.emit tr ~time_ns:1_500_000_001 ~code:Trace.Code.tcp_cwnd ~src:2
    ~arg1:29200 ~arg2:64000;
  let lines =
    String.split_on_char '\n' (String.trim (Report.Trace_event.to_csv tr))
  in
  Alcotest.(check (list string))
    "csv rows"
    [
      "time_s,event,src,arg1,arg2";
      "1.500000000,link.tx,1,7,1500";
      "1.500000001,tcp.cwnd,2,29200,64000";
    ]
    lines

let test_trace_export_chrome () =
  let tr = Trace.create ~capacity:8 () in
  Trace.emit tr ~time_ns:2_000 ~code:Trace.Code.ifq_stall ~src:3 ~arg1:1
    ~arg2:0;
  Trace.emit tr ~time_ns:3_000 ~code:Trace.Code.tcp_cwnd ~src:1 ~arg1:14600
    ~arg2:29200;
  let text = Report.Trace_event.to_chrome ~name:"unit" tr in
  (match Report.Json.of_string text with
  | Error e -> Alcotest.failf "invalid chrome trace JSON: %s" e
  | Ok doc -> (
      match Report.Json.member "traceEvents" doc with
      | Some (Report.Json.List events) ->
          (* metadata + one instant + one counter *)
          Alcotest.(check int) "event count" 3 (List.length events)
      | _ -> Alcotest.fail "traceEvents missing"));
  let contains sub =
    let n = String.length text and m = String.length sub in
    let rec go i = i + m <= n && (String.sub text i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "counter phase" true (contains "\"ph\":\"C\"");
  Alcotest.(check bool) "instant phase" true (contains "\"ph\":\"i\"");
  Alcotest.(check bool) "per-flow counter track" true
    (contains "tcp.cwnd/1");
  Alcotest.(check bool) "microsecond timestamps" true (contains "\"ts\":2.000")

let test_json_non_finite () =
  let doc =
    Report.Json.Obj
      [
        ("nan", Report.Json.Number Float.nan);
        ("inf", Report.Json.Number Float.infinity);
        ("neg_inf", Report.Json.Number Float.neg_infinity);
        ("finite", Report.Json.Number 1.5);
      ]
  in
  let text = Report.Json.to_string doc in
  (* JSON has no nan/inf literals; the writer must stay parseable. *)
  match Report.Json.of_string text with
  | Error e -> Alcotest.failf "emitted invalid JSON: %s" e
  | Ok parsed ->
      let is_null key =
        match Report.Json.member key parsed with
        | Some Report.Json.Null -> true
        | _ -> false
      in
      Alcotest.(check bool) "nan -> null" true (is_null "nan");
      Alcotest.(check bool) "inf -> null" true (is_null "inf");
      Alcotest.(check bool) "-inf -> null" true (is_null "neg_inf");
      Alcotest.(check (option (float 1e-9))) "finite survives" (Some 1.5)
        (Option.bind (Report.Json.member "finite" parsed) Report.Json.number)

let suite =
  [
    Alcotest.test_case "json non-finite floats" `Quick test_json_non_finite;
    Alcotest.test_case "csv write_string" `Quick test_csv_write_string;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table pads short rows" `Quick
      test_table_pads_short_rows;
    Alcotest.test_case "cells" `Quick test_cells;
    Alcotest.test_case "chart renders" `Quick test_chart_renders;
    Alcotest.test_case "chart empty" `Quick test_chart_empty;
    Alcotest.test_case "chart of_series" `Quick test_chart_of_series;
    Alcotest.test_case "csv write" `Quick test_csv_write;
    Alcotest.test_case "csv series" `Quick test_csv_series;
    Alcotest.test_case "csv precision past 1000 s" `Quick
      test_csv_precision_late_timestamps;
    Alcotest.test_case "trace export csv" `Quick test_trace_export_csv;
    Alcotest.test_case "trace export chrome" `Quick test_trace_export_chrome;
  ]
