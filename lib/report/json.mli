(** Minimal JSON tree, writer and parser.

    Just enough for the benchmark artefacts ([BENCH_core.json],
    [bench/baseline.json]): objects, arrays, strings, floats, bools and
    null, UTF-8 passed through verbatim. No external dependency. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Render with two-space indentation and a trailing newline.
    Non-finite [Number]s (nan, ±infinity) render as [null] — JSON has
    no literals for them. *)

val to_string_compact : t -> string
(** Render on one line with no spaces and no trailing newline — the
    framing for JSONL journals, where one record is one line. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; the error carries an offset. *)

val member : string -> t -> t option
(** [member key json] looks up [key] when [json] is an object. *)

val number : t -> float option
(** Extract a [Number]. *)

val string_value : t -> string option
(** Extract a [String]. *)

val list_value : t -> t list option
(** Extract a [List]. *)
