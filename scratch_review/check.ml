module Mf = Workload.Many_flows
let () =
  let sched = Sim.Scheduler.create ~seed:7 () in
  let rng = Sim.Rng.of_seed 7 in
  let params =
    { Mf.default_params with
      Mf.flows = 2000;
      arrival_rate = Some 2000.;
      mean_size = Some 50_000;
      capacity_bytes_per_sec = 100e6 /. 8. }
  in
  let t = Mf.start ~sched ~rng ~seed:7 params in
  Sim.Scheduler.run ~until:(Sim.Time.sec 20) sched;
  (* recompute the true sum of live cwnds from the table *)
  let tbl = Mf.table t in
  let truth = ref 0. in
  for i = 0 to Tcp.Flow_table.capacity tbl - 1 do
    if Tcp.Flow_table.is_live tbl i then
      truth := !truth +. Tcp.Flow_table.cwnd tbl i
  done;
  Printf.printf "active=%d completed=%d tracked_sum_cwnd=%.1f true_sum_cwnd=%.1f drift=%.1f\n"
    (Mf.active t) (Mf.completed t) (Mf.sum_cwnd_bytes t) !truth
    (Mf.sum_cwnd_bytes t -. !truth)
