type port = { disc : Queue_disc.t; pnic : Nic.t }

type t = {
  router_id : int;
  sched : Sim.Scheduler.t;
  routes : (int, port) Hashtbl.t;
  mutable forwarded_count : int;
  mutable dropped_count : int;
  mutable no_route_count : int;
}

let create sched ~id =
  {
    router_id = id;
    sched;
    routes = Hashtbl.create 8;
    forwarded_count = 0;
    dropped_count = 0;
    no_route_count = 0;
  }

let id t = t.router_id

let add_port t ~queue ~rate ~link =
  let pnic = Nic.create t.sched ~rate ~queue in
  Nic.attach pnic link;
  { disc = queue; pnic }

let route t ~dst port = Hashtbl.replace t.routes dst port

let deliver t pkt =
  match Hashtbl.find_opt t.routes pkt.Packet.dst with
  | None -> t.no_route_count <- t.no_route_count + 1
  | Some port -> (
      match
        Queue_disc.enqueue port.disc ~now:(Sim.Scheduler.now t.sched) pkt
      with
      | Ok () ->
          t.forwarded_count <- t.forwarded_count + 1;
          Nic.kick port.pnic
      | Error _ -> t.dropped_count <- t.dropped_count + 1)

let port_queue port = port.disc
let port_nic port = port.pnic
let forwarded t = t.forwarded_count
let dropped t = t.dropped_count
let no_route t = t.no_route_count
