(* Outcome artifacts, shared by `rss_sim run --spec --out` and the job
   service: one writer means a job completed under `serve` is
   byte-identical to the same spec run by hand — the property the
   resume-equivalence harness diffs against. *)

let rec ensure_dir dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir)
  then begin
    ensure_dir (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let sanitize label =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '-')
    label

let write_outcome ~dir (spec : Core.Spec.t) (outcome : Core.Spec.outcome) =
  ensure_dir dir;
  let base = sanitize spec.Core.Spec.name in
  let json_path = Filename.concat dir (base ^ "_outcome.json") in
  let oc = open_out json_path in
  output_string oc
    (Report.Json.to_string (Core.Spec.outcome_to_json outcome));
  close_out oc;
  let csvs =
    if not spec.Core.Spec.record_series then []
    else
      List.concat_map
        (fun (r : Core.Spec.flow_result) ->
          List.map
            (fun (tag, series) ->
              let path =
                Filename.concat dir
                  (Printf.sprintf "%s_%s_%s.csv" base
                     (sanitize r.Core.Spec.label) tag)
              in
              Report.Csv.write_series ~path ~name:tag series;
              path)
            [
              ("cwnd", r.Core.Spec.cwnd_series);
              ("stalls", r.Core.Spec.stalls_series);
              ("ifq", r.Core.Spec.ifq_series);
              ("throughput", r.Core.Spec.throughput_series);
              ("srtt", r.Core.Spec.srtt_series);
            ])
        outcome.Core.Spec.results
  in
  json_path :: csvs
