(* Replay the paper's §3 tuning procedure end to end:

   1. run the Ziegler-Nichols ultimate-gain experiment against the LIVE
      simulated host (P-only control of the interface queue, raising the
      gain until sustained oscillation);
   2. derive gains with the paper's rule Kp=0.33Kc, Ti=0.5Tc, Td=0.33Tc
      (and the classic ZN and Tyreus-Luyben rules for comparison);
   3. run Restricted Slow-Start with each gain set.

     dune exec examples/autotune_demo.exe *)

let evaluate label config =
  let spec =
    {
      Core.Run.default_spec with
      duration = Sim.Time.sec 15;
      slow_start = "restricted";
      restricted = Some config;
    }
  in
  let r = Core.Run.bulk ~label spec in
  Printf.printf "  %-28s %6.2f Mbit/s, %d stall(s), mean IFQ %5.1f pkts\n"
    label r.Core.Run.goodput_mbps r.Core.Run.send_stalls r.Core.Run.mean_ifq

let () =
  print_endline "Step 1: ultimate-gain experiment on the simulated IFQ plant";
  match Core.Calibrate.ultimate_gain () with
  | Error e -> Printf.printf "  measurement failed: %s\n" e
  | Ok result ->
      let critical = result.Control.Ziegler_nichols.critical in
      Format.printf "  critical point: %a (%d closed-loop probes)@."
        Control.Tuning.pp_critical critical
        (List.length result.Control.Ziegler_nichols.runs);
      List.iter
        (fun (run : Control.Ziegler_nichols.closed_loop_run) ->
          Format.printf "    Kp=%-8.4g -> %a@." run.Control.Ziegler_nichols.kp
            Control.Oscillation.pp_verdict
            run.Control.Ziegler_nichols.verdict)
        (List.filteri
           (fun i _ -> i < 8)
           result.Control.Ziegler_nichols.runs);
      print_endline "\nStep 2+3: tuning rules applied to the measurement";
      let with_gains gains =
        { Tcp.Slow_start.default_restricted_config with Tcp.Slow_start.gains }
      in
      evaluate "paper rule (0.33/0.5/0.33)"
        (with_gains (Control.Tuning.paper_pid critical));
      evaluate "classic ZN PID"
        (with_gains (Control.Tuning.zn_pid critical));
      evaluate "Tyreus-Luyben"
        (with_gains (Control.Tuning.tyreus_luyben critical));
      evaluate "shipped defaults"
        Tcp.Slow_start.default_restricted_config;
      print_endline
        "\nThe naive ultimate-gain experiment measures the clipped\n\
         bang-bang limit cycle of this strongly nonlinear plant (the\n\
         queue is pinned at 0 until the pipe's BDP is filled, and the\n\
         response to window increases is much faster than to decreases),\n\
         so it underestimates Tc and every rule derived from it ramps\n\
         too hard and overruns the queue once. The shipped defaults come\n\
         from the linearized analysis (Tc = 2 RTT) documented in\n\
         DESIGN.md — gain scheduling in practice, exactly why the paper\n\
         calls its controller gains 'configurable'."
