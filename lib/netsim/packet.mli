(** Simulator packets.

    A packet is immutable once created; queueing metadata lives in the
    queues themselves. [flow] identifies the end-to-end conversation and
    is what hosts demultiplex on. *)

type t = {
  id : int;               (** unique per simulation *)
  flow : int;             (** conversation id, used for delivery demux *)
  src : int;              (** source node id *)
  dst : int;              (** destination node id *)
  created : Sim.Time.t;   (** when the sender emitted it *)
  payload : Proto.Payload.t;
  mutable ecn_ce : bool;
      (** Congestion-Experienced mark (RFC 3168), set by AQM queues in
          marking mode instead of dropping *)
}

val make :
  id:int ->
  flow:int ->
  src:int ->
  dst:int ->
  created:Sim.Time.t ->
  Proto.Payload.t ->
  t

val size : t -> int
(** Wire size in bytes, derived from the payload. *)

val pp : Format.formatter -> t -> unit

(** Monotonic id source; one per simulation keeps runs deterministic. *)
module Id_source : sig
  type source

  val create : unit -> source
  val next : source -> int
end
