module Duplex = struct
  type t = { a : Host.t; b : Host.t; a_to_b : Link.t; b_to_a : Link.t }

  let create sched ~rate ~one_way_delay ~ifq_capacity ?(loss_rate = 0.)
      ?ifq_red_ecn () =
    let a = Host.create sched ~id:0 ~nic_rate:rate ~ifq_capacity ?ifq_red_ecn () in
    let b = Host.create sched ~id:1 ~nic_rate:rate ~ifq_capacity ?ifq_red_ecn () in
    let rng = Sim.Rng.split (Sim.Scheduler.rng sched) in
    let a_to_b = Link.create sched ~delay:one_way_delay ~loss_rate ~rng () in
    let b_to_a = Link.create sched ~delay:one_way_delay () in
    Link.connect a_to_b (Host.deliver b);
    Link.connect b_to_a (Host.deliver a);
    Host.attach_uplink a a_to_b;
    Host.attach_uplink b b_to_a;
    { a; b; a_to_b; b_to_a }
end

module Dumbbell = struct
  type t = {
    left : Host.t array;
    right : Host.t array;
    router_l : Router.t;
    router_r : Router.t;
    bottleneck_queue_lr : Queue_disc.t;
    bottleneck_queue_rl : Queue_disc.t;
    bottleneck_lr : Link.t;
    bottleneck_rl : Link.t;
  }

  let right_id i = 100 + i

  let make_queue ?red ~buffer_packets ~rate () =
    match red with
    | Some params -> Queue_disc.red ~capacity_packets:buffer_packets
                       ~link_rate:rate params
    | None -> Queue_disc.droptail ~capacity_packets:buffer_packets ()

  let create sched ~pairs ~access_rate ~access_delay ~bottleneck_rate
      ~bottleneck_delay ~buffer_packets ~ifq_capacity ?red () =
    assert (pairs > 0);
    let left =
      Array.init pairs (fun i ->
          Host.create sched ~id:i ~nic_rate:access_rate ~ifq_capacity ())
    in
    let right =
      Array.init pairs (fun i ->
          Host.create sched ~id:(right_id i) ~nic_rate:access_rate
            ~ifq_capacity ())
    in
    let router_l = Router.create sched ~id:1000 in
    let router_r = Router.create sched ~id:1001 in
    (* Bottleneck pipe between the routers, both directions. *)
    let lr_link = Link.create sched ~delay:bottleneck_delay () in
    let rl_link = Link.create sched ~delay:bottleneck_delay () in
    Link.connect lr_link (Router.deliver router_r);
    Link.connect rl_link (Router.deliver router_l);
    let bottleneck_queue_lr =
      make_queue ?red ~buffer_packets ~rate:bottleneck_rate ()
    in
    let bottleneck_queue_rl =
      make_queue ?red ~buffer_packets ~rate:bottleneck_rate ()
    in
    let lr_port =
      Router.add_port router_l ~queue:bottleneck_queue_lr
        ~rate:bottleneck_rate ~link:lr_link
    in
    let rl_port =
      Router.add_port router_r ~queue:bottleneck_queue_rl
        ~rate:bottleneck_rate ~link:rl_link
    in
    (* Access wiring: host → router and router → host, per side. *)
    let wire_host host router to_host_port_rate =
      (* host uplink to router *)
      let up = Link.create sched ~delay:access_delay () in
      Link.connect up (Router.deliver router);
      Host.attach_uplink host up;
      (* router port back down to the host *)
      let down = Link.create sched ~delay:access_delay () in
      Link.connect down (Host.deliver host);
      let q = Queue_disc.droptail ~capacity_packets:buffer_packets () in
      let port = Router.add_port router ~queue:q ~rate:to_host_port_rate
          ~link:down in
      Router.route router ~dst:(Host.id host) port
    in
    Array.iter (fun h -> wire_host h router_l access_rate) left;
    Array.iter (fun h -> wire_host h router_r access_rate) right;
    (* Cross-bottleneck routes: anything for the far side goes over the
       bottleneck port. *)
    Array.iter
      (fun h -> Router.route router_l ~dst:(Host.id h) lr_port)
      right;
    Array.iter
      (fun h -> Router.route router_r ~dst:(Host.id h) rl_port)
      left;
    {
      left;
      right;
      router_l;
      router_r;
      bottleneck_queue_lr;
      bottleneck_queue_rl;
      bottleneck_lr = lr_link;
      bottleneck_rl = rl_link;
    }
end
