let test_counter () =
  let g = Web100.Group.create () in
  let c = Web100.Group.counter g Web100.Kis.pkts_out in
  Web100.Group.Counter.incr c;
  Web100.Group.Counter.incr ~by:5 c;
  Alcotest.(check int) "value" 6 (Web100.Group.Counter.value c);
  (* Same name yields the same counter. *)
  let c' = Web100.Group.counter g Web100.Kis.pkts_out in
  Web100.Group.Counter.incr c';
  Alcotest.(check int) "aliased" 7 (Web100.Group.Counter.value c)

let test_gauge () =
  let g = Web100.Group.create () in
  let cwnd = Web100.Group.gauge g Web100.Kis.cur_cwnd in
  Web100.Group.Gauge.set cwnd 14600.;
  Alcotest.(check (float 0.)) "gauge" 14600. (Web100.Group.Gauge.value cwnd)

let test_kind_mismatch () =
  let g = Web100.Group.create () in
  ignore (Web100.Group.counter g "X");
  Alcotest.check_raises "counter as gauge"
    (Invalid_argument "X is registered as a counter, not a gauge") (fun () ->
      ignore (Web100.Group.gauge g "X"))

let test_read_snapshot () =
  let g = Web100.Group.create ~conn_name:"c1" () in
  Alcotest.(check string) "name" "c1" (Web100.Group.conn_name g);
  Alcotest.(check bool) "missing reads None" true
    (Web100.Group.read g "Nope" = None);
  Web100.Group.Counter.incr ~by:3 (Web100.Group.counter g "B");
  Web100.Group.Gauge.set (Web100.Group.gauge g "A") 1.5;
  Alcotest.(check bool) "read counter" true (Web100.Group.read g "B" = Some 3.);
  Alcotest.(check (list (pair string (float 0.))))
    "snapshot sorted"
    [ ("A", 1.5); ("B", 3.) ]
    (Web100.Group.snapshot g)

let test_kis_names () =
  Alcotest.(check bool) "all nonempty" true
    (List.for_all (fun n -> String.length n > 0) Web100.Kis.all);
  let sorted = List.sort_uniq compare Web100.Kis.all in
  Alcotest.(check int) "no duplicates" (List.length Web100.Kis.all)
    (List.length sorted)

let test_logger () =
  let sched = Sim.Scheduler.create () in
  let g = Web100.Group.create () in
  let c = Web100.Group.counter g Web100.Kis.pkts_out in
  ignore
    (Sim.Scheduler.every sched (Sim.Time.ms 10) (fun () ->
         Web100.Group.Counter.incr c));
  let logger =
    Web100.Logger.start sched ~period:(Sim.Time.ms 25)
      ~vars:[ Web100.Kis.pkts_out; Web100.Kis.cur_cwnd ] g
  in
  Sim.Scheduler.run ~until:(Sim.Time.ms 100) sched;
  Web100.Logger.stop logger;
  let s = Web100.Logger.series logger Web100.Kis.pkts_out in
  Alcotest.(check int) "4 samples in 100ms" 4 (Sim.Stats.Series.length s);
  (* At t=25ms two 10ms ticks have fired. *)
  Alcotest.(check (float 0.)) "first sample value" 2.
    (Sim.Stats.Series.values s).(0);
  Alcotest.(check bool) "unknown series raises" true
    (try
       ignore (Web100.Logger.series logger "nope");
       false
     with Not_found -> true);
  let csv = Web100.Logger.to_csv logger in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "csv rows" 5 (List.length lines);
  Alcotest.(check string) "csv header" "time_s,PktsOut,CurCwnd"
    (List.hd lines)

let test_logger_duplicate_var () =
  let sched = Sim.Scheduler.create () in
  let g = Web100.Group.create () in
  (* Hashtbl.add would shadow the first series and misalign every CSV
     column after the duplicate; the logger must reject it up front. *)
  Alcotest.check_raises "duplicate var"
    (Invalid_argument "Web100.Logger.start: duplicate var \"PktsOut\"")
    (fun () ->
      ignore
        (Web100.Logger.start sched ~period:(Sim.Time.ms 10)
           ~vars:[ Web100.Kis.pkts_out; Web100.Kis.cur_cwnd; "PktsOut" ]
           g))

let test_logger_csv_alignment () =
  let sched = Sim.Scheduler.create () in
  let g = Web100.Group.create () in
  let a = Web100.Group.counter g "A" in
  let b = Web100.Group.counter g "B" in
  ignore
    (Sim.Scheduler.every sched (Sim.Time.ms 10) (fun () ->
         Web100.Group.Counter.incr a;
         Web100.Group.Counter.incr ~by:100 b));
  let logger =
    Web100.Logger.start sched ~period:(Sim.Time.ms 10) ~vars:[ "A"; "B" ] g
  in
  Sim.Scheduler.run ~until:(Sim.Time.ms 45) sched;
  Web100.Logger.stop logger;
  let lines =
    String.split_on_char '\n' (String.trim (Web100.Logger.to_csv logger))
  in
  Alcotest.(check string) "header" "time_s,A,B" (List.hd lines);
  (* Each row must pair A=k with B=100k — a column shift or a
     per-cell re-read would break the ratio. *)
  List.iteri
    (fun i line ->
      match String.split_on_char ',' line with
      | [ _; va; vb ] ->
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "row %d B = 100*A" i)
            (100. *. float_of_string va)
            (float_of_string vb)
      | _ -> Alcotest.failf "malformed row %S" line)
    (List.tl lines)

let test_logger_tick_series_invariant () =
  let sched = Sim.Scheduler.create () in
  let g = Web100.Group.create () in
  let vars = [ Web100.Kis.pkts_out; Web100.Kis.cur_cwnd; "X" ] in
  let logger = Web100.Logger.start sched ~period:(Sim.Time.ms 7) ~vars g in
  Sim.Scheduler.run ~until:(Sim.Time.ms 100) sched;
  Web100.Logger.stop logger;
  let csv = Web100.Logger.to_csv logger in
  let rows = List.length (String.split_on_char '\n' (String.trim csv)) - 1 in
  (* Every var's series holds exactly one sample per tick, and the CSV
     emits exactly one row per tick. 7ms into 100ms -> 14 ticks. *)
  Alcotest.(check int) "row per tick" 14 rows;
  List.iter
    (fun v ->
      Alcotest.(check int)
        (v ^ " series length = ticks")
        14
        (Sim.Stats.Series.length (Web100.Logger.series logger v)))
    vars

let test_snapshot_delta () =
  let g = Web100.Group.create () in
  let c = Web100.Group.counter g "PktsOut" in
  Web100.Group.Gauge.set (Web100.Group.gauge g "CurCwnd") 1000.;
  let s1 = Web100.Snapshot.take ~now:(Sim.Time.sec 1) g in
  Web100.Group.Counter.incr ~by:500 c;
  Web100.Group.Gauge.set (Web100.Group.gauge g "CurCwnd") 4000.;
  let s2 = Web100.Snapshot.take ~now:(Sim.Time.sec 3) g in
  Alcotest.(check (option (float 0.))) "value lookup" (Some 0.)
    (Web100.Snapshot.value s1 "PktsOut");
  Alcotest.(check (list (pair string (float 0.))))
    "delta"
    [ ("CurCwnd", 3000.); ("PktsOut", 500.) ]
    (Web100.Snapshot.delta ~older:s1 ~newer:s2);
  Alcotest.(check (float 1e-9)) "rate: 500 pkts over 2 s" 250.
    (Web100.Snapshot.rate ~older:s1 ~newer:s2 "PktsOut");
  Alcotest.(check (float 0.)) "rate of unknown var" 0.
    (Web100.Snapshot.rate ~older:s1 ~newer:s2 "Nope");
  Alcotest.(check bool) "reversed order raises" true
    (try
       ignore (Web100.Snapshot.delta ~older:s2 ~newer:s1);
       false
     with Invalid_argument _ -> true)

let test_snapshot_missing_vars () =
  let g = Web100.Group.create () in
  let s1 = Web100.Snapshot.take ~now:Sim.Time.zero g in
  Web100.Group.Counter.incr (Web100.Group.counter g "New");
  let s2 = Web100.Snapshot.take ~now:(Sim.Time.sec 1) g in
  Alcotest.(check (list (pair string (float 0.))))
    "var appearing mid-flight" [ ("New", 1.) ]
    (Web100.Snapshot.delta ~older:s1 ~newer:s2)

let suite =
  [
    Alcotest.test_case "snapshot delta" `Quick test_snapshot_delta;
    Alcotest.test_case "snapshot missing vars" `Quick
      test_snapshot_missing_vars;
    Alcotest.test_case "counter" `Quick test_counter;
    Alcotest.test_case "gauge" `Quick test_gauge;
    Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch;
    Alcotest.test_case "read/snapshot" `Quick test_read_snapshot;
    Alcotest.test_case "KIS names" `Quick test_kis_names;
    Alcotest.test_case "periodic logger" `Quick test_logger;
    Alcotest.test_case "logger duplicate var" `Quick test_logger_duplicate_var;
    Alcotest.test_case "logger csv alignment" `Quick test_logger_csv_alignment;
    Alcotest.test_case "logger tick/series invariant" `Quick
      test_logger_tick_series_invariant;
  ]
