(** Simulated time.

    A single type represents both instants (time since simulation start)
    and durations. The representation is a count of integer nanoseconds,
    which keeps event ordering exact and simulations bit-reproducible —
    no floating-point drift in the event clock.

    Timestamps are native 63-bit [int]s (~±146 years of range), so they
    are immediate values: records that carry a [Time.t] — event-queue
    entries, packets, RTT samples, web100 snapshots — hold it unboxed,
    and time arithmetic on the simulation hot path allocates nothing. *)

type t = private int

val zero : t
(** The simulation epoch (also the zero duration). *)

val ns : int -> t
(** [ns n] is a duration of [n] nanoseconds. Negative values are allowed
    (they arise from subtraction) but cannot be scheduled. *)

val us : int -> t
(** [us n] is [n] microseconds. *)

val ms : int -> t
(** [ms n] is [n] milliseconds. *)

val sec : int -> t
(** [sec n] is [n] seconds. *)

val of_sec : float -> t
(** [of_sec s] converts fractional seconds, rounding to the nearest ns. *)

val to_sec : t -> float
(** [to_sec t] is [t] in fractional seconds. *)

val of_ns_int : int -> t
(** [of_ns_int n] is a duration of [n] nanoseconds ([ns] under a name
    that pairs with {!to_ns_int} for round-tripping raw counters). *)

val to_ns_int : t -> int
(** [to_ns_int t] is the raw nanosecond count. *)

val of_ns_int64 : int64 -> t
(** Boxed-int64 conversion kept for interop; values beyond the native
    [int] range (~±146 years) are not representable. *)

val to_ns_int64 : t -> int64

val to_ms : t -> float
(** [to_ms t] is [t] in fractional milliseconds. *)

val add : t -> t -> t
val sub : t -> t -> t

val scale : t -> float -> t
(** [scale t k] multiplies a duration by a scalar, rounding to ns. *)

val div : t -> t -> float
(** [div a b] is the dimensionless ratio a/b. [b] must be nonzero. *)

val mul_int : t -> int -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val is_negative : t -> bool
val is_positive : t -> bool
(** [is_positive t] is [t > zero]. *)

val infinity : t
(** A sentinel far beyond any realistic simulation horizon (~146 years). *)

val pp : Format.formatter -> t -> unit
(** Prints with an adaptive unit (ns/µs/ms/s). *)

val to_string : t -> string
