(** Deterministic random streams.

    SplitMix64 core: tiny state, excellent statistical quality for
    simulation workloads, and O(1) {!split} so independent model
    components get independent streams from one master seed. *)

type t

val of_seed : int -> t

val split : t -> t
(** [split t] derives a stream statistically independent of [t]'s
    subsequent output. *)

val state : t -> int64
(** Raw generator position, for checkpointing. *)

val set_state : t -> int64 -> unit
(** Restore a position captured with {!state}: the stream continues
    exactly where the captured generator would have. *)

val derive_seed : root:int -> stream:int -> int
(** Seed of the [stream]-th independent task stream under [root]: the
    SplitMix64 stream-jump construction, so experiment cells that share
    a root seed get uncorrelated random streams without any shared
    generator state. Deterministic in [(root, stream)]; the result is a
    non-negative [int] suitable for {!of_seed} or a [--seed] flag. *)

val bits64 : t -> int64
(** Next raw 64-bit value. *)

val float : t -> float
(** Uniform in [0, 1). *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). [bound] must be positive. *)

val bool : t -> bool

val uniform : t -> lo:float -> hi:float -> float
(** Uniform in [lo, hi). Requires [lo <= hi]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean (> 0). *)

val pareto : t -> shape:float -> scale:float -> float
(** Pareto-distributed: values ≥ [scale], tail index [shape] (> 0). *)

val normal : t -> mu:float -> sigma:float -> float
(** Gaussian via Box–Muller (no cached spare; each call is independent
    of previous state beyond the stream position). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
