type t = {
  conn : Tcp.Connection.t;
  sched : Sim.Scheduler.t;
  mutable finished_at : Sim.Time.t option;
}

let start ~src ~dst ~flow ~ids ?rx_ids ?config ?slow_start ?cong_avoid ?bytes
    ?name () =
  let sched = Netsim.Host.scheduler src in
  (* Completion fires on the receiver's side, so it must be stamped from
     the receiver host's clock — the same clock as [sched] on a single
     scheduler, and the only well-defined one when the two hosts live on
     different partitions. *)
  let dst_sched = Netsim.Host.scheduler dst in
  let conn =
    Tcp.Connection.establish ~src ~dst ~flow ~ids ?rx_ids ?config ?slow_start
      ?cong_avoid ?bytes ?name ()
  in
  let t = { conn; sched; finished_at = None } in
  (match bytes with
  | Some n ->
      Tcp.Receiver.expect conn.Tcp.Connection.receiver ~bytes:n (fun () ->
          t.finished_at <- Some (Sim.Scheduler.now dst_sched))
  | None -> ());
  t

let connection t = t.conn
let sender t = t.conn.Tcp.Connection.sender
let receiver t = t.conn.Tcp.Connection.receiver
let completion_time t = t.finished_at
let goodput_mbps t ~at = Tcp.Connection.goodput_mbps t.conn ~at
