(* qcheck invariants over every registered congestion-control policy:
   whatever the ACK/loss/RTO sequence, the window arithmetic keeps the
   window at or above one MSS; a loss-free round of ACKs at the base
   RTT never shrinks the window; and loss/RTO reactions never raise
   ssthresh or the window. End-to-end, a random lossy path must leave
   the sender's flight inside the advertised receive window. *)

open QCheck2

let mss = Tcp.Config.default.Tcp.Config.mss
let mss_f = float_of_int mss

(* Suites are built at module-init time, before any test mutates the
   registry: this is exactly the built-in zoo. *)
let policy_names = Tcp.Policy.names ()

let fresh name =
  match Tcp.Policy.by_name name with
  | Ok p -> p
  | Error e -> invalid_arg e

(* A benign sender view: empty IFQ, cwnd-limited flight, flat RTT at
   the base. Time advances 2 ms per ACK so sampled controllers step. *)
let benign_view ~now ~cwnd ~min_rtt : Tcp.Slow_start.view =
  {
    Tcp.Slow_start.now = (fun () -> !now);
    mss;
    cwnd = (fun () -> !cwnd);
    ssthresh = (fun () -> infinity);
    flight = (fun () -> int_of_float !cwnd);
    snd_una = (fun () -> 0);
    snd_nxt = (fun () -> int_of_float !cwnd);
    srtt = (fun () -> !min_rtt);
    min_rtt = (fun () -> !min_rtt);
    ifq_occupancy = (fun () -> 0);
    ifq_capacity = (fun () -> 100);
  }

type event = Ack of int | Loss | Rto

let gen_event =
  Gen.(
    frequency
      [
        (8, map (fun n -> Ack (n * mss)) (int_range 1 3));
        (2, return Loss);
        (1, return Rto);
      ])

let gen_scenario =
  Gen.(
    triple (oneofl policy_names)
      (list_size (int_range 1 120) gen_event)
      (int_range 2 200))

let print_scenario =
  Print.(
    triple string
      (list (function
        | Ack n -> Printf.sprintf "ack:%d" n
        | Loss -> "loss"
        | Rto -> "rto"))
      int)

(* Drive the congestion-avoidance record through an arbitrary event
   sequence from an arbitrary starting window, mirroring the sender's
   dispatch; the window must never fall below one MSS (the policies'
   shared floor is in fact two). *)
let window_floor =
  Test.make ~name:"cwnd never falls below one MSS" ~count:400
    ~print:print_scenario gen_scenario
    (fun (name, events, start_segments) ->
      let p = fresh name in
      let cc = p.Tcp.Policy.cong_avoid in
      let cwnd = ref (float_of_int start_segments *. mss_f) in
      let now = ref Sim.Time.zero in
      List.for_all
        (fun ev ->
          now := Sim.Time.add !now (Sim.Time.ms 2);
          (match ev with
          | Ack newly_acked ->
              cwnd :=
                cc.Tcp.Cong_avoid.on_ack ~newly_acked ~cwnd:!cwnd ~mss
                  ~srtt:(Some (Sim.Time.ms 60))
                  ~min_rtt:(Some (Sim.Time.ms 60))
                  ~now:!now
          | Loss ->
              let _ssthresh, next =
                cc.Tcp.Cong_avoid.on_loss ~cwnd:!cwnd
                  ~flight:(int_of_float !cwnd) ~mss ~now:!now
              in
              cwnd := next
          | Rto ->
              let _ssthresh, next =
                cc.Tcp.Cong_avoid.on_rto ~cwnd:!cwnd
                  ~flight:(int_of_float !cwnd) ~mss
              in
              cwnd := next);
          !cwnd >= mss_f)
        events)

(* Loss and RTO reactions never raise the operating point: both the
   returned ssthresh and the next window stay at or below the window
   the event found (once above the 2-MSS floor). *)
let loss_never_raises =
  Test.make ~name:"ssthresh moves only downward on loss events" ~count:400
    ~print:Print.(pair string int)
    Gen.(pair (oneofl policy_names) (int_range 4 10_000))
    (fun (name, segments) ->
      let p = fresh name in
      let cc = p.Tcp.Policy.cong_avoid in
      let cwnd = float_of_int segments *. mss_f in
      let flight = int_of_float cwnd in
      let s1, c1 = cc.Tcp.Cong_avoid.on_loss ~cwnd ~flight ~mss ~now:Sim.Time.zero in
      let s2, c2 = cc.Tcp.Cong_avoid.on_rto ~cwnd ~flight ~mss in
      s1 <= cwnd && c1 <= cwnd && s2 <= cwnd && c2 <= cwnd
      && s1 >= 0. && s2 >= 0.)

(* A loss-free round of ACKs on an uncongested path (empty IFQ, RTT at
   the base) never shrinks the window, in either phase. *)
let loss_free_monotone =
  Test.make ~name:"loss-free round keeps cwnd monotone" ~count:200
    ~print:Print.(triple string int int)
    Gen.(triple (oneofl policy_names) (int_range 2 64) (int_range 4 80))
    (fun (name, start_segments, acks) ->
      let p = fresh name in
      let ss = p.Tcp.Policy.slow_start in
      let cc = p.Tcp.Policy.cong_avoid in
      let now = ref Sim.Time.zero in
      let min_rtt = ref (Some (Sim.Time.ms 60)) in
      (* slow-start phase, from the connection's natural initial window
         (the restricted PID commands an absolute trajectory: dropped
         into an arbitrarily large window it would rightly pull the
         window back toward its ramp) *)
      let cwnd = ref (2. *. mss_f) in
      let view = benign_view ~now ~cwnd ~min_rtt in
      let ok_ss = ref true in
      for _ = 1 to acks do
        now := Sim.Time.add !now (Sim.Time.ms 2);
        let d =
          ss.Tcp.Slow_start.on_ack view ~newly_acked:mss
            ~rtt_sample:(Some (Sim.Time.ms 60))
        in
        if d.Tcp.Slow_start.cwnd_delta < -1e-9 then ok_ss := false;
        cwnd := !cwnd +. Float.max 0. d.Tcp.Slow_start.cwnd_delta
      done;
      (* congestion-avoidance phase *)
      let ca = ref (float_of_int start_segments *. mss_f) in
      let ok_ca = ref true in
      for _ = 1 to acks do
        now := Sim.Time.add !now (Sim.Time.ms 2);
        let next =
          cc.Tcp.Cong_avoid.on_ack ~newly_acked:mss ~cwnd:!ca ~mss
            ~srtt:(Some (Sim.Time.ms 60))
            ~min_rtt:(Some (Sim.Time.ms 60))
            ~now:!now
        in
        if next < !ca -. 1e-9 then ok_ca := false;
        ca := next
      done;
      !ok_ss && !ok_ca)

(* End-to-end: on a random lossy duplex path the sender must keep its
   un-SACKed flight inside the receiver's advertised window and leave
   the connection at or above the one-segment loss window (an RTO near
   the end of the run legitimately collapses cwnd to one MSS). *)
let flight_within_rcv_wnd =
  Test.make ~name:"flight stays within the advertised window" ~count:20
    ~print:Print.(triple string int (pair int int))
    Gen.(
      triple (oneofl policy_names) (int_range 1 1000)
        (pair (int_range 0 3) (int_range 8 64)))
    (fun (name, seed, (loss_pct, rcv_segments)) ->
      let p = fresh name in
      let sched = Sim.Scheduler.create ~seed () in
      let path =
        Netsim.Topology.Duplex.create sched ~rate:(Sim.Units.mbps 100.)
          ~one_way_delay:(Sim.Time.ms 10) ~ifq_capacity:100
          ~loss_rate:(float_of_int loss_pct /. 100.)
          ()
      in
      let ids = Netsim.Packet.Id_source.create () in
      let rcv_wnd = rcv_segments * mss in
      let config = { Tcp.Config.default with Tcp.Config.rcv_wnd } in
      let conn =
        Tcp.Connection.establish ~src:path.Netsim.Topology.Duplex.a
          ~dst:path.Netsim.Topology.Duplex.b ~flow:1 ~ids ~config
          ~slow_start:p.Tcp.Policy.slow_start
          ~cong_avoid:p.Tcp.Policy.cong_avoid ()
      in
      let sender = conn.Tcp.Connection.sender in
      let ok = ref true in
      ignore
        (Sim.Scheduler.every sched (Sim.Time.ms 5) (fun () ->
             if Tcp.Sender.flight sender > rcv_wnd then ok := false));
      Sim.Scheduler.run ~until:(Sim.Time.sec 3) sched;
      !ok
      && Tcp.Sender.cwnd sender >= mss_f
      && Tcp.Sender.bytes_acked sender > 0)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ window_floor; loss_never_raises; loss_free_monotone; flight_within_rcv_wnd ]
