(** Receiver-side accounting for one flow: bytes, packets, goodput and
    inter-arrival statistics. Wraps a packet handler so it can be
    interposed between a host and a transport endpoint. *)

type t

val create : Sim.Scheduler.t -> ?name:string -> unit -> t

val wrap : t -> (Packet.t -> unit) -> Packet.t -> unit
(** [wrap t handler] is a handler that records the packet, then calls
    [handler]. *)

val observe : t -> Packet.t -> unit
(** Record a packet without forwarding. *)

val name : t -> string
val packets : t -> int
val bytes : t -> int
(** Wire bytes observed (headers included). *)

val first_arrival : t -> Sim.Time.t option
val last_arrival : t -> Sim.Time.t option

val throughput_mbps : t -> float
(** Wire throughput between first and last arrival; 0. with <2 packets. *)

val interarrival : t -> Sim.Stats.Summary.t
(** Packet inter-arrival times, in seconds. *)
