(** Head-to-head congestion-control arena.

    Crosses every registered {!Tcp.Policy} with a fixed set of
    {!Spec} scenarios (the paper path, a lossy WAN, a two-flow fairness
    dumbbell and a chaos fault profile) and scores the results into a
    league table. Each cell is an independent [Spec.run] with the same
    seed across policies, so every policy faces exactly the same
    network, faults included; the matrix fans out over a Domain pool
    and is byte-identical for any worker count ([rss_sim compare
    --matrix]). *)

type scenario = {
  sname : string;
  sdoc : string;  (** one-line description for CLIs *)
  chaos : bool;   (** true when the scenario carries fault profiles *)
  make : duration:Sim.Time.t -> seed:int -> policy:string -> Spec.t;
}

val scenarios : scenario list
(** The built-in arena scenarios, in matrix column order: [paper-path],
    [lossy-wan], [shared-bottleneck], [chaos-bursty]. *)

val scenario_names : string list

type cell = {
  policy : string;
  scenario : string;
  goodput_mbps : float;   (** aggregate over the scenario's TCP flows *)
  utilization : float;    (** summed per-flow utilization *)
  jain_index : float;
  send_stalls : int;      (** summed over flows, as are the rest *)
  congestion_signals : int;
  retransmits : int;
  timeouts : int;
}

type table = {
  policies : string list;
  scenarios_run : string list;
  cells : cell list;
      (** policy-major: all scenarios of the first policy, then the
          next — the CSV row order *)
}

type standing = {
  lpolicy : string;
  mean_utilization : float;  (** across the policy's scenarios *)
  mean_jain : float;
  total_stalls : int;
  total_retransmits : int;
  total_timeouts : int;
  score : float;  (** mean utilization × mean Jain — rank key *)
}

val run :
  ?pool:Engine.Pool.t ->
  ?policies:string list ->
  ?scenarios:string list ->
  ?duration:Sim.Time.t ->
  ?seed:int ->
  unit ->
  table
(** Run the matrix: defaults are every registered policy, every built-in
    scenario, 15 s, seed 1. Cells run as one [Spec.run_batch] over
    [pool] (sequential when [None]) in policy-major order. Raises
    [Invalid_argument] on an unknown policy or scenario name and
    {!Engine.Pool.Task_failed} on the first poisoned cell
    ({!run_collect} with the first failure re-raised). *)

val run_collect :
  ?pool:Engine.Pool.t ->
  ?policies:string list ->
  ?scenarios:string list ->
  ?duration:Sim.Time.t ->
  ?seed:int ->
  unit ->
  table * Engine.Pool.failure list
(** Like {!run} but a poisoned cell costs one entry in the returned
    failure list (and its hole in [cells]), never the matrix: every
    healthy cell still reports, and the league is scored over the cells
    that completed. *)

val league : table -> standing list
(** Standings sorted by descending score (ties by name). *)

val to_csv : table -> string
(** One row per cell in [cells] order; floats use {!Report.Csv.cell}'s
    round-trip formatting, so equal runs produce byte-equal CSV. *)

val to_json : table -> Report.Json.t
(** [{policies, scenarios, cells, league}]. *)

val render : table -> string
(** Aligned plain-text matrix plus the league standings. *)
