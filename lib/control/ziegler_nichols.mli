(** Automated Ziegler–Nichols ultimate-gain experiment.

    The classical lab procedure (§3 of the paper): close the loop with
    proportional control only, raise the gain until the loop output
    oscillates with sustained amplitude, record the critical gain Kc and
    the oscillation period Tc. Here the procedure runs against any
    plant presented as a step function, so it can tune both analytic
    reference models and the full TCP/IFQ simulation. *)

type closed_loop_run = {
  kp : float;
  verdict : Oscillation.verdict;
}

type result = {
  critical : Tuning.critical_point;
  runs : closed_loop_run list;  (** every probe, in execution order *)
}

val ultimate_gain :
  plant:(unit -> dt:float -> u:float -> float) ->
  setpoint:float ->
  dt:float ->
  horizon:float ->
  ?kp_init:float ->
  ?kp_max:float ->
  ?refine_steps:int ->
  unit ->
  (result, string) Stdlib.result
(** [ultimate_gain ~plant ~setpoint ~dt ~horizon ()] probes gains
    geometrically from [kp_init] (default 0.01) until the closed loop
    stops being damped or [kp_max] (default 1e6) is exceeded, then
    bisects [refine_steps] times (default 12) between the last damped
    and first non-damped gain. [plant ()] must return a fresh plant
    step function (state reset between probes). The returned Tc is
    measured at the critical gain. Errors if no instability is found
    below [kp_max] or if the oscillation never becomes measurable. *)
