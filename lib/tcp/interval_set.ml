(* Plain sorted list of disjoint [lo, hi) pairs. Interval counts in TCP
   reorder/SACK state stay small (bounded by outstanding holes), so
   linear rebuilds are simpler and fast enough; the operations are
   O(intervals). *)

type t = { mutable ranges : (int * int) list }

let create () = { ranges = [] }
let is_empty t = t.ranges = []

let add t ~lo ~hi =
  if lo < hi then begin
    let rec insert = function
      | [] -> [ (lo, hi) ]
      | (a, b) :: rest when b < lo -> (a, b) :: insert rest
      | ranges ->
          (* Merge [lo,hi) with every range it overlaps or touches. *)
          let rec absorb lo hi = function
            | (a, b) :: rest when a <= hi ->
                absorb (Stdlib.min lo a) (Stdlib.max hi b) rest
            | rest -> (lo, hi) :: rest
          in
          absorb lo hi ranges
    in
    t.ranges <- insert t.ranges
  end

let remove_below t bound =
  let rec trim = function
    | (_, b) :: rest when b <= bound -> trim rest
    | (a, b) :: rest when a < bound -> (bound, b) :: rest
    | ranges -> ranges
  in
  t.ranges <- trim t.ranges

let mem t x = List.exists (fun (a, b) -> a <= x && x < b) t.ranges

let contains_range t ~lo ~hi =
  lo >= hi || List.exists (fun (a, b) -> a <= lo && hi <= b) t.ranges

let total t = List.fold_left (fun acc (a, b) -> acc + (b - a)) 0 t.ranges
let count t = List.length t.ranges
let intervals t = t.ranges
let first t = match t.ranges with [] -> None | r :: _ -> Some r

let extend_contiguous t x =
  match List.find_opt (fun (a, b) -> a <= x && x < b) t.ranges with
  | Some (_, b) -> b
  | None -> x

let next_gap t ~from =
  (* Skip intervals entirely below [from]; if [from] lands inside one,
     the gap starts at its end. *)
  let rec search from = function
    | [] -> None
    | (a, b) :: rest ->
        if b <= from then search from rest
        else if a <= from then search b rest
        else Some (from, a)
  in
  search from t.ranges

let pp fmt t =
  Format.fprintf fmt "{%s}"
    (String.concat "; "
       (List.map (fun (a, b) -> Printf.sprintf "[%d,%d)" a b) t.ranges))
