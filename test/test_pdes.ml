(* Partitioned-vs-single-domain byte-identity: the same spec executed
   at --domains 1/2/4 (crossed with batch worker counts) must emit
   byte-identical artifacts — outcome JSON and every per-flow series
   CSV. Goldens pin two representative scenarios; a qcheck oracle
   sweeps random small dumbbell-of-dumbbells topologies. *)

module Spec = Core.Spec

let sec = Sim.Time.sec
let ms = Sim.Time.ms

let series_csv s =
  let path = Filename.temp_file "rss_pdes" ".csv" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Report.Csv.write_series ~path ~name:"v" s;
      In_channel.with_open_text path In_channel.input_all)

(* Everything a run exports, as one string: scalar outcome JSON plus
   the four series of every flow. *)
let artifacts (o : Spec.outcome) =
  String.concat "\n---\n"
    (Report.Json.to_string (Spec.outcome_to_json o)
    :: List.concat_map
         (fun (r : Spec.flow_result) ->
           List.map series_csv
             [
               r.Spec.stalls_series;
               r.Spec.cwnd_series;
               r.Spec.ifq_series;
               r.Spec.throughput_series;
               r.Spec.srtt_series;
             ])
         o.Spec.results)

let run_artifacts spec = artifacts (Spec.run spec)

let bulk_flow ?label ?start_at ?bytes ~pair () =
  {
    Spec.default_flow with
    Spec.label;
    pair;
    start_at = Option.value ~default:Sim.Time.zero start_at;
    workload = Spec.Bulk { bytes };
  }

(* E5-class duplex path: the paper's pipe with 1% random loss and two
   staggered bulk transfers sharing it. *)
let duplex_spec ~domains =
  {
    Spec.default with
    Spec.name = "pdes-duplex";
    seed = 7;
    duration = sec 2;
    domains;
    topology =
      Spec.Duplex { Spec.default_duplex with Spec.loss_rate = 0.01 };
    flows =
      [
        bulk_flow ~label:"early" ~pair:0 ();
        bulk_flow ~label:"late" ~start_at:(ms 400) ~bytes:600_000 ~pair:0 ();
      ];
  }

let multi_topology =
  Spec.Multi_dumbbell
    {
      Spec.segments = 4;
      m_pairs = 2;
      m_access_rate = Sim.Units.mbps 100.;
      m_access_delay = ms 1;
      m_bottleneck_rate = Sim.Units.mbps 50.;
      m_bottleneck_delay = ms 10;
      core_rate = Sim.Units.mbps 200.;
      core_delay = ms 5;
      m_buffer_packets = 120;
      m_host_ifq_capacity = 100;
      m_red = None;
      cross_pairs = 3;
    }

(* Dumbbell-of-dumbbells: every segment loaded, three flows crossing
   the partition boundaries, one start staggered. *)
let multi_spec ~domains =
  let seg_flows =
    List.concat_map
      (fun s ->
        [
          bulk_flow ~label:(Printf.sprintf "seg%d-a" s) ~pair:(2 * s) ();
          bulk_flow
            ~label:(Printf.sprintf "seg%d-b" s)
            ~start_at:(ms (100 * (s + 1)))
            ~bytes:400_000
            ~pair:((2 * s) + 1)
            ();
        ])
      [ 0; 1; 2; 3 ]
  in
  let cross_flows =
    List.map
      (fun c -> bulk_flow ~label:(Printf.sprintf "cross%d" c) ~pair:(8 + c) ())
      [ 0; 1; 2 ]
  in
  {
    Spec.default with
    Spec.name = "pdes-multi";
    seed = 11;
    duration = sec 2;
    domains;
    topology = multi_topology;
    flows = seg_flows @ cross_flows;
  }

let test_duplex_identity () =
  let base = run_artifacts (duplex_spec ~domains:1) in
  Alcotest.(check string) "duplex: domains 2 = domains 1" base
    (run_artifacts (duplex_spec ~domains:2));
  (* Worker count beyond the partition count clamps, same artifacts. *)
  Alcotest.(check string) "duplex: domains 4 = domains 1" base
    (run_artifacts (duplex_spec ~domains:4))

let test_multi_identity () =
  let base = run_artifacts (multi_spec ~domains:1) in
  Alcotest.(check string) "multi: domains 2 = domains 1" base
    (run_artifacts (multi_spec ~domains:2));
  Alcotest.(check string) "multi: domains 4 = domains 1" base
    (run_artifacts (multi_spec ~domains:4))

(* Crossed with batch parallelism: a 4-domain partitioned run inside a
   2-worker Engine.Pool batch must match sequential single-domain runs
   cell for cell. *)
let test_domains_crossed_with_jobs () =
  let specs =
    [ duplex_spec ~domains:2; multi_spec ~domains:4; duplex_spec ~domains:1 ]
  in
  let sequential =
    List.map run_artifacts
      [ duplex_spec ~domains:1; multi_spec ~domains:1; duplex_spec ~domains:1 ]
  in
  let pooled =
    Engine.Pool.with_pool ~jobs:2 (fun pool ->
        List.map artifacts (Spec.run_batch ~pool specs))
  in
  Alcotest.(check (list string)) "batch over pool = sequential baselines"
    sequential pooled

(* --- qcheck oracle ----------------------------------------------------- *)

(* Random small dumbbell-of-dumbbells specs. Delays are ns-granular and
   mutually coprime-ish so event timestamps rarely tie across unrelated
   components — the regime where the (timestamp, partition, sequence)
   tiebreak of the partitioned engine provably matches the legacy
   single-heap seq order. *)
let gen_spec =
  QCheck2.Gen.(
    let* segments = int_range 2 3 in
    let* pairs = int_range 1 2 in
    let* cross_pairs = int_range 0 (segments - 1) in
    let* core_delay_us = int_range 900 4100 in
    let* bneck_delay_us = int_range 500 2500 in
    let* seed = int_range 1 10_000 in
    let* stagger_us = int_range 0 50_000 in
    let nflows = (segments * pairs) + cross_pairs in
    let flows =
      List.init nflows (fun i ->
          {
            Spec.default_flow with
            Spec.label = Some (Printf.sprintf "f%d" i);
            pair = i;
            start_at =
              (if i mod 3 = 2 then Sim.Time.us (stagger_us + 1) else Sim.Time.zero);
            workload =
              Spec.Bulk
                { bytes = (if i mod 2 = 0 then None else Some 120_000) };
          })
    in
    return
      {
        Spec.default with
        Spec.name = "pdes-qcheck";
        seed;
        duration = Sim.Time.ms 300;
        sample_period = Sim.Time.ms 50;
        topology =
          Spec.Multi_dumbbell
            {
              Spec.segments;
              m_pairs = pairs;
              m_access_rate = Sim.Units.mbps 100.;
              m_access_delay = Sim.Time.us 730;
              m_bottleneck_rate = Sim.Units.mbps 40.;
              m_bottleneck_delay = Sim.Time.us bneck_delay_us;
              core_rate = Sim.Units.mbps 150.;
              core_delay = Sim.Time.us core_delay_us;
              m_buffer_packets = 80;
              m_host_ifq_capacity = 60;
              m_red = None;
              cross_pairs;
            };
        flows;
      })

let print_spec (spec : Spec.t) =
  match spec.Spec.topology with
  | Spec.Multi_dumbbell m ->
      Printf.sprintf
        "seed=%d segments=%d pairs=%d cross=%d core_delay=%dns bneck_delay=%dns \
         starts=[%s]"
        spec.Spec.seed m.Spec.segments m.Spec.m_pairs m.Spec.cross_pairs
        (Sim.Time.to_ns_int m.Spec.core_delay)
        (Sim.Time.to_ns_int m.Spec.m_bottleneck_delay)
        (String.concat ";"
           (List.map
              (fun f -> string_of_int (Sim.Time.to_ns_int f.Spec.start_at))
              spec.Spec.flows))
  | _ -> "?"

let prop_partitioned_matches_single =
  QCheck2.Test.make ~count:8 ~print:print_spec
    ~name:"random multi-dumbbell: partitioned = single-domain" gen_spec
    (fun spec ->
      let single = run_artifacts { spec with Spec.domains = 1 } in
      let parted =
        run_artifacts
          { spec with Spec.domains = (match spec.Spec.topology with
                                      | Spec.Multi_dumbbell m -> m.Spec.segments
                                      | _ -> 2) }
      in
      String.equal single parted)

(* --- sharded many-flows ------------------------------------------------- *)

let mf_workload ?(flows = 4000) ?arrival_rate ?arrival_pareto_shape ?mean_size
    ?(size_pareto_shape = 1.3) () =
  Spec.Many_flows
    { flows; arrival_rate; arrival_pareto_shape; mean_size; size_pareto_shape }

(* The million-flow engine sharded one sub-population per segment: the
   shard layout is a function of the topology, so every domain count
   must replay the identical trajectory — including the interleaving of
   S wheels on one scheduler at domains = 1. *)
let mf_multi_spec ~domains =
  {
    Spec.default with
    Spec.name = "pdes-mf-multi";
    seed = 23;
    duration = sec 2;
    domains;
    topology = multi_topology;
    flows =
      [
        {
          Spec.default_flow with
          Spec.workload =
            mf_workload ~arrival_rate:3000. ~mean_size:40_000 ();
        };
      ];
  }

let mf_duplex_spec ~domains =
  {
    Spec.default with
    Spec.name = "pdes-mf-duplex";
    seed = 29;
    duration = sec 2;
    domains;
    topology = Spec.Duplex Spec.default_duplex;
    flows = [ { Spec.default_flow with Spec.workload = mf_workload () } ];
  }

let test_many_flows_identity () =
  let base = run_artifacts (mf_multi_spec ~domains:1) in
  Alcotest.(check string) "mf multi: domains 2 = domains 1" base
    (run_artifacts (mf_multi_spec ~domains:2));
  Alcotest.(check string) "mf multi: domains 4 = domains 1" base
    (run_artifacts (mf_multi_spec ~domains:4));
  let dbase = run_artifacts (mf_duplex_spec ~domains:1) in
  Alcotest.(check string) "mf duplex: domains 2 = domains 1" dbase
    (run_artifacts (mf_duplex_spec ~domains:2))

(* Random arrival/size/RED parameters, crossed with batch workers: the
   sharded engine must stay byte-identical at domains 1/2/4 whether the
   partitioned run executes alone or inside an Engine.Pool batch. *)
let print_mf_spec (spec : Spec.t) =
  match spec.Spec.flows with
  | [
   {
     Spec.workload =
       Spec.Many_flows { flows; arrival_rate; arrival_pareto_shape; mean_size; _ };
     _;
   };
  ] ->
      Printf.sprintf
        "seed=%d flows=%d arrival=%s pareto=%s mean_size=%s red=%b"
        spec.Spec.seed flows
        (match arrival_rate with
        | None -> "-"
        | Some r -> string_of_float r)
        (match arrival_pareto_shape with
        | None -> "-"
        | Some s -> string_of_float s)
        (match mean_size with
        | None -> "-"
        | Some s -> string_of_int s)
        (match spec.Spec.topology with
        | Spec.Multi_dumbbell t -> t.Spec.m_red <> None
        | _ -> false)
  | _ -> "?"

let gen_mf_spec =
  QCheck2.Gen.(
    let* seed = int_range 1 10_000 in
    let* flows = int_range 200 2_000 in
    let* arrival_rate =
      oneof
        [
          return None;
          map (fun r -> Some (float_of_int r)) (int_range 500 5_000);
        ]
    in
    let* arrival_pareto_shape =
      if arrival_rate = None then return None
      else
        oneof
          [
            return None;
            map (fun s -> Some (1.05 +. (float_of_int s /. 100.))) (int_bound 100);
          ]
    in
    let* mean_size =
      oneof
        [ return None; map (fun s -> Some (s * 1_000)) (int_range 20 200) ]
    in
    let* red =
      oneof
        [
          return None;
          (let* max_p = int_range 2 20 in
           let* min_th = int_range 5 30 in
           return
             (Some
                {
                  Netsim.Queue_disc.default_red with
                  Netsim.Queue_disc.min_th = float_of_int min_th;
                  max_th = float_of_int (4 * min_th);
                  max_p = float_of_int max_p /. 100.;
                }));
        ]
    in
    let topology =
      match multi_topology with
      | Spec.Multi_dumbbell m -> Spec.Multi_dumbbell { m with Spec.m_red = red }
      | t -> t
    in
    return
      {
        Spec.default with
        Spec.name = "pdes-mf-qcheck";
        seed;
        duration = Sim.Time.ms 600;
        sample_period = Sim.Time.ms 100;
        topology;
        flows =
          [
            {
              Spec.default_flow with
              Spec.workload =
                mf_workload ~flows ?arrival_rate ?arrival_pareto_shape
                  ?mean_size ();
            };
          ];
      })

let prop_many_flows_matches_single =
  QCheck2.Test.make ~count:6 ~print:print_mf_spec
    ~name:"random many_flows: sharded partitioned = single-domain, × jobs"
    gen_mf_spec
    (fun spec ->
      let single = run_artifacts { spec with Spec.domains = 1 } in
      let pooled =
        Engine.Pool.with_pool ~jobs:2 (fun pool ->
            List.map artifacts
              (Spec.run_batch ~pool
                 [
                   { spec with Spec.domains = 2 };
                   { spec with Spec.domains = 4 };
                 ]))
      in
      List.for_all (String.equal single) pooled)

(* --- validation gates --------------------------------------------------- *)

let expect_invalid what spec =
  match Spec.validate spec with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.failf "%s: expected Invalid_argument" what

let test_domains_validation () =
  expect_invalid "domains 0" { Spec.default with Spec.domains = 0 };
  expect_invalid "plain dumbbell has no cut"
    {
      Spec.default with
      Spec.domains = 2;
      topology =
        Spec.Dumbbell
          {
            Spec.pairs = 2;
            access_rate = Sim.Units.mbps 100.;
            access_delay = ms 1;
            bottleneck_rate = Sim.Units.mbps 100.;
            bottleneck_delay = ms 28;
            buffer_packets = 250;
            host_ifq_capacity = 100;
            red = None;
          };
      flows = [ bulk_flow ~pair:0 () ];
    };
  expect_invalid "zero-delay duplex has zero lookahead"
    {
      Spec.default with
      Spec.domains = 2;
      topology =
        Spec.Duplex
          { Spec.default_duplex with Spec.one_way_delay = Sim.Time.zero };
    };
  expect_invalid "record_trace is single-domain only"
    { Spec.default with Spec.domains = 2; record_trace = true };
  (* many_flows is partitionable since the sharded engine landed: a
     duplex spec at domains = 2 must validate... *)
  Spec.validate
    {
      Spec.default with
      Spec.domains = 2;
      flows =
        [
          {
            Spec.default_flow with
            Spec.workload =
              Spec.Many_flows
                {
                  flows = 100;
                  arrival_rate = None;
                  arrival_pareto_shape = None;
                  mean_size = None;
                  size_pareto_shape = 1.2;
                };
          };
        ];
    };
  (* ...while short_flows stays single-domain (receiver-spawning), and a
     population smaller than the per-segment shard count is refused. *)
  expect_invalid "short_flows is single-domain only"
    {
      Spec.default with
      Spec.domains = 2;
      flows =
        [
          {
            Spec.default_flow with
            Spec.workload =
              Spec.Short_flows
                {
                  arrival_rate = 10.;
                  mean_size = 20_000;
                  pareto_shape = 1.2;
                  stop_at = None;
                };
          };
        ];
    };
  expect_invalid "fewer many_flows flows than segments"
    {
      (multi_spec ~domains:1) with
      Spec.flows =
        [
          {
            Spec.default_flow with
            Spec.workload =
              Spec.Many_flows
                {
                  flows = 2;
                  arrival_rate = None;
                  arrival_pareto_shape = None;
                  mean_size = None;
                  size_pareto_shape = 1.2;
                };
          };
        ];
    };
  (* The multi topology itself is fine at domains = 1. *)
  Spec.validate { (multi_spec ~domains:1) with Spec.record_trace = true };
  (* And checkpointing is refused on a partitioned run. *)
  let b = Spec.build (duplex_spec ~domains:2) in
  match
    Spec.execute
      ~checkpoint:
        {
          Spec.snapshot_path = Filename.temp_file "pdes" ".snap";
          interval = ms 100;
          should_stop = (fun () -> false);
        }
      b
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "checkpoint with domains > 1 must be rejected"

let test_json_round_trip () =
  let spec = multi_spec ~domains:4 in
  let text = Report.Json.to_string (Spec.to_json spec) in
  match Report.Json.of_string text with
  | Error e -> Alcotest.failf "re-parse failed: %s" e
  | Ok json -> (
      match Spec.of_json json with
      | Error e -> Alcotest.failf "of_json failed: %s" e
      | Ok spec' ->
          Alcotest.(check bool) "dumbbell_of_dumbbells + domains round-trip"
            true (spec' = spec))

let suite =
  [
    Alcotest.test_case "duplex artifacts identical at any domains" `Quick
      test_duplex_identity;
    Alcotest.test_case "multi-dumbbell artifacts identical at any domains"
      `Quick test_multi_identity;
    Alcotest.test_case "domains crossed with --jobs" `Quick
      test_domains_crossed_with_jobs;
    QCheck_alcotest.to_alcotest prop_partitioned_matches_single;
    Alcotest.test_case "many-flows artifacts identical at any domains" `Quick
      test_many_flows_identity;
    QCheck_alcotest.to_alcotest prop_many_flows_matches_single;
    Alcotest.test_case "domains validation gates" `Quick
      test_domains_validation;
    Alcotest.test_case "JSON round-trip" `Quick test_json_round_trip;
  ]
