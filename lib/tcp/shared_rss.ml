type t = {
  config : Slow_start.restricted_config;
  controller : Control.Pid.t;
  ifq : Netsim.Ifq.t;
  mutable member_count : int;
  mutable total_segments : float;
  (* members' view aggregates, refreshed by each policy on its ACKs *)
  mutable last_flight_refresh : Sim.Time.t;
  mutable recent_flight : int;
  mutable recent_cwnd : float;
}

let create sched ~ifq ?(config = Slow_start.default_restricted_config) () =
  let t =
    {
      config;
      controller =
        Control.Pid.create
          (Control.Pid.config ~out_min:0. ~out_max:1e9
             ~derivative_filter:
               (2. *. Sim.Time.to_sec config.Slow_start.sample_min_interval)
             config.Slow_start.gains);
      ifq;
      member_count = 0;
      total_segments = 0.;
      last_flight_refresh = Sim.Scheduler.now sched;
      recent_flight = 0;
      recent_cwnd = 0.;
    }
  in
  let step () =
    (* Global window validation: hold when no member reported an ACK
       this interval (idle host) or the members jointly use well under
       the budget — an empty queue then says nothing about the path. *)
    let app_limited =
      t.recent_cwnd = 0.
      || float_of_int t.recent_flight < t.recent_cwnd *. 0.5
    in
    if not app_limited then begin
      let now = Sim.Scheduler.now sched in
      let dt =
        Float.max
          (Sim.Time.to_sec t.config.Slow_start.sample_min_interval)
          (Sim.Time.to_sec (Sim.Time.sub now t.last_flight_refresh))
      in
      t.last_flight_refresh <- now;
      let setpoint =
        t.config.Slow_start.setpoint_fraction
        *. float_of_int (Netsim.Ifq.capacity t.ifq)
      in
      let error = setpoint -. float_of_int (Netsim.Ifq.occupancy t.ifq) in
      t.total_segments <- Control.Pid.step t.controller ~dt ~error
    end;
    (* The aggregates decay so one silent member cannot freeze the
       host forever. *)
    t.recent_flight <- 0;
    t.recent_cwnd <- 0.
  in
  ignore
    (Sim.Scheduler.every sched t.config.Slow_start.sample_min_interval step);
  t

let members t = t.member_count
let commanded_window_segments t = t.total_segments

let policy t =
  t.member_count <- t.member_count + 1;
  let last_move = ref None in
  let on_ack (view : Slow_start.view) ~newly_acked ~rtt_sample:_ =
    (* Report our load to the shared controller. Flight is measured as
       it stood before this ACK (flight-now plus what it just covered) —
       at small windows flight-now dips to zero on every delayed ACK
       and would misread as application-limited. *)
    t.recent_flight <-
      t.recent_flight + view.Slow_start.flight () + newly_acked;
    t.recent_cwnd <- t.recent_cwnd +. view.Slow_start.cwnd ();
    (* ...and steer toward our share of the budget, at most one clamped
       move per sampling interval (the same burst bound solo RSS has:
       without it, every ACK moves the window and the effective slew
       rate scales with the ACK rate). *)
    let now = view.Slow_start.now () in
    let due =
      match !last_move with
      | None -> true
      | Some prev ->
          Sim.Time.(
            Sim.Time.sub now prev >= t.config.Slow_start.sample_min_interval)
    in
    if not due then { Slow_start.cwnd_delta = 0.; exit_slow_start = false }
    else begin
      last_move := Some now;
      let mss = float_of_int view.Slow_start.mss in
      let share =
        t.total_segments /. float_of_int (Stdlib.max 1 t.member_count)
      in
      let delta = (share *. mss) -. view.Slow_start.cwnd () in
      (* Split the burst budget too: N members each moving max_step/N
         give the host the same aggregate slew rate as one solo RSS
         connection. *)
      let cap =
        t.config.Slow_start.max_step_segments *. mss
        /. float_of_int (Stdlib.max 1 t.member_count)
      in
      {
        Slow_start.cwnd_delta = Float.max (-.cap) (Float.min cap delta);
        exit_slow_start = false;
      }
    end
  in
  {
    Slow_start.name = "restricted-shared";
    on_ack;
    reset = (fun () -> last_move := None);
  }
