type completed = {
  flow : int;
  size : int;
  started : Sim.Time.t;
  finished : Sim.Time.t;
}

type t = {
  src : Netsim.Host.t;
  dst : Netsim.Host.t;
  sched : Sim.Scheduler.t;
  ids : Netsim.Packet.Id_source.source;
  rng : Sim.Rng.t;
  arrival_rate : float;
  mean_size : int;
  pareto_shape : float;
  config : Tcp.Config.t;
  slow_start : unit -> Tcp.Slow_start.t;
  stop_at : Sim.Time.t option;
  mutable next_flow : int;
  mutable launched : int;
  mutable finished : completed list; (* newest first *)
  mutable running : bool;
}

let draw_size t =
  (* Pareto with the requested mean: scale = mean·(shape−1)/shape. *)
  let shape = t.pareto_shape in
  let scale = float_of_int t.mean_size *. (shape -. 1.) /. shape in
  let s = Sim.Rng.pareto t.rng ~shape ~scale in
  Stdlib.max 1 (int_of_float s)

let launch t =
  let flow = t.next_flow in
  t.next_flow <- flow + 1;
  t.launched <- t.launched + 1;
  let size = draw_size t in
  let started = Sim.Scheduler.now t.sched in
  let receiver =
    Tcp.Receiver.create ~host:t.dst ~flow ~ids:t.ids ~config:t.config ()
  in
  let sender =
    Tcp.Sender.create ~host:t.src ~dst:(Netsim.Host.id t.dst) ~flow
      ~ids:t.ids ~config:t.config ~slow_start:(t.slow_start ())
      ~name:(Printf.sprintf "short-%d" flow)
      ()
  in
  Tcp.Receiver.expect receiver ~bytes:size (fun () ->
      t.finished <-
        { flow; size; started; finished = Sim.Scheduler.now t.sched }
        :: t.finished;
      (* Release demux entries so long runs don't accumulate handlers. *)
      Netsim.Host.unregister_flow t.dst ~flow;
      Netsim.Host.unregister_flow t.src ~flow);
  Tcp.Sender.start sender ~bytes:size ()

let rec arrival t () =
  if t.running then begin
    let now = Sim.Scheduler.now t.sched in
    let expired =
      match t.stop_at with Some s -> Sim.Time.(now >= s) | None -> false
    in
    if expired then t.running <- false
    else begin
      launch t;
      let gap =
        Sim.Rng.exponential t.rng ~mean:(1. /. t.arrival_rate)
      in
      ignore (Sim.Scheduler.after t.sched (Sim.Time.of_sec gap) (arrival t))
    end
  end

let start ~src ~dst ~ids ~rng ~arrival_rate ?(mean_size = 30 * 1024)
    ?(pareto_shape = 1.2) ?(first_flow = 10_000)
    ?(config = Tcp.Config.default)
    ?(slow_start = fun () -> Tcp.Slow_start.standard ()) ?stop_at () =
  assert (arrival_rate > 0.);
  let t =
    {
      src;
      dst;
      sched = Netsim.Host.scheduler src;
      ids;
      rng;
      arrival_rate;
      mean_size;
      pareto_shape;
      config;
      slow_start;
      stop_at;
      next_flow = first_flow;
      launched = 0;
      finished = [];
      running = true;
    }
  in
  let first_gap = Sim.Rng.exponential rng ~mean:(1. /. arrival_rate) in
  ignore (Sim.Scheduler.after t.sched (Sim.Time.of_sec first_gap) (arrival t));
  t

let stop t = t.running <- false
let launched t = t.launched
let completions t = List.rev t.finished

let mean_completion_time t =
  match t.finished with
  | [] -> 0.
  | l ->
      let sum =
        List.fold_left
          (fun acc (c : completed) ->
            acc +. Sim.Time.to_sec (Sim.Time.sub c.finished c.started))
          0. l
      in
      sum /. float_of_int (List.length l)
