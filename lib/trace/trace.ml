(* Bounded ring-buffer event tracer + run-wide metrics registry.

   Record layout: stride-4 slices of one preallocated int array,
   [| time_ns; (src lsl 8) lor code; arg1; arg2 |]. Everything is an
   immediate int, so emit never allocates and the ring never holds
   pointers into model state. *)

module Code = struct
  let cat_sched = 1
  let cat_link = 2
  let cat_ifq = 4
  let cat_nic = 8
  let cat_tcp = 16
  let all_categories = cat_sched lor cat_link lor cat_ifq lor cat_nic lor cat_tcp
  let default_mask = all_categories land lnot cat_sched

  let category_name bit =
    if bit = cat_sched then "sched"
    else if bit = cat_link then "link"
    else if bit = cat_ifq then "ifq"
    else if bit = cat_nic then "nic"
    else if bit = cat_tcp then "tcp"
    else "?"

  let category_of_name = function
    | "sched" -> Some cat_sched
    | "link" -> Some cat_link
    | "ifq" -> Some cat_ifq
    | "nic" -> Some cat_nic
    | "tcp" -> Some cat_tcp
    | _ -> None

  let sched_dispatch = 0
  let link_tx = 1
  let link_drop = 2
  let link_deliver = 3
  let ifq_enqueue = 4
  let ifq_stall = 5
  let nic_tx = 6
  let tcp_send_stall = 7
  let tcp_cwnd = 8
  let tcp_retransmit = 9
  let tcp_fast_retransmit = 10
  let tcp_rto = 11
  let count = 12

  let names =
    [| "sched.dispatch"; "link.tx"; "link.drop"; "link.deliver"; "ifq.enqueue";
       "ifq.stall"; "nic.tx"; "tcp.send_stall"; "tcp.cwnd"; "tcp.retransmit";
       "tcp.fast_retransmit"; "tcp.rto" |]

  (* Indexed by code; emit reads this on every call, so it stays a flat
     int array. *)
  let categories =
    [| cat_sched; cat_link; cat_link; cat_link; cat_ifq; cat_ifq; cat_nic;
       cat_tcp; cat_tcp; cat_tcp; cat_tcp; cat_tcp |]

  let check code =
    if code < 0 || code >= count then
      invalid_arg (Printf.sprintf "Trace.Code: unknown code %d" code)

  let name code =
    check code;
    names.(code)

  let category code =
    check code;
    categories.(code)

  let is_counter code =
    check code;
    code = tcp_cwnd
end

type t = {
  buf : int array; (* capacity * 4 ints *)
  cap : int;
  mutable mask : int;
  mutable head : int; (* next record slot, in records *)
  mutable len : int; (* retained records *)
  mutable total : int; (* accepted records since creation/clear *)
}

let stride = 4

let create ?(capacity = 65536) ?(mask = Code.default_mask) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { buf = Array.make (capacity * stride) 0; cap = capacity; mask; head = 0; len = 0; total = 0 }

let mask t = t.mask
let set_mask t m = t.mask <- m
let capacity t = t.cap
let length t = t.len
let total t = t.total
let dropped t = t.total - t.len

let clear t =
  t.head <- 0;
  t.len <- 0;
  t.total <- 0

let emit t ~time_ns ~code ~src ~arg1 ~arg2 =
  if t.mask land Array.unsafe_get Code.categories code <> 0 then begin
    let base = t.head * stride in
    let buf = t.buf in
    Array.unsafe_set buf base time_ns;
    Array.unsafe_set buf (base + 1) ((src lsl 8) lor code);
    Array.unsafe_set buf (base + 2) arg1;
    Array.unsafe_set buf (base + 3) arg2;
    let head = t.head + 1 in
    t.head <- (if head = t.cap then 0 else head);
    if t.len < t.cap then t.len <- t.len + 1;
    t.total <- t.total + 1
  end

let iter t f =
  let start = (t.head - t.len + t.cap) mod t.cap in
  for i = 0 to t.len - 1 do
    let base = (start + i) mod t.cap * stride in
    let packed = t.buf.(base + 1) in
    f ~time_ns:t.buf.(base) ~code:(packed land 0xff) ~src:(packed lsr 8)
      ~arg1:t.buf.(base + 2) ~arg2:t.buf.(base + 3)
  done

module Registry = struct
  type probe = unit -> float

  type registry = {
    table : (string, probe) Hashtbl.t;
    mutable order : string list; (* reversed registration order *)
  }

  let create () = { table = Hashtbl.create 64; order = [] }

  let register r ~name probe =
    if Hashtbl.mem r.table name then
      invalid_arg (Printf.sprintf "Trace.Registry.register: duplicate metric %S" name);
    Hashtbl.add r.table name probe;
    r.order <- name :: r.order

  let names r = List.rev r.order
  let size r = Hashtbl.length r.table
  let read r name = Option.map (fun p -> p ()) (Hashtbl.find_opt r.table name)

  let sample r =
    let ns = names r in
    let out = Array.make (List.length ns) 0. in
    List.iteri (fun i n -> out.(i) <- (Hashtbl.find r.table n) ()) ns;
    out
end
