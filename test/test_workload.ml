let make_path () =
  let sched = Sim.Scheduler.create ~seed:2 () in
  let path =
    Netsim.Topology.Duplex.create sched ~rate:(Sim.Units.mbps 100.)
      ~one_way_delay:(Sim.Time.ms 5) ~ifq_capacity:100 ()
  in
  (sched, path, Netsim.Packet.Id_source.create ())

let test_cbr_rate () =
  let sched, path, ids = make_path () in
  let received = ref 0 in
  Netsim.Host.register_flow path.Netsim.Topology.Duplex.b ~flow:7 (fun _ ->
      incr received);
  let cbr =
    Workload.Cbr.start ~host:path.Netsim.Topology.Duplex.a ~dst:1 ~flow:7 ~ids
      ~rate:(Sim.Units.mbps 10.) ~packet_bytes:1000 ()
  in
  Sim.Scheduler.run ~until:(Sim.Time.sec 2) sched;
  Workload.Cbr.stop cbr;
  (* 10 Mbit/s of 1028-byte datagrams ≈ 1216 pkt/s → ~2430 in 2 s. *)
  Alcotest.(check bool) "rate within 5%" true
    (!received > 2300 && !received < 2550);
  (* A handful of datagrams may still be in flight at the horizon. *)
  let sent = Workload.Cbr.packets_sent cbr in
  Alcotest.(check bool) "conservation up to in-flight" true
    (!received <= sent && !received >= sent - 10)

let test_cbr_stop_at () =
  let sched, path, ids = make_path () in
  let cbr =
    Workload.Cbr.start ~host:path.Netsim.Topology.Duplex.a ~dst:1 ~flow:7 ~ids
      ~rate:(Sim.Units.mbps 10.) ~stop_at:(Sim.Time.sec 1) ()
  in
  Sim.Scheduler.run ~until:(Sim.Time.sec 3) sched;
  let after_1s = Workload.Cbr.packets_sent cbr in
  Alcotest.(check bool) "stopped at 1s" true
    (after_1s < 1400 && after_1s > 1100)

let test_on_off_mean_rate () =
  let sched, path, ids = make_path () in
  let rng = Sim.Rng.of_seed 77 in
  let src =
    Workload.On_off.start ~host:path.Netsim.Topology.Duplex.a ~dst:1 ~flow:8
      ~ids ~rng ~peak_rate:(Sim.Units.mbps 20.) ~mean_on:(Sim.Time.ms 100)
      ~mean_off:(Sim.Time.ms 100) ()
  in
  Alcotest.(check (float 1e-6)) "implied mean rate" 1e7
    (Workload.On_off.mean_rate src);
  Sim.Scheduler.run ~until:(Sim.Time.sec 10) sched;
  Workload.On_off.stop src;
  (* Expected ≈ 10 Mbit/s × 10 s / 8224 bit = ~12160; allow wide noise. *)
  let sent = Workload.On_off.packets_sent src in
  Alcotest.(check bool) "on-off long-run rate plausible" true
    (sent > 7_000 && sent < 17_000)

let test_short_flows_complete () =
  let sched, path, ids = make_path () in
  let rng = Sim.Rng.of_seed 5 in
  let sf =
    Workload.Short_flows.start ~src:path.Netsim.Topology.Duplex.a
      ~dst:path.Netsim.Topology.Duplex.b ~ids ~rng ~arrival_rate:20.
      ~mean_size:20_000 ~stop_at:(Sim.Time.sec 3) ()
  in
  Sim.Scheduler.run ~until:(Sim.Time.sec 10) sched;
  let launched = Workload.Short_flows.launched sf in
  let completed = List.length (Workload.Short_flows.completions sf) in
  Alcotest.(check bool) "flows launched" true (launched > 30);
  Alcotest.(check bool) "most completed" true
    (float_of_int completed > 0.9 *. float_of_int launched);
  Alcotest.(check bool) "mean completion sane" true
    (Workload.Short_flows.mean_completion_time sf > 0.005);
  (* Completion times are causally ordered per flow. *)
  List.iter
    (fun (c : Workload.Short_flows.completed) ->
      if Sim.Time.(c.Workload.Short_flows.finished < c.Workload.Short_flows.started)
      then Alcotest.fail "finished before started")
    (Workload.Short_flows.completions sf)

let test_bulk_completion_time () =
  let sched, path, ids = make_path () in
  let b =
    Workload.Bulk.start ~src:path.Netsim.Topology.Duplex.a
      ~dst:path.Netsim.Topology.Duplex.b ~flow:1 ~ids ~bytes:1_000_000 ()
  in
  Sim.Scheduler.run ~until:(Sim.Time.sec 10) sched;
  (match Workload.Bulk.completion_time b with
  | Some t ->
      Alcotest.(check bool) "finished in reasonable time" true
        (Sim.Time.to_sec t < 2.)
  | None -> Alcotest.fail "bulk transfer incomplete");
  Alcotest.(check bool) "goodput positive" true
    (Workload.Bulk.goodput_mbps b ~at:(Sim.Time.sec 10) > 0.)

let suite =
  [
    Alcotest.test_case "CBR rate" `Quick test_cbr_rate;
    Alcotest.test_case "CBR stop_at" `Quick test_cbr_stop_at;
    Alcotest.test_case "on-off mean rate" `Quick test_on_off_mean_rate;
    Alcotest.test_case "short flows complete" `Slow test_short_flows_complete;
    Alcotest.test_case "bulk completion time" `Quick test_bulk_completion_time;
  ]
