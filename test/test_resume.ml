(* Resume equivalence: a run killed at a checkpoint and resumed from
   its snapshot must emit the byte-identical outcome of a run that was
   never interrupted — including when the snapshot is stale (the
   process died mid-interval, after the last completed checkpoint), in
   which case the lost interval is simply re-simulated. *)

let tmp_counter = ref 0

let tmp_path name =
  incr tmp_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "rss_resume_test_%d_%d_%s" (Unix.getpid ()) !tmp_counter
       name)

let mf_spec ?(name = "resume-mf") ?(seed = 21) () =
  {
    Core.Spec.default with
    name;
    seed;
    duration = Sim.Time.of_sec 4.;
    sample_period = Sim.Time.ms 250;
    topology =
      Core.Spec.Duplex
        {
          Core.Spec.default_duplex with
          rate = Sim.Units.mbps 50.;
          one_way_delay = Sim.Time.ms 20;
          ifq_capacity = 120;
        };
    flows =
      [
        {
          Core.Spec.default_flow with
          label = Some "crowd";
          workload =
            Core.Spec.Many_flows
              {
                flows = 400;
                arrival_rate = Some 300.;
                arrival_pareto_shape = None;
                mean_size = Some 150_000;
                size_pareto_shape = 1.3;
              };
        };
      ];
  }

let outcome_json o = Report.Json.to_string (Core.Spec.outcome_to_json o)

let checkpoint ~path ?(stop = fun () -> false) () =
  {
    Core.Spec.snapshot_path = path;
    interval = Sim.Time.of_sec 1.;
    should_stop = stop;
  }

let run_until_drained ?resume_from spec ~path =
  match
    Core.Spec.run
      ~checkpoint:(checkpoint ~path ~stop:(fun () -> true) ())
      ?resume_from spec
  with
  | _ -> Alcotest.fail "expected Drained"
  | exception Core.Spec.Drained { at; snapshot } -> (at, snapshot)

let copy_file src dst =
  let ic = open_in_bin src in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let oc = open_out_bin dst in
  output_string oc contents;
  close_out oc

let test_boundary_drain_resume () =
  let spec = mf_spec () in
  let unbroken = Core.Spec.run spec in
  let path = tmp_path "boundary.snap" in
  let at, snapshot = run_until_drained spec ~path in
  Alcotest.(check (float 0.))
    "drained at the first checkpoint boundary" 1.
    (Sim.Time.to_sec at);
  let resumed = Core.Spec.run ~resume_from:snapshot spec in
  Alcotest.(check bool) "outcome carries resume_from" true
    (resumed.Core.Spec.resume_from = Some snapshot);
  Alcotest.(check bool) "unbroken outcome has no resume_from" true
    (unbroken.Core.Spec.resume_from = None);
  Alcotest.(check string) "resumed == unbroken, byte for byte"
    (outcome_json unbroken) (outcome_json resumed);
  Sys.remove path

let test_stale_snapshot_resume () =
  (* Kill mid-interval: progress past a checkpoint is lost, and the
     run resumes from the older boundary image. *)
  let spec = mf_spec ~seed:22 () in
  let unbroken = Core.Spec.run spec in
  let path = tmp_path "stale.snap" in
  let at1, snap1 = run_until_drained spec ~path in
  let stale = tmp_path "stale_copy.snap" in
  copy_file snap1 stale;
  (* the job progressed one more interval before "dying" *)
  let at2, _snap2 = run_until_drained spec ~path ~resume_from:snap1 in
  Alcotest.(check bool) "second drain is later" true
    Sim.Time.(at1 < at2);
  let resumed = Core.Spec.run ~resume_from:stale spec in
  Alcotest.(check string) "stale-snapshot resume == unbroken"
    (outcome_json unbroken) (outcome_json resumed);
  Sys.remove path;
  Sys.remove stale

let test_multi_slice_resume () =
  (* Drain at every boundary in turn — resume, drain, resume... — and
     the final outcome still matches one uninterrupted run. *)
  let spec = mf_spec ~seed:23 () in
  let unbroken = Core.Spec.run spec in
  let path = tmp_path "slices.snap" in
  let rec slices resume n =
    if n > 10 then Alcotest.fail "did not complete in 10 slices"
    else
      match
        Core.Spec.run
          ~checkpoint:(checkpoint ~path ~stop:(fun () -> true) ())
          ?resume_from:resume spec
      with
      | outcome -> (outcome, n)
      | exception Core.Spec.Drained { snapshot; _ } ->
          slices (Some snapshot) (n + 1)
  in
  let outcome, n = slices None 0 in
  Alcotest.(check bool) "took several slices" true (n >= 3);
  Alcotest.(check string) "sliced == unbroken" (outcome_json unbroken)
    (outcome_json outcome);
  Sys.remove path

let test_checkpoint_requires_support () =
  let bulk = { Core.Spec.default with Core.Spec.name = "bulk" } in
  Alcotest.(check bool) "bulk spec is not snapshot-supported" false
    (Core.Spec.snapshot_supported bulk);
  Alcotest.(check bool) "many-flows spec is" true
    (Core.Spec.snapshot_supported (mf_spec ()));
  Alcotest.(check bool) "checkpointing a bulk spec raises" true
    (match
       Core.Spec.run
         ~checkpoint:(checkpoint ~path:(tmp_path "bulk.snap") ())
         bulk
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_resume_identity_mismatch () =
  let path = tmp_path "identity.snap" in
  let _at, snapshot = run_until_drained (mf_spec ~seed:24 ()) ~path in
  let other = mf_spec ~name:"other-spec" ~seed:25 () in
  Alcotest.(check bool) "resuming a different spec raises" true
    (match Core.Spec.run ~resume_from:snapshot other with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Sys.remove path

let test_run_batch_collect_isolates_poison () =
  let good = mf_spec ~seed:26 () in
  let poisoned =
    {
      (mf_spec ~name:"poisoned" ()) with
      Core.Spec.flows =
        [ { Core.Spec.default_flow with Core.Spec.slow_start = "bogus" } ];
    }
  in
  let verdicts jobs =
    Engine.Pool.with_pool ~jobs (fun pool ->
        Core.Spec.run_batch_collect ~pool [ good; poisoned; good ])
  in
  let shape v =
    List.map
      (function
        | Ok (_ : Core.Spec.outcome) -> "ok"
        | Error { Engine.Pool.flabel; _ } -> "fail:" ^ flabel)
      v
  in
  let expected = [ "ok"; "fail:poisoned"; "ok" ] in
  Alcotest.(check (list string)) "sequential verdicts" expected
    (shape (Core.Spec.run_batch_collect [ good; poisoned; good ]));
  Alcotest.(check (list string)) "jobs=1 verdicts" expected
    (shape (verdicts 1));
  Alcotest.(check (list string)) "jobs=4 verdicts" expected
    (shape (verdicts 4))

let suite =
  [
    Alcotest.test_case "boundary drain + resume == unbroken" `Quick
      test_boundary_drain_resume;
    Alcotest.test_case "stale (mid-interval) snapshot resume == unbroken"
      `Quick test_stale_snapshot_resume;
    Alcotest.test_case "many slices == unbroken" `Quick
      test_multi_slice_resume;
    Alcotest.test_case "checkpoint requires snapshot support" `Quick
      test_checkpoint_requires_support;
    Alcotest.test_case "resume checks spec identity" `Quick
      test_resume_identity_mismatch;
    Alcotest.test_case "run_batch_collect isolates a poisoned cell" `Quick
      test_run_batch_collect_isolates_poison;
  ]
