(* Fixed-size domain pool for independent experiment cells.

   Determinism contract: a task must be a pure function of its input —
   every scenario builds its own scheduler and RNG from an explicit
   seed, so nothing mutable is shared between tasks.  Results are
   stored by submission index and handed back in that canonical order,
   which makes the aggregated output bit-identical for any worker
   count and any scheduling interleaving.

   The pool spawns [jobs - 1] worker domains; the caller's domain
   drains the queue alongside them while it waits for a batch, so a
   pool of size N keeps exactly N domains busy.  With [jobs = 1] (or a
   single-element batch) no domain is ever spawned and [map] is an
   ordinary sequential map — the degradation path for single-core
   hosts or an explicit [--jobs 1].

   A raising task does not kill its worker or poison the queue: the
   exception is captured per task and the rest of the batch completes.
   [map_collect] hands back every per-task verdict as Ok/Error in
   canonical order; [map] is the all-or-nothing view on top of it,
   re-raising the first failure (in canonical order) as [Task_failed]
   carrying the offending scenario's label. *)

exception
  Task_failed of { label : string; exn : exn; backtrace : string }

let () =
  Printexc.register_printer (function
    | Task_failed { label; exn; _ } ->
        Some
          (Printf.sprintf "task %S failed: %s" label
             (Printexc.to_string exn))
    | _ -> None)

type t = {
  jobs : int;
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  has_work : Condition.t;
  batch_done : Condition.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

let default_jobs () = Domain.recommended_domain_count ()

let rec worker_loop t =
  Mutex.lock t.mutex;
  let task =
    let rec await () =
      match Queue.take_opt t.queue with
      | Some task -> Some task
      | None ->
          if t.closed then None
          else begin
            Condition.wait t.has_work t.mutex;
            await ()
          end
    in
    await ()
  in
  Mutex.unlock t.mutex;
  match task with
  | None -> ()
  | Some task ->
      task ();
      worker_loop t

let create ?jobs () =
  let jobs =
    match jobs with Some j -> j | None -> default_jobs ()
  in
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      jobs;
      queue = Queue.create ();
      mutex = Mutex.create ();
      has_work = Condition.create ();
      batch_done = Condition.create ();
      closed = false;
      workers = [];
    }
  in
  t.workers <-
    List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let jobs t = t.jobs

let shutdown t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.has_work;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

type failure = { flabel : string; fexn : exn; fbacktrace : string }

let map_collect t ~label ~f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  let wrap x =
    try Ok (f x) with e -> Error (e, Printexc.get_backtrace ())
  in
  let results =
    if n <= 1 || t.jobs = 1 then Array.map wrap items
    else begin
      Mutex.lock t.mutex;
      if t.closed then begin
        Mutex.unlock t.mutex;
        invalid_arg "Pool.map: pool is shut down"
      end;
      let results = Array.make n (Error (Exit, "")) in
      let remaining = ref n in
      Array.iteri
        (fun i x ->
          Queue.push
            (fun () ->
              let r = wrap x in
              Mutex.lock t.mutex;
              results.(i) <- r;
              decr remaining;
              if !remaining = 0 then Condition.broadcast t.batch_done;
              Mutex.unlock t.mutex)
            t.queue)
        items;
      Condition.broadcast t.has_work;
      (* Drain alongside the workers instead of idling a whole domain. *)
      while !remaining > 0 do
        match Queue.take_opt t.queue with
        | Some task ->
            Mutex.unlock t.mutex;
            task ();
            Mutex.lock t.mutex
        | None -> Condition.wait t.batch_done t.mutex
      done;
      Mutex.unlock t.mutex;
      results
    end
  in
  Array.mapi
    (fun i r ->
      match r with
      | Ok y -> Ok y
      | Error (exn, backtrace) ->
          Error
            { flabel = label items.(i); fexn = exn; fbacktrace = backtrace })
    results
  |> Array.to_list

let map t ~label ~f xs =
  List.map
    (function
      | Ok y -> y
      | Error { flabel; fexn; fbacktrace } ->
          raise
            (Task_failed
               { label = flabel; exn = fexn; backtrace = fbacktrace }))
    (map_collect t ~label ~f xs)
