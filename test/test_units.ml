let test_rates () =
  Alcotest.(check (float 1e-9)) "mbps" 1e8 (Sim.Units.mbps 100.);
  Alcotest.(check (float 1e-9)) "gbps" 1e9 (Sim.Units.gbps 1.);
  Alcotest.(check (float 1e-9)) "kbps" 5e4 (Sim.Units.kbps 50.);
  Alcotest.(check (float 1e-9)) "to_mbps" 100.
    (Sim.Units.rate_to_mbps (Sim.Units.mbps 100.))

let test_tx_time () =
  (* 1500 bytes at 100 Mbit/s = 120 µs. *)
  let t = Sim.Units.tx_time (Sim.Units.mbps 100.) ~bytes:1500 in
  Alcotest.(check (float 1e-6)) "serialization delay" 120e-6 (Sim.Time.to_sec t)

let test_bytes_in () =
  Alcotest.(check (float 1e-6)) "bytes in 1s at 8 bit/s" 1.
    (Sim.Units.bytes_in (Sim.Units.bps 8.) (Sim.Time.sec 1))

let test_bdp () =
  (* 100 Mbit/s × 60 ms = 750 kB = 500 × 1500 B. *)
  Alcotest.(check (float 1e-6)) "bdp bytes" 750_000.
    (Sim.Units.bdp_bytes (Sim.Units.mbps 100.) ~rtt:(Sim.Time.ms 60));
  Alcotest.(check (float 1e-6)) "bdp packets" 500.
    (Sim.Units.bdp_packets (Sim.Units.mbps 100.) ~rtt:(Sim.Time.ms 60)
       ~packet_bytes:1500)

let test_throughput () =
  Alcotest.(check (float 1e-6)) "throughput" 8.
    (Sim.Units.throughput_mbps ~bytes:1_000_000 ~elapsed:(Sim.Time.sec 1));
  Alcotest.(check (float 0.)) "zero duration" 0.
    (Sim.Units.throughput_mbps ~bytes:10 ~elapsed:Sim.Time.zero)

let test_pp () =
  Alcotest.(check string) "rate pp" "100Mbit/s"
    (Format.asprintf "%a" Sim.Units.pp_rate (Sim.Units.mbps 100.));
  Alcotest.(check string) "bytes pp small" "512B"
    (Format.asprintf "%a" Sim.Units.pp_bytes 512);
  Alcotest.(check string) "bytes pp KiB" "1.5KiB"
    (Format.asprintf "%a" Sim.Units.pp_bytes 1536)

let qcheck_txtime_linear =
  QCheck.Test.make ~name:"tx_time linear in size" ~count:200
    QCheck.(int_range 1 100_000)
    (fun bytes ->
      let r = Sim.Units.mbps 100. in
      let t1 = Sim.Time.to_sec (Sim.Units.tx_time r ~bytes) in
      let t2 = Sim.Time.to_sec (Sim.Units.tx_time r ~bytes:(2 * bytes)) in
      Float.abs (t2 -. (2. *. t1)) < 2e-9)

let suite =
  [
    Alcotest.test_case "rate constructors" `Quick test_rates;
    Alcotest.test_case "tx_time" `Quick test_tx_time;
    Alcotest.test_case "bytes_in" `Quick test_bytes_in;
    Alcotest.test_case "bdp" `Quick test_bdp;
    Alcotest.test_case "throughput" `Quick test_throughput;
    Alcotest.test_case "pretty printers" `Quick test_pp;
    QCheck_alcotest.to_alcotest qcheck_txtime_linear;
  ]
