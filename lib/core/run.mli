(** One instrumented bulk-transfer run: the unit every experiment is
    assembled from. Since the {!Spec} refactor this is a thin wrapper
    over a one-flow duplex spec — kept because "one bulk flow on the
    paper's path" is the shape nearly every sweep iterates. *)

type cong_avoid_choice = Spec.cong_avoid = Reno | Cubic | Vegas

type spec = {
  seed : int;
  rate : Sim.Units.rate;
  one_way_delay : Sim.Time.t;
  ifq_capacity : int;
  duration : Sim.Time.t;
  bytes : int option;            (** [None] = saturating transfer *)
  slow_start : string;           (** {!Tcp.Slow_start.by_name} key *)
  restricted : Tcp.Slow_start.restricted_config option;
      (** override for the "restricted" policy's controller *)
  local_congestion : Tcp.Local_congestion.policy;
  delayed_ack : Sim.Time.t option;
  use_sack : bool;
  cong_avoid : cong_avoid_choice;
  pacing : bool;                 (** pace data segments (sch_fq-style) *)
  ifq_red_ecn : Netsim.Queue_disc.red_params option;
      (** run the sender's interface queue as RED with ECN marking *)
  sample_period : Sim.Time.t;    (** series sampling granularity *)
  loss_rate : float;             (** random forward-path loss *)
}

val default_spec : spec
(** The paper's testbed: 100 Mbit/s, 60 ms RTT, IFQ 100, 25 s
    saturating transfer, standard slow-start, [Halve] local congestion,
    delayed ACKs, SACK, Reno, 250 ms sampling. *)

type result = Spec.flow_result = {
  label : string;
  goodput_mbps : float;          (** receiver in-order bits / duration *)
  utilization : float;           (** goodput / line rate *)
  send_stalls : int;
  congestion_signals : int;
  retransmits : int;
  timeouts : int;
  final_cwnd_segments : float;
  mean_ifq : float;
  peak_ifq : float;
  ce_marks : int;                (** ECN CE marks seen by the receiver *)
  completion : Sim.Time.t option;
      (** set when [bytes] was given and fully delivered *)
  time_to_90pct_util : float option;
      (** seconds until windowed throughput first reached 90 % of line
          rate; [None] if never *)
  stalls_series : Sim.Stats.Series.t;   (** cumulative send-stalls *)
  cwnd_series : Sim.Stats.Series.t;     (** segments *)
  ifq_series : Sim.Stats.Series.t;      (** packets *)
  throughput_series : Sim.Stats.Series.t;
      (** per-sample-window receiver throughput, Mbit/s *)
  srtt_series : Sim.Stats.Series.t;     (** milliseconds *)
}

val to_spec : ?label:string -> spec -> Spec.t
(** The equivalent one-flow {!Spec.t} (duplex topology, no faults). *)

val bulk : ?label:string -> spec -> result
(** Build the scenario, run one flow for [duration], return the
    measurements. Deterministic in [spec]. *)

val spec_label : ?label:string -> spec -> string
(** Human-readable scenario identity (policy plus path parameters) —
    the label a failed pool task is reported under. *)

val bulk_batch :
  ?pool:Engine.Pool.t -> (string option * spec) list -> result list
(** Run each [(label, spec)] cell as an independent task on [pool]
    (sequentially when [pool] is [None]) and return the results in
    input order. Every cell builds its own scheduler and RNG, so the
    output is identical for any worker count. A raising cell surfaces
    as {!Engine.Pool.Task_failed} carrying {!spec_label}. *)

val bulk_batch_collect :
  ?pool:Engine.Pool.t ->
  (string option * spec) list ->
  (result, Engine.Pool.failure) Stdlib.result list
(** Like {!bulk_batch} but collects per-cell verdicts instead of
    raising: a poisoned cell costs one [Error] row (labeled with
    {!spec_label}), never the batch. Verdict order and content are
    identical for any worker count. *)
