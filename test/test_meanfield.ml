(* Tests for the mean-field TCP/RED oracle: the equilibrium solver's
   self-consistency, the stability boundary's monotonicity, and a fast
   engine sweep scored against the predictions. *)

module M = Core.Meanfield

let path = M.paper_path

let test_equilibrium_consistent () =
  List.iter
    (fun n ->
      let e = M.equilibrium path ~flows:n in
      (* Reno's loss balance: p = 2 / (w (w + 2)). *)
      let demand = 2. /. (e.w_star *. (e.w_star +. 2.)) in
      let supply =
        Netsim.Queue_disc.red_drop_probability path.red ~avg:e.q_star
      in
      (* Both sides must meet at q* (unless the solver pinned the queue
         at its upper bound because even a full queue cannot drop
         enough — then demand exceeds supply). *)
      let bound = Stdlib.min (float_of_int path.buffer_packets) (2. *. path.red.max_th) in
      if e.q_star < bound -. 1e-6 then
        Alcotest.(check bool)
          (Printf.sprintf "N=%d: RED curve meets Reno demand (%.3g vs %.3g)" n
             supply demand)
          true
          (Float.abs (supply -. demand) <= 1e-6 +. (0.01 *. demand));
      (* Full utilization: N·w* = C·rtt*. *)
      let pipe =
        path.capacity *. e.rtt_star /. float_of_int (path.mss * n)
      in
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "N=%d: window fills the pipe" n)
        pipe e.w_star;
      Alcotest.(check bool) "queue within bounds" true
        (e.q_star >= 0. && e.q_star <= bound +. 1e-9))
    [ 4; 64; 475; 2048 ]

let test_boundary_monotone () =
  let nc = M.critical_flows path in
  Alcotest.(check bool)
    (Printf.sprintf "critical count %d is positive" nc)
    true (nc > 1);
  (* Stable at and above the boundary, oscillatory well below it. *)
  Alcotest.(check bool) "stable at the boundary" true
    (M.predict path ~flows:nc = M.Stable);
  Alcotest.(check bool) "stable at 4x" true
    (M.predict path ~flows:(4 * nc) = M.Stable);
  Alcotest.(check bool) "oscillatory just below" true
    (M.predict path ~flows:(nc - 1) = M.Oscillatory);
  Alcotest.(check bool) "oscillatory at 1/4x" true
    (M.predict path ~flows:(Stdlib.max 1 (nc / 4)) = M.Oscillatory);
  (* Margin crosses 1 exactly at the verdict flip. *)
  Alcotest.(check bool) "margin >= 1 when stable" true
    (M.gain_margin path ~flows:nc >= 1.);
  Alcotest.(check bool) "margin < 1 when oscillatory" true
    (M.gain_margin path ~flows:(nc - 1) < 1.)

let test_fast_sweep_agrees () =
  (* The CI-sized sweep: short runs at N far from the boundary on both
     sides must match the oracle's verdicts. *)
  let nc = M.critical_flows path in
  let flows = [ Stdlib.max 1 (nc / 8); Stdlib.max 1 (nc / 4); 2 * nc; 4 * nc ] in
  let s = M.sweep ~duration:(Sim.Time.of_sec 8.) ~flows path ~seed:1 in
  Alcotest.(check int) "all points out of band" (List.length flows)
    s.out_of_band;
  Alcotest.(check int)
    (Printf.sprintf "all %d out-of-band points agree" s.out_of_band)
    s.out_of_band s.agreed;
  List.iter
    (fun (p : M.sweep_point) ->
      Alcotest.(check bool)
        (Printf.sprintf "N=%d verdict matches (amp %.3f)" p.sp_flows
           p.sp_amplitude)
        true
        (p.sp_predicted = p.sp_measured))
    s.points

let suite =
  [
    Alcotest.test_case "equilibrium is self-consistent" `Quick
      test_equilibrium_consistent;
    Alcotest.test_case "stability boundary is monotone in N" `Quick
      test_boundary_monotone;
    Alcotest.test_case "fast sweep matches the oracle" `Slow
      test_fast_sweep_agrees;
  ]
