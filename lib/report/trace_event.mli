(** Exporters for {!Trace.t} rings.

    Both exporters are pure functions of the ring contents — no clocks,
    no randomness, no host state — so a deterministic trace serializes
    byte-identically on every run and at any worker count. *)

val to_csv : Trace.t -> string
(** One row per retained record, oldest first:
    [time_s,event,src,arg1,arg2] with nanosecond-precision timestamps
    ([%.9f]) and symbolic event names from {!Trace.Code.name}. *)

val to_chrome : ?name:string -> Trace.t -> string
(** Chrome [trace_event] JSON (load in [chrome://tracing] or Perfetto).
    [name] (default ["rss_sim"]) labels the process. Counter-valued
    codes ({!Trace.Code.is_counter}) become ["C"] records — [tcp.cwnd]
    plots cwnd and ssthresh as stacked series per flow — and everything
    else becomes thread-scoped instants on thread [src]. Timestamps are
    microseconds with [%.3f], exact to the nanosecond. *)
