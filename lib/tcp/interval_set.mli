(** Sets of byte ranges as sorted disjoint half-open intervals [lo, hi).

    Backbone of both the receiver's reorder buffer and the sender's SACK
    scoreboard. Mutable; operations keep the invariant: sorted by [lo],
    pairwise disjoint, no empty or touching intervals (touching ranges
    are coalesced). *)

type t

val create : unit -> t
val is_empty : t -> bool

val add : t -> lo:int -> hi:int -> unit
(** Insert [lo, hi), merging with any overlapping or adjacent ranges.
    No-op when [lo >= hi]. *)

val remove_below : t -> int -> unit
(** Drop all bytes < the bound (trimming a straddling interval). *)

val mem : t -> int -> bool
(** Is this byte covered? *)

val contains_range : t -> lo:int -> hi:int -> bool
(** Is every byte of [lo, hi) covered (by a single interval)? *)

val total : t -> int
(** Number of bytes covered. *)

val count : t -> int
(** Number of disjoint intervals. *)

val intervals : t -> (int * int) list
(** Ascending [lo, hi) pairs. *)

val first : t -> (int * int) option

val extend_contiguous : t -> int -> int
(** [extend_contiguous t x]: the highest [y >= x] such that every byte
    of [x, y) is covered, i.e. how far a cursor at [x] can advance
    through buffered data. Returns [x] when byte [x] is not covered.
    Consumed intervals are {e not} removed. *)

val next_gap : t -> from:int -> (int * int) option
(** [next_gap t ~from]: the first maximal uncovered range [g_lo, g_hi)
    with [g_lo >= from] lying strictly below the set's highest covered
    byte ([g_hi] is the start of the following interval). [None] when no
    covered interval lies above the candidate gap — i.e. there is no
    hole with known data beyond it. *)

val pp : Format.formatter -> t -> unit
