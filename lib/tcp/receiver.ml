type t = {
  host : Netsim.Host.t;
  sched : Sim.Scheduler.t;
  flow : int;
  ids : Netsim.Packet.Id_source.source;
  cfg : Config.t;
  buffer : Reorder_buffer.t;
  iss : Proto.Seqno.t; (* our own (ACK-side) initial sequence number *)
  mutable peer : int option;
  mutable irs : Proto.Seqno.t option; (* peer's initial sequence number *)
  mutable rcv_nxt : int;              (* unwrapped cumulative offset *)
  mutable pending_segments : int;     (* in-order segs since last ACK *)
  mutable pending_ts : Sim.Time.t;    (* ts_val to echo for pending ACK *)
  mutable delack_handle : Sim.Scheduler.handle option;
  mutable synack_sent : bool;
  mutable segment_count : int;
  mutable dup_count : int;
  mutable ack_count : int;
  mutable first_data : Sim.Time.t option;
  mutable last_data : Sim.Time.t option;
  mutable byte_callbacks : (int -> unit) list;
  mutable expectations : (int * (unit -> unit)) list;
  mutable unread : int; (* delivered in-order but not yet app-consumed *)
  mutable drain_armed : bool;
  mutable zero_window_advertised : bool;
  mutable ece_echo : bool; (* CE seen; echo ECE until the sender's CWR *)
  mutable ce_marks : int;
}

let create ~host ~flow ~ids ?(config = Config.default) () =
  let t =
    {
      host;
      sched = Netsim.Host.scheduler host;
      flow;
      ids;
      cfg = config;
      buffer = Reorder_buffer.create ();
      iss = Proto.Seqno.of_int (0x9000 + (flow * 0x1235));
      peer = None;
      irs = None;
      rcv_nxt = 0;
      pending_segments = 0;
      pending_ts = Sim.Time.zero;
      delack_handle = None;
      synack_sent = false;
      segment_count = 0;
      dup_count = 0;
      ack_count = 0;
      first_data = None;
      last_data = None;
      byte_callbacks = [];
      expectations = [];
      unread = 0;
      drain_armed = false;
      zero_window_advertised = false;
      ece_echo = false;
      ce_marks = 0;
    }
  in
  t

let seq_of_offset t off =
  match t.irs with
  | Some irs -> Proto.Seqno.add irs (1 + off)
  | None -> invalid_arg "Receiver: no connection yet"

let offset_of_seq t seqno =
  t.rcv_nxt + Proto.Seqno.diff seqno (seq_of_offset t t.rcv_nxt)

(* Free space in the receive buffer: total size minus the in-order
   backlog the application has not read and the out-of-order store. *)
let advertised_window t =
  match t.cfg.Config.app_read_rate with
  | None -> t.cfg.Config.rcv_wnd
  | Some _ ->
      Stdlib.max 0
        (t.cfg.Config.rcv_wnd - t.unread
        - Reorder_buffer.buffered_bytes t.buffer)

(* Build and emit an ACK for the current cumulative point. *)
let emit_ack t ?(syn = false) ~ts_ecr () =
  match t.peer with
  | None -> ()
  | Some peer ->
      let sack_blocks =
        if t.cfg.Config.use_sack && t.irs <> None then
          Reorder_buffer.sack_blocks t.buffer ~above:t.rcv_nxt ~max_blocks:4
          |> List.map (fun (lo, hi) -> (seq_of_offset t lo, seq_of_offset t hi))
        else []
      in
      let header =
        {
          Proto.Tcp_header.src_port = t.flow;
          dst_port = t.flow;
          seq = t.iss;
          ack =
            (match t.irs with
            | Some _ -> seq_of_offset t t.rcv_nxt
            | None -> Proto.Seqno.zero);
          is_ack = true;
          flags =
            ((if syn then [ Proto.Tcp_header.Syn ] else [])
            @ if t.ece_echo then [ Proto.Tcp_header.Ece ] else []);
          wnd = advertised_window t;
          payload_len = 0;
          sack_blocks;
          ts_val = Sim.Scheduler.now t.sched;
          ts_ecr;
        }
      in
      let pkt =
        Netsim.Packet.make
          ~id:(Netsim.Packet.Id_source.next t.ids)
          ~flow:t.flow ~src:(Netsim.Host.id t.host) ~dst:peer
          ~created:(Sim.Scheduler.now t.sched)
          (Proto.Payload.Tcp header)
      in
      (* ACKs share the host IFQ; a full queue drops them (the reverse
         path is uncongested in all scenarios, so this is theoretical). *)
      (match Netsim.Host.send t.host pkt with `Sent | `Stalled -> ());
      t.ack_count <- t.ack_count + 1;
      t.pending_segments <- 0;
      t.zero_window_advertised <-
        header.Proto.Tcp_header.wnd < t.cfg.Config.mss;
      (match t.delack_handle with
      | Some h ->
          Sim.Scheduler.cancel t.sched h;
          t.delack_handle <- None
      | None -> ())

(* Application reader: consume the in-order backlog at the configured
   rate, ticking while there is anything to read. Reopening a (near-)
   closed window sends an explicit window update, with RFC 1122 SWS
   avoidance: wait until an MSS or a quarter of the buffer is free. *)
let drain_tick = Sim.Time.ms 5

let rec arm_drain t rate =
  t.drain_armed <- true;
  ignore
    (Sim.Scheduler.after t.sched drain_tick (fun () ->
         let quota = int_of_float (Sim.Units.bytes_in rate drain_tick) in
         t.unread <- Stdlib.max 0 (t.unread - quota);
         (if t.zero_window_advertised then
            let free = advertised_window t in
            let threshold =
              Stdlib.min t.cfg.Config.mss (t.cfg.Config.rcv_wnd / 4)
            in
            if free >= threshold then emit_ack t ~ts_ecr:Sim.Time.zero ());
         if t.unread > 0 then arm_drain t rate else t.drain_armed <- false))

let note_delivered t newly =
  match t.cfg.Config.app_read_rate with
  | None -> ()
  | Some rate ->
      t.unread <- t.unread + newly;
      if not t.drain_armed then arm_drain t rate

let fire_expectations t =
  let ready, waiting =
    List.partition (fun (bytes, _) -> t.rcv_nxt >= bytes) t.expectations
  in
  t.expectations <- waiting;
  List.iter (fun (_, cb) -> cb ()) ready

let handle_syn t header pkt =
  t.peer <- Some pkt.Netsim.Packet.src;
  (match t.irs with
  | None -> t.irs <- Some header.Proto.Tcp_header.seq
  | Some _ -> () (* retransmitted SYN *));
  t.synack_sent <- true;
  emit_ack t ~syn:true ~ts_ecr:header.Proto.Tcp_header.ts_val ()

let handle_data t header pkt =
  let len = header.Proto.Tcp_header.payload_len in
  (* RFC 3168: a CE mark arms the ECN echo; the peer's CWR disarms it. *)
  if pkt.Netsim.Packet.ecn_ce then begin
    t.ece_echo <- true;
    t.ce_marks <- t.ce_marks + 1
  end;
  if Proto.Tcp_header.has_flag header Proto.Tcp_header.Cwr then
    t.ece_echo <- false;
  if t.irs = None then begin
    (* Data before SYN (shouldn't happen); synthesize connection state. *)
    t.peer <- Some pkt.Netsim.Packet.src;
    t.irs <- Some (Proto.Seqno.add header.Proto.Tcp_header.seq (-1))
  end;
  if t.peer = None then t.peer <- Some pkt.Netsim.Packet.src;
  let now = Sim.Scheduler.now t.sched in
  if t.first_data = None then t.first_data <- Some now;
  t.last_data <- Some now;
  t.segment_count <- t.segment_count + 1;
  let lo = offset_of_seq t header.Proto.Tcp_header.seq in
  let hi = lo + len in
  if hi <= t.rcv_nxt then begin
    (* Entirely old: spurious retransmission; re-ACK immediately. *)
    t.dup_count <- t.dup_count + 1;
    emit_ack t ~ts_ecr:header.Proto.Tcp_header.ts_val ()
  end
  else begin
    let in_order = lo <= t.rcv_nxt in
    Reorder_buffer.insert t.buffer ~expected:t.rcv_nxt ~lo ~hi;
    let advanced = Reorder_buffer.deliverable_up_to t.buffer ~from:t.rcv_nxt in
    let newly = advanced - t.rcv_nxt in
    if newly > 0 then begin
      t.rcv_nxt <- advanced;
      Reorder_buffer.consume_below t.buffer advanced;
      note_delivered t newly;
      List.iter (fun cb -> cb newly) (List.rev t.byte_callbacks);
      fire_expectations t
    end;
    if not in_order then
      (* Out of order: immediate duplicate ACK with SACK info. *)
      emit_ack t ~ts_ecr:header.Proto.Tcp_header.ts_val ()
    else if newly > 0 && Reorder_buffer.buffered_bytes t.buffer > 0 then
      (* Filled a hole: ACK now so the sender learns quickly. *)
      emit_ack t ~ts_ecr:header.Proto.Tcp_header.ts_val ()
    else begin
      match t.cfg.Config.delayed_ack with
      | None -> emit_ack t ~ts_ecr:header.Proto.Tcp_header.ts_val ()
      | Some timeout ->
          if t.pending_segments = 0 then
            t.pending_ts <- header.Proto.Tcp_header.ts_val;
          t.pending_segments <- t.pending_segments + 1;
          if t.pending_segments >= 2 then
            (* Echo the oldest pending timestamp (RFC 7323 §4.4). *)
            emit_ack t ~ts_ecr:t.pending_ts ()
          else if Option.is_none t.delack_handle then
            t.delack_handle <-
              Some
                (Sim.Scheduler.after t.sched timeout (fun () ->
                     t.delack_handle <- None;
                     if t.pending_segments > 0 then
                       emit_ack t ~ts_ecr:t.pending_ts ()))
    end
  end

let handle_packet t pkt =
  match pkt.Netsim.Packet.payload with
  | Proto.Payload.Tcp header ->
      if Proto.Tcp_header.has_flag header Proto.Tcp_header.Syn then
        handle_syn t header pkt
      else if header.Proto.Tcp_header.payload_len > 0 then
        handle_data t header pkt
  | Proto.Payload.Udp _ -> ()

let create ~host ~flow ~ids ?config () =
  let t = create ~host ~flow ~ids ?config () in
  Netsim.Host.register_flow host ~flow (fun pkt -> handle_packet t pkt);
  t

let on_bytes t cb = t.byte_callbacks <- cb :: t.byte_callbacks

let expect t ~bytes cb =
  if t.rcv_nxt >= bytes then cb ()
  else t.expectations <- (bytes, cb) :: t.expectations

let bytes_received t = t.rcv_nxt
let backlog t = t.unread
let ce_marks_seen t = t.ce_marks
let current_window t = advertised_window t
let segments_received t = t.segment_count
let duplicate_segments t = t.dup_count
let out_of_order_segments t = Reorder_buffer.segments_out_of_order t.buffer
let acks_sent t = t.ack_count
let first_data_at t = t.first_data
let last_data_at t = t.last_data

let goodput_mbps t ~at =
  let s = Sim.Time.to_sec at in
  if s <= 0. then 0. else float_of_int (8 * t.rcv_nxt) /. s /. 1e6
