type t = {
  host : Netsim.Host.t;
  sched : Sim.Scheduler.t;
  dst : int;
  flow : int;
  ids : Netsim.Packet.Id_source.source;
  rng : Sim.Rng.t;
  payload_bytes : int;
  period : Sim.Time.t;
  mean_on : Sim.Time.t;
  mean_off : Sim.Time.t;
  peak : Sim.Units.rate;
  mutable seq : int;
  mutable sent : int;
  mutable running : bool;
  mutable burst_ends : Sim.Time.t;
}

let exp_duration t mean =
  Sim.Time.of_sec (Sim.Rng.exponential t.rng ~mean:(Sim.Time.to_sec mean))

let rec emit t () =
  if t.running then begin
    let now = Sim.Scheduler.now t.sched in
    if Sim.Time.(now >= t.burst_ends) then begin
      let silence = exp_duration t t.mean_off in
      ignore (Sim.Scheduler.after t.sched silence (begin_burst t))
    end
    else begin
      let pkt =
        Netsim.Packet.make
          ~id:(Netsim.Packet.Id_source.next t.ids)
          ~flow:t.flow ~src:(Netsim.Host.id t.host) ~dst:t.dst ~created:now
          (Proto.Payload.Udp { seq = t.seq; payload_len = t.payload_bytes })
      in
      t.seq <- t.seq + 1;
      (match Netsim.Host.send t.host pkt with
      | `Sent -> t.sent <- t.sent + 1
      | `Stalled -> ());
      ignore (Sim.Scheduler.after t.sched t.period (emit t))
    end
  end

and begin_burst t () =
  if t.running then begin
    let on = exp_duration t t.mean_on in
    t.burst_ends <- Sim.Time.add (Sim.Scheduler.now t.sched) on;
    emit t ()
  end

let start ~host ~dst ~flow ~ids ~rng ~peak_rate ~mean_on ~mean_off
    ?(packet_bytes = 1000) () =
  assert (peak_rate > 0.);
  let wire = packet_bytes + 28 in
  let t =
    {
      host;
      sched = Netsim.Host.scheduler host;
      dst;
      flow;
      ids;
      rng;
      payload_bytes = packet_bytes;
      period = Sim.Units.tx_time peak_rate ~bytes:wire;
      mean_on;
      mean_off;
      peak = peak_rate;
      seq = 0;
      sent = 0;
      running = true;
      burst_ends = Sim.Time.zero;
    }
  in
  begin_burst t ();
  t

let stop t = t.running <- false
let packets_sent t = t.sent

let mean_rate t =
  let on = Sim.Time.to_sec t.mean_on and off = Sim.Time.to_sec t.mean_off in
  t.peak *. (on /. (on +. off))
