(** Drivers for every reproduced figure/table (see DESIGN.md §5).

    Each function is purely computational — it runs simulations and
    returns structured results; formatting lives in the bench harness
    and the examples. All runs are deterministic: when a [?pool] is
    given, each independent experiment cell runs as one
    {!Engine.Pool} task and the aggregated results are bit-identical
    to the sequential ([?pool = None]) path. *)

(** Figure 1: cumulative send-stall signals over 25 s, standard Linux
    TCP vs the proposed scheme. *)
module Fig1 : sig
  type t = {
    standard : Run.result;
    restricted : Run.result;
    duration : Sim.Time.t;
  }

  val run : ?pool:Engine.Pool.t -> ?duration:Sim.Time.t -> unit -> t
end

(** §4 text claim: throughput improvement of RSS over standard TCP
    (paper: ≈ 40 %). *)
module Table1 : sig
  type row = {
    duration_s : float;
    standard_mbps : float;
    restricted_mbps : float;
    improvement_pct : float;
    standard_stalls : int;
    restricted_stalls : int;
  }

  val run : ?pool:Engine.Pool.t -> ?durations:float list -> unit -> row list
  (** Default durations: 25 s and 60 s. *)
end

(** E2: slow-start variant comparison on the paper's path. *)
module Variants : sig
  val run : ?pool:Engine.Pool.t -> ?duration:Sim.Time.t -> unit -> Run.result list
  (** standard, limited, hystart, restricted — in that order. *)
end

(** E3: throughput vs interface-queue size, standard vs RSS. *)
module Ifq_sweep : sig
  type row = {
    ifq_capacity : int;
    standard : Run.result;
    restricted : Run.result;
  }

  val run :
    ?pool:Engine.Pool.t ->
    ?sizes:int list ->
    ?duration:Sim.Time.t ->
    unit ->
    row list
end

(** E4: throughput vs round-trip time (BDP scaling). *)
module Rtt_sweep : sig
  type row = {
    rtt_ms : int;
    standard : Run.result;
    restricted : Run.result;
  }

  val run :
    ?pool:Engine.Pool.t ->
    ?rtts_ms:int list ->
    ?duration:Sim.Time.t ->
    unit ->
    row list
end

(** E5: slow-start overshoot loss at a network bottleneck (router
    drops), across link speeds — quantifies §1's "thousands of packets
    dropped in one round-trip". The sender NIC is 1 Gbit/s here, so the
    overshoot lands on the router, outside RSS's sensor: the experiment
    marks the boundary of the mechanism's applicability. *)
module Burst_loss : sig
  type row = {
    bottleneck_mbps : float;
    buffer_packets : int;
    slow_start : string;
    router_drops : int;
    retransmits : int;
    goodput_mbps : float;
  }

  val run :
    ?pool:Engine.Pool.t ->
    ?rates_mbps:float list ->
    ?duration:Sim.Time.t ->
    unit ->
    row list
end

(** E6: controller-tuning ablation. Reports the critical point measured
    by the in-simulation ZN experiment, then compares RSS under several
    gain settings. *)
module Pid_ablation : sig
  type row = {
    label : string;
    gains : Control.Pid.gains;
    result : Run.result;
  }

  type t = {
    measured : (Control.Tuning.critical_point, string) result;
    rows : row list;
  }

  val run : ?pool:Engine.Pool.t -> ?duration:Sim.Time.t -> unit -> t
end

(** E7: reaction-to-stall ablation under standard slow-start. *)
module Local_cong_ablation : sig
  val run : ?pool:Engine.Pool.t -> ?duration:Sim.Time.t -> unit -> (string * Run.result) list
end

(** E9: gain scheduling — fixed-gain RSS vs the RTT-adaptive variant
    across the RTT sweep that exposed E4's fixed-gain weakness. *)
module Adaptive_gains : sig
  type row = {
    rtt_ms : int;
    standard : Run.result;
    restricted_fixed : Run.result;
    restricted_adaptive : Run.result;
  }

  val run :
    ?pool:Engine.Pool.t ->
    ?rtts_ms:int list ->
    ?duration:Sim.Time.t ->
    unit ->
    row list
end

(** E10: is pacing alone enough? Standard slow-start with sch_fq-style
    pacing vs plain standard vs RSS. Pacing smooths the bursts but not
    the exponential overshoot itself. *)
module Pacing : sig
  val run : ?pool:Engine.Pool.t -> ?duration:Sim.Time.t -> unit -> Run.result list
  (** standard, standard+pacing, restricted, restricted+pacing. *)
end

(** E11: parallel streams (the authors' GridFTP use case) — N flows from
    one host share its interface queue. With RSS, N independent
    controllers regulate the same shared queue. *)
module Parallel_streams : sig
  type row = {
    streams : int;
    slow_start : string;
    aggregate_mbps : float;
    total_stalls : int;
    jain_index : float;       (** across the N flows' goodputs *)
    mean_ifq : float;
  }

  val run :
    ?pool:Engine.Pool.t ->
    ?stream_counts:int list ->
    ?duration:Sim.Time.t ->
    unit ->
    row list
end

(** E12: the road Linux eventually took — RED with ECN marking on the
    {e local} qdisc, so the host signals its own congestion through the
    normal ECN echo path, vs the paper's direct controller. The echo
    costs a full RTT and reacts multiplicatively; the controller reads
    the queue instantly and regulates. *)
module Local_ecn : sig
  type row = {
    label : string;
    result : Run.result;
    ce_marks : int;
  }

  val run : ?pool:Engine.Pool.t -> ?duration:Sim.Time.t -> unit -> row list
  (** standard/drop-tail, standard/RED+ECN qdisc, restricted/drop-tail. *)
end

(** E13: a disk-paced (chunked) application — the workload that makes
    one transfer accumulate a {e staircase} of send-stalls like the
    paper's Figure 1. With RFC 2861 idle-restart off (a common
    GridFTP-era tuning), every chunk dumps a full old-cwnd burst into
    the IFQ and stalls; restart-on avoids the stall at the price of
    re-running slow-start per chunk; pacing smooths the burst. *)
module Chunked_app : sig
  type row = {
    label : string;
    goodput_mbps : float;
    send_stalls : int;
    congestion_signals : int;
    stalls_series : Sim.Stats.Series.t;
  }

  val run :
    ?pool:Engine.Pool.t ->
    ?chunk_bytes:int ->
    ?interval:Sim.Time.t ->
    ?duration:Sim.Time.t ->
    unit ->
    row list
  (** Defaults: 6 MB chunks every 3 s for 25 s. Rows: standard with
      idle-restart, standard without, standard without + pacing,
      restricted (with restart). *)
end

(** E14: the price of a full queue — one-way delay of delivered data
    under each sender. Holding the IFQ at 90 % buys throughput at the
    cost of a standing queueing delay (proto-bufferbloat); a lower set
    point keeps the throughput and returns most of the latency. *)
module Latency : sig
  type row = {
    label : string;
    goodput_mbps : float;
    mean_delay_ms : float;   (** sender app → receiver, data segments *)
    p99_delay_ms : float;
  }

  val run : ?pool:Engine.Pool.t -> ?duration:Sim.Time.t -> unit -> row list
  (** standard, restricted (0.9 set point), restricted (0.5),
      restricted (0.2). *)
end

(** E8: friendliness — an RSS flow sharing a dumbbell bottleneck with a
    standard Reno flow. *)
module Fairness : sig
  type t = {
    reno_mbps : float;
    restricted_mbps : float;
    jain_index : float;
    reno_vs_reno_jain : float;   (** control: two standard flows *)
  }

  val run : ?pool:Engine.Pool.t -> ?duration:Sim.Time.t -> unit -> t
end
