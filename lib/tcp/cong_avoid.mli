(** Congestion-avoidance algorithms, pluggable per connection.

    Windows are floats in bytes. Each algorithm owns the additive-
    increase step during congestion avoidance and the multiplicative-
    decrease applied on loss events; the sender drives everything else
    (slow-start is a separate policy, see {!Slow_start}). *)

type t = {
  name : string;
  on_ack :
    newly_acked:int -> cwnd:float -> mss:int -> srtt:Sim.Time.t option ->
    min_rtt:Sim.Time.t option -> now:Sim.Time.t -> float;
      (** new cwnd after an ACK of new data while in congestion
          avoidance *)
  on_loss : cwnd:float -> flight:int -> mss:int -> now:Sim.Time.t ->
    float * float;
      (** (ssthresh, cwnd) after a fast-retransmit loss event *)
  on_rto : cwnd:float -> flight:int -> mss:int -> float * float;
      (** (ssthresh, cwnd) after a retransmission timeout *)
  reset : unit -> unit;  (** clear epoch state (new connection reuse) *)
}

val reno : unit -> t
(** AIMD: +MSS per RTT (MSS²/cwnd per ACK), halve on loss. *)

val cubic : ?c:float -> ?beta:float -> unit -> t
(** RFC 8312 CUBIC: window follows C·(t−K)³ + Wmax with β=0.7 decrease
    and a TCP-friendly (Reno-tracking) lower bound. *)

val relentless : unit -> t
(** Relentless congestion control (Mathis, arXiv 1102.3270): Reno's
    additive increase, but a loss event reduces the window by one MSS
    (the lost segment) instead of halving, with ssthresh pinned to the
    reduced window. Steady state under per-segment loss probability [p]
    sits at W* ≈ 1/p segments (throughput ≈ MSS/(p·RTT)) — the
    analytical model the oracle tests check. RTO reaction is Reno's. *)

val small_rtt : ?ref_rtt:Sim.Time.t -> unit -> t
(** Small-RTT cwnd scaling (Briscoe & De Schepper, arXiv 1904.07598):
    Reno, but below [ref_rtt] (default 25 ms) the additive increase is
    scaled by [srtt/ref_rtt], so rate acceleration is RTT-independent
    and short-RTT flows stop starving long-RTT competitors at a shared
    bottleneck. Identical to Reno at or above [ref_rtt]; decrease rules
    are Reno's. *)

val fast : ?alpha_seg:float -> ?gamma:float -> unit -> t
(** FAST-style delay-based avoidance (Wei & Low): once per RTT,
    [w ← (1−γ)·w + γ·(base_rtt/avg_rtt·w + α)] with [avg_rtt] a
    γ-smoothed average (default γ=0.5) and [alpha_seg] (default 16) the
    target queued backlog in segments; the per-update move is capped at
    window doubling. Equilibrium parks exactly α segments in the path's
    queues. Falls back to Reno's increase until RTT estimates exist;
    loss reactions are Reno's. *)

val vegas : ?alpha:float -> ?beta_seg:float -> unit -> t
(** Vegas (Brakmo & Peterson): once per RTT estimate the backlog
    [cwnd·(rtt − base_rtt)/rtt] in segments; grow by one MSS below
    [alpha] (default 2), shrink by one above [beta_seg] (default 4),
    hold in between. Falls back to Reno's increase until RTT estimates
    exist. Loss reactions are Reno's. *)
