(* Conservative-lookahead parallel DES across OCaml domains.

   A [t] owns N partitions, each wrapping its own {!Scheduler} (clock +
   event heap + RNG). Model state is split so every component belongs to
   exactly one partition; the only cross-partition traffic flows through
   typed {!Channel}s whose lookahead is the propagation delay of the
   link they replace.

   Synchronization is the classic conservative epoch loop. Let [nmin]
   be the earliest pending event over all partitions and [L] the
   minimum channel lookahead. Any message a partition emits while
   processing events at time [t >= nmin] is due at [t + delay >= nmin
   + L], so every event strictly below the horizon [H = nmin + L] can
   be fired without ever receiving a message from the past. Each epoch
   runs all partitions up to [H - 1ns] (the run loop is
   boundary-inclusive), then the coordinator drains the channels —
   always in channel-creation order, FIFO within a channel — onto the
   destination heaps. Every delivery is inserted with its send-time
   clock as the event's birth key, so among same-due destination
   events it ranks exactly where a single global heap scheduling it at
   send time would have ranked it; together with the fixed drain order
   this makes the trajectory a pure function of the model and the
   partition structure — worker count only changes which domain
   happens to execute a partition, never the result — and byte-
   identical to the same model run on one scheduler.

   [run]'s [breaks] are coordinator-owned instants (flow starts,
   sample grids): the loop advances every partition clock exactly to
   the break (events below it all fired, events at it still pending)
   and calls [on_break] from the coordinator, giving it a race-free,
   globally-quiesced view — the partitioned analogue of a
   [Scheduler.every] sampler. *)

type part = { index : int; sched : Scheduler.t }

type t = {
  parts : part array;
  mutable drains_rev : (unit -> unit) list; (* channel drains, newest first *)
  mutable min_look_ns : int; (* max_int when no channel exists *)
}

let create ~parts ~seed_of =
  if parts < 1 then invalid_arg "Partition.create: need at least 1 partition";
  {
    parts =
      Array.init parts (fun index ->
          { index; sched = Scheduler.create ~seed:(seed_of index) () });
    drains_rev = [];
    min_look_ns = max_int;
  }

let count t = Array.length t.parts
let scheduler t i = t.parts.(i).sched
let min_lookahead_ns t = t.min_look_ns

module Channel = struct
  type 'a t = {
    src_sched : Scheduler.t;
    dst_sched : Scheduler.t;
    handler : Time.t -> 'a -> unit;
    mutable buf : (int * int * 'a) list;
        (* newest first; (due, birth) times in ns *)
  }

  (* Called from the source partition's domain during an epoch. The
     buffer is single-writer (one partition owns the sending link) and
     is only read by the coordinator after the barrier, so no lock is
     needed: the barrier mutex publishes it. The send-time clock rides
     along as the event's birth — in a single global heap this delivery
     would have been scheduled at exactly that instant, so carrying it
     ranks the delivery among same-due destination events precisely
     where the legacy run put it. *)
  let send ch ~due v =
    ch.buf <-
      (Time.to_ns_int due, Time.to_ns_int (Scheduler.now ch.src_sched), v)
      :: ch.buf

  (* Coordinator-only, between epochs. Conservative horizons guarantee
     every buffered due time is at or beyond the destination clock. *)
  let drain ch =
    match ch.buf with
    | [] -> ()
    | newest_first ->
        ch.buf <- [];
        List.iter
          (fun (due_ns, birth_ns, v) ->
            let due = Time.of_ns_int due_ns in
            ignore
              (Scheduler.at
                 ~birth:(Time.of_ns_int birth_ns)
                 ch.dst_sched due
                 (fun () -> ch.handler due v)))
          (List.rev newest_first)
end

let channel t ~src ~dst ~lookahead ~handler =
  let n = Array.length t.parts in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Partition.channel: partition index out of range";
  if src = dst then
    invalid_arg "Partition.channel: src and dst must be distinct partitions";
  let look_ns = Time.to_ns_int lookahead in
  if look_ns <= 0 then
    invalid_arg
      "Partition.channel: lookahead must be positive (a zero-delay boundary \
       link gives the conservative horizon no room to advance)";
  let ch =
    {
      Channel.src_sched = t.parts.(src).sched;
      dst_sched = t.parts.(dst).sched;
      handler;
      buf = [];
    }
  in
  t.drains_rev <- (fun () -> Channel.drain ch) :: t.drains_rev;
  if look_ns < t.min_look_ns then t.min_look_ns <- look_ns;
  ch

(* ------------------------------------------------------------------ *)
(* Epoch executor: a persistent barrier crew. Worker [w] always owns
   partitions [p] with [p mod nworkers = w] (the coordinator doubles as
   worker 0), so the partition->domain mapping is static — not that it
   could change the trajectory, since partitions share no state, but it
   keeps cache affinity across epochs. *)

type exec = {
  nworkers : int;
  nparts : int;
  m : Mutex.t;
  work : Condition.t;
  donec : Condition.t;
  mutable job : int -> unit;
  mutable gen : int;
  mutable remaining : int;
  mutable stopping : bool;
  mutable error : exn option;
  mutable crew : unit Domain.t list;
}

let stride_run e f w =
  let p = ref w in
  while !p < e.nparts do
    f !p;
    p := !p + e.nworkers
  done

let worker_loop e w =
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock e.m;
    while (not e.stopping) && e.gen = !seen do
      Condition.wait e.work e.m
    done;
    if e.stopping then begin
      Mutex.unlock e.m;
      running := false
    end
    else begin
      seen := e.gen;
      let f = e.job in
      Mutex.unlock e.m;
      let failure = try stride_run e f w; None with exn -> Some exn in
      Mutex.lock e.m;
      (match failure with
      | Some exn when e.error = None -> e.error <- Some exn
      | _ -> ());
      e.remaining <- e.remaining - 1;
      if e.remaining = 0 then Condition.broadcast e.donec;
      Mutex.unlock e.m
    end
  done

let make_exec ~workers ~nparts =
  let nworkers = max 1 (min workers nparts) in
  let e =
    {
      nworkers;
      nparts;
      m = Mutex.create ();
      work = Condition.create ();
      donec = Condition.create ();
      job = ignore;
      gen = 0;
      remaining = 0;
      stopping = false;
      error = None;
      crew = [];
    }
  in
  if nworkers > 1 then
    e.crew <-
      List.init (nworkers - 1) (fun i ->
          Domain.spawn (fun () -> worker_loop e (i + 1)));
  e

let stop_exec e =
  if e.crew <> [] then begin
    Mutex.lock e.m;
    e.stopping <- true;
    Condition.broadcast e.work;
    Mutex.unlock e.m;
    List.iter Domain.join e.crew;
    e.crew <- []
  end

let exec_epoch e f =
  if e.nworkers = 1 then
    for p = 0 to e.nparts - 1 do
      f p
    done
  else begin
    Mutex.lock e.m;
    e.job <- f;
    e.gen <- e.gen + 1;
    e.remaining <- e.nworkers - 1;
    Condition.broadcast e.work;
    Mutex.unlock e.m;
    stride_run e f 0;
    Mutex.lock e.m;
    while e.remaining > 0 do
      Condition.wait e.donec e.m
    done;
    let err = e.error in
    e.error <- None;
    Mutex.unlock e.m;
    match err with None -> () | Some exn -> raise exn
  end

(* ------------------------------------------------------------------ *)

let run t ~until ?(workers = 1) ?(breaks = []) ?(on_break = fun _ -> ()) () =
  let until_ns = Time.to_ns_int until in
  let breaks =
    List.sort_uniq compare
      (List.filter
         (fun b -> b > 0 && b <= until_ns)
         (List.map Time.to_ns_int breaks))
  in
  let nparts = Array.length t.parts in
  let drains = List.rev t.drains_rev in
  let drain_all () = List.iter (fun d -> d ()) drains in
  let next_event () =
    Array.fold_left
      (fun acc p ->
        let n = Scheduler.next_ns p.sched in
        if n >= 0 && (acc < 0 || n < acc) then n else acc)
      (-1) t.parts
  in
  let e = make_exec ~workers ~nparts in
  Fun.protect ~finally:(fun () -> stop_exec e) @@ fun () ->
  (* Fire every event strictly below [target], one conservative epoch
     at a time. Each epoch advances the horizon by at least the minimum
     lookahead, and always past the earliest pending event, so the loop
     terminates. *)
  let rec advance_to target =
    let nmin = next_event () in
    if nmin >= 0 && nmin < target then begin
      let h =
        if t.min_look_ns = max_int || t.min_look_ns >= target - nmin then
          target
        else nmin + t.min_look_ns
      in
      let horizon = Time.of_ns_int (h - 1) in
      exec_epoch e (fun p -> Scheduler.run ~until:horizon t.parts.(p).sched);
      drain_all ();
      advance_to target
    end
  in
  List.iter
    (fun b ->
      advance_to b;
      let bt = Time.of_ns_int b in
      Array.iter (fun p -> Scheduler.restore_clock p.sched bt) t.parts;
      on_break bt)
    breaks;
  advance_to until_ns;
  (* Final boundary-inclusive epoch: only events at exactly [until]
     remain below the cut; messages they emit are due strictly later
     and stay pending, exactly as a single-scheduler run leaves
     not-yet-due deliveries in its heap. *)
  exec_epoch e (fun p -> Scheduler.run ~until t.parts.(p).sched);
  drain_all ()
