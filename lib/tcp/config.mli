(** Per-connection tunables. *)

type t = {
  mss : int;                       (** payload bytes per segment *)
  init_cwnd_segments : int;        (** initial window after handshake *)
  init_ssthresh : float;           (** bytes; [infinity] = unbounded *)
  rcv_wnd : int;                   (** receiver's advertised window, bytes *)
  min_rto : Sim.Time.t;
  max_rto : Sim.Time.t;
  delayed_ack : Sim.Time.t option; (** ACK-every-2nd with this timeout;
                                       [None] = ACK every segment *)
  local_congestion : Local_congestion.policy;
  use_sack : bool;                 (** SACK blocks + scoreboard recovery *)
  dupack_threshold : int;          (** fast-retransmit trigger, default 3 *)
  pacing : bool;
      (** spread data segments at [gain·cwnd/srtt] instead of sending
          back-to-back bursts. Retransmissions are never delayed. *)
  pace_ss_gain : float;
      (** pacing-rate gain while in slow-start (sch_fq default 2.0;
          congestion policies may hint lower, see {!Policy}) *)
  pace_ca_gain : float;
      (** pacing-rate gain in congestion avoidance (sch_fq default 1.2) *)
  app_read_rate : Sim.Units.rate option;
      (** receiving application's consumption rate. [None] (default)
          reads instantly, so the advertised window stays at [rcv_wnd].
          With a finite rate, unread data builds a backlog in the
          [rcv_wnd]-byte receive buffer and the advertised window
          shrinks accordingly — the other "soft component" of §2. *)
  slow_start_restart : bool;
      (** RFC 2861 / Linux [tcp_slow_start_after_idle] (default true):
          after an idle period longer than the RTO with nothing in
          flight, reset the window to its initial value and re-enter
          slow-start. Every burst of a disk-paced application then
          replays the slow-start pathology — how a single transfer
          accumulates several send-stalls (Figure 1). *)
}

val default : t
(** MSS 1460, IW 2, ssthresh ∞, rwnd 16 MiB, RTO ∈ [200 ms, 60 s],
    delayed ACKs at 40 ms (Linux's [TCP_DELACK_MIN]; a 200 ms timer
    would race the 200 ms minimum RTO on odd tail segments), local
    congestion [Halve], SACK on, dupack threshold 3. *)
