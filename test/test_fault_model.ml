(* Fault-model unit tests: Gilbert–Elliott burstiness, scheduled
   outages and delay steps, duplication/reordering, validation, and
   decision-stream determinism. *)

let pkt ?(id = 0) () =
  Netsim.Packet.make ~id ~flow:9 ~src:0 ~dst:1 ~created:Sim.Time.zero
    (Proto.Payload.Udp { seq = id; payload_len = 1000 })

let model ?(seed = 11) profile =
  Netsim.Fault_model.create ~rng:(Sim.Rng.of_seed seed) profile

let no_faults = Netsim.Fault_model.passthrough

let invalid f =
  try
    ignore (f ());
    false
  with Invalid_argument _ -> true

let test_passthrough () =
  let m = model no_faults in
  for i = 0 to 99 do
    Alcotest.(check (list int))
      "delivered once, no extra delay" [ 0 ]
      (List.map Sim.Time.to_ns_int
         (Netsim.Fault_model.decide m ~now:Sim.Time.zero (pkt ~id:i ())))
  done;
  Alcotest.(check int) "no drops" 0 (Netsim.Fault_model.random_drops m)

let test_ge_burstiness () =
  (* Perfect-burst channel: lossless in good, total loss in bad. Drops
     must appear, must be bursty (mean run ≈ 1/p_bg = 5), and must all
     be attributed to the GE counter. *)
  let m =
    model
      {
        no_faults with
        Netsim.Fault_model.ge =
          Some
            {
              Netsim.Fault_model.p_gb = 0.05;
              p_bg = 0.2;
              loss_good = 0.;
              loss_bad = 1.;
            };
      }
  in
  let n = 5000 in
  let dropped = Array.make n false in
  for i = 0 to n - 1 do
    dropped.(i) <-
      Netsim.Fault_model.decide m ~now:Sim.Time.zero (pkt ~id:i ()) = []
  done;
  let drops = Array.fold_left (fun a d -> if d then a + 1 else a) 0 dropped in
  Alcotest.(check int) "all drops are GE drops" drops
    (Netsim.Fault_model.random_drops m);
  Alcotest.(check bool) "channel actually lossy" true (drops > 100);
  (* Mean length of consecutive-drop runs: an independent Bernoulli
     channel at the same rate would sit near 1/(1-p) ≈ 1.25; the burst
     channel should be near 1/p_bg = 5. *)
  let runs = ref 0 and in_run = ref false in
  Array.iter
    (fun d ->
      if d && not !in_run then incr runs;
      in_run := d)
    dropped;
  let mean_run = float_of_int drops /. float_of_int (max 1 !runs) in
  Alcotest.(check bool)
    (Printf.sprintf "bursty (mean run %.2f > 2.5)" mean_run)
    true (mean_run > 2.5)

let test_outage_window () =
  let m =
    model
      {
        no_faults with
        Netsim.Fault_model.schedule =
          [
            Netsim.Fault_model.Outage
              { start = Sim.Time.ms 10; stop = Sim.Time.ms 20 };
          ];
      }
  in
  let delivered_at t =
    Netsim.Fault_model.decide m ~now:t (pkt ()) <> []
  in
  Alcotest.(check bool) "before outage" true (delivered_at (Sim.Time.ms 5));
  Alcotest.(check bool) "start is inclusive" false
    (delivered_at (Sim.Time.ms 10));
  Alcotest.(check bool) "inside outage" false (delivered_at (Sim.Time.ms 15));
  Alcotest.(check bool) "stop is exclusive" true
    (delivered_at (Sim.Time.ms 20));
  Alcotest.(check int) "outage drops counted" 2
    (Netsim.Fault_model.outage_drops m);
  Alcotest.(check int) "not attributed to GE" 0
    (Netsim.Fault_model.random_drops m);
  Alcotest.(check (option int)) "last outage end" (Some 20_000_000)
    (Option.map Sim.Time.to_ns_int (Netsim.Fault_model.last_outage_end m))

let test_delay_step () =
  let m =
    model
      {
        no_faults with
        Netsim.Fault_model.schedule =
          [
            Netsim.Fault_model.Delay_step
              { at = Sim.Time.ms 10; extra = Sim.Time.ms 3 };
          ];
      }
  in
  Alcotest.(check (list int)) "before the step: no extra delay" [ 0 ]
    (List.map Sim.Time.to_ns_int
       (Netsim.Fault_model.decide m ~now:(Sim.Time.ms 5) (pkt ())));
  Alcotest.(check (list int)) "after the step: +3 ms" [ 3_000_000 ]
    (List.map Sim.Time.to_ns_int
       (Netsim.Fault_model.decide m ~now:(Sim.Time.ms 15) (pkt ())))

let test_duplicate_and_reorder () =
  let m =
    model
      {
        no_faults with
        Netsim.Fault_model.duplicate =
          Some { Netsim.Fault_model.prob = 1.; max_extra = Sim.Time.ms 2 };
        reorder =
          Some { Netsim.Fault_model.prob = 1.; max_extra = Sim.Time.ms 5 };
      }
  in
  let copies = Netsim.Fault_model.decide m ~now:Sim.Time.zero (pkt ()) in
  Alcotest.(check int) "two copies" 2 (List.length copies);
  List.iter
    (fun d ->
      Alcotest.(check bool) "extra delay within bounds" true
        Sim.Time.(d >= Sim.Time.zero && d <= Sim.Time.ms 7))
    copies;
  Alcotest.(check int) "duplicate counted" 1
    (Netsim.Fault_model.duplicates m);
  Alcotest.(check int) "reorder counted" 1 (Netsim.Fault_model.reordered m)

let test_validation () =
  let ge p_gb =
    {
      no_faults with
      Netsim.Fault_model.ge =
        Some
          { Netsim.Fault_model.p_gb; p_bg = 0.5; loss_good = 0.; loss_bad = 1. };
    }
  in
  Alcotest.(check bool) "probability > 1 rejected" true
    (invalid (fun () -> model (ge 1.5)));
  Alcotest.(check bool) "negative probability rejected" true
    (invalid (fun () -> model (ge (-0.1))));
  Alcotest.(check bool) "inverted outage rejected" true
    (invalid (fun () ->
         model
           {
             no_faults with
             Netsim.Fault_model.schedule =
               [
                 Netsim.Fault_model.Outage
                   { start = Sim.Time.ms 20; stop = Sim.Time.ms 10 };
               ];
           }));
  Alcotest.(check bool) "negative delay step rejected" true
    (invalid (fun () ->
         model
           {
             no_faults with
             Netsim.Fault_model.schedule =
               [
                 Netsim.Fault_model.Delay_step
                   { at = Sim.Time.ms 1; extra = Sim.Time.ms (-1) };
               ];
           }))

let lossy_profile =
  {
    Netsim.Fault_model.ge =
      Some
        {
          Netsim.Fault_model.p_gb = 0.1;
          p_bg = 0.3;
          loss_good = 0.01;
          loss_bad = 0.8;
        };
    reorder = Some { Netsim.Fault_model.prob = 0.1; max_extra = Sim.Time.ms 4 };
    duplicate =
      Some { Netsim.Fault_model.prob = 0.05; max_extra = Sim.Time.ms 2 };
    schedule =
      [
        Netsim.Fault_model.Outage
          { start = Sim.Time.ms 30; stop = Sim.Time.ms 60 };
      ];
  }

let test_decision_stream_determinism () =
  let run () =
    let m = model ~seed:77 lossy_profile in
    List.init 500 (fun i ->
        Netsim.Fault_model.decide m ~now:(Sim.Time.us (i * 200)) (pkt ~id:i ())
        |> List.map Sim.Time.to_ns_int)
  in
  Alcotest.(check (list (list int)))
    "same seed, same packets -> same decisions" (run ()) (run ())

let test_link_integration_conservation () =
  (* Install on a real link and check the conservation identity the
     chaos harness asserts: tx = delivered + lost + in_flight − dups. *)
  let s = Sim.Scheduler.create ~seed:3 () in
  let link = Netsim.Link.create s ~delay:(Sim.Time.ms 1) () in
  let received = ref 0 in
  Netsim.Link.connect link (fun _ -> incr received);
  let m = model ~seed:5 lossy_profile in
  Netsim.Fault_model.install m link;
  let sent = 400 in
  for i = 0 to sent - 1 do
    ignore
      (Sim.Scheduler.at s
         (Sim.Time.us (i * 250))
         (fun () -> Netsim.Link.transmit link (pkt ~id:i ())))
  done;
  Sim.Scheduler.run s;
  let delivered = Netsim.Link.delivered link in
  let lost = Netsim.Link.lost link in
  let dups = Netsim.Link.duplicated link in
  Alcotest.(check int) "in_flight drained" 0 (Netsim.Link.in_flight link);
  Alcotest.(check int) "conservation" sent (delivered + lost - dups);
  Alcotest.(check int) "sink saw every delivery" delivered !received;
  Alcotest.(check int) "losses attributed" lost
    (Netsim.Fault_model.random_drops m + Netsim.Fault_model.outage_drops m);
  Alcotest.(check int) "dups attributed" dups
    (Netsim.Fault_model.duplicates m);
  Alcotest.(check bool) "outage actually dropped packets" true
    (Netsim.Fault_model.outage_drops m > 0)

let suite =
  [
    Alcotest.test_case "passthrough" `Quick test_passthrough;
    Alcotest.test_case "Gilbert-Elliott burstiness" `Quick test_ge_burstiness;
    Alcotest.test_case "outage window" `Quick test_outage_window;
    Alcotest.test_case "delay step" `Quick test_delay_step;
    Alcotest.test_case "duplicate + reorder" `Quick test_duplicate_and_reorder;
    Alcotest.test_case "profile validation" `Quick test_validation;
    Alcotest.test_case "decision-stream determinism" `Quick
      test_decision_stream_determinism;
    Alcotest.test_case "link integration conservation" `Quick
      test_link_integration_conservation;
  ]
