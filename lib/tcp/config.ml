type t = {
  mss : int;
  init_cwnd_segments : int;
  init_ssthresh : float;
  rcv_wnd : int;
  min_rto : Sim.Time.t;
  max_rto : Sim.Time.t;
  delayed_ack : Sim.Time.t option;
  local_congestion : Local_congestion.policy;
  use_sack : bool;
  dupack_threshold : int;
  pacing : bool;
  pace_ss_gain : float;
  pace_ca_gain : float;
  app_read_rate : Sim.Units.rate option;
  slow_start_restart : bool;
}

let default =
  {
    mss = 1460;
    init_cwnd_segments = 2;
    init_ssthresh = infinity;
    rcv_wnd = 16 * 1024 * 1024;
    min_rto = Sim.Time.ms 200;
    max_rto = Sim.Time.sec 60;
    delayed_ack = Some (Sim.Time.ms 40);
    local_congestion = Local_congestion.Halve;
    use_sack = true;
    dupack_threshold = 3;
    pacing = false;
    pace_ss_gain = 2.0;
    pace_ca_gain = 1.2;
    app_read_rate = None;
    slow_start_restart = true;
  }
