(** Declarative scenario specifications — the single front door to the
    simulator.

    A {!t} is pure data: a topology, a list of flows, fault profiles
    and instrumentation options. {!build} compiles it into a live
    network (scheduler, hosts, links, connections, workload drivers),
    {!execute} runs the clock and harvests one {!flow_result} per flow
    plus aggregate {!path_stats}. Everything the experiment suite used
    to hand-wire — [Run.bulk]'s duplex path, E5's dumbbell, E8's
    fairness pair, E11's parallel streams, the chaos harness's faulted
    scenarios — is a value of this type, and {!of_json} makes the same
    scenarios loadable from a file ([rss_sim run --spec FILE.json]).

    Running a spec is a pure function of the spec value: results are
    byte-identical across runs, worker counts and replay. *)

(* --- the specification ----------------------------------------------- *)

type cong_avoid = Reno | Cubic | Vegas

(** The paper's ANL→LBNL testbed shape: two hosts joined by a
    symmetric pipe whose bottleneck is the sender's NIC, so queueing
    happens in the sender's interface queue. *)
type duplex = {
  rate : Sim.Units.rate;
  one_way_delay : Sim.Time.t;
  ifq_capacity : int;
  loss_rate : float;  (** random loss on the data direction, 0..1 *)
  ifq_red_ecn : Netsim.Queue_disc.red_params option;
      (** run both hosts' interface queues as RED with ECN marking *)
}

(** N left hosts — router — bottleneck — router — N right hosts; left
    host [i] talks to right host [i]. Queueing happens in the routers'
    bottleneck queues. *)
type dumbbell = {
  pairs : int;
  access_rate : Sim.Units.rate;
  access_delay : Sim.Time.t;
  bottleneck_rate : Sim.Units.rate;
  bottleneck_delay : Sim.Time.t;
  buffer_packets : int;          (** router queue depth *)
  host_ifq_capacity : int;
  red : Netsim.Queue_disc.red_params option;
      (** bottleneck queues run RED instead of drop-tail *)
}

(** [segments] dumbbells chained left-to-right through duplex core
    links — the canonical partitionable topology
    ({!Netsim.Topology.Multi_dumbbell}). Regular pairs live inside one
    segment (pair [s·pairs + i] is segment [s]'s pair [i]); the
    [cross_pairs] pairs after them run left host 0 of segment [c] to
    right host 0 of segment [c+1] across the core, exercising the
    partition boundary. *)
type multi_dumbbell = {
  segments : int;
  m_pairs : int;  (** host pairs per segment (1..100) *)
  m_access_rate : Sim.Units.rate;
  m_access_delay : Sim.Time.t;
  m_bottleneck_rate : Sim.Units.rate;
  m_bottleneck_delay : Sim.Time.t;
  core_rate : Sim.Units.rate;  (** inter-segment duplex links *)
  core_delay : Sim.Time.t;
      (** core propagation delay — the lookahead a partitioned run's
          conservative horizon advances by, so keep it the largest delay
          you can justify *)
  m_buffer_packets : int;
  m_host_ifq_capacity : int;
  m_red : Netsim.Queue_disc.red_params option;
  cross_pairs : int;  (** 0..segments-1 boundary-crossing pairs *)
}

type topology =
  | Duplex of duplex
  | Dumbbell of dumbbell
  | Multi_dumbbell of multi_dumbbell

type workload =
  | Bulk of { bytes : int option }
      (** one long TCP transfer; [None] = saturating *)
  | Chunked of {
      chunk_bytes : int;
      interval : Sim.Time.t;
      chunks : int option;  (** [None] = unbounded *)
    }  (** disk-paced TCP source: a chunk every [interval] *)
  | Cbr of {
      rate : Sim.Units.rate;
      packet_bytes : int;
      stop_at : Sim.Time.t option;
    }  (** constant-bit-rate UDP cross traffic *)
  | On_off of {
      peak_rate : Sim.Units.rate;
      mean_on : Sim.Time.t;
      mean_off : Sim.Time.t;
      packet_bytes : int;
    }  (** bursty UDP: exponential on/off, CBR while on *)
  | Short_flows of {
      arrival_rate : float;  (** flows per second *)
      mean_size : int;
      pareto_shape : float;
      stop_at : Sim.Time.t option;
    }  (** Poisson arrivals of Pareto-sized TCP mice *)
  | Many_flows of {
      flows : int;  (** total flows *)
      arrival_rate : float option;
          (** flows per second; [None] = all present at time zero *)
      arrival_pareto_shape : float option;
          (** heavy-tailed inter-arrivals; [None] = Poisson *)
      mean_size : int option;  (** Pareto sizes; [None] = persistent *)
      size_pareto_shape : float;
    }
      (** N abstract AIMD flows through one fluid bottleneck — the
          {!Workload.Many_flows} flow-level engine (SoA flow table +
          timer wheel) rather than per-packet connections, scaling to
          millions of flows. The bottleneck (capacity, base RTT,
          buffer, optional RED) derives from the spec topology; the
          flow's policy/cong_avoid selects the congestion-avoidance
          rule. At most one per spec (the engine owns the scheduler's
          timer wheel). *)

type flow = {
  label : string option;
      (** [None]: the slow-start name (suffixed [-index] when the spec
          has several flows) *)
  pair : int;
      (** endpoint pair: 0 on a duplex; 0..pairs-1 on a dumbbell *)
  start_at : Sim.Time.t;
  policy : string option;
      (** {!Tcp.Policy.by_name} key — one name selecting the flow's
          whole window-update rule (slow-start + congestion avoidance +
          pacing hints). [None] (default) keeps the legacy
          [slow_start]/[cong_avoid] pair, byte-identical to pre-policy
          specs. Mutually exclusive with [shared_rss]; [restricted]
          still overrides the PID tuning of restricted policies. *)
  slow_start : string;
      (** {!Tcp.Slow_start.by_name} key (ignored when [policy] is set) *)
  restricted : Tcp.Slow_start.restricted_config option;
      (** override for the restricted policies' controller *)
  shared_rss : bool;
      (** steer this flow from its host's shared RSS controller (one
          {!Tcp.Shared_rss.t} per sending host, created at the first
          shared flow) instead of a per-connection policy *)
  cong_avoid : cong_avoid;
  local_congestion : Tcp.Local_congestion.policy;
  delayed_ack : Sim.Time.t option;
  use_sack : bool;
  pacing : bool;
  slow_start_restart : bool;
  max_rto : Sim.Time.t option;  (** [None] = TCP config default *)
  workload : workload;
}

type faults = {
  forward : Netsim.Fault_model.profile;
      (** data direction: duplex a→b, dumbbell left→right bottleneck *)
  reverse : Netsim.Fault_model.profile;  (** ACK direction *)
}

type t = {
  name : string;
  seed : int;
  duration : Sim.Time.t;
  sample_period : Sim.Time.t;
  record_series : bool;
      (** sample per-flow time series every [sample_period]; off for
          scalar-only sweeps *)
  record_trace : bool;
      (** attach the run-wide {!Trace.t} event tracer (scheduler,
          links, IFQs, NICs, TCP senders) plus the unified metrics
          registry sampled every [sample_period]; results land in
          {!outcome}[.trace]/[.metrics] *)
  trace_capacity : int;
      (** trace ring size in records; oldest records are overwritten
          beyond it ({!Trace.dropped}) *)
  domains : int;
      (** worker domains for intra-scenario parallelism (default 1).
          With [domains > 1] the topology is cut into partitions — one
          per duplex endpoint, one per dumbbell_of_dumbbells segment —
          each advancing its own scheduler under a conservative horizon
          derived from the cut links' propagation delays. The partition
          structure depends only on the topology, so artifacts are
          byte-identical at every [domains] value; the count only caps
          how many OCaml domains execute partitions. Restricted: needs
          a cut-capable topology with positive boundary delay, no
          [record_trace], no fault profiles, no many_flows/short_flows
          workloads, no checkpoint/resume. *)
  topology : topology;
  flows : flow list;
  faults : faults;
}

val default_duplex : duplex
(** The paper's path: 100 Mbit/s, 30 ms each way, IFQ 100, no loss. *)

val default_flow : flow
(** One saturating bulk flow from pair 0 at t=0: standard slow-start,
    Reno, [Halve] local congestion, delayed ACKs, SACK, no pacing. *)

val default : t
(** [default_duplex] carrying one [default_flow] for 25 s, 250 ms
    sampling, no faults — exactly [Run.default_spec]. *)

val workload_kinds : string list
(** JSON [kind] names, for CLIs. *)

(* --- results ---------------------------------------------------------- *)

type flow_result = {
  label : string;
  goodput_mbps : float;          (** receiver in-order bits / duration *)
  utilization : float;           (** goodput / line rate *)
  send_stalls : int;
  congestion_signals : int;
  retransmits : int;
  timeouts : int;
  final_cwnd_segments : float;
  mean_ifq : float;              (** the flow's source-host IFQ *)
  peak_ifq : float;
  ce_marks : int;
  completion : Sim.Time.t option;
      (** set when a byte budget was given and fully delivered *)
  time_to_90pct_util : float option;
      (** seconds until windowed throughput first reached 90 % of line
          rate; [None] if never (or series recording was off) *)
  stalls_series : Sim.Stats.Series.t;
  cwnd_series : Sim.Stats.Series.t;
  ifq_series : Sim.Stats.Series.t;
  throughput_series : Sim.Stats.Series.t;
  srtt_series : Sim.Stats.Series.t;
}
(** UDP flows report packet-level goodput, zero TCP counters and empty
    series; a [Cbr] flow's [send_stalls] counts IFQ-refused datagrams.
    [Short_flows] reports the summed bytes of completed transfers. *)

type path_stats = {
  aggregate_goodput_mbps : float;  (** sum over TCP flows *)
  jain_index : float;              (** fairness over TCP flows *)
  queue_mean : float;  (** pair-0 sender's IFQ, time-averaged packets *)
  queue_peak : float;
  router_drops : int;  (** dumbbell router drops; 0 on a duplex *)
}

type metrics = {
  metric_names : string list;
      (** registry namespace in registration order — the export column
          order: [conn/<label>/<Var>] (web100, flow order), then
          [link/<dir>/<what>], then [host/<id>/<what>] *)
  samples : (float * float array) list;
      (** (time_s, values in [metric_names] order), one per
          [sample_period] tick, in time order *)
}

type outcome = {
  results : flow_result list;
  path : path_stats;
  trace : Trace.t option;  (** the event ring, when [record_trace] *)
  metrics : metrics option;
      (** registry samples, when [record_trace]; raises at build time
          if two flows share a label (duplicate metric names) *)
  resume_from : string option;
      (** the snapshot path this run resumed from, for provenance;
          excluded from {!outcome_to_json} so a resumed run's artifacts
          stay byte-identical to an unbroken run's *)
}

(* --- compile and execute ---------------------------------------------- *)

val validate : t -> unit
(** Raise [Invalid_argument] with the offending field on a malformed
    spec — the checks {!build} performs, without instantiating anything
    ([rss_sim spec --validate]). *)

type built
(** A compiled spec: live network plus started (or scheduled) flows,
    ready to run. *)

val build : t -> built
(** Validate the spec and instantiate the network, fault models,
    connections and workload drivers. Flows with [start_at = 0] are
    started immediately, later ones via scheduler timers, all in list
    order. Raises [Invalid_argument] with the offending field on a
    malformed spec ([duration > 0], [ifq_capacity >= 1], [loss_rate]
    in [0,1], non-negative start times, known policy names, ...). *)

(* --- checkpoint / resume ---------------------------------------------- *)

type checkpoint = {
  snapshot_path : string;
      (** written atomically with a [".prev"] fallback
          ({!Sim.Snapshot.save}) *)
  interval : Sim.Time.t;  (** simulated time between snapshots; > 0 *)
  should_stop : unit -> bool;
      (** polled after each snapshot; [true] raises {!Drained} — the
          graceful-drain and watchdog hook *)
}

exception Drained of { at : Sim.Time.t; snapshot : string }
(** Raised by a checkpointing {!execute} when [should_stop] answered
    [true]: the run stopped cleanly at simulated time [at] with a fresh
    snapshot on disk. Not an error — resume with [?resume_from]. *)

val snapshot_supported : t -> bool
(** Whether this spec can checkpoint/resume. Heap events are closures
    and cannot serialize, so support requires every piece of run state
    to live in serializable structures: the spec's single flow must be
    a [Many_flows] workload starting at t=0 (SoA flow table + timer
    wheel + fluid scalars), with no fault profiles and no
    [record_trace]. [record_series] is fine — series content is part of
    the snapshot and samplers re-register on resume. *)

val execute : ?checkpoint:checkpoint -> ?resume_from:string -> built -> outcome
(** Attach instrumentation (when [record_series]), run the scheduler to
    [duration] and collect results, in flow order. Call once.

    With [checkpoint], the run saves a snapshot every [interval] of
    simulated time; slicing never changes the simulation (run-until is
    associative), only what survives a kill. With [resume_from], state
    is restored from the snapshot before running — the continuation is
    byte-identical to a run that was never interrupted. Both raise
    [Invalid_argument] when {!snapshot_supported} is false, and
    {!Sim.Snapshot.Corrupt} on an unreadable snapshot; a snapshot taken
    from a different spec is rejected. *)

val run : ?checkpoint:checkpoint -> ?resume_from:string -> t -> outcome
(** [execute (build t)]. *)

val run_batch : ?pool:Engine.Pool.t -> t list -> outcome list
(** One independent task per spec on [pool] (sequential when [None]);
    results in input order, identical for any worker count. Raises
    {!Engine.Pool.Task_failed} on the first failing cell. *)

val run_batch_collect :
  ?pool:Engine.Pool.t -> t list -> (outcome, Engine.Pool.failure) result list
(** Like {!run_batch} but every cell reports: a raising spec costs one
    [Error] row (labeled with the spec name) instead of the batch.
    Verdicts in input order, identical for any worker count. *)

(* --- introspection of a built spec (chaos harness hooks) ------------- *)

val sched : built -> Sim.Scheduler.t

val trace : built -> Trace.t option
(** The event ring installed at {!build} time when [record_trace];
    [None] otherwise. *)

val src_host : built -> pair:int -> Netsim.Host.t
val dst_host : built -> pair:int -> Netsim.Host.t

val forward_link : built -> Netsim.Link.t
(** Data-direction pipe (duplex a→b; dumbbell left→right bottleneck). *)

val reverse_link : built -> Netsim.Link.t

val tcp_senders : built -> Tcp.Sender.t list
(** Senders of single-connection TCP flows ([Bulk]/[Chunked]) already
    started, in flow order — flows still waiting on [start_at] timers
    are absent until they fire. *)

val many_flows_engines : built -> Workload.Many_flows.t list
(** Started [Many_flows] engines, in flow order (at most one today). *)

val fault_models :
  built -> Netsim.Fault_model.t option * Netsim.Fault_model.t option
(** (forward, reverse) — [None] when that profile was passthrough (no
    model is installed, which is behaviourally identical). *)

(* --- JSON ------------------------------------------------------------- *)

val to_json : t -> Report.Json.t
(** Times serialize as [*_ns] integers, rates as [*_mbps], the seed as
    a decimal string (62-bit seeds do not survive JSON doubles). *)

val of_json : Report.Json.t -> (t, string) result
(** Inverse of {!to_json}; errors name the offending field. Missing
    fields fall back to {!default}'s values; [*_s] float-second keys
    are accepted anywhere a [*_ns] key is; unknown keys are ignored
    (so specs can carry ["_doc"] comments). *)

val profile_to_json : Netsim.Fault_model.profile -> Report.Json.t
val profile_of_json :
  Report.Json.t -> (Netsim.Fault_model.profile, string) result

val flow_result_to_json : flow_result -> Report.Json.t
(** Scalar fields only — series travel as CSV, not JSON. *)

val outcome_to_json : outcome -> Report.Json.t

val template : unit -> string
(** A commented spec-file template (["_doc"] keys explain each field);
    parses back through {!of_json}. *)
