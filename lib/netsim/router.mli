(** Output-queued store-and-forward router.

    Each port owns a queue discipline and a NIC draining it onto a link.
    Forwarding is by static per-destination routes; packets for unknown
    destinations are counted and discarded. *)

type t
type port

val create : Sim.Scheduler.t -> id:int -> t
val id : t -> int

val add_port :
  t -> queue:Queue_disc.t -> rate:Sim.Units.rate -> link:Link.t -> port

val route : t -> dst:int -> port -> unit
(** Send packets destined to node [dst] out of [port]. *)

val deliver : t -> Packet.t -> unit
(** Entry point for inbound links: enqueue on the routed port (drop if
    the queue refuses) and kick its NIC. *)

val port_queue : port -> Queue_disc.t
val port_nic : port -> Nic.t

val forwarded : t -> int
(** Packets accepted onto some port queue. *)

val dropped : t -> int
(** Packets refused by a port queue (congestion loss). *)

val no_route : t -> int
(** Packets discarded for lack of a route. *)
