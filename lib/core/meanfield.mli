(** Mean-field oracle for N TCP flows through one RED queue.

    The many-flows engine ({!Workload.Many_flows}) simulates N coupled
    AIMD windows; this module predicts what those simulations should
    show, from the fluid limit the mean-field literature analyses
    (Reynier; Hollot-Misra-Towsley-Gong):

    - {!equilibrium}: the operating point (per-flow window, drop
      probability, standing queue) where Reno's square-root law meets
      the RED curve, by bisection on the average queue.
    - {!gain_margin}/{!predict}: a frequency-domain stability verdict
      for the linearized TCP/RED feedback loop (window integrator,
      queue integrator, RED's EWMA low-pass, one RTT of dead time).
      Margin < 1 means the loop is unstable and the queue oscillates
      as a limit cycle; margin > 1 means the queue settles.
    - {!critical_flows}: the boundary N below which the loop
      oscillates — few flows mean large windows, a violent sawtooth
      and an unstable loop; many flows mean small windows and a queue
      that converges. The margin is monotone in N, so bisection finds
      the crossing.
    - {!sweep}: run the engine at several N through {!Spec} and
      compare the measured queue behaviour against the predictions.
      Points within the documented uncertainty band around the
      boundary (0.25x..2x {!critical_flows}) are excluded from the
      agreement score — a linearized deterministic oracle cannot place
      the limit cycle's onset more precisely: the engine's independent
      per-flow loss draws desynchronize the windows and damp marginal
      oscillation, so the measured onset sits a small factor below the
      predicted one. *)

type path = {
  capacity : float;  (** bottleneck, bytes per second *)
  base_rtt : Sim.Time.t;  (** two-way propagation delay *)
  mss : int;
  buffer_packets : int;
  red : Netsim.Queue_disc.red_params;
}

val paper_path : path
(** The paper's 100 Mbit/s / 60 ms path with a 250-packet buffer and a
    RED curve scaled to it (min 50, max 150 packets, max_p 0.1,
    weight 0.002). *)

type equilibrium = {
  w_star : float;  (** per-flow window, packets *)
  p_star : float;  (** per-packet drop probability *)
  q_star : float;  (** standing queue, packets *)
  rtt_star : float;  (** base RTT + queueing delay, seconds *)
}

val equilibrium : path -> flows:int -> equilibrium
(** Solves [red_drop_probability q = 2/(w(q)(w(q)+2))] with
    [w(q) = C·rtt(q)/N] — full-utilization windows against Reno's
    loss-balance demand — for the standing queue. *)

type verdict = Stable | Oscillatory

val gain_margin : path -> flows:int -> float
(** Gain margin of the linearized loop at the phase crossover
    (loop phase −180°): margin < 1 predicts queue oscillation. *)

val predict : path -> flows:int -> verdict

val critical_flows : path -> int
(** Smallest N whose loop is stable; below it the oracle predicts
    oscillation. *)

(* --- empirical side ---------------------------------------------------- *)

val spec_for : ?duration:Sim.Time.t -> path -> flows:int -> seed:int -> Spec.t
(** A duplex [Many_flows] scenario realising [path] (RED on the egress
    IFQ), sampled fast enough to resolve queue oscillation. *)

val classify :
  Sim.Stats.Series.t -> duration:Sim.Time.t -> float * float * verdict
(** [(mean, relative amplitude, verdict)] of a queue series over the
    second half of the run: oscillatory when the standard deviation
    exceeds {!oscillation_threshold} of the mean (or of one packet,
    whichever is larger). *)

val oscillation_threshold : float

type sweep_point = {
  sp_flows : int;
  sp_margin : float;
  sp_predicted : verdict;
  sp_queue_mean : float;
  sp_amplitude : float;  (** relative: stddev / mean queue *)
  sp_measured : verdict;
  sp_in_band : bool;  (** within 0.25x..2x of the predicted boundary *)
}

type sweep = {
  points : sweep_point list;
  critical : int;  (** {!critical_flows} of the path *)
  agreed : int;  (** out-of-band points whose verdicts match *)
  out_of_band : int;
}

val sweep :
  ?pool:Engine.Pool.t ->
  ?duration:Sim.Time.t ->
  ?flows:int list ->
  path ->
  seed:int ->
  sweep
(** Runs one scenario per flow count (default: powers of two spanning
    1/8x..8x the predicted boundary) and scores prediction against
    measurement outside the uncertainty band. *)
