type var = Counter_var of int ref | Gauge_var of float ref

type t = { name : string; vars : (string, var) Hashtbl.t }

module Counter = struct
  type c = int ref

  let incr ?(by = 1) c = c := !c + by
  let value c = !c
end

module Gauge = struct
  type g = float ref

  let set g v = g := v
  let value g = !g
end

let create ?(conn_name = "conn") () =
  { name = conn_name; vars = Hashtbl.create 32 }

let conn_name t = t.name

let counter t name =
  match Hashtbl.find_opt t.vars name with
  | Some (Counter_var c) -> c
  | Some (Gauge_var _) ->
      invalid_arg (name ^ " is registered as a gauge, not a counter")
  | None ->
      let c = ref 0 in
      Hashtbl.add t.vars name (Counter_var c);
      c

let gauge t name =
  match Hashtbl.find_opt t.vars name with
  | Some (Gauge_var g) -> g
  | Some (Counter_var _) ->
      invalid_arg (name ^ " is registered as a counter, not a gauge")
  | None ->
      let g = ref 0. in
      Hashtbl.add t.vars name (Gauge_var g);
      g

let read t name =
  match Hashtbl.find_opt t.vars name with
  | Some (Counter_var c) -> Some (float_of_int !c)
  | Some (Gauge_var g) -> Some !g
  | None -> None

let snapshot t =
  Hashtbl.fold
    (fun name var acc ->
      let v =
        match var with
        | Counter_var c -> float_of_int !c
        | Gauge_var g -> !g
      in
      (name, v) :: acc)
    t.vars []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp fmt t =
  Format.fprintf fmt "@[<v>%s:@,%a@]" t.name
    (Format.pp_print_list (fun fmt (k, v) ->
         Format.fprintf fmt "  %-20s %.6g" k v))
    (snapshot t)
