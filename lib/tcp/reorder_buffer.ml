type t = { ranges : Interval_set.t; mutable ooo_count : int }

let create () = { ranges = Interval_set.create (); ooo_count = 0 }

let insert t ~expected ~lo ~hi =
  if lo > expected then t.ooo_count <- t.ooo_count + 1;
  Interval_set.add t.ranges ~lo ~hi

let deliverable_up_to t ~from = Interval_set.extend_contiguous t.ranges from
let consume_below t bound = Interval_set.remove_below t.ranges bound

let sack_blocks t ~above ~max_blocks =
  Interval_set.intervals t.ranges
  |> List.filter (fun (_, hi) -> hi > above)
  |> List.map (fun (lo, hi) -> (Stdlib.max lo above, hi))
  |> fun l ->
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  take max_blocks l

let buffered_bytes t = Interval_set.total t.ranges
let segments_out_of_order t = t.ooo_count
