type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?(aligns = []) ~headers ~rows () =
  let columns = List.length headers in
  let normalize row =
    let n = List.length row in
    if n >= columns then row
    else row @ List.init (columns - n) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let all = headers :: rows in
  let width i =
    List.fold_left
      (fun acc row -> Stdlib.max acc (String.length (List.nth row i)))
      0 all
  in
  let widths = List.init columns width in
  let align i =
    match List.nth_opt aligns i with Some a -> a | None -> Left
  in
  let render_row row =
    String.concat "  "
      (List.mapi (fun i cell -> pad (align i) (List.nth widths i) cell) row)
  in
  let separator =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n"
    (render_row headers :: separator :: List.map render_row rows)
  ^ "\n"

let cell_f ?(decimals = 2) v = Printf.sprintf "%.*f" decimals v
let cell_i v = string_of_int v
