(** TCP sender endpoint.

    One direction of data transfer: this endpoint emits SYN + data
    segments through its host's interface queue and consumes the ACK
    stream. Congestion control is split into a {!Slow_start} policy
    (the paper's axis) and a {!Cong_avoid} algorithm, with fast
    retransmit / NewReno or SACK-based recovery and RFC 6298 timeouts.
    Send-stalls reported by the host IFQ feed the configured
    {!Local_congestion} policy — the pathway the paper studies. *)

type phase = Syn_sent | Slow_start_p | Cong_avoid_p | Fast_recovery
(** After a retransmission timeout the sender re-enters [Slow_start_p]
    (with the slow-start policy reset), mirroring RFC 5681. *)

val phase_to_string : phase -> string

type t

val create :
  host:Netsim.Host.t ->
  dst:int ->
  flow:int ->
  ids:Netsim.Packet.Id_source.source ->
  ?table:Flow_table.t ->
  ?config:Config.t ->
  ?slow_start:Slow_start.t ->
  ?cong_avoid:Cong_avoid.t ->
  ?name:string ->
  unit ->
  t
(** Builds the endpoint and registers it for [flow] on [host]. The
    default policies are [Slow_start.standard] and [Cong_avoid.reno].
    The sender's numeric state (windows, offsets, counters, latches)
    occupies one row of [table] — pass a shared {!Flow_table} so many
    senders' state packs into the same flat arrays; by default each
    sender gets a private single-row table. *)

val start : t -> ?bytes:int -> unit -> unit
(** Open the connection (SYN) and stream [bytes] of application data
    (default: unlimited). Must be called once. *)

val supply : t -> int -> unit
(** Application write: make [n] more bytes available on a bounded
    connection (raises [Invalid_argument] on an unlimited one, which
    already has everything to send). Used by bursty sources such as
    [Workload.Chunked]. *)

val on_complete : t -> (unit -> unit) -> unit
(** Callback when every requested byte has been cumulatively ACKed.
    Never fires for unlimited transfers. *)

(** {2 Introspection} *)

val phase : t -> phase

val cwnd : t -> float
(** Congestion window, bytes. *)

val ssthresh : t -> float

val flight : t -> int
(** Un-SACKed outstanding bytes. *)

val bytes_acked : t -> int

val bytes_sent : t -> int
(** Data bytes handed to the IFQ (retransmissions included). *)

val srtt : t -> Sim.Time.t option
val min_rtt : t -> Sim.Time.t option
val rto : t -> Sim.Time.t

val rto_backoff : t -> int
(** Exponential-backoff multiplier currently applied to {!rto} (1 when
    not backed off; doubles per timeout, resets on the first ACK of new
    data — Karn's algorithm). *)

val send_stalls : t -> int
val congestion_signals : t -> int
val timeouts : t -> int
val retransmits : t -> int
val stats : t -> Web100.Group.t
(** The web100 instrument group; gauges are refreshed on every event. *)

val set_tracer : t -> Trace.t option -> unit
(** Install (or remove) an event tracer. The sender emits
    [tcp.send_stall] (cumulative stalls, IFQ occupancy) on each refused
    enqueue, [tcp.cwnd] (cwnd, ssthresh — a counter record) whenever
    the window changes, [tcp.retransmit] (offset, bytes) per
    retransmitted range, [tcp.fast_retransmit] (snd_una, recover point)
    on fast-recovery entry, and [tcp.rto] (backoff multiplier, flight
    bytes) per timeout. Records use the flow id as [src]. With [None]
    tracing costs one pattern match and allocates nothing. *)

val slow_start_name : t -> string

val flow_table : t -> Flow_table.t
(** The table holding this sender's numeric state… *)

val row : t -> int
(** …and its row index within it. *)
