type t = {
  host_id : int;
  sched : Sim.Scheduler.t;
  host_ifq : Ifq.t;
  host_nic : Nic.t;
  handlers : (int, Packet.t -> unit) Hashtbl.t;
  mutable default_handler : (Packet.t -> unit) option;
  mutable rx_packet_count : int;
  mutable rx_byte_count : int;
}

let create sched ~id ~nic_rate ~ifq_capacity ?ifq_red_ecn () =
  let red_ecn = Option.map (fun p -> (p, nic_rate)) ifq_red_ecn in
  let host_ifq = Ifq.create sched ~capacity:ifq_capacity ?red_ecn () in
  let host_nic = Nic.create sched ~rate:nic_rate ~queue:(Ifq.queue host_ifq) in
  Nic.set_dequeue_hook host_nic (fun _pkt -> Ifq.note_dequeue host_ifq);
  {
    host_id = id;
    sched;
    host_ifq;
    host_nic;
    handlers = Hashtbl.create 8;
    default_handler = None;
    rx_packet_count = 0;
    rx_byte_count = 0;
  }

let id t = t.host_id
let scheduler t = t.sched
let ifq t = t.host_ifq
let nic t = t.host_nic
let attach_uplink t link = Nic.attach t.host_nic link

let send t pkt =
  if Ifq.try_enqueue t.host_ifq pkt then begin
    Nic.kick t.host_nic;
    `Sent
  end
  else `Stalled

let register_flow t ~flow handler = Hashtbl.replace t.handlers flow handler
let unregister_flow t ~flow = Hashtbl.remove t.handlers flow
let set_default_handler t handler = t.default_handler <- Some handler

let deliver t pkt =
  t.rx_packet_count <- t.rx_packet_count + 1;
  t.rx_byte_count <- t.rx_byte_count + Packet.size pkt;
  match Hashtbl.find_opt t.handlers pkt.Packet.flow with
  | Some handler -> handler pkt
  | None -> (
      match t.default_handler with
      | Some handler -> handler pkt
      | None -> ())

let rx_packets t = t.rx_packet_count
let rx_bytes t = t.rx_byte_count
