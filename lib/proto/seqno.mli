(** 32-bit TCP sequence numbers with wraparound arithmetic.

    All comparisons are modular (RFC 793 §3.3): [lt a b] means "a is
    earlier than b" provided the two numbers are within 2{^31} of each
    other, which TCP's window rules guarantee. *)

type t = private int32

val zero : t
val of_int : int -> t
(** Truncates to 32 bits. *)

val to_int32 : t -> int32

val add : t -> int -> t
(** [add s n] advances [s] by [n] bytes, wrapping modulo 2{^32}.
    [n] may be negative. *)

val diff : t -> t -> int
(** [diff a b] is the signed distance from [b] to [a], in
    (-2{^31}, 2{^31}]. [diff (add b n) b = n] for |n| < 2{^31}. *)

val lt : t -> t -> bool
val leq : t -> t -> bool
val gt : t -> t -> bool
val geq : t -> t -> bool
val equal : t -> t -> bool

val max : t -> t -> t
(** The later of the two under modular order. *)

val min : t -> t -> t

val pp : Format.formatter -> t -> unit
