(** Flow-level (per-RTT-round) engine for very large flow counts.

    N AIMD windows coupled through one fluid bottleneck queue — the
    abstraction of the mean-field RED literature (Reynier) — with
    per-flow state in a {!Tcp.Flow_table} and round timers on a
    {!Sim.Timer_wheel}: no per-flow closures or heap objects anywhere,
    so a million concurrent flows cost ~16 words each and the timer
    path allocates nothing.

    Each flow's round timer fires once per RTT (base RTT + fluid
    queueing delay): the round's W bytes face Bernoulli loss with the
    per-packet probability of the shared RED curve (or the tail-drop
    overflow fraction), slow start doubles per round, congestion
    avoidance applies the {!Tcp.Cong_avoid} policy hooks by row index,
    and finite-size flows retire when their budget drains.

    Deterministic for a fixed seed: arrivals/sizes from the one [rng]
    stream, per-flow loss draws from row-derived xorshift streams. *)

type t

type params = {
  flows : int;  (** total flows to create *)
  arrival_rate : float option;
      (** flows/s (Poisson unless [arrival_pareto_shape]); [None] = all
          present at time zero *)
  arrival_pareto_shape : float option;
      (** heavy-tailed inter-arrival gaps with the same mean *)
  mean_size : int option;
      (** Pareto-distributed flow size in bytes; [None] = persistent *)
  size_pareto_shape : float;
  mss : int;
  init_cwnd_segments : int;
  capacity_bytes_per_sec : float;  (** bottleneck capacity *)
  base_rtt : Sim.Time.t;  (** two-way propagation delay *)
  buffer_packets : int;  (** fluid backlog clamp *)
  red : Netsim.Queue_disc.red_params option;
      (** RED curve over the line-rate queue EWMA; [None] = tail drop *)
}

val default_params : params
(** 1000 persistent flows on the paper path (100 Mbit/s, 60 ms RTT,
    250-packet buffer, tail drop). *)

val start :
  sched:Sim.Scheduler.t ->
  rng:Sim.Rng.t ->
  seed:int ->
  ?cong_avoid:Tcp.Cong_avoid.t ->
  params ->
  t
(** Creates the flow table and timer wheel, attaches the wheel to
    [sched] (several engines — e.g. per-segment shards — may share one
    scheduler, each with its own wheel), and launches or schedules the
    flows. [seed] roots the per-flow loss streams; [rng] drives
    arrivals and sizes only. The [cong_avoid] bundle (default Reno) is
    shared by all flows — use stateless bundles. Raises
    [Invalid_argument] on non-positive [flows], [capacity], [mss],
    [init_cwnd_segments], [base_rtt] or [arrival_rate]/[mean_size]
    (when given), a [buffer_packets] below 1, or a Pareto shape — for
    arrivals or sizes — at or below 1 (infinite mean). *)

val stop : t -> unit
(** Stop creating flows; running flows keep cycling. *)

(** {2 Snapshot} — the engine's full dynamic state (fluid queue,
    counters, arrivals-stream position, flow-table columns, pending
    wheel timers) in a {!Sim.Snapshot} image, without perturbing the
    fluid integration. Restoring into a freshly-{!start}ed engine built
    from the same params and seed continues the run byte-identically to
    one that was never snapshotted. *)

val save : ?prefix:string -> t -> Sim.Snapshot.writer -> unit
(** Serialize under [prefix] (default ["mf."]; sharded engines use a
    distinct prefix per shard). Does {e not} integrate the fluid queue
    to the current time (that would split an integration interval and
    diverge from an unbroken run). *)

val restore : ?prefix:string -> t -> Sim.Snapshot.reader -> unit
(** Overwrite a freshly-started engine's state in place: drains and
    re-arms the wheel (all prior handles become stale; round timers get
    their fresh handle written back into the row) and rewinds the
    arrivals stream. Raises {!Sim.Snapshot.Corrupt} on bad images. *)

(** {2 Observation} — queue readings integrate the fluid model up to
    the current scheduler time first. *)

val queue_packets : t -> float
val avg_queue_packets : t -> float
(** RED's EWMA of the queue (equals {!queue_packets} under tail drop). *)

val sum_cwnd_bytes : t -> float
val mean_cwnd_segments : t -> float
val active : t -> int
val created : t -> int
val completed : t -> int
val delivered_bytes : t -> float
val loss_events : t -> int
val goodput_mbps : t -> duration:Sim.Time.t -> float
val table : t -> Tcp.Flow_table.t
val wheel : t -> Sim.Timer_wheel.t
