(** Conservative-lookahead parallel DES across OCaml domains.

    A partitioned simulation splits the model into disjoint islands,
    each owning a private {!Scheduler}, and connects them with typed
    channels whose lookahead is the propagation delay of the boundary
    link they replace. The synchronizer advances all partitions in
    epochs bounded by the conservative horizon [H = nmin + L] (earliest
    pending event plus minimum lookahead): every event strictly below
    [H] is safe to fire because any cross-partition message emitted
    during the epoch is due at or beyond [H].

    Determinism contract: the trajectory — and therefore every artifact
    — is a pure function of the model alone, independent of the
    partition structure. Each {!Channel.send} records the source
    clock, and the barrier drain inserts the delivery with that clock
    as its birth key on the destination heap ({!Event_queue}'s (time,
    birth, sequence) order), so a cross-boundary event ranks among
    same-due local events exactly where a single global heap would
    have placed it. Channels are drained in creation order, FIFO
    within a channel; the worker count passed to {!run} only chooses
    which domain executes a partition and can never change the
    result. *)

type t

val create : parts:int -> seed_of:(int -> int) -> t
(** [create ~parts ~seed_of] makes [parts] partitions; partition [i]'s
    scheduler is seeded with [seed_of i]. Raises [Invalid_argument] if
    [parts < 1]. *)

val count : t -> int
(** Number of partitions. *)

val scheduler : t -> int -> Scheduler.t
(** The scheduler owned by a partition — build that partition's model
    components against it. *)

val min_lookahead_ns : t -> int
(** Minimum lookahead over all channels (ns); [max_int] when no channel
    has been created. This bounds how far each epoch can advance. *)

module Channel : sig
  type 'a t

  val send : 'a t -> due:Time.t -> 'a -> unit
  (** Hand a value across the boundary, to be delivered at absolute
      time [due]. Must be called from the source partition (during an
      epoch); the value is buffered and scheduled on the destination at
      the next barrier. Conservative horizons guarantee [due] has not
      passed on the destination. *)
end

val channel :
  t ->
  src:int ->
  dst:int ->
  lookahead:Time.t ->
  handler:(Time.t -> 'a -> unit) ->
  'a Channel.t
(** [channel t ~src ~dst ~lookahead ~handler] creates a typed channel
    from partition [src] to [dst]. [handler due v] runs on the
    destination partition at time [due] for each value sent. The
    contract that makes the horizon safe: every [send] must carry
    [due >= (send time) + lookahead]. Raises [Invalid_argument] on a
    non-positive lookahead (the horizon could never advance), equal
    endpoints, or out-of-range partition indices. *)

val run :
  t ->
  until:Time.t ->
  ?workers:int ->
  ?breaks:Time.t list ->
  ?on_break:(Time.t -> unit) ->
  unit ->
  unit
(** [run t ~until ~workers ~breaks ~on_break ()] drives all partitions
    to [until] (boundary-inclusive, like [Scheduler.run ~until]; every
    partition clock reads [until] afterwards). [workers] (default 1,
    clamped to the partition count) sets how many domains execute
    epochs — any value yields the identical trajectory. [breaks] lists
    coordinator instants: for each (deduplicated, ascending) break the
    loop fires every event strictly below it, sets all clocks exactly
    to it, and calls [on_break] from the coordinator with a globally
    quiesced model — the place to start delayed flows and read
    cross-partition gauges. Exceptions raised by partition events are
    re-raised on the coordinator after the epoch's barrier. *)
