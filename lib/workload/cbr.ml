type t = {
  host : Netsim.Host.t;
  sched : Sim.Scheduler.t;
  dst : int;
  flow : int;
  ids : Netsim.Packet.Id_source.source;
  payload_bytes : int;
  period : Sim.Time.t;
  stop_at : Sim.Time.t option;
  mutable seq : int;
  mutable sent : int;
  mutable stalls : int;
  mutable running : bool;
}

let rec tick t () =
  if t.running then begin
    let now = Sim.Scheduler.now t.sched in
    let expired =
      match t.stop_at with Some s -> Sim.Time.(now >= s) | None -> false
    in
    if expired then t.running <- false
    else begin
      let pkt =
        Netsim.Packet.make
          ~id:(Netsim.Packet.Id_source.next t.ids)
          ~flow:t.flow ~src:(Netsim.Host.id t.host) ~dst:t.dst ~created:now
          (Proto.Payload.Udp { seq = t.seq; payload_len = t.payload_bytes })
      in
      t.seq <- t.seq + 1;
      (match Netsim.Host.send t.host pkt with
      | `Sent -> t.sent <- t.sent + 1
      | `Stalled -> t.stalls <- t.stalls + 1);
      ignore (Sim.Scheduler.after t.sched t.period (tick t))
    end
  end

let start ~host ~dst ~flow ~ids ~rate ?(packet_bytes = 1000) ?stop_at () =
  assert (rate > 0.);
  let wire = packet_bytes + 28 in
  let period = Sim.Units.tx_time rate ~bytes:wire in
  let t =
    {
      host;
      sched = Netsim.Host.scheduler host;
      dst;
      flow;
      ids;
      payload_bytes = packet_bytes;
      period;
      stop_at;
      seq = 0;
      sent = 0;
      stalls = 0;
      running = true;
    }
  in
  tick t ();
  t

let stop t = t.running <- false
let packets_sent t = t.sent
let packets_stalled t = t.stalls
