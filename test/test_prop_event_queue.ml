(* Model-based property suite for the structure-of-arrays 4-ary heap:
   replay a random interleaving of add / cancel / pop against a naive
   sorted-list model and require identical observable behaviour — the
   exact (time, seq) pop order, live counts, and next_time. This is the
   guard on the engine's core semantic contract: time order first, FIFO
   insertion order at equal times, cancelled events never fire. *)

type op = Add of int (* time in us, drawn from a small range to force ties *)
        | Cancel of int (* index into previously returned handles *)
        | Pop

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (5, map (fun t -> Add t) (int_bound 50));
        (2, map (fun i -> Cancel i) (int_bound 1000));
        (3, return Pop);
      ])

let print_op = function
  | Add t -> Printf.sprintf "Add %d" t
  | Cancel i -> Printf.sprintf "Cancel %d" i
  | Pop -> "Pop"

let ops_arb =
  QCheck.make
    ~print:(fun l -> String.concat "; " (List.map print_op l))
    QCheck.Gen.(list_size (int_bound 400) op_gen)

(* Naive model: an (id, time_us, cancelled ref) list kept in insertion
   order; pop scans for the minimum (time, insertion index). *)
module Model = struct
  type entry = { id : int; time : int; mutable cancelled : bool }
  type t = { mutable entries : entry list; mutable next_id : int }

  let create () = { entries = []; next_id = 0 }

  let add m time =
    let e = { id = m.next_id; time; cancelled = false } in
    m.next_id <- m.next_id + 1;
    m.entries <- m.entries @ [ e ];
    e

  let live m = List.filter (fun e -> not e.cancelled) m.entries

  let pop m =
    match live m with
    | [] -> None
    | first :: rest ->
        let best =
          List.fold_left
            (fun best e ->
              if e.time < best.time || (e.time = best.time && e.id < best.id)
              then e
              else best)
            first rest
        in
        m.entries <- List.filter (fun e -> e != best) m.entries;
        (* drop entries cancelled before the winner: they can never fire *)
        m.entries <- List.filter (fun e -> not e.cancelled) m.entries;
        Some best.time

  let next_time m =
    match live m with
    | [] -> None
    | first :: rest ->
        Some
          (List.fold_left
             (fun acc e -> if e.time < acc then e.time else acc)
             first.time rest)

  let live_count m = List.length (live m)
end

let replay ops =
  let q = Sim.Event_queue.create ~initial_capacity:1 () in
  let m = Model.create () in
  let handles = ref [||] in
  let model_entries = ref [||] in
  let ok = ref true in
  let check b = if not b then ok := false in
  List.iter
    (fun op ->
      if !ok then
        match op with
        | Add t ->
            let h = Sim.Event_queue.add q ~time:(Sim.Time.us t) (fun () -> ()) in
            let e = Model.add m t in
            handles := Array.append !handles [| h |];
            model_entries := Array.append !model_entries [| e |]
        | Cancel i when Array.length !handles > 0 ->
            let i = i mod Array.length !handles in
            Sim.Event_queue.cancel q !handles.(i);
            !model_entries.(i).Model.cancelled <- true
        | Cancel _ -> ()
        | Pop -> (
            match (Sim.Event_queue.pop q, Model.pop m) with
            | None, None -> ()
            | Some (t, _), Some mt ->
                check (Sim.Time.equal t (Sim.Time.us mt))
            | Some _, None | None, Some _ -> check false);
      if !ok then begin
        check (Sim.Event_queue.live_count q = Model.live_count m);
        match (Sim.Event_queue.next_time q, Model.next_time m) with
        | None, None -> ()
        | Some t, Some mt -> check (Sim.Time.equal t (Sim.Time.us mt))
        | Some _, None | None, Some _ -> check false
      end)
    ops;
  (* Drain both to the end: full pop sequences must agree. *)
  let rec drain () =
    if !ok then
      match (Sim.Event_queue.pop q, Model.pop m) with
      | None, None -> ()
      | Some (t, _), Some mt ->
          check (Sim.Time.equal t (Sim.Time.us mt));
          drain ()
      | Some _, None | None, Some _ -> check false
  in
  drain ();
  !ok && Sim.Event_queue.is_empty q

let qcheck_model =
  QCheck.Test.make
    ~name:"SoA 4-ary heap matches sorted-list model under add/cancel/pop"
    ~count:300 ops_arb replay

let qcheck_model_cancel_heavy =
  (* Bias hard toward cancellation so the >50% compaction path runs. *)
  let gen =
    QCheck.Gen.(
      list_size (int_bound 600)
        (frequency
           [
             (4, map (fun t -> Add t) (int_bound 20));
             (6, map (fun i -> Cancel i) (int_bound 1000));
             (1, return Pop);
           ]))
  in
  QCheck.Test.make
    ~name:"heap matches model under cancel-heavy load (compaction)"
    ~count:200
    (QCheck.make ~print:(fun l -> String.concat "; " (List.map print_op l)) gen)
    replay

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_model;
    QCheck_alcotest.to_alcotest qcheck_model_cancel_heavy;
  ]
