(** Flat structure-of-arrays per-flow state.

    One table holds the numeric fast-path state of every flow as
    parallel unboxed arrays; {!Sender} and the flow-level [many_flows]
    engine operate on a row index instead of a boxed per-flow record.
    A million rows are a handful of contiguous arrays (~16 words per
    flow, no per-flow heap objects or closures), and column scans run
    at memory bandwidth — the representation the ROADMAP's million-flow
    scenarios stand on.

    Float columns store the same IEEE doubles the old boxed fields
    held, so moving a sender's state into a row changes no golden.

    Rows are recycled through a free list; {!free}d rows are detectable
    via {!is_live}. Accessors are unchecked reads/writes of live rows —
    O(1), allocation-free. *)

type t

val create : ?initial_capacity:int -> unit -> t
(** Capacity doubles on demand (amortized O(1) {!alloc}). *)

val alloc : t -> int
(** Claim a row, reset to defaults: cwnd 0, ssthresh ∞, counters 0,
    budget −1 (unbounded), timer −1 (none), phase 0, all latches
    clear. *)

val free : t -> int -> unit
(** Return a row to the free list. Raises on a dead row. *)

val is_live : t -> int -> bool
val capacity : t -> int
val in_use : t -> int

(** {1 Columns} — windows in float bytes, offsets/sizes in int bytes,
    times in int nanoseconds. *)

val cwnd : t -> int -> float
val set_cwnd : t -> int -> float -> unit
val ssthresh : t -> int -> float
val set_ssthresh : t -> int -> float -> unit
val una : t -> int -> int
val set_una : t -> int -> int -> unit
val nxt : t -> int -> int
val set_nxt : t -> int -> int -> unit
val rwnd : t -> int -> int
val set_rwnd : t -> int -> int -> unit
val dupacks : t -> int -> int
val set_dupacks : t -> int -> int -> unit
val recover : t -> int -> int
val set_recover : t -> int -> int -> unit
val reaction_mark : t -> int -> int
val set_reaction_mark : t -> int -> int -> unit
val bytes_sent : t -> int -> int
val set_bytes_sent : t -> int -> int -> unit

val budget : t -> int -> int
(** Remaining bytes to send; −1 = unbounded. *)

val set_budget : t -> int -> int -> unit

val acct : t -> int -> int
(** Free-use delivered-bytes accumulator (engine accounting). *)

val set_acct : t -> int -> int -> unit
val next_pace_ns : t -> int -> int
val set_next_pace_ns : t -> int -> int -> unit
val last_send_ns : t -> int -> int
val set_last_send_ns : t -> int -> int -> unit

val timer : t -> int -> int
(** A foreign timer handle ({!Sim.Timer_wheel} or {!Sim.Event_queue});
    −1 = none. The table only stores it. *)

val set_timer : t -> int -> int -> unit

(** {1 Phase and latches} — phase is a 2-bit code (sender: 0 syn-sent,
    1 slow-start, 2 cong-avoid, 3 fast-recovery; flow-level engines may
    assign their own meaning). *)

val phase : t -> int -> int
val set_phase : t -> int -> int -> unit
val stalled : t -> int -> bool
val set_stalled : t -> int -> bool -> unit
val completed : t -> int -> bool
val set_completed : t -> int -> bool -> unit
val started : t -> int -> bool
val set_started : t -> int -> bool -> unit
val cwr_pending : t -> int -> bool
val set_cwr_pending : t -> int -> bool -> unit

(** {1 Per-flow randomness} — an inline xorshift stream per row, so
    flow-level engines draw per-flow randomness without a shared-stream
    dependence on iteration order. *)

val seed_rng : t -> int -> int -> unit
(** [seed_rng t i seed] — a zero seed is remapped to a fixed nonzero
    constant. *)

val rng_next : t -> int -> int
(** Next positive 62-bit xorshift draw. *)

val rng_float : t -> int -> float
(** Uniform draw in [0,1) (53 mantissa bits). *)

(** {1 Snapshot} — full-table serialization into a {!Sim.Snapshot}
    image. Free rows and the free-list order travel too, so a restored
    table allocates the same rows in the same order as the original. *)

val save : t -> prefix:string -> Sim.Snapshot.writer -> unit
(** Write every column and scalar as sections named [prefix ^ column]. *)

val restore : t -> prefix:string -> Sim.Snapshot.reader -> unit
(** Overwrite [t] in place with the saved table. Raises
    {!Sim.Snapshot.Corrupt} on missing or inconsistent sections. *)

(** {1 Congestion-control hooks by row} — apply a {!Cong_avoid} bundle
    to a row's (cwnd, ssthresh) in place. *)

val ca_on_ack :
  t ->
  int ->
  Cong_avoid.t ->
  newly_acked:int ->
  mss:int ->
  srtt:Sim.Time.t option ->
  min_rtt:Sim.Time.t option ->
  now:Sim.Time.t ->
  unit

val ca_on_loss :
  t -> int -> Cong_avoid.t -> flight:int -> mss:int -> now:Sim.Time.t -> unit

val ca_on_rto : t -> int -> Cong_avoid.t -> flight:int -> mss:int -> unit
