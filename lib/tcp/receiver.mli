(** TCP receiver endpoint: cumulative + selective acknowledgment
    generation with RFC 1122 delayed ACKs.

    In-order data advances the cumulative point through the reorder
    buffer; out-of-order arrivals trigger immediate duplicate ACKs
    carrying SACK blocks. ACKs echo the timestamp of the segment that
    triggered them, giving the sender Karn-safe RTT samples. *)

type t

val create :
  host:Netsim.Host.t ->
  flow:int ->
  ids:Netsim.Packet.Id_source.source ->
  ?config:Config.t ->
  unit ->
  t
(** Registers for [flow] on [host]. The peer's address is learned from
    the SYN (or first data segment). *)

val on_bytes : t -> (int -> unit) -> unit
(** Callback on every advance of the cumulative point, with the number
    of newly in-order bytes — the "application read". *)

val expect : t -> bytes:int -> (unit -> unit) -> unit
(** Fire the callback once [bytes] of data have arrived in order. *)

val bytes_received : t -> int
(** In-order (delivered) bytes so far. *)

val backlog : t -> int
(** Bytes delivered in order but not yet consumed by the application
    (always 0 without [app_read_rate]). *)

val current_window : t -> int
(** The window the next ACK would advertise. *)

val ce_marks_seen : t -> int
(** Data segments that arrived with the ECN Congestion-Experienced
    mark. *)

val segments_received : t -> int
val duplicate_segments : t -> int
(** Segments fully below the cumulative point (spurious retransmits). *)

val out_of_order_segments : t -> int
val acks_sent : t -> int
val first_data_at : t -> Sim.Time.t option
val last_data_at : t -> Sim.Time.t option

val goodput_mbps : t -> at:Sim.Time.t -> float
(** In-order payload bits delivered per second from time zero to [at]. *)
