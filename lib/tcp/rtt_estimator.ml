type t = {
  min_rto : Sim.Time.t;
  max_rto : Sim.Time.t;
  mutable srtt : Sim.Time.t option;
  mutable rttvar : Sim.Time.t;
  mutable min_rtt : Sim.Time.t option;
  mutable backoff_factor : int;
  mutable sample_count : int;
}

let create ?(min_rto = Sim.Time.ms 200) ?(max_rto = Sim.Time.sec 60) () =
  {
    min_rto;
    max_rto;
    srtt = None;
    rttvar = Sim.Time.zero;
    min_rtt = None;
    backoff_factor = 1;
    sample_count = 0;
  }

let sample t r =
  let r = Sim.Time.max r (Sim.Time.us 1) in
  t.sample_count <- t.sample_count + 1;
  (match t.min_rtt with
  | None -> t.min_rtt <- Some r
  | Some m -> if Sim.Time.(r < m) then t.min_rtt <- Some r);
  match t.srtt with
  | None ->
      (* First measurement: SRTT = R, RTTVAR = R/2 (RFC 6298 §2.2). *)
      t.srtt <- Some r;
      t.rttvar <- Sim.Time.scale r 0.5
  | Some srtt ->
      let err =
        let d = Sim.Time.sub srtt r in
        if Sim.Time.is_negative d then Sim.Time.sub r srtt else d
      in
      (* RTTVAR = 3/4 RTTVAR + 1/4 |SRTT - R|; SRTT = 7/8 SRTT + 1/8 R *)
      t.rttvar <-
        Sim.Time.add (Sim.Time.scale t.rttvar 0.75) (Sim.Time.scale err 0.25);
      t.srtt <-
        Some (Sim.Time.add (Sim.Time.scale srtt 0.875) (Sim.Time.scale r 0.125))

let srtt t = t.srtt
let rttvar t = match t.srtt with None -> None | Some _ -> Some t.rttvar
let min_rtt t = t.min_rtt

let rto t =
  let base =
    match t.srtt with
    | None -> Sim.Time.sec 1
    | Some srtt -> Sim.Time.add srtt (Sim.Time.mul_int t.rttvar 4)
  in
  let clamped = Sim.Time.max t.min_rto (Sim.Time.min base t.max_rto) in
  Sim.Time.min t.max_rto (Sim.Time.mul_int clamped t.backoff_factor)

let backoff t =
  if t.backoff_factor < 64 then t.backoff_factor <- t.backoff_factor * 2

let reset_backoff t = t.backoff_factor <- 1
let backoff_factor t = t.backoff_factor
let samples t = t.sample_count
