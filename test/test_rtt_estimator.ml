let ms = Sim.Time.ms

let test_initial_rto () =
  let e = Tcp.Rtt_estimator.create () in
  Alcotest.(check (float 1e-9)) "1s before any sample" 1000.
    (Sim.Time.to_ms (Tcp.Rtt_estimator.rto e));
  Alcotest.(check bool) "no srtt" true (Tcp.Rtt_estimator.srtt e = None);
  Alcotest.(check int) "no samples" 0 (Tcp.Rtt_estimator.samples e)

let test_first_sample () =
  let e = Tcp.Rtt_estimator.create () in
  Tcp.Rtt_estimator.sample e (ms 100);
  (match Tcp.Rtt_estimator.srtt e with
  | Some s -> Alcotest.(check (float 1e-9)) "srtt = R" 100. (Sim.Time.to_ms s)
  | None -> Alcotest.fail "srtt unset");
  (* RTO = SRTT + 4·RTTVAR = 100 + 4·50 = 300 ms. *)
  Alcotest.(check (float 1e-9)) "rto after first" 300.
    (Sim.Time.to_ms (Tcp.Rtt_estimator.rto e))

let test_smoothing () =
  let e = Tcp.Rtt_estimator.create () in
  Tcp.Rtt_estimator.sample e (ms 100);
  Tcp.Rtt_estimator.sample e (ms 200);
  (* SRTT = 7/8·100 + 1/8·200 = 112.5; RTTVAR = 3/4·50 + 1/4·100 = 62.5. *)
  (match Tcp.Rtt_estimator.srtt e with
  | Some s -> Alcotest.(check (float 1e-6)) "srtt" 112.5 (Sim.Time.to_ms s)
  | None -> Alcotest.fail "srtt unset");
  match Tcp.Rtt_estimator.rttvar e with
  | Some v -> Alcotest.(check (float 1e-6)) "rttvar" 62.5 (Sim.Time.to_ms v)
  | None -> Alcotest.fail "rttvar unset"

let test_min_rto_floor () =
  let e = Tcp.Rtt_estimator.create () in
  for _ = 1 to 20 do
    Tcp.Rtt_estimator.sample e (ms 1)
  done;
  Alcotest.(check bool) "clamped to 200ms floor" true
    (Sim.Time.to_ms (Tcp.Rtt_estimator.rto e) >= 200.)

let test_backoff () =
  let e = Tcp.Rtt_estimator.create () in
  Tcp.Rtt_estimator.sample e (ms 100);
  let base = Sim.Time.to_ms (Tcp.Rtt_estimator.rto e) in
  Tcp.Rtt_estimator.backoff e;
  Alcotest.(check (float 1e-6)) "doubled" (2. *. base)
    (Sim.Time.to_ms (Tcp.Rtt_estimator.rto e));
  Tcp.Rtt_estimator.backoff e;
  Alcotest.(check (float 1e-6)) "doubled again" (4. *. base)
    (Sim.Time.to_ms (Tcp.Rtt_estimator.rto e));
  Tcp.Rtt_estimator.reset_backoff e;
  Alcotest.(check (float 1e-6)) "reset" base
    (Sim.Time.to_ms (Tcp.Rtt_estimator.rto e))

let test_max_rto_cap () =
  let e = Tcp.Rtt_estimator.create () in
  Tcp.Rtt_estimator.sample e (Sim.Time.sec 10);
  for _ = 1 to 10 do
    Tcp.Rtt_estimator.backoff e
  done;
  Alcotest.(check bool) "capped at 60s" true
    (Sim.Time.to_sec (Tcp.Rtt_estimator.rto e) <= 60.)

let test_min_rtt_tracking () =
  let e = Tcp.Rtt_estimator.create () in
  Tcp.Rtt_estimator.sample e (ms 80);
  Tcp.Rtt_estimator.sample e (ms 60);
  Tcp.Rtt_estimator.sample e (ms 90);
  match Tcp.Rtt_estimator.min_rtt e with
  | Some m -> Alcotest.(check (float 1e-9)) "min" 60. (Sim.Time.to_ms m)
  | None -> Alcotest.fail "min_rtt unset"

let qcheck_rto_positive =
  QCheck.Test.make ~name:"RTO stays in [min_rto, max_rto]" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 50) (int_range 1 5_000))
    (fun samples_ms ->
      let e = Tcp.Rtt_estimator.create () in
      List.iter (fun m -> Tcp.Rtt_estimator.sample e (ms m)) samples_ms;
      let rto = Sim.Time.to_ms (Tcp.Rtt_estimator.rto e) in
      rto >= 200. && rto <= 60_000.)

let suite =
  [
    Alcotest.test_case "initial RTO" `Quick test_initial_rto;
    Alcotest.test_case "first sample" `Quick test_first_sample;
    Alcotest.test_case "EWMA smoothing" `Quick test_smoothing;
    Alcotest.test_case "min RTO floor" `Quick test_min_rto_floor;
    Alcotest.test_case "exponential backoff" `Quick test_backoff;
    Alcotest.test_case "max RTO cap" `Quick test_max_rto_cap;
    Alcotest.test_case "min RTT tracking" `Quick test_min_rtt_tracking;
    QCheck_alcotest.to_alcotest qcheck_rto_positive;
  ]
