(* Unit tests for the structure-of-arrays flow table: row lifecycle
   (alloc resets every column, free recycles through the free list),
   the per-row xorshift streams, and the congestion-avoidance hooks
   applied by row index. *)

module Ft = Tcp.Flow_table

let test_alloc_reset () =
  let t = Ft.create ~initial_capacity:2 () in
  let r = Ft.alloc t in
  Alcotest.(check bool) "live" true (Ft.is_live t r);
  Alcotest.(check int) "in_use" 1 (Ft.in_use t);
  (* Dirty every column, free, re-alloc: the recycled row must come
     back pristine. *)
  Ft.set_cwnd t r 9999.;
  Ft.set_ssthresh t r 7.;
  Ft.set_una t r 5;
  Ft.set_budget t r 123;
  Ft.set_phase t r 3;
  Ft.set_stalled t r true;
  Ft.set_timer t r 42;
  Ft.free t r;
  Alcotest.(check bool) "freed" false (Ft.is_live t r);
  let r' = Ft.alloc t in
  Alcotest.(check int) "free list reuses the row" r r';
  Alcotest.(check (float 0.)) "cwnd reset" 0. (Ft.cwnd t r');
  Alcotest.(check bool) "ssthresh reset" true (Ft.ssthresh t r' = infinity);
  Alcotest.(check int) "una reset" 0 (Ft.una t r');
  Alcotest.(check int) "budget unbounded" (-1) (Ft.budget t r');
  Alcotest.(check int) "phase reset" 0 (Ft.phase t r');
  Alcotest.(check bool) "stalled reset" false (Ft.stalled t r');
  Alcotest.(check int) "timer none" (-1) (Ft.timer t r')

let test_growth_and_many_rows () =
  let t = Ft.create ~initial_capacity:2 () in
  let rows = Array.init 1000 (fun _ -> Ft.alloc t) in
  Alcotest.(check int) "all live" 1000 (Ft.in_use t);
  Array.iteri (fun i r -> Ft.set_una t r i) rows;
  Array.iteri
    (fun i r ->
      if Ft.una t r <> i then Alcotest.failf "row %d clobbered by growth" i)
    rows;
  Array.iter (fun r -> Ft.free t r) rows;
  Alcotest.(check int) "all freed" 0 (Ft.in_use t)

let test_rng_streams () =
  let t = Ft.create ~initial_capacity:4 () in
  let a = Ft.alloc t and b = Ft.alloc t in
  Ft.seed_rng t a 42;
  Ft.seed_rng t b 42;
  let xs = List.init 5 (fun _ -> Ft.rng_next t a) in
  let ys = List.init 5 (fun _ -> Ft.rng_next t b) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys;
  Ft.seed_rng t b 43;
  let zs = List.init 5 (fun _ -> Ft.rng_next t b) in
  Alcotest.(check bool) "different seed diverges" true (xs <> zs);
  (* The all-zero seed must not produce the degenerate all-zero
     stream. *)
  Ft.seed_rng t a 0;
  Alcotest.(check bool) "zero seed remapped" true (Ft.rng_next t a <> 0);
  for _ = 1 to 1000 do
    let f = Ft.rng_float t a in
    if not (f >= 0. && f < 1.) then Alcotest.failf "rng_float out of range: %g" f
  done

let test_ca_hooks () =
  let t = Ft.create ~initial_capacity:2 () in
  let r = Ft.alloc t in
  let mss = 1500 in
  let cc = Tcp.Cong_avoid.reno () in
  Ft.set_cwnd t r (float_of_int (10 * mss));
  Ft.ca_on_ack t r cc ~newly_acked:mss ~mss ~srtt:None ~min_rtt:None
    ~now:Sim.Time.zero;
  let expected = (10. *. 1500.) +. (1500. *. 1500. /. (10. *. 1500.)) in
  Alcotest.(check (float 1e-9)) "reno additive increase via the row" expected
    (Ft.cwnd t r);
  Ft.ca_on_loss t r cc ~flight:(10 * mss) ~mss ~now:Sim.Time.zero;
  Alcotest.(check (float 1e-9)) "halved cwnd" (5. *. 1500.) (Ft.cwnd t r);
  Alcotest.(check (float 1e-9)) "halved ssthresh" (5. *. 1500.) (Ft.ssthresh t r);
  Ft.ca_on_rto t r cc ~flight:(4 * mss) ~mss;
  Alcotest.(check (float 1e-9)) "rto collapses to one mss" 1500. (Ft.cwnd t r);
  Alcotest.(check (float 1e-9)) "rto ssthresh floored" (2. *. 1500.)
    (Ft.ssthresh t r)

let test_flag_bits_independent () =
  let t = Ft.create ~initial_capacity:2 () in
  let r = Ft.alloc t in
  Ft.set_phase t r 3;
  Ft.set_stalled t r true;
  Ft.set_completed t r true;
  Ft.set_started t r true;
  Ft.set_cwr_pending t r true;
  Alcotest.(check int) "phase survives flag writes" 3 (Ft.phase t r);
  Ft.set_phase t r 1;
  Alcotest.(check bool) "stalled survives phase write" true (Ft.stalled t r);
  Alcotest.(check bool) "completed" true (Ft.completed t r);
  Alcotest.(check bool) "started" true (Ft.started t r);
  Alcotest.(check bool) "cwr" true (Ft.cwr_pending t r);
  Ft.set_stalled t r false;
  Alcotest.(check bool) "clearing one flag keeps others" true (Ft.completed t r);
  Alcotest.(check int) "and the phase" 1 (Ft.phase t r)

let suite =
  [
    Alcotest.test_case "alloc resets a recycled row" `Quick test_alloc_reset;
    Alcotest.test_case "growth preserves rows" `Quick test_growth_and_many_rows;
    Alcotest.test_case "per-row xorshift streams" `Quick test_rng_streams;
    Alcotest.test_case "cong-avoid hooks apply by index" `Quick test_ca_hooks;
    Alcotest.test_case "phase and flag bits are independent" `Quick
      test_flag_bits_independent;
  ]
