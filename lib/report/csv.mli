(** Small CSV writer for experiment artefacts (results/ directory). *)

val cell : float -> string
(** The round-trip float formatting used by {!write}: shortest of
    ["%.6g"]/["%.12g"]/["%.17g"] that parses back to the same float —
    for callers assembling mixed string/number CSV by hand. *)

val write :
  path:string -> header:string list -> rows:float list list -> unit
(** Create parent directories as needed and write one file. Cells are
    formatted with the shortest of ["%.6g"]/["%.12g"]/["%.17g"] that
    round-trips through [float_of_string], so long-run timestamps keep
    full precision while small values stay compact. *)

val write_series :
  path:string -> name:string -> Sim.Stats.Series.t -> unit
(** Two columns: time_s, <name>. *)

val write_string : path:string -> string -> unit
(** Write pre-formatted CSV content (e.g. {!Web100.Logger.to_csv}),
    creating parent directories as needed. *)
