(* qcheck invariants for Tcp.Interval_set: after any insert sequence
   the representation stays sorted, disjoint and non-touching, and
   membership/total agree with the naive union of the inserted
   ranges; remove_below subtracts exactly the [0, bound) prefix. *)

open QCheck2

(* (lo, len) pairs keep hi >= lo by construction; len = 0 exercises the
   empty-range guard. The 0..260 probe domain comfortably covers every
   generated endpoint (max 200 + 40). *)
let gen_ranges =
  Gen.(list_size (int_range 0 40) (pair (int_range 0 200) (int_range 0 40)))

let print_ranges = Print.(list (pair int int))
let probe = List.init 261 Fun.id

let build ops =
  let s = Tcp.Interval_set.create () in
  List.iter (fun (lo, len) -> Tcp.Interval_set.add s ~lo ~hi:(lo + len)) ops;
  s

let model_mem ops x = List.exists (fun (lo, len) -> lo <= x && x < lo + len) ops

let well_formed s =
  let rec ok = function
    | [] -> true
    | [ (a, b) ] -> a < b
    | (a, b) :: ((c, _) :: _ as rest) -> a < b && b < c && ok rest
  in
  ok (Tcp.Interval_set.intervals s)

let sorted_disjoint =
  Test.make ~name:"add keeps ranges sorted, disjoint, non-touching"
    ~count:500 ~print:print_ranges gen_ranges (fun ops ->
      well_formed (build ops))

let coverage_preserved =
  Test.make ~name:"membership equals the union of inserted ranges"
    ~count:500 ~print:print_ranges gen_ranges (fun ops ->
      let s = build ops in
      List.for_all (fun x -> Tcp.Interval_set.mem s x = model_mem ops x) probe)

let total_counts_union =
  Test.make ~name:"total = cardinality of the union" ~count:500
    ~print:print_ranges gen_ranges (fun ops ->
      let s = build ops in
      Tcp.Interval_set.total s
      = List.length (List.filter (model_mem ops) probe))

let remove_below_subtracts =
  Test.make ~name:"remove_below subtracts exactly [0, bound)" ~count:500
    ~print:Print.(pair print_ranges int)
    Gen.(pair gen_ranges (int_range 0 260))
    (fun (ops, bound) ->
      let s = build ops in
      Tcp.Interval_set.remove_below s bound;
      well_formed s
      && List.for_all
           (fun x ->
             Tcp.Interval_set.mem s x = (x >= bound && model_mem ops x))
           probe)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      sorted_disjoint;
      coverage_preserved;
      total_counts_union;
      remove_below_subtracts;
    ]
