(* The snapshot container: bit-exact round trips for every section
   kind, digest-verified framing that refuses any single-byte
   corruption, and the save/rotate/rename durability protocol that
   always leaves one verified-complete image on disk. *)

module Snap = Sim.Snapshot

let tmp_counter = ref 0

let tmp_path name =
  incr tmp_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "rss_snap_test_%d_%d_%s" (Unix.getpid ()) !tmp_counter
       name)

let full_writer () =
  let w = Snap.writer () in
  Snap.put_int w "int" (-42);
  Snap.put_int w "int.max" max_int;
  Snap.put_i64 w "i64" 0x1234_5678_9abc_def0L;
  Snap.put_float w "float" 0.1;
  Snap.put_float w "float.nan" Float.nan;
  Snap.put_int_array w "ints" [| min_int; -1; 0; 1; max_int |];
  Snap.put_float_array w "floats" [| 0.; -0.; Float.infinity; 1e-300 |];
  Snap.put_bytes w "bytes" "ab\x00\xffzy";
  Snap.put_bytes w "empty" "";
  w

let check_full_reader r =
  Alcotest.(check int) "int" (-42) (Snap.get_int r "int");
  Alcotest.(check int) "int.max" max_int (Snap.get_int r "int.max");
  Alcotest.(check int64) "i64" 0x1234_5678_9abc_def0L (Snap.get_i64 r "i64");
  Alcotest.(check (float 0.)) "float" 0.1 (Snap.get_float r "float");
  Alcotest.(check bool) "nan round-trips" true
    (Float.is_nan (Snap.get_float r "float.nan"));
  Alcotest.(check (array int)) "int array"
    [| min_int; -1; 0; 1; max_int |]
    (Snap.get_int_array r "ints");
  Alcotest.(check bool) "float array bit-exact" true
    (Array.for_all2
       (fun a b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))
       [| 0.; -0.; Float.infinity; 1e-300 |]
       (Snap.get_float_array r "floats"));
  Alcotest.(check string) "bytes" "ab\x00\xffzy" (Snap.get_bytes r "bytes");
  Alcotest.(check string) "empty bytes" "" (Snap.get_bytes r "empty");
  Alcotest.(check bool) "mem present" true (Snap.mem r "int");
  Alcotest.(check bool) "mem absent" false (Snap.mem r "nope")

let test_round_trip () =
  check_full_reader (Snap.of_string (Snap.to_string (full_writer ())))

let test_missing_and_mistyped () =
  let r = Snap.of_string (Snap.to_string (full_writer ())) in
  Alcotest.(check bool) "missing section raises Corrupt" true
    (match Snap.get_int r "nope" with
    | _ -> false
    | exception Snap.Corrupt _ -> true);
  Alcotest.(check bool) "kind mismatch raises Corrupt" true
    (match Snap.get_float r "int" with
    | _ -> false
    | exception Snap.Corrupt _ -> true)

let test_last_write_wins () =
  let w = Snap.writer () in
  Snap.put_int w "x" 1;
  Snap.put_int w "x" 2;
  let r = Snap.of_string (Snap.to_string w) in
  Alcotest.(check int) "last value" 2 (Snap.get_int r "x")

let test_any_byte_flip_detected () =
  (* The digest covers the whole body, and the trailer is part of the
     comparison, so flipping any byte of the image must be refused. *)
  let image = Snap.to_string (full_writer ()) in
  for i = 0 to String.length image - 1 do
    let b = Bytes.of_string image in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
    match Snap.of_string (Bytes.to_string b) with
    | _ -> Alcotest.failf "flip at offset %d accepted" i
    | exception Snap.Corrupt _ -> ()
  done

let test_truncation_detected () =
  let image = Snap.to_string (full_writer ()) in
  List.iter
    (fun len ->
      match Snap.of_string (String.sub image 0 len) with
      | _ -> Alcotest.failf "truncation to %d bytes accepted" len
      | exception Snap.Corrupt _ -> ())
    [ 0; 4; 8; String.length image / 2; String.length image - 1 ]

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_save_rotates_prev () =
  let path = tmp_path "rotate.snap" in
  let w1 = Snap.writer () in
  Snap.put_int w1 "gen" 1;
  Snap.save w1 ~path;
  let w2 = Snap.writer () in
  Snap.put_int w2 "gen" 2;
  Snap.save w2 ~path;
  Alcotest.(check int) "current image" 2
    (Snap.get_int (Snap.load ~path) "gen");
  Alcotest.(check int) "previous image rotated" 1
    (Snap.get_int (Snap.of_string (read_file (path ^ ".prev"))) "gen");
  Sys.remove path;
  Sys.remove (path ^ ".prev")

let test_load_falls_back_to_prev () =
  let path = tmp_path "fallback.snap" in
  let w1 = Snap.writer () in
  Snap.put_int w1 "gen" 1;
  Snap.save w1 ~path;
  let w2 = Snap.writer () in
  Snap.put_int w2 "gen" 2;
  Snap.save w2 ~path;
  (* corrupt the current image; load must hand back generation 1 *)
  let image = read_file path in
  write_file path (String.sub image 0 (String.length image - 3));
  Alcotest.(check int) "fell back to .prev" 1
    (Snap.get_int (Snap.load ~path) "gen");
  (* with .prev gone too, load must refuse *)
  Sys.remove (path ^ ".prev");
  Alcotest.(check bool) "no good image raises Corrupt" true
    (match Snap.load ~path with
    | _ -> false
    | exception Snap.Corrupt _ -> true);
  Sys.remove path

let test_rng_state_round_trip () =
  let rng = Sim.Rng.of_seed 99 in
  for _ = 1 to 17 do
    ignore (Sim.Rng.float rng)
  done;
  let state = Sim.Rng.state rng in
  let expect = List.init 8 (fun _ -> Sim.Rng.float rng) in
  let rng' = Sim.Rng.of_seed 1 in
  Sim.Rng.set_state rng' state;
  Alcotest.(check (list (float 0.)))
    "restored stream continues identically" expect
    (List.init 8 (fun _ -> Sim.Rng.float rng'))

(* --- property: random section sets round-trip bit-exactly ------------- *)

type section =
  | S_int of int
  | S_i64 of int64
  | S_float of float
  | S_ints of int array
  | S_floats of float array
  | S_bytes of string

let section_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun i -> S_int i) int;
        map (fun i -> S_i64 (Int64.of_int i)) int;
        map (fun f -> S_float f) float;
        map (fun l -> S_ints (Array.of_list l)) (list_size (int_bound 40) int);
        map
          (fun l -> S_floats (Array.of_list l))
          (list_size (int_bound 40) float);
        map (fun s -> S_bytes s) (string_size (int_bound 60));
      ])

let sections_gen =
  QCheck.Gen.(
    list_size (int_range 1 20) section_gen
    >|= List.mapi (fun i s -> (Printf.sprintf "s%d" i, s)))

let sections_arb =
  QCheck.make
    ~print:(fun l -> Printf.sprintf "<%d sections>" (List.length l))
    sections_gen

let put w (name, s) =
  match s with
  | S_int v -> Snap.put_int w name v
  | S_i64 v -> Snap.put_i64 w name v
  | S_float v -> Snap.put_float w name v
  | S_ints v -> Snap.put_int_array w name v
  | S_floats v -> Snap.put_float_array w name v
  | S_bytes v -> Snap.put_bytes w name v

let eq_back r (name, s) =
  match s with
  | S_int v -> Snap.get_int r name = v
  | S_i64 v -> Int64.equal (Snap.get_i64 r name) v
  | S_float v ->
      Int64.equal
        (Int64.bits_of_float (Snap.get_float r name))
        (Int64.bits_of_float v)
  | S_ints v -> Snap.get_int_array r name = v
  | S_floats v ->
      let got = Snap.get_float_array r name in
      Array.length got = Array.length v
      && Array.for_all2
           (fun a b ->
             Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))
           got v
  | S_bytes v -> String.equal (Snap.get_bytes r name) v

let prop_round_trip =
  QCheck.Test.make ~count:200 ~name:"random sections round-trip bit-exactly"
    sections_arb (fun sections ->
      let w = Snap.writer () in
      List.iter (put w) sections;
      let r = Snap.of_string (Snap.to_string w) in
      List.for_all (eq_back r) sections)

let suite =
  [
    Alcotest.test_case "round trip, every kind" `Quick test_round_trip;
    Alcotest.test_case "missing / mistyped sections" `Quick
      test_missing_and_mistyped;
    Alcotest.test_case "last write wins" `Quick test_last_write_wins;
    Alcotest.test_case "any byte flip detected" `Quick
      test_any_byte_flip_detected;
    Alcotest.test_case "truncation detected" `Quick test_truncation_detected;
    Alcotest.test_case "save rotates .prev" `Quick test_save_rotates_prev;
    Alcotest.test_case "load falls back to .prev" `Quick
      test_load_falls_back_to_prev;
    Alcotest.test_case "rng state round trip" `Quick test_rng_state_round_trip;
    QCheck_alcotest.to_alcotest prop_round_trip;
  ]
