(** Composable link-fault injection: burst loss, reordering,
    duplication and scheduled impairments.

    A {!profile} is pure data describing the adversarial behaviour of a
    path; {!create} binds it to an RNG stream and {!install} attaches it
    to a {!Link} through the link's fault hook. Given the same profile,
    seed and packet arrival order, every decision replays
    byte-identically — the determinism contract the chaos harness's
    failure artifacts rely on (see DESIGN.md §4.7). *)

type ge = {
  p_gb : float;  (** per-packet P(good → bad) transition *)
  p_bg : float;  (** per-packet P(bad → good) transition *)
  loss_good : float;  (** loss probability while in the good state *)
  loss_bad : float;  (** loss probability while in the bad state *)
}
(** Gilbert–Elliott two-state burst-loss channel. The loss decision is
    taken in the current state, then the state transitions; the mean
    bad-burst length is [1 / p_bg] packets. *)

type jitter = {
  prob : float;  (** per-packet trigger probability *)
  max_extra : Sim.Time.t;  (** extra delay uniform in [0, max_extra) *)
}

type event =
  | Outage of { start : Sim.Time.t; stop : Sim.Time.t }
      (** every packet entering the link in [\[start, stop)] is dropped —
          a link flap or blackout window *)
  | Delay_step of { at : Sim.Time.t; extra : Sim.Time.t }
      (** from [at] onward, all deliveries take [extra] additional
          propagation delay (until the next step; steps replace, not
          stack) *)

type profile = {
  ge : ge option;
  reorder : jitter option;
      (** triggered packets get extra delay, overtaking later ones *)
  duplicate : jitter option;
      (** triggered packets deliver twice; the copy gets its own
          jitter *)
  schedule : event list;  (** timed impairments, any order *)
}

val passthrough : profile
(** No impairments at all. *)

type t

val create : rng:Sim.Rng.t -> profile -> t
(** Validates the profile (probabilities in [0,1], outage windows
    ordered, delay steps non-negative; [Invalid_argument] otherwise)
    and binds it to [rng]. The model draws exactly one value per
    enabled mechanism per packet, in a fixed order, so the stream
    position is a function of the packet sequence alone. *)

val install : t -> Link.t -> unit
(** Attach to a link via {!Link.set_fault_hook}. One model instance
    must serve exactly one link — sharing an instance interleaves the
    RNG stream and the Gilbert–Elliott state between the links. *)

val decide : t -> now:Sim.Time.t -> Packet.t -> Sim.Time.t list
(** The underlying per-packet decision ([[]] = drop; otherwise one
    extra delay per delivered copy), exposed for unit tests. *)

val profile : t -> profile

(** {2 Counters} *)

val random_drops : t -> int
(** Packets dropped by the Gilbert–Elliott channel. *)

val outage_drops : t -> int
(** Packets dropped inside a scheduled outage window. *)

val duplicates : t -> int
(** Extra copies created. *)

val reordered : t -> int
(** Packets given reordering jitter. *)

val in_bad_state : t -> bool
(** Current Gilbert–Elliott state (for tests). *)

val last_outage_end : t -> Sim.Time.t option
(** The latest outage [stop] in the schedule, if any — the moment after
    which the progress invariant applies. *)
