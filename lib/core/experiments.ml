(* Each driver submits its independent experiment cells (variant ×
   duration × parameter point) as tasks on an optional Engine pool;
   [?pool = None] is the sequential path. Cells at the same parameter
   point share one seed (fair variant comparison); distinct points get
   seeds derived with [Sim.Rng.derive_seed] so no two cells ever share
   a random stream. Results are aggregated in the cell list's order,
   so parallel output is bit-identical to sequential. *)

let pmap ?pool ~label f xs =
  match pool with
  | None -> List.map f xs
  | Some pool -> Engine.Pool.map pool ~label ~f xs

module Fig1 = struct
  type t = {
    standard : Run.result;
    restricted : Run.result;
    duration : Sim.Time.t;
  }

  let run ?pool ?(duration = Sim.Time.sec 25) () =
    let spec = { Run.default_spec with duration } in
    match
      Run.bulk_batch ?pool
        [
          (Some "standard", { spec with Run.slow_start = "standard" });
          (Some "restricted", { spec with Run.slow_start = "restricted" });
        ]
    with
    | [ standard; restricted ] -> { standard; restricted; duration }
    | _ -> assert false
end

module Table1 = struct
  type row = {
    duration_s : float;
    standard_mbps : float;
    restricted_mbps : float;
    improvement_pct : float;
    standard_stalls : int;
    restricted_stalls : int;
  }

  let run ?pool ?(durations = [ 25.; 60. ]) () =
    let specs =
      List.concat
        (List.mapi
           (fun i d ->
             let spec =
               {
                 Run.default_spec with
                 duration = Sim.Time.of_sec d;
                 seed =
                   Sim.Rng.derive_seed ~root:Run.default_spec.Run.seed
                     ~stream:i;
               }
             in
             [
               (None, { spec with Run.slow_start = "standard" });
               (None, { spec with Run.slow_start = "restricted" });
             ])
           durations)
    in
    let results = Run.bulk_batch ?pool specs in
    let rec rows ds rs =
      match (ds, rs) with
      | [], [] -> []
      | d :: ds, std :: rss :: rs ->
          {
            duration_s = d;
            standard_mbps = std.Run.goodput_mbps;
            restricted_mbps = rss.Run.goodput_mbps;
            improvement_pct =
              (if std.Run.goodput_mbps > 0. then
                 100.
                 *. (rss.Run.goodput_mbps -. std.Run.goodput_mbps)
                 /. std.Run.goodput_mbps
               else 0.);
            standard_stalls = std.Run.send_stalls;
            restricted_stalls = rss.Run.send_stalls;
          }
          :: rows ds rs
      | _ -> assert false
    in
    rows durations results
end

module Variants = struct
  let run ?pool ?(duration = Sim.Time.sec 25) () =
    let spec = { Run.default_spec with duration } in
    Run.bulk_batch ?pool
      (List.map
         (fun name -> (Some name, { spec with Run.slow_start = name }))
         [ "standard"; "abc"; "limited"; "hystart"; "restricted" ])
end

module Ifq_sweep = struct
  type row = {
    ifq_capacity : int;
    standard : Run.result;
    restricted : Run.result;
  }

  let run ?pool ?(sizes = [ 25; 50; 100; 200; 400; 800 ])
      ?(duration = Sim.Time.sec 20) () =
    let specs =
      List.concat
        (List.mapi
           (fun i size ->
             let spec =
               {
                 Run.default_spec with
                 duration;
                 ifq_capacity = size;
                 seed =
                   Sim.Rng.derive_seed ~root:Run.default_spec.Run.seed
                     ~stream:i;
               }
             in
             [
               (None, { spec with Run.slow_start = "standard" });
               (None, { spec with Run.slow_start = "restricted" });
             ])
           sizes)
    in
    let results = Run.bulk_batch ?pool specs in
    let rec rows ss rs =
      match (ss, rs) with
      | [], [] -> []
      | size :: ss, std :: rss :: rs ->
          { ifq_capacity = size; standard = std; restricted = rss }
          :: rows ss rs
      | _ -> assert false
    in
    rows sizes results
end

module Rtt_sweep = struct
  type row = {
    rtt_ms : int;
    standard : Run.result;
    restricted : Run.result;
  }

  let run ?pool ?(rtts_ms = [ 10; 30; 60; 120; 200 ])
      ?(duration = Sim.Time.sec 20) () =
    let specs =
      List.concat
        (List.mapi
           (fun i rtt ->
             let spec =
               {
                 Run.default_spec with
                 duration;
                 one_way_delay = Sim.Time.ms (rtt / 2);
                 seed =
                   Sim.Rng.derive_seed ~root:Run.default_spec.Run.seed
                     ~stream:i;
               }
             in
             [
               (None, { spec with Run.slow_start = "standard" });
               (None, { spec with Run.slow_start = "restricted" });
             ])
           rtts_ms)
    in
    let results = Run.bulk_batch ?pool specs in
    let rec rows rtts rs =
      match (rtts, rs) with
      | [], [] -> []
      | rtt :: rtts, std :: rss :: rs ->
          { rtt_ms = rtt; standard = std; restricted = rss } :: rows rtts rs
      | _ -> assert false
    in
    rows rtts_ms results
end

module Burst_loss = struct
  type row = {
    bottleneck_mbps : float;
    buffer_packets : int;
    slow_start : string;
    router_drops : int;
    retransmits : int;
    goodput_mbps : float;
  }

  (* One flow crossing a dumbbell whose bottleneck is a router port with
     a BDP/4 buffer; the sender's own NIC is 1 Gbit/s so the slow-start
     burst lands on the router queue. *)
  let run_one ~seed ~rate_mbps ~slow_start_name ~duration =
    let bottleneck_rate = Sim.Units.mbps rate_mbps in
    let rtt = Sim.Time.ms 60 in
    let bdp =
      Sim.Units.bdp_packets bottleneck_rate ~rtt ~packet_bytes:1500
    in
    let buffer_packets = Stdlib.max 10 (int_of_float (bdp /. 4.)) in
    let spec =
      {
        Spec.default with
        Spec.name = Printf.sprintf "e5-%s" slow_start_name;
        seed;
        duration;
        record_series = false;
        topology =
          Spec.Dumbbell
            {
              Spec.pairs = 1;
              access_rate = Sim.Units.gbps 1.;
              access_delay = Sim.Time.ms 1;
              bottleneck_rate;
              bottleneck_delay = Sim.Time.ms 28;
              buffer_packets;
              host_ifq_capacity = 1000;
              red = None;
            };
        flows =
          [
            {
              Spec.default_flow with
              Spec.label = Some slow_start_name;
              slow_start = slow_start_name;
            };
          ];
      }
    in
    let o = Spec.run spec in
    let r = List.hd o.Spec.results in
    {
      bottleneck_mbps = rate_mbps;
      buffer_packets;
      slow_start = slow_start_name;
      router_drops = o.Spec.path.Spec.router_drops;
      retransmits = r.Spec.retransmits;
      goodput_mbps = r.Spec.goodput_mbps;
    }

  let run ?pool ?(rates_mbps = [ 10.; 100.; 622.; 1000. ])
      ?(duration = Sim.Time.sec 15) () =
    let cells =
      List.concat
        (List.mapi
           (fun i rate_mbps ->
             let seed = Sim.Rng.derive_seed ~root:11 ~stream:i in
             List.map
               (fun ss -> (rate_mbps, ss, seed))
               [ "standard"; "limited"; "restricted" ])
           rates_mbps)
    in
    pmap ?pool
      ~label:(fun (rate, ss, seed) ->
        Printf.sprintf "e5 %s @ %g Mb/s (seed=%d)" ss rate seed)
      (fun (rate_mbps, ss, seed) ->
        run_one ~seed ~rate_mbps ~slow_start_name:ss ~duration)
      cells
end

module Pid_ablation = struct
  type row = {
    label : string;
    gains : Control.Pid.gains;
    result : Run.result;
  }

  type t = {
    measured : (Control.Tuning.critical_point, string) result;
    rows : row list;
  }

  let run ?pool ?(duration = Sim.Time.sec 20) () =
    let measured =
      match Calibrate.ultimate_gain () with
      | Ok r -> Ok r.Control.Ziegler_nichols.critical
      | Error e -> Error e
    in
    let base = Tcp.Slow_start.default_restricted_config in
    let default_gains = base.Tcp.Slow_start.gains in
    let scaled k g = { g with Control.Pid.kp = g.Control.Pid.kp *. k } in
    let cells =
      [
        ("paper-rule (default)", default_gains);
        ("kp/4 (sluggish)", scaled 0.25 default_gains);
        ("kp*4 (aggressive)", scaled 4. default_gains);
        ("p-only", Control.Pid.p_only default_gains.Control.Pid.kp);
        ("pi (no derivative)", { default_gains with Control.Pid.td = 0. });
      ]
      @
      match measured with
      | Ok critical ->
          [
            ("zn-classic (measured)", Control.Tuning.zn_pid critical);
            ( "paper-rule (measured Kc,Tc)",
              Control.Tuning.paper_pid critical );
            ("tyreus-luyben (measured)", Control.Tuning.tyreus_luyben critical);
          ]
      | Error _ -> []
    in
    let rows =
      pmap ?pool
        ~label:(fun (label, _) -> "e6 " ^ label)
        (fun (label, gains) ->
          let config = { base with Tcp.Slow_start.gains } in
          let spec =
            {
              Run.default_spec with
              duration;
              slow_start = "restricted";
              restricted = Some config;
            }
          in
          { label; gains; result = Run.bulk ~label spec })
        cells
    in
    { measured; rows }
end

module Local_cong_ablation = struct
  let run ?pool ?(duration = Sim.Time.sec 25) () =
    let policies =
      [
        Tcp.Local_congestion.Halve;
        Tcp.Local_congestion.Cwr;
        Tcp.Local_congestion.Ignore;
      ]
    in
    let results =
      Run.bulk_batch ?pool
        (List.map
           (fun policy ->
             ( Some (Tcp.Local_congestion.to_string policy),
               {
                 Run.default_spec with
                 duration;
                 slow_start = "standard";
                 local_congestion = policy;
               } ))
           policies)
    in
    List.map2
      (fun policy r -> (Tcp.Local_congestion.to_string policy, r))
      policies results
end

module Adaptive_gains = struct
  type row = {
    rtt_ms : int;
    standard : Run.result;
    restricted_fixed : Run.result;
    restricted_adaptive : Run.result;
  }

  let run ?pool ?(rtts_ms = [ 10; 30; 60; 120; 200 ])
      ?(duration = Sim.Time.sec 20) () =
    let specs =
      List.concat
        (List.mapi
           (fun i rtt ->
             let spec =
               {
                 Run.default_spec with
                 duration;
                 one_way_delay = Sim.Time.ms (rtt / 2);
                 seed =
                   Sim.Rng.derive_seed ~root:Run.default_spec.Run.seed
                     ~stream:i;
               }
             in
             [
               (None, { spec with Run.slow_start = "standard" });
               (None, { spec with Run.slow_start = "restricted" });
               (None, { spec with Run.slow_start = "restricted-adaptive" });
             ])
           rtts_ms)
    in
    let results = Run.bulk_batch ?pool specs in
    let rec rows rtts rs =
      match (rtts, rs) with
      | [], [] -> []
      | rtt :: rtts, std :: fixed :: adaptive :: rs ->
          {
            rtt_ms = rtt;
            standard = std;
            restricted_fixed = fixed;
            restricted_adaptive = adaptive;
          }
          :: rows rtts rs
      | _ -> assert false
    in
    rows rtts_ms results
end

module Pacing = struct
  let run ?pool ?(duration = Sim.Time.sec 25) () =
    let spec = { Run.default_spec with duration } in
    Run.bulk_batch ?pool
      [
        (Some "standard", { spec with Run.slow_start = "standard" });
        ( Some "standard+pacing",
          { spec with Run.slow_start = "standard"; pacing = true } );
        (Some "restricted", { spec with Run.slow_start = "restricted" });
        ( Some "restricted+pacing",
          { spec with Run.slow_start = "restricted"; pacing = true } );
      ]
end

module Parallel_streams = struct
  type row = {
    streams : int;
    slow_start : string;
    aggregate_mbps : float;
    total_stalls : int;
    jain_index : float;
    mean_ifq : float;
  }

  let run_one ~seed ~streams ~slow_start_name ~duration =
    (* "restricted-shared" uses one host-wide controller; the others get
       an independent policy per connection. *)
    let shared = slow_start_name = "restricted-shared" in
    let spec =
      {
        Spec.default with
        Spec.name = Printf.sprintf "e11-%s-x%d" slow_start_name streams;
        seed;
        duration;
        record_series = false;
        flows =
          List.init streams (fun i ->
              {
                Spec.default_flow with
                Spec.label = Some (Printf.sprintf "%s-%d" slow_start_name i);
                slow_start = (if shared then "restricted" else slow_start_name);
                shared_rss = shared;
              });
      }
    in
    let o = Spec.run spec in
    {
      streams;
      slow_start = slow_start_name;
      aggregate_mbps = o.Spec.path.Spec.aggregate_goodput_mbps;
      total_stalls =
        List.fold_left
          (fun acc (r : Spec.flow_result) -> acc + r.Spec.send_stalls)
          0 o.Spec.results;
      jain_index = o.Spec.path.Spec.jain_index;
      mean_ifq = o.Spec.path.Spec.queue_mean;
    }

  let run ?pool ?(stream_counts = [ 1; 2; 4; 8 ])
      ?(duration = Sim.Time.sec 20) () =
    let cells =
      List.concat
        (List.mapi
           (fun i streams ->
             let seed = Sim.Rng.derive_seed ~root:47 ~stream:i in
             List.map
               (fun ss -> (streams, ss, seed))
               [ "standard"; "restricted"; "restricted-shared" ])
           stream_counts)
    in
    pmap ?pool
      ~label:(fun (streams, ss, seed) ->
        Printf.sprintf "e11 %s x%d (seed=%d)" ss streams seed)
      (fun (streams, ss, seed) ->
        run_one ~seed ~streams ~slow_start_name:ss ~duration)
      cells
end

module Local_ecn = struct
  type row = { label : string; result : Run.result; ce_marks : int }

  (* RED thresholds scaled to the 100-packet IFQ; a heavier EWMA weight
     than WAN RED because the queue is small and fast-moving. *)
  let qdisc_params =
    {
      Netsim.Queue_disc.min_th = 30.;
      max_th = 90.;
      max_p = 0.1;
      weight = 0.02;
    }

  let run ?pool ?(duration = Sim.Time.sec 25) () =
    let spec = { Run.default_spec with duration } in
    let results =
      Run.bulk_batch ?pool
        [
          ( Some "standard/drop-tail",
            { spec with Run.slow_start = "standard" } );
          ( Some "standard/red-ecn qdisc",
            {
              spec with
              Run.slow_start = "standard";
              ifq_red_ecn = Some qdisc_params;
            } );
          ( Some "restricted/drop-tail",
            { spec with Run.slow_start = "restricted" } );
        ]
    in
    List.map
      (fun (r : Run.result) ->
        { label = r.Run.label; result = r; ce_marks = r.Run.ce_marks })
      results
end

module Chunked_app = struct
  type row = {
    label : string;
    goodput_mbps : float;
    send_stalls : int;
    congestion_signals : int;
    stalls_series : Sim.Stats.Series.t;
  }

  let run_one ~label ~slow_start_name ~restart ~pacing ~chunk_bytes
      ~interval ~duration =
    let scenario = Scenario.anl_lbnl ~seed:3 () in
    let sched = scenario.Scenario.sched in
    let slow_start =
      match Tcp.Slow_start.by_name slow_start_name with
      | Ok ss -> ss
      | Error e -> invalid_arg e
    in
    let config =
      { Tcp.Config.default with slow_start_restart = restart; pacing }
    in
    let source =
      Workload.Chunked.start
        ~src:(Scenario.sender_host scenario)
        ~dst:(Scenario.receiver_host scenario)
        ~flow:1 ~ids:scenario.Scenario.ids ~chunk_bytes ~interval ~config
        ~slow_start ~name:label ()
    in
    let sender = Workload.Chunked.sender source in
    let stalls_series = Sim.Stats.Series.create ~name:"send_stalls" () in
    ignore
      (Sim.Scheduler.every sched (Sim.Time.ms 250) (fun () ->
           Sim.Stats.Series.add stalls_series (Sim.Scheduler.now sched)
             (float_of_int (Tcp.Sender.send_stalls sender))));
    Sim.Scheduler.run ~until:duration sched;
    {
      label;
      goodput_mbps =
        Tcp.Receiver.goodput_mbps
          (Workload.Chunked.receiver source)
          ~at:duration;
      send_stalls = Tcp.Sender.send_stalls sender;
      congestion_signals = Tcp.Sender.congestion_signals sender;
      stalls_series;
    }

  let run ?pool ?(chunk_bytes = 6_000_000) ?(interval = Sim.Time.sec 3)
      ?(duration = Sim.Time.sec 25) () =
    let cells =
      [
        ("standard/restart-on", "standard", true, false);
        ("standard/restart-off", "standard", false, false);
        ("standard/restart-off+pacing", "standard", false, true);
        ("restricted/restart-on", "restricted", true, false);
      ]
    in
    pmap ?pool
      ~label:(fun (label, _, _, _) -> "e13 " ^ label)
      (fun (label, slow_start_name, restart, pacing) ->
        run_one ~label ~slow_start_name ~restart ~pacing ~chunk_bytes
          ~interval ~duration)
      cells
end

module Latency = struct
  type row = {
    label : string;
    goodput_mbps : float;
    mean_delay_ms : float;
    p99_delay_ms : float;
  }

  let run_one ~label ~slow_start_name ~setpoint ~duration =
    let scenario = Scenario.anl_lbnl ~seed:5 () in
    let sched = scenario.Scenario.sched in
    let restricted_config =
      Option.map
        (fun fraction ->
          {
            Tcp.Slow_start.default_restricted_config with
            Tcp.Slow_start.setpoint_fraction = fraction;
          })
        setpoint
    in
    let slow_start =
      match Tcp.Slow_start.by_name ?restricted_config slow_start_name with
      | Ok ss -> ss
      | Error e -> invalid_arg e
    in
    (* One-way delay of data segments, sampled where the forward link
       begins (after the IFQ and serialization — where the standing
       queue lives) plus the constant propagation delay. *)
    let summary = Sim.Stats.Summary.create () in
    let histogram = Sim.Stats.Histogram.create ~lo:0. ~hi:200. ~bins:2000 in
    let owd_ms =
      Sim.Time.to_ms
        (Netsim.Link.delay scenario.Scenario.path.Netsim.Topology.Duplex.a_to_b)
    in
    Netsim.Link.add_tap scenario.Scenario.path.Netsim.Topology.Duplex.a_to_b
      (fun now pkt ->
        match pkt.Netsim.Packet.payload with
        | Proto.Payload.Tcp h when h.Proto.Tcp_header.payload_len > 0 ->
            let ms =
              Sim.Time.to_ms (Sim.Time.sub now pkt.Netsim.Packet.created)
              +. owd_ms
            in
            Sim.Stats.Summary.add summary ms;
            Sim.Stats.Histogram.add histogram ms
        | Proto.Payload.Tcp _ | Proto.Payload.Udp _ -> ());
    let conn =
      Tcp.Connection.establish
        ~src:(Scenario.sender_host scenario)
        ~dst:(Scenario.receiver_host scenario)
        ~flow:1 ~ids:scenario.Scenario.ids ~slow_start ~name:label ()
    in
    Sim.Scheduler.run ~until:duration sched;
    {
      label;
      goodput_mbps =
        Tcp.Receiver.goodput_mbps conn.Tcp.Connection.receiver ~at:duration;
      mean_delay_ms = Sim.Stats.Summary.mean summary;
      p99_delay_ms = Sim.Stats.Histogram.quantile histogram 0.99;
    }

  let run ?pool ?(duration = Sim.Time.sec 20) () =
    let cells =
      [
        ("standard", "standard", None);
        ("restricted (0.9)", "restricted", None);
        ("restricted (0.5)", "restricted", Some 0.5);
        ("restricted (0.2)", "restricted", Some 0.2);
      ]
    in
    pmap ?pool
      ~label:(fun (label, _, _) -> "e14 " ^ label)
      (fun (label, slow_start_name, setpoint) ->
        run_one ~label ~slow_start_name ~setpoint ~duration)
      cells
end

module Fairness = struct
  type t = {
    reno_mbps : float;
    restricted_mbps : float;
    jain_index : float;
    reno_vs_reno_jain : float;
  }

  let jain xs =
    let n = float_of_int (List.length xs) in
    let s = List.fold_left ( +. ) 0. xs in
    let s2 = List.fold_left (fun acc x -> acc +. (x *. x)) 0. xs in
    if s2 <= 0. then 1. else s *. s /. (n *. s2)

  let pair ~ss_a ~ss_b ~duration =
    let flow i ss_name =
      {
        Spec.default_flow with
        Spec.label = Some ss_name;
        pair = i;
        slow_start = ss_name;
      }
    in
    let spec =
      {
        Spec.default with
        Spec.name = Printf.sprintf "e8-%s-vs-%s" ss_a ss_b;
        seed = 23;
        duration;
        record_series = false;
        topology =
          Spec.Dumbbell
            {
              Spec.pairs = 2;
              access_rate = Sim.Units.mbps 100.;
              access_delay = Sim.Time.ms 1;
              bottleneck_rate = Sim.Units.mbps 100.;
              bottleneck_delay = Sim.Time.ms 28;
              buffer_packets = 250;
              host_ifq_capacity = 100;
              red = None;
            };
        flows = [ flow 0 ss_a; flow 1 ss_b ];
      }
    in
    match (Spec.run spec).Spec.results with
    | [ a; b ] -> (a.Spec.goodput_mbps, b.Spec.goodput_mbps)
    | _ -> assert false

  let run ?pool ?(duration = Sim.Time.sec 40) () =
    match
      pmap ?pool
        ~label:(fun (ss_a, ss_b) -> Printf.sprintf "e8 %s vs %s" ss_a ss_b)
        (fun (ss_a, ss_b) -> pair ~ss_a ~ss_b ~duration)
        [ ("standard", "restricted"); ("standard", "standard") ]
    with
    | [ (reno_mbps, restricted_mbps); (ctrl_a, ctrl_b) ] ->
        {
          reno_mbps;
          restricted_mbps;
          jain_index = jain [ reno_mbps; restricted_mbps ];
          reno_vs_reno_jain = jain [ ctrl_a; ctrl_b ];
        }
    | _ -> assert false
end
