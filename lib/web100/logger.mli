(** Periodic sampler turning a {!Group} into per-variable time series —
    the equivalent of polling a web100 connection's variable file, which
    is how the paper's Figure 1 data was gathered. *)

type t

val start :
  Sim.Scheduler.t -> period:Sim.Time.t -> vars:string list -> Group.t -> t
(** Sample the listed variables every [period], starting one period from
    now, until {!stop}. Variables missing from the group sample as 0. *)

val stop : t -> unit

val series : t -> string -> Sim.Stats.Series.t
(** The sampled series for a variable. Raises [Not_found] for variables
    not in the [vars] list. *)

val to_csv : t -> string
(** "time_s,var1,var2,..." header plus one row per sample tick. *)
