type policy = Halve | Cwr | Ignore

let to_string = function
  | Halve -> "halve"
  | Cwr -> "cwr"
  | Ignore -> "ignore"

let of_string = function
  | "halve" -> Ok Halve
  | "cwr" -> Ok Cwr
  | "ignore" -> Ok Ignore
  | other -> Error (Printf.sprintf "unknown local-congestion policy %S" other)
