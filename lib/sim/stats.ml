module Summary = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable mn : float;
    mutable mx : float;
    mutable total : float;
  }

  let create () =
    { n = 0; mean = 0.; m2 = 0.; mn = infinity; mx = neg_infinity; total = 0. }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.mn then t.mn <- x;
    if x > t.mx then t.mx <- x;
    t.total <- t.total +. x

  let count t = t.n
  let mean t = if t.n = 0 then 0. else t.mean
  let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
  let stddev t = Float.sqrt (variance t)
  let min t = t.mn
  let max t = t.mx
  let total t = t.total

  let merge a b =
    if a.n = 0 then { b with n = b.n }
    else if b.n = 0 then { a with n = a.n }
    else begin
      let n = a.n + b.n in
      let delta = b.mean -. a.mean in
      let mean =
        a.mean +. (delta *. float_of_int b.n /. float_of_int n)
      in
      let m2 =
        a.m2 +. b.m2
        +. (delta *. delta *. float_of_int a.n *. float_of_int b.n
            /. float_of_int n)
      in
      {
        n;
        mean;
        m2;
        mn = Stdlib.min a.mn b.mn;
        mx = Stdlib.max a.mx b.mx;
        total = a.total +. b.total;
      }
    end

  let pp fmt t =
    (* mn/mx are infinity/neg_infinity sentinels before the first add;
       printing them as min/max of an empty summary is misleading. *)
    if t.n = 0 then Format.fprintf fmt "n=0 mean=- sd=- min=- max=-"
    else
      Format.fprintf fmt "n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g" t.n
        (mean t) (stddev t) t.mn t.mx
end

module Histogram = struct
  type t = {
    lo : float;
    hi : float;
    counts : int array;
    mutable under : int;
    mutable over : int;
    mutable n : int;
  }

  let create ~lo ~hi ~bins =
    if not (hi > lo) then invalid_arg "Histogram.create: hi must exceed lo";
    if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
    { lo; hi; counts = Array.make bins 0; under = 0; over = 0; n = 0 }

  let width t = (t.hi -. t.lo) /. float_of_int (Array.length t.counts)

  let add t x =
    t.n <- t.n + 1;
    if x < t.lo then t.under <- t.under + 1
    else if x >= t.hi then t.over <- t.over + 1
    else begin
      let i = int_of_float ((x -. t.lo) /. width t) in
      let i = Stdlib.min i (Array.length t.counts - 1) in
      t.counts.(i) <- t.counts.(i) + 1
    end

  let count t = t.n
  let underflow t = t.under
  let overflow t = t.over
  let bin_count t i = t.counts.(i)

  let quantile t q =
    if t.n = 0 then invalid_arg "Histogram.quantile: empty histogram";
    let q = Float.max 0. (Float.min 1. q) in
    let target = q *. float_of_int t.n in
    (* [target <= under] must not fire when under = 0: q=0 gives
       target = 0 <= 0 and used to return t.lo even when the lowest
       populated bin sat far above it. *)
    if t.under > 0 && target <= float_of_int t.under then t.lo
    else begin
      let seen = ref (float_of_int t.under) in
      let result = ref nan in
      (try
         for i = 0 to Array.length t.counts - 1 do
           let c = float_of_int t.counts.(i) in
           if c > 0. then begin
             if !seen +. c >= target then begin
               (* q=0 lands on the first populated bin with frac = 0,
                  i.e. the low edge of the lowest populated bin. *)
               let frac = Float.max 0. ((target -. !seen) /. c) in
               result := t.lo +. ((float_of_int i +. frac) *. width t);
               raise Exit
             end;
             seen := !seen +. c
           end
         done
       with Exit -> ());
      (* Remaining mass (possibly all of it) lives in the overflow
         bucket, whose samples are >= hi: clamp to hi explicitly. *)
      if Float.is_nan !result then t.hi else !result
    end

  let pp fmt t =
    Format.fprintf fmt "hist[%g,%g) n=%d under=%d over=%d" t.lo t.hi t.n
      t.under t.over
end

module Time_weighted = struct
  type t = {
    mutable origin : Time.t;
    mutable last_change : Time.t;
    mutable current : float;
    mutable integral : float; (* value × seconds accumulated so far *)
    mutable peak : float;
  }

  let create ~now ~init =
    { origin = now; last_change = now; current = init; integral = 0.;
      peak = init }

  let settle t ~now =
    assert (Time.(now >= t.last_change));
    let dt = Time.to_sec (Time.sub now t.last_change) in
    t.integral <- t.integral +. (t.current *. dt);
    t.last_change <- now

  let set t ~now v =
    settle t ~now;
    t.current <- v;
    if v > t.peak then t.peak <- v

  let value t = t.current

  let mean t ~now =
    let elapsed = Time.to_sec (Time.sub now t.origin) in
    if elapsed <= 0. then t.current
    else begin
      let dt = Time.to_sec (Time.sub now t.last_change) in
      (t.integral +. (t.current *. dt)) /. elapsed
    end

  let max t = t.peak
end

module Series = struct
  type t = {
    name : string;
    mutable times : Time.t array;
    mutable values : float array;
    mutable n : int;
  }

  let create ?(name = "") () =
    { name; times = Array.make 16 Time.zero; values = Array.make 16 0.; n = 0 }

  let name t = t.name

  let grow t =
    let cap = 2 * Array.length t.times in
    let times = Array.make cap Time.zero and values = Array.make cap 0. in
    Array.blit t.times 0 times 0 t.n;
    Array.blit t.values 0 values 0 t.n;
    t.times <- times;
    t.values <- values

  let add t time v =
    if t.n = Array.length t.times then grow t;
    t.times.(t.n) <- time;
    t.values.(t.n) <- v;
    t.n <- t.n + 1

  let length t = t.n
  let times t = Array.sub t.times 0 t.n
  let values t = Array.sub t.values 0 t.n
  let last_value t = if t.n = 0 then None else Some t.values.(t.n - 1)

  let sample t ~at =
    (* Binary search for the last index with time <= at. *)
    if t.n = 0 || Time.(t.times.(0) > at) then 0.
    else begin
      let lo = ref 0 and hi = ref (t.n - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi + 1) / 2 in
        if Time.(t.times.(mid) <= at) then lo := mid else hi := mid - 1
      done;
      t.values.(!lo)
    end

  let to_csv_rows t =
    List.init t.n (fun i -> (Time.to_sec t.times.(i), t.values.(i)))
end
