(* Quickstart: build the paper's path, run standard TCP and Restricted
   Slow-Start side by side, print what happened.

     dune exec examples/quickstart.exe *)

let describe name (r : Core.Run.result) =
  Printf.printf
    "%-11s %6.2f Mbit/s (%4.1f%% of line rate), %d send-stall(s), final \
     cwnd %.0f segments\n"
    name r.Core.Run.goodput_mbps
    (100. *. r.Core.Run.utilization)
    r.Core.Run.send_stalls r.Core.Run.final_cwnd_segments

let () =
  print_endline "Restricted Slow-Start quickstart";
  print_endline "--------------------------------";
  print_endline
    "Path: 100 Mbit/s, 60 ms RTT (ANL->LBNL), interface queue 100 packets.\n";
  (* A 10-second saturating transfer with each slow-start policy. The
     spec is a plain record: change any field and rerun. *)
  let spec = { Core.Run.default_spec with duration = Sim.Time.sec 10 } in
  let standard = Core.Run.bulk { spec with slow_start = "standard" } in
  let restricted = Core.Run.bulk { spec with slow_start = "restricted" } in
  describe "standard" standard;
  describe "restricted" restricted;
  Printf.printf
    "\nThe standard sender overruns its own interface queue during\n\
     slow-start; Linux treats the failed enqueue as network congestion\n\
     and halves the window. The PID-controlled sender holds the queue\n\
     at 90%% of capacity (measured mean: %.1f packets) and never stalls.\n"
    restricted.Core.Run.mean_ifq;
  let improvement =
    100.
    *. (restricted.Core.Run.goodput_mbps -. standard.Core.Run.goodput_mbps)
    /. standard.Core.Run.goodput_mbps
  in
  Printf.printf "Throughput improvement: %.0f%% (paper reports ~40%%).\n"
    improvement
