type t = { sender : Sender.t; receiver : Receiver.t; flow : int }

let establish ~src ~dst ~flow ~ids ?rx_ids ?config ?slow_start ?cong_avoid
    ?bytes ?name () =
  (* [rx_ids] exists for partitioned runs: the receiver lives on [dst]'s
     partition and must label its ACKs from an id source owned there,
     never racing the sender's. Single-partition callers share one
     source, as always. *)
  let rx_ids = match rx_ids with Some r -> r | None -> ids in
  let receiver = Receiver.create ~host:dst ~flow ~ids:rx_ids ?config () in
  let sender =
    Sender.create ~host:src ~dst:(Netsim.Host.id dst) ~flow ~ids ?config
      ?slow_start ?cong_avoid ?name ()
  in
  Sender.start sender ?bytes ();
  { sender; receiver; flow }

let goodput_mbps t ~at = Receiver.goodput_mbps t.receiver ~at
let completed t ~bytes = Receiver.bytes_received t.receiver >= bytes
